#pragma once

/// \file message.hpp
/// Wire messages of the simulated interconnect.
///
/// Every cross-image effect in caf2 travels as a Message: spawned functions,
/// asynchronous-copy data, collective tree stages, event notifications, and
/// finish-detection reductions. A message carries:
///  - routing (source/destination world ranks, active-message handler id);
///  - the finish-accounting envelope (which finish scope the message is
///    charged to and the sender's epoch parity — paper Fig. 7 passes
///    `fromOddEpoch` to every message handler);
///  - an opaque payload (marshalled arguments or raw data).

#include <cstdint>
#include <vector>

namespace caf2::net {

/// Active-message handler identifier; the runtime registers handlers in a
/// dispatch table (GASNet-style).
using HandlerId = std::uint32_t;

/// Identifies a finish scope: (team id, per-team finish sequence number).
/// Messages sent outside any finish scope carry team == kNoFinishTeam.
struct FinishKey {
  std::int32_t team = -1;
  std::uint32_t seq = 0;

  static constexpr std::int32_t kNoFinishTeam = -1;

  bool valid() const { return team != kNoFinishTeam; }
  bool operator==(const FinishKey&) const = default;
};

struct MessageHeader {
  int source = -1;                  ///< world rank of the sending image
  int dest = -1;                    ///< world rank of the destination image
  HandlerId handler = 0;

  /// Finish accounting envelope. `tracked` messages update the four epoch
  /// counters on both end points; the detection allreduce itself and event
  /// notifications are untracked.
  FinishKey finish{};
  bool tracked = false;
  bool from_odd_epoch = false;      ///< sender's epoch parity at initiation

  /// Initiator-side operation id used to route delivery acknowledgements
  /// back to the originating implicit-operation record (0 = none).
  std::uint64_t op_id = 0;
};

struct Message {
  MessageHeader header;
  std::vector<std::uint8_t> payload;

  std::size_t size_bytes() const { return payload.size(); }
};

}  // namespace caf2::net
