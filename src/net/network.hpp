#pragma once

/// \file network.hpp
/// Simulated interconnect: timing model + delivery.
///
/// A message initiated at virtual time t traverses four points that realize
/// the paper's completion spectrum (paper Fig. 1, DESIGN.md §4.2):
///
///   initiation  t                       send()/send_staged() returns
///   staging     t + size/bandwidth      source buffer read ("injected");
///                                       on_staged fires -> local data
///                                       completion of the operation
///   delivery    staging + latency + U[0, jitter]
///                                       message lands in the destination
///                                       mailbox; destination is unblocked
///   ack         delivery + ack_latency  on_acked fires at the initiator ->
///                                       local operation completion
///
/// Jitter makes channels non-FIFO, which the paper's termination-detection
/// algorithm must tolerate (its §III-A2 rejects FIFO-dependent algorithms).
///
/// send_staged() defers reading the source buffer to staging time: this is
/// what makes "overwrite the source before cofence()" a real data hazard in
/// the simulation, exactly as on hardware with a zero-copy NIC.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/mailbox.hpp"
#include "net/message.hpp"
#include "sim/engine.hpp"
#include "support/config.hpp"
#include "support/rng.hpp"

namespace caf2::net {

/// Completion callbacks of one send. Both run as engine callbacks (no
/// participant token): they may post messages and unblock images but must
/// not block.
struct SendCallbacks {
  /// Source buffer has been read; local data completion on the source image.
  std::function<void()> on_staged;
  /// Delivery acknowledged at the initiator; local operation completion.
  std::function<void()> on_acked;
};

/// Per-image traffic counters (used by the detector-ablation benchmark to
/// expose the X10-style centralized hotspot).
struct ImageTraffic {
  std::uint64_t messages_in = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t messages_out = 0;
  std::uint64_t bytes_out = 0;
};

class Network {
 public:
  Network(sim::Engine& engine, NetworkParams params, std::uint64_t seed);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Send a message whose payload is already materialized (spawn arguments
  /// are evaluated at initiation, paper Fig. 4 "Spawn" row). Staging still
  /// models injection time for the payload size.
  void send(Message message, SendCallbacks callbacks = {});

  /// Send a message whose payload is produced at *staging time* by \p read
  /// (asynchronous copies: the network reads the source buffer when the
  /// transfer is injected, not when the call returns). \p size_hint must be
  /// the number of bytes \p read will produce.
  void send_staged(MessageHeader header, std::size_t size_hint,
                   std::function<std::vector<std::uint8_t>()> read,
                   SendCallbacks callbacks = {});

  Mailbox& mailbox(int image);
  const Mailbox& mailbox(int image) const;

  const NetworkParams& params() const { return params_; }
  int size() const { return static_cast<int>(mailboxes_.size()); }

  std::uint64_t messages_sent() const { return messages_sent_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  const ImageTraffic& traffic(int image) const { return traffic_[image]; }

  /// Reset the per-image traffic counters (benchmarks call this between
  /// measurement phases).
  void reset_traffic();

 private:
  struct Timing {
    double stage_at;
    double deliver_at;
    double ack_at;
  };
  Timing plan(double now, std::size_t bytes);

  /// One in-flight message. A flight owns the message plus its completion
  /// callbacks and walks the stage → deliver → ack chain as a *single*
  /// self-rescheduling engine event: later phases' sequence numbers are
  /// reserved up front (Engine::reserve_seq) so lazy scheduling dispatches
  /// in exactly the order the seed's eager three-event schedule produced,
  /// and consecutive phases that fall on the same virtual time are run
  /// inline within one event instead of bouncing through the heap.
  struct Flight {
    Message message;
    SendCallbacks callbacks;
    Timing timing{};
    std::uint64_t deliver_seq = 0;
    std::uint64_t ack_seq = 0;
    bool has_ack = false;
  };

  /// Source-side accounting charged when the message is injected.
  void account_send(const Message& message);

  /// Post the delivery event at (timing.deliver_at, deliver_seq).
  void schedule_deliver(Flight flight);

  /// Execute the delivery (and, when ack_at coincides, the ack) now.
  void run_deliver_phase(Flight flight);

  sim::Engine& engine_;
  NetworkParams params_;
  Xoshiro256ss jitter_rng_;
  std::vector<Mailbox> mailboxes_;
  std::vector<ImageTraffic> traffic_;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
};

}  // namespace caf2::net
