#pragma once

/// \file network.hpp
/// Simulated interconnect: timing model + delivery.
///
/// A message initiated at virtual time t traverses four points that realize
/// the paper's completion spectrum (paper Fig. 1, DESIGN.md §4.2):
///
///   initiation  t                       send()/send_staged() returns
///   staging     t + size/bandwidth      source buffer read ("injected");
///                                       on_staged fires -> local data
///                                       completion of the operation
///   delivery    staging + latency + U[0, jitter]
///                                       message lands in the destination
///                                       mailbox; destination is unblocked
///   ack         delivery + ack_latency  on_acked fires at the initiator ->
///                                       local operation completion
///
/// Jitter makes channels non-FIFO, which the paper's termination-detection
/// algorithm must tolerate (its §III-A2 rejects FIFO-dependent algorithms).
///
/// send_staged() defers reading the source buffer to staging time: this is
/// what makes "overwrite the source before cofence()" a real data hazard in
/// the simulation, exactly as on hardware with a zero-copy NIC.
///
/// Reliable delivery (DESIGN.md §4.7). With an active FaultPlan (or
/// ReliabilityParams::Mode::kOn) the network layers a retransmission
/// protocol over the lossy wire:
///  - every message carries a per-(source, dest) sequence number and is
///    retained at the sender until acknowledged;
///  - the receiver keeps a per-link dedup window (a compacted set of seen
///    sequence numbers), so duplicated or retransmitted deliveries land in
///    the mailbox exactly once — and acks are re-sent for duplicates, which
///    recovers from lost acks;
///  - a virtual-time retransmit timer with exponential backoff resends
///    unacknowledged messages; after ReliabilityParams::max_attempts the
///    engine fails the run with a watchdog report naming the undeliverable
///    message instead of hanging.
/// on_staged fires exactly once (at the first attempt's staging point) and
/// on_acked exactly once (at the first acknowledgement), so finish counters
/// and cofence hazards are oblivious to loss. When the protocol is off, the
/// seed's bare three-event flight chain runs unchanged.
///
/// Sharded engines (DESIGN.md §4.11, §4.12). When the engine partitions
/// images across worker threads, a send whose source and destination live on
/// the same shard takes the legacy path verbatim. A cross-shard send draws
/// its whole timing plan at initiation from the *source shard's* jitter
/// stream (one independent stream per shard keeps multi-shard runs
/// deterministic for a fixed shard count), runs on_staged and on_acked on
/// the source shard at their planned times, and hands the delivery to the
/// destination shard through Engine::post_for(), which stages it into that
/// shard's inbox for the next window merge. deliver_at >= now + latency >=
/// now + lookahead by construction, so the conservative-window contract
/// holds.
///
/// The reliable-delivery protocol runs sharded too (DESIGN.md §4.12).
/// Protocol state is owned by the *source* shard: retained flights, flight
/// ids, retransmit timers, and the fault counters live in per-shard cells
/// (ReliableShard), and each shard rolls its attempts from its own fault
/// stream. A link's sender fields (next_seq, initiated) are only ever
/// touched by the source image's shard and its dedup fields (dedup_floor,
/// seen) only by the destination's, so LinkState needs no further
/// partitioning. Every fault decision of an attempt — including both ack
/// losses — is rolled at the sender before anything is scheduled, and the
/// receiver acknowledges every non-ack-dropped physical delivery regardless
/// of its dedup outcome; the sender can therefore schedule handle_ack at the
/// delivery's known time plus ack latency *itself*, with no cross-shard
/// return event (an ack latency below the lookahead would otherwise violate
/// the conservative window). Ack cancellation is then a plain source-local
/// map erase — no tombstones cross shards. A cross-shard delivery carries
/// its metadata (seq, first-sent, expected-delivery marks) in the event
/// closure instead of reading the sender-owned flight record.

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "net/mailbox.hpp"
#include "net/message.hpp"
#include "sim/engine.hpp"
#include "support/config.hpp"
#include "support/rng.hpp"

namespace caf2::obs {
class Recorder;
class FlightRecorder;
struct PmNetwork;
}

namespace caf2::net {

/// Completion callbacks of one send. Both run as engine callbacks (no
/// participant token): they may post messages and unblock images but must
/// not block.
struct SendCallbacks {
  /// Source buffer has been read; local data completion on the source image.
  std::function<void()> on_staged;
  /// Delivery acknowledged at the initiator; local operation completion.
  std::function<void()> on_acked;
};

/// Per-image traffic counters (used by the detector-ablation benchmark to
/// expose the X10-style centralized hotspot).
struct ImageTraffic {
  std::uint64_t messages_in = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t messages_out = 0;
  std::uint64_t bytes_out = 0;
};

class Network {
 public:
  Network(sim::Engine& engine, NetworkParams params, std::uint64_t seed);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Send a message whose payload is already materialized (spawn arguments
  /// are evaluated at initiation, paper Fig. 4 "Spawn" row). Staging still
  /// models injection time for the payload size.
  void send(Message message, SendCallbacks callbacks = {});

  /// Send a message whose payload is produced at *staging time* by \p read
  /// (asynchronous copies: the network reads the source buffer when the
  /// transfer is injected, not when the call returns). \p size_hint must be
  /// the number of bytes \p read will produce.
  void send_staged(MessageHeader header, std::size_t size_hint,
                   std::function<std::vector<std::uint8_t>()> read,
                   SendCallbacks callbacks = {});

  Mailbox& mailbox(int image);
  const Mailbox& mailbox(int image) const;

  const NetworkParams& params() const { return params_; }
  int size() const { return static_cast<int>(mailboxes_.size()); }

  std::uint64_t messages_sent() const {
    return messages_sent_.load(std::memory_order_relaxed);
  }
  std::uint64_t bytes_sent() const {
    return bytes_sent_.load(std::memory_order_relaxed);
  }
  const ImageTraffic& traffic(int image) const { return traffic_[image]; }

  /// Reset the per-image traffic counters (benchmarks call this between
  /// measurement phases).
  void reset_traffic();

  /// --- reliability / fault introspection -----------------------------------

  /// True when the reliable-delivery protocol is layered in for this run.
  bool reliable() const { return reliable_; }

  /// Injected-fault and protocol counters, aggregated over shards (all zero
  /// when reliable() is off).
  FaultStats fault_stats() const;

  /// Per-shard fault/protocol counters (one entry per engine shard; a single
  /// entry for serial runs). Deliveries dropped/duplicated/delayed, ack
  /// losses, and retransmits are charged to the *source* shard;
  /// duplicates_suppressed to the destination shard.
  std::vector<FaultStats> shard_fault_stats() const;

  /// Number of reliable messages currently unacknowledged (summed over
  /// shards).
  std::size_t inflight_reliable() const;

  /// Watchdog-report section: in-flight reliable messages (sender, receiver,
  /// sequence number, attempts, age) plus the fault counters. Thin shim over
  /// fill_postmortem() + obs::network_section_text().
  std::string describe_state() const;

  /// Snapshot the network's postmortem section: reliability mode, in-flight
  /// reliable messages (first obs::kMaxListedFlights of them), fault stats.
  void fill_postmortem(obs::PmNetwork& net) const;

  /// Attach an observability recorder (nullptr detaches; see obs/obs.hpp).
  /// Deliveries and acks then record flight spans on the network track, note
  /// unblock causes, and bump message counters — without ever scheduling or
  /// reordering events, so the flight chains are unchanged.
  void set_observer(obs::Recorder* observer) { observer_ = observer; }

  /// Attach the always-on flight recorder (nullptr detaches; see
  /// obs/flight_recorder.hpp). Sends, deliveries, acks, retransmissions, and
  /// injected faults then land in the per-image rings — plain ring stores,
  /// never scheduling or reordering events.
  void set_flight_recorder(obs::FlightRecorder* recorder) {
    flight_recorder_ = recorder;
  }

 private:
  struct Timing {
    double stage_at;
    double deliver_at;
    double ack_at;
  };
  Timing plan(double now, std::size_t bytes);

  /// The jitter stream timing draws come from: the per-shard stream of the
  /// calling shard on a sharded engine, the single legacy stream otherwise.
  Xoshiro256ss& jitter_rng();

  /// The fault stream attempt decisions come from: the per-shard stream of
  /// the calling shard on a sharded engine, the single legacy stream
  /// otherwise.
  Xoshiro256ss& fault_rng();

  /// True when source and destination images live on different shards.
  bool cross_shard(int source, int dest) const;

  /// The calling context's shard index (0 on an unsharded engine) — the
  /// recorder net lane and ReliableShard cell every source-side operation
  /// uses.
  int calling_shard_index() const;

  /// One in-flight message. A flight owns the message plus its completion
  /// callbacks and walks the stage → deliver → ack chain as a *single*
  /// self-rescheduling engine event: later phases' sequence numbers are
  /// reserved up front (Engine::reserve_seq) so lazy scheduling dispatches
  /// in exactly the order the seed's eager three-event schedule produced,
  /// and consecutive phases that fall on the same virtual time are run
  /// inline within one event instead of bouncing through the heap.
  struct Flight {
    Message message;
    SendCallbacks callbacks;
    Timing timing{};
    std::uint64_t deliver_seq = 0;
    std::uint64_t ack_seq = 0;
    bool has_ack = false;
    double init_us = 0.0;  ///< initiation time (observability only)
  };

  /// Source-side accounting charged when the message is injected.
  void account_send(const Message& message);

  /// Post the delivery event at (timing.deliver_at, deliver_seq).
  void schedule_deliver(Flight flight);

  /// Execute the delivery (and, when ack_at coincides, the ack) now.
  void run_deliver_phase(Flight flight);

  /// --- cross-shard delivery (sharded engines only) --------------------------

  /// send() when source and destination live on different shards.
  void send_cross(Message message, SendCallbacks callbacks);

  /// send_staged() when source and destination live on different shards.
  void send_staged_cross(MessageHeader header, std::size_t size_hint,
                         std::function<std::vector<std::uint8_t>()> read,
                         SendCallbacks callbacks);

  /// Destination-shard half of a cross-shard send: runs as a staged call on
  /// the destination shard (mailbox push, unblock, flight-recorder entry,
  /// observer spans on the destination shard's net lane). \p init_us is the
  /// send's initiation time, carried in the closure because the flight
  /// record stays on the source shard.
  void deliver_cross(Message message, double init_us);

  /// --- reliable-delivery protocol ------------------------------------------

  /// Per-(source, dest) link state. The sender side assigns sequence numbers
  /// and initiation ordinals; the receiver side keeps the dedup window: the
  /// set of seen sequence numbers at or above `dedup_floor`, compacted by
  /// advancing the floor over contiguous runs (everything below the floor
  /// has been seen).
  struct LinkState {
    std::uint64_t next_seq = 0;
    std::uint64_t initiated = 0;
    std::uint64_t dedup_floor = 0;
    std::set<std::uint64_t> seen;

    /// First sighting of \p seq? (Inserts and compacts when it is.)
    bool accept(std::uint64_t seq);
  };

  /// Fault decisions and timing draws for one delivery attempt. A fixed
  /// number of RNG values is consumed per attempt regardless of outcomes, so
  /// the fault stream stays aligned across configuration tweaks.
  struct AttemptFaults {
    bool drop = false;
    bool duplicate = false;
    bool ack_drop = false;      ///< ack of the primary delivery is lost
    bool dup_ack_drop = false;  ///< ack of the duplicate delivery is lost
    double extra_delay_us = 0.0;
    double jitter_us = 0.0;
    double dup_offset_us = 0.0;  ///< duplicate lands this much later
  };

  /// One unacknowledged reliable message, retained for retransmission.
  struct ReliableFlight {
    std::shared_ptr<const Message> message;
    SendCallbacks callbacks;
    std::uint64_t seq = 0;      ///< per-link sequence number
    std::uint64_t ordinal = 0;  ///< per-link initiation ordinal (1-based)
    int attempts = 0;           ///< delivery attempts made so far
    double first_sent_us = 0.0;
    double inject_us = 0.0;     ///< injection cost charged per attempt
    double rto_us = 0.0;        ///< current retransmit timeout
    // Observability only. "Expected" marks include the *maximum* jitter, so
    // a fault-free reliable run records no retransmit-delay spans and blame
    // reattribution fires only on genuinely fault-lengthened waits.
    double expected_deliver_us = 0.0;
    double expected_ack_us = 0.0;
    std::uint64_t obs_span = 0;  ///< flight span id (parent of the ack wake)
  };

  void send_reliable(Message message, SendCallbacks callbacks);
  void send_staged_reliable(MessageHeader header, std::size_t size_hint,
                            std::function<std::vector<std::uint8_t>()> read,
                            SendCallbacks callbacks);

  /// Register a new flight (assigns link seq + ordinal) in the calling
  /// shard's cell and return its id (source shard in the top 16 bits, cell-
  /// local counter below — serial ids are the plain counter).
  std::uint64_t admit_flight(Message message, SendCallbacks callbacks,
                             double inject_us);

  /// Launch the next delivery attempt of flight \p id: roll faults, post the
  /// delivery (and duplicate) events, and arm the retransmit timer. For a
  /// cross-shard flight the deliveries go through Engine::post_for and the
  /// sender schedules handle_ack itself at the known delivery time plus ack
  /// latency (see the file comment), so no event ever crosses back against
  /// the conservative window.
  void start_attempt(std::uint64_t id);

  AttemptFaults roll_faults(const ReliableFlight& flight);

  /// Receiver side of one physical delivery (primary or duplicate) when both
  /// endpoints share a shard: may read the sender-owned flight record
  /// directly and posts the ack itself.
  void deliver_attempt(const std::shared_ptr<const Message>& message,
                       std::uint64_t seq, std::uint64_t flight_id,
                       bool ack_dropped);

  /// Receiver side of one cross-shard physical delivery: all metadata rides
  /// in the arguments, the sender-owned flight record is never touched, and
  /// no ack is posted (the sender simulated it at schedule time).
  void deliver_attempt_cross(const std::shared_ptr<const Message>& message,
                             std::uint64_t seq, double first_sent_us,
                             double expected_deliver_us);

  /// Sender side of one acknowledgement; idempotent (late/duplicate acks of
  /// an already-completed flight are ignored).
  void handle_ack(std::uint64_t id);

  void on_retransmit_timer(std::uint64_t id, int attempt);

  /// Default initial retransmit timeout: a little over twice the worst-case
  /// round trip, including the largest configured fault delay.
  double auto_rto(double inject_us) const;

  LinkState& link(int source, int dest);

  sim::Engine& engine_;
  NetworkParams params_;
  Xoshiro256ss jitter_rng_;
  /// One jitter stream per shard on a sharded engine (empty otherwise):
  /// each shard's timing draws are then a pure function of that shard's
  /// deterministic execution, independent of cross-shard interleaving.
  std::vector<Xoshiro256ss> shard_jitter_;
  std::vector<Mailbox> mailboxes_;
  /// traffic_[x] is only ever written by image x's shard (out-fields at the
  /// source, in-fields at the destination), so plain counters stay safe.
  std::vector<ImageTraffic> traffic_;
  /// Global totals are bumped from every shard: relaxed atomics.
  std::atomic<std::uint64_t> messages_sent_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};

  // reliable-delivery state (empty when reliable_ is false)
  bool reliable_ = false;
  bool faults_active_ = false;
  Xoshiro256ss fault_rng_;
  /// One fault stream per shard on a sharded engine (empty otherwise),
  /// mirroring shard_jitter_: each shard's attempt decisions are a pure
  /// function of its own deterministic execution.
  std::vector<Xoshiro256ss> shard_fault_;
  std::vector<LinkState> links_;  ///< size() * size(), row-major by source
  /// Per-shard reliable-protocol cell: the flights retained by this (source)
  /// shard, its flight-id counter, and its fault counters. Flight ids are
  /// (shard << 48) | local, so id >> 48 recovers the owning cell from
  /// anywhere (serial runs use cell 0 and get the plain counter).
  struct ReliableShard {
    std::map<std::uint64_t, ReliableFlight> inflight;
    std::uint64_t next_flight_id = 0;
    FaultStats stats;
  };
  std::vector<ReliableShard> rel_shards_;  ///< engine shard count cells (>= 1)

  /// The calling shard's protocol cell.
  ReliableShard& rel_shard() {
    return rel_shards_[static_cast<std::size_t>(calling_shard_index())];
  }
  /// The cell owning flight \p id (its source shard's).
  ReliableShard& rel_shard_of(std::uint64_t id) {
    return rel_shards_[static_cast<std::size_t>(id >> 48)];
  }

  double max_extra_delay_us_ = 0.0;
  obs::Recorder* observer_ = nullptr;
  obs::FlightRecorder* flight_recorder_ = nullptr;
};

}  // namespace caf2::net
