#include "net/network.hpp"

namespace caf2::net {

Network::Network(sim::Engine& engine, NetworkParams params, std::uint64_t seed)
    : engine_(engine),
      params_(params),
      jitter_rng_(seed),
      mailboxes_(static_cast<std::size_t>(engine.size())),
      traffic_(static_cast<std::size_t>(engine.size())) {}

Mailbox& Network::mailbox(int image) {
  CAF2_REQUIRE(image >= 0 && image < size(), "mailbox(): image out of range");
  return mailboxes_[static_cast<std::size_t>(image)];
}

const Mailbox& Network::mailbox(int image) const {
  CAF2_REQUIRE(image >= 0 && image < size(), "mailbox(): image out of range");
  return mailboxes_[static_cast<std::size_t>(image)];
}

void Network::reset_traffic() {
  for (ImageTraffic& t : traffic_) {
    t = ImageTraffic{};
  }
}

Network::Timing Network::plan(double now, std::size_t bytes) {
  Timing timing{};
  const double inject =
      params_.bandwidth_bytes_per_us > 0.0
          ? static_cast<double>(bytes) / params_.bandwidth_bytes_per_us
          : 0.0;
  timing.stage_at = now + inject;
  double jitter = 0.0;
  if (params_.jitter_us > 0.0) {
    jitter = jitter_rng_.next_double() * params_.jitter_us;
  }
  timing.deliver_at = timing.stage_at + params_.latency_us + jitter;
  timing.ack_at = timing.deliver_at + params_.effective_ack_latency_us();
  return timing;
}

void Network::account_send(const Message& message) {
  const std::size_t source = static_cast<std::size_t>(message.header.source);
  const std::size_t bytes = message.size_bytes();
  ++messages_sent_;
  bytes_sent_ += bytes;
  traffic_[source].messages_out += 1;
  traffic_[source].bytes_out += bytes;
}

void Network::run_deliver_phase(Flight flight) {
  const std::size_t dest = static_cast<std::size_t>(flight.message.header.dest);
  traffic_[dest].messages_in += 1;
  traffic_[dest].bytes_in += flight.message.size_bytes();
  mailboxes_[dest].push(std::move(flight.message));
  engine_.unblock(static_cast<int>(dest));
  if (flight.has_ack) {
    if (flight.timing.ack_at == flight.timing.deliver_at) {
      // Zero ack latency: completion is observable at delivery time, and the
      // reserved ack sequence number immediately follows the delivery's, so
      // running it inline preserves the dispatch order exactly.
      flight.callbacks.on_acked();
    } else {
      engine_.post_reserved(flight.timing.ack_at, flight.ack_seq,
                            std::move(flight.callbacks.on_acked));
    }
  }
}

void Network::schedule_deliver(Flight flight) {
  const double at = flight.timing.deliver_at;
  const std::uint64_t seq = flight.deliver_seq;
  engine_.post_reserved(at, seq, [this, f = std::move(flight)]() mutable {
    run_deliver_phase(std::move(f));
  });
}

void Network::send(Message message, SendCallbacks callbacks) {
  CAF2_REQUIRE(message.header.dest >= 0 && message.header.dest < size(),
               "send(): destination image out of range");
  Flight flight;
  flight.timing = plan(engine_.now(), message.size_bytes());
  flight.message = std::move(message);
  flight.callbacks = std::move(callbacks);
  account_send(flight.message);

  // Reserve the chain's sequence numbers in the order the seed posted its
  // events (stage, deliver, ack) so dispatch order is unchanged.
  const bool has_stage = flight.callbacks.on_staged != nullptr;
  std::uint64_t stage_seq = 0;
  if (has_stage) {
    stage_seq = engine_.reserve_seq();
  }
  flight.deliver_seq = engine_.reserve_seq();
  flight.has_ack = flight.callbacks.on_acked != nullptr;
  if (flight.has_ack) {
    flight.ack_seq = engine_.reserve_seq();
  }

  if (!has_stage) {
    schedule_deliver(std::move(flight));
    return;
  }
  const bool merge_deliver =
      flight.timing.stage_at == flight.timing.deliver_at;
  engine_.post_reserved(
      flight.timing.stage_at, stage_seq,
      [this, f = std::move(flight), merge_deliver]() mutable {
        f.callbacks.on_staged();
        f.callbacks.on_staged = nullptr;
        if (merge_deliver) {
          // The delivery's reserved sequence number directly follows the
          // stage's, so nothing can dispatch between them: run it inline.
          run_deliver_phase(std::move(f));
        } else {
          schedule_deliver(std::move(f));
        }
      });
}

void Network::send_staged(MessageHeader header, std::size_t size_hint,
                          std::function<std::vector<std::uint8_t>()> read,
                          SendCallbacks callbacks) {
  CAF2_REQUIRE(header.dest >= 0 && header.dest < size(),
               "send_staged(): destination image out of range");
  CAF2_REQUIRE(read != nullptr, "send_staged(): needs a staging reader");
  const Timing timing = plan(engine_.now(), size_hint);

  // At staging time the network reads the source buffer; only then does the
  // message exist as an independent payload. Overwriting the source buffer
  // before local data completion corrupts the transfer, as on real RDMA
  // hardware.
  const std::uint64_t stage_seq = engine_.reserve_seq();
  engine_.post_reserved(
      timing.stage_at, stage_seq,
      [this, header, timing, read = std::move(read),
       callbacks = std::move(callbacks)]() mutable {
        Flight flight;
        flight.message.header = header;
        flight.message.payload = read();
        flight.callbacks = std::move(callbacks);
        flight.timing = timing;
        if (flight.callbacks.on_staged) {
          flight.callbacks.on_staged();
          flight.callbacks.on_staged = nullptr;
        }
        // The seed allocated deliver/ack sequence numbers only here, after
        // on_staged ran — events on_staged posted at the delivery time must
        // dispatch before the delivery, so the delivery stays a separate
        // event even when stage_at == deliver_at.
        flight.deliver_seq = engine_.reserve_seq();
        flight.has_ack = flight.callbacks.on_acked != nullptr;
        if (flight.has_ack) {
          flight.ack_seq = engine_.reserve_seq();
        }
        account_send(flight.message);
        schedule_deliver(std::move(flight));
      });
}

}  // namespace caf2::net
