#include "net/network.hpp"

namespace caf2::net {

Network::Network(sim::Engine& engine, NetworkParams params, std::uint64_t seed)
    : engine_(engine),
      params_(params),
      jitter_rng_(seed),
      mailboxes_(static_cast<std::size_t>(engine.size())),
      traffic_(static_cast<std::size_t>(engine.size())) {}

Mailbox& Network::mailbox(int image) {
  CAF2_REQUIRE(image >= 0 && image < size(), "mailbox(): image out of range");
  return mailboxes_[static_cast<std::size_t>(image)];
}

const Mailbox& Network::mailbox(int image) const {
  CAF2_REQUIRE(image >= 0 && image < size(), "mailbox(): image out of range");
  return mailboxes_[static_cast<std::size_t>(image)];
}

void Network::reset_traffic() {
  for (ImageTraffic& t : traffic_) {
    t = ImageTraffic{};
  }
}

Network::Timing Network::plan(double now, std::size_t bytes) {
  Timing timing{};
  const double inject =
      params_.bandwidth_bytes_per_us > 0.0
          ? static_cast<double>(bytes) / params_.bandwidth_bytes_per_us
          : 0.0;
  timing.stage_at = now + inject;
  double jitter = 0.0;
  if (params_.jitter_us > 0.0) {
    jitter = jitter_rng_.next_double() * params_.jitter_us;
  }
  timing.deliver_at = timing.stage_at + params_.latency_us + jitter;
  timing.ack_at = timing.deliver_at + params_.effective_ack_latency_us();
  return timing;
}

void Network::deliver(Message message, const Timing& timing,
                      SendCallbacks callbacks) {
  const int dest = message.header.dest;
  const int source = message.header.source;
  const std::size_t bytes = message.size_bytes();

  ++messages_sent_;
  bytes_sent_ += bytes;
  traffic_[static_cast<std::size_t>(source)].messages_out += 1;
  traffic_[static_cast<std::size_t>(source)].bytes_out += bytes;

  engine_.post(timing.deliver_at,
               [this, dest, message = std::move(message)]() mutable {
                 traffic_[static_cast<std::size_t>(dest)].messages_in += 1;
                 traffic_[static_cast<std::size_t>(dest)].bytes_in +=
                     message.size_bytes();
                 mailboxes_[static_cast<std::size_t>(dest)].push(
                     std::move(message));
                 engine_.unblock(dest);
               });
  if (callbacks.on_acked) {
    engine_.post(timing.ack_at, std::move(callbacks.on_acked));
  }
}

void Network::send(Message message, SendCallbacks callbacks) {
  CAF2_REQUIRE(message.header.dest >= 0 && message.header.dest < size(),
               "send(): destination image out of range");
  const Timing timing = plan(engine_.now(), message.size_bytes());
  if (callbacks.on_staged) {
    engine_.post(timing.stage_at, std::move(callbacks.on_staged));
    callbacks.on_staged = nullptr;
  }
  deliver(std::move(message), timing, std::move(callbacks));
}

void Network::send_staged(MessageHeader header, std::size_t size_hint,
                          std::function<std::vector<std::uint8_t>()> read,
                          SendCallbacks callbacks) {
  CAF2_REQUIRE(header.dest >= 0 && header.dest < size(),
               "send_staged(): destination image out of range");
  CAF2_REQUIRE(read != nullptr, "send_staged(): needs a staging reader");
  const Timing timing = plan(engine_.now(), size_hint);

  // At staging time the network reads the source buffer; only then does the
  // message exist as an independent payload. Overwriting the source buffer
  // before local data completion corrupts the transfer, as on real RDMA
  // hardware.
  engine_.post(timing.stage_at, [this, header, timing,
                                 read = std::move(read),
                                 callbacks = std::move(callbacks)]() mutable {
    Message message;
    message.header = header;
    message.payload = read();
    if (callbacks.on_staged) {
      callbacks.on_staged();
      callbacks.on_staged = nullptr;
    }
    deliver(std::move(message), timing, std::move(callbacks));
  });
}

}  // namespace caf2::net
