#include "net/network.hpp"

#include <algorithm>
#include <sstream>

#include "obs/flight_recorder.hpp"
#include "obs/obs.hpp"
#include "obs/postmortem.hpp"

namespace caf2::net {

Network::Network(sim::Engine& engine, NetworkParams params, std::uint64_t seed)
    : engine_(engine),
      params_(std::move(params)),
      jitter_rng_(seed),
      mailboxes_(static_cast<std::size_t>(engine.size())),
      traffic_(static_cast<std::size_t>(engine.size())),
      // The fault stream is independent of the jitter stream so that
      // enabling a FaultPlan leaves a run's jitter draws untouched.
      fault_rng_(SplitMix64(seed).child(1)) {
  params_.validate();
  reliable_ = params_.reliable_delivery();
  faults_active_ = params_.faults.active();
  if (engine.sharded()) {
    SplitMix64 seeder(seed);
    const int shard_count = engine.shard_count();
    shard_jitter_.reserve(static_cast<std::size_t>(shard_count));
    shard_fault_.reserve(static_cast<std::size_t>(shard_count));
    for (int shard = 0; shard < shard_count; ++shard) {
      // child(0) is unused here and child(1) feeds the legacy serial fault
      // stream; the per-shard jitter streams are children 2..shard_count+1
      // and the per-shard fault streams follow at shard_count+2 onward.
      shard_jitter_.emplace_back(
          seeder.child(static_cast<std::uint64_t>(shard) + 2));
      shard_fault_.emplace_back(seeder.child(
          static_cast<std::uint64_t>(shard_count) +
          static_cast<std::uint64_t>(shard) + 2));
    }
  }
  // One protocol cell per shard (one total for serial engines); flight ids
  // carry the owning cell in their top 16 bits, so a shard count past 2^16
  // would make rel_shard_of() route acks and retransmit timers to the wrong
  // cell.
  CAF2_REQUIRE(engine.shard_count() <= (1 << 16),
               "Network: shard count exceeds the flight-id shard field");
  rel_shards_.resize(
      engine.sharded() ? static_cast<std::size_t>(engine.shard_count()) : 1);
  if (reliable_) {
    links_.resize(static_cast<std::size_t>(engine.size()) *
                  static_cast<std::size_t>(engine.size()));
    max_extra_delay_us_ = params_.faults.all.delay_max_us;
    for (const LinkFaults& link : params_.faults.links) {
      max_extra_delay_us_ = std::max(max_extra_delay_us_, link.delay_max_us);
    }
    for (const ScriptedFault& fault : params_.faults.scripted) {
      max_extra_delay_us_ = std::max(max_extra_delay_us_, fault.delay_us);
    }
  }
}

Mailbox& Network::mailbox(int image) {
  CAF2_REQUIRE(image >= 0 && image < size(), "mailbox(): image out of range");
  return mailboxes_[static_cast<std::size_t>(image)];
}

const Mailbox& Network::mailbox(int image) const {
  CAF2_REQUIRE(image >= 0 && image < size(), "mailbox(): image out of range");
  return mailboxes_[static_cast<std::size_t>(image)];
}

void Network::reset_traffic() {
  for (ImageTraffic& t : traffic_) {
    t = ImageTraffic{};
  }
}

Xoshiro256ss& Network::jitter_rng() {
  if (shard_jitter_.empty()) {
    return jitter_rng_;
  }
  return shard_jitter_[static_cast<std::size_t>(engine_.current_shard())];
}

Xoshiro256ss& Network::fault_rng() {
  if (shard_fault_.empty()) {
    return fault_rng_;
  }
  return shard_fault_[static_cast<std::size_t>(engine_.current_shard())];
}

bool Network::cross_shard(int source, int dest) const {
  return engine_.sharded() &&
         engine_.shard_of(source) != engine_.shard_of(dest);
}

int Network::calling_shard_index() const {
  return engine_.sharded() ? engine_.current_shard() : 0;
}

FaultStats Network::fault_stats() const {
  FaultStats total;
  for (const ReliableShard& cell : rel_shards_) {
    total.deliveries_dropped += cell.stats.deliveries_dropped;
    total.deliveries_duplicated += cell.stats.deliveries_duplicated;
    total.deliveries_delayed += cell.stats.deliveries_delayed;
    total.acks_dropped += cell.stats.acks_dropped;
    total.retransmits += cell.stats.retransmits;
    total.duplicates_suppressed += cell.stats.duplicates_suppressed;
    total.scripted_applied += cell.stats.scripted_applied;
  }
  return total;
}

std::vector<FaultStats> Network::shard_fault_stats() const {
  std::vector<FaultStats> per_shard;
  per_shard.reserve(rel_shards_.size());
  for (const ReliableShard& cell : rel_shards_) {
    per_shard.push_back(cell.stats);
  }
  return per_shard;
}

std::size_t Network::inflight_reliable() const {
  std::size_t total = 0;
  for (const ReliableShard& cell : rel_shards_) {
    total += cell.inflight.size();
  }
  return total;
}

Network::Timing Network::plan(double now, std::size_t bytes) {
  Timing timing{};
  // bandwidth is validated > 0 (infinity => instantaneous staging).
  const double inject =
      static_cast<double>(bytes) / params_.bandwidth_bytes_per_us;
  timing.stage_at = now + inject;
  double jitter = 0.0;
  if (params_.jitter_us > 0.0) {
    jitter = jitter_rng().next_double() * params_.jitter_us;
  }
  timing.deliver_at = timing.stage_at + params_.latency_us + jitter;
  timing.ack_at = timing.deliver_at + params_.effective_ack_latency_us();
  return timing;
}

void Network::account_send(const Message& message) {
  const std::size_t source = static_cast<std::size_t>(message.header.source);
  const std::size_t bytes = message.size_bytes();
  messages_sent_.fetch_add(1, std::memory_order_relaxed);
  bytes_sent_.fetch_add(bytes, std::memory_order_relaxed);
  traffic_[source].messages_out += 1;
  traffic_[source].bytes_out += bytes;
  if (observer_ != nullptr) {
    observer_->add(message.header.source, obs::Counter::kMessagesSent);
  }
  if (flight_recorder_ != nullptr) {
    flight_recorder_->record(message.header.source, engine_.now(),
                             obs::FrKind::kSend, message.header.dest, bytes,
                             static_cast<std::uint64_t>(message.header.handler));
  }
}

void Network::run_deliver_phase(Flight flight) {
  const int source = flight.message.header.source;
  const std::size_t dest = static_cast<std::size_t>(flight.message.header.dest);
  const std::size_t bytes = flight.message.size_bytes();
  traffic_[dest].messages_in += 1;
  traffic_[dest].bytes_in += bytes;
  const std::uint64_t handler =
      static_cast<std::uint64_t>(flight.message.header.handler);
  mailboxes_[dest].push(std::move(flight.message));
  engine_.unblock(static_cast<int>(dest));
  if (flight_recorder_ != nullptr) {
    flight_recorder_->record(static_cast<int>(dest), engine_.now(),
                             obs::FrKind::kDeliver, source, bytes, handler);
  }
  std::uint64_t span = 0;
  if (observer_ != nullptr) {
    const double now = engine_.now();
    span = observer_->flight_span(source, static_cast<int>(dest),
                                  flight.init_us, now, bytes,
                                  calling_shard_index());
    observer_->note_cause(static_cast<int>(dest), span);
    observer_->add(static_cast<int>(dest), obs::Counter::kMessagesDelivered);
    observer_->maxed(static_cast<int>(dest), obs::Counter::kMailboxHighWater,
                     mailboxes_[dest].size());
    observer_->observe(static_cast<int>(dest), obs::Hist::kMessageLatency,
                       now - flight.init_us);
  }
  if (flight.has_ack) {
    if (flight.timing.ack_at == flight.timing.deliver_at) {
      // Zero ack latency: completion is observable at delivery time, and the
      // reserved ack sequence number immediately follows the delivery's, so
      // running it inline preserves the dispatch order exactly.
      if (observer_ != nullptr) {
        observer_->note_cause(source, span);
      }
      flight.callbacks.on_acked();
    } else if (observer_ == nullptr) {
      engine_.post_reserved(flight.timing.ack_at, flight.ack_seq,
                            std::move(flight.callbacks.on_acked));
    } else {
      // Same event, same (at, seq); the wrapper only notes the cause first.
      engine_.post_reserved(
          flight.timing.ack_at, flight.ack_seq,
          [this, source, span,
           acked = std::move(flight.callbacks.on_acked)] {
            observer_->note_cause(source, span);
            acked();
          });
    }
  }
}

void Network::schedule_deliver(Flight flight) {
  const double at = flight.timing.deliver_at;
  const std::uint64_t seq = flight.deliver_seq;
  engine_.post_reserved(at, seq, [this, f = std::move(flight)]() mutable {
    run_deliver_phase(std::move(f));
  });
}

void Network::send(Message message, SendCallbacks callbacks) {
  CAF2_REQUIRE(message.header.dest >= 0 && message.header.dest < size(),
               "send(): destination image out of range");
  if (reliable_) {
    send_reliable(std::move(message), std::move(callbacks));
    return;
  }
  if (cross_shard(message.header.source, message.header.dest)) {
    send_cross(std::move(message), std::move(callbacks));
    return;
  }
  Flight flight;
  flight.init_us = engine_.now();
  flight.timing = plan(flight.init_us, message.size_bytes());
  flight.message = std::move(message);
  flight.callbacks = std::move(callbacks);
  account_send(flight.message);

  // Reserve the chain's sequence numbers in the order the seed posted its
  // events (stage, deliver, ack) so dispatch order is unchanged.
  const bool has_stage = flight.callbacks.on_staged != nullptr;
  std::uint64_t stage_seq = 0;
  if (has_stage) {
    stage_seq = engine_.reserve_seq();
  }
  flight.deliver_seq = engine_.reserve_seq();
  flight.has_ack = flight.callbacks.on_acked != nullptr;
  if (flight.has_ack) {
    flight.ack_seq = engine_.reserve_seq();
  }

  if (!has_stage) {
    schedule_deliver(std::move(flight));
    return;
  }
  const bool merge_deliver =
      flight.timing.stage_at == flight.timing.deliver_at;
  engine_.post_reserved(
      flight.timing.stage_at, stage_seq,
      [this, f = std::move(flight), merge_deliver]() mutable {
        f.callbacks.on_staged();
        f.callbacks.on_staged = nullptr;
        if (merge_deliver) {
          // The delivery's reserved sequence number directly follows the
          // stage's, so nothing can dispatch between them: run it inline.
          run_deliver_phase(std::move(f));
        } else {
          schedule_deliver(std::move(f));
        }
      });
}

void Network::send_staged(MessageHeader header, std::size_t size_hint,
                          std::function<std::vector<std::uint8_t>()> read,
                          SendCallbacks callbacks) {
  CAF2_REQUIRE(header.dest >= 0 && header.dest < size(),
               "send_staged(): destination image out of range");
  CAF2_REQUIRE(read != nullptr, "send_staged(): needs a staging reader");
  if (reliable_) {
    send_staged_reliable(header, size_hint, std::move(read),
                         std::move(callbacks));
    return;
  }
  if (cross_shard(header.source, header.dest)) {
    send_staged_cross(header, size_hint, std::move(read),
                      std::move(callbacks));
    return;
  }
  const double init_us = engine_.now();
  const Timing timing = plan(init_us, size_hint);

  // At staging time the network reads the source buffer; only then does the
  // message exist as an independent payload. Overwriting the source buffer
  // before local data completion corrupts the transfer, as on real RDMA
  // hardware.
  const std::uint64_t stage_seq = engine_.reserve_seq();
  engine_.post_reserved(
      timing.stage_at, stage_seq,
      [this, header, timing, init_us, read = std::move(read),
       callbacks = std::move(callbacks)]() mutable {
        Flight flight;
        flight.message.header = header;
        flight.message.payload = read();
        flight.callbacks = std::move(callbacks);
        flight.timing = timing;
        flight.init_us = init_us;
        if (flight.callbacks.on_staged) {
          flight.callbacks.on_staged();
          flight.callbacks.on_staged = nullptr;
        }
        // The seed allocated deliver/ack sequence numbers only here, after
        // on_staged ran — events on_staged posted at the delivery time must
        // dispatch before the delivery, so the delivery stays a separate
        // event even when stage_at == deliver_at.
        flight.deliver_seq = engine_.reserve_seq();
        flight.has_ack = flight.callbacks.on_acked != nullptr;
        if (flight.has_ack) {
          flight.ack_seq = engine_.reserve_seq();
        }
        account_send(flight.message);
        schedule_deliver(std::move(flight));
      });
}

/// --- cross-shard delivery ----------------------------------------------------
///
/// Source and destination live on different shards of a sharded engine
/// (DESIGN.md §4.11). The timing plan is drawn at initiation from the source
/// shard's jitter stream; on_staged and on_acked run on the source shard at
/// their planned times, and only the delivery itself crosses shards, staged
/// into the destination's inbox via Engine::post_for(). Best-effort delivery
/// cannot fail, so the ack is scheduled at plan time — and deliver_at >=
/// now + latency_us >= now + lookahead keeps the conservative-window
/// contract by construction (the runtime derives the lookahead from the
/// wire latency).

void Network::deliver_cross(Message message, double init_us) {
  const int source = message.header.source;
  const std::size_t dest = static_cast<std::size_t>(message.header.dest);
  const std::size_t bytes = message.size_bytes();
  const std::uint64_t handler =
      static_cast<std::uint64_t>(message.header.handler);
  traffic_[dest].messages_in += 1;
  traffic_[dest].bytes_in += bytes;
  mailboxes_[dest].push(std::move(message));
  engine_.unblock(static_cast<int>(dest));
  if (flight_recorder_ != nullptr) {
    flight_recorder_->record(static_cast<int>(dest), engine_.now(),
                             obs::FrKind::kDeliver, source, bytes, handler);
  }
  if (observer_ != nullptr) {
    // The flight span lands on the *destination* shard's net lane; the
    // source-side ack wake keeps no parent link (the span id would have to
    // cross shards), which only costs the blame analyzer one ack-edge.
    const double now = engine_.now();
    const std::uint64_t span =
        observer_->flight_span(source, static_cast<int>(dest), init_us, now,
                               bytes, calling_shard_index());
    observer_->note_cause(static_cast<int>(dest), span);
    observer_->add(static_cast<int>(dest), obs::Counter::kMessagesDelivered);
    observer_->maxed(static_cast<int>(dest), obs::Counter::kMailboxHighWater,
                     mailboxes_[dest].size());
    observer_->observe(static_cast<int>(dest), obs::Hist::kMessageLatency,
                       now - init_us);
  }
}

void Network::send_cross(Message message, SendCallbacks callbacks) {
  const double init_us = engine_.now();
  const Timing timing = plan(init_us, message.size_bytes());
  account_send(message);
  const int dest = message.header.dest;
  if (callbacks.on_staged) {
    engine_.post(timing.stage_at, std::move(callbacks.on_staged));
  }
  engine_.post_for(dest, timing.deliver_at,
                   [this, init_us, msg = std::move(message)]() mutable {
                     deliver_cross(std::move(msg), init_us);
                   });
  if (callbacks.on_acked) {
    engine_.post(timing.ack_at, std::move(callbacks.on_acked));
  }
}

void Network::send_staged_cross(
    MessageHeader header, std::size_t size_hint,
    std::function<std::vector<std::uint8_t>()> read,
    SendCallbacks callbacks) {
  const double init_us = engine_.now();
  const Timing timing = plan(init_us, size_hint);
  // As on the legacy path, the source buffer is read at staging time: the
  // "overwrite before cofence()" hazard stays real across shards.
  engine_.post(timing.stage_at,
               [this, header, timing, init_us, read = std::move(read),
                callbacks = std::move(callbacks)]() mutable {
                 Message message;
                 message.header = header;
                 message.payload = read();
                 if (callbacks.on_staged) {
                   callbacks.on_staged();
                 }
                 account_send(message);
                 engine_.post_for(header.dest, timing.deliver_at,
                                  [this, init_us,
                                   msg = std::move(message)]() mutable {
                                    deliver_cross(std::move(msg), init_us);
                                  });
                 if (callbacks.on_acked) {
                   engine_.post(timing.ack_at, std::move(callbacks.on_acked));
                 }
               });
}

/// --- reliable-delivery protocol ----------------------------------------------

bool Network::LinkState::accept(std::uint64_t seq) {
  if (seq < dedup_floor || seen.contains(seq)) {
    return false;
  }
  seen.insert(seq);
  while (seen.contains(dedup_floor)) {
    seen.erase(dedup_floor);
    ++dedup_floor;
  }
  return true;
}

Network::LinkState& Network::link(int source, int dest) {
  return links_[static_cast<std::size_t>(source) *
                    static_cast<std::size_t>(size()) +
                static_cast<std::size_t>(dest)];
}

double Network::auto_rto(double inject_us) const {
  const double round_trip = inject_us + params_.latency_us +
                            params_.jitter_us +
                            params_.effective_ack_latency_us();
  return 2.0 * round_trip + max_extra_delay_us_ + 1.0;
}

std::uint64_t Network::admit_flight(Message message, SendCallbacks callbacks,
                                    double inject_us) {
  account_send(message);
  LinkState& sender = link(message.header.source, message.header.dest);
  ReliableShard& cell = rel_shard();
  CAF2_ASSERT(cell.next_flight_id < (std::uint64_t{1} << 48),
              "admit_flight: per-shard flight-id counter overflow");
  const std::uint64_t id =
      (static_cast<std::uint64_t>(calling_shard_index()) << 48) |
      cell.next_flight_id++;
  ReliableFlight flight;
  flight.seq = sender.next_seq++;
  flight.ordinal = ++sender.initiated;
  flight.inject_us = inject_us;
  flight.first_sent_us = engine_.now();
  flight.rto_us = params_.reliability.rto_us > 0.0
                      ? params_.reliability.rto_us
                      : auto_rto(inject_us);
  flight.callbacks = std::move(callbacks);
  flight.message = std::make_shared<const Message>(std::move(message));
  cell.inflight.emplace(id, std::move(flight));
  return id;
}

Network::AttemptFaults Network::roll_faults(const ReliableFlight& flight) {
  AttemptFaults faults;
  if (params_.jitter_us > 0.0) {
    faults.jitter_us = jitter_rng().next_double() * params_.jitter_us;
  }
  if (!faults_active_) {
    return faults;
  }
  const MessageHeader& header = flight.message->header;
  // A fixed number of fault-stream draws per attempt keeps the stream
  // aligned no matter which faults actually fire. On a sharded engine the
  // draws come from the calling (source) shard's stream.
  Xoshiro256ss& rng = fault_rng();
  const double u_drop = rng.next_double();
  const double u_dup = rng.next_double();
  const double u_ack = rng.next_double();
  const double u_dup_ack = rng.next_double();
  const double u_delay = rng.next_double();
  const double u_delay_amount = rng.next_double();
  const double u_dup_offset = rng.next_double();

  const LinkFaults& lf =
      params_.faults.resolve(header.source, header.dest);
  faults.drop = u_drop < lf.drop_probability;
  faults.duplicate = u_dup < lf.dup_probability;
  faults.ack_drop = u_ack < lf.ack_drop_probability;
  faults.dup_ack_drop = u_dup_ack < lf.ack_drop_probability;
  if (u_delay < lf.delay_probability) {
    faults.extra_delay_us = u_delay_amount * lf.delay_max_us;
  }
  faults.dup_offset_us = u_dup_offset * params_.jitter_us;

  for (const ScriptedFault& scripted : params_.faults.scripted) {
    if (scripted.source != header.source || scripted.dest != header.dest ||
        scripted.nth != flight.ordinal ||
        (scripted.attempt != 0 && scripted.attempt != flight.attempts)) {
      continue;
    }
    rel_shard().stats.scripted_applied += 1;
    switch (scripted.kind) {
      case FaultKind::kDrop:
        faults.drop = true;
        break;
      case FaultKind::kDuplicate:
        faults.duplicate = true;
        break;
      case FaultKind::kDelay:
        faults.extra_delay_us += scripted.delay_us;
        break;
    }
  }
  return faults;
}

void Network::start_attempt(std::uint64_t id) {
  ReliableShard& cell = rel_shard_of(id);
  auto it = cell.inflight.find(id);
  CAF2_ASSERT(it != cell.inflight.end(), "start_attempt: unknown flight");
  ReliableFlight& flight = it->second;
  flight.attempts += 1;

  const AttemptFaults faults = roll_faults(flight);
  const int fault_source = flight.message->header.source;
  if (faults.drop) {
    cell.stats.deliveries_dropped += 1;
    if (flight_recorder_ != nullptr) {
      flight_recorder_->record(fault_source, engine_.now(),
                               obs::FrKind::kFaultDrop,
                               flight.message->header.dest, flight.seq,
                               static_cast<std::uint64_t>(flight.attempts));
    }
  }
  if (faults.duplicate) {
    cell.stats.deliveries_duplicated += 1;
    if (flight_recorder_ != nullptr) {
      flight_recorder_->record(fault_source, engine_.now(),
                               obs::FrKind::kFaultDuplicate,
                               flight.message->header.dest, flight.seq,
                               static_cast<std::uint64_t>(flight.attempts));
    }
  }
  if (faults.extra_delay_us > 0.0) {
    cell.stats.deliveries_delayed += 1;
    if (flight_recorder_ != nullptr) {
      flight_recorder_->record(fault_source, engine_.now(),
                               obs::FrKind::kFaultDelay,
                               flight.message->header.dest, flight.seq,
                               static_cast<std::uint64_t>(flight.attempts));
    }
  }

  // The first attempt is launched at staging time (injection already
  // elapsed); retransmissions re-inject the payload from scratch.
  const double base =
      engine_.now() + (flight.attempts == 1 ? 0.0 : flight.inject_us);
  if (flight.attempts == 1) {
    // Fault-free expectations, jitter at its configured maximum: actual
    // times beyond these are provably fault-induced.
    flight.expected_deliver_us = base + params_.latency_us + params_.jitter_us;
    flight.expected_ack_us =
        flight.expected_deliver_us + params_.effective_ack_latency_us();
  }
  const double deliver_at = base + params_.latency_us + faults.jitter_us +
                            faults.extra_delay_us;
  const MessageHeader& header = flight.message->header;
  if (!cross_shard(header.source, header.dest)) {
    if (!faults.drop) {
      engine_.post(deliver_at, [this, message = flight.message,
                                seq = flight.seq, id,
                                ack_dropped = faults.ack_drop] {
        deliver_attempt(message, seq, id, ack_dropped);
      });
    }
    if (faults.duplicate) {
      engine_.post(deliver_at + faults.dup_offset_us,
                   [this, message = flight.message, seq = flight.seq, id,
                    ack_dropped = faults.dup_ack_drop] {
                     deliver_attempt(message, seq, id, ack_dropped);
                   });
    }
  } else {
    // Cross-shard attempt (DESIGN.md §4.12): the deliveries go through the
    // destination shard's inbox carrying their metadata in the closure, and
    // the sender simulates the acks itself. Every fault decision — including
    // both ack losses — was just rolled above, and the receiver acks every
    // non-dropped physical delivery unconditionally (dedup outcome included),
    // so each delivery's ack time is already known here: the delivery time
    // plus the ack latency. handle_ack is idempotent, so simulating both
    // acks is exactly the legacy protocol without any event crossing back
    // against the conservative window (the ack latency may be below the
    // lookahead). deliver_at >= now + latency_us >= now + lookahead keeps
    // the forward direction legal.
    const double ack_latency = params_.effective_ack_latency_us();
    if (!faults.drop) {
      engine_.post_for(header.dest, deliver_at,
                       [this, message = flight.message, seq = flight.seq,
                        first_sent = flight.first_sent_us,
                        expected = flight.expected_deliver_us] {
                         deliver_attempt_cross(message, seq, first_sent,
                                               expected);
                       });
      if (faults.ack_drop) {
        // Charged at roll time on the sender's ring (the receiver can't
        // touch source-shard counters); totals match the legacy protocol
        // because every launched non-dropped delivery lands. The entry is
        // stamped `deliver_at` — the time the same-shard path records the
        // drop from inside deliver_attempt — so time-windowed postmortem
        // analysis sees one timeline regardless of path; recording may not
        // schedule events (flight_recorder.hpp), so the ring's insertion
        // order can run locally ahead of this future stamp.
        cell.stats.acks_dropped += 1;
        if (flight_recorder_ != nullptr) {
          flight_recorder_->record(header.source, deliver_at,
                                   obs::FrKind::kFaultAckLoss, header.dest,
                                   flight.seq, 0);
        }
      } else {
        engine_.post(deliver_at + ack_latency,
                     [this, id] { handle_ack(id); });
      }
    }
    if (faults.duplicate) {
      const double dup_at = deliver_at + faults.dup_offset_us;
      engine_.post_for(header.dest, dup_at,
                       [this, message = flight.message, seq = flight.seq,
                        first_sent = flight.first_sent_us,
                        expected = flight.expected_deliver_us] {
                         deliver_attempt_cross(message, seq, first_sent,
                                               expected);
                       });
      if (faults.dup_ack_drop) {
        cell.stats.acks_dropped += 1;
        if (flight_recorder_ != nullptr) {
          flight_recorder_->record(header.source, dup_at,
                                   obs::FrKind::kFaultAckLoss, header.dest,
                                   flight.seq, 0);
        }
      } else {
        engine_.post(dup_at + ack_latency, [this, id] { handle_ack(id); });
      }
    }
  }
  engine_.post(engine_.now() + flight.rto_us,
               [this, id, attempt = flight.attempts] {
                 on_retransmit_timer(id, attempt);
               });
}

void Network::deliver_attempt(const std::shared_ptr<const Message>& message,
                              std::uint64_t seq, std::uint64_t flight_id,
                              bool ack_dropped) {
  const MessageHeader& header = message->header;
  LinkState& receiver = link(header.source, header.dest);
  ReliableShard& cell = rel_shard_of(flight_id);  // == the calling shard's
  if (receiver.accept(seq)) {
    const std::size_t dest = static_cast<std::size_t>(header.dest);
    traffic_[dest].messages_in += 1;
    traffic_[dest].bytes_in += message->size_bytes();
    mailboxes_[dest].push(*message);
    engine_.unblock(header.dest);
    if (flight_recorder_ != nullptr) {
      flight_recorder_->record(header.dest, engine_.now(),
                               obs::FrKind::kDeliver, header.source,
                               message->size_bytes(),
                               static_cast<std::uint64_t>(header.handler));
    }
    if (observer_ != nullptr) {
      const double now = engine_.now();
      double begin = now;
      double expected = now;
      const auto it = cell.inflight.find(flight_id);  // present until acked
      if (it != cell.inflight.end()) {
        begin = it->second.first_sent_us;
        expected = it->second.expected_deliver_us;
      }
      const int lane = calling_shard_index();
      const std::uint64_t span =
          observer_->flight_span(header.source, header.dest, begin, now,
                                 message->size_bytes(), lane);
      if (it != cell.inflight.end()) {
        it->second.obs_span = span;
      }
      observer_->note_cause(header.dest, span);
      observer_->add(header.dest, obs::Counter::kMessagesDelivered);
      observer_->maxed(header.dest, obs::Counter::kMailboxHighWater,
                       mailboxes_[dest].size());
      observer_->observe(header.dest, obs::Hist::kMessageLatency, now - begin);
      if (now > expected + 1e-9) {
        // The paper's satellite claim: time a fault added shows up as
        // network blame, not as whatever construct happened to be waiting.
        observer_->retransmit_span(header.dest, header.source, expected, now,
                                   lane);
      }
    }
  } else {
    cell.stats.duplicates_suppressed += 1;
  }
  // Duplicates and retransmits are re-acknowledged: that is what recovers
  // from a lost ack without redelivering the message.
  if (ack_dropped) {
    cell.stats.acks_dropped += 1;
    if (flight_recorder_ != nullptr) {
      flight_recorder_->record(header.source, engine_.now(),
                               obs::FrKind::kFaultAckLoss, header.dest, seq, 0);
    }
    return;
  }
  engine_.post(engine_.now() + params_.effective_ack_latency_us(),
               [this, flight_id] { handle_ack(flight_id); });
}

void Network::deliver_attempt_cross(
    const std::shared_ptr<const Message>& message, std::uint64_t seq,
    double first_sent_us, double expected_deliver_us) {
  const MessageHeader& header = message->header;
  // The link's dedup fields are only ever touched here, on the destination
  // shard; its sender fields only on the source shard.
  LinkState& receiver = link(header.source, header.dest);
  if (!receiver.accept(seq)) {
    // Dedup hits are the one counter charged to the destination shard.
    rel_shard().stats.duplicates_suppressed += 1;
    return;
  }
  const std::size_t dest = static_cast<std::size_t>(header.dest);
  traffic_[dest].messages_in += 1;
  traffic_[dest].bytes_in += message->size_bytes();
  mailboxes_[dest].push(*message);
  engine_.unblock(header.dest);
  if (flight_recorder_ != nullptr) {
    flight_recorder_->record(header.dest, engine_.now(), obs::FrKind::kDeliver,
                             header.source, message->size_bytes(),
                             static_cast<std::uint64_t>(header.handler));
  }
  if (observer_ != nullptr) {
    const double now = engine_.now();
    const int lane = calling_shard_index();
    const std::uint64_t span =
        observer_->flight_span(header.source, header.dest, first_sent_us, now,
                               message->size_bytes(), lane);
    // No obs_span backlink: the flight record lives on the source shard, so
    // the eventual ack wake there carries no parent span (handle_ack skips
    // note_cause when the span id is zero).
    observer_->note_cause(header.dest, span);
    observer_->add(header.dest, obs::Counter::kMessagesDelivered);
    observer_->maxed(header.dest, obs::Counter::kMailboxHighWater,
                     mailboxes_[dest].size());
    observer_->observe(header.dest, obs::Hist::kMessageLatency,
                       now - first_sent_us);
    if (now > expected_deliver_us + 1e-9) {
      observer_->retransmit_span(header.dest, header.source,
                                 expected_deliver_us, now, lane);
    }
  }
}

void Network::handle_ack(std::uint64_t id) {
  ReliableShard& cell = rel_shard_of(id);
  auto it = cell.inflight.find(id);
  if (it == cell.inflight.end()) {
    return;  // duplicate or late ack of a completed flight
  }
  if (flight_recorder_ != nullptr) {
    const MessageHeader& header = it->second.message->header;
    flight_recorder_->record(header.source, engine_.now(), obs::FrKind::kAck,
                             header.dest, it->second.seq,
                             static_cast<std::uint64_t>(it->second.attempts));
  }
  if (observer_ != nullptr) {
    const ReliableFlight& flight = it->second;
    const MessageHeader& header = flight.message->header;
    const double now = engine_.now();
    if (flight.obs_span != 0) {
      observer_->note_cause(header.source, flight.obs_span);
    }
    if (now > flight.expected_ack_us + 1e-9) {
      observer_->retransmit_span(header.source, header.dest,
                                 flight.expected_ack_us, now,
                                 calling_shard_index());
    }
  }
  SendCallbacks callbacks = std::move(it->second.callbacks);
  cell.inflight.erase(it);
  if (callbacks.on_acked) {
    callbacks.on_acked();
  }
}

void Network::on_retransmit_timer(std::uint64_t id, int attempt) {
  ReliableShard& cell = rel_shard_of(id);
  auto it = cell.inflight.find(id);
  if (it == cell.inflight.end()) {
    return;  // acknowledged; the timer is stale
  }
  ReliableFlight& flight = it->second;
  if (flight.attempts != attempt) {
    return;  // a newer attempt rearmed its own timer
  }
  if (flight.attempts >= params_.reliability.max_attempts) {
    const MessageHeader& header = flight.message->header;
    std::ostringstream os;
    os << "reliable delivery failed: message " << header.source << "->"
       << header.dest << " (link seq " << flight.seq << ", ordinal "
       << flight.ordinal << ", handler " << header.handler << ", "
       << flight.message->size_bytes() << " B) undelivered after "
       << flight.attempts << " attempts over "
       << engine_.now() - flight.first_sent_us << " us (retry cap "
       << params_.reliability.max_attempts << ")";
    engine_.fail(os.str(), obs::FailKind::kRetryCap);
    return;
  }
  cell.stats.retransmits += 1;
  if (observer_ != nullptr) {
    observer_->add(flight.message->header.source,
                   obs::Counter::kMessagesRetransmitted);
  }
  if (flight_recorder_ != nullptr) {
    const MessageHeader& header = flight.message->header;
    flight_recorder_->record(header.source, engine_.now(),
                             obs::FrKind::kRetransmit, header.dest, flight.seq,
                             static_cast<std::uint64_t>(flight.attempts));
  }
  flight.rto_us *= params_.reliability.backoff;
  start_attempt(id);
}

void Network::send_reliable(Message message, SendCallbacks callbacks) {
  const double inject =
      static_cast<double>(message.size_bytes()) /
      params_.bandwidth_bytes_per_us;
  const double stage_at = engine_.now() + inject;
  const std::uint64_t id =
      admit_flight(std::move(message), std::move(callbacks), inject);
  engine_.post(stage_at, [this, id] {
    ReliableShard& cell = rel_shard_of(id);
    auto it = cell.inflight.find(id);
    CAF2_ASSERT(it != cell.inflight.end(), "reliable stage: unknown flight");
    if (it->second.callbacks.on_staged) {
      auto staged = std::move(it->second.callbacks.on_staged);
      it->second.callbacks.on_staged = nullptr;
      staged();
    }
    start_attempt(id);
  });
}

void Network::send_staged_reliable(
    MessageHeader header, std::size_t size_hint,
    std::function<std::vector<std::uint8_t>()> read,
    SendCallbacks callbacks) {
  const double inject =
      static_cast<double>(size_hint) / params_.bandwidth_bytes_per_us;
  const double stage_at = engine_.now() + inject;
  engine_.post(stage_at, [this, header, inject, read = std::move(read),
                          callbacks = std::move(callbacks)]() mutable {
    Message message;
    message.header = header;
    message.payload = read();
    if (callbacks.on_staged) {
      callbacks.on_staged();
      callbacks.on_staged = nullptr;
    }
    const std::uint64_t id =
        admit_flight(std::move(message), std::move(callbacks), inject);
    start_attempt(id);
  });
}

void Network::fill_postmortem(obs::PmNetwork& net) const {
  net.present = true;
  net.reliable = reliable_;
  net.faults = fault_stats();
  net.inflight_total = inflight_reliable();
  net.inflight.clear();
  // Cells in shard order, flights by id within a cell: a deterministic
  // listing for a fixed shard count.
  for (const ReliableShard& cell : rel_shards_) {
    for (const auto& [id, flight] : cell.inflight) {
      if (net.inflight.size() == obs::kMaxListedFlights) {
        return;
      }
      const MessageHeader& header = flight.message->header;
      obs::PmFlight pm;
      pm.source = header.source;
      pm.dest = header.dest;
      pm.seq = flight.seq;
      pm.ordinal = flight.ordinal;
      pm.attempts = flight.attempts;
      pm.max_attempts = params_.reliability.max_attempts;
      pm.handler = header.handler;
      pm.bytes = flight.message->size_bytes();
      pm.first_sent_us = flight.first_sent_us;
      pm.rto_us = flight.rto_us;
      net.inflight.push_back(pm);
    }
  }
}

std::string Network::describe_state() const {
  obs::PmNetwork net;
  fill_postmortem(net);
  return obs::network_section_text(net);
}

}  // namespace caf2::net
