#include "net/mailbox.hpp"

namespace caf2::net {

void Mailbox::push(Message message) {
  queue_.push_back(std::move(message));
  ++delivered_total_;
}

std::optional<Message> Mailbox::try_pop() {
  if (queue_.empty()) {
    return std::nullopt;
  }
  Message front = std::move(queue_.front());
  queue_.pop_front();
  return front;
}

}  // namespace caf2::net
