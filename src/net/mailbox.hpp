#pragma once

/// \file mailbox.hpp
/// Per-image inbound message queue.
///
/// The simulation engine guarantees that at most one execution context
/// (participant or engine callback) runs at any instant, so the mailbox
/// needs no internal locking; it is a plain FIFO of delivered messages.
/// Delivery *order* is decided by the network's latency + jitter model, so
/// the FIFO here does not imply FIFO channels between image pairs.

#include <cstddef>
#include <deque>
#include <optional>

#include "net/message.hpp"

namespace caf2::net {

class Mailbox {
 public:
  void push(Message message);

  /// Pop the oldest delivered message, if any.
  std::optional<Message> try_pop();

  bool empty() const { return queue_.empty(); }
  std::size_t size() const { return queue_.size(); }

  /// Total messages ever delivered to this mailbox.
  std::uint64_t delivered_total() const { return delivered_total_; }

 private:
  std::deque<Message> queue_;
  std::uint64_t delivered_total_ = 0;
};

}  // namespace caf2::net
