#include "net/message.hpp"

// Message is a plain data carrier; this translation unit exists so the
// header has a home object file (and a place for future out-of-line
// helpers) without forcing header-only builds of the net library.

namespace caf2::net {

static_assert(sizeof(MessageHeader) <= 64,
              "MessageHeader should stay within one cache line");

}  // namespace caf2::net
