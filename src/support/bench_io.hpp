#pragma once

/// \file bench_io.hpp
/// Wall-clock timing and machine-readable benchmark output.
///
/// Every benchmark driver emits a BENCH_<name>.json next to its table so the
/// simulator's real-time performance (events/sec, wall seconds per sweep
/// point) is tracked from run to run — virtual-time results tell us about
/// the modeled machine, these files tell us about the simulator itself.

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace caf2 {

/// Version stamp written into every BENCH_*.json ("schema_version"). Bump
/// when the document shape changes so downstream tooling can dispatch.
inline constexpr int kBenchSchemaVersion = 1;

/// Stopwatch over std::chrono::steady_clock (real time, not virtual time).
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}

  void reset() { start_ = std::chrono::steady_clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Measurements of one benchmark sweep point.
struct BenchRecord {
  std::string name;              ///< sweep-point label, e.g. "allreduce/images=32"
  double wall_seconds = 0.0;     ///< real time spent simulating
  std::uint64_t events = 0;      ///< simulator events dispatched
  double events_per_sec = 0.0;   ///< events / wall_seconds
  double virtual_us = 0.0;       ///< final virtual time of the run
  /// Driver-specific extras (e.g. "images", "bunch", "virtual_ms").
  std::vector<std::pair<std::string, double>> metrics;
};

/// Serialize \p records to \p path as JSON:
///   {"benchmark": ..., "meta": {...}, "sweep": [{...}, ...]}
/// Returns false (after printing to stderr) if the file cannot be written.
bool write_bench_json(
    const std::string& path, const std::string& benchmark,
    const std::vector<BenchRecord>& records,
    const std::vector<std::pair<std::string, std::string>>& meta = {});

/// Escape a string for embedding in a JSON document (quotes not included).
std::string json_escape(const std::string& text);

}  // namespace caf2
