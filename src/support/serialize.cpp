#include "support/serialize.hpp"

namespace caf2 {

void WriteArchive::write_bytes(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  bytes_.insert(bytes_.end(), bytes, bytes + size);
}

void ReadArchive::read_bytes(void* out, std::size_t size) {
  CAF2_ASSERT(cursor_ + size <= bytes_.size(),
              "ReadArchive: read past end of buffer");
  std::memcpy(out, bytes_.data() + cursor_, size);
  cursor_ += size;
}

}  // namespace caf2
