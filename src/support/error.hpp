#pragma once

/// \file error.hpp
/// Error handling for the caf2 runtime.
///
/// The runtime distinguishes two failure categories:
///  - *usage errors* (caller violated an API contract, e.g. a collective on a
///    team the image is not a member of) -> caf2::UsageError;
///  - *runtime faults* (internal invariant broken, or the simulation proved a
///    deadlock) -> caf2::FatalError.
///
/// Both derive from std::runtime_error so test code can assert on them.

#include <stdexcept>
#include <string>

namespace caf2 {

/// Thrown when a public API precondition is violated by the caller.
class UsageError : public std::runtime_error {
 public:
  explicit UsageError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when an internal invariant is broken or the simulated program
/// deadlocks (no runnable image and no pending events).
class FatalError : public std::runtime_error {
 public:
  explicit FatalError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void throw_usage(const char* file, int line, const std::string& msg);
[[noreturn]] void throw_fatal(const char* file, int line, const std::string& msg);
}  // namespace detail

}  // namespace caf2

/// Validate a public API precondition; throws caf2::UsageError on failure.
#define CAF2_REQUIRE(cond, msg)                                   \
  do {                                                            \
    if (!(cond)) {                                                \
      ::caf2::detail::throw_usage(__FILE__, __LINE__, (msg));     \
    }                                                             \
  } while (0)

/// Validate an internal invariant; throws caf2::FatalError on failure.
#define CAF2_ASSERT(cond, msg)                                    \
  do {                                                            \
    if (!(cond)) {                                                \
      ::caf2::detail::throw_fatal(__FILE__, __LINE__, (msg));     \
    }                                                             \
  } while (0)
