#pragma once

/// \file serialize.hpp
/// Binary serialization used to marshal arguments of shipped functions.
///
/// CAF 2.0 function shipping copies array/scalar arguments to the image that
/// executes the shipped function, while coarray sections travel by reference
/// (paper §II-C2). Argument values are packed into a WriteArchive on the
/// initiator and unpacked from a ReadArchive inside the active-message
/// handler on the target, mirroring how a real runtime marshals a medium
/// active-message payload.
///
/// Supported out of the box:
///  - trivially copyable types (integers, floats, enums, POD structs);
///  - std::string;
///  - std::vector<T> and std::array<T, N> of serializable T;
///  - std::pair / std::tuple of serializable members;
///  - user types that provide `void serialize(Archive&)` visitation, or
///    ADL-found `caf2_save(WriteArchive&, const T&)` / `caf2_load(ReadArchive&, T&)`.

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

#include "support/error.hpp"

namespace caf2 {

class WriteArchive;
class ReadArchive;

namespace detail {
template <typename T>
concept TriviallySerializable =
    std::is_trivially_copyable_v<T> && !std::is_pointer_v<T>;

template <typename T>
concept HasMemberSave = requires(const T& value, WriteArchive& ar) {
  { value.save(ar) };
};

template <typename T>
concept HasMemberLoad = requires(T& value, ReadArchive& ar) {
  { value.load(ar) };
};
}  // namespace detail

/// Append-only binary buffer.
class WriteArchive {
 public:
  /// Raw byte append.
  void write_bytes(const void* data, std::size_t size);

  template <detail::TriviallySerializable T>
  void write(const T& value) {
    write_bytes(&value, sizeof(T));
  }

  void write(const std::string& value) {
    write_size(value.size());
    write_bytes(value.data(), value.size());
  }

  template <typename T>
  void write(const std::vector<T>& value) {
    write_size(value.size());
    if constexpr (detail::TriviallySerializable<T>) {
      write_bytes(value.data(), value.size() * sizeof(T));
    } else {
      for (const T& element : value) {
        write(element);
      }
    }
  }

  template <typename T, std::size_t N>
  void write(const std::array<T, N>& value) {
    if constexpr (detail::TriviallySerializable<T>) {
      write_bytes(value.data(), N * sizeof(T));
    } else {
      for (const T& element : value) {
        write(element);
      }
    }
  }

  template <typename A, typename B>
  void write(const std::pair<A, B>& value) {
    write(value.first);
    write(value.second);
  }

  template <typename... Ts>
  void write(const std::tuple<Ts...>& value) {
    std::apply([this](const Ts&... elements) { (write(elements), ...); },
               value);
  }

  template <detail::HasMemberSave T>
    requires(!detail::TriviallySerializable<T>)
  void write(const T& value) {
    value.save(*this);
  }

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }
  std::size_t size() const { return bytes_.size(); }

 private:
  void write_size(std::size_t size) {
    write(static_cast<std::uint64_t>(size));
  }

  std::vector<std::uint8_t> bytes_;
};

/// Sequential reader over a byte span. The span must outlive the archive.
class ReadArchive {
 public:
  explicit ReadArchive(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  void read_bytes(void* out, std::size_t size);

  template <detail::TriviallySerializable T>
  void read(T& value) {
    read_bytes(&value, sizeof(T));
  }

  void read(std::string& value) {
    value.resize(read_size());
    read_bytes(value.data(), value.size());
  }

  template <typename T>
  void read(std::vector<T>& value) {
    value.resize(read_size());
    if constexpr (detail::TriviallySerializable<T>) {
      read_bytes(value.data(), value.size() * sizeof(T));
    } else {
      for (T& element : value) {
        read(element);
      }
    }
  }

  template <typename T, std::size_t N>
  void read(std::array<T, N>& value) {
    if constexpr (detail::TriviallySerializable<T>) {
      read_bytes(value.data(), N * sizeof(T));
    } else {
      for (T& element : value) {
        read(element);
      }
    }
  }

  template <typename A, typename B>
  void read(std::pair<A, B>& value) {
    read(value.first);
    read(value.second);
  }

  template <typename... Ts>
  void read(std::tuple<Ts...>& value) {
    std::apply([this](Ts&... elements) { (read(elements), ...); }, value);
  }

  template <detail::HasMemberLoad T>
    requires(!detail::TriviallySerializable<T>)
  void read(T& value) {
    value.load(*this);
  }

  /// Typed convenience: default-construct, read, return.
  template <typename T>
  T read() {
    T value{};
    read(value);
    return value;
  }

  std::size_t remaining() const { return bytes_.size() - cursor_; }
  bool exhausted() const { return remaining() == 0; }

 private:
  std::size_t read_size() {
    std::uint64_t size = 0;
    read(size);
    return static_cast<std::size_t>(size);
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t cursor_ = 0;
};

/// Pack a parameter pack into a fresh archive.
template <typename... Ts>
std::vector<std::uint8_t> pack_values(const Ts&... values) {
  WriteArchive archive;
  (archive.write(values), ...);
  return archive.take();
}

/// Unpack a tuple of values previously written with pack_values.
template <typename... Ts>
std::tuple<Ts...> unpack_values(std::span<const std::uint8_t> bytes) {
  ReadArchive archive(bytes);
  // Brace-init of the tuple guarantees left-to-right evaluation order.
  std::tuple<Ts...> out{archive.read<Ts>()...};
  CAF2_ASSERT(archive.exhausted(), "unpack_values: trailing bytes");
  return out;
}

}  // namespace caf2
