#include "support/sysinfo.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#if defined(__linux__)
#include <cstdio>
#include <cstring>
#endif

namespace caf2 {

namespace {

#if defined(__linux__)
/// Process-wide peak RSS from /proc/self/status (VmHWM). The kernel keeps
/// one high-water mark per process, covering every worker thread — exactly
/// what RunStats wants for sharded runs. Returns 0 when unreadable (then
/// the getrusage fallback below applies).
std::uint64_t vm_hwm_bytes() {
  std::FILE* status = std::fopen("/proc/self/status", "r");
  if (status == nullptr) {
    return 0;
  }
  std::uint64_t bytes = 0;
  char line[256];
  while (std::fgets(line, sizeof line, status) != nullptr) {
    unsigned long long kb = 0;
    if (std::sscanf(line, "VmHWM: %llu kB", &kb) == 1) {
      bytes = static_cast<std::uint64_t>(kb) * 1024u;
      break;
    }
  }
  std::fclose(status);
  return bytes;
}
#endif

}  // namespace

std::uint64_t peak_rss_bytes() {
#if defined(__linux__)
  if (const std::uint64_t hwm = vm_hwm_bytes(); hwm != 0) {
    return hwm;
  }
#endif
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) {
    return 0;
  }
#if defined(__APPLE__)
  // macOS reports ru_maxrss in bytes.
  return static_cast<std::uint64_t>(usage.ru_maxrss);
#else
  // Linux reports ru_maxrss in kilobytes.
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024u;
#endif
#else
  return 0;
#endif
}

}  // namespace caf2
