#include "support/config.hpp"

namespace caf2 {

NetworkParams NetworkParams::instant() {
  NetworkParams params;
  params.latency_us = 0.0;
  params.bandwidth_bytes_per_us = 0.0;  // 0 => staging is immediate
  params.handler_cost_us = 0.0;
  params.jitter_us = 0.0;
  params.ack_latency_us = 0.0;
  return params;
}

NetworkParams NetworkParams::gemini_like() {
  NetworkParams params;
  params.latency_us = 1.5;
  params.bandwidth_bytes_per_us = 6000.0;
  params.handler_cost_us = 0.3;
  params.jitter_us = 0.2;
  return params;
}

}  // namespace caf2
