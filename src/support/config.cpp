#include "support/config.hpp"

#include <cmath>
#include <limits>

#include "support/error.hpp"

namespace caf2 {

const char* to_string(ExecBackend backend) {
  switch (backend) {
    case ExecBackend::kAuto:
      return "auto";
    case ExecBackend::kThreads:
      return "threads";
    case ExecBackend::kFibers:
      return "fibers";
  }
  return "?";
}

bool FaultPlan::active() const {
  if (!scripted.empty() || all.any()) {
    return true;
  }
  for (const LinkFaults& link : links) {
    if (link.any()) {
      return true;
    }
  }
  return false;
}

const LinkFaults& FaultPlan::resolve(int source, int dest) const {
  for (const LinkFaults& link : links) {
    if (link.matches(source, dest)) {
      return link;
    }
  }
  return all;
}

namespace {

void validate_probability(double p, const char* what) {
  CAF2_REQUIRE(p >= 0.0 && p <= 1.0,
               std::string("NetworkParams: ") + what +
                   " must be a probability in [0, 1]");
}

void validate_link(const LinkFaults& link) {
  validate_probability(link.drop_probability, "drop_probability");
  validate_probability(link.dup_probability, "dup_probability");
  validate_probability(link.ack_drop_probability, "ack_drop_probability");
  validate_probability(link.delay_probability, "delay_probability");
  CAF2_REQUIRE(link.delay_max_us >= 0.0 && !std::isnan(link.delay_max_us),
               "NetworkParams: fault delay_max_us must be >= 0");
}

}  // namespace

void NetworkParams::validate() const {
  CAF2_REQUIRE(bandwidth_bytes_per_us > 0.0,
               "NetworkParams: bandwidth_bytes_per_us must be > 0 "
               "(use infinity for an instantaneous link)");
  CAF2_REQUIRE(latency_us >= 0.0 && !std::isnan(latency_us),
               "NetworkParams: latency_us must be >= 0");
  CAF2_REQUIRE(jitter_us >= 0.0 && !std::isnan(jitter_us),
               "NetworkParams: jitter_us must be >= 0");
  CAF2_REQUIRE(handler_cost_us >= 0.0 && !std::isnan(handler_cost_us),
               "NetworkParams: handler_cost_us must be >= 0");
  CAF2_REQUIRE(!std::isnan(ack_latency_us),
               "NetworkParams: ack_latency_us must be a number "
               "(negative means 'use latency_us')");
  CAF2_REQUIRE(max_medium_payload > 0,
               "NetworkParams: max_medium_payload must be > 0");

  validate_link(faults.all);
  for (const LinkFaults& link : faults.links) {
    validate_link(link);
  }
  for (const ScriptedFault& fault : faults.scripted) {
    CAF2_REQUIRE(fault.source >= 0 && fault.dest >= 0,
                 "NetworkParams: scripted fault endpoints must be >= 0");
    CAF2_REQUIRE(fault.nth >= 1,
                 "NetworkParams: scripted fault message ordinal is 1-based");
    CAF2_REQUIRE(fault.attempt >= 0,
                 "NetworkParams: scripted fault attempt must be >= 0 "
                 "(0 = every attempt)");
    CAF2_REQUIRE(fault.delay_us >= 0.0 && !std::isnan(fault.delay_us),
                 "NetworkParams: scripted fault delay_us must be >= 0");
  }

  CAF2_REQUIRE(reliability.backoff >= 1.0 && !std::isnan(reliability.backoff),
               "NetworkParams: reliability backoff must be >= 1");
  CAF2_REQUIRE(reliability.max_attempts >= 1,
               "NetworkParams: reliability max_attempts must be >= 1");
  CAF2_REQUIRE(reliability.rto_us != 0.0 && !std::isnan(reliability.rto_us),
               "NetworkParams: reliability rto_us must be > 0 "
               "(or negative to derive it from the network parameters)");
  CAF2_REQUIRE(!faults.active() ||
                   reliability.mode != ReliabilityParams::Mode::kOff,
               "NetworkParams: an active FaultPlan requires the reliable-"
               "delivery layer (reliability.mode must not be kOff)");
}

NetworkParams NetworkParams::instant() {
  NetworkParams params;
  params.latency_us = 0.0;
  // Infinite bandwidth => staging is immediate (bytes / inf == 0).
  params.bandwidth_bytes_per_us = std::numeric_limits<double>::infinity();
  params.handler_cost_us = 0.0;
  params.jitter_us = 0.0;
  params.ack_latency_us = 0.0;
  return params;
}

NetworkParams NetworkParams::gemini_like() {
  NetworkParams params;
  params.latency_us = 1.5;
  params.bandwidth_bytes_per_us = 6000.0;
  params.handler_cost_us = 0.3;
  params.jitter_us = 0.2;
  return params;
}

}  // namespace caf2
