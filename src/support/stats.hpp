#pragma once

/// \file stats.hpp
/// Small statistics helpers used by the benchmark harness: a streaming
/// accumulator (Welford) and a fixed-width histogram.

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace caf2 {

/// Streaming min / max / mean / variance accumulator (Welford's algorithm,
/// numerically stable).
class Accumulator {
 public:
  void add(double value);

  std::size_t count() const { return count_; }
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  double variance() const;
  double stddev() const;

  /// Merge another accumulator into this one (parallel Welford combine).
  void merge(const Accumulator& other);

 private:
  std::size_t count_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  double sum_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp into the
/// first/last bucket. Used by the UTS load-balance benchmark (Fig. 16).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double value);

  std::size_t bucket_count() const { return counts_.size(); }
  std::uint64_t bucket(std::size_t index) const { return counts_[index]; }
  double bucket_lo(std::size_t index) const;
  double bucket_hi(std::size_t index) const;
  std::uint64_t total() const { return total_; }

  /// Multi-line ASCII rendering (one row per bucket with a proportional bar).
  std::string render(std::size_t bar_width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Quantile of a sample vector (linear interpolation); sorts a copy.
double quantile(std::vector<double> samples, double q);

}  // namespace caf2
