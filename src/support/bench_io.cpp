#include "support/bench_io.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace caf2 {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

/// JSON has no Inf/NaN literals; clamp to null.
void print_number(std::FILE* f, double value) {
  if (std::isfinite(value)) {
    std::fprintf(f, "%.17g", value);
  } else {
    std::fputs("null", f);
  }
}

}  // namespace

bool write_bench_json(
    const std::string& path, const std::string& benchmark,
    const std::vector<BenchRecord>& records,
    const std::vector<std::pair<std::string, std::string>>& meta) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_io: cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(f,
               "{\n  \"benchmark\": \"%s\",\n  \"schema_version\": %d,\n",
               json_escape(benchmark).c_str(), kBenchSchemaVersion);
  std::fputs("  \"meta\": {", f);
  for (std::size_t i = 0; i < meta.size(); ++i) {
    std::fprintf(f, "%s\"%s\": \"%s\"", i == 0 ? "" : ", ",
                 json_escape(meta[i].first).c_str(),
                 json_escape(meta[i].second).c_str());
  }
  std::fputs("},\n  \"sweep\": [\n", f);
  for (std::size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    std::fprintf(f, "    {\"name\": \"%s\", \"wall_seconds\": ",
                 json_escape(r.name).c_str());
    print_number(f, r.wall_seconds);
    std::fprintf(f, ", \"events\": %" PRIu64 ", \"events_per_sec\": ",
                 r.events);
    print_number(f, r.events_per_sec);
    std::fputs(", \"virtual_us\": ", f);
    print_number(f, r.virtual_us);
    for (const auto& [key, value] : r.metrics) {
      std::fprintf(f, ", \"%s\": ", json_escape(key).c_str());
      print_number(f, value);
    }
    std::fprintf(f, "}%s\n", i + 1 == records.size() ? "" : ",");
  }
  std::fputs("  ]\n}\n", f);
  const bool ok = std::fclose(f) == 0;
  if (!ok) {
    std::fprintf(stderr, "bench_io: error closing %s\n", path.c_str());
  }
  return ok;
}

}  // namespace caf2
