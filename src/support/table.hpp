#pragma once

/// \file table.hpp
/// Console table / CSV printer for the benchmark harness. Every bench binary
/// prints one table per reproduced figure, with the same rows/series the
/// paper plots, via this helper.

#include <cstddef>
#include <string>
#include <variant>
#include <vector>

namespace caf2 {

/// A cell is a string, an integer, or a floating value with per-column
/// precision applied at render time.
using Cell = std::variant<std::string, long long, double>;

class Table {
 public:
  explicit Table(std::string title);

  /// Define the column headers; must be called before add_row.
  Table& columns(std::vector<std::string> names);

  /// Floating-point digits for double cells (default 3).
  Table& precision(int digits);

  Table& add_row(std::vector<Cell> cells);

  std::size_t row_count() const { return rows_.size(); }

  /// Human-readable aligned rendering (with title and column rule).
  std::string to_string() const;

  /// Machine-readable CSV (no title).
  std::string to_csv() const;

  /// Print to stdout (to_string()).
  void print() const;

 private:
  std::string render_cell(const Cell& cell) const;

  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
  int precision_ = 3;
};

}  // namespace caf2
