#pragma once

/// \file config.hpp
/// Configuration records for the simulated interconnect and the runtime.
///
/// The simulator substitutes for the paper's Cray XK6/XE6 testbed
/// (DESIGN.md §1). NetworkParams models the interconnect of such a machine:
/// a per-message wire latency, an injection bandwidth, a per-byte handler
/// cost at the receiver, and a jitter term that perturbs (and can reorder)
/// deliveries. RuntimeOptions bundles the complete configuration of one run.

#include <cstdint>
#include <string>
#include <vector>

namespace caf2 {

/// --- execution backend -------------------------------------------------------

/// How simulated participants execute (sim/engine.hpp, DESIGN.md §4.8).
///
/// kThreads runs one OS thread per image with a mutex+condvar token handoff;
/// kFibers multiplexes every image as a stackful fiber on the scheduler
/// thread, so a handoff is a userspace register swap. Results are
/// bit-identical either way; kAuto picks fibers wherever they are supported
/// (everywhere except ThreadSanitizer builds, which need real threads to
/// instrument). The environment variable CAF2_SIM_BACKEND={threads,fibers}
/// overrides whatever is configured here.
enum class ExecBackend : std::uint8_t {
  kAuto,
  kThreads,
  kFibers,
};

const char* to_string(ExecBackend backend);

/// --- fault injection ---------------------------------------------------------
///
/// The fault model perturbs the interconnect deterministically: every fault
/// decision is drawn from a dedicated RNG stream (independent of the jitter
/// stream), so a run with a given seed + FaultPlan is bit-reproducible —
/// including with the scheduler fast path on or off. Faults only ever apply
/// when the reliable-delivery protocol is active (see ReliabilityParams);
/// injecting loss into the bare best-effort network would simply lose the
/// message.

/// What a scripted one-shot fault does to its target delivery attempt.
enum class FaultKind : std::uint8_t {
  kDrop,       ///< the delivery attempt never reaches the destination
  kDuplicate,  ///< the delivery attempt lands twice
  kDelay,      ///< the delivery attempt is delayed by delay_us
};

/// A scripted fault pins a fault to one specific message: "drop the 3rd
/// message from image 2 to image 5". Messages are identified by their
/// 1-based initiation ordinal on the (source, dest) link.
struct ScriptedFault {
  int source = 0;            ///< world rank of the sender
  int dest = 0;              ///< world rank of the receiver
  std::uint64_t nth = 1;     ///< 1-based message ordinal on the link
  FaultKind kind = FaultKind::kDrop;
  /// 1-based delivery attempt the fault applies to; 0 = every attempt
  /// (a permanent black hole — used to exercise the retry cap).
  int attempt = 1;
  double delay_us = 0.0;     ///< extra delay for kDelay
};

/// Random per-delivery fault probabilities for one link (or, with wildcard
/// endpoints, a set of links).
struct LinkFaults {
  int source = -1;  ///< world rank, -1 = any sender
  int dest = -1;    ///< world rank, -1 = any receiver
  double drop_probability = 0.0;      ///< delivery attempt is lost
  double dup_probability = 0.0;       ///< delivery attempt lands twice
  double ack_drop_probability = 0.0;  ///< delivery lands but its ack is lost
  double delay_probability = 0.0;     ///< delivery gets extra delay
  double delay_max_us = 0.0;          ///< extra delay ~ U[0, delay_max_us]
  bool any() const {
    return drop_probability > 0.0 || dup_probability > 0.0 ||
           ack_drop_probability > 0.0 || delay_probability > 0.0;
  }
  bool matches(int src, int dst) const {
    return (source < 0 || source == src) && (dest < 0 || dest == dst);
  }
};

/// Deterministic, seeded fault schedule for a whole run.
struct FaultPlan {
  /// Probabilities applied to every link without a more specific entry.
  LinkFaults all{};
  /// Per-link overrides; the first entry matching (source, dest) replaces
  /// `all` entirely for that delivery.
  std::vector<LinkFaults> links;
  /// One-shot faults pinned to specific messages.
  std::vector<ScriptedFault> scripted;

  /// True when the plan can inject at least one fault.
  bool active() const;
  /// The LinkFaults record governing a delivery on (source, dest).
  const LinkFaults& resolve(int source, int dest) const;
};

/// Reliable-delivery protocol knobs (per-link sequence numbers, receiver
/// dedup, virtual-time retransmission with exponential backoff).
struct ReliabilityParams {
  enum class Mode : std::uint8_t {
    kAuto,  ///< enabled iff the FaultPlan is active
    kOn,    ///< always layered in (costs ~2 extra events per message)
    kOff,   ///< never (rejected at validation if the FaultPlan is active:
            ///< injecting loss into a best-effort network just hangs)
  };
  Mode mode = Mode::kAuto;

  /// Initial retransmit timeout. Negative = derive from the network
  /// parameters (a little over twice the worst-case round trip).
  double rto_us = -1.0;

  /// Multiplier applied to the timeout after every retransmission.
  double backoff = 2.0;

  /// Total delivery attempts before the runtime gives up and raises a
  /// diagnosable FatalError (with a watchdog report) instead of hanging.
  int max_attempts = 8;
};

/// Counters of injected faults and protocol activity for one run
/// (Network::fault_stats(), also surfaced through caf2::RunStats).
struct FaultStats {
  std::uint64_t deliveries_dropped = 0;     ///< attempts lost in the wire
  std::uint64_t deliveries_duplicated = 0;  ///< attempts landing twice
  std::uint64_t deliveries_delayed = 0;     ///< attempts given extra delay
  std::uint64_t acks_dropped = 0;           ///< delivered but ack lost
  std::uint64_t retransmits = 0;            ///< timer-driven resends
  std::uint64_t duplicates_suppressed = 0;  ///< receiver dedup hits
  std::uint64_t scripted_applied = 0;       ///< one-shot faults that fired
};

/// Interconnect model.
///
/// All times are in *virtual microseconds* of the discrete-event simulator.
struct NetworkParams {
  /// One-way wire latency applied to every message.
  double latency_us = 2.0;

  /// Injection bandwidth in bytes per microsecond. The source buffer is read
  /// ("staged") size/bandwidth after initiation; local data completion is
  /// reached at that point. Must be > 0; use infinity for an ideal link that
  /// stages instantly (NetworkParams::instant() does).
  double bandwidth_bytes_per_us = 2048.0;

  /// Fixed cost of running a message handler at the receiver.
  double handler_cost_us = 0.2;

  /// Maximum delivery jitter. Each delivery is delayed by a uniform value in
  /// [0, jitter_us], so messages can arrive out of order (non-FIFO channels;
  /// the paper's termination-detection algorithm must tolerate this).
  double jitter_us = 0.0;

  /// Latency applied to a completion acknowledgement (delivery -> initiator).
  /// Defaults to the wire latency when negative.
  double ack_latency_us = -1.0;

  /// Largest payload of a "medium" active message, in bytes. GASNet's
  /// AMMediumPacket limit is what caps UTS steal batches in the paper
  /// (§IV-C1a); spawns whose marshalled arguments exceed this limit are
  /// rejected, just as the prototype's steals were.
  std::uint32_t max_medium_payload = 4096;

  /// Deterministic fault schedule (drops, duplicates, extra delays).
  FaultPlan faults{};

  /// Reliable-delivery protocol configuration. With Mode::kAuto the protocol
  /// is layered in exactly when the fault plan is active, so fault-free runs
  /// keep the bare network's event schedule (and performance) bit-for-bit.
  ReliabilityParams reliability{};

  double effective_ack_latency_us() const {
    return ack_latency_us < 0 ? latency_us : ack_latency_us;
  }

  /// True when the reliable-delivery protocol is layered into the network.
  bool reliable_delivery() const {
    switch (reliability.mode) {
      case ReliabilityParams::Mode::kOn:
        return true;
      case ReliabilityParams::Mode::kOff:
        return false;
      case ReliabilityParams::Mode::kAuto:
        return faults.active();
    }
    return false;
  }

  /// Validate every field; throws caf2::UsageError (via CAF2_REQUIRE) on
  /// nonsense such as non-positive bandwidth, negative latency or jitter, or
  /// out-of-range fault probabilities. Network's constructor calls this.
  void validate() const;

  /// A zero-latency, zero-cost network; useful in unit tests that only check
  /// functional behaviour.
  static NetworkParams instant();

  /// Parameters loosely calibrated to a Gemini-class torus (Jaguar/Hopper
  /// era): ~1.5 us latency, ~6 GB/s injection.
  static NetworkParams gemini_like();
};

/// --- observability -----------------------------------------------------------

/// Configuration of the caf2::obs subsystem (src/obs/, DESIGN.md §4.9).
///
/// Disabled by default, and *zero-cost* when disabled: every hook in the
/// engine, network, and runtime is a single null-pointer test, no span or
/// metric storage is allocated, and the event schedule is untouched. Enabled,
/// the recorder only ever appends to per-image buffers — it never schedules
/// events — so traces, event counts, and RunStats of an instrumented run are
/// bit-identical to an uninstrumented one.
struct ObsConfig {
  /// Master switch. When false nothing is recorded and RunStats::obs is null.
  bool enabled = false;

  /// Hard memory cap per image-track span buffer (bytes). Spans past the cap
  /// are counted (Capture::Track::dropped, Counter::kSpansDropped) and
  /// discarded, so 1024-image sweeps stay tractable.
  std::size_t max_image_track_bytes = std::size_t{1} << 20;

  /// Hard memory cap of the network-track span buffer (bytes). The network
  /// track sees one span per delivered message, so it gets a larger default.
  std::size_t max_net_track_bytes = std::size_t{8} << 20;

  /// Always-on flight recorder (obs/flight_recorder.hpp): per-image rings of
  /// POD events feeding postmortems. Independent of `enabled` (the span
  /// recorder); recording never allocates past construction and never
  /// schedules engine events, so schedules stay bit-identical.
  bool flight_recorder = true;

  /// Ring capacity per image, rounded up to a power of two (minimum 8).
  std::size_t flight_recorder_entries = 256;

  /// How many of each image's most recent flight-recorder events a rendered
  /// postmortem includes.
  std::size_t postmortem_recent_events = 16;
};

/// Complete configuration of a simulated SPMD run.
struct RuntimeOptions {
  /// Number of process images (the paper's "cores").
  int num_images = 4;

  /// Interconnect model.
  NetworkParams net{};

  /// Master seed; expanded per image / subsystem via SplitMix64.
  std::uint64_t seed = 0x9E3779B97F4A7C15ULL;

  /// When true the engine records an event trace (sequence of (time, image,
  /// kind) triples) that tests use to assert determinism.
  bool record_trace = false;

  /// Upper bound on executed simulation events; guards against accidental
  /// infinite message loops in tests. Zero means unlimited.
  std::uint64_t max_events = 0;

  /// Enable the simulator's self-wake fast path (sim/engine.hpp). Results
  /// are bit-identical with it on or off; the switch exists for regression
  /// tests and perf comparisons. CAF2_SIM_NO_FASTPATH=1 also disables it.
  bool sim_fastpath = true;

  /// Execution backend for simulated images (see ExecBackend). kAuto picks
  /// stackful fibers where supported; results are bit-identical across
  /// backends. CAF2_SIM_BACKEND={threads,fibers} overrides this.
  ExecBackend sim_backend = ExecBackend::kAuto;

  /// Number of engine shards: worker threads executing the conservative
  /// parallel-DES scheme of DESIGN.md §4.11. <= 0 means "resolve from the
  /// environment": CAF2_SIM_SHARDS when set, one shard otherwise; an
  /// explicit value >= 1 always wins over the environment. shards=1 is
  /// bit-identical to the unsharded engine, and any fixed shard count is
  /// deterministic run to run. The runtime derives the conservative
  /// lookahead from the network's wire latency; reliable delivery, fault
  /// plans, and obs span capture all run sharded (per-shard protocol cells
  /// and recorder net lanes, DESIGN.md §4.12). Only a zero-latency network
  /// leaves no positive lookahead and falls back to a single shard.
  int shards = 0;

  /// Let a sharded engine widen each shard's conservative window from the
  /// other shards' next-event lower bounds at every barrier (DESIGN.md
  /// §4.12) instead of pinning every window to the global minimum plus the
  /// static lookahead. The static window remains the floor. Ignored on
  /// serial engines; both modes are deterministic for a fixed shard count,
  /// but they produce different (equally valid) virtual schedules. The
  /// environment variable CAF2_SIM_ADAPTIVE_LOOKAHEAD={0,off,1,on}
  /// overrides this.
  bool adaptive_lookahead = true;

  /// Virtual-time watchdog quiet period (microseconds). When > 0 and every
  /// unfinished image is blocked while the next pending event is more than
  /// this far in the virtual future, the run is aborted with a structured
  /// watchdog report (per-image blocked reasons, finish epoch counters,
  /// in-flight/retransmitting messages) instead of silently fast-forwarding
  /// through, e.g., a runaway retransmission backoff chain. 0 disables the
  /// quiet-period check; proven deadlocks always produce the full report.
  double watchdog_quiet_us = 0.0;

  /// Path to a collective selection-table JSON artifact (produced by
  /// `bench_collectives --tune`, parsed by ops::load_selection_table_file).
  /// When non-empty, caf2::run loads it before the run starts so
  /// CollAlgorithm::kAuto picks the measured winner per (collective, team
  /// size, payload) instead of the built-in defaults. The environment
  /// variable CAF2_COLL_TABLE overrides this. Empty = built-in defaults
  /// (or whatever ops::set_selection_table installed programmatically).
  std::string coll_selection_table;

  /// Human-readable label used in error messages and traces.
  std::string label = "caf2";

  /// Observability (op-level spans, metrics, blame analysis; src/obs/).
  /// Disabled by default; enabling it does not perturb the event schedule.
  ObsConfig obs{};
};

}  // namespace caf2
