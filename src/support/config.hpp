#pragma once

/// \file config.hpp
/// Configuration records for the simulated interconnect and the runtime.
///
/// The simulator substitutes for the paper's Cray XK6/XE6 testbed
/// (DESIGN.md §1). NetworkParams models the interconnect of such a machine:
/// a per-message wire latency, an injection bandwidth, a per-byte handler
/// cost at the receiver, and a jitter term that perturbs (and can reorder)
/// deliveries. RuntimeOptions bundles the complete configuration of one run.

#include <cstdint>
#include <string>

namespace caf2 {

/// Interconnect model.
///
/// All times are in *virtual microseconds* of the discrete-event simulator.
struct NetworkParams {
  /// One-way wire latency applied to every message.
  double latency_us = 2.0;

  /// Injection bandwidth in bytes per microsecond. The source buffer is read
  /// ("staged") size/bandwidth after initiation; local data completion is
  /// reached at that point.
  double bandwidth_bytes_per_us = 2048.0;

  /// Fixed cost of running a message handler at the receiver.
  double handler_cost_us = 0.2;

  /// Maximum delivery jitter. Each delivery is delayed by a uniform value in
  /// [0, jitter_us], so messages can arrive out of order (non-FIFO channels;
  /// the paper's termination-detection algorithm must tolerate this).
  double jitter_us = 0.0;

  /// Latency applied to a completion acknowledgement (delivery -> initiator).
  /// Defaults to the wire latency when negative.
  double ack_latency_us = -1.0;

  /// Largest payload of a "medium" active message, in bytes. GASNet's
  /// AMMediumPacket limit is what caps UTS steal batches in the paper
  /// (§IV-C1a); spawns whose marshalled arguments exceed this limit are
  /// rejected, just as the prototype's steals were.
  std::uint32_t max_medium_payload = 4096;

  double effective_ack_latency_us() const {
    return ack_latency_us < 0 ? latency_us : ack_latency_us;
  }

  /// A zero-latency, zero-cost network; useful in unit tests that only check
  /// functional behaviour.
  static NetworkParams instant();

  /// Parameters loosely calibrated to a Gemini-class torus (Jaguar/Hopper
  /// era): ~1.5 us latency, ~6 GB/s injection.
  static NetworkParams gemini_like();
};

/// Complete configuration of a simulated SPMD run.
struct RuntimeOptions {
  /// Number of process images (the paper's "cores").
  int num_images = 4;

  /// Interconnect model.
  NetworkParams net{};

  /// Master seed; expanded per image / subsystem via SplitMix64.
  std::uint64_t seed = 0x9E3779B97F4A7C15ULL;

  /// When true the engine records an event trace (sequence of (time, image,
  /// kind) triples) that tests use to assert determinism.
  bool record_trace = false;

  /// Upper bound on executed simulation events; guards against accidental
  /// infinite message loops in tests. Zero means unlimited.
  std::uint64_t max_events = 0;

  /// Enable the simulator's self-wake fast path (sim/engine.hpp). Results
  /// are bit-identical with it on or off; the switch exists for regression
  /// tests and perf comparisons. CAF2_SIM_NO_FASTPATH=1 also disables it.
  bool sim_fastpath = true;

  /// Human-readable label used in error messages and traces.
  std::string label = "caf2";
};

}  // namespace caf2
