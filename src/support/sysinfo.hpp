#pragma once

/// \file sysinfo.hpp
/// Process-level resource measurements used by the benchmark harness and
/// RunStats. These are *measured* quantities of the real machine — unlike
/// everything else the simulator reports they are not deterministic, and the
/// determinism test suite must exclude them from bit-equality comparisons.

#include <cstdint>

namespace caf2 {

/// Peak resident set size of the calling process in bytes (the kernel's
/// high-water mark, so it is monotone across successive runs in the same
/// process). Returns 0 where the platform offers no measurement.
std::uint64_t peak_rss_bytes();

}  // namespace caf2
