#include "support/sha1.hpp"

#include <cstring>

namespace caf2 {

namespace {
std::uint32_t rotl32(std::uint32_t x, int k) {
  return (x << k) | (x >> (32 - k));
}
}  // namespace

Sha1::Sha1() { reset(); }

void Sha1::reset() {
  h_ = {0x67452301u, 0xEFCDAB89u, 0x98BADCFEu, 0x10325476u, 0xC3D2E1F0u};
  buffered_ = 0;
  total_bytes_ = 0;
}

void Sha1::update(std::span<const std::uint8_t> data) {
  total_bytes_ += data.size();
  std::size_t offset = 0;
  if (buffered_ > 0) {
    const std::size_t take = std::min(data.size(), buffer_.size() - buffered_);
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += take;
    offset = take;
    if (buffered_ == buffer_.size()) {
      process_block(buffer_.data());
      buffered_ = 0;
    }
  }
  while (offset + 64 <= data.size()) {
    process_block(data.data() + offset);
    offset += 64;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
    buffered_ = data.size() - offset;
  }
}

Sha1::Digest Sha1::digest() {
  const std::uint64_t bit_length = total_bytes_ * 8;
  const std::uint8_t pad_one = 0x80;
  update(std::span<const std::uint8_t>(&pad_one, 1));
  const std::uint8_t zero = 0x00;
  while (buffered_ != 56) {
    update(std::span<const std::uint8_t>(&zero, 1));
  }
  std::uint8_t length_be[8];
  for (int i = 0; i < 8; ++i) {
    length_be[i] = static_cast<std::uint8_t>(bit_length >> (56 - 8 * i));
  }
  update(std::span<const std::uint8_t>(length_be, 8));

  Digest out{};
  for (int i = 0; i < 5; ++i) {
    out[4 * i + 0] = static_cast<std::uint8_t>(h_[i] >> 24);
    out[4 * i + 1] = static_cast<std::uint8_t>(h_[i] >> 16);
    out[4 * i + 2] = static_cast<std::uint8_t>(h_[i] >> 8);
    out[4 * i + 3] = static_cast<std::uint8_t>(h_[i]);
  }
  return out;
}

void Sha1::process_block(const std::uint8_t* block) {
  std::uint32_t w[80];
  for (int t = 0; t < 16; ++t) {
    w[t] = (static_cast<std::uint32_t>(block[4 * t]) << 24) |
           (static_cast<std::uint32_t>(block[4 * t + 1]) << 16) |
           (static_cast<std::uint32_t>(block[4 * t + 2]) << 8) |
           static_cast<std::uint32_t>(block[4 * t + 3]);
  }
  for (int t = 16; t < 80; ++t) {
    w[t] = rotl32(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1);
  }

  std::uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];
  for (int t = 0; t < 80; ++t) {
    std::uint32_t f;
    std::uint32_t k;
    if (t < 20) {
      f = (b & c) | (~b & d);
      k = 0x5A827999u;
    } else if (t < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1u;
    } else if (t < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDCu;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6u;
    }
    const std::uint32_t temp = rotl32(a, 5) + f + e + k + w[t];
    e = d;
    d = c;
    c = rotl32(b, 30);
    b = a;
    a = temp;
  }
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
}

Sha1::Digest Sha1::hash(std::span<const std::uint8_t> data) {
  Sha1 hasher;
  hasher.update(data);
  return hasher.digest();
}

std::string Sha1::to_hex(const Digest& digest) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(2 * digest.size());
  for (std::uint8_t byte : digest) {
    out.push_back(kHex[byte >> 4]);
    out.push_back(kHex[byte & 0xF]);
  }
  return out;
}

}  // namespace caf2
