#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/error.hpp"

namespace caf2 {

void Accumulator::add(double value) {
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double Accumulator::mean() const {
  return count_ == 0 ? 0.0 : mean_;
}

double Accumulator::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

void Accumulator::merge(const Accumulator& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double n = n1 + n2;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  mean_ += delta * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  CAF2_REQUIRE(buckets > 0, "Histogram needs at least one bucket");
  CAF2_REQUIRE(hi > lo, "Histogram range must be non-empty");
}

void Histogram::add(double value) {
  const double frac = (value - lo_) / (hi_ - lo_);
  auto index = static_cast<std::ptrdiff_t>(
      frac * static_cast<double>(counts_.size()));
  index = std::clamp<std::ptrdiff_t>(
      index, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(index)];
  ++total_;
}

double Histogram::bucket_lo(std::size_t index) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(index) /
                   static_cast<double>(counts_.size());
}

double Histogram::bucket_hi(std::size_t index) const {
  return bucket_lo(index + 1);
}

std::string Histogram::render(std::size_t bar_width) const {
  std::uint64_t peak = 1;
  for (std::uint64_t c : counts_) {
    peak = std::max(peak, c);
  }
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(bar_width));
    os.setf(std::ios::fixed);
    os.precision(4);
    os << "[" << bucket_lo(i) << ", " << bucket_hi(i) << ") "
       << std::string(bar, '#') << " " << counts_[i] << "\n";
  }
  return os.str();
}

double quantile(std::vector<double> samples, double q) {
  CAF2_REQUIRE(!samples.empty(), "quantile of empty sample set");
  CAF2_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be in [0,1]");
  std::sort(samples.begin(), samples.end());
  const double pos = q * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, samples.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

}  // namespace caf2
