#include "support/error.hpp"

#include <sstream>

namespace caf2::detail {

namespace {
std::string format(const char* kind, const char* file, int line,
                   const std::string& msg) {
  std::ostringstream os;
  os << kind << " at " << file << ":" << line << ": " << msg;
  return os.str();
}
}  // namespace

void throw_usage(const char* file, int line, const std::string& msg) {
  throw UsageError(format("caf2 usage error", file, line, msg));
}

void throw_fatal(const char* file, int line, const std::string& msg) {
  throw FatalError(format("caf2 fatal error", file, line, msg));
}

}  // namespace caf2::detail
