#include "support/table.hpp"

#include <cstdio>
#include <iomanip>
#include <sstream>

#include "support/error.hpp"

namespace caf2 {

Table::Table(std::string title) : title_(std::move(title)) {}

Table& Table::columns(std::vector<std::string> names) {
  headers_ = std::move(names);
  return *this;
}

Table& Table::precision(int digits) {
  precision_ = digits;
  return *this;
}

Table& Table::add_row(std::vector<Cell> cells) {
  CAF2_REQUIRE(cells.size() == headers_.size(),
               "Table row width does not match column count");
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::render_cell(const Cell& cell) const {
  if (const auto* text = std::get_if<std::string>(&cell)) {
    return *text;
  }
  if (const auto* integer = std::get_if<long long>(&cell)) {
    return std::to_string(*integer);
  }
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision_) << std::get<double>(cell);
  return os.str();
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      cells.push_back(render_cell(row[c]));
      widths[c] = std::max(widths[c], cells.back().size());
    }
    rendered.push_back(std::move(cells));
  }

  std::ostringstream os;
  os << "== " << title_ << " ==\n";
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(widths[c]))
         << cells[c];
    }
    os << "\n";
  };
  emit_row(headers_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule += widths[c] + (c == 0 ? 0 : 2);
  }
  os << std::string(rule, '-') << "\n";
  for (const auto& row : rendered) {
    emit_row(row);
  }
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c == 0 ? "" : ",") << headers_[c];
  }
  os << "\n";
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : ",") << render_cell(row[c]);
    }
    os << "\n";
  }
  return os.str();
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

}  // namespace caf2
