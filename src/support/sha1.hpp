#pragma once

/// \file sha1.hpp
/// Standalone SHA-1 implementation (FIPS 180-1).
///
/// The Unbalanced Tree Search benchmark derives each tree node's 20-byte
/// descriptor by hashing its parent's descriptor concatenated with the
/// child's index. The paper's UTS implementation (Olivier et al., LCPC'06)
/// uses SHA-1 for this purpose; we implement it from scratch so the kernel
/// has no external dependencies.
///
/// SHA-1 is used here purely as a deterministic splittable PRNG; it is not a
/// security boundary.

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

namespace caf2 {

/// Incremental SHA-1 hasher.
class Sha1 {
 public:
  static constexpr std::size_t kDigestBytes = 20;
  using Digest = std::array<std::uint8_t, kDigestBytes>;

  Sha1();

  /// Absorb \p data.
  void update(std::span<const std::uint8_t> data);

  /// Finalize and return the 20-byte digest. The hasher must not be reused
  /// after calling digest() without calling reset().
  Digest digest();

  /// Reset to the initial state.
  void reset();

  /// One-shot convenience.
  static Digest hash(std::span<const std::uint8_t> data);

  /// Hex string of a digest (for tests against published vectors).
  static std::string to_hex(const Digest& digest);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 5> h_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace caf2
