#include "support/rng.hpp"

namespace caf2 {

namespace {
std::uint64_t splitmix64_step(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t SplitMix64::next() { return splitmix64_step(state_); }

std::uint64_t SplitMix64::child(std::uint64_t index) const {
  // Mix the index into a copy of the state so children are independent of
  // each other and of the parent's future output.
  std::uint64_t s = state_ ^ (0xA0761D6478BD642FULL * (index + 1));
  return splitmix64_step(s);
}

Xoshiro256ss::Xoshiro256ss(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : s_) {
    word = splitmix64_step(s);
  }
}

std::uint64_t Xoshiro256ss::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Xoshiro256ss::next_below(std::uint64_t bound) {
  if (bound <= 1) {
    return 0;
  }
  // Lemire's nearly-divisionless bounded generation.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Xoshiro256ss::next_double() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::uint64_t HpccRandom::starts(std::int64_t n) {
  // Reference HPCC implementation: express n in binary and use the
  // "square-and-multiply" analogue over GF(2) matrices represented by the
  // effect of the recurrence on basis vectors.
  while (n < 0) {
    n += kPeriod;
  }
  while (n > kPeriod) {
    n -= kPeriod;
  }
  if (n == 0) {
    return 1;
  }

  std::uint64_t m2[64];
  std::uint64_t temp = 1;
  for (int i = 0; i < 64; ++i) {
    m2[i] = temp;
    temp = (temp << 1) ^ ((static_cast<std::int64_t>(temp) < 0) ? kPoly : 0);
    temp = (temp << 1) ^ ((static_cast<std::int64_t>(temp) < 0) ? kPoly : 0);
  }

  int i = 62;
  while (i >= 0 && !((n >> i) & 1)) {
    --i;
  }

  std::uint64_t ran = 2;
  while (i > 0) {
    temp = 0;
    for (int j = 0; j < 64; ++j) {
      if ((ran >> j) & 1) {
        temp ^= m2[j];
      }
    }
    ran = temp;
    --i;
    if ((n >> i) & 1) {
      ran = (ran << 1) ^ ((static_cast<std::int64_t>(ran) < 0) ? kPoly : 0);
    }
  }
  return ran;
}

std::uint64_t HpccRandom::next() {
  const std::uint64_t current = value_;
  value_ = (value_ << 1) ^
           ((static_cast<std::int64_t>(value_) < 0) ? kPoly : 0);
  return current;
}

}  // namespace caf2
