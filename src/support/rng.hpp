#pragma once

/// \file rng.hpp
/// Seeded random number generators used throughout the runtime and kernels.
///
/// Everything in caf2 that needs randomness draws from one of these
/// generators with an explicit seed, so that a simulation run is a pure
/// function of its configuration: identical seeds yield identical event
/// orderings, message jitter, steal victims, and benchmark inputs.
///
/// Three generators are provided:
///  - SplitMix64: seed expander / cheap stream splitter;
///  - Xoshiro256ss: general-purpose generator (jitter, victim selection);
///  - HpccRandom: the HPC Challenge RandomAccess polynomial stream, including
///    the logarithmic-time starts() jump function the benchmark requires.

#include <array>
#include <cstdint>

namespace caf2 {

/// SplitMix64 (Steele, Lea, Flood 2014). Used to expand a single user seed
/// into independent per-image / per-subsystem seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  /// Next 64-bit value.
  std::uint64_t next();

  /// Derive the i-th child seed deterministically (does not perturb *this).
  std::uint64_t child(std::uint64_t index) const;

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman, Vigna). Fast, high-quality, 256-bit state.
class Xoshiro256ss {
 public:
  /// Seeds the 256-bit state by running SplitMix64 on \p seed.
  explicit Xoshiro256ss(std::uint64_t seed);

  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform value in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

 private:
  std::array<std::uint64_t, 4> s_;
};

/// The HPC Challenge RandomAccess pseudo-random stream:
///   x_{k+1} = (x_k << 1) XOR (x_k < 0 ? POLY : 0)
/// over the primitive polynomial POLY = 0x7 (x^63 + x^2 + x + 1).
/// starts(n) computes x_n in O(log n) time, which lets every image begin at
/// its own offset of the global update stream exactly as the benchmark
/// specifies.
class HpccRandom {
 public:
  static constexpr std::uint64_t kPoly = 0x0000000000000007ULL;
  static constexpr std::int64_t kPeriod = 1317624576693539401LL;

  /// Value of the stream at position \p n (n may be negative, taken modulo
  /// the period as in the reference implementation).
  static std::uint64_t starts(std::int64_t n);

  /// Construct positioned at stream index \p n.
  explicit HpccRandom(std::int64_t n = 0) : value_(starts(n)) {}

  /// Current value, then advance one step.
  std::uint64_t next();

  /// Current value without advancing.
  std::uint64_t peek() const { return value_; }

 private:
  std::uint64_t value_;
};

}  // namespace caf2
