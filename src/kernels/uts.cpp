#include "kernels/uts.hpp"

#include <cmath>
#include <cstring>

namespace caf2::kernels {

UtsNode UtsTree::root() const {
  std::uint8_t seed_bytes[8];
  for (int i = 0; i < 8; ++i) {
    seed_bytes[i] = static_cast<std::uint8_t>(root_seed >> (8 * i));
  }
  UtsNode node;
  node.digest = Sha1::hash(std::span<const std::uint8_t>(seed_bytes, 8));
  node.depth = 0;
  return node;
}

int UtsTree::child_count(const UtsNode& node) const {
  if (node.depth >= max_depth) {
    return 0;
  }
  if (node.depth == 0) {
    // UTS geometric trees give the root exactly b0 children.
    return static_cast<int>(b0 + 0.5);
  }
  // Geometric law with mean b0: interpret the first four descriptor bytes
  // as a uniform value u in [0,1) and invert the geometric CDF.
  const std::uint32_t raw = (static_cast<std::uint32_t>(node.digest[0]) << 24) |
                            (static_cast<std::uint32_t>(node.digest[1]) << 16) |
                            (static_cast<std::uint32_t>(node.digest[2]) << 8) |
                            static_cast<std::uint32_t>(node.digest[3]);
  const double u =
      (static_cast<double>(raw) + 0.5) / 4294967296.0;  // (0,1)
  const double q = 1.0 / (b0 + 1.0);  // success probability
  const int m = static_cast<int>(std::floor(std::log(1.0 - u) /
                                            std::log(1.0 - q)));
  return m < 0 ? 0 : m;
}

UtsNode UtsTree::child(const UtsNode& node, int index) {
  std::uint8_t buffer[Sha1::kDigestBytes + 4];
  std::memcpy(buffer, node.digest.data(), Sha1::kDigestBytes);
  buffer[Sha1::kDigestBytes + 0] = static_cast<std::uint8_t>(index >> 24);
  buffer[Sha1::kDigestBytes + 1] = static_cast<std::uint8_t>(index >> 16);
  buffer[Sha1::kDigestBytes + 2] = static_cast<std::uint8_t>(index >> 8);
  buffer[Sha1::kDigestBytes + 3] = static_cast<std::uint8_t>(index);
  UtsNode out;
  out.digest = Sha1::hash(
      std::span<const std::uint8_t>(buffer, sizeof(buffer)));
  out.depth = node.depth + 1;
  return out;
}

std::uint64_t UtsTree::count_subtree(const UtsNode& root_node) const {
  // Explicit stack: the tree can be deep and very unbalanced.
  std::vector<UtsNode> stack{root_node};
  std::uint64_t count = 0;
  while (!stack.empty()) {
    const UtsNode node = stack.back();
    stack.pop_back();
    ++count;
    const int kids = child_count(node);
    for (int i = 0; i < kids; ++i) {
      stack.push_back(child(node, i));
    }
  }
  return count;
}

}  // namespace caf2::kernels
