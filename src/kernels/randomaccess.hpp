#pragma once

/// \file randomaccess.hpp
/// HPC Challenge RandomAccess (paper §IV-B).
///
/// A table of 2^m 64-bit words per image is updated at random global
/// indices: update k XORs stream value a_k into table[a_k mod table_size].
/// Two implementations mirror the paper's comparison:
///
///  - Reference ("Get-Update-Put"): each update gets the remote word,
///    updates it locally, and puts it back — two one-sided transfers per
///    update, with the data races the paper acknowledges.
///  - Function shipping: updates are shipped to the image owning the table
///    entry and applied there as local read-modify-writes (atomic by
///    construction); updates are grouped into *bunches*, each enclosed in a
///    finish block, so the bunch size controls how often termination
///    detection runs (paper Figs. 13 and 14).

#include "core/caf2.hpp"

namespace caf2::kernels {

struct RaConfig {
  int log2_local_table = 10;          ///< words per image = 2^this
  std::uint64_t updates_per_image = 1024;
  int bunch = 256;                    ///< updates per finish block (FS only)
  double update_cost_us = 0.05;       ///< modeled cost of one table update
  double issue_cost_us = 0.3;         ///< modeled CPU cost of issuing one
                                      ///< remote operation (spawn/get/put)
  int window = 64;                    ///< in-flight gets (get-update-put);
                                      ///< the reference version pipelines
                                      ///< updates like the HPCC spec allows
  DetectorKind detector = DetectorKind::kEpoch;
};

struct RaStats {
  std::uint64_t updates = 0;     ///< updates this image *initiated*
  std::uint64_t applied = 0;     ///< updates applied to this image's table
  int finishes = 0;              ///< finish blocks executed (FS only)
  double elapsed_us = 0.0;       ///< virtual time of the update phase
  std::uint64_t checksum = 0;    ///< XOR of this image's final table
};

/// Function-shipping implementation with finish bunches. Collective.
RaStats ra_run_function_shipping(const Team& team, const RaConfig& config);

/// Reference get-update-put implementation. Collective.
RaStats ra_run_get_update_put(const Team& team, const RaConfig& config);

/// Serial replay of the full update stream restricted to \p team_rank's
/// partition: the expected checksum for verification. Deterministic and
/// race-free, so the function-shipping variant must match it exactly; the
/// get-update-put variant may differ when races occur (the paper's point).
std::uint64_t ra_expected_checksum(int team_size, int team_rank,
                                   const RaConfig& config);

}  // namespace caf2::kernels
