#pragma once

/// \file uts.hpp
/// Unbalanced Tree Search — the tree itself (paper §IV-C, Olivier et al.
/// LCPC'06).
///
/// UTS counts the nodes of an implicit, highly unbalanced tree. Each node is
/// characterized by a 20-byte descriptor; a child's descriptor is the SHA-1
/// hash of its parent's descriptor concatenated with the child index, so the
/// tree is a pure function of the root seed and needs no explicit links.
/// We implement the geometric ("fixed" law) tree shape the paper evaluates
/// (T1WL-style: expected branching factor 4, bounded depth), with the
/// parameters scaled for simulation.

#include <array>
#include <cstdint>
#include <vector>

#include "support/sha1.hpp"

namespace caf2::kernels {

/// One tree node: SHA-1 descriptor plus its depth.
struct UtsNode {
  std::array<std::uint8_t, Sha1::kDigestBytes> digest{};
  std::int32_t depth = 0;
};
static_assert(std::is_trivially_copyable_v<UtsNode>,
              "UTS nodes travel inside shipped-function payloads");

/// Tree-shape parameters (geometric law).
struct UtsTree {
  double b0 = 4.0;        ///< expected branching factor at the root
  int max_depth = 8;      ///< nodes at max_depth are leaves
  std::uint64_t root_seed = 19;  ///< the paper's initial seed

  /// Descriptor of the root node.
  UtsNode root() const;

  /// Number of children of \p node under the geometric law.
  int child_count(const UtsNode& node) const;

  /// Descriptor of child \p index of \p node.
  static UtsNode child(const UtsNode& node, int index);

  /// Sequential node count of the subtree rooted at \p node (used for the
  /// T1 baseline and for validation); appends nothing, just counts.
  std::uint64_t count_subtree(const UtsNode& node) const;

  /// Sequential count of the whole tree.
  std::uint64_t count_tree() const { return count_subtree(root()); }
};

}  // namespace caf2::kernels
