#pragma once

/// \file uts_scheduler.hpp
/// The paper's UTS implementation (Fig. 15): a composite of work sharing and
/// lifeline-based work stealing (Saraswat et al., PPoPP'11), with finish
/// providing termination detection.
///
///  - Initial work sharing: team rank 0 expands the top of the tree and
///    distributes the frontier round-robin via shipped functions.
///  - Randomized stealing: an image that runs out of work ships a
///    steal_work function to a random victim (one network trip; the reply —
///    work or a nack — is a second trip: the 2-round-trip structure of
///    paper Fig. 3).
///  - Lifelines: after n failed steal attempts an image arms a lifeline on
///    each hypercube neighbor (ranks differing in one bit) and quiesces;
///    neighbors push excess work down armed lifelines.
///  - Termination: the enclosing finish block detects global completion —
///    a barrier cannot, because pushed work can land on an image after it
///    went idle (paper Fig. 5).
///
/// Steal/push batches are capped by the medium active-message payload, the
/// same GASNet limit the paper reports (§IV-C1a).

#include "core/caf2.hpp"
#include "kernels/uts.hpp"

namespace caf2::kernels {

struct UtsConfig {
  UtsTree tree{};
  double node_cost_us = 0.3;  ///< modeled cost of hashing/processing a node
  int chunk = 64;             ///< nodes processed per scheduling quantum
  int steal_batch = 64;       ///< max nodes per steal/lifeline push
  int steal_attempts = 1;     ///< paper: n = 1
  int share_threshold = 16;   ///< share only when the queue exceeds this
  int initial_per_image = 16; ///< frontier nodes rank 0 aims to hand each image
  DetectorKind detector = DetectorKind::kEpoch;
};

struct UtsStats {
  std::uint64_t nodes = 0;        ///< nodes counted by this image
  std::uint64_t total_nodes = 0;  ///< team-wide total (identical everywhere)
  int steals_attempted = 0;
  int steals_successful = 0;
  int lifeline_pushes = 0;
  int finish_rounds = 0;          ///< termination-detection waves (Fig. 18)
  double elapsed_us = 0.0;        ///< virtual time of the whole finish
};

/// Run UTS over \p team (collective). Returns this image's statistics; the
/// total node count is the same on every image.
UtsStats uts_run(const Team& team, const UtsConfig& config);

}  // namespace caf2::kernels
