#include "kernels/uts_scheduler.hpp"

#include <algorithm>
#include <deque>

#include "runtime/image.hpp"
#include "runtime/runtime.hpp"

namespace caf2::kernels {

namespace {

/// Per-image scheduler state. Shipped functions run on the target image's
/// thread, so thread-local storage addresses "the executing image's state"
/// exactly as the paper's runtime does with image-local globals.
struct UtsState {
  UtsConfig config{};
  Team team;
  std::deque<UtsNode> queue;
  std::vector<int> lifelines;  ///< team ranks waiting for work from us
  bool draining = false;
  bool pending_steal = false;
  bool quiesced = false;  ///< past its steal phase; relies on lifelines
  UtsStats stats{};

  int effective_batch() const {
    const auto limit = rt::Image::current()
                           .runtime()
                           .options()
                           .net.max_medium_payload;
    const int by_payload =
        static_cast<int>((limit - 64) / sizeof(UtsNode));
    return std::clamp(config.steal_batch, 1, std::max(by_payload, 1));
  }
};

// Per-image scheduler-state pointer (Image::scratch, non-owning: the state
// lives on uts_run's frame). Not thread_local — under the fiber execution
// backend every image shares one OS thread, and shipped functions must see
// the state of the image they landed on.
constexpr char kUtsTag = 0;

UtsState& uts() {
  std::shared_ptr<void>& slot = rt::Image::current().scratch(&kUtsTag);
  CAF2_ASSERT(slot != nullptr, "UTS shipped function outside uts_run");
  return *static_cast<UtsState*>(slot.get());
}

std::vector<UtsNode> take_front(std::deque<UtsNode>& queue, int n) {
  std::vector<UtsNode> out;
  const int take = std::min<int>(n, static_cast<int>(queue.size()));
  out.reserve(static_cast<std::size_t>(take));
  for (int i = 0; i < take; ++i) {
    out.push_back(queue.front());
    queue.pop_front();
  }
  return out;
}

void drain();
void share_to_lifelines();

void arm_lifelines();

/// Shipped: deposit a batch of nodes on this image and, if it is idle,
/// process them right here (the active-message handler is the execution
/// vehicle for work that lands on a quiesced image). A quiesced image that
/// exhausts the pushed work re-arms its lifelines — lifelines are consumed
/// by each push, and without re-arming the image would starve for the rest
/// of the run (Saraswat et al. re-establish lifelines the same way).
void uts_push_work(std::vector<UtsNode> batch) {
  UtsState& s = uts();
  for (const UtsNode& node : batch) {
    s.queue.push_back(node);
  }
  if (s.pending_steal) {
    s.pending_steal = false;
    s.stats.steals_successful += 1;
  }
  if (!s.draining) {
    drain();
    if (s.quiesced) {
      arm_lifelines();
    }
  }
}

/// Shipped: nothing to steal at the victim.
void uts_steal_nack() { uts().pending_steal = false; }

/// Shipped: a steal attempt landing on this image (the victim). The whole
/// check-and-reserve runs locally — the 2-round-trip rewrite of Fig. 3.
void uts_steal_request(std::int32_t thief_team_rank) {
  UtsState& s = uts();
  const int thief_world = s.team.world_rank(thief_team_rank);
  if (static_cast<int>(s.queue.size()) > s.config.share_threshold) {
    const int give = std::min(static_cast<int>(s.queue.size()) / 2,
                              s.effective_batch());
    spawn<uts_push_work>(thief_world,
                         take_front(s.queue, std::max(give, 1)));
  } else {
    spawn<uts_steal_nack>(thief_world);
  }
}

/// Shipped: arm a lifeline — the requester wants any future excess work.
void uts_set_lifeline(std::int32_t requester_team_rank) {
  UtsState& s = uts();
  if (std::find(s.lifelines.begin(), s.lifelines.end(),
                requester_team_rank) == s.lifelines.end()) {
    s.lifelines.push_back(requester_team_rank);
  }
  if (!s.draining &&
      static_cast<int>(s.queue.size()) > s.config.share_threshold) {
    share_to_lifelines();
  }
}

/// Arm a lifeline on each hypercube neighbor of this image.
void arm_lifelines() {
  UtsState& s = uts();
  for (int bit = 0; (1 << bit) < s.team.size(); ++bit) {
    const int neighbor = s.team.rank() ^ (1 << bit);
    if (neighbor < s.team.size()) {
      spawn<uts_set_lifeline>(s.team.world_rank(neighbor),
                              static_cast<std::int32_t>(s.team.rank()));
    }
  }
}

void share_to_lifelines() {
  UtsState& s = uts();
  while (!s.lifelines.empty() &&
         static_cast<int>(s.queue.size()) > s.config.share_threshold) {
    const int target = s.lifelines.back();
    s.lifelines.pop_back();
    // Steal-half policy: hand out up to half the queue, capped by the
    // medium-message payload limit.
    const int give = std::min(static_cast<int>(s.queue.size()) / 2,
                              s.effective_batch());
    spawn<uts_push_work>(s.team.world_rank(target),
                         take_front(s.queue, std::max(give, 1)));
    s.stats.lifeline_pushes += 1;
  }
}

/// Process local work: expand nodes depth-first in chunks, charging the
/// modeled per-node cost, feeding armed lifelines, and giving the progress
/// engine a chance to serve steal requests between chunks.
void drain() {
  UtsState& s = uts();
  s.draining = true;
  rt::Image& image = rt::Image::current();
  while (!s.queue.empty()) {
    int processed = 0;
    while (processed < s.config.chunk && !s.queue.empty()) {
      const UtsNode node = s.queue.back();
      s.queue.pop_back();
      s.stats.nodes += 1;
      ++processed;
      const int kids = s.config.tree.child_count(node);
      for (int i = 0; i < kids; ++i) {
        s.queue.push_back(UtsTree::child(node, i));
      }
    }
    compute(s.config.node_cost_us * processed);
    share_to_lifelines();
    image.progress();  // serve steal requests between chunks
  }
  s.draining = false;
}

/// Team rank 0 expands the top of the tree breadth-first and hands out the
/// frontier (the paper's "initial work sharing").
void distribute_initial(UtsState& s) {
  const int p = s.team.size();
  const int want = std::max(p * s.config.initial_per_image, p);
  std::deque<UtsNode> frontier{s.config.tree.root()};
  while (static_cast<int>(frontier.size()) < want && !frontier.empty()) {
    const UtsNode node = frontier.front();
    frontier.pop_front();
    s.stats.nodes += 1;
    compute(s.config.node_cost_us);
    const int kids = s.config.tree.child_count(node);
    if (kids == 0 && frontier.empty()) {
      return;  // the whole tree was tiny and rank 0 consumed it
    }
    for (int i = 0; i < kids; ++i) {
      frontier.push_back(UtsTree::child(node, i));
    }
  }
  // Round-robin the frontier; rank 0 keeps its own share locally.
  int next = 1 % p;
  while (!frontier.empty()) {
    auto batch = take_front(frontier, s.effective_batch());
    if (next == 0 || p == 1) {
      for (const UtsNode& node : batch) {
        s.queue.push_back(node);
      }
    } else {
      spawn<uts_push_work>(s.team.world_rank(next), std::move(batch));
    }
    next = (next + 1) % p;
  }
}

}  // namespace

UtsStats uts_run(const Team& team, const UtsConfig& config) {
  CAF2_REQUIRE(team.valid(), "uts_run needs a valid team");
  UtsState state;
  state.config = config;
  state.team = team;
  rt::Image::current().scratch(&kUtsTag) =
      std::shared_ptr<void>(&state, [](void*) {});

  // Entry barrier: no image may start distributing/stealing until every
  // member has installed its scheduler state (messages can land on an image
  // the moment a faster teammate begins).
  team_barrier(team);

  rt::Image& image = rt::Image::current();
  auto& rng = image.rng();
  const double t0 = now_us();

  finish(
      team,
      [&] {
        if (team.rank() == 0) {
          distribute_initial(state);
        }
        drain();

        // Randomized stealing: n failed attempts => quiesce via lifelines.
        int failed = 0;
        while (failed < config.steal_attempts && team.size() > 1) {
          if (!state.queue.empty()) {
            drain();
            continue;
          }
          int victim = static_cast<int>(
              rng.next_below(static_cast<std::uint64_t>(team.size() - 1)));
          if (victim >= team.rank()) {
            ++victim;  // skip self
          }
          state.pending_steal = true;
          state.stats.steals_attempted += 1;
          obs::Recorder* const rec = image.runtime().observer();
          if (rec != nullptr) {
            rec->add(image.rank(), obs::Counter::kStealAttempts);
          }
          spawn<uts_steal_request>(team.world_rank(victim),
                                   static_cast<std::int32_t>(team.rank()));
          {
            obs::BlameScope blame(rec, image.rank(), obs::Blame::kStealIdle);
            image.wait_for(
                [&state] {
                  return !state.pending_steal || !state.queue.empty();
                },
                "uts steal",
                obs::ResourceId{obs::ResourceKind::kSteal,
                                team.world_rank(victim), 0, 0});
          }
          if (!state.queue.empty()) {
            drain();
          } else {
            ++failed;
          }
        }

        // Arm lifelines on hypercube neighbors and quiesce; excess work will
        // be pushed to us and processed inside the push_work handler while
        // this image sits in finish's termination detection.
        state.quiesced = true;
        arm_lifelines();
      },
      FinishOptions{config.detector});

  state.stats.finish_rounds = last_finish_report().rounds;
  state.stats.elapsed_us = now_us() - t0;
  state.stats.total_nodes = allreduce<std::uint64_t>(
      team, state.stats.nodes, RedOp::kSum);
  rt::Image::current().scratch(&kUtsTag).reset();
  return state.stats;
}

}  // namespace caf2::kernels
