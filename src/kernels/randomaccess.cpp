#include "kernels/randomaccess.hpp"

#include <vector>

#include "runtime/image.hpp"
#include "support/rng.hpp"

namespace caf2::kernels {

namespace {

struct RaState {
  std::uint64_t applied = 0;
  double update_cost_us = 0.0;
};

// Per-image state pointer (Image::scratch, non-owning: the state lives on
// ra_run_function_shipping's frame). Not thread_local — under the fiber
// execution backend every image shares one OS thread, and a shipped update
// must count on the image it landed on.
constexpr char kRaTag = 0;

RaState* ra_state() {
  return static_cast<RaState*>(rt::Image::current().scratch(&kRaTag).get());
}

/// Shipped: apply one read-modify-write on the owning image. Runs on the
/// owner's context, so it is atomic by construction (the paper's point about
/// the function-shipping variant).
void ra_update(Coref<std::uint64_t> table, std::uint64_t offset,
               std::uint64_t value) {
  table.local()[offset] ^= value;
  if (RaState* state = ra_state(); state != nullptr) {
    state->applied += 1;
    if (state->update_cost_us > 0.0) {
      compute(state->update_cost_us);
    }
  }
}

std::uint64_t table_checksum(std::span<const std::uint64_t> table) {
  std::uint64_t checksum = 0;
  for (std::uint64_t word : table) {
    checksum ^= word;
  }
  return checksum;
}

/// Stream start of one image. The HPCC recurrence starting from x_0 = 1
/// stays extremely sparse (few set bits) for a long prefix — and positions
/// that are powers of two stay sparse too, because x_{2^k} is a repeated
/// Frobenius square of a sparse element. The reference benchmark jumps each
/// process deep into the stream; we do the same with a large non-structured
/// base offset, after which consecutive values are well mixed.
std::int64_t stream_start(int team_rank, std::uint64_t updates) {
  constexpr std::int64_t kWarmup = 97'003'919;
  return kWarmup + static_cast<std::int64_t>(
                       static_cast<std::uint64_t>(team_rank) * updates);
}

void init_table(Coarray<std::uint64_t>& table, const Team& team) {
  const std::uint64_t local = table.count();
  const std::uint64_t base = static_cast<std::uint64_t>(team.rank()) * local;
  for (std::uint64_t i = 0; i < local; ++i) {
    table[i] = base + i;
  }
}

}  // namespace

RaStats ra_run_function_shipping(const Team& team, const RaConfig& config) {
  const std::uint64_t local = 1ULL << config.log2_local_table;
  const std::uint64_t total = local * static_cast<std::uint64_t>(team.size());

  RaState state;
  state.update_cost_us = config.update_cost_us;
  rt::Image::current().scratch(&kRaTag) =
      std::shared_ptr<void>(&state, [](void*) {});

  Coarray<std::uint64_t> table(team, local);
  init_table(table, team);
  team_barrier(team);

  RaStats stats;
  const double t0 = now_us();
  HpccRandom stream(stream_start(team.rank(), config.updates_per_image));

  std::uint64_t done = 0;
  while (done < config.updates_per_image) {
    const std::uint64_t bunch = std::min<std::uint64_t>(
        static_cast<std::uint64_t>(config.bunch),
        config.updates_per_image - done);
    // One finish block per bunch: global completion of every shipped update
    // in the bunch before the next begins (paper §IV-B groups 512-2048
    // updates per finish).
    finish(
        team,
        [&] {
          for (std::uint64_t j = 0; j < bunch; ++j) {
            const std::uint64_t value = stream.next();
            const std::uint64_t index = value % total;
            const int target = static_cast<int>(index / local);
            const std::uint64_t offset = index % local;
            spawn<ra_update>(team.world_rank(target), table.ref(), offset,
                             value);
            if (config.issue_cost_us > 0.0) {
              compute(config.issue_cost_us);
            }
          }
        },
        FinishOptions{config.detector});
    done += bunch;
    stats.finishes += 1;
  }
  stats.elapsed_us = now_us() - t0;
  stats.updates = config.updates_per_image;
  stats.applied = state.applied;
  stats.checksum = table_checksum(table.local());
  team_barrier(team);
  rt::Image::current().scratch(&kRaTag).reset();
  return stats;
}

RaStats ra_run_get_update_put(const Team& team, const RaConfig& config) {
  const std::uint64_t local = 1ULL << config.log2_local_table;
  const std::uint64_t total = local * static_cast<std::uint64_t>(team.size());

  Coarray<std::uint64_t> table(team, local);
  init_table(table, team);
  team_barrier(team);

  RaStats stats;
  const double t0 = now_us();
  HpccRandom stream(stream_start(team.rank(), config.updates_per_image));

  // The reference version pipelines `window` updates: issue a get per slot,
  // and when a slot's value arrives, update it locally and put it back.
  // Individual updates stay unsynchronized against other images' updates of
  // the same word — the data race the paper's reference version admits.
  struct Slot {
    Event got;
    Event staged;
    std::uint64_t tmp = 0;
    std::uint64_t value = 0;
    int target = -1;
    std::uint64_t offset = 0;
    bool busy = false;
  };
  std::vector<std::unique_ptr<Slot>> slots;
  const int window = std::max(config.window, 1);
  slots.reserve(static_cast<std::size_t>(window));
  for (int s = 0; s < window; ++s) {
    slots.push_back(std::make_unique<Slot>());
  }

  Event puts_delivered;
  std::uint64_t puts_outstanding = 0;

  auto retire = [&](Slot& slot) {
    slot.got.wait();
    slot.tmp ^= slot.value;
    if (config.update_cost_us > 0.0) {
      compute(config.update_cost_us);
    }
    copy_async(table.slice(slot.target, slot.offset, 1),
               std::span<const std::uint64_t>(&slot.tmp, 1),
               {.src_done = slot.staged.handle(),
                .dst_done = puts_delivered.handle()});
    ++puts_outstanding;
    if (config.issue_cost_us > 0.0) {
      compute(config.issue_cost_us);
    }
    slot.staged.wait();  // slot.tmp is reusable once the put is injected
    slot.busy = false;
  };

  for (std::uint64_t k = 0; k < config.updates_per_image; ++k) {
    const std::uint64_t value = stream.next();
    const std::uint64_t index = value % total;
    const int target = static_cast<int>(index / local);
    const std::uint64_t offset = index % local;

    if (target == team.rank()) {
      table[offset] ^= value;
      if (config.update_cost_us > 0.0) {
        compute(config.update_cost_us);
      }
      continue;
    }

    Slot& slot = *slots[static_cast<std::size_t>(k) %
                        static_cast<std::size_t>(window)];
    if (slot.busy) {
      retire(slot);
    }
    slot.value = value;
    slot.target = target;
    slot.offset = offset;
    slot.busy = true;
    copy_async(std::span<std::uint64_t>(&slot.tmp, 1),
               table.slice(target, offset, 1),
               {.dst_done = slot.got.handle()});
    if (config.issue_cost_us > 0.0) {
      compute(config.issue_cost_us);
    }
  }
  for (auto& slot : slots) {
    if (slot->busy) {
      retire(*slot);
    }
  }
  puts_delivered.wait_many(puts_outstanding);
  team_barrier(team);

  stats.elapsed_us = now_us() - t0;
  stats.updates = config.updates_per_image;
  stats.checksum = table_checksum(table.local());
  team_barrier(team);
  return stats;
}

std::uint64_t ra_expected_checksum(int team_size, int team_rank,
                                   const RaConfig& config) {
  const std::uint64_t local = 1ULL << config.log2_local_table;
  const std::uint64_t total = local * static_cast<std::uint64_t>(team_size);
  const std::uint64_t base = static_cast<std::uint64_t>(team_rank) * local;

  std::vector<std::uint64_t> table(local);
  for (std::uint64_t i = 0; i < local; ++i) {
    table[i] = base + i;
  }
  for (int image = 0; image < team_size; ++image) {
    HpccRandom stream(stream_start(image, config.updates_per_image));
    for (std::uint64_t k = 0; k < config.updates_per_image; ++k) {
      const std::uint64_t value = stream.next();
      const std::uint64_t index = value % total;
      if (index >= base && index < base + local) {
        table[index - base] ^= value;
      }
    }
  }
  std::uint64_t checksum = 0;
  for (std::uint64_t word : table) {
    checksum ^= word;
  }
  return checksum;
}

}  // namespace caf2::kernels
