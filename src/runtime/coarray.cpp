#include "runtime/coarray.hpp"

#include "runtime/image.hpp"

namespace caf2::rt {

std::uint64_t coarray_allocate_id(const Team& team) {
  // Ids are a deterministic function of the per-team allocation sequence;
  // SPMD discipline (every member allocates at the same program point) makes
  // them agree across images without communication.
  Image& image = Image::current();
  CAF2_REQUIRE(team.valid(), "coarray allocation over an invalid team");
  const std::uint64_t seq = image.next_coarray_seq(team.id());
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(team.id()))
          << 32) |
         seq;
}

void coarray_register(std::uint64_t id, BlockInfo info) {
  Image::current().register_block(id, info);
}

void coarray_deregister(std::uint64_t id) {
  Image::current().deregister_block(id);
}

BlockInfo coarray_lookup(std::uint64_t id) {
  return Image::current().lookup_block(id);
}

}  // namespace caf2::rt
