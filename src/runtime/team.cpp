#include "runtime/team.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <map>
#include <mutex>

#include "runtime/image.hpp"
#include "runtime/runtime.hpp"

namespace caf2 {

int Team::world_rank(int team_rank) const {
  const TeamData& data = require();
  CAF2_REQUIRE(team_rank >= 0 &&
                   team_rank < static_cast<int>(data.members.size()),
               "team rank out of range");
  return data.members[static_cast<std::size_t>(team_rank)];
}

int Team::rank_of_world(int world) const {
  const TeamData& data = require();
  for (std::size_t i = 0; i < data.members.size(); ++i) {
    if (data.members[i] == world) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

bool Team::contains_team(const Team& other) const {
  const TeamData& mine = require();
  for (int member : other.require().members) {
    if (std::find(mine.members.begin(), mine.members.end(), member) ==
        mine.members.end()) {
      return false;
    }
  }
  return true;
}

Team team_world() { return rt::Image::current().world_team(); }

namespace {
/// Virtual cost charged for the split rendezvous: two tree traversals
/// (gather + scatter) of the parent team.
double split_cost_us(int team_size, const NetworkParams& net) {
  const int rounds =
      std::bit_width(static_cast<unsigned>(std::max(team_size - 1, 1)));
  return 2.0 * rounds * (net.latency_us + net.handler_cost_us);
}
}  // namespace

Team Team::split(int color, int key) const {
  rt::Image& image = rt::Image::current();
  rt::Runtime& runtime = image.runtime();
  const TeamData& parent = require();

  const std::uint32_t seq =
      image.next_split_seq(parent.id);
  // The split tables are shared across images; on a sharded engine the
  // members contribute from different OS threads (runtime.hpp, SplitOp).
  std::unique_lock<std::mutex> split_lock(runtime.split_mutex());
  rt::SplitOp& op = runtime.split_op(
      parent.id, seq, static_cast<int>(parent.members.size()));
  op.entries[parent.my_rank] = {color, key};
  op.contributed += 1;

  if (op.contributed == op.expected) {
    // Rendezvous complete: group members by color, order by (key, parent
    // rank), and allocate new team ids in ascending color order so every
    // member computes identical ids.
    std::map<int, std::vector<std::pair<int, int>>> groups;  // color -> [(key, parent rank)]
    for (const auto& [parent_rank, entry] : op.entries) {
      if (entry.first >= 0) {
        groups[entry.first].emplace_back(entry.second, parent_rank);
      }
    }
    const int base_id =
        runtime.allocate_team_ids(static_cast<int>(groups.size()));
    int offset = 0;
    for (auto& [group_color, members] : groups) {
      (void)group_color;
      std::sort(members.begin(), members.end());
      const int team_id = base_id + offset;
      ++offset;
      std::vector<int> world_ranks;
      world_ranks.reserve(members.size());
      for (const auto& [member_key, parent_rank] : members) {
        (void)member_key;
        world_ranks.push_back(
            parent.members[static_cast<std::size_t>(parent_rank)]);
      }
      for (std::size_t new_rank = 0; new_rank < members.size(); ++new_rank) {
        auto data = std::make_shared<TeamData>();
        data->id = team_id;
        data->my_rank = static_cast<int>(new_rank);
        data->members = world_ranks;
        op.results[members[new_rank].second] = std::move(data);
      }
    }
    op.computed.store(true, std::memory_order_release);
    split_lock.unlock();
    for (int world : parent.members) {
      runtime.engine().unblock(world);
    }
  } else {
    split_lock.unlock();
    image.wait_for(
        [&op] { return op.computed.load(std::memory_order_acquire); },
        "team_split",
        obs::ResourceId{obs::ResourceKind::kSplit, -1,
                        static_cast<std::uint64_t>(parent.id), seq});
  }

  split_lock.lock();
  std::shared_ptr<const TeamData> mine;
  auto it = op.results.find(parent.my_rank);
  if (it != op.results.end()) {
    mine = it->second;
  }
  runtime.gc_split_op(parent.id, seq);
  split_lock.unlock();

  runtime.engine().advance(
      split_cost_us(static_cast<int>(parent.members.size()),
                    runtime.options().net));

  if (!mine) {
    return Team{};  // negative color: the image opted out
  }
  image.add_team(mine);
  return Team(std::move(mine));
}

}  // namespace caf2
