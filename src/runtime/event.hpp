#pragma once

/// \file event.hpp
/// Events — completion notification and pairwise coordination (paper §II-B).
///
/// An Event is a counting synchronization object owned by the image that
/// constructs it. notify() increments the count (with release semantics:
/// it first awaits local *operation* completion of the outstanding implicit
/// asynchronous operations in the current scope — paper §III-B4a); wait()
/// blocks until the count is positive and consumes one notification
/// (acquire semantics: it orders nothing before itself).
///
/// Events that must be notified from other images are addressed through
/// RemoteEvent handles; CoEvent allocates one event per member of a team and
/// hands out remote handles by team rank (the coarray-of-events idiom).

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "runtime/team.hpp"

namespace caf2 {

namespace rt {
class Image;
}

/// Serializable handle to an event on some image.
struct RemoteEvent {
  std::int32_t image = -1;      ///< world rank of the owner
  std::uint64_t event_id = 0;

  bool valid() const { return image >= 0; }
};

class Event {
 public:
  /// Registers the event with the calling image.
  Event();
  ~Event();

  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  /// Notify with release semantics: awaits local operation completion of the
  /// outstanding implicit operations in the current scope, then posts.
  void notify();

  /// Block until at least one notification is pending, then consume it.
  void wait();

  /// Block until \p count notifications are pending, consuming them.
  void wait_many(std::uint64_t count);

  /// Non-blocking: consume one pending notification if available.
  bool test();

  /// Pending (unconsumed) notification count.
  std::uint64_t pending() const { return count_; }

  /// Handle for remote notification / async-op completion routing.
  RemoteEvent handle() const;

  std::uint64_t id() const { return id_; }

  /// --- runtime-internal ----------------------------------------------------

  /// Raw post (no release semantics); runs a queued trigger instead of
  /// incrementing when one is armed. Called by the runtime on local notify
  /// and on arrival of a remote notify message. Safe from engine-callback
  /// context.
  void post();

  /// Arm a one-shot continuation: consumes the next notification (or an
  /// already-pending one immediately) and runs \p fn. Used to implement
  /// predicated asynchronous copies (copy_async preE).
  void when_posted(std::function<void()> fn);

 private:
  std::uint64_t id_ = 0;
  std::uint64_t count_ = 0;
  rt::Image* owner_ = nullptr;
  std::deque<std::function<void()>> triggers_;
};

/// Notify an event wherever it lives: locally if owned by the calling
/// image, otherwise via an (untracked) active message. Release semantics
/// apply on the notifying image either way.
void notify_event(const RemoteEvent& event);

/// One event per member of a team, remotely addressable by team rank —
/// the "event coarray" of the paper. Allocation is collective (SPMD).
class CoEvent {
 public:
  explicit CoEvent(const Team& team);
  ~CoEvent();

  CoEvent(const CoEvent&) = delete;
  CoEvent& operator=(const CoEvent&) = delete;

  /// The calling image's own event.
  Event& local() { return local_event_; }

  /// Handle to the event owned by team rank \p team_rank.
  RemoteEvent operator()(int team_rank) const;

  const Team& team() const { return team_; }

 private:
  Team team_;
  Event local_event_;
  std::uint64_t slot_ = 0;  ///< per-team coevent slot (same on all members)
};

}  // namespace caf2
