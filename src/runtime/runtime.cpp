#include "runtime/runtime.hpp"

#include <algorithm>
#include <string_view>

#include "obs/blame.hpp"
#include "sim/participant.hpp"

namespace caf2::rt {

namespace {
// The current image/runtime live in engine context slots, not raw
// thread_locals: with the fiber backend many images share one OS thread and
// the engine swaps slot contents on every fiber switch (sim/engine.hpp,
// ExecContext). Slot 0: Image*, slot 1: Runtime*.
constexpr int kImageSlot = 0;
constexpr int kRuntimeSlot = 1;

Image* current_image_slot() {
  return static_cast<Image*>(sim::Engine::context_slot(kImageSlot));
}

Runtime* current_runtime_slot() {
  return static_cast<Runtime*>(sim::Engine::context_slot(kRuntimeSlot));
}

void set_current(Image* image, Runtime* runtime) {
  sim::Engine::context_slot(kImageSlot) = image;
  sim::Engine::context_slot(kRuntimeSlot) = runtime;
}

/// Exit rendezvous: images leave the SPMD body collectively so that no image
/// tears down while teammates still expect its participation. Implemented as
/// a shared counter (a runtime service, not a modeled collective).
///
/// On a *sharded* engine a bare shared counter would be read at real-time-
/// racy moments: an image polled awake on one shard could observe arrivals
/// another shard made "in the future" of its own virtual clock, making the
/// final wake times — and thus traces and context-switch counts — differ
/// between identically-seeded runs. The sharded gate is therefore event-
/// driven: arrivals funnel to image 0's shard as engine events (one
/// conservative-lookahead hop), and the completed count releases each image
/// through a per-image flag written only by that image's own shard, so every
/// predicate read is a deterministic function of virtual time. The unsharded
/// path keeps the legacy counter verbatim (bit-identical traces).
struct ExitGate {
  int expected = 0;
  // legacy (unsharded) path
  int arrived = 0;
  // sharded path: collect on image 0's shard, release per image
  int collected = 0;
  std::unique_ptr<std::atomic<bool>[]> released;
};
}  // namespace

Image& Image::current() {
  Image* image = current_image_slot();
  CAF2_REQUIRE(image != nullptr,
               "no current image: this call must run on an image context");
  return *image;
}

bool Image::has_current() { return current_image_slot() != nullptr; }

Runtime& Runtime::current() {
  Runtime* runtime = current_runtime_slot();
  CAF2_REQUIRE(runtime != nullptr,
               "no current runtime: this call must run on an image context");
  return *runtime;
}

Runtime::Runtime(RuntimeOptions options) : options_(std::move(options)) {
  CAF2_REQUIRE(options_.num_images > 0, "need at least one image");
  sim::EngineOptions engine_options;
  engine_options.record_trace = options_.record_trace;
  engine_options.max_events = options_.max_events;
  engine_options.label = options_.label;
  engine_options.enable_fastpath = options_.sim_fastpath;
  engine_options.backend = options_.sim_backend;
  engine_options.watchdog_quiet_us = options_.watchdog_quiet_us;
  engine_options.shards = options_.shards;
  // The conservative lookahead for sharded execution is the network's wire
  // latency: a cross-shard delivery can never land earlier than one latency
  // after its send (net/network.hpp). Reliable delivery and obs span capture
  // both run sharded too (per-shard protocol cells and recorder net lanes,
  // DESIGN.md §4.12); only a zero-latency "instant" network still forces the
  // engine back to one shard, because it leaves no positive lookahead.
  engine_options.lookahead_us = options_.net.latency_us;
  engine_options.adaptive_lookahead = options_.adaptive_lookahead;
  engine_ = std::make_unique<sim::Engine>(options_.num_images,
                                          std::move(engine_options));
  network_ = std::make_unique<net::Network>(*engine_, options_.net,
                                            SplitMix64(options_.seed).child(0));
  if (options_.obs.enabled) {
    // One net lane per engine shard: each shard appends flight spans to its
    // own lane and the lanes merge deterministically at capture time.
    observer_ = std::make_unique<obs::Recorder>(options_.num_images,
                                                options_.obs,
                                                engine_->shard_count());
    engine_->set_observer(observer_.get());
    network_->set_observer(observer_.get());
  }
  if (options_.obs.flight_recorder) {
    flight_recorder_ = std::make_unique<obs::FlightRecorder>(
        options_.num_images, options_.obs.flight_recorder_entries);
    network_->set_flight_recorder(flight_recorder_.get());
  }
  engine_->set_postmortem_collector(
      [this](obs::Postmortem& pm) { fill_postmortem(pm); });
  SplitMix64 seeder(options_.seed);
  images_.reserve(static_cast<std::size_t>(options_.num_images));
  for (int rank = 0; rank < options_.num_images; ++rank) {
    images_.push_back(std::make_unique<Image>(
        *this, rank, seeder.child(static_cast<std::uint64_t>(rank) + 1)));
  }
}

Runtime::~Runtime() = default;

std::shared_ptr<const obs::Capture> Runtime::take_capture() {
  if (observer_ == nullptr) {
    return nullptr;
  }
  return std::make_shared<const obs::Capture>(
      observer_->take(engine_->now(), engine_->backend()));
}

void Runtime::set_handler(net::HandlerId id, HandlerFn fn) {
  handlers_[id] = std::move(fn);
}

const HandlerFn& Runtime::handler(net::HandlerId id) const {
  auto it = handlers_.find(id);
  CAF2_ASSERT(it != handlers_.end(),
              "no handler installed for id " + std::to_string(id));
  return it->second;
}

void Runtime::run(const std::function<void()>& body) {
  CAF2_REQUIRE(!ran_, "Runtime::run() may only be called once");
  ran_ = true;

  auto gate = std::make_shared<ExitGate>();
  gate->expected = num_images();
  if (engine_->sharded()) {
    gate->released =
        std::make_unique<std::atomic<bool>[]>(static_cast<std::size_t>(num_images()));
  }

  engine_->run([this, &body, gate](int id) {
    Image* image = images_[static_cast<std::size_t>(id)].get();
    set_current(image, this);
    try {
      body();
      // Collective exit: wait until every image finished its body so that
      // in-flight messages (e.g. steals landing on an already-done image)
      // still find a live progress engine.
      if (!engine_->sharded()) {
        gate->arrived += 1;
        if (gate->arrived == gate->expected) {
          for (int rank = 0; rank < num_images(); ++rank) {
            if (rank != id) {
              engine_->unblock(rank);
            }
          }
        } else {
          image->wait_for(
              [&] { return gate->arrived == gate->expected; },
              "exit rendezvous",
              obs::ResourceId{obs::ResourceKind::kExitGate, -1, 0, 0});
        }
      } else {
        // Funnel the arrival to image 0's shard one lookahead hop ahead (the
        // cross-shard minimum); the completing arrival fans the release out,
        // again one hop ahead, through per-image flags that only the target
        // image's own shard ever writes. Every predicate read below is then
        // a function of virtual time alone.
        sim::Engine* eng = engine_.get();
        const double hop = eng->lookahead_us();
        const int n = num_images();
        eng->post_for(0, eng->now() + hop, [gate, eng, hop, n] {
          gate->collected += 1;
          if (gate->collected == gate->expected) {
            for (int rank = 0; rank < n; ++rank) {
              eng->post_for(rank, eng->now() + hop, [gate, eng, rank] {
                gate->released[rank].store(true, std::memory_order_release);
                eng->unblock(rank);
              });
            }
          }
        });
        image->wait_for(
            [&] {
              return gate->released[id].load(std::memory_order_acquire);
            },
            "exit rendezvous",
            obs::ResourceId{obs::ResourceKind::kExitGate, -1, 0, 0});
      }
      set_current(nullptr, nullptr);
    } catch (const UsageError& e) {
      // Tag escaping exceptions with the faulting image's rank. Usage errors
      // keep their type (callers assert on it); stall failures keep their
      // type *and* their structured postmortem; everything else is a runtime
      // fault.
      set_current(nullptr, nullptr);
      throw UsageError("image " + std::to_string(id) + ": " + e.what());
    } catch (const obs::StallError& e) {
      set_current(nullptr, nullptr);
      throw obs::StallError("image " + std::to_string(id) + ": " + e.what(),
                            e.postmortem());
    } catch (const std::exception& e) {
      set_current(nullptr, nullptr);
      throw FatalError("image " + std::to_string(id) + ": " + e.what());
    } catch (...) {
      set_current(nullptr, nullptr);
      throw FatalError("image " + std::to_string(id) +
                       ": unknown exception escaped the image body");
    }
  });
}

namespace {

/// Satisfier set of one wait-for-graph resource: which images could, by
/// making progress on their own, satisfy it. Conservative over-approximation
/// per resource kind; the caller subtracts finished images and the images
/// currently blocked on the resource itself.
std::vector<int> raw_satisfiers(const obs::ResourceId& resource,
                                const Image& any_image, int num_images) {
  std::vector<int> out;
  switch (resource.kind) {
    case obs::ResourceKind::kNone:
      break;
    case obs::ResourceKind::kOpCompletion:
      // Completion arrives from already-scheduled network events, never from
      // another image's forward progress.
      break;
    case obs::ResourceKind::kEvent:
    case obs::ResourceKind::kExitGate:
      for (int rank = 0; rank < num_images; ++rank) {
        out.push_back(rank);
      }
      break;
    case obs::ResourceKind::kSteal:
      if (resource.owner >= 0) {
        out.push_back(resource.owner);
      }
      break;
    case obs::ResourceKind::kFinish:
    case obs::ResourceKind::kCollective:
    case obs::ResourceKind::kSplit: {
      const auto team = any_image.find_team(static_cast<int>(resource.a));
      if (team != nullptr) {
        out = team->members;
      } else {
        for (int rank = 0; rank < num_images; ++rank) {
          out.push_back(rank);
        }
      }
      break;
    }
  }
  return out;
}

}  // namespace

void Runtime::fill_postmortem(obs::Postmortem& pm) {
  const std::size_t recent_cap = options_.obs.postmortem_recent_events;
  for (int rank = 0; rank < num_images(); ++rank) {
    Image& img = *images_[static_cast<std::size_t>(rank)];
    if (static_cast<std::size_t>(rank) >= pm.per_image.size()) {
      break;  // engine and runtime image counts always match; belt-and-braces
    }
    obs::PmImage& out = pm.per_image[static_cast<std::size_t>(rank)];
    out.mailbox_pending = network_->mailbox(rank).size();
    out.cofence_scopes = img.cofence_tracker().depth();
    out.outstanding_ops = img.cofence_tracker().current().outstanding();
    out.waits = img.wait_stack();
    std::vector<net::FinishKey> keys;
    keys.reserve(img.finish_states().size());
    for (const auto& [key, state] : img.finish_states()) {
      (void)state;
      keys.push_back(key);
    }
    std::sort(keys.begin(), keys.end(), [](const net::FinishKey& a,
                                           const net::FinishKey& b) {
      return a.team != b.team ? a.team < b.team : a.seq < b.seq;
    });
    for (const net::FinishKey& key : keys) {
      const FinishState& state = img.finish_states().at(key);
      const EpochCounters& even = state.even();
      const EpochCounters& odd = state.odd();
      obs::PmFinishScope scope;
      scope.team = key.team;
      scope.seq = key.seq;
      scope.terminated = state.terminated();
      scope.odd_epoch = state.present_odd();
      scope.rounds = state.rounds();
      scope.even_sent = even.sent;
      scope.even_delivered = even.delivered;
      scope.even_received = even.received;
      scope.even_completed = even.completed;
      scope.odd_sent = odd.sent;
      scope.odd_delivered = odd.delivered;
      scope.odd_received = odd.received;
      scope.odd_completed = odd.completed;
      out.finish.push_back(scope);
    }
    if (flight_recorder_ != nullptr) {
      out.recent = flight_recorder_->recent(rank, recent_cap);
      out.recorded_total = flight_recorder_->total(rank);
    }
  }
  network_->fill_postmortem(pm.net);

  // Wait-for graph: one edge per wait frame, one node per distinct resource.
  const bool engine_busy = pm.pending_calls > 0;
  std::vector<obs::ResourceId> resources;
  for (int rank = 0; rank < num_images(); ++rank) {
    for (const obs::WaitFrame& frame :
         images_[static_cast<std::size_t>(rank)]->wait_stack()) {
      if (frame.resource.kind == obs::ResourceKind::kNone) {
        continue;
      }
      pm.graph.edges.push_back(
          {rank, frame.resource, frame.reason, frame.since_us});
      if (std::find(resources.begin(), resources.end(), frame.resource) ==
          resources.end()) {
        resources.push_back(frame.resource);
      }
    }
  }
  for (const obs::ResourceId& resource : resources) {
    obs::WaitGraph::Satisfiers sat;
    sat.resource = resource;
    // A resource that already-scheduled engine events can satisfy is
    // "external": the run is still moving, so the resource must not close a
    // cycle. kSplit and kExitGate are pure image-side rendezvous; everything
    // else may be completed by an in-flight delivery, ack, or timer.
    sat.external = engine_busy &&
                   resource.kind != obs::ResourceKind::kSplit &&
                   resource.kind != obs::ResourceKind::kExitGate;
    std::vector<int> candidates =
        raw_satisfiers(resource, *images_[0], num_images());
    for (int rank : candidates) {
      if (rank < 0 || rank >= num_images()) {
        continue;
      }
      // A finished image makes no further progress; an image blocked on this
      // very resource cannot satisfy it either.
      if (static_cast<std::size_t>(rank) < pm.per_image.size() &&
          std::string_view(pm.per_image[static_cast<std::size_t>(rank)].state) ==
              "finished") {
        continue;
      }
      bool waits_on_it = false;
      for (const obs::WaitFrame& frame :
           images_[static_cast<std::size_t>(rank)]->wait_stack()) {
        if (frame.resource == resource) {
          waits_on_it = true;
          break;
        }
      }
      if (waits_on_it) {
        continue;
      }
      // Finish scopes: a member that provably passed the scope contributes
      // nothing more to its termination.
      if (resource.kind == obs::ResourceKind::kFinish &&
          images_[static_cast<std::size_t>(rank)]->finish_scope_passed(
              net::FinishKey{static_cast<int>(resource.a),
                             static_cast<std::uint32_t>(resource.b)})) {
        continue;
      }
      sat.images.push_back(rank);
    }
    pm.graph.resources.push_back(std::move(sat));
  }
  obs::find_cycles(pm.graph, num_images());
  pm.classification = obs::classify(pm.kind, !pm.graph.cycles.empty());

  if (observer_ != nullptr) {
    pm.blame = std::make_shared<const obs::BlameReport>(obs::analyze_blame(
        observer_->snapshot(engine_->now(), engine_->backend())));
  }
}

std::string Runtime::watchdog_report() {
  return obs::runtime_sections_text(
      engine_->snapshot_postmortem("watchdog report"));
}

obs::Postmortem Runtime::dump_postmortem() {
  return engine_->snapshot_postmortem("on-demand postmortem");
}

SplitOp& Runtime::split_op(int team_id, std::uint32_t seq, int expected) {
  // Caller holds split_mutex() (see runtime.hpp). References stay valid
  // across unlocks: std::map nodes are stable until gc_split_op erases them.
  SplitOp& op = splits_[{team_id, seq}];
  if (op.expected == 0) {
    op.expected = expected;
  }
  CAF2_ASSERT(op.expected == expected, "team_split rendezvous mismatch");
  return op;
}

void Runtime::gc_split_op(int team_id, std::uint32_t seq) {
  int& done = split_done_count_[{team_id, seq}];
  done += 1;
  auto it = splits_.find({team_id, seq});
  CAF2_ASSERT(it != splits_.end(), "gc of unknown split op");
  if (done == it->second.expected) {
    splits_.erase(it);
    split_done_count_.erase({team_id, seq});
  }
}

int Runtime::allocate_team_ids(int count) {
  const int base = next_team_id_;
  next_team_id_ += count;
  return base;
}

}  // namespace caf2::rt
