#include "runtime/runtime.hpp"

#include <algorithm>
#include <sstream>

#include "sim/participant.hpp"

namespace caf2::rt {

namespace {
// The current image/runtime live in engine context slots, not raw
// thread_locals: with the fiber backend many images share one OS thread and
// the engine swaps slot contents on every fiber switch (sim/engine.hpp,
// ExecContext). Slot 0: Image*, slot 1: Runtime*.
constexpr int kImageSlot = 0;
constexpr int kRuntimeSlot = 1;

Image* current_image_slot() {
  return static_cast<Image*>(sim::Engine::context_slot(kImageSlot));
}

Runtime* current_runtime_slot() {
  return static_cast<Runtime*>(sim::Engine::context_slot(kRuntimeSlot));
}

void set_current(Image* image, Runtime* runtime) {
  sim::Engine::context_slot(kImageSlot) = image;
  sim::Engine::context_slot(kRuntimeSlot) = runtime;
}

/// Exit rendezvous: images leave the SPMD body collectively so that no image
/// tears down while teammates still expect its participation. Implemented as
/// a shared counter (a runtime service, not a modeled collective).
struct ExitGate {
  int expected = 0;
  int arrived = 0;
};
}  // namespace

Image& Image::current() {
  Image* image = current_image_slot();
  CAF2_REQUIRE(image != nullptr,
               "no current image: this call must run on an image context");
  return *image;
}

bool Image::has_current() { return current_image_slot() != nullptr; }

Runtime& Runtime::current() {
  Runtime* runtime = current_runtime_slot();
  CAF2_REQUIRE(runtime != nullptr,
               "no current runtime: this call must run on an image context");
  return *runtime;
}

Runtime::Runtime(RuntimeOptions options) : options_(std::move(options)) {
  CAF2_REQUIRE(options_.num_images > 0, "need at least one image");
  sim::EngineOptions engine_options;
  engine_options.record_trace = options_.record_trace;
  engine_options.max_events = options_.max_events;
  engine_options.label = options_.label;
  engine_options.enable_fastpath = options_.sim_fastpath;
  engine_options.backend = options_.sim_backend;
  engine_options.watchdog_quiet_us = options_.watchdog_quiet_us;
  engine_ = std::make_unique<sim::Engine>(options_.num_images,
                                          std::move(engine_options));
  network_ = std::make_unique<net::Network>(*engine_, options_.net,
                                            SplitMix64(options_.seed).child(0));
  if (options_.obs.enabled) {
    observer_ = std::make_unique<obs::Recorder>(options_.num_images,
                                                options_.obs);
    engine_->set_observer(observer_.get());
    network_->set_observer(observer_.get());
  }
  engine_->set_diagnostics([this] { return watchdog_report(); });
  SplitMix64 seeder(options_.seed);
  images_.reserve(static_cast<std::size_t>(options_.num_images));
  for (int rank = 0; rank < options_.num_images; ++rank) {
    images_.push_back(std::make_unique<Image>(
        *this, rank, seeder.child(static_cast<std::uint64_t>(rank) + 1)));
  }
}

Runtime::~Runtime() = default;

std::shared_ptr<const obs::Capture> Runtime::take_capture() {
  if (observer_ == nullptr) {
    return nullptr;
  }
  return std::make_shared<const obs::Capture>(
      observer_->take(engine_->now(), engine_->backend()));
}

void Runtime::set_handler(net::HandlerId id, HandlerFn fn) {
  handlers_[id] = std::move(fn);
}

const HandlerFn& Runtime::handler(net::HandlerId id) const {
  auto it = handlers_.find(id);
  CAF2_ASSERT(it != handlers_.end(),
              "no handler installed for id " + std::to_string(id));
  return it->second;
}

void Runtime::run(const std::function<void()>& body) {
  CAF2_REQUIRE(!ran_, "Runtime::run() may only be called once");
  ran_ = true;

  auto gate = std::make_shared<ExitGate>();
  gate->expected = num_images();

  engine_->run([this, &body, gate](int id) {
    Image* image = images_[static_cast<std::size_t>(id)].get();
    set_current(image, this);
    try {
      body();
      // Collective exit: wait until every image finished its body so that
      // in-flight messages (e.g. steals landing on an already-done image)
      // still find a live progress engine.
      gate->arrived += 1;
      if (gate->arrived == gate->expected) {
        for (int rank = 0; rank < num_images(); ++rank) {
          if (rank != id) {
            engine_->unblock(rank);
          }
        }
      } else {
        image->wait_for([&] { return gate->arrived == gate->expected; },
                        "exit rendezvous");
      }
      set_current(nullptr, nullptr);
    } catch (const UsageError& e) {
      // Tag escaping exceptions with the faulting image's rank. Usage errors
      // keep their type (callers assert on it); everything else is a runtime
      // fault.
      set_current(nullptr, nullptr);
      throw UsageError("image " + std::to_string(id) + ": " + e.what());
    } catch (const std::exception& e) {
      set_current(nullptr, nullptr);
      throw FatalError("image " + std::to_string(id) + ": " + e.what());
    } catch (...) {
      set_current(nullptr, nullptr);
      throw FatalError("image " + std::to_string(id) +
                       ": unknown exception escaped the image body");
    }
  });
}

std::string Runtime::watchdog_report() {
  std::ostringstream os;
  for (int rank = 0; rank < num_images(); ++rank) {
    Image& img = *images_[static_cast<std::size_t>(rank)];
    os << "image " << rank << ": mailbox pending="
       << network_->mailbox(rank).size()
       << " cofence scopes=" << img.cofence_tracker().depth()
       << " outstanding implicit ops="
       << img.cofence_tracker().current().outstanding() << "\n";
    for (const auto& [key, state] : img.finish_states()) {
      const EpochCounters& even = state.even();
      const EpochCounters& odd = state.odd();
      os << "  finish (team " << key.team << ", seq " << key.seq << ")"
         << (state.terminated() ? " terminated" : "")
         << (state.present_odd() ? " odd-epoch" : " even-epoch")
         << " rounds=" << state.rounds() << " even{sent=" << even.sent
         << ", delivered=" << even.delivered << ", received=" << even.received
         << ", completed=" << even.completed << "} odd{sent=" << odd.sent
         << ", delivered=" << odd.delivered << ", received=" << odd.received
         << ", completed=" << odd.completed << "}\n";
    }
  }
  os << network_->describe_state();
  return os.str();
}

SplitOp& Runtime::split_op(int team_id, std::uint32_t seq, int expected) {
  SplitOp& op = splits_[{team_id, seq}];
  if (op.expected == 0) {
    op.expected = expected;
  }
  CAF2_ASSERT(op.expected == expected, "team_split rendezvous mismatch");
  return op;
}

void Runtime::gc_split_op(int team_id, std::uint32_t seq) {
  int& done = split_done_count_[{team_id, seq}];
  done += 1;
  auto it = splits_.find({team_id, seq});
  CAF2_ASSERT(it != splits_.end(), "gc of unknown split op");
  if (done == it->second.expected) {
    splits_.erase(it);
    split_done_count_.erase({team_id, seq});
  }
}

int Runtime::allocate_team_ids(int count) {
  const int base = next_team_id_;
  next_team_id_ += count;
  return base;
}

}  // namespace caf2::rt
