#pragma once

/// \file ids.hpp
/// Well-known active-message handler ids and small key types shared between
/// the runtime and the operation layers.

#include <cstdint>
#include <functional>

#include "net/message.hpp"

namespace caf2::rt {

/// Handler table slots. The ops/core layers install the implementations at
/// runtime startup (Runtime::set_handler), keeping the layering acyclic.
enum Handler : net::HandlerId {
  kHandlerEventNotify = 1,   ///< remote event_notify
  kHandlerSpawn = 2,         ///< function shipping
  kHandlerCopyPut = 3,       ///< async copy payload (put)
  kHandlerCopyGetReq = 4,    ///< async copy get request
  kHandlerCopyGetResp = 5,   ///< async copy get response payload
  kHandlerCopyForward = 6,   ///< third-party copy control
  kHandlerCopyArmPre = 7,    ///< arm a remote predicate event
  kHandlerCopyFire = 8,      ///< remote predicate fired; start the copy
  kHandlerCollective = 9,    ///< asynchronous collective stage
  kHandlerFinishReduce = 10, ///< finish termination-detection reduction
  kHandlerDetector = 11,     ///< baseline termination detectors
  kHandlerUser = 64,         ///< first id available to applications/tests
};

/// Identifies one collective operation instance on a team. Every image
/// increments the per-team collective sequence number at each collective
/// call; CAF 2.0's SPMD model guarantees members agree on the order.
struct CollKey {
  std::int32_t team = -1;
  std::uint32_t seq = 0;

  bool operator==(const CollKey&) const = default;
  bool operator<(const CollKey& other) const {
    if (team != other.team) {
      return team < other.team;
    }
    return seq < other.seq;
  }
};

}  // namespace caf2::rt

template <>
struct std::hash<caf2::rt::CollKey> {
  std::size_t operator()(const caf2::rt::CollKey& key) const noexcept {
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(key.team))
         << 32) |
        key.seq);
  }
};

template <>
struct std::hash<caf2::net::FinishKey> {
  std::size_t operator()(const caf2::net::FinishKey& key) const noexcept {
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(key.team))
         << 32) |
        key.seq);
  }
};
