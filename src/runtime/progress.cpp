#include "runtime/image.hpp"
#include "runtime/runtime.hpp"

/// \file progress.cpp
/// The progress engine: executes delivered active messages on the owning
/// image's thread. Handlers run inline and may block (a cofence inside a
/// shipped function re-enters progress, GASNet-style), so progress is
/// reentrant; stack discipline applies — an outer wait cannot resume until a
/// nested handler returns.

namespace caf2::rt {

void Image::execute(net::Message&& message) {
  const net::MessageHeader header = message.header;  // copy: payload moves on
  const HandlerFn& handler = runtime_.handler(header.handler);

  obs::FlightRecorder* const fr = runtime_.flight_recorder();
  if (fr != nullptr) {
    fr->record(rank_, runtime_.engine().now(), obs::FrKind::kHandler,
               header.source, header.handler, 0);
  }

  obs::Recorder* const rec = runtime_.observer();
  const double obs_begin = rec != nullptr ? runtime_.engine().now() : 0.0;
  const auto record_handler = [&] {
    if (rec == nullptr) {
      return;
    }
    const double now = runtime_.engine().now();
    rec->op_span(rank_, obs::SpanKind::kHandler, obs_begin, now,
                 header.handler, 0, header.source);
    rec->add(rank_, obs::Counter::kHandlersRun);
    rec->observe(rank_, obs::Hist::kHandlerTime, now - obs_begin);
  };

  const double handler_cost = runtime_.options().net.handler_cost_us;
  if (handler_cost > 0.0) {
    runtime_.engine().advance(handler_cost);
  }

  if (!header.tracked) {
    handler(*this, std::move(message));
    record_handler();
    return;
  }

  // Tracked message: update the four-counter epoch accounting around the
  // execution (paper Fig. 7 message_handler). Reception from an odd-epoch
  // sender moves this image into its odd epoch; the message's own counts
  // always use the *message's* parity so reduction waves see consistent
  // cuts.
  {
    FinishState& state = finish_state(header.finish);
    const bool was_odd = state.present_odd();
    state.on_receive_parity(header.from_odd_epoch);
    state.count_received(header.from_odd_epoch);
    if (fr != nullptr && !was_odd && state.present_odd()) {
      fr->record(rank_, runtime_.engine().now(), obs::FrKind::kEpochOdd,
                 header.source,
                 static_cast<std::uint64_t>(header.finish.team),
                 header.finish.seq);
    }
  }

  // The handler executes in the dynamic extent of the initiating finish:
  // operations it initiates (transitively shipped functions, implicit
  // copies) are charged to the same scope.
  push_finish(header.finish);
  try {
    handler(*this, std::move(message));
  } catch (...) {
    pop_finish();
    throw;
  }
  pop_finish();
  // Re-look-up: the handler may have created finish states (early-arriving
  // messages for other scopes), which can rehash the map.
  finish_state(header.finish).count_completed(header.from_odd_epoch);
  record_handler();
  // Completion may satisfy a teammate-visible predicate only through
  // counters on this image; wake ourselves so an enclosing quiescence wait
  // re-evaluates.
  runtime_.engine().unblock(rank_);
}

void Image::progress() {
  net::Mailbox& mail = runtime_.network().mailbox(rank_);
  while (auto message = mail.try_pop()) {
    execute(std::move(*message));
  }
}

void Image::wait_for(const std::function<bool()>& pred, const char* reason) {
  wait_for(pred, reason, obs::ResourceId{});
}

void Image::wait_for(const std::function<bool()>& pred, const char* reason,
                     const obs::ResourceId& resource) {
  net::Mailbox& mail = runtime_.network().mailbox(rank_);
  // The frame stays on the wait stack across nested handler execution, so a
  // postmortem taken while a nested wait is parked still shows the outer
  // resource. If the engine fails, the unwinding pops it (and skips the
  // wait-end record — the wait never completed).
  WaitFrameScope frame(*this, resource, reason);
  obs::FlightRecorder* const fr = runtime_.flight_recorder();
  bool blocked = false;
  for (;;) {
    if (pred()) {
      break;
    }
    progress();
    if (pred()) {
      break;
    }
    if (!mail.empty()) {
      continue;  // a nested handler left mail behind; keep draining
    }
    if (fr != nullptr && !blocked) {
      blocked = true;
      fr->record(rank_, runtime_.engine().now(), obs::FrKind::kWaitBegin,
                 resource.owner, resource.a, resource.b, reason);
    }
    runtime_.engine().block(reason);
  }
  if (fr != nullptr && blocked) {
    fr->record(rank_, runtime_.engine().now(), obs::FrKind::kWaitEnd,
               resource.owner, resource.a, resource.b, reason);
  }
}

void Image::push_wait_frame(const obs::ResourceId& resource,
                            const char* reason) {
  wait_stack_.push_back(
      obs::WaitFrame{resource, reason, runtime_.engine().now()});
}

void Image::pop_wait_frame() { wait_stack_.pop_back(); }

}  // namespace caf2::rt
