#include "runtime/cofence_tracker.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace caf2::rt {

void CofenceScope::prune() {
  std::erase_if(ops_, [](const ImplicitOpPtr& op) {
    return op->data_complete && op->op_complete;
  });
}

bool CofenceScope::data_complete_for(PassClass down) {
  prune();
  // An op that both reads and writes local data must wait unless *both*
  // classes are allowed to pass: letting (say) reads pass has no practical
  // effect if the op's write must still be ordered (paper §III-B).
  return std::all_of(ops_.begin(), ops_.end(), [&](const ImplicitOpPtr& op) {
    const bool read_held = op->reads_local && !allows_read(down);
    const bool write_held = op->writes_local && !allows_write(down);
    if (!read_held && !write_held) {
      return true;  // allowed to pass the fence
    }
    return op->data_complete;
  });
}

bool CofenceScope::op_complete_all() {
  prune();
  return std::all_of(ops_.begin(), ops_.end(),
                     [](const ImplicitOpPtr& op) { return op->op_complete; });
}

void CofenceTracker::pop_scope() {
  CAF2_ASSERT(stack_.size() > 1, "cannot pop the root cofence scope");
  stack_.pop_back();
}

}  // namespace caf2::rt
