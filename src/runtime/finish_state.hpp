#pragma once

/// \file finish_state.hpp
/// Per-image accounting for one finish scope — the data structure behind the
/// paper's termination-detection algorithm (paper Fig. 7).
///
/// Each image keeps, per finish scope, two sets of four counters (an *even*
/// and an *odd* epoch):
///   sent       messages this image sent, charged to this finish;
///   delivered  of those, how many have been acknowledged as delivered;
///   received   tracked messages that arrived at this image;
///   completed  of those, how many finished executing locally.
///
/// The image is in the even epoch initially; it proceeds into the odd epoch
/// when it enters a detection allreduce or when it receives a message whose
/// sender was in an odd epoch. It proceeds back into an even epoch when it
/// exits the allreduce, at which point the odd counters fold into the even
/// ones. Counter updates for a message always use the *message's* parity so
/// a reduction wave sums a consistent cut.

#include <cstdint>
#include <vector>

#include "net/message.hpp"

namespace caf2::rt {

struct EpochCounters {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t received = 0;
  std::uint64_t completed = 0;

  void fold_from(EpochCounters& other) {
    sent += other.sent;
    delivered += other.delivered;
    received += other.received;
    completed += other.completed;
    other = EpochCounters{};
  }
};

class FinishState {
 public:
  /// --- counter updates (parity = the message's epoch) ----------------------
  void count_sent(bool odd) { epoch(odd).sent += 1; }
  void count_delivered(bool odd) { epoch(odd).delivered += 1; }
  void count_received(bool odd) { epoch(odd).received += 1; }
  void count_completed(bool odd) { epoch(odd).completed += 1; }

  /// Receiving a message from an odd-epoch sender moves this image into its
  /// odd epoch (paper Fig. 7 line 32), so its subsequent sends carry odd
  /// parity and are excluded from the in-flight reduction wave.
  void on_receive_parity(bool odd) {
    if (odd) {
      present_odd_ = true;
    }
  }

  /// Parity that new sends from this image must carry.
  bool present_odd() const { return present_odd_; }

  /// Quiescence precondition (paper Fig. 7 line 4): every message this image
  /// sent in the even epoch has landed, and every message it received in the
  /// even epoch has completed execution. Waiting for this before reducing is
  /// what bounds detection to L+1 rounds (paper Theorem 1).
  bool even_quiesced() const {
    return even_.sent == even_.delivered && even_.received == even_.completed;
  }

  /// Enter a detection allreduce: proceed into the odd epoch.
  void enter_allreduce() { present_odd_ = true; }

  /// The value this image contributes to the detection sum.
  std::int64_t even_deficit() const {
    return static_cast<std::int64_t>(even_.sent) -
           static_cast<std::int64_t>(even_.completed);
  }

  /// Exit a detection allreduce: fold the odd counters into the even epoch
  /// and proceed into (the next) even epoch.
  void exit_allreduce() {
    even_.fold_from(odd_);
    present_odd_ = false;
    ++rounds_;
  }

  const EpochCounters& even() const { return even_; }
  const EpochCounters& odd() const { return odd_; }

  /// Detection allreduce rounds performed so far (reported by the Fig. 18
  /// benchmark).
  int rounds() const { return rounds_; }

  /// True once detection declared global termination for this scope.
  bool terminated() const { return terminated_; }
  void mark_terminated() { terminated_ = true; }

  /// The image has entered the end-finish statement (used to assert against
  /// counting into a scope that already completed).
  bool entered() const { return entered_; }
  void mark_entered() { entered_ = true; }

  /// --- epoch-free totals (used by the baseline detectors of §V) -----------

  std::uint64_t sent_total() const { return even_.sent + odd_.sent; }
  std::uint64_t delivered_total() const {
    return even_.delivered + odd_.delivered;
  }
  std::uint64_t received_total() const {
    return even_.received + odd_.received;
  }
  std::uint64_t completed_total() const {
    return even_.completed + odd_.completed;
  }
  bool quiesced_totals() const {
    return sent_total() == delivered_total() &&
           received_total() == completed_total();
  }

  /// Per-destination send counts (world ranks), maintained for the X10-style
  /// centralized vector-counting detector.
  void count_sent_dest(int dest) {
    if (sent_to_.size() <= static_cast<std::size_t>(dest)) {
      sent_to_.resize(static_cast<std::size_t>(dest) + 1, 0);
    }
    sent_to_[static_cast<std::size_t>(dest)] += 1;
  }
  const std::vector<std::int64_t>& sent_to() const { return sent_to_; }

 private:
  EpochCounters& epoch(bool odd) { return odd ? odd_ : even_; }

  EpochCounters even_{};
  EpochCounters odd_{};
  std::vector<std::int64_t> sent_to_;
  bool present_odd_ = false;
  bool entered_ = false;
  bool terminated_ = false;
  int rounds_ = 0;
};

}  // namespace caf2::rt
