#pragma once

/// \file internal.hpp
/// Runtime-internal entry points shared between the runtime library and the
/// operation layers (ops, core). Not part of the public API.

#include "runtime/event.hpp"
#include "runtime/image.hpp"
#include "runtime/runtime.hpp"

namespace caf2::rt {

/// Route a notification to an event without release semantics. Safe from
/// engine-callback context; models network latency when the event is remote
/// to \p from_rank.
void post_event_raw(Runtime& runtime, int from_rank, const RemoteEvent& event);

/// Install the runtime's own handlers (remote event notification).
void install_event_handlers(Runtime& runtime);

}  // namespace caf2::rt
