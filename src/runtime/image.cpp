#include "runtime/image.hpp"

#include "runtime/runtime.hpp"

namespace caf2::rt {

Image::Image(Runtime& runtime, int rank, std::uint64_t seed)
    : runtime_(runtime), rank_(rank), rng_(seed) {
  // Every image starts as a member of team_world (id 0).
  auto world = std::make_shared<TeamData>();
  world->id = 0;
  world->my_rank = rank;
  world->members.resize(
      static_cast<std::size_t>(runtime.options().num_images));
  for (int i = 0; i < runtime.options().num_images; ++i) {
    world->members[static_cast<std::size_t>(i)] = i;
  }
  teams_.emplace(0, std::move(world));
}

Image::~Image() = default;

int Image::num_images() const { return runtime_.num_images(); }

/// --- finish accounting ------------------------------------------------------

net::FinishKey Image::current_finish() const {
  return finish_stack_.empty() ? net::FinishKey{} : finish_stack_.back();
}

void Image::push_finish(const net::FinishKey& key) {
  finish_stack_.push_back(key);
}

void Image::pop_finish() {
  CAF2_ASSERT(!finish_stack_.empty(), "pop_finish with empty stack");
  finish_stack_.pop_back();
}

std::uint32_t Image::next_finish_seq(int team_id) {
  return finish_seqs_[team_id]++;
}

FinishState& Image::finish_state(const net::FinishKey& key) {
  CAF2_ASSERT(key.valid(), "finish_state() with invalid key");
  return finish_states_[key];
}

bool Image::has_finish_state(const net::FinishKey& key) const {
  return finish_states_.contains(key);
}

void Image::erase_finish_state(const net::FinishKey& key) {
  finish_states_.erase(key);
}

bool Image::finish_scope_passed(const net::FinishKey& key) const {
  const auto state = finish_states_.find(key);
  if (state != finish_states_.end()) {
    return state->second.terminated();
  }
  // No live state: passed iff this image already handed out that sequence
  // number (next_finish_seq post-increments, so "entered seq s" leaves the
  // counter at s + 1). A member that never reached the scope has not passed
  // it — it could still enter and contribute.
  const auto seq = finish_seqs_.find(key.team);
  return seq != finish_seqs_.end() && seq->second > key.seq;
}

/// --- message send helpers ----------------------------------------------------

net::MessageHeader Image::make_header(int dest_world, net::HandlerId handler,
                                      Tracking tracking) {
  net::MessageHeader header;
  header.source = rank_;
  header.dest = dest_world;
  header.handler = handler;
  if (tracking == Tracking::kTracked) {
    const net::FinishKey key = current_finish();
    if (key.valid()) {
      header.finish = key;
      header.tracked = true;
      header.from_odd_epoch = finish_state(key).present_odd();
    }
  }
  return header;
}

void Image::send_message(net::Message message, net::SendCallbacks callbacks) {
  const net::MessageHeader& header = message.header;
  if (header.tracked) {
    finish_state(header.finish).count_sent(header.from_odd_epoch);
    finish_state(header.finish).count_sent_dest(header.dest);
    // Count `delivered` when the ack returns; chain any caller callback.
    Image* self = this;
    const net::FinishKey key = header.finish;
    const bool odd = header.from_odd_epoch;
    auto chained = std::move(callbacks.on_acked);
    callbacks.on_acked = [self, key, odd, chained = std::move(chained)] {
      self->finish_state(key).count_delivered(odd);
      self->runtime_.engine().unblock(self->rank_);
      if (chained) {
        chained();
      }
    };
  }
  runtime_.network().send(std::move(message), std::move(callbacks));
}

void Image::send_staged_message(
    net::MessageHeader header, std::size_t size_hint,
    std::function<std::vector<std::uint8_t>()> read,
    net::SendCallbacks callbacks) {
  if (header.tracked) {
    finish_state(header.finish).count_sent(header.from_odd_epoch);
    finish_state(header.finish).count_sent_dest(header.dest);
    Image* self = this;
    const net::FinishKey key = header.finish;
    const bool odd = header.from_odd_epoch;
    auto chained = std::move(callbacks.on_acked);
    callbacks.on_acked = [self, key, odd, chained = std::move(chained)] {
      self->finish_state(key).count_delivered(odd);
      self->runtime_.engine().unblock(self->rank_);
      if (chained) {
        chained();
      }
    };
  }
  runtime_.network().send_staged(header, size_hint, std::move(read),
                                 std::move(callbacks));
}

/// --- cofence ------------------------------------------------------------------

ImplicitOpPtr Image::register_implicit(bool reads_local, bool writes_local,
                                       const char* what) {
  auto op = std::make_shared<ImplicitOp>();
  op->id = next_op_id();
  op->reads_local = reads_local;
  op->writes_local = writes_local;
  op->what = what;
  cofence_.current().add(op);
  return op;
}

/// --- events --------------------------------------------------------------------

std::uint64_t Image::register_event(Event* event) {
  const std::uint64_t id = ++event_id_counter_;
  events_.emplace(id, event);
  return id;
}

void Image::register_event_alias(std::uint64_t alias, Event* event) {
  CAF2_ASSERT(!events_.contains(alias), "event alias already registered");
  events_.emplace(alias, event);
}

void Image::deregister_event(std::uint64_t id) { events_.erase(id); }

Event* Image::find_event(std::uint64_t id) {
  auto it = events_.find(id);
  return it == events_.end() ? nullptr : it->second;
}

/// --- coarrays -------------------------------------------------------------------

std::uint64_t Image::next_coarray_seq(int team_id) {
  return coarray_seqs_[team_id]++;
}

void Image::register_block(std::uint64_t id, BlockInfo info) {
  CAF2_ASSERT(!blocks_.contains(id), "coarray id already registered");
  blocks_.emplace(id, info);
}

void Image::deregister_block(std::uint64_t id) { blocks_.erase(id); }

BlockInfo Image::lookup_block(std::uint64_t id) const {
  auto it = blocks_.find(id);
  CAF2_REQUIRE(it != blocks_.end(),
               "coarray block not found on this image (id " +
                   std::to_string(id) + ")");
  return it->second;
}

/// --- teams -----------------------------------------------------------------------

Team Image::world_team() const { return Team(teams_.at(0)); }

void Image::add_team(std::shared_ptr<const TeamData> data) {
  CAF2_ASSERT(data != nullptr, "add_team(nullptr)");
  teams_.emplace(data->id, std::move(data));
}

std::shared_ptr<const TeamData> Image::find_team(int id) const {
  auto it = teams_.find(id);
  return it == teams_.end() ? nullptr : it->second;
}

std::uint32_t Image::next_split_seq(int team_id) {
  return split_seqs_[team_id]++;
}

std::uint64_t Image::next_coevent_slot(int team_id) {
  return coevent_slots_[team_id]++;
}

/// --- collectives -------------------------------------------------------------------

PendingColl& Image::coll_state(const CollKey& key) { return colls_[key]; }

void Image::erase_coll_state(const CollKey& key) { colls_.erase(key); }

std::uint32_t Image::next_coll_seq(int team_id) {
  return coll_seqs_[team_id]++;
}

/// --- deferred plans -----------------------------------------------------------------

std::uint64_t Image::stash_plan(std::function<void()> plan) {
  const std::uint64_t id = next_op_id();
  plans_.emplace(id, std::move(plan));
  return id;
}

void Image::fire_plan(std::uint64_t id) {
  auto it = plans_.find(id);
  CAF2_ASSERT(it != plans_.end(), "fire_plan: unknown plan id");
  auto plan = std::move(it->second);
  plans_.erase(it);
  plan();
}

std::uint64_t Image::stash_get(
    std::function<void(std::span<const std::uint8_t>)> sink) {
  const std::uint64_t id = next_op_id();
  get_sinks_.emplace(id, std::move(sink));
  return id;
}

void Image::complete_get(std::uint64_t id,
                         std::span<const std::uint8_t> data) {
  auto it = get_sinks_.find(id);
  CAF2_ASSERT(it != get_sinks_.end(), "complete_get: unknown sink id");
  auto sink = std::move(it->second);
  get_sinks_.erase(it);
  sink(data);
}

}  // namespace caf2::rt
