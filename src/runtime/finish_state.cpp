#include "runtime/finish_state.hpp"

// FinishState is fully inline; this translation unit anchors the header in
// the runtime library.
