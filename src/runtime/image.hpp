#pragma once

/// \file image.hpp
/// Per-process-image runtime state and the progress engine.
///
/// An Image is the runtime context of one CAF process image: its finish
/// accounting, cofence scopes, event/coarray/team registries, pending
/// collective states, and the progress engine that executes incoming active
/// messages. Exactly one Image exists per simulation participant; the
/// executing image is reachable via Image::current() on participant threads.
///
/// Threading discipline: the simulation engine runs at most one context at a
/// time (a participant *or* an engine callback), so Image state needs no
/// locking. Engine callbacks may mutate any image's state through explicit
/// references but must not block; only the image's own thread may call the
/// blocking entry points (wait_for, advance).

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "net/network.hpp"
#include "obs/postmortem.hpp"
#include "runtime/coarray.hpp"
#include "runtime/cofence_tracker.hpp"
#include "runtime/event.hpp"
#include "runtime/finish_state.hpp"
#include "runtime/ids.hpp"
#include "runtime/team.hpp"
#include "support/rng.hpp"

namespace caf2::rt {

class Runtime;

/// Marker for whether a message participates in finish accounting.
enum class Tracking : std::uint8_t { kUntracked, kTracked };

/// A buffered or dispatched collective stage message.
struct CollStageMsg {
  int stage = 0;
  int from_team_rank = 0;
  std::vector<std::uint8_t> data;
};

/// Base class of per-collective state machines (implemented in ops).
class CollBase {
 public:
  virtual ~CollBase() = default;

  /// Deliver one stage message; \p image is the image this state lives on.
  virtual void on_stage(Image& image, CollStageMsg&& msg) = 0;

  /// True once the operation is finished on this image and the state can be
  /// discarded.
  virtual bool finished() const = 0;
};

/// Buffered messages + (once locally started) the live state machine for a
/// collective instance.
struct PendingColl {
  std::unique_ptr<CollBase> op;
  std::vector<CollStageMsg> buffered;
};

class Image {
 public:
  Image(Runtime& runtime, int rank, std::uint64_t seed);
  ~Image();

  Image(const Image&) = delete;
  Image& operator=(const Image&) = delete;

  /// The image executing on the calling participant thread.
  static Image& current();
  static bool has_current();

  int rank() const { return rank_; }
  int num_images() const;
  Runtime& runtime() { return runtime_; }
  Xoshiro256ss& rng() { return rng_; }

  /// --- progress engine -----------------------------------------------------

  /// Execute all currently-delivered messages (handlers run inline and may
  /// themselves block, re-entering progress — GASNet-style).
  void progress();

  /// Block until \p pred holds, executing incoming messages while waiting.
  /// \p reason appears in deadlock diagnostics.
  void wait_for(const std::function<bool()>& pred, const char* reason);

  /// Like wait_for(), but names the resource being waited on: the wait
  /// appears on this image's wait stack (feeding the postmortem wait-for
  /// graph) for its whole duration, and the flight recorder logs
  /// wait-begin/wait-end around any actual blocking.
  void wait_for(const std::function<bool()>& pred, const char* reason,
                const obs::ResourceId& resource);

  /// --- wait stack (postmortem wait-for graph) ------------------------------

  /// Waits this image is currently inside, outermost first. Read by the
  /// postmortem collector while this image is parked; safe, because the
  /// engine runs one context at a time and collection happens under the
  /// engine gate.
  const std::vector<obs::WaitFrame>& wait_stack() const { return wait_stack_; }

  /// Push/pop a frame without blocking through wait_for() — used by
  /// constructs whose actual blocking happens in nested waits (e.g. a finish
  /// scope's termination detection blocks inside allreduce event waits, but
  /// the postmortem should name the finish scope too).
  void push_wait_frame(const obs::ResourceId& resource, const char* reason);
  void pop_wait_frame();

  /// True when this image has provably passed finish scope \p key: either a
  /// terminated state still exists, or the scope's sequence number was
  /// handed out and no live state remains. Used by the postmortem collector
  /// to exclude done members from a finish resource's satisfier set.
  bool finish_scope_passed(const net::FinishKey& key) const;

  /// --- finish accounting ---------------------------------------------------

  /// The innermost active finish scope (invalid key if none).
  net::FinishKey current_finish() const;
  void push_finish(const net::FinishKey& key);
  void pop_finish();
  std::uint32_t next_finish_seq(int team_id);

  /// Per-scope state, created on demand (messages may arrive before this
  /// image enters the matching finish block).
  FinishState& finish_state(const net::FinishKey& key);

  /// Read-only view of every live finish-scope state (watchdog diagnostics).
  const std::unordered_map<net::FinishKey, FinishState>& finish_states() const {
    return finish_states_;
  }
  bool has_finish_state(const net::FinishKey& key) const;
  void erase_finish_state(const net::FinishKey& key);

  /// --- per-image extension state -------------------------------------------

  /// Type-erased per-image storage for higher layers (e.g. the centralized
  /// termination detector's owner/member bookkeeping, the last finish
  /// report). Layers used to keep such state in `thread_local` variables,
  /// which silently assumed one OS thread per image — false under the fiber
  /// execution backend, where every image of an engine shares the scheduler
  /// thread. \p tag is an arbitrary unique address (take the address of a
  /// file-local object); the slot is created empty on first use and lives as
  /// long as the image.
  std::shared_ptr<void>& scratch(const void* tag) { return scratch_[tag]; }

  /// --- message send helpers ------------------------------------------------

  /// Build a header for a message from this image. When \p tracking is
  /// kTracked and a finish scope is active, the header carries the scope key
  /// and this image's present epoch parity; otherwise the message is
  /// untracked.
  net::MessageHeader make_header(int dest_world, net::HandlerId handler,
                                 Tracking tracking);

  /// Send with finish accounting: counts `sent` now and `delivered` when the
  /// delivery acknowledgement returns, then invokes \p callbacks.
  void send_message(net::Message message, net::SendCallbacks callbacks = {});

  /// Staged variant (source buffer read at injection time); see
  /// net::Network::send_staged.
  void send_staged_message(net::MessageHeader header, std::size_t size_hint,
                           std::function<std::vector<std::uint8_t>()> read,
                           net::SendCallbacks callbacks = {});

  /// --- cofence -------------------------------------------------------------

  CofenceTracker& cofence_tracker() { return cofence_; }

  /// Register an implicitly-synchronized operation in the current scope.
  ImplicitOpPtr register_implicit(bool reads_local, bool writes_local,
                                  const char* what);

  /// --- events --------------------------------------------------------------

  std::uint64_t register_event(Event* event);
  void register_event_alias(std::uint64_t alias, Event* event);
  void deregister_event(std::uint64_t id);
  Event* find_event(std::uint64_t id);

  /// --- coarrays ------------------------------------------------------------

  std::uint64_t next_coarray_seq(int team_id);
  void register_block(std::uint64_t id, BlockInfo info);
  void deregister_block(std::uint64_t id);
  BlockInfo lookup_block(std::uint64_t id) const;

  /// --- teams ---------------------------------------------------------------

  Team world_team() const;
  void add_team(std::shared_ptr<const TeamData> data);
  std::shared_ptr<const TeamData> find_team(int id) const;
  std::uint32_t next_split_seq(int team_id);
  std::uint64_t next_coevent_slot(int team_id);

  /// --- collectives ---------------------------------------------------------

  PendingColl& coll_state(const CollKey& key);
  void erase_coll_state(const CollKey& key);
  std::uint32_t next_coll_seq(int team_id);

  /// --- deferred copy plans (predicated copies) -----------------------------

  std::uint64_t stash_plan(std::function<void()> plan);
  /// Run and discard plan \p id (no-op with a diagnostic failure if absent).
  void fire_plan(std::uint64_t id);

  /// Fresh id for implicit-op / plan correlation.
  std::uint64_t next_op_id() { return ++op_id_counter_; }

  /// --- pending-get destinations --------------------------------------------
  /// A get's destination pointer lives on the initiator until the response
  /// arrives; responses carry the plan id that retrieves it.
  std::uint64_t stash_get(std::function<void(std::span<const std::uint8_t>)> sink);
  void complete_get(std::uint64_t id, std::span<const std::uint8_t> data);

 private:
  friend class Runtime;

  void execute(net::Message&& message);

  Runtime& runtime_;
  int rank_;
  Xoshiro256ss rng_;

  // wait stack (postmortem wait-for graph)
  std::vector<obs::WaitFrame> wait_stack_;

  // finish
  std::vector<net::FinishKey> finish_stack_;
  std::unordered_map<net::FinishKey, FinishState> finish_states_;
  std::unordered_map<int, std::uint32_t> finish_seqs_;

  // cofence
  CofenceTracker cofence_;

  // events
  std::uint64_t event_id_counter_ = 0;
  std::unordered_map<std::uint64_t, Event*> events_;

  // coarrays
  std::unordered_map<int, std::uint64_t> coarray_seqs_;
  std::unordered_map<std::uint64_t, BlockInfo> blocks_;

  // per-image extension state (see scratch())
  std::unordered_map<const void*, std::shared_ptr<void>> scratch_;

  // teams
  std::unordered_map<int, std::shared_ptr<const TeamData>> teams_;
  std::unordered_map<int, std::uint32_t> split_seqs_;
  std::unordered_map<int, std::uint64_t> coevent_slots_;

  // collectives
  std::map<CollKey, PendingColl> colls_;
  std::unordered_map<int, std::uint32_t> coll_seqs_;

  // deferred plans / get sinks
  std::uint64_t op_id_counter_ = 0;
  std::unordered_map<std::uint64_t, std::function<void()>> plans_;
  std::unordered_map<std::uint64_t,
                     std::function<void(std::span<const std::uint8_t>)>>
      get_sinks_;
};

/// RAII wait-stack frame (see Image::push_wait_frame).
class WaitFrameScope {
 public:
  WaitFrameScope(Image& image, const obs::ResourceId& resource,
                 const char* reason)
      : image_(image) {
    image_.push_wait_frame(resource, reason);
  }
  ~WaitFrameScope() { image_.pop_wait_frame(); }

  WaitFrameScope(const WaitFrameScope&) = delete;
  WaitFrameScope& operator=(const WaitFrameScope&) = delete;

 private:
  Image& image_;
};

}  // namespace caf2::rt
