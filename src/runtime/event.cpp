#include "runtime/event.hpp"

#include "runtime/image.hpp"
#include "runtime/runtime.hpp"
#include "support/serialize.hpp"

namespace caf2 {

Event::Event() : owner_(&rt::Image::current()) {
  id_ = owner_->register_event(this);
}

Event::~Event() { owner_->deregister_event(id_); }

RemoteEvent Event::handle() const {
  return RemoteEvent{owner_->rank(), id_};
}

void Event::post() {
  if (!triggers_.empty()) {
    auto trigger = std::move(triggers_.front());
    triggers_.pop_front();
    trigger();
    return;
  }
  ++count_;
  owner_->runtime().engine().unblock(owner_->rank());
}

void Event::when_posted(std::function<void()> fn) {
  if (count_ > 0) {
    --count_;
    fn();
    return;
  }
  triggers_.push_back(std::move(fn));
}

void Event::notify() {
  // Release semantics (paper §III-B4a): outstanding implicit operations in
  // the current scope must reach local operation completion before the
  // notification becomes visible; operations *after* the notify are free to
  // start before it.
  rt::Image& image = rt::Image::current();
  obs::Recorder* const rec = image.runtime().observer();
  const double obs_begin =
      rec != nullptr ? image.runtime().engine().now() : 0.0;
  auto& scope = image.cofence_tracker().current();
  image.wait_for([&scope] { return scope.op_complete_all(); },
                 "event_notify release",
                 obs::ResourceId{obs::ResourceKind::kOpCompletion,
                                 image.rank(), 0, 0});
  if (rec != nullptr) {
    // The release wait keeps the enclosing blame context: an un-scoped wait
    // released by an ack is operation completion, i.e. network time.
    rec->op_span(image.rank(), obs::SpanKind::kEventNotify, obs_begin,
                 image.runtime().engine().now());
  }
  post();
}

void Event::wait() { wait_many(1); }

void Event::wait_many(std::uint64_t count) {
  rt::Image& image = rt::Image::current();
  CAF2_REQUIRE(owner_ == &image,
               "event_wait must be called by the owning image");
  obs::Recorder* const rec = image.runtime().observer();
  const double obs_begin =
      rec != nullptr ? image.runtime().engine().now() : 0.0;
  {
    // Classify only *top-level* event waits as event-wait time: waits inside
    // another construct's scope (finish detection waves, collective phases)
    // stay blamed on that construct.
    obs::BlameScope scope(
        rec != nullptr && rec->blame_empty(image.rank()) ? rec : nullptr,
        image.rank(), obs::Blame::kEventWait);
    image.wait_for([this, count] { return count_ >= count; }, "event_wait",
                   obs::ResourceId{obs::ResourceKind::kEvent, image.rank(),
                                   id_, 0});
  }
  if (rec != nullptr) {
    rec->op_span(image.rank(), obs::SpanKind::kEventWait, obs_begin,
                 image.runtime().engine().now(), count);
  }
  count_ -= count;
}

bool Event::test() {
  if (count_ == 0) {
    return false;
  }
  --count_;
  return true;
}

namespace rt {

/// Route a notification to \p event without release semantics. Safe from any
/// context (engine callbacks pass an explicit \p from_rank); latency is
/// modeled whenever the event lives on another image.
void post_event_raw(Runtime& runtime, int from_rank, const RemoteEvent& event) {
  CAF2_REQUIRE(event.valid(), "notification of an invalid RemoteEvent");
  if (event.image == from_rank) {
    Image& owner = runtime.image(event.image);
    Event* local = owner.find_event(event.event_id);
    CAF2_REQUIRE(local != nullptr, "notification of a destroyed event");
    local->post();
    return;
  }
  net::Message message;
  message.header.source = from_rank;
  message.header.dest = event.image;
  message.header.handler = kHandlerEventNotify;
  WriteArchive archive;
  archive.write(event.event_id);
  message.payload = archive.take();
  runtime.network().send(std::move(message));
}

void install_event_handlers(Runtime& runtime) {
  runtime.set_handler(kHandlerEventNotify,
                      [](Image& image, net::Message&& message) {
                        ReadArchive archive(message.payload);
                        const auto id = archive.read<std::uint64_t>();
                        Event* event = image.find_event(id);
                        CAF2_REQUIRE(event != nullptr,
                                     "remote notification of a destroyed event");
                        event->post();
                      });
}

}  // namespace rt

void notify_event(const RemoteEvent& event) {
  rt::Image& image = rt::Image::current();
  obs::Recorder* const rec = image.runtime().observer();
  const double obs_begin =
      rec != nullptr ? image.runtime().engine().now() : 0.0;
  auto& scope = image.cofence_tracker().current();
  image.wait_for([&scope] { return scope.op_complete_all(); },
                 "event_notify release",
                 obs::ResourceId{obs::ResourceKind::kOpCompletion,
                                 image.rank(), 0, 0});
  if (rec != nullptr) {
    rec->op_span(image.rank(), obs::SpanKind::kEventNotify, obs_begin,
                 image.runtime().engine().now(), 0, 0, event.image);
  }
  rt::post_event_raw(image.runtime(), image.rank(), event);
}

CoEvent::CoEvent(const Team& team)
    : team_(team),
      slot_(rt::Image::current().next_coevent_slot(team.id())) {
  // Alias id is a deterministic function of (team, slot), identical on every
  // member, so remote handles can be formed without communication.
  const std::uint64_t alias =
      (1ULL << 63) |
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(team.id()))
       << 32) |
      slot_;
  rt::Image::current().register_event_alias(alias, &local_event_);
}

CoEvent::~CoEvent() {
  const std::uint64_t alias =
      (1ULL << 63) |
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(team_.id()))
       << 32) |
      slot_;
  rt::Image::current().deregister_event(alias);
}

RemoteEvent CoEvent::operator()(int team_rank) const {
  const std::uint64_t alias =
      (1ULL << 63) |
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(team_.id()))
       << 32) |
      slot_;
  return RemoteEvent{team_.world_rank(team_rank), alias};
}

}  // namespace caf2
