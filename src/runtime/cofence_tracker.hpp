#pragma once

/// \file cofence_tracker.hpp
/// Tracking of implicitly-synchronized asynchronous operations for cofence.
///
/// Every asynchronous operation initiated *without* explicit completion
/// events is registered here. A record remembers whether the operation reads
/// and/or writes initiator-local data and whether each completion point has
/// been reached. `cofence(DOWNWARD, UPWARD)` then waits for local data
/// completion of the outstanding records whose access class is not allowed
/// to pass the fence (paper §III-B).
///
/// Scopes nest dynamically: a shipped function executing on an image pushes
/// a fresh scope, so a cofence inside it only captures operations that the
/// shipped function itself initiated (paper Fig. 10).

#include <cstdint>
#include <memory>
#include <vector>

namespace caf2::rt {

/// Which access classes may pass across a cofence in a given direction.
/// (caf2 public API re-exports this as caf2::Pass.)
enum class PassClass : std::uint8_t {
  kNone = 0,   ///< strict: nothing passes (the default)
  kRead = 1,   ///< operations that read initiator-local data may pass
  kWrite = 2,  ///< operations that write initiator-local data may pass
  kAny = 3,    ///< reads and writes may pass
};

inline bool allows_read(PassClass c) {
  return c == PassClass::kRead || c == PassClass::kAny;
}
inline bool allows_write(PassClass c) {
  return c == PassClass::kWrite || c == PassClass::kAny;
}

/// One implicitly-synchronized asynchronous operation.
struct ImplicitOp {
  std::uint64_t id = 0;
  bool reads_local = false;   ///< reads initiator-local data (e.g. put source)
  bool writes_local = false;  ///< writes initiator-local data (e.g. get dest)
  bool data_complete = false; ///< local data completion reached
  bool op_complete = false;   ///< local operation completion reached
  const char* what = "";      ///< diagnostic label ("copy_async", ...)
};

using ImplicitOpPtr = std::shared_ptr<ImplicitOp>;

/// The per-activation list of outstanding implicit operations.
class CofenceScope {
 public:
  void add(ImplicitOpPtr op) { ops_.push_back(std::move(op)); }

  /// True when every outstanding op whose class must not pass \p down has
  /// reached local data completion. Also prunes fully-completed records.
  bool data_complete_for(PassClass down);

  /// True when every outstanding op has reached local *operation*
  /// completion (used by event_notify's release semantics).
  bool op_complete_all();

  std::size_t outstanding() const { return ops_.size(); }

 private:
  void prune();
  std::vector<ImplicitOpPtr> ops_;
};

/// Stack of scopes; the bottom scope is the image's main program, further
/// scopes are pushed around shipped-function executions.
class CofenceTracker {
 public:
  CofenceTracker() { stack_.emplace_back(); }

  CofenceScope& current() { return stack_.back(); }

  void push_scope() { stack_.emplace_back(); }
  void pop_scope();

  std::size_t depth() const { return stack_.size(); }

 private:
  std::vector<CofenceScope> stack_;
};

}  // namespace caf2::rt
