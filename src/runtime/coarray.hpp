#pragma once

/// \file coarray.hpp
/// Coarrays — shared distributed data objects allocated over a team.
///
/// A Coarray<T> gives each member of a team a local block of `count`
/// elements. The local block is directly addressable; other images' blocks
/// are addressed through RemoteSlice handles and manipulated only with
/// asynchronous operations (copy_async) or shipped functions (Coref), which
/// is exactly the PGAS discipline the paper's runtime enforces over GASNet.
///
/// Allocation is collective in SPMD order: every member must construct the
/// coarray at the same point of the program, which makes the ids agree
/// without communication (the ids are a deterministic function of the
/// per-team allocation sequence).

#include <cstdint>
#include <span>
#include <vector>

#include "runtime/team.hpp"
#include "support/error.hpp"

namespace caf2 {

namespace rt {
class Image;
}

/// Serializable reference to `count` elements starting at element `offset`
/// of the block of coarray `coarray_id` local to world-rank `image`.
template <typename T>
struct RemoteSlice {
  std::uint64_t coarray_id = 0;
  std::int32_t image = -1;  ///< world rank owning the referenced block
  std::uint64_t offset = 0; ///< element offset within the block
  std::uint64_t count = 0;  ///< element count

  bool valid() const { return image >= 0; }

  std::size_t size_bytes() const { return count * sizeof(T); }

  /// Sub-slice relative to this slice.
  RemoteSlice subslice(std::uint64_t first, std::uint64_t n) const {
    CAF2_REQUIRE(first + n <= count, "RemoteSlice::subslice out of range");
    return RemoteSlice{coarray_id, image, offset + first, n};
  }

  /// Single element.
  RemoteSlice element(std::uint64_t index) const { return subslice(index, 1); }
};

/// Serializable by-reference coarray argument for shipped functions: it
/// resolves to the block local to whichever image *executes* the function
/// (paper §II-C2: "a reference to coarray A is passed to the shipped
/// function; thus foo can manipulate the section of coarray A local to p").
template <typename T>
struct Coref {
  std::uint64_t coarray_id = 0;
  std::uint64_t count = 0;

  /// Block of the executing image; only valid on a member of the team the
  /// coarray was allocated over.
  std::span<T> local() const;
};

namespace rt {
/// Non-templated registry entry for one image's block of one coarray.
struct BlockInfo {
  void* data = nullptr;
  std::size_t bytes = 0;
};
}  // namespace rt

template <typename T>
class Coarray {
 public:
  static_assert(std::is_trivially_copyable_v<T>,
                "coarray elements must be trivially copyable (they travel "
                "through one-sided transfers)");

  /// Collective over \p team: every member allocates `count` local elements.
  Coarray(const Team& team, std::size_t count);
  ~Coarray();

  Coarray(const Coarray&) = delete;
  Coarray& operator=(const Coarray&) = delete;

  /// The calling image's block.
  std::span<T> local() { return {storage_.data(), storage_.size()}; }
  std::span<const T> local() const { return {storage_.data(), storage_.size()}; }

  T& operator[](std::size_t index) { return storage_[index]; }
  const T& operator[](std::size_t index) const { return storage_[index]; }

  std::size_t count() const { return storage_.size(); }
  const Team& team() const { return team_; }
  std::uint64_t id() const { return id_; }

  /// Slice of the block owned by \p team_rank.
  RemoteSlice<T> operator()(int team_rank) const {
    return slice(team_rank, 0, storage_.size());
  }

  RemoteSlice<T> slice(int team_rank, std::uint64_t offset,
                       std::uint64_t n) const {
    CAF2_REQUIRE(offset + n <= storage_.size(),
                 "Coarray::slice out of range");
    return RemoteSlice<T>{id_, team_.world_rank(team_rank), offset, n};
  }

  /// By-reference handle for shipped-function arguments.
  Coref<T> ref() const { return Coref<T>{id_, storage_.size()}; }

 private:
  Team team_;
  std::uint64_t id_ = 0;
  std::vector<T> storage_;
};

namespace rt {
/// Registry plumbing implemented in coarray.cpp (non-templated so the
/// template stays header-only).
std::uint64_t coarray_allocate_id(const Team& team);
void coarray_register(std::uint64_t id, BlockInfo info);
void coarray_deregister(std::uint64_t id);
BlockInfo coarray_lookup(std::uint64_t id);
}  // namespace rt

template <typename T>
Coarray<T>::Coarray(const Team& team, std::size_t count)
    : team_(team), id_(rt::coarray_allocate_id(team)), storage_(count) {
  rt::coarray_register(
      id_, rt::BlockInfo{storage_.data(), storage_.size() * sizeof(T)});
}

template <typename T>
Coarray<T>::~Coarray() {
  rt::coarray_deregister(id_);
}

template <typename T>
std::span<T> Coref<T>::local() const {
  const rt::BlockInfo info = rt::coarray_lookup(coarray_id);
  CAF2_ASSERT(info.bytes == count * sizeof(T),
              "Coref element type/size mismatch");
  return {static_cast<T*>(info.data), static_cast<std::size_t>(count)};
}

}  // namespace caf2
