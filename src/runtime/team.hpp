#pragma once

/// \file team.hpp
/// Teams — first-class process subsets (paper §II-A).
///
/// A team serves three purposes in CAF 2.0: a domain for coarray allocation,
/// a rank name space, and an isolated communication/synchronization domain.
/// All images start in team_world; new teams are created collectively with
/// split(color, key).
///
/// Team is a cheap value handle; the underlying TeamData is immutable and
/// per-image (each member holds its own copy with its own rank).

#include <memory>
#include <vector>

#include "support/error.hpp"

namespace caf2 {

namespace rt {
class Image;
class Runtime;
}  // namespace rt

struct TeamData {
  int id = -1;
  int my_rank = -1;              ///< calling image's rank within the team
  std::vector<int> members;      ///< world ranks indexed by team rank
};

class Team {
 public:
  Team() = default;
  explicit Team(std::shared_ptr<const TeamData> data) : data_(std::move(data)) {}

  bool valid() const { return data_ != nullptr; }

  /// Team identifier (equal on every member).
  int id() const { return require().id; }

  /// Calling image's rank within this team.
  int rank() const { return require().my_rank; }

  /// Number of member images.
  int size() const { return static_cast<int>(require().members.size()); }

  /// World rank of the member with team rank \p team_rank.
  int world_rank(int team_rank) const;

  /// Team rank of world-rank \p world, or -1 if not a member.
  int rank_of_world(int world) const;

  /// True when every member of \p other is also a member of this team
  /// (used to validate collectives inside finish blocks, paper §III-A1).
  bool contains_team(const Team& other) const;

  /// Collectively split this team. Members calling with the same \p color
  /// form a new team; ranks within it are ordered by (key, old rank).
  /// All members of this team must call split (SPMD).
  Team split(int color, int key) const;

  const std::vector<int>& members() const { return require().members; }

 private:
  const TeamData& require() const {
    CAF2_REQUIRE(data_ != nullptr, "operation on an invalid Team");
    return *data_;
  }

  std::shared_ptr<const TeamData> data_;
};

/// The team containing every image (rank == world rank).
Team team_world();

}  // namespace caf2
