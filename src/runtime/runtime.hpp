#pragma once

/// \file runtime.hpp
/// The Runtime owns the simulation engine, the network, one Image per
/// process image, the active-message handler table, and the shared services
/// that are logically "in the interconnect" (team-split rendezvous).
///
/// Application code normally does not touch Runtime directly; it calls
/// caf2::run(options, body) (core/caf2.hpp), which installs the standard
/// handlers and executes `body` SPMD on every image.

#include <array>
#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "net/network.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/obs.hpp"
#include "obs/postmortem.hpp"
#include "runtime/image.hpp"
#include "sim/engine.hpp"
#include "support/config.hpp"

namespace caf2::rt {

/// Active-message handler: runs on the destination image's thread with the
/// message's finish scope pushed; may initiate operations, spawn, and (for
/// shipped functions) block.
using HandlerFn = std::function<void(Image&, net::Message&&)>;

/// Rendezvous state of one team_split call (keyed by team + split sequence).
/// All fields except `computed` are only touched under Runtime::split_mutex();
/// `computed` is the publication flag the waiting members poll from their own
/// threads (on a sharded engine those are different OS threads), so it is an
/// acquire/release atomic: everything written before the release store —
/// entries, results, team ids — is visible to a member that observes true.
struct SplitOp {
  int expected = 0;
  int contributed = 0;
  std::atomic<bool> computed{false};
  /// (color, key) per old-team rank.
  std::map<int, std::pair<int, int>> entries;
  /// Result per old-team rank (null for members that passed a negative
  /// color, which opts out of the split).
  std::map<int, std::shared_ptr<const TeamData>> results;
};

class Runtime {
 public:
  explicit Runtime(RuntimeOptions options);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Execute \p body SPMD on every image. A runtime can run once. An
  /// exception escaping an image's body (or a handler it runs) propagates
  /// out of run() tagged with the image's rank: caf2::UsageError stays a
  /// UsageError, everything else becomes a caf2::FatalError.
  void run(const std::function<void()>& body);

  /// Runtime sections of the engine's stall/watchdog report: per-image
  /// finish epoch counters {sent, delivered, received, completed},
  /// outstanding implicit operations, pending mailbox messages, recent
  /// flight-recorder events, and the network's in-flight reliable messages
  /// (see sim/engine.hpp and DESIGN.md §4.7, §4.10). Compatibility shim:
  /// renders the runtime sections of a fresh structured postmortem.
  std::string watchdog_report();

  /// Fill the runtime-owned sections of a postmortem: per-image mailbox and
  /// cofence state, finish scopes, wait stacks, recent flight-recorder
  /// events, the network section, the wait-for graph with cycle detection,
  /// and (when obs capture is on) a blame summary. Installed as the engine's
  /// postmortem collector; every Engine::fail path calls it.
  void fill_postmortem(obs::Postmortem& pm);

  /// On-demand structured postmortem of the current state — no failure
  /// required. Callable from an image context or between runs.
  obs::Postmortem dump_postmortem();

  /// Runtime of the calling participant thread.
  static Runtime& current();

  const RuntimeOptions& options() const { return options_; }
  sim::Engine& engine() { return *engine_; }
  net::Network& network() { return *network_; }
  Image& image(int rank) { return *images_[static_cast<std::size_t>(rank)]; }
  int num_images() const { return static_cast<int>(images_.size()); }

  /// The observability recorder, or nullptr when ObsConfig::enabled is off.
  /// Instrumentation sites in runtime/, ops/, and kernels/ test this pointer
  /// — that single branch is their whole disabled-mode cost.
  obs::Recorder* observer() { return observer_.get(); }

  /// The always-on flight recorder, or nullptr when
  /// ObsConfig::flight_recorder is off. Record sites test this pointer; a
  /// record is two stores and an increment into a per-image ring.
  obs::FlightRecorder* flight_recorder() { return flight_recorder_.get(); }

  /// Snapshot everything recorded (spans, metrics, drop counters) into an
  /// immutable Capture; nullptr when obs is disabled. Normally called once,
  /// after run(), by caf2::run_stats().
  std::shared_ptr<const obs::Capture> take_capture();

  /// Install or replace an active-message handler.
  void set_handler(net::HandlerId id, HandlerFn fn);
  const HandlerFn& handler(net::HandlerId id) const;

  /// --- team-split rendezvous (shared service) -------------------------------
  ///
  /// The split tables are shared across every image; on a sharded engine the
  /// contributing images run on different OS threads, so all three calls
  /// below require the caller to hold split_mutex() (Team::split does).

  std::mutex& split_mutex() { return split_mutex_; }
  SplitOp& split_op(int team_id, std::uint32_t seq, int expected);
  void gc_split_op(int team_id, std::uint32_t seq);
  int allocate_team_ids(int count);

 private:
  RuntimeOptions options_;
  std::unique_ptr<sim::Engine> engine_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<obs::Recorder> observer_;
  std::unique_ptr<obs::FlightRecorder> flight_recorder_;
  std::vector<std::unique_ptr<Image>> images_;
  std::map<net::HandlerId, HandlerFn> handlers_;
  std::mutex split_mutex_;
  std::map<std::pair<int, std::uint32_t>, SplitOp> splits_;
  std::map<std::pair<int, std::uint32_t>, int> split_done_count_;
  int next_team_id_ = 1;  // 0 is team_world
  bool ran_ = false;
};

}  // namespace caf2::rt
