#pragma once

/// \file copy.hpp
/// Predicated asynchronous copy — CAF 2.0's one-sided data transfer
/// (paper §II-C1):
///
///     copy_async(destA[p1], srcA[p2], preE, srcE, destE)
///
/// Any image may initiate a copy between any pair of images (including
/// third-party transfers where the initiator is neither source nor
/// destination). Three optional events manage its completion:
///  - preE:  the copy starts only after this event has been posted;
///  - srcE:  posted when the source buffer has been read (it may be
///           overwritten afterwards);
///  - destE: posted when the data has been delivered to the destination.
///
/// A copy given neither srcE nor destE is *implicitly synchronized*: its
/// completion is managed by cofence (local data completion) and an enclosing
/// finish block (global completion). A copy with completion events is
/// explicit and is not tracked by cofence/finish (paper §III).

#include <span>

#include "runtime/coarray.hpp"
#include "runtime/event.hpp"
#include "runtime/image.hpp"

namespace caf2 {

struct CopyOptions {
  RemoteEvent pre{};       ///< predicate: start only after this event fires
  RemoteEvent src_done{};  ///< source read complete (source reusable)
  RemoteEvent dst_done{};  ///< data delivered to the destination
};

namespace ops {

/// Byte-level descriptor; the typed wrappers below populate it.
struct CopyDesc {
  // Destination: either a coarray block on dst_image, or initiator-local raw
  // memory (dst_local != nullptr, dst_image == initiator).
  std::uint64_t dst_coarray = 0;
  std::uint64_t dst_offset_bytes = 0;
  int dst_image = -1;
  void* dst_local = nullptr;

  // Source: same shape.
  std::uint64_t src_coarray = 0;
  std::uint64_t src_offset_bytes = 0;
  int src_image = -1;
  const void* src_local = nullptr;

  std::uint64_t bytes = 0;

  RemoteEvent pre{};
  RemoteEvent src_done{};
  RemoteEvent dst_done{};
};

/// Initiate the copy described by \p desc on the calling image.
void copy_async_bytes(CopyDesc desc);

/// Install the copy handlers (called from caf2::run).
void install_copy_handlers(rt::Runtime& runtime);

}  // namespace ops

/// Put: initiator-local memory -> remote (or local) coarray slice.
template <typename T>
void copy_async(RemoteSlice<T> dst, std::span<const T> src,
                CopyOptions options = {}) {
  CAF2_REQUIRE(dst.count == src.size(),
               "copy_async: element counts differ");
  ops::CopyDesc desc;
  desc.dst_coarray = dst.coarray_id;
  desc.dst_offset_bytes = dst.offset * sizeof(T);
  desc.dst_image = dst.image;
  desc.src_image = rt::Image::current().rank();
  desc.src_local = src.data();
  desc.bytes = src.size() * sizeof(T);
  desc.pre = options.pre;
  desc.src_done = options.src_done;
  desc.dst_done = options.dst_done;
  ops::copy_async_bytes(desc);
}

/// Get: remote (or local) coarray slice -> initiator-local memory.
template <typename T>
void copy_async(std::span<T> dst, RemoteSlice<T> src,
                CopyOptions options = {}) {
  CAF2_REQUIRE(src.count == dst.size(),
               "copy_async: element counts differ");
  ops::CopyDesc desc;
  desc.dst_image = rt::Image::current().rank();
  desc.dst_local = dst.data();
  desc.src_coarray = src.coarray_id;
  desc.src_offset_bytes = src.offset * sizeof(T);
  desc.src_image = src.image;
  desc.bytes = dst.size() * sizeof(T);
  desc.pre = options.pre;
  desc.src_done = options.src_done;
  desc.dst_done = options.dst_done;
  ops::copy_async_bytes(desc);
}

/// General form: coarray slice to coarray slice; the initiator may be the
/// source image, the destination image, a third party, or both end points.
template <typename T>
void copy_async(RemoteSlice<T> dst, RemoteSlice<T> src,
                CopyOptions options = {}) {
  CAF2_REQUIRE(dst.count == src.count,
               "copy_async: element counts differ");
  ops::CopyDesc desc;
  desc.dst_coarray = dst.coarray_id;
  desc.dst_offset_bytes = dst.offset * sizeof(T);
  desc.dst_image = dst.image;
  desc.src_coarray = src.coarray_id;
  desc.src_offset_bytes = src.offset * sizeof(T);
  desc.src_image = src.image;
  desc.bytes = src.count * sizeof(T);
  desc.pre = options.pre;
  desc.src_done = options.src_done;
  desc.dst_done = options.dst_done;
  ops::copy_async_bytes(desc);
}

}  // namespace caf2
