#pragma once

/// \file coll_algo.hpp
/// Collective algorithm inventory and selection (DESIGN.md §4.13).
///
/// Every collective kind maps to a set of selectable schedules; the
/// CollAlgorithm::kAuto default resolves through a process-global *selection
/// table* keyed by (collective kind, log2 team size, log2 payload bytes).
/// Tables come from two places: the built-in per-kind defaults (the legacy
/// schedules, so untuned runs keep their historical traces bit-for-bit), or
/// a table measured under the simulator by `bench_collectives --tune` and
/// loaded back here (load_selection_table_file / set_selection_table, or
/// RuntimeOptions::coll_selection_table / the CAF2_COLL_TABLE environment
/// variable at caf2::run entry).
///
/// Determinism: resolution depends only on team-uniform inputs — every
/// member of a team observes the same kind, team size, and contribution
/// size for the multi-algorithm kinds — so all images independently resolve
/// the same schedule and the stage machinery stays in lockstep. The table
/// itself is process-global and must not be mutated mid-run.

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <tuple>
#include <vector>

#include "ops/collectives.hpp"

namespace caf2::ops {

/// Schedules implemented for \p kind, default first. Never empty.
std::vector<CollAlgorithm> supported_algorithms(CollKind kind);

/// The legacy / fallback schedule for \p kind (what ran before the
/// algorithm layer existed, so untuned runs are trace-identical).
CollAlgorithm default_algorithm(CollKind kind);

bool algorithm_supported(CollKind kind, CollAlgorithm algorithm);

/// Parse the to_string() names back ("ring", "allreduce", ...). Returns
/// false (leaving \p out untouched) on an unknown name.
bool parse_algorithm(std::string_view name, CollAlgorithm& out);
bool parse_coll_kind(std::string_view name, CollKind& out);

/// Measured winner table: (kind, floor-log2 team size, floor-log2 payload
/// bytes) -> algorithm. Lookup snaps to the nearest recorded bucket (team
/// size first, then payload) so a table tuned at {4,16} images generalizes
/// to 8.
class CollSelectionTable {
 public:
  static int log2_bucket(std::size_t value);

  void set(CollKind kind, int images, std::size_t bytes,
           CollAlgorithm algorithm);

  /// kAuto when the table has no entry for \p kind at all.
  CollAlgorithm lookup(CollKind kind, int images, std::size_t bytes) const;

  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }

  /// Deterministic JSON artifact (sorted entries, fixed field order).
  std::string to_json() const;

  /// Parse a to_json() document; throws UsageError on malformed input or
  /// unknown kind/algorithm names.
  static CollSelectionTable from_json(const std::string& text);

 private:
  // (kind, log2 images, log2 bytes) -> algorithm, ordered for stable dumps.
  std::map<std::tuple<int, int, int>, CollAlgorithm> entries_;
};

/// Install \p table as the process-global Auto source (replacing any
/// previous one). Not to be called while a run is in flight.
void set_selection_table(CollSelectionTable table);

/// Drop the process-global table; Auto falls back to the built-in defaults.
void clear_selection_table();

/// Read a to_json() artifact from \p path into the process-global table.
/// Throws UsageError when the file is unreadable or malformed.
void load_selection_table_file(const std::string& path);

/// Snapshot of the process-global table (empty when none is loaded).
CollSelectionTable selection_table();

/// Resolve the schedule start_collective will run: kAuto consults the
/// loaded table (nearest bucket), else the built-in default; an explicit
/// unsupported (kind, algorithm) pairing is a UsageError. Structural clamps
/// are applied last — recursive-doubling allgather needs a power-of-two
/// team and degrades to ring otherwise — so the returned value is always
/// runnable. Deterministic in (kind, requested, team_size, bytes).
CollAlgorithm resolve_algorithm(CollKind kind, CollAlgorithm requested,
                                int team_size, std::size_t bytes);

/// Interned "kind/algorithm" label (e.g. "allreduce/ring") with static
/// lifetime, suitable for obs::Span::label.
const char* coll_span_label(CollKind kind, CollAlgorithm algorithm);

}  // namespace caf2::ops
