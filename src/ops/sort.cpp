#include <cstring>

#include "ops/coll_detail.hpp"
#include "support/serialize.hpp"

/// \file sort.cpp
/// Distributed sample sort — the `sort` entry of the paper's asynchronous
/// collective vision (§II-C3). Three asynchronous phases:
///
///   stage 0  every member ships up to p evenly-spaced local samples to
///            team rank 0;
///   stage 1  rank 0 sorts the p·p samples, picks p-1 splitters, and ships
///            them to every member;
///   stage 2  members partition their (locally sorted) keys by splitter and
///            exchange partitions all-to-all; each member sorts the
///            concatenation of what it received.
///
/// The result is range-partitioned by team rank: rank 0 ends with the
/// smallest keys. Like every collective here it is asynchronous, with the
/// usual src_done / local_done events, cofence, and finish integration.

namespace caf2::ops::detail {

namespace {

using rt::CollStageMsg;
using rt::Image;

class SortImpl final : public CollImplBase {
 public:
  using CollImplBase::CollImplBase;

  static constexpr int kStageSamples = 0;
  static constexpr int kStageSplitters = 1;
  static constexpr int kStagePartition = 2;

 protected:
  void begin(Image& image) override {
    started_ = true;
    const std::size_t es = desc().elem_size;
    keys_.assign(static_cast<const std::uint8_t*>(desc().buf),
                 static_cast<const std::uint8_t*>(desc().buf) +
                     desc().bytes);
    desc().sort_sort(keys_.data(), keys_.size());
    const int p = team_size();

    if (p == 1) {
      desc().sort_assign(desc().sort_sink, keys_.data(), keys_.size());
      done_ = true;
      mark_data_done(image);
      return;
    }

    // Ship up to p evenly-spaced samples to team rank 0 (always send the
    // message, possibly empty, so rank 0 can count contributions).
    const std::size_t n = keys_.size() / es;
    WriteArchive archive;
    const auto sample_count =
        static_cast<std::int32_t>(std::min<std::size_t>(n, p));
    archive.write(sample_count);
    for (std::int32_t s = 0; s < sample_count; ++s) {
      const std::size_t index =
          (static_cast<std::size_t>(s) + 1) * n / (sample_count + 1);
      archive.write_bytes(keys_.data() + index * es, es);
    }
    const auto packed = archive.take();
    if (team_rank() == 0) {
      absorb_samples(image, packed);
    } else {
      send_stage(image, 0, kStageSamples, packed.data(), packed.size());
    }
    replay(image);
  }

  void handle(Image& image, CollStageMsg&& msg) override {
    if (!started_) {
      pending_.push_back(std::move(msg));
      return;
    }
    dispatch(image, std::move(msg));
  }

  bool role_done() const override { return started_ && done_; }

 private:
  void replay(Image& image) {
    auto pending = std::move(pending_);
    pending_.clear();
    for (auto& msg : pending) {
      dispatch(image, std::move(msg));
    }
  }

  void dispatch(Image& image, CollStageMsg&& msg) {
    switch (msg.stage) {
      case kStageSamples:
        absorb_samples(image, msg.data);
        break;
      case kStageSplitters:
        accept_splitters(image, msg.data);
        break;
      case kStagePartition:
        partitions_.push_back(std::move(msg.data));
        ++parts_received_;
        try_finish(image);
        break;
      default:
        CAF2_ASSERT(false, "sort: unknown stage");
    }
  }

  void absorb_samples(Image& image, const std::vector<std::uint8_t>& data) {
    const std::size_t es = desc().elem_size;
    ReadArchive archive(data);
    const auto count = archive.read<std::int32_t>();
    for (std::int32_t i = 0; i < count; ++i) {
      std::vector<std::uint8_t> key(es);
      archive.read_bytes(key.data(), es);
      samples_.push_back(std::move(key));
    }
    ++sample_contributions_;
    if (sample_contributions_ < team_size()) {
      return;
    }
    // All contributions in: sort the samples and pick p-1 splitters.
    auto less = desc().sort_less;
    std::sort(samples_.begin(), samples_.end(),
              [less](const std::vector<std::uint8_t>& a,
                     const std::vector<std::uint8_t>& b) {
                return less(a.data(), b.data());
              });
    const int p = team_size();
    WriteArchive archive_out;
    std::int32_t splitter_count = 0;
    std::vector<std::uint8_t> packed_splitters;
    {
      WriteArchive body;
      for (int j = 1; j < p; ++j) {
        const std::size_t index =
            static_cast<std::size_t>(j) * samples_.size() / p;
        if (index < samples_.size()) {
          body.write_bytes(samples_[index].data(), es);
          ++splitter_count;
        }
      }
      archive_out.write(splitter_count);
      const auto& bytes = body.bytes();
      archive_out.write_bytes(bytes.data(), bytes.size());
      packed_splitters = archive_out.take();
    }
    for (int r = 1; r < p; ++r) {
      send_stage(image, r, kStageSplitters, packed_splitters.data(),
                 packed_splitters.size());
    }
    accept_splitters(image, packed_splitters);
  }

  void accept_splitters(Image& image, const std::vector<std::uint8_t>& data) {
    const std::size_t es = desc().elem_size;
    ReadArchive archive(data);
    const auto count = archive.read<std::int32_t>();
    splitters_.clear();
    for (std::int32_t i = 0; i < count; ++i) {
      std::vector<std::uint8_t> key(es);
      archive.read_bytes(key.data(), es);
      splitters_.push_back(std::move(key));
    }
    // Partition the locally sorted keys: partition j receives keys in
    // [splitter[j-1], splitter[j]) — with fewer splitters than p-1 the tail
    // partitions stay empty, which is still correct (just unbalanced).
    auto less = desc().sort_less;
    const std::size_t n = keys_.size() / es;
    const int p = team_size();
    std::size_t cursor = 0;
    for (int part = 0; part < p; ++part) {
      const std::size_t first = cursor;
      while (cursor < n &&
             (part >= static_cast<int>(splitters_.size()) ||
              less(keys_.data() + cursor * es, splitters_[part].data()))) {
        ++cursor;
      }
      const std::size_t bytes = (cursor - first) * es;
      if (part == team_rank()) {
        partitions_.emplace_back(keys_.data() + first * es,
                                 keys_.data() + first * es + bytes);
        ++parts_received_;
      } else {
        send_stage(image, part, kStagePartition, keys_.data() + first * es,
                   bytes);
      }
    }
    CAF2_ASSERT(cursor == n, "sort: partitioning lost keys");
    sent_parts_ = true;
    try_finish(image);
  }

  void try_finish(Image& image) {
    if (done_ || !sent_parts_ || parts_received_ < team_size()) {
      return;
    }
    done_ = true;
    std::vector<std::uint8_t> merged;
    for (const auto& part : partitions_) {
      merged.insert(merged.end(), part.begin(), part.end());
    }
    desc().sort_sort(merged.data(), merged.size());
    desc().sort_assign(desc().sort_sink, merged.data(), merged.size());
    mark_data_done(image);
  }

  bool started_ = false;
  bool done_ = false;
  bool sent_parts_ = false;
  int sample_contributions_ = 0;
  int parts_received_ = 0;
  std::vector<std::uint8_t> keys_;
  std::vector<std::vector<std::uint8_t>> samples_;
  std::vector<std::vector<std::uint8_t>> splitters_;
  std::vector<std::vector<std::uint8_t>> partitions_;
  std::vector<CollStageMsg> pending_;
};

}  // namespace

std::unique_ptr<CollImplBase> make_sort_impl(rt::CollKey key, CollDesc desc) {
  CAF2_REQUIRE(desc.elem_size > 0 && desc.sort_assign != nullptr &&
                   desc.sort_sort != nullptr && desc.sort_less != nullptr,
               "sort collective missing type plumbing");
  return std::make_unique<SortImpl>(key, std::move(desc));
}

}  // namespace caf2::ops::detail
