#include <cstring>
#include <memory>
#include <vector>

#include "ops/coll_detail.hpp"
#include "runtime/runtime.hpp"
#include "support/error.hpp"

/// \file coll_algo_ring.cpp
/// Ring-family schedules (DESIGN.md §4.13). The ring allreduce /
/// reduce-scatter / allgather move ~2·bytes·(p-1)/p per image regardless of
/// team size — bandwidth-optimal — against the binomial tree's
/// log2(p)·bytes per hop, at the cost of p-1 latency steps; the selection
/// table exploits exactly this crossover. Channels are non-FIFO (delivery
/// jitter can reorder same-link messages), so every impl buffers incoming
/// payloads by stage number and pumps strictly in stage order.

namespace caf2::ops::detail {

namespace {

using rt::CollStageMsg;
using rt::Image;

/// Per-stage receive buffer: non-FIFO-safe storage keyed by stage number.
class StageBuffer {
 public:
  void store(int stage, std::vector<std::uint8_t>&& data) {
    const auto index = static_cast<std::size_t>(stage);
    if (index >= has_.size()) {
      data_.resize(index + 1);
      has_.resize(index + 1, false);
    }
    data_[index] = std::move(data);
    has_[index] = true;
  }

  bool has(int stage) const {
    const auto index = static_cast<std::size_t>(stage);
    return index < has_.size() && has_[index];
  }

  std::vector<std::uint8_t>& at(int stage) {
    return data_[static_cast<std::size_t>(stage)];
  }

 private:
  std::vector<std::vector<std::uint8_t>> data_;
  std::vector<bool> has_;
};

/// Ring broadcast: a p-1 hop chain from the root. Strictly worse in latency
/// than the trees for whole-message sends, but included as the degenerate
/// pipeline schedule (and as a table stress case).
class RingBroadcastImpl final : public CollImplBase {
 public:
  using CollImplBase::CollImplBase;

 protected:
  void begin(Image& image) override {
    started_ = true;
    if (team_rank() == desc().root) {
      have_data_ = true;
      forward(image);
      mark_data_done(image, /*after_stages=*/true);
    } else if (pending_payload_) {
      deliver(image);
    }
  }

  void handle(Image& image, CollStageMsg&& msg) override {
    payload_ = std::move(msg.data);
    pending_payload_ = true;
    if (started_) {
      deliver(image);
    }
  }

  bool role_done() const override { return started_ && have_data_; }

 private:
  int vrank() const {
    const int p = team_size();
    return (team_rank() - desc().root + p) % p;
  }

  void forward(Image& image) {
    const int p = team_size();
    if (vrank() + 1 < p) {
      send_stage(image, (vrank() + 1 + desc().root) % p, 0, desc().buf,
                 desc().bytes);
    }
  }

  void deliver(Image& image) {
    CAF2_ASSERT(payload_.size() == desc().bytes,
                "ring broadcast size mismatch");
    std::memcpy(desc().buf, payload_.data(), payload_.size());
    have_data_ = true;
    pending_payload_ = false;
    forward(image);
    mark_data_done(image);
  }

  bool started_ = false;
  bool have_data_ = false;
  bool pending_payload_ = false;
  std::vector<std::uint8_t> payload_;
};

/// Ring allreduce: a reduce-scatter phase (steps 0..p-2, rank r sends
/// accumulated chunk (r-s) mod p to r+1 and folds in chunk (r-1-s) mod p
/// from r-1, ending as the owner of fully-reduced chunk (r+1) mod p)
/// followed by an allgather phase (steps p-1..2p-3 circulating the owned
/// chunks). Chunks split desc().bytes on reducer element boundaries, so
/// they may be empty when p exceeds the element count.
class RingAllreduceImpl final : public CollImplBase {
 public:
  using CollImplBase::CollImplBase;

 protected:
  void begin(Image& image) override {
    started_ = true;
    const int p = team_size();
    stages_ = 2 * (p - 1);
    acc_.resize(desc().bytes);
    std::memcpy(acc_.data(), desc().buf, desc().bytes);
    pump(image);
  }

  void handle(Image& image, CollStageMsg&& msg) override {
    got_.store(msg.stage, std::move(msg.data));
    if (started_) {
      pump(image);
    }
  }

  bool role_done() const override { return started_ && stage_ == stages_; }

 private:
  std::size_t elems() const {
    return desc().bytes / desc().reducer.elem_size;
  }
  std::size_t chunk_begin(int chunk) const {
    return elems() * static_cast<std::size_t>(chunk) /
           static_cast<std::size_t>(team_size()) * desc().reducer.elem_size;
  }
  std::size_t chunk_bytes(int chunk) const {
    return chunk_begin(chunk + 1) - chunk_begin(chunk);
  }

  void pump(Image& image) {
    const int p = team_size();
    const int r = team_rank();
    while (stage_ < stages_) {
      const bool reduce_phase = stage_ < p - 1;
      const int step = reduce_phase ? stage_ : stage_ - (p - 1);
      const int send_chunk =
          reduce_phase ? (r - step + p) % p : (r + 1 - step + 2 * p) % p;
      const int recv_chunk =
          reduce_phase ? (r - 1 - step + 2 * p) % p : (r - step + 2 * p) % p;
      if (!sent_current_) {
        send_stage(image, (r + 1) % p, stage_,
                   acc_.data() + chunk_begin(send_chunk),
                   chunk_bytes(send_chunk));
        sent_current_ = true;
      }
      if (!got_.has(stage_)) {
        return;
      }
      auto& incoming = got_.at(stage_);
      CAF2_ASSERT(incoming.size() == chunk_bytes(recv_chunk),
                  "ring allreduce chunk size mismatch");
      if (reduce_phase) {
        desc().reducer.combine(acc_.data() + chunk_begin(recv_chunk),
                               incoming.data(),
                               incoming.size() / desc().reducer.elem_size);
      } else {
        std::memcpy(acc_.data() + chunk_begin(recv_chunk), incoming.data(),
                    incoming.size());
      }
      incoming.clear();
      ++stage_;
      sent_current_ = false;
    }
    std::memcpy(desc().buf, acc_.data(), acc_.size());
    mark_data_done(image);
  }

  bool started_ = false;
  bool sent_current_ = false;
  int stage_ = 0;
  int stages_ = 0;
  std::vector<std::uint8_t> acc_;
  StageBuffer got_;
};

/// Ring allgather: rank r seeds slot r of the receive buffer with its own
/// block, then p-1 steps circulate blocks around the ring (step s: send
/// block (r-s) mod p to r+1, receive block (r-1-s) mod p from r-1).
class RingAllgatherImpl final : public CollImplBase {
 public:
  using CollImplBase::CollImplBase;

 protected:
  void begin(Image& image) override {
    started_ = true;
    stages_ = team_size() - 1;
    std::memcpy(slot(team_rank()), desc().buf, desc().bytes);
    pump(image);
  }

  void handle(Image& image, CollStageMsg&& msg) override {
    got_.store(msg.stage, std::move(msg.data));
    if (started_) {
      pump(image);
    }
  }

  bool role_done() const override { return started_ && stage_ == stages_; }

 private:
  std::uint8_t* slot(int rank) const {
    return static_cast<std::uint8_t*>(desc().buf2) +
           static_cast<std::size_t>(rank) * desc().bytes;
  }

  void pump(Image& image) {
    const int p = team_size();
    const int r = team_rank();
    while (stage_ < stages_) {
      if (!sent_current_) {
        const int send_block = (r - stage_ + p) % p;
        send_stage(image, (r + 1) % p, stage_, slot(send_block),
                   desc().bytes);
        sent_current_ = true;
      }
      if (!got_.has(stage_)) {
        return;
      }
      auto& incoming = got_.at(stage_);
      CAF2_ASSERT(incoming.size() == desc().bytes,
                  "ring allgather block size mismatch");
      const int recv_block = (r - 1 - stage_ + 2 * p) % p;
      std::memcpy(slot(recv_block), incoming.data(), incoming.size());
      incoming.clear();
      ++stage_;
      sent_current_ = false;
    }
    mark_data_done(image, /*after_stages=*/true);
  }

  bool started_ = false;
  bool sent_current_ = false;
  int stage_ = 0;
  int stages_ = 0;
  StageBuffer got_;
};

/// Ring reduce-scatter: the reduce-scatter phase of the ring allreduce over
/// uniform chunks of desc().bytes2, indexed so that rank r ends owning
/// chunk r (step s: send accumulated chunk (r-1-s) mod p, fold in chunk
/// (r-2-s) mod p).
class RingReduceScatterImpl final : public CollImplBase {
 public:
  using CollImplBase::CollImplBase;

 protected:
  void begin(Image& image) override {
    started_ = true;
    stages_ = team_size() - 1;
    acc_.resize(desc().bytes);
    std::memcpy(acc_.data(), desc().buf, desc().bytes);
    pump(image);
  }

  void handle(Image& image, CollStageMsg&& msg) override {
    got_.store(msg.stage, std::move(msg.data));
    if (started_) {
      pump(image);
    }
  }

  bool role_done() const override { return started_ && stage_ == stages_; }

 private:
  std::uint8_t* chunk(int index) {
    return acc_.data() + static_cast<std::size_t>(index) * desc().bytes2;
  }

  void pump(Image& image) {
    const int p = team_size();
    const int r = team_rank();
    while (stage_ < stages_) {
      if (!sent_current_) {
        const int send_chunk = (r - 1 - stage_ + 2 * p) % p;
        send_stage(image, (r + 1) % p, stage_, chunk(send_chunk),
                   desc().bytes2);
        sent_current_ = true;
      }
      if (!got_.has(stage_)) {
        return;
      }
      auto& incoming = got_.at(stage_);
      CAF2_ASSERT(incoming.size() == desc().bytes2,
                  "ring reduce-scatter chunk size mismatch");
      const int recv_chunk = (r - 2 - stage_ + 2 * p) % p;
      desc().reducer.combine(chunk(recv_chunk), incoming.data(),
                             incoming.size() / desc().reducer.elem_size);
      incoming.clear();
      ++stage_;
      sent_current_ = false;
    }
    std::memcpy(desc().buf2, chunk(r), desc().bytes2);
    mark_data_done(image);
  }

  bool started_ = false;
  bool sent_current_ = false;
  int stage_ = 0;
  int stages_ = 0;
  std::vector<std::uint8_t> acc_;
  StageBuffer got_;
};

}  // namespace

std::unique_ptr<CollImplBase> make_ring_impl(rt::CollKey key, CollDesc desc) {
  switch (desc.kind) {
    case CollKind::kBroadcast:
      return std::make_unique<RingBroadcastImpl>(key, std::move(desc));
    case CollKind::kAllreduce:
      return std::make_unique<RingAllreduceImpl>(key, std::move(desc));
    case CollKind::kAllgather:
      return std::make_unique<RingAllgatherImpl>(key, std::move(desc));
    case CollKind::kReduceScatter:
      return std::make_unique<RingReduceScatterImpl>(key, std::move(desc));
    default:
      throw UsageError("ring schedule: unsupported collective kind");
  }
}

}  // namespace caf2::ops::detail
