#include <cstring>
#include <memory>
#include <numeric>
#include <vector>

#include "ops/coll_detail.hpp"
#include "runtime/runtime.hpp"
#include "support/error.hpp"

/// \file coll_algo_direct.cpp
/// Direct (linear pairwise) schedules (DESIGN.md §4.13): every pair that
/// must exchange data does so with one message — p-1 sends or receives at
/// the busiest rank, no intermediate hops. Latency-optimal for tiny teams
/// and the only schedule whose message sizes can differ per pair, which is
/// why the variable-count collectives (gatherv / scatterv / alltoallv)
/// live here. Zero-byte chunks are still sent: receivers complete by
/// *counting* p-1 arrivals, which keeps completion deterministic without a
/// separate handshake for empty pairs.

namespace caf2::ops::detail {

namespace {

using rt::CollStageMsg;
using rt::Image;

/// Byte displacement of rank \p r given per-rank byte counts.
std::size_t displacement(const std::vector<std::size_t>& counts, int r) {
  return std::accumulate(counts.begin(),
                         counts.begin() + static_cast<std::size_t>(r),
                         std::size_t{0});
}

/// Direct gather: every non-root sends its contribution straight to the
/// root; the root counts p-1 arrivals and places them by source rank.
class DirectGatherImpl final : public CollImplBase {
 public:
  using CollImplBase::CollImplBase;

 protected:
  void begin(Image& image) override {
    started_ = true;
    if (team_rank() == desc().root) {
      std::memcpy(static_cast<std::uint8_t*>(desc().buf2) +
                      static_cast<std::size_t>(team_rank()) * desc().bytes,
                  desc().buf, desc().bytes);
      for (auto& [from, data] : pending_) {
        place(from, data);
      }
      pending_.clear();
      maybe_done(image);
    } else {
      send_stage(image, desc().root, 0, desc().buf, desc().bytes);
      mark_data_done(image, /*after_stages=*/true);
    }
  }

  void handle(Image& image, CollStageMsg&& msg) override {
    if (!started_) {
      pending_.emplace_back(msg.from_team_rank, std::move(msg.data));
      return;
    }
    place(msg.from_team_rank, msg.data);
    maybe_done(image);
  }

  bool role_done() const override {
    if (!started_) {
      return false;
    }
    return team_rank() == desc().root ? received_ == team_size() - 1 : true;
  }

 private:
  void place(int from, const std::vector<std::uint8_t>& data) {
    CAF2_ASSERT(data.size() == desc().bytes, "direct gather size mismatch");
    std::memcpy(static_cast<std::uint8_t*>(desc().buf2) +
                    static_cast<std::size_t>(from) * desc().bytes,
                data.data(), data.size());
    ++received_;
  }

  void maybe_done(Image& image) {
    if (received_ == team_size() - 1) {
      mark_data_done(image);
    }
  }

  bool started_ = false;
  int received_ = 0;
  std::vector<std::pair<int, std::vector<std::uint8_t>>> pending_;
};

/// Direct scatter: the root sends each member its chunk directly.
class DirectScatterImpl final : public CollImplBase {
 public:
  using CollImplBase::CollImplBase;

 protected:
  void begin(Image& image) override {
    started_ = true;
    if (team_rank() == desc().root) {
      const auto* in = static_cast<const std::uint8_t*>(desc().buf);
      for (int r = 0; r < team_size(); ++r) {
        if (r == team_rank()) {
          std::memcpy(desc().buf2,
                      in + static_cast<std::size_t>(r) * desc().bytes2,
                      desc().bytes2);
        } else {
          send_stage(image, r, 0,
                     in + static_cast<std::size_t>(r) * desc().bytes2,
                     desc().bytes2);
        }
      }
      have_chunk_ = true;
      mark_data_done(image, /*after_stages=*/true);
    } else if (pending_chunk_) {
      deliver(image);
    }
  }

  void handle(Image& image, CollStageMsg&& msg) override {
    chunk_ = std::move(msg.data);
    pending_chunk_ = true;
    if (started_) {
      deliver(image);
    }
  }

  bool role_done() const override { return started_ && have_chunk_; }

 private:
  void deliver(Image& image) {
    CAF2_ASSERT(chunk_.size() == desc().bytes2,
                "direct scatter size mismatch");
    std::memcpy(desc().buf2, chunk_.data(), chunk_.size());
    have_chunk_ = true;
    pending_chunk_ = false;
    mark_data_done(image);
  }

  bool started_ = false;
  bool have_chunk_ = false;
  bool pending_chunk_ = false;
  std::vector<std::uint8_t> chunk_;
};

/// Direct allgather: everyone sends its block to everyone else.
class DirectAllgatherImpl final : public CollImplBase {
 public:
  using CollImplBase::CollImplBase;

 protected:
  void begin(Image& image) override {
    started_ = true;
    std::memcpy(static_cast<std::uint8_t*>(desc().buf2) +
                    static_cast<std::size_t>(team_rank()) * desc().bytes,
                desc().buf, desc().bytes);
    for (int r = 0; r < team_size(); ++r) {
      if (r != team_rank()) {
        send_stage(image, r, 0, desc().buf, desc().bytes);
      }
    }
    for (auto& [from, data] : pending_) {
      place(from, data);
    }
    pending_.clear();
    maybe_done(image);
  }

  void handle(Image& image, CollStageMsg&& msg) override {
    if (!started_) {
      pending_.emplace_back(msg.from_team_rank, std::move(msg.data));
      return;
    }
    place(msg.from_team_rank, msg.data);
    maybe_done(image);
  }

  bool role_done() const override {
    return started_ && received_ == team_size() - 1;
  }

 private:
  void place(int from, const std::vector<std::uint8_t>& data) {
    CAF2_ASSERT(data.size() == desc().bytes,
                "direct allgather size mismatch");
    std::memcpy(static_cast<std::uint8_t*>(desc().buf2) +
                    static_cast<std::size_t>(from) * desc().bytes,
                data.data(), data.size());
    ++received_;
  }

  void maybe_done(Image& image) {
    if (received_ == team_size() - 1) {
      mark_data_done(image, /*after_stages=*/true);
    }
  }

  bool started_ = false;
  int received_ = 0;
  std::vector<std::pair<int, std::vector<std::uint8_t>>> pending_;
};

/// Direct reduce-scatter: rank r sends chunk j of its contribution to rank
/// j and folds the p-1 incoming chunks into its own chunk r.
class DirectReduceScatterImpl final : public CollImplBase {
 public:
  using CollImplBase::CollImplBase;

 protected:
  void begin(Image& image) override {
    started_ = true;
    const auto* in = static_cast<const std::uint8_t*>(desc().buf);
    acc_.assign(in + static_cast<std::size_t>(team_rank()) * desc().bytes2,
                in + static_cast<std::size_t>(team_rank() + 1) *
                         desc().bytes2);
    for (int r = 0; r < team_size(); ++r) {
      if (r != team_rank()) {
        send_stage(image, r, 0,
                   in + static_cast<std::size_t>(r) * desc().bytes2,
                   desc().bytes2);
      }
    }
    for (auto& data : pending_) {
      fold(data);
    }
    pending_.clear();
    maybe_done(image);
  }

  void handle(Image& image, CollStageMsg&& msg) override {
    if (!started_) {
      pending_.push_back(std::move(msg.data));
      return;
    }
    fold(msg.data);
    maybe_done(image);
  }

  bool role_done() const override {
    return started_ && received_ == team_size() - 1;
  }

 private:
  void fold(const std::vector<std::uint8_t>& data) {
    CAF2_ASSERT(data.size() == desc().bytes2,
                "direct reduce-scatter size mismatch");
    desc().reducer.combine(acc_.data(), data.data(),
                           data.size() / desc().reducer.elem_size);
    ++received_;
  }

  void maybe_done(Image& image) {
    if (received_ == team_size() - 1) {
      std::memcpy(desc().buf2, acc_.data(), acc_.size());
      mark_data_done(image, /*after_stages=*/true);
    }
  }

  bool started_ = false;
  int received_ = 0;
  std::vector<std::uint8_t> acc_;
  std::vector<std::vector<std::uint8_t>> pending_;
};

/// Variable-count gather: desc().counts (root only) carries per-rank byte
/// counts; arrivals are placed at their prefix-sum displacement.
class GathervImpl final : public CollImplBase {
 public:
  using CollImplBase::CollImplBase;

 protected:
  void begin(Image& image) override {
    started_ = true;
    if (team_rank() == desc().root) {
      std::memcpy(static_cast<std::uint8_t*>(desc().buf2) +
                      displacement(desc().counts, team_rank()),
                  desc().buf, desc().bytes);
      for (auto& [from, data] : pending_) {
        place(from, data);
      }
      pending_.clear();
      maybe_done(image);
    } else {
      send_stage(image, desc().root, 0, desc().buf, desc().bytes);
      mark_data_done(image, /*after_stages=*/true);
    }
  }

  void handle(Image& image, CollStageMsg&& msg) override {
    if (!started_) {
      pending_.emplace_back(msg.from_team_rank, std::move(msg.data));
      return;
    }
    place(msg.from_team_rank, msg.data);
    maybe_done(image);
  }

  bool role_done() const override {
    if (!started_) {
      return false;
    }
    return team_rank() == desc().root ? received_ == team_size() - 1 : true;
  }

 private:
  void place(int from, const std::vector<std::uint8_t>& data) {
    CAF2_ASSERT(data.size() == desc().counts[static_cast<std::size_t>(from)],
                "gatherv: contribution does not match the root's count");
    std::memcpy(static_cast<std::uint8_t*>(desc().buf2) +
                    displacement(desc().counts, from),
                data.data(), data.size());
    ++received_;
  }

  void maybe_done(Image& image) {
    if (received_ == team_size() - 1) {
      mark_data_done(image);
    }
  }

  bool started_ = false;
  int received_ = 0;
  std::vector<std::pair<int, std::vector<std::uint8_t>>> pending_;
};

/// Variable-count scatter: the root slices its buffer by desc().counts;
/// each member's receive extent must equal its chunk (zero included).
class ScattervImpl final : public CollImplBase {
 public:
  using CollImplBase::CollImplBase;

 protected:
  void begin(Image& image) override {
    started_ = true;
    if (team_rank() == desc().root) {
      const auto* in = static_cast<const std::uint8_t*>(desc().buf);
      for (int r = 0; r < team_size(); ++r) {
        const std::size_t bytes = desc().counts[static_cast<std::size_t>(r)];
        const std::size_t offset = displacement(desc().counts, r);
        if (r == team_rank()) {
          std::memcpy(desc().buf2, in + offset, bytes);
        } else {
          send_stage(image, r, 0, in + offset, bytes);
        }
      }
      have_chunk_ = true;
      mark_data_done(image, /*after_stages=*/true);
    } else if (pending_chunk_) {
      deliver(image);
    }
  }

  void handle(Image& image, CollStageMsg&& msg) override {
    chunk_ = std::move(msg.data);
    pending_chunk_ = true;
    if (started_) {
      deliver(image);
    }
  }

  bool role_done() const override { return started_ && have_chunk_; }

 private:
  void deliver(Image& image) {
    CAF2_ASSERT(chunk_.size() == desc().bytes2,
                "scatterv: chunk does not match this rank's receive extent");
    std::memcpy(desc().buf2, chunk_.data(), chunk_.size());
    have_chunk_ = true;
    pending_chunk_ = false;
    mark_data_done(image);
  }

  bool started_ = false;
  bool have_chunk_ = false;
  bool pending_chunk_ = false;
  std::vector<std::uint8_t> chunk_;
};

/// Variable-count all-to-all: desc().counts = per-destination send bytes,
/// desc().counts2 = per-source receive bytes; both packed by prefix sum.
/// Lifts alltoall's "extent divisible by team size" restriction.
class AlltoallvImpl final : public CollImplBase {
 public:
  using CollImplBase::CollImplBase;

 protected:
  void begin(Image& image) override {
    started_ = true;
    const int r = team_rank();
    const auto* in = static_cast<const std::uint8_t*>(desc().buf);
    CAF2_ASSERT(desc().counts[static_cast<std::size_t>(r)] ==
                    desc().counts2[static_cast<std::size_t>(r)],
                "alltoallv: send/recv counts disagree for the local pair");
    std::memcpy(static_cast<std::uint8_t*>(desc().buf2) +
                    displacement(desc().counts2, r),
                in + displacement(desc().counts, r),
                desc().counts[static_cast<std::size_t>(r)]);
    for (int to = 0; to < team_size(); ++to) {
      if (to != r) {
        send_stage(image, to, 0, in + displacement(desc().counts, to),
                   desc().counts[static_cast<std::size_t>(to)]);
      }
    }
    for (auto& [from, data] : pending_) {
      place(from, data);
    }
    pending_.clear();
    maybe_done(image);
  }

  void handle(Image& image, CollStageMsg&& msg) override {
    if (!started_) {
      pending_.emplace_back(msg.from_team_rank, std::move(msg.data));
      return;
    }
    place(msg.from_team_rank, msg.data);
    maybe_done(image);
  }

  bool role_done() const override {
    return started_ && received_ == team_size() - 1;
  }

 private:
  void place(int from, const std::vector<std::uint8_t>& data) {
    CAF2_ASSERT(data.size() ==
                    desc().counts2[static_cast<std::size_t>(from)],
                "alltoallv: arrival does not match the receive count");
    std::memcpy(static_cast<std::uint8_t*>(desc().buf2) +
                    displacement(desc().counts2, from),
                data.data(), data.size());
    ++received_;
  }

  void maybe_done(Image& image) {
    if (received_ == team_size() - 1) {
      mark_data_done(image, /*after_stages=*/true);
    }
  }

  bool started_ = false;
  int received_ = 0;
  std::vector<std::pair<int, std::vector<std::uint8_t>>> pending_;
};

}  // namespace

std::unique_ptr<CollImplBase> make_direct_impl(rt::CollKey key,
                                               CollDesc desc) {
  switch (desc.kind) {
    case CollKind::kGather:
      return std::make_unique<DirectGatherImpl>(key, std::move(desc));
    case CollKind::kScatter:
      return std::make_unique<DirectScatterImpl>(key, std::move(desc));
    case CollKind::kAllgather:
      return std::make_unique<DirectAllgatherImpl>(key, std::move(desc));
    case CollKind::kReduceScatter:
      return std::make_unique<DirectReduceScatterImpl>(key, std::move(desc));
    case CollKind::kGatherv:
      return std::make_unique<GathervImpl>(key, std::move(desc));
    case CollKind::kScatterv:
      return std::make_unique<ScattervImpl>(key, std::move(desc));
    case CollKind::kAlltoallv:
      return std::make_unique<AlltoallvImpl>(key, std::move(desc));
    default:
      throw UsageError("direct schedule: unsupported collective kind");
  }
}

}  // namespace caf2::ops::detail
