#include "ops/copy.hpp"

#include <cstring>

#include "runtime/internal.hpp"
#include "runtime/runtime.hpp"
#include "support/serialize.hpp"

namespace caf2::ops {

namespace {

using rt::Image;
using rt::Tracking;

/// Wire formats. All are trivially copyable and travel at the front of the
/// message payload (followed by raw data where applicable).
struct PutWire {
  std::uint64_t dst_coarray;
  std::uint64_t dst_offset_bytes;
  RemoteEvent dst_done;
};

struct GetReqWire {
  std::uint64_t src_coarray;
  std::uint64_t src_offset_bytes;
  std::uint64_t bytes;
  std::uint64_t sink_id;
  RemoteEvent src_done;
};

struct GetRespWire {
  std::uint64_t sink_id;
};

struct ForwardWire {
  std::uint64_t dst_coarray;
  std::uint64_t dst_offset_bytes;
  std::int32_t dst_image;
  std::uint64_t src_coarray;
  std::uint64_t src_offset_bytes;
  std::uint64_t bytes;
  RemoteEvent src_done;
  RemoteEvent dst_done;
};

struct ArmWire {
  std::uint64_t event_id;
  std::uint64_t plan_id;
  std::int32_t initiator;
};

struct FireWire {
  std::uint64_t plan_id;
};

/// Build a header attributed to \p finish (captured at initiation time, so
/// deferred plans still charge the right scope).
net::MessageHeader header_for(Image& image, int dest, net::HandlerId handler,
                              const net::FinishKey& finish) {
  net::MessageHeader h;
  h.source = image.rank();
  h.dest = dest;
  h.handler = handler;
  if (finish.valid()) {
    h.finish = finish;
    h.tracked = true;
    h.from_odd_epoch = image.finish_state(finish).present_odd();
  }
  return h;
}

void post_done(Image& image, const RemoteEvent& event) {
  if (event.valid()) {
    rt::post_event_raw(image.runtime(), image.rank(), event);
  }
}

/// Both end points are buffers local to \p image: a staged local memcpy.
/// A tracked local copy is charged to the finish as a self-message so the
/// scope cannot terminate before the copy completes.
void start_local_copy(Image& image, const CopyDesc& d, rt::ImplicitOpPtr op,
                      const net::FinishKey& finish) {
  const bool odd =
      finish.valid() ? image.finish_state(finish).present_odd() : false;
  if (finish.valid()) {
    image.finish_state(finish).count_sent(odd);
    image.finish_state(finish).count_sent_dest(image.rank());
  }
  const double inject =
      image.runtime().options().net.bandwidth_bytes_per_us > 0.0
          ? static_cast<double>(d.bytes) /
                image.runtime().options().net.bandwidth_bytes_per_us
          : 0.0;
  Image* img = &image;
  image.runtime().engine().post_in(inject, [img, d, op, finish, odd] {
    std::memcpy(d.dst_local, d.src_local, d.bytes);
    if (op) {
      op->data_complete = true;
      op->op_complete = true;
    }
    if (finish.valid()) {
      rt::FinishState& state = img->finish_state(finish);
      state.count_delivered(odd);
      state.count_received(odd);
      state.count_completed(odd);
    }
    post_done(*img, d.src_done);
    post_done(*img, d.dst_done);
    img->runtime().engine().unblock(img->rank());
  });
}

/// Source buffer is local to \p image, destination is a remote coarray
/// block: a one-sided put. The source buffer is read at staging time.
void start_put(Image& image, const CopyDesc& d, rt::ImplicitOpPtr op,
               const net::FinishKey& finish) {
  net::MessageHeader header =
      header_for(image, d.dst_image, rt::kHandlerCopyPut, finish);

  PutWire wire{d.dst_coarray, d.dst_offset_bytes, d.dst_done};
  const void* src = d.src_local;
  const std::uint64_t bytes = d.bytes;
  auto read = [wire, src, bytes] {
    WriteArchive archive;
    archive.write(wire);
    archive.write_bytes(src, bytes);
    return archive.take();
  };

  Image* img = &image;
  const RemoteEvent src_done = d.src_done;
  obs::Recorder* const rec = image.runtime().observer();
  const double obs_begin =
      rec != nullptr ? image.runtime().engine().now() : 0.0;
  const int dst_image = d.dst_image;
  net::SendCallbacks callbacks;
  callbacks.on_staged = [img, op, src_done] {
    if (op) {
      op->data_complete = true;
    }
    post_done(*img, src_done);
    img->runtime().engine().unblock(img->rank());
  };
  callbacks.on_acked = [img, op, rec, obs_begin, bytes, dst_image] {
    if (op) {
      op->op_complete = true;
    }
    if (rec != nullptr) {
      rec->op_span(img->rank(), obs::SpanKind::kPut, obs_begin,
                   img->runtime().engine().now(), bytes, 0, dst_image);
    }
    img->runtime().engine().unblock(img->rank());
  };
  image.send_staged_message(header, sizeof(PutWire) + bytes, std::move(read),
                            std::move(callbacks));
}

/// Destination buffer is local to \p image, source is a remote coarray
/// block: a get, implemented as request + staged response.
void start_get(Image& image, const CopyDesc& d, rt::ImplicitOpPtr op,
               const net::FinishKey& finish) {
  Image* img = &image;
  void* dst = d.dst_local;
  const std::uint64_t bytes = d.bytes;
  const RemoteEvent dst_done = d.dst_done;
  obs::Recorder* const rec = image.runtime().observer();
  const double obs_begin =
      rec != nullptr ? image.runtime().engine().now() : 0.0;
  const int src_image = d.src_image;
  const std::uint64_t sink_id =
      image.stash_get([img, dst, bytes, op, dst_done, rec, obs_begin,
                       src_image](std::span<const std::uint8_t> data) {
        CAF2_ASSERT(data.size() == bytes, "get response size mismatch");
        std::memcpy(dst, data.data(), data.size());
        if (op) {
          op->data_complete = true;
          op->op_complete = true;
        }
        if (rec != nullptr) {
          rec->op_span(img->rank(), obs::SpanKind::kGet, obs_begin,
                       img->runtime().engine().now(), bytes, 0, src_image);
        }
        post_done(*img, dst_done);
        img->runtime().engine().unblock(img->rank());
      });

  net::Message message;
  message.header =
      header_for(image, d.src_image, rt::kHandlerCopyGetReq, finish);
  WriteArchive archive;
  archive.write(GetReqWire{d.src_coarray, d.src_offset_bytes, d.bytes,
                           sink_id, d.src_done});
  message.payload = archive.take();
  image.send_message(std::move(message));
}

/// Neither end point is local: forward control to the source image, which
/// performs the transfer (a local copy or a put) on the initiator's behalf.
void start_forward(Image& image, const CopyDesc& d, rt::ImplicitOpPtr op,
                   const net::FinishKey& finish) {
  if (op) {
    op->data_complete = true;  // no initiator-local buffers are involved
  }
  net::Message message;
  message.header =
      header_for(image, d.src_image, rt::kHandlerCopyForward, finish);
  WriteArchive archive;
  archive.write(ForwardWire{d.dst_coarray, d.dst_offset_bytes,
                            d.dst_image, d.src_coarray, d.src_offset_bytes,
                            d.bytes, d.src_done, d.dst_done});
  message.payload = archive.take();

  Image* img = &image;
  net::SendCallbacks callbacks;
  callbacks.on_acked = [img, op] {
    if (op) {
      op->op_complete = true;  // pair-wise communication involving the
                               // initiator (the control message) is done
    }
    img->runtime().engine().unblock(img->rank());
  };
  image.send_message(std::move(message), std::move(callbacks));
}

void execute_plan(Image& image, const CopyDesc& d, rt::ImplicitOpPtr op,
                  const net::FinishKey& finish) {
  if (d.src_local != nullptr && d.dst_local != nullptr) {
    start_local_copy(image, d, std::move(op), finish);
  } else if (d.src_local != nullptr) {
    start_put(image, d, std::move(op), finish);
  } else if (d.dst_local != nullptr) {
    start_get(image, d, std::move(op), finish);
  } else {
    start_forward(image, d, std::move(op), finish);
  }
}

}  // namespace

void copy_async_bytes(CopyDesc desc) {
  Image& image = Image::current();

  // Normalize: slices that live on the initiating image become raw local
  // pointers, so the dispatch below only distinguishes local vs. remote.
  if (desc.dst_local == nullptr && desc.dst_image == image.rank()) {
    const rt::BlockInfo block = image.lookup_block(desc.dst_coarray);
    CAF2_REQUIRE(desc.dst_offset_bytes + desc.bytes <= block.bytes,
                 "copy_async: destination slice out of range");
    desc.dst_local =
        static_cast<std::uint8_t*>(block.data) + desc.dst_offset_bytes;
  }
  if (desc.src_local == nullptr && desc.src_image == image.rank()) {
    const rt::BlockInfo block = image.lookup_block(desc.src_coarray);
    CAF2_REQUIRE(desc.src_offset_bytes + desc.bytes <= block.bytes,
                 "copy_async: source slice out of range");
    desc.src_local = static_cast<const std::uint8_t*>(block.data) +
                     desc.src_offset_bytes;
  }

  // Implicit completion iff no completion events were supplied (paper §III:
  // the predicate event does not manage completion).
  const bool implicit = !desc.src_done.valid() && !desc.dst_done.valid();
  rt::ImplicitOpPtr op;
  if (implicit) {
    op = image.register_implicit(desc.src_local != nullptr,
                                 desc.dst_local != nullptr, "copy_async");
  }
  const net::FinishKey finish =
      implicit ? image.current_finish() : net::FinishKey{};

  if (!desc.pre.valid()) {
    execute_plan(image, desc, std::move(op), finish);
    return;
  }

  // Predicated copy: defer initiation until preE fires. A tracked deferred
  // copy is charged to the finish immediately (a self-message that completes
  // when the predicate fires), so the scope cannot terminate while the copy
  // is still waiting on its predicate.
  const bool odd =
      finish.valid() ? image.finish_state(finish).present_odd() : false;
  if (finish.valid()) {
    image.finish_state(finish).count_sent(odd);
    image.finish_state(finish).count_sent_dest(image.rank());
  }
  Image* img = &image;
  CopyDesc inner = desc;
  inner.pre = RemoteEvent{};
  auto plan = [img, inner, op, finish, odd] {
    if (finish.valid()) {
      rt::FinishState& state = img->finish_state(finish);
      state.count_delivered(odd);
      state.count_received(odd);
      state.count_completed(odd);
      img->runtime().engine().unblock(img->rank());
    }
    execute_plan(*img, inner, op, finish);
  };

  if (desc.pre.image == image.rank()) {
    Event* pre = image.find_event(desc.pre.event_id);
    CAF2_REQUIRE(pre != nullptr, "copy_async: unknown local predicate event");
    pre->when_posted(std::move(plan));
    return;
  }

  // Remote predicate: stash the plan here, arm a trigger on the predicate's
  // owner, which fires a control message back when the event posts.
  const std::uint64_t plan_id = image.stash_plan(std::move(plan));
  net::Message arm;
  arm.header = header_for(image, desc.pre.image, rt::kHandlerCopyArmPre,
                          net::FinishKey{});
  WriteArchive archive;
  archive.write(ArmWire{desc.pre.event_id, plan_id, image.rank()});
  arm.payload = archive.take();
  image.send_message(std::move(arm));
}

void install_copy_handlers(rt::Runtime& runtime) {
  runtime.set_handler(
      rt::kHandlerCopyPut, [](Image& image, net::Message&& message) {
        ReadArchive archive(message.payload);
        const auto wire = archive.read<PutWire>();
        const rt::BlockInfo block = image.lookup_block(wire.dst_coarray);
        const std::size_t bytes = archive.remaining();
        CAF2_REQUIRE(wire.dst_offset_bytes + bytes <= block.bytes,
                     "copy_async put out of range at destination");
        archive.read_bytes(
            static_cast<std::uint8_t*>(block.data) + wire.dst_offset_bytes,
            bytes);
        if (wire.dst_done.valid()) {
          rt::post_event_raw(image.runtime(), image.rank(), wire.dst_done);
        }
      });

  runtime.set_handler(
      rt::kHandlerCopyGetReq, [](Image& image, net::Message&& message) {
        ReadArchive archive(message.payload);
        const auto wire = archive.read<GetReqWire>();
        const rt::BlockInfo block = image.lookup_block(wire.src_coarray);
        CAF2_REQUIRE(wire.src_offset_bytes + wire.bytes <= block.bytes,
                     "copy_async get out of range at source");
        const std::uint8_t* src =
            static_cast<const std::uint8_t*>(block.data) +
            wire.src_offset_bytes;

        net::MessageHeader resp = header_for(
            image, message.header.source, rt::kHandlerCopyGetResp,
            message.header.tracked ? message.header.finish
                                   : net::FinishKey{});
        const std::uint64_t bytes = wire.bytes;
        const std::uint64_t sink = wire.sink_id;
        auto read = [src, bytes, sink] {
          WriteArchive out;
          out.write(GetRespWire{sink});
          out.write_bytes(src, bytes);
          return out.take();
        };
        Image* img = &image;
        const RemoteEvent src_done = wire.src_done;
        net::SendCallbacks callbacks;
        callbacks.on_staged = [img, src_done] {
          if (src_done.valid()) {
            rt::post_event_raw(img->runtime(), img->rank(), src_done);
          }
        };
        image.send_staged_message(resp, sizeof(GetRespWire) + bytes,
                                  std::move(read), std::move(callbacks));
      });

  runtime.set_handler(
      rt::kHandlerCopyGetResp, [](Image& image, net::Message&& message) {
        ReadArchive archive(message.payload);
        const auto wire = archive.read<GetRespWire>();
        const std::size_t data_size = archive.remaining();
        std::span<const std::uint8_t> data(
            message.payload.data() + (message.payload.size() - data_size),
            data_size);
        image.complete_get(wire.sink_id, data);
      });

  runtime.set_handler(
      rt::kHandlerCopyForward, [](Image& image, net::Message&& message) {
        ReadArchive archive(message.payload);
        const auto wire = archive.read<ForwardWire>();
        const rt::BlockInfo src_block = image.lookup_block(wire.src_coarray);
        CAF2_REQUIRE(wire.src_offset_bytes + wire.bytes <= src_block.bytes,
                     "forwarded copy out of range at source");

        CopyDesc d;
        d.src_image = image.rank();
        d.src_local = static_cast<const std::uint8_t*>(src_block.data) +
                      wire.src_offset_bytes;
        d.dst_image = wire.dst_image;
        d.dst_coarray = wire.dst_coarray;
        d.dst_offset_bytes = wire.dst_offset_bytes;
        d.bytes = wire.bytes;
        d.src_done = wire.src_done;
        d.dst_done = wire.dst_done;
        const net::FinishKey finish = message.header.tracked
                                          ? message.header.finish
                                          : net::FinishKey{};
        if (wire.dst_image == image.rank()) {
          const rt::BlockInfo dst_block =
              image.lookup_block(wire.dst_coarray);
          CAF2_REQUIRE(
              wire.dst_offset_bytes + wire.bytes <= dst_block.bytes,
              "forwarded copy out of range at destination");
          d.dst_local = static_cast<std::uint8_t*>(dst_block.data) +
                        wire.dst_offset_bytes;
          start_local_copy(image, d, nullptr, finish);
        } else {
          start_put(image, d, nullptr, finish);
        }
      });

  runtime.set_handler(
      rt::kHandlerCopyArmPre, [](Image& image, net::Message&& message) {
        ReadArchive archive(message.payload);
        const auto wire = archive.read<ArmWire>();
        Event* event = image.find_event(wire.event_id);
        CAF2_REQUIRE(event != nullptr,
                     "copy_async: unknown remote predicate event");
        rt::Runtime* runtime = &image.runtime();
        const int me = image.rank();
        event->when_posted([runtime, me, wire] {
          net::Message fire;
          fire.header.source = me;
          fire.header.dest = wire.initiator;
          fire.header.handler = rt::kHandlerCopyFire;
          WriteArchive out;
          out.write(FireWire{wire.plan_id});
          fire.payload = out.take();
          runtime->network().send(std::move(fire));
        });
      });

  runtime.set_handler(rt::kHandlerCopyFire,
                      [](Image& image, net::Message&& message) {
                        ReadArchive archive(message.payload);
                        const auto wire = archive.read<FireWire>();
                        image.fire_plan(wire.plan_id);
                      });
}

}  // namespace caf2::ops
