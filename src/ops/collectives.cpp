#include "ops/collectives.hpp"

#include <bit>
#include <cstring>

#include "obs/obs.hpp"
#include "ops/coll_algo.hpp"
#include "ops/coll_detail.hpp"
#include "runtime/internal.hpp"
#include "runtime/runtime.hpp"
#include "support/serialize.hpp"

namespace caf2::ops {

namespace detail {

using rt::CollKey;
using rt::CollStageMsg;
using rt::Image;

int binomial_parent(int vr) { return vr & (vr - 1); }

std::vector<int> binomial_children(int vr, int p) {
  std::vector<int> children;
  const unsigned low = vr == 0 ? ~0u : static_cast<unsigned>(vr & -vr);
  for (unsigned bit = 1; bit < low && vr + static_cast<int>(bit) < p;
       bit <<= 1) {
    children.push_back(vr + static_cast<int>(bit));
  }
  return children;
}

int ceil_log2(int p) {
  return p <= 1 ? 0 : std::bit_width(static_cast<unsigned>(p - 1));
}

int knomial_parent(int vr, int k) {
  if (vr == 0) {
    return -1;
  }
  int pw = 1;
  while ((vr / pw) % k == 0) {
    pw *= k;
  }
  return vr - ((vr / pw) % k) * pw;
}

std::vector<int> knomial_children(int vr, int p, int k) {
  std::vector<int> children;
  // low = k^(position of vr's lowest nonzero base-k digit); children live
  // at every strictly lower digit position. Root 0 has no nonzero digit, so
  // every position below log_k(p) applies.
  long low = p;
  if (vr != 0) {
    low = 1;
    while ((vr / low) % k == 0) {
      low *= k;
    }
  }
  for (long pw = 1; pw < low && pw < p; pw *= k) {
    for (int j = 1; j < k; ++j) {
      const long child = vr + j * pw;
      if (child < p) {
        children.push_back(static_cast<int>(child));
      }
    }
  }
  return children;
}

CollImplBase::CollImplBase(CollKey key, CollDesc desc)
    : key_(key), desc_(std::move(desc)) {}

void CollImplBase::on_stage(Image& image, CollStageMsg&& msg) {
  handle(image, std::move(msg));
  try_complete(image);
}

void CollImplBase::start(Image& image, const net::FinishKey& finish,
                         rt::ImplicitOpPtr op) {
  finish_ = finish;
  op_ = std::move(op);
  begin_us_ = image.runtime().engine().now();
  begin(image);
  try_complete(image);
}

void CollImplBase::send_stage(Image& image, int to_team_rank, int stage,
                              const void* data, std::size_t bytes) {
  net::Message message;
  message.header.source = image.rank();
  message.header.dest = desc_.team.world_rank(to_team_rank);
  message.header.handler = rt::kHandlerCollective;
  if (finish_.valid()) {
    message.header.finish = finish_;
    message.header.tracked = true;
    message.header.from_odd_epoch =
        image.finish_state(finish_).present_odd();
  }
  WriteArchive archive;
  archive.write(key_);
  archive.write(static_cast<std::int32_t>(stage));
  archive.write(static_cast<std::int32_t>(desc_.team.rank()));
  if (bytes > 0) {
    archive.write_bytes(data, bytes);
  }
  message.payload = archive.take();

  ++pending_stage_;
  ++pending_ack_;
  Image* img = &image;
  net::SendCallbacks callbacks;
  callbacks.on_staged = [this, img] {
    --pending_stage_;
    try_complete(*img);
    img->runtime().engine().unblock(img->rank());
  };
  callbacks.on_acked = [this, img] {
    --pending_ack_;
    try_complete(*img);
    img->runtime().engine().unblock(img->rank());
  };
  image.send_message(std::move(message), std::move(callbacks));
}

void CollImplBase::mark_data_done(Image& image, bool after_stages) {
  if (after_stages && pending_stage_ > 0) {
    data_after_stages_ = true;
    return;
  }
  if (data_done_) {
    return;
  }
  data_done_ = true;
  if (op_) {
    op_->data_complete = true;
  }
  if (desc_.src_done.valid()) {
    rt::post_event_raw(image.runtime(), image.rank(), desc_.src_done);
  }
  image.runtime().engine().unblock(image.rank());
}

void CollImplBase::try_complete(Image& image) {
  if (data_after_stages_ && pending_stage_ == 0) {
    data_after_stages_ = false;
    mark_data_done(image);
  }
  if (op_done_ || !role_done() || pending_stage_ > 0 || pending_ack_ > 0) {
    return;
  }
  // Local operation completion: role complete and every stage this image
  // sent has been injected and acknowledged.
  op_done_ = true;
  if (!data_done_) {
    mark_data_done(image);
  }
  if (op_) {
    op_->op_complete = true;
  }
  if (desc_.local_done.valid()) {
    rt::post_event_raw(image.runtime(), image.rank(), desc_.local_done);
  }
  // Satellite: every collective stamps its resolved schedule into the span
  // label ("kind/algorithm"), so trace exports show which schedule ran.
  // Appending a span never schedules events, so obs on/off stays
  // schedule-identical.
  if (obs::Recorder* const rec = image.runtime().observer()) {
    rec->op_span(image.rank(), obs::SpanKind::kCollective, begin_us_,
                 image.runtime().engine().now(), desc_.bytes,
                 static_cast<std::uint64_t>(team_size()), -1,
                 coll_span_label(desc_.kind, desc_.algorithm));
  }
  image.runtime().engine().unblock(image.rank());
  erasable_ = true;
}

}  // namespace detail

namespace {

using detail::binomial_children;
using detail::binomial_parent;
using detail::ceil_log2;
using detail::CollImplBase;
using rt::CollKey;
using rt::CollStageMsg;
using rt::Image;

/// Dissemination barrier: round k sends a token to (rank + 2^k) mod p and
/// waits for the token from (rank - 2^k) mod p.
class BarrierImpl final : public CollImplBase {
 public:
  using CollImplBase::CollImplBase;

 protected:
  void begin(Image& image) override {
    rounds_ = ceil_log2(team_size());
    got_.assign(static_cast<std::size_t>(rounds_), false);
    started_ = true;
    pump(image);
  }

  void handle(Image& image, CollStageMsg&& msg) override {
    if (static_cast<std::size_t>(msg.stage) >= got_.size()) {
      got_.resize(static_cast<std::size_t>(msg.stage) + 1, false);
    }
    got_[static_cast<std::size_t>(msg.stage)] = true;
    if (started_) {
      pump(image);
    }
  }

  bool role_done() const override { return started_ && round_ == rounds_; }

 private:
  void pump(Image& image) {
    const int p = team_size();
    while (round_ < rounds_) {
      if (!sent_current_) {
        send_stage(image, (team_rank() + (1 << round_)) % p, round_, nullptr,
                   0);
        sent_current_ = true;
      }
      if (static_cast<std::size_t>(round_) >= got_.size() ||
          !got_[static_cast<std::size_t>(round_)]) {
        return;
      }
      ++round_;
      sent_current_ = false;
    }
    mark_data_done(image);
  }

  int rounds_ = 0;
  int round_ = 0;
  bool sent_current_ = false;
  bool started_ = false;
  std::vector<bool> got_;
};

/// Binomial broadcast from desc().root.
class BroadcastImpl final : public CollImplBase {
 public:
  using CollImplBase::CollImplBase;

 protected:
  void begin(Image& image) override {
    started_ = true;
    if (team_rank() == desc().root) {
      have_data_ = true;
      forward(image);
      mark_data_done(image, /*after_stages=*/true);
    } else if (pending_payload_) {
      deliver(image);
    }
  }

  void handle(Image& image, CollStageMsg&& msg) override {
    payload_ = std::move(msg.data);
    pending_payload_ = true;
    if (started_) {
      deliver(image);
    }
  }

  bool role_done() const override { return started_ && have_data_; }

 private:
  int vrank() const {
    const int p = team_size();
    return (team_rank() - desc().root + p) % p;
  }

  void forward(Image& image) {
    const int p = team_size();
    for (int child : binomial_children(vrank(), p)) {
      send_stage(image, (child + desc().root) % p, 0, desc().buf,
                 desc().bytes);
    }
  }

  void deliver(Image& image) {
    CAF2_ASSERT(payload_.size() == desc().bytes, "broadcast size mismatch");
    std::memcpy(desc().buf, payload_.data(), payload_.size());
    have_data_ = true;
    pending_payload_ = false;
    forward(image);
    mark_data_done(image);
  }

  bool started_ = false;
  bool have_data_ = false;
  bool pending_payload_ = false;
  std::vector<std::uint8_t> payload_;
};

/// Binomial reduction toward desc().root.
class ReduceImpl final : public CollImplBase {
 public:
  using CollImplBase::CollImplBase;

 protected:
  void begin(Image& image) override {
    started_ = true;
    acc_.resize(desc().bytes);
    std::memcpy(acc_.data(), desc().buf, desc().bytes);
    expected_ =
        static_cast<int>(binomial_children(vrank(), team_size()).size());
    if (team_rank() != desc().root) {
      mark_data_done(image);  // inputs captured; user buffer reusable
    }
    for (auto& pending : pending_msgs_) {
      absorb(pending);
    }
    pending_msgs_.clear();
    try_advance(image);
  }

  void handle(Image& image, CollStageMsg&& msg) override {
    if (!started_) {
      pending_msgs_.push_back(std::move(msg.data));
      return;
    }
    absorb(msg.data);
    try_advance(image);
  }

  bool role_done() const override { return started_ && done_; }

 private:
  int vrank() const {
    const int p = team_size();
    return (team_rank() - desc().root + p) % p;
  }

  void absorb(const std::vector<std::uint8_t>& data) {
    CAF2_ASSERT(data.size() == desc().bytes, "reduce size mismatch");
    const Reducer& reducer = desc().reducer;
    reducer.combine(acc_.data(), data.data(),
                    desc().bytes / reducer.elem_size);
    ++got_;
  }

  void try_advance(Image& image) {
    if (done_ || got_ < expected_) {
      return;
    }
    done_ = true;
    if (team_rank() == desc().root) {
      std::memcpy(desc().buf, acc_.data(), acc_.size());
      mark_data_done(image);
    } else {
      const int p = team_size();
      send_stage(image, (binomial_parent(vrank()) + desc().root) % p, 0,
                 acc_.data(), acc_.size());
    }
  }

  bool started_ = false;
  bool done_ = false;
  int expected_ = 0;
  int got_ = 0;
  std::vector<std::uint8_t> acc_;
  std::vector<std::vector<std::uint8_t>> pending_msgs_;
};

/// Allreduce = binomial reduce to team rank 0 (stage 0) + binomial broadcast
/// from team rank 0 (stage 1): one pass through a reduction tree and one
/// through a broadcast tree, the structure the paper's critical-path bound
/// assumes.
class AllreduceImpl final : public CollImplBase {
 public:
  using CollImplBase::CollImplBase;

  static constexpr int kStageReduce = 0;
  static constexpr int kStageBcast = 1;

 protected:
  void begin(Image& image) override {
    started_ = true;
    acc_.resize(desc().bytes);
    std::memcpy(acc_.data(), desc().buf, desc().bytes);
    expected_ = static_cast<int>(
        binomial_children(team_rank(), team_size()).size());
    for (auto& pending : pending_reduce_) {
      absorb(pending);
    }
    pending_reduce_.clear();
    try_reduce(image);
    if (pending_bcast_) {
      deliver(image);
    }
  }

  void handle(Image& image, CollStageMsg&& msg) override {
    if (msg.stage == kStageReduce) {
      if (!started_) {
        pending_reduce_.push_back(std::move(msg.data));
        return;
      }
      absorb(msg.data);
      try_reduce(image);
    } else {
      bcast_payload_ = std::move(msg.data);
      pending_bcast_ = true;
      if (started_) {
        deliver(image);
      }
    }
  }

  bool role_done() const override { return started_ && have_result_; }

 private:
  void absorb(const std::vector<std::uint8_t>& data) {
    CAF2_ASSERT(data.size() == desc().bytes, "allreduce size mismatch");
    const Reducer& reducer = desc().reducer;
    reducer.combine(acc_.data(), data.data(),
                    desc().bytes / reducer.elem_size);
    ++got_;
  }

  void try_reduce(Image& image) {
    if (reduce_done_ || got_ < expected_) {
      return;
    }
    reduce_done_ = true;
    if (team_rank() == 0) {
      std::memcpy(desc().buf, acc_.data(), acc_.size());
      have_result_ = true;
      for (int child : binomial_children(0, team_size())) {
        send_stage(image, child, kStageBcast, desc().buf, desc().bytes);
      }
      mark_data_done(image);
    } else {
      send_stage(image, binomial_parent(team_rank()), kStageReduce,
                 acc_.data(), acc_.size());
    }
  }

  void deliver(Image& image) {
    CAF2_ASSERT(bcast_payload_.size() == desc().bytes,
                "allreduce broadcast size mismatch");
    std::memcpy(desc().buf, bcast_payload_.data(), bcast_payload_.size());
    pending_bcast_ = false;
    have_result_ = true;
    for (int child : binomial_children(team_rank(), team_size())) {
      send_stage(image, child, kStageBcast, desc().buf, desc().bytes);
    }
    mark_data_done(image);
  }

  bool started_ = false;
  bool reduce_done_ = false;
  bool have_result_ = false;
  bool pending_bcast_ = false;
  int expected_ = 0;
  int got_ = 0;
  std::vector<std::uint8_t> acc_;
  std::vector<std::uint8_t> bcast_payload_;
  std::vector<std::vector<std::uint8_t>> pending_reduce_;
};

/// Binomial gather toward desc().root. Each interior node accumulates its
/// whole subtree's contributions (tagged with their team ranks) before
/// sending one combined message to its parent. The subtree of relative rank
/// vr covers [vr, vr + lowbit(vr)) clipped to p.
class GatherImpl final : public CollImplBase {
 public:
  using CollImplBase::CollImplBase;

 protected:
  void begin(Image& image) override {
    started_ = true;
    chunks_.emplace_back(team_rank(),
                         std::vector<std::uint8_t>(
                             static_cast<const std::uint8_t*>(desc().buf),
                             static_cast<const std::uint8_t*>(desc().buf) +
                                 desc().bytes));
    if (team_rank() != desc().root) {
      mark_data_done(image);  // contribution captured
    }
    for (auto& pending : pending_msgs_) {
      absorb(std::move(pending));
    }
    pending_msgs_.clear();
    try_advance(image);
  }

  void handle(Image& image, CollStageMsg&& msg) override {
    if (!started_) {
      pending_msgs_.push_back(std::move(msg.data));
      return;
    }
    absorb(std::move(msg.data));
    try_advance(image);
  }

  bool role_done() const override { return started_ && done_; }

 private:
  int vrank() const {
    const int p = team_size();
    return (team_rank() - desc().root + p) % p;
  }

  int subtree_size() const {
    const int p = team_size();
    const int vr = vrank();
    const int low = vr == 0 ? p : (vr & -vr);
    return std::min(low, p - vr);
  }

  void absorb(std::vector<std::uint8_t>&& data) {
    ReadArchive archive(data);
    const auto count = archive.read<std::int32_t>();
    for (int i = 0; i < count; ++i) {
      const auto rank = archive.read<std::int32_t>();
      std::vector<std::uint8_t> chunk(desc().bytes);
      archive.read_bytes(chunk.data(), chunk.size());
      chunks_.emplace_back(rank, std::move(chunk));
    }
  }

  void try_advance(Image& image) {
    if (done_ || static_cast<int>(chunks_.size()) < subtree_size()) {
      return;
    }
    done_ = true;
    if (team_rank() == desc().root) {
      auto* out = static_cast<std::uint8_t*>(desc().buf2);
      for (const auto& [rank, chunk] : chunks_) {
        std::memcpy(out + static_cast<std::size_t>(rank) * desc().bytes,
                    chunk.data(), chunk.size());
      }
      mark_data_done(image);
    } else {
      WriteArchive archive;
      archive.write(static_cast<std::int32_t>(chunks_.size()));
      for (const auto& [rank, chunk] : chunks_) {
        archive.write(static_cast<std::int32_t>(rank));
        archive.write_bytes(chunk.data(), chunk.size());
      }
      const auto packed = archive.take();
      const int p = team_size();
      send_stage(image, (binomial_parent(vrank()) + desc().root) % p, 0,
                 packed.data(), packed.size());
    }
  }

  bool started_ = false;
  bool done_ = false;
  std::vector<std::pair<int, std::vector<std::uint8_t>>> chunks_;
  std::vector<std::vector<std::uint8_t>> pending_msgs_;
};

/// Binomial scatter from desc().root: each node receives the packed chunks
/// of its whole subtree and forwards sub-ranges to its children.
class ScatterImpl final : public CollImplBase {
 public:
  using CollImplBase::CollImplBase;

 protected:
  void begin(Image& image) override {
    started_ = true;
    if (team_rank() == desc().root) {
      // Pack [rank, chunk] pairs for the whole team from the send buffer.
      const auto* in = static_cast<const std::uint8_t*>(desc().buf);
      const std::size_t chunk = desc().bytes2;
      std::vector<std::pair<int, std::vector<std::uint8_t>>> all;
      all.reserve(static_cast<std::size_t>(team_size()));
      for (int r = 0; r < team_size(); ++r) {
        all.emplace_back(
            r, std::vector<std::uint8_t>(
                   in + static_cast<std::size_t>(r) * chunk,
                   in + static_cast<std::size_t>(r + 1) * chunk));
      }
      distribute(image, all);
      mark_data_done(image, /*after_stages=*/true);
      have_chunk_ = true;
    } else if (!pending_.empty()) {
      auto data = std::move(pending_);
      pending_.clear();
      accept(image, std::move(data));
    }
  }

  void handle(Image& image, CollStageMsg&& msg) override {
    if (!started_) {
      pending_ = std::move(msg.data);
      return;
    }
    accept(image, std::move(msg.data));
  }

  bool role_done() const override { return started_ && have_chunk_; }

 private:
  int vrank() const {
    const int p = team_size();
    return (team_rank() - desc().root + p) % p;
  }

  void accept(Image& image, std::vector<std::uint8_t>&& data) {
    ReadArchive archive(data);
    const auto count = archive.read<std::int32_t>();
    std::vector<std::pair<int, std::vector<std::uint8_t>>> mine;
    mine.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
      const auto rank = archive.read<std::int32_t>();
      std::vector<std::uint8_t> chunk(desc().bytes2);
      archive.read_bytes(chunk.data(), chunk.size());
      if (rank == team_rank()) {
        std::memcpy(desc().buf2, chunk.data(), chunk.size());
      } else {
        mine.emplace_back(rank, std::move(chunk));
      }
    }
    distribute(image, mine);
    have_chunk_ = true;
    mark_data_done(image);
    try_complete(image);
  }

  void distribute(
      Image& image,
      const std::vector<std::pair<int, std::vector<std::uint8_t>>>& all) {
    const int p = team_size();
    for (int child : binomial_children(vrank(), p)) {
      const int low = child & -child;
      const int child_end = std::min(child + low, p);
      WriteArchive archive;
      std::int32_t count = 0;
      for (const auto& [rank, chunk] : all) {
        const int vr = (rank - desc().root + p) % p;
        if (vr >= child && vr < child_end) {
          ++count;
        }
      }
      archive.write(count);
      for (const auto& [rank, chunk] : all) {
        const int vr = (rank - desc().root + p) % p;
        if (vr >= child && vr < child_end) {
          archive.write(static_cast<std::int32_t>(rank));
          archive.write_bytes(chunk.data(), chunk.size());
        }
      }
      const auto packed = archive.take();
      send_stage(image, (child + desc().root) % p, 0, packed.data(),
                 packed.size());
      // Root's own chunk when this node is the root:
    }
    if (team_rank() == desc().root) {
      const auto* in = static_cast<const std::uint8_t*>(desc().buf);
      std::memcpy(desc().buf2,
                  in + static_cast<std::size_t>(team_rank()) * desc().bytes2,
                  desc().bytes2);
    }
  }

  bool started_ = false;
  bool have_chunk_ = false;
  std::vector<std::uint8_t> pending_;
};

/// Direct all-to-all personalized exchange: p-1 tagged sends, p-1 receives.
class AlltoallImpl final : public CollImplBase {
 public:
  using CollImplBase::CollImplBase;

 protected:
  void begin(Image& image) override {
    started_ = true;
    const std::size_t chunk =
        desc().bytes / static_cast<std::size_t>(team_size());
    const auto* in = static_cast<const std::uint8_t*>(desc().buf);
    // Own chunk moves locally.
    std::memcpy(static_cast<std::uint8_t*>(desc().buf2) +
                    static_cast<std::size_t>(team_rank()) * chunk,
                in + static_cast<std::size_t>(team_rank()) * chunk, chunk);
    for (int r = 0; r < team_size(); ++r) {
      if (r != team_rank()) {
        send_stage(image, r, 0, in + static_cast<std::size_t>(r) * chunk,
                   chunk);
      }
    }
    for (auto& [from, data] : pending_) {
      place(from, data);
    }
    pending_.clear();
    maybe_data_done(image);
  }

  void handle(Image& image, CollStageMsg&& msg) override {
    if (!started_) {
      pending_.emplace_back(msg.from_team_rank, std::move(msg.data));
      return;
    }
    place(msg.from_team_rank, msg.data);
    maybe_data_done(image);
  }

  bool role_done() const override {
    return started_ && received_ == team_size() - 1;
  }

 private:
  void place(int from, const std::vector<std::uint8_t>& data) {
    const std::size_t chunk =
        desc().bytes2 / static_cast<std::size_t>(team_size());
    CAF2_ASSERT(data.size() == chunk, "alltoall chunk size mismatch");
    std::memcpy(static_cast<std::uint8_t*>(desc().buf2) +
                    static_cast<std::size_t>(from) * chunk,
                data.data(), data.size());
    ++received_;
  }

  /// Local data completion needs both directions: the send buffer injected
  /// (reads) and every incoming chunk placed (writes) — an alltoall both
  /// reads and writes initiator-local data.
  void maybe_data_done(Image& image) {
    if (received_ == team_size() - 1) {
      mark_data_done(image, /*after_stages=*/true);
    }
  }

  bool started_ = false;
  int received_ = 0;
  std::vector<std::pair<int, std::vector<std::uint8_t>>> pending_;
};

/// Hillis-Steele inclusive scan: in round k, rank r sends its running
/// prefix to r + 2^k and folds in the prefix received from r - 2^k. After
/// ceil(log2 p) rounds the accumulator holds the prefix over ranks [0, r].
/// The exclusive variant ships the prefix *before* folding in its own
/// contribution.
class ScanImpl final : public CollImplBase {
 public:
  using CollImplBase::CollImplBase;

 protected:
  void begin(Image& image) override {
    started_ = true;
    rounds_ = ceil_log2(team_size());
    acc_.assign(static_cast<const std::uint8_t*>(desc().buf),
                static_cast<const std::uint8_t*>(desc().buf) + desc().bytes);
    // carry_ = reduction over strictly-lower ranks (identity-free: tracked
    // with a has_carry_ flag instead of requiring an identity element).
    got_.resize(static_cast<std::size_t>(rounds_));
    pump(image);
  }

  void handle(Image& image, CollStageMsg&& msg) override {
    const auto k = static_cast<std::size_t>(msg.stage);
    if (k >= got_.size()) {
      got_.resize(k + 1);
    }
    got_[k] = std::move(msg.data);
    has_got_.resize(std::max(has_got_.size(), k + 1), false);
    has_got_[k] = true;
    if (started_) {
      pump(image);
    }
  }

  bool role_done() const override { return started_ && round_ == rounds_; }

 private:
  void pump(Image& image) {
    const int p = team_size();
    while (round_ < rounds_) {
      const int dist = 1 << round_;
      if (!sent_current_) {
        if (team_rank() + dist < p) {
          send_stage(image, team_rank() + dist, round_, acc_.data(),
                     acc_.size());
        }
        sent_current_ = true;
      }
      if (team_rank() - dist >= 0) {
        if (static_cast<std::size_t>(round_) >= has_got_.size() ||
            !has_got_[static_cast<std::size_t>(round_)]) {
          return;  // wait for this round's prefix
        }
        const auto& incoming = got_[static_cast<std::size_t>(round_)];
        if (!has_carry_) {
          carry_ = incoming;
          has_carry_ = true;
        } else {
          desc().reducer.combine(carry_.data(), incoming.data(),
                                 carry_.size() / desc().reducer.elem_size);
        }
        // Fold the incoming prefix into the running accumulator too: the
        // accumulator is what later rounds forward.
        desc().reducer.combine(acc_.data(), incoming.data(),
                               acc_.size() / desc().reducer.elem_size);
      }
      ++round_;
      sent_current_ = false;
    }
    // Done: write the result into the user buffer.
    if (desc().exclusive_scan) {
      if (has_carry_) {
        std::memcpy(desc().buf, carry_.data(), carry_.size());
      }
      // Rank 0's buffer is left unchanged (no identity element available).
    } else {
      std::memcpy(desc().buf, acc_.data(), acc_.size());
    }
    mark_data_done(image);
  }

  int rounds_ = 0;
  int round_ = 0;
  bool sent_current_ = false;
  bool started_ = false;
  bool has_carry_ = false;
  std::vector<std::uint8_t> acc_;
  std::vector<std::uint8_t> carry_;
  std::vector<std::vector<std::uint8_t>> got_;
  std::vector<bool> has_got_;
};

/// Dispatch on (kind, resolved algorithm). The legacy schedules live in
/// this file; the alternative families live in coll_algo_*.cpp behind the
/// detail::make_*_impl factories. resolve_algorithm() already rejected
/// unsupported pairings and clamped structurally impossible ones, so an
/// unhandled combination here is a programming error.
std::unique_ptr<CollImplBase> make_impl(CollKind kind, CollKey key,
                                        CollDesc desc) {
  const CollAlgorithm algorithm = desc.algorithm;
  switch (kind) {
    case CollKind::kBarrier:
      if (algorithm == CollAlgorithm::kBinomialTree) {
        return detail::make_tree_barrier_impl(key, std::move(desc));
      }
      return std::make_unique<BarrierImpl>(key, std::move(desc));
    case CollKind::kBroadcast:
      if (algorithm == CollAlgorithm::kKnomialTree) {
        return detail::make_knomial_impl(key, std::move(desc));
      }
      if (algorithm == CollAlgorithm::kRing) {
        return detail::make_ring_impl(key, std::move(desc));
      }
      return std::make_unique<BroadcastImpl>(key, std::move(desc));
    case CollKind::kReduce:
      if (algorithm == CollAlgorithm::kKnomialTree) {
        return detail::make_knomial_impl(key, std::move(desc));
      }
      return std::make_unique<ReduceImpl>(key, std::move(desc));
    case CollKind::kAllreduce:
      if (algorithm == CollAlgorithm::kRing) {
        return detail::make_ring_impl(key, std::move(desc));
      }
      if (algorithm == CollAlgorithm::kRecursiveDoubling) {
        return detail::make_rd_impl(key, std::move(desc));
      }
      return std::make_unique<AllreduceImpl>(key, std::move(desc));
    case CollKind::kGather:
      if (algorithm == CollAlgorithm::kDirect) {
        return detail::make_direct_impl(key, std::move(desc));
      }
      return std::make_unique<GatherImpl>(key, std::move(desc));
    case CollKind::kScatter:
      if (algorithm == CollAlgorithm::kDirect) {
        return detail::make_direct_impl(key, std::move(desc));
      }
      return std::make_unique<ScatterImpl>(key, std::move(desc));
    case CollKind::kAlltoall:
      return std::make_unique<AlltoallImpl>(key, std::move(desc));
    case CollKind::kScan:
      return std::make_unique<ScanImpl>(key, std::move(desc));
    case CollKind::kSort:
      return detail::make_sort_impl(key, std::move(desc));
    case CollKind::kAllgather:
      if (algorithm == CollAlgorithm::kRecursiveDoubling) {
        return detail::make_rd_impl(key, std::move(desc));
      }
      if (algorithm == CollAlgorithm::kDirect) {
        return detail::make_direct_impl(key, std::move(desc));
      }
      return detail::make_ring_impl(key, std::move(desc));
    case CollKind::kReduceScatter:
      if (algorithm == CollAlgorithm::kDirect) {
        return detail::make_direct_impl(key, std::move(desc));
      }
      return detail::make_ring_impl(key, std::move(desc));
    case CollKind::kGatherv:
    case CollKind::kScatterv:
    case CollKind::kAlltoallv:
      return detail::make_direct_impl(key, std::move(desc));
  }
  throw UsageError("unknown collective kind");
}

/// Per-kind cofence classification: does the operation read / write
/// initiator-local data? (paper Fig. 4 rows)
void classify(const CollDesc& desc, bool& reads, bool& writes) {
  switch (desc.kind) {
    case CollKind::kBarrier:
      reads = writes = false;
      break;
    case CollKind::kBroadcast:
      reads = desc.team.rank() == desc.root;
      writes = !reads;
      break;
    case CollKind::kReduce:
      reads = true;
      writes = desc.team.rank() == desc.root;
      break;
    case CollKind::kAllreduce:
    case CollKind::kScan:
    case CollKind::kAlltoall:
    case CollKind::kSort:
      reads = writes = true;
      break;
    case CollKind::kGather:
      reads = true;
      writes = desc.team.rank() == desc.root;
      break;
    case CollKind::kScatter:
      reads = desc.team.rank() == desc.root;
      writes = true;
      break;
    case CollKind::kAllgather:
    case CollKind::kReduceScatter:
    case CollKind::kAlltoallv:
      reads = writes = true;
      break;
    case CollKind::kGatherv:
      reads = true;
      writes = desc.team.rank() == desc.root;
      break;
    case CollKind::kScatterv:
      reads = desc.team.rank() == desc.root;
      writes = true;
      break;
  }
}

}  // namespace

void start_collective(CollDesc desc) {
  Image& image = Image::current();
  CAF2_REQUIRE(desc.team.valid(), "collective on an invalid team");
  CAF2_REQUIRE(desc.team.rank_of_world(image.rank()) == desc.team.rank(),
               "collective caller is not a member of the team");

  // Resolve kAuto to a concrete schedule. Every resolution input must be
  // team-uniform so all members independently pick the same schedule and
  // the stage machinery stays in lockstep: kind and team size trivially
  // are; for the payload we use the per-member chunk (bytes2) for scatter
  // kinds — desc.bytes is root-only there — and the contribution size
  // (bytes) everywhere else.
  const std::size_t uniform_bytes =
      (desc.kind == CollKind::kScatter || desc.kind == CollKind::kScatterv)
          ? desc.bytes2
          : desc.bytes;
  desc.algorithm = resolve_algorithm(desc.kind, desc.algorithm,
                                     desc.team.size(), uniform_bytes);

  const bool implicit =
      !desc.src_done.valid() && !desc.local_done.valid();
  rt::ImplicitOpPtr op;
  net::FinishKey finish{};
  if (implicit) {
    bool reads = false;
    bool writes = false;
    classify(desc, reads, writes);
    op = image.register_implicit(reads, writes, "collective");
    finish = image.current_finish();
    if (finish.valid()) {
      const auto finish_team = image.find_team(finish.team);
      CAF2_ASSERT(finish_team != nullptr, "finish team unknown");
      CAF2_REQUIRE(Team(finish_team).contains_team(desc.team),
                   "collective team is not a subset of the enclosing "
                   "finish team");
    }
  }

  const CollKey key{desc.team.id(), image.next_coll_seq(desc.team.id())};
  rt::PendingColl& pending = image.coll_state(key);
  CAF2_ASSERT(pending.op == nullptr, "collective sequence collision");
  auto impl = make_impl(desc.kind, key, desc);
  auto* raw = static_cast<CollImplBase*>(impl.get());
  pending.op = std::move(impl);
  raw->start(image, finish, std::move(op));

  auto buffered = std::move(pending.buffered);
  pending.buffered.clear();
  for (auto& msg : buffered) {
    raw->on_stage(image, std::move(msg));
  }
  if (raw->finished()) {
    image.erase_coll_state(key);
  }
}

void install_collective_handlers(rt::Runtime& runtime) {
  runtime.set_handler(
      rt::kHandlerCollective, [](Image& image, net::Message&& message) {
        ReadArchive archive(message.payload);
        const auto key = archive.read<CollKey>();
        const auto stage = archive.read<std::int32_t>();
        const auto from = archive.read<std::int32_t>();
        CollStageMsg msg;
        msg.stage = stage;
        msg.from_team_rank = from;
        msg.data.resize(archive.remaining());
        if (!msg.data.empty()) {
          archive.read_bytes(msg.data.data(), msg.data.size());
        }

        rt::PendingColl& pending = image.coll_state(key);
        if (pending.op != nullptr) {
          pending.op->on_stage(image, std::move(msg));
          if (pending.op->finished()) {
            image.erase_coll_state(key);
          }
        } else {
          pending.buffered.push_back(std::move(msg));
        }
      });
}

}  // namespace caf2::ops

namespace caf2 {

void barrier_async(const Team& team, CollOptions options) {
  ops::CollDesc desc;
  desc.kind = ops::CollKind::kBarrier;
  desc.team = team;
  desc.algorithm = options.algorithm;
  desc.src_done = options.src_done;
  desc.local_done = options.local_done;
  ops::start_collective(desc);
}

void team_barrier(const Team& team) {
  rt::Image& image = rt::Image::current();
  obs::Recorder* const rec = image.runtime().observer();
  const double obs_begin =
      rec != nullptr ? image.runtime().engine().now() : 0.0;
  {
    // Scope the completion wait so it is not misclassified as event-wait
    // time: a barrier wait blocked on the wire lands in the network bucket,
    // everything else in "other".
    obs::BlameScope blame(rec, image.rank(), obs::Blame::kOther);
    Event done;
    barrier_async(team, {.local_done = done.handle()});
    done.wait();
  }
  if (rec != nullptr) {
    rec->op_span(image.rank(), obs::SpanKind::kCollective, obs_begin,
                 image.runtime().engine().now(), 0, 0, -1, "barrier");
  }
}

}  // namespace caf2
