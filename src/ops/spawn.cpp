#include "ops/spawn.hpp"

#include "runtime/internal.hpp"
#include "runtime/runtime.hpp"

namespace caf2::ops {

namespace {

using rt::Image;

struct SpawnWire {
  std::uint64_t trampoline;  ///< in-process function pointer (handler index)
  RemoteEvent done;
};

}  // namespace

void spawn_bytes(int target, TrampolineFn fn,
                 std::vector<std::uint8_t> args, RemoteEvent done) {
  Image& image = Image::current();
  CAF2_REQUIRE(target >= 0 && target < image.num_images(),
               "spawn: target image out of range");

  WriteArchive archive;
  archive.write(SpawnWire{reinterpret_cast<std::uint64_t>(fn), done});
  archive.write_bytes(args.data(), args.size());

  const std::uint32_t limit =
      image.runtime().options().net.max_medium_payload;
  CAF2_REQUIRE(
      archive.size() <= limit,
      "spawn: marshalled arguments exceed the medium active-message "
      "payload limit (" +
          std::to_string(archive.size()) + " > " + std::to_string(limit) +
          " bytes)");

  // Spawns are always charged to the enclosing finish scope (even when the
  // caller supplied a completion event): a shipped function can transitively
  // spawn implicit work, and the scope must not terminate under it.
  net::Message message;
  message.header =
      image.make_header(target, rt::kHandlerSpawn, rt::Tracking::kTracked);
  message.payload = archive.take();

  // Cofence tracking only applies to implicitly-synchronized spawns. Local
  // data completion = the argument payload has been injected; local
  // operation completion = delivery acknowledged (see DESIGN.md §4.2 for the
  // deviation from "complete on target", which explicit events do honor).
  rt::ImplicitOpPtr op;
  if (!done.valid()) {
    op = image.register_implicit(/*reads_local=*/true, /*writes_local=*/false,
                                 "spawn");
  }
  Image* img = &image;
  obs::Recorder* const rec = image.runtime().observer();
  const double obs_begin =
      rec != nullptr ? image.runtime().engine().now() : 0.0;
  const std::uint64_t payload_bytes = message.payload.size();
  net::SendCallbacks callbacks;
  callbacks.on_staged = [img, op] {
    if (op) {
      op->data_complete = true;
    }
    img->runtime().engine().unblock(img->rank());
  };
  callbacks.on_acked = [img, op, rec, obs_begin, payload_bytes, target] {
    if (op) {
      op->op_complete = true;
    }
    if (rec != nullptr) {
      rec->op_span(img->rank(), obs::SpanKind::kSpawn, obs_begin,
                   img->runtime().engine().now(), payload_bytes, 0, target);
    }
    img->runtime().engine().unblock(img->rank());
  };
  image.send_message(std::move(message), std::move(callbacks));
}

void install_spawn_handlers(rt::Runtime& runtime) {
  runtime.set_handler(
      rt::kHandlerSpawn, [](Image& image, net::Message&& message) {
        ReadArchive archive(message.payload);
        const auto wire = archive.read<SpawnWire>();
        auto fn = reinterpret_cast<TrampolineFn>(wire.trampoline);

        // The shipped function gets its own cofence scope: a cofence inside
        // it only captures operations it initiated (paper Fig. 10).
        image.cofence_tracker().push_scope();
        try {
          fn(archive);
        } catch (...) {
          image.cofence_tracker().pop_scope();
          throw;
        }
        image.cofence_tracker().pop_scope();

        if (wire.done.valid()) {
          rt::post_event_raw(image.runtime(), image.rank(), wire.done);
        }
      });
}

}  // namespace caf2::ops
