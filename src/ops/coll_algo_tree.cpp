#include <cstring>
#include <memory>
#include <vector>

#include "ops/coll_detail.hpp"
#include "runtime/runtime.hpp"
#include "support/error.hpp"

/// \file coll_algo_tree.cpp
/// Tree-family schedules (DESIGN.md §4.13): radix-4 k-nomial broadcast and
/// reduce (shallower than binomial — depth log_4 p — at the cost of up to
/// three sends per level per node), and a binomial gather+release barrier
/// (an alternative to the default dissemination rounds: 2 log2 p hops of
/// depth instead of log2 p rounds of p messages).

namespace caf2::ops::detail {

namespace {

using rt::CollStageMsg;
using rt::Image;

/// k-nomial broadcast from desc().root (relative-rank rotation, like the
/// binomial schedule in collectives.cpp).
class KnomialBroadcastImpl final : public CollImplBase {
 public:
  using CollImplBase::CollImplBase;

 protected:
  void begin(Image& image) override {
    started_ = true;
    if (team_rank() == desc().root) {
      have_data_ = true;
      forward(image);
      mark_data_done(image, /*after_stages=*/true);
    } else if (pending_payload_) {
      deliver(image);
    }
  }

  void handle(Image& image, CollStageMsg&& msg) override {
    payload_ = std::move(msg.data);
    pending_payload_ = true;
    if (started_) {
      deliver(image);
    }
  }

  bool role_done() const override { return started_ && have_data_; }

 private:
  int vrank() const {
    const int p = team_size();
    return (team_rank() - desc().root + p) % p;
  }

  void forward(Image& image) {
    const int p = team_size();
    for (int child : knomial_children(vrank(), p, kKnomialRadix)) {
      send_stage(image, (child + desc().root) % p, 0, desc().buf,
                 desc().bytes);
    }
  }

  void deliver(Image& image) {
    CAF2_ASSERT(payload_.size() == desc().bytes,
                "knomial broadcast size mismatch");
    std::memcpy(desc().buf, payload_.data(), payload_.size());
    have_data_ = true;
    pending_payload_ = false;
    forward(image);
    mark_data_done(image);
  }

  bool started_ = false;
  bool have_data_ = false;
  bool pending_payload_ = false;
  std::vector<std::uint8_t> payload_;
};

/// k-nomial reduction toward desc().root.
class KnomialReduceImpl final : public CollImplBase {
 public:
  using CollImplBase::CollImplBase;

 protected:
  void begin(Image& image) override {
    started_ = true;
    acc_.resize(desc().bytes);
    std::memcpy(acc_.data(), desc().buf, desc().bytes);
    expected_ = static_cast<int>(
        knomial_children(vrank(), team_size(), kKnomialRadix).size());
    if (team_rank() != desc().root) {
      mark_data_done(image);  // inputs captured; user buffer reusable
    }
    for (auto& pending : pending_msgs_) {
      absorb(pending);
    }
    pending_msgs_.clear();
    try_advance(image);
  }

  void handle(Image& image, CollStageMsg&& msg) override {
    if (!started_) {
      pending_msgs_.push_back(std::move(msg.data));
      return;
    }
    absorb(msg.data);
    try_advance(image);
  }

  bool role_done() const override { return started_ && done_; }

 private:
  int vrank() const {
    const int p = team_size();
    return (team_rank() - desc().root + p) % p;
  }

  void absorb(const std::vector<std::uint8_t>& data) {
    CAF2_ASSERT(data.size() == desc().bytes, "knomial reduce size mismatch");
    const Reducer& reducer = desc().reducer;
    reducer.combine(acc_.data(), data.data(),
                    desc().bytes / reducer.elem_size);
    ++got_;
  }

  void try_advance(Image& image) {
    if (done_ || got_ < expected_) {
      return;
    }
    done_ = true;
    if (team_rank() == desc().root) {
      std::memcpy(desc().buf, acc_.data(), acc_.size());
      mark_data_done(image);
    } else {
      const int p = team_size();
      send_stage(image,
                 (knomial_parent(vrank(), kKnomialRadix) + desc().root) % p,
                 0, acc_.data(), acc_.size());
    }
  }

  bool started_ = false;
  bool done_ = false;
  int expected_ = 0;
  int got_ = 0;
  std::vector<std::uint8_t> acc_;
  std::vector<std::vector<std::uint8_t>> pending_msgs_;
};

/// Binomial gather+release barrier rooted at team rank 0: zero-byte tokens
/// flow up the tree (stage 0); once the root holds its whole subtree it
/// releases back down (stage 1). The release is causally ordered after this
/// node's own up token, so it can never arrive before the up phase is done.
class TreeBarrierImpl final : public CollImplBase {
 public:
  using CollImplBase::CollImplBase;

  static constexpr int kStageUp = 0;
  static constexpr int kStageDown = 1;

 protected:
  void begin(Image& image) override {
    started_ = true;
    expected_ = static_cast<int>(
        binomial_children(team_rank(), team_size()).size());
    try_up(image);
    if (pending_release_) {
      release(image);
    }
  }

  void handle(Image& image, CollStageMsg&& msg) override {
    if (msg.stage == kStageUp) {
      ++got_;
      if (started_) {
        try_up(image);
      }
    } else {
      pending_release_ = true;
      if (started_) {
        release(image);
      }
    }
  }

  bool role_done() const override { return started_ && released_; }

 private:
  void try_up(Image& image) {
    if (up_done_ || got_ < expected_) {
      return;
    }
    up_done_ = true;
    if (team_rank() == 0) {
      release(image);
    } else {
      send_stage(image, binomial_parent(team_rank()), kStageUp, nullptr, 0);
    }
  }

  void release(Image& image) {
    CAF2_ASSERT(up_done_, "tree barrier released before its subtree arrived");
    pending_release_ = false;
    released_ = true;
    for (int child : binomial_children(team_rank(), team_size())) {
      send_stage(image, child, kStageDown, nullptr, 0);
    }
    mark_data_done(image);
  }

  bool started_ = false;
  bool up_done_ = false;
  bool released_ = false;
  bool pending_release_ = false;
  int expected_ = 0;
  int got_ = 0;
};

}  // namespace

std::unique_ptr<CollImplBase> make_tree_barrier_impl(rt::CollKey key,
                                                     CollDesc desc) {
  return std::make_unique<TreeBarrierImpl>(key, std::move(desc));
}

std::unique_ptr<CollImplBase> make_knomial_impl(rt::CollKey key,
                                                CollDesc desc) {
  switch (desc.kind) {
    case CollKind::kBroadcast:
      return std::make_unique<KnomialBroadcastImpl>(key, std::move(desc));
    case CollKind::kReduce:
      return std::make_unique<KnomialReduceImpl>(key, std::move(desc));
    default:
      throw UsageError("knomial schedule: unsupported collective kind");
  }
}

}  // namespace caf2::ops::detail
