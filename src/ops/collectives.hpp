#pragma once

/// \file collectives.hpp
/// Asynchronous team collectives (paper §II-C3).
///
/// CAF 2.0 collectives overlap group coordination with computation: a call
/// initiates the operation and returns immediately. Completion is managed
/// either explicitly through the two optional events —
///   src_done   local *data* completion (paper Fig. 4: the local buffer may
///              be reused / the arrived data may be read), or
///   local_done local *operation* completion (all pair-wise communication
///              involving this image is complete) —
/// or implicitly (no events), in which case cofence provides local data
/// completion and an enclosing finish block provides global completion.
///
/// Algorithms: dissemination barrier; binomial-tree broadcast and reduce;
/// allreduce as reduce-to-rank-0 + broadcast (the exact structure the
/// paper's §III-A3 critical-path argument assumes: one pass through a
/// reduction tree, one through a broadcast tree).

#include <algorithm>
#include <cstring>
#include <span>
#include <vector>

#include "ops/reduction.hpp"
#include "runtime/event.hpp"
#include "runtime/image.hpp"
#include "runtime/team.hpp"

namespace caf2 {

struct CollOptions {
  RemoteEvent src_done{};    ///< local data completion
  RemoteEvent local_done{};  ///< local operation completion
};

namespace ops {

enum class CollKind : std::uint8_t {
  kBarrier,
  kBroadcast,
  kReduce,
  kAllreduce,
  kGather,
  kScatter,
  kAlltoall,
  kScan,
  kSort,
};

/// Byte-level collective descriptor; typed wrappers populate it.
struct CollDesc {
  CollKind kind = CollKind::kBarrier;
  Team team;
  int root = 0;          ///< team rank (broadcast/reduce/gather/scatter)
  void* buf = nullptr;   ///< participant buffer (kind-specific role)
  std::size_t bytes = 0; ///< size of one contribution in bytes
  void* buf2 = nullptr;  ///< secondary buffer (gather/alltoall receive side)
  std::size_t bytes2 = 0;
  Reducer reducer{};
  bool exclusive_scan = false;

  /// Sort plumbing (type-erased; see sort_async).
  void* sort_sink = nullptr;
  void (*sort_assign)(void* sink, const std::uint8_t* data,
                      std::size_t bytes) = nullptr;
  void (*sort_sort)(std::uint8_t* data, std::size_t bytes) = nullptr;
  bool (*sort_less)(const std::uint8_t* a, const std::uint8_t* b) = nullptr;
  std::size_t elem_size = 0;

  RemoteEvent src_done{};
  RemoteEvent local_done{};
};

/// Start the collective described by \p desc on the calling image.
void start_collective(CollDesc desc);

void install_collective_handlers(rt::Runtime& runtime);

}  // namespace ops

/// Asynchronous dissemination barrier over \p team.
void barrier_async(const Team& team, CollOptions options = {});

/// Synchronous barrier (convenience wrapper).
void team_barrier(const Team& team);

/// Asynchronous binomial broadcast of `buf` from team rank \p root.
template <typename T>
void broadcast_async(const Team& team, std::span<T> buf, int root,
                     CollOptions options = {}) {
  ops::CollDesc desc;
  desc.kind = ops::CollKind::kBroadcast;
  desc.team = team;
  desc.root = root;
  desc.buf = buf.data();
  desc.bytes = buf.size_bytes();
  desc.src_done = options.src_done;
  desc.local_done = options.local_done;
  ops::start_collective(desc);
}

/// Asynchronous binomial reduction of `buf` into team rank \p root's `buf`.
/// Non-root buffers are inputs only (copied at initiation, so they may be
/// reused as soon as src_done fires — which is immediately).
template <typename T>
void reduce_async(const Team& team, std::span<T> buf, int root, RedOp op,
                  CollOptions options = {}) {
  ops::CollDesc desc;
  desc.kind = ops::CollKind::kReduce;
  desc.team = team;
  desc.root = root;
  desc.buf = buf.data();
  desc.bytes = buf.size_bytes();
  desc.reducer = ops::make_reducer<T>(op);
  desc.src_done = options.src_done;
  desc.local_done = options.local_done;
  ops::start_collective(desc);
}

/// Asynchronous allreduce: every member's `buf` ends up holding the
/// element-wise reduction over all members. Local data completion (src_done)
/// fires when the final result is in `buf`.
template <typename T>
void allreduce_async(const Team& team, std::span<T> buf, RedOp op,
                     CollOptions options = {}) {
  ops::CollDesc desc;
  desc.kind = ops::CollKind::kAllreduce;
  desc.team = team;
  desc.buf = buf.data();
  desc.bytes = buf.size_bytes();
  desc.reducer = ops::make_reducer<T>(op);
  desc.src_done = options.src_done;
  desc.local_done = options.local_done;
  ops::start_collective(desc);
}

/// Synchronous scalar allreduce (convenience wrapper used pervasively by
/// tests and by the finish termination detector).
template <typename T>
T allreduce(const Team& team, T value, RedOp op) {
  T result = value;
  Event done;
  allreduce_async<T>(team, std::span<T>(&result, 1), op,
                     {.src_done = done.handle()});
  done.wait();
  return result;
}

/// Asynchronous gather: every member contributes `send` (equal sizes); team
/// rank \p root receives the concatenation (by team rank) into `recv`
/// (size = team size × send size). `recv` is ignored on non-roots.
template <typename T>
void gather_async(const Team& team, std::span<const T> send,
                  std::span<T> recv, int root, CollOptions options = {}) {
  ops::CollDesc desc;
  desc.kind = ops::CollKind::kGather;
  desc.team = team;
  desc.root = root;
  desc.buf = const_cast<T*>(send.data());
  desc.bytes = send.size_bytes();
  if (team.rank() == root) {
    CAF2_REQUIRE(recv.size() == send.size() *
                     static_cast<std::size_t>(team.size()),
                 "gather_async: root receive extent mismatch");
    desc.buf2 = recv.data();
    desc.bytes2 = recv.size_bytes();
  }
  desc.src_done = options.src_done;
  desc.local_done = options.local_done;
  ops::start_collective(desc);
}

/// Asynchronous scatter: team rank \p root's `send` (team size × chunk) is
/// split by team rank; every member receives its chunk into `recv`.
template <typename T>
void scatter_async(const Team& team, std::span<const T> send,
                   std::span<T> recv, int root, CollOptions options = {}) {
  ops::CollDesc desc;
  desc.kind = ops::CollKind::kScatter;
  desc.team = team;
  desc.root = root;
  if (team.rank() == root) {
    CAF2_REQUIRE(send.size() == recv.size() *
                     static_cast<std::size_t>(team.size()),
                 "scatter_async: root send extent mismatch");
    desc.buf = const_cast<T*>(send.data());
    desc.bytes = send.size_bytes();
  }
  desc.buf2 = recv.data();
  desc.bytes2 = recv.size_bytes();
  desc.src_done = options.src_done;
  desc.local_done = options.local_done;
  ops::start_collective(desc);
}

/// Asynchronous all-to-all personalized exchange: chunk j of `send` goes to
/// team rank j; chunk i of `recv` comes from team rank i. Both spans hold
/// team size × chunk elements.
template <typename T>
void alltoall_async(const Team& team, std::span<const T> send,
                    std::span<T> recv, CollOptions options = {}) {
  CAF2_REQUIRE(send.size() == recv.size(),
               "alltoall_async: send/recv extents differ");
  CAF2_REQUIRE(send.size() % static_cast<std::size_t>(team.size()) == 0,
               "alltoall_async: extent not divisible by team size");
  ops::CollDesc desc;
  desc.kind = ops::CollKind::kAlltoall;
  desc.team = team;
  desc.buf = const_cast<T*>(send.data());
  desc.bytes = send.size_bytes();
  desc.buf2 = recv.data();
  desc.bytes2 = recv.size_bytes();
  desc.src_done = options.src_done;
  desc.local_done = options.local_done;
  ops::start_collective(desc);
}

/// Asynchronous scan (prefix reduction) over team ranks, in place. With
/// \p exclusive, element i receives the reduction of ranks [0, i) and team
/// rank 0's buffer is left unchanged.
template <typename T>
void scan_async(const Team& team, std::span<T> data, RedOp op,
                bool exclusive = false, CollOptions options = {}) {
  ops::CollDesc desc;
  desc.kind = ops::CollKind::kScan;
  desc.team = team;
  desc.buf = data.data();
  desc.bytes = data.size_bytes();
  desc.reducer = ops::make_reducer<T>(op);
  desc.exclusive_scan = exclusive;
  desc.src_done = options.src_done;
  desc.local_done = options.local_done;
  ops::start_collective(desc);
}

/// Asynchronous distributed sample sort: `keys` (this image's block, any
/// size) is replaced by a slice of the globally sorted sequence, ordered by
/// team rank (rank 0 holds the smallest keys). Sizes may change — sample
/// sort redistributes by splitter.
template <typename T>
void sort_async(const Team& team, std::vector<T>& keys,
                CollOptions options = {}) {
  static_assert(std::is_trivially_copyable_v<T>,
                "sort keys must be trivially copyable");
  ops::CollDesc desc;
  desc.kind = ops::CollKind::kSort;
  desc.team = team;
  desc.buf = keys.data();
  desc.bytes = keys.size() * sizeof(T);
  desc.elem_size = sizeof(T);
  desc.sort_sink = &keys;
  desc.sort_assign = [](void* sink, const std::uint8_t* data,
                        std::size_t bytes) {
    auto* out = static_cast<std::vector<T>*>(sink);
    out->resize(bytes / sizeof(T));
    std::memcpy(out->data(), data, bytes);
  };
  desc.sort_sort = [](std::uint8_t* data, std::size_t bytes) {
    T* keys_begin = reinterpret_cast<T*>(data);
    std::sort(keys_begin, keys_begin + bytes / sizeof(T));
  };
  desc.sort_less = [](const std::uint8_t* a, const std::uint8_t* b) {
    return *reinterpret_cast<const T*>(a) < *reinterpret_cast<const T*>(b);
  };
  desc.src_done = options.src_done;
  desc.local_done = options.local_done;
  ops::start_collective(desc);
}

}  // namespace caf2
