#pragma once

/// \file collectives.hpp
/// Asynchronous team collectives (paper §II-C3).
///
/// CAF 2.0 collectives overlap group coordination with computation: a call
/// initiates the operation and returns immediately. Completion is managed
/// either explicitly through the two optional events —
///   src_done   local *data* completion (paper Fig. 4: the local buffer may
///              be reused / the arrived data may be read), or
///   local_done local *operation* completion (all pair-wise communication
///              involving this image is complete) —
/// or implicitly (no events), in which case cofence provides local data
/// completion and an enclosing finish block provides global completion.
///
/// Algorithms (DESIGN.md §4.13): every collective kind maps to one or more
/// selectable *schedules* — binomial tree, radix-4 k-nomial tree, ring,
/// recursive doubling, dissemination, direct pairwise — implemented over a
/// shared stage-message state machine. CollOptions::algorithm picks one;
/// the default CollAlgorithm::kAuto consults a selection table (built-in
/// heuristics, or a table measured by `bench_collectives --tune` and loaded
/// with ops::load_selection_table_file / RuntimeOptions::coll_selection_table)
/// so the winner can depend on payload size and team size.

#include <algorithm>
#include <cstring>
#include <numeric>
#include <span>
#include <vector>

#include "ops/reduction.hpp"
#include "runtime/event.hpp"
#include "runtime/image.hpp"
#include "runtime/team.hpp"

namespace caf2 {

/// Selectable collective schedule (DESIGN.md §4.13). Not every algorithm
/// applies to every collective kind; ops::supported_algorithms() lists the
/// valid combinations and an explicitly requested unsupported pairing is a
/// UsageError. kAuto resolves through the selection table at initiation.
enum class CollAlgorithm : std::uint8_t {
  kAuto,               ///< resolve via the selection table
  kBinomialTree,       ///< classic binomial tree (the paper's schedule)
  kKnomialTree,        ///< radix-4 k-nomial tree (shallower, fatter nodes)
  kRing,               ///< ring / pipeline (bandwidth-optimal at scale)
  kRecursiveDoubling,  ///< pairwise exchange, log2 rounds
  kDissemination,      ///< dissemination rounds (barrier)
  kDirect,             ///< direct pairwise sends (linear)
};

const char* to_string(CollAlgorithm algorithm);

struct CollOptions {
  RemoteEvent src_done{};    ///< local data completion
  RemoteEvent local_done{};  ///< local operation completion
  /// Which schedule to run; kAuto picks from the selection table.
  CollAlgorithm algorithm = CollAlgorithm::kAuto;
};

namespace ops {

enum class CollKind : std::uint8_t {
  kBarrier,
  kBroadcast,
  kReduce,
  kAllreduce,
  kGather,
  kScatter,
  kAlltoall,
  kScan,
  kSort,
  kAllgather,       ///< every member ends with the rank-ordered concatenation
  kReduceScatter,   ///< element-wise reduction, chunk r scattered to rank r
  kGatherv,         ///< gather with per-rank contribution sizes
  kScatterv,        ///< scatter with per-rank chunk sizes
  kAlltoallv,       ///< personalized exchange with per-pair sizes
};

const char* to_string(CollKind kind);

/// Byte-level collective descriptor; typed wrappers populate it.
struct CollDesc {
  CollKind kind = CollKind::kBarrier;
  Team team;
  int root = 0;          ///< team rank (broadcast/reduce/gather/scatter)
  void* buf = nullptr;   ///< participant buffer (kind-specific role)
  std::size_t bytes = 0; ///< size of one contribution in bytes
  void* buf2 = nullptr;  ///< secondary buffer (gather/alltoall receive side)
  std::size_t bytes2 = 0;
  Reducer reducer{};
  bool exclusive_scan = false;

  /// Requested schedule; resolved (kAuto -> concrete) at start_collective.
  CollAlgorithm algorithm = CollAlgorithm::kAuto;

  /// Variable-count collectives: per-team-rank payload *bytes*.
  /// kGatherv: receive sizes (root only); kScatterv: send sizes (root only);
  /// kAlltoallv: send sizes (every rank).
  std::vector<std::size_t> counts;
  /// kAlltoallv: per-team-rank receive bytes (every rank).
  std::vector<std::size_t> counts2;

  /// Sort plumbing (type-erased; see sort_async).
  void* sort_sink = nullptr;
  void (*sort_assign)(void* sink, const std::uint8_t* data,
                      std::size_t bytes) = nullptr;
  void (*sort_sort)(std::uint8_t* data, std::size_t bytes) = nullptr;
  bool (*sort_less)(const std::uint8_t* a, const std::uint8_t* b) = nullptr;
  std::size_t elem_size = 0;

  RemoteEvent src_done{};
  RemoteEvent local_done{};
};

/// Start the collective described by \p desc on the calling image.
void start_collective(CollDesc desc);

void install_collective_handlers(rt::Runtime& runtime);

}  // namespace ops

namespace ops::detail {
/// Rooted-collective precondition: catch an out-of-range root at the entry
/// point with the collective's name, instead of letting it fail deep inside
/// the stage machinery (or, worse, hang the non-root members).
inline void require_valid_root(const Team& team, int root, const char* what) {
  CAF2_REQUIRE(root >= 0 && root < team.size(),
               std::string(what) + ": root " + std::to_string(root) +
                   " outside [0, " + std::to_string(team.size()) + ")");
}
}  // namespace ops::detail

/// Asynchronous barrier over \p team (dissemination by default; a
/// binomial-tree gather+release schedule is selectable via options).
void barrier_async(const Team& team, CollOptions options = {});

/// Synchronous barrier (convenience wrapper).
void team_barrier(const Team& team);

/// Asynchronous broadcast of `buf` from team rank \p root (binomial tree by
/// default; k-nomial and ring schedules selectable).
template <typename T>
void broadcast_async(const Team& team, std::span<T> buf, int root,
                     CollOptions options = {}) {
  ops::detail::require_valid_root(team, root, "broadcast_async");
  ops::CollDesc desc;
  desc.kind = ops::CollKind::kBroadcast;
  desc.team = team;
  desc.root = root;
  desc.buf = buf.data();
  desc.bytes = buf.size_bytes();
  desc.algorithm = options.algorithm;
  desc.src_done = options.src_done;
  desc.local_done = options.local_done;
  ops::start_collective(desc);
}

/// Asynchronous reduction of `buf` into team rank \p root's `buf` (binomial
/// tree by default; k-nomial selectable). Non-root buffers are inputs only
/// (copied at initiation, so they may be reused as soon as src_done fires —
/// which is immediately).
template <typename T>
void reduce_async(const Team& team, std::span<T> buf, int root, RedOp op,
                  CollOptions options = {}) {
  ops::detail::require_valid_root(team, root, "reduce_async");
  ops::CollDesc desc;
  desc.kind = ops::CollKind::kReduce;
  desc.team = team;
  desc.root = root;
  desc.buf = buf.data();
  desc.bytes = buf.size_bytes();
  desc.reducer = ops::make_reducer<T>(op);
  desc.algorithm = options.algorithm;
  desc.src_done = options.src_done;
  desc.local_done = options.local_done;
  ops::start_collective(desc);
}

/// Asynchronous allreduce: every member's `buf` ends up holding the
/// element-wise reduction over all members. Local data completion (src_done)
/// fires when the final result is in `buf`. Schedules: binomial
/// reduce+broadcast (default), recursive doubling, ring
/// (reduce-scatter + allgather; bandwidth-optimal for large payloads).
template <typename T>
void allreduce_async(const Team& team, std::span<T> buf, RedOp op,
                     CollOptions options = {}) {
  ops::CollDesc desc;
  desc.kind = ops::CollKind::kAllreduce;
  desc.team = team;
  desc.buf = buf.data();
  desc.bytes = buf.size_bytes();
  desc.reducer = ops::make_reducer<T>(op);
  desc.algorithm = options.algorithm;
  desc.src_done = options.src_done;
  desc.local_done = options.local_done;
  ops::start_collective(desc);
}

/// Synchronous scalar allreduce (convenience wrapper used pervasively by
/// tests and by the finish termination detector).
template <typename T>
T allreduce(const Team& team, T value, RedOp op) {
  T result = value;
  Event done;
  allreduce_async<T>(team, std::span<T>(&result, 1), op,
                     {.src_done = done.handle()});
  done.wait();
  return result;
}

/// Asynchronous gather: every member contributes `send` (equal sizes); team
/// rank \p root receives the concatenation (by team rank) into `recv`
/// (size = team size × send size). `recv` is ignored on non-roots.
template <typename T>
void gather_async(const Team& team, std::span<const T> send,
                  std::span<T> recv, int root, CollOptions options = {}) {
  ops::detail::require_valid_root(team, root, "gather_async");
  ops::CollDesc desc;
  desc.kind = ops::CollKind::kGather;
  desc.team = team;
  desc.root = root;
  desc.buf = const_cast<T*>(send.data());
  desc.bytes = send.size_bytes();
  if (team.rank() == root) {
    CAF2_REQUIRE(recv.size() == send.size() *
                     static_cast<std::size_t>(team.size()),
                 "gather_async: root receive extent mismatch");
    desc.buf2 = recv.data();
    desc.bytes2 = recv.size_bytes();
  }
  desc.algorithm = options.algorithm;
  desc.src_done = options.src_done;
  desc.local_done = options.local_done;
  ops::start_collective(desc);
}

/// Asynchronous scatter: team rank \p root's `send` (team size × chunk) is
/// split by team rank; every member receives its chunk into `recv`.
template <typename T>
void scatter_async(const Team& team, std::span<const T> send,
                   std::span<T> recv, int root, CollOptions options = {}) {
  ops::detail::require_valid_root(team, root, "scatter_async");
  ops::CollDesc desc;
  desc.kind = ops::CollKind::kScatter;
  desc.team = team;
  desc.root = root;
  if (team.rank() == root) {
    CAF2_REQUIRE(send.size() == recv.size() *
                     static_cast<std::size_t>(team.size()),
                 "scatter_async: root send extent mismatch");
    desc.buf = const_cast<T*>(send.data());
    desc.bytes = send.size_bytes();
  }
  desc.buf2 = recv.data();
  desc.bytes2 = recv.size_bytes();
  desc.algorithm = options.algorithm;
  desc.src_done = options.src_done;
  desc.local_done = options.local_done;
  ops::start_collective(desc);
}

/// Asynchronous all-to-all personalized exchange: chunk j of `send` goes to
/// team rank j; chunk i of `recv` comes from team rank i. Both spans hold
/// team size × chunk elements.
template <typename T>
void alltoall_async(const Team& team, std::span<const T> send,
                    std::span<T> recv, CollOptions options = {}) {
  CAF2_REQUIRE(send.size() == recv.size(),
               "alltoall_async: send/recv extents differ");
  CAF2_REQUIRE(send.size() % static_cast<std::size_t>(team.size()) == 0,
               "alltoall_async: extent not divisible by team size");
  ops::CollDesc desc;
  desc.kind = ops::CollKind::kAlltoall;
  desc.team = team;
  desc.buf = const_cast<T*>(send.data());
  desc.bytes = send.size_bytes();
  desc.buf2 = recv.data();
  desc.bytes2 = recv.size_bytes();
  desc.algorithm = options.algorithm;
  desc.src_done = options.src_done;
  desc.local_done = options.local_done;
  ops::start_collective(desc);
}

/// Asynchronous allgather: every member contributes `send` (equal sizes) and
/// ends up with the concatenation by team rank in `recv`
/// (size = team size × send size). Schedules: ring (default), recursive
/// doubling (power-of-two teams; falls back to ring otherwise), direct.
template <typename T>
void allgather_async(const Team& team, std::span<const T> send,
                     std::span<T> recv, CollOptions options = {}) {
  CAF2_REQUIRE(recv.size() == send.size() *
                   static_cast<std::size_t>(team.size()),
               "allgather_async: receive extent mismatch");
  ops::CollDesc desc;
  desc.kind = ops::CollKind::kAllgather;
  desc.team = team;
  desc.buf = const_cast<T*>(send.data());
  desc.bytes = send.size_bytes();
  desc.buf2 = recv.data();
  desc.bytes2 = recv.size_bytes();
  desc.algorithm = options.algorithm;
  desc.src_done = options.src_done;
  desc.local_done = options.local_done;
  ops::start_collective(desc);
}

/// Asynchronous reduce-scatter: `send` (team size × chunk) is reduced
/// element-wise across all members and chunk r of the result lands in team
/// rank r's `recv` (send size = team size × recv size). Schedules: ring
/// (default, bandwidth-optimal), direct.
template <typename T>
void reduce_scatter_async(const Team& team, std::span<const T> send,
                          std::span<T> recv, RedOp op,
                          CollOptions options = {}) {
  CAF2_REQUIRE(send.size() == recv.size() *
                   static_cast<std::size_t>(team.size()),
               "reduce_scatter_async: send extent mismatch");
  ops::CollDesc desc;
  desc.kind = ops::CollKind::kReduceScatter;
  desc.team = team;
  desc.buf = const_cast<T*>(send.data());
  desc.bytes = send.size_bytes();
  desc.buf2 = recv.data();
  desc.bytes2 = recv.size_bytes();
  desc.reducer = ops::make_reducer<T>(op);
  desc.algorithm = options.algorithm;
  desc.src_done = options.src_done;
  desc.local_done = options.local_done;
  ops::start_collective(desc);
}

/// Asynchronous variable-count gather: every member contributes `send` (any
/// size); team rank \p root receives the concatenation by team rank into
/// `recv`. On the root, `counts` gives every member's contribution in
/// *elements* (size = team size) and `recv` must hold their sum; both are
/// ignored elsewhere.
template <typename T>
void gatherv_async(const Team& team, std::span<const T> send,
                   std::span<T> recv, std::span<const std::size_t> counts,
                   int root, CollOptions options = {}) {
  ops::detail::require_valid_root(team, root, "gatherv_async");
  ops::CollDesc desc;
  desc.kind = ops::CollKind::kGatherv;
  desc.team = team;
  desc.root = root;
  desc.buf = const_cast<T*>(send.data());
  desc.bytes = send.size_bytes();
  if (team.rank() == root) {
    CAF2_REQUIRE(counts.size() == static_cast<std::size_t>(team.size()),
                 "gatherv_async: counts extent != team size");
    const std::size_t total =
        std::accumulate(counts.begin(), counts.end(), std::size_t{0});
    CAF2_REQUIRE(recv.size() == total,
                 "gatherv_async: root receive extent != sum of counts");
    CAF2_REQUIRE(counts[static_cast<std::size_t>(root)] == send.size(),
                 "gatherv_async: root's own count != its send extent");
    desc.buf2 = recv.data();
    desc.bytes2 = recv.size_bytes();
    desc.counts.reserve(counts.size());
    for (const std::size_t count : counts) {
      desc.counts.push_back(count * sizeof(T));
    }
  }
  desc.algorithm = options.algorithm;
  desc.src_done = options.src_done;
  desc.local_done = options.local_done;
  ops::start_collective(desc);
}

/// Asynchronous variable-count scatter: team rank \p root's `send` is split
/// into per-rank chunks of `counts` *elements* (root only; size = team
/// size, summing to the send extent) and chunk r lands in rank r's `recv`,
/// whose extent must equal that rank's count.
template <typename T>
void scatterv_async(const Team& team, std::span<const T> send,
                    std::span<const std::size_t> counts, std::span<T> recv,
                    int root, CollOptions options = {}) {
  ops::detail::require_valid_root(team, root, "scatterv_async");
  ops::CollDesc desc;
  desc.kind = ops::CollKind::kScatterv;
  desc.team = team;
  desc.root = root;
  if (team.rank() == root) {
    CAF2_REQUIRE(counts.size() == static_cast<std::size_t>(team.size()),
                 "scatterv_async: counts extent != team size");
    const std::size_t total =
        std::accumulate(counts.begin(), counts.end(), std::size_t{0});
    CAF2_REQUIRE(send.size() == total,
                 "scatterv_async: root send extent != sum of counts");
    CAF2_REQUIRE(counts[static_cast<std::size_t>(root)] == recv.size(),
                 "scatterv_async: root's own count != its receive extent");
    desc.buf = const_cast<T*>(send.data());
    desc.bytes = send.size_bytes();
    desc.counts.reserve(counts.size());
    for (const std::size_t count : counts) {
      desc.counts.push_back(count * sizeof(T));
    }
  }
  desc.buf2 = recv.data();
  desc.bytes2 = recv.size_bytes();
  desc.algorithm = options.algorithm;
  desc.src_done = options.src_done;
  desc.local_done = options.local_done;
  ops::start_collective(desc);
}

/// Asynchronous variable-count all-to-all personalized exchange: rank j
/// receives `send_counts[j]` *elements* of this member's `send` (packed
/// contiguously by destination rank), and `recv_counts[i]` elements from
/// rank i land contiguously by source rank in `recv`. Unlike
/// alltoall_async, extents need not be divisible by the team size — counts
/// may differ per pair (and may be zero). Requires
/// send_counts[j] on rank i == recv_counts[i] on rank j.
template <typename T>
void alltoallv_async(const Team& team, std::span<const T> send,
                     std::span<const std::size_t> send_counts,
                     std::span<T> recv,
                     std::span<const std::size_t> recv_counts,
                     CollOptions options = {}) {
  const auto p = static_cast<std::size_t>(team.size());
  CAF2_REQUIRE(send_counts.size() == p,
               "alltoallv_async: send_counts extent != team size");
  CAF2_REQUIRE(recv_counts.size() == p,
               "alltoallv_async: recv_counts extent != team size");
  CAF2_REQUIRE(send.size() == std::accumulate(send_counts.begin(),
                                              send_counts.end(),
                                              std::size_t{0}),
               "alltoallv_async: send extent != sum of send_counts");
  CAF2_REQUIRE(recv.size() == std::accumulate(recv_counts.begin(),
                                              recv_counts.end(),
                                              std::size_t{0}),
               "alltoallv_async: receive extent != sum of recv_counts");
  ops::CollDesc desc;
  desc.kind = ops::CollKind::kAlltoallv;
  desc.team = team;
  desc.buf = const_cast<T*>(send.data());
  desc.bytes = send.size_bytes();
  desc.buf2 = recv.data();
  desc.bytes2 = recv.size_bytes();
  desc.counts.reserve(p);
  desc.counts2.reserve(p);
  for (std::size_t r = 0; r < p; ++r) {
    desc.counts.push_back(send_counts[r] * sizeof(T));
    desc.counts2.push_back(recv_counts[r] * sizeof(T));
  }
  desc.algorithm = options.algorithm;
  desc.src_done = options.src_done;
  desc.local_done = options.local_done;
  ops::start_collective(desc);
}

/// Asynchronous scan (prefix reduction) over team ranks, in place. With
/// \p exclusive, element i receives the reduction of ranks [0, i) and team
/// rank 0's buffer is left unchanged.
template <typename T>
void scan_async(const Team& team, std::span<T> data, RedOp op,
                bool exclusive = false, CollOptions options = {}) {
  ops::CollDesc desc;
  desc.kind = ops::CollKind::kScan;
  desc.team = team;
  desc.buf = data.data();
  desc.bytes = data.size_bytes();
  desc.reducer = ops::make_reducer<T>(op);
  desc.exclusive_scan = exclusive;
  desc.algorithm = options.algorithm;
  desc.src_done = options.src_done;
  desc.local_done = options.local_done;
  ops::start_collective(desc);
}

/// Asynchronous distributed sample sort: `keys` (this image's block, any
/// size) is replaced by a slice of the globally sorted sequence, ordered by
/// team rank (rank 0 holds the smallest keys). Sizes may change — sample
/// sort redistributes by splitter.
template <typename T>
void sort_async(const Team& team, std::vector<T>& keys,
                CollOptions options = {}) {
  static_assert(std::is_trivially_copyable_v<T>,
                "sort keys must be trivially copyable");
  ops::CollDesc desc;
  desc.kind = ops::CollKind::kSort;
  desc.team = team;
  desc.buf = keys.data();
  desc.bytes = keys.size() * sizeof(T);
  desc.elem_size = sizeof(T);
  desc.sort_sink = &keys;
  desc.sort_assign = [](void* sink, const std::uint8_t* data,
                        std::size_t bytes) {
    auto* out = static_cast<std::vector<T>*>(sink);
    out->resize(bytes / sizeof(T));
    std::memcpy(out->data(), data, bytes);
  };
  desc.sort_sort = [](std::uint8_t* data, std::size_t bytes) {
    T* keys_begin = reinterpret_cast<T*>(data);
    std::sort(keys_begin, keys_begin + bytes / sizeof(T));
  };
  desc.sort_less = [](const std::uint8_t* a, const std::uint8_t* b) {
    return *reinterpret_cast<const T*>(a) < *reinterpret_cast<const T*>(b);
  };
  desc.algorithm = options.algorithm;
  desc.src_done = options.src_done;
  desc.local_done = options.local_done;
  ops::start_collective(desc);
}

}  // namespace caf2
