#pragma once

/// \file coll_detail.hpp
/// Internal machinery shared by the collective implementations
/// (collectives.cpp) and the distributed sort (sort.cpp). Not public API.

#include <cstdint>
#include <vector>

#include "ops/collectives.hpp"
#include "runtime/image.hpp"

namespace caf2::ops::detail {

/// Binomial-tree helpers over `p` relative ranks rooted at 0. A node's
/// parent clears its lowest set bit; its children add every power of two
/// below that bit.
int binomial_parent(int vr);
std::vector<int> binomial_children(int vr, int p);
int ceil_log2(int p);

/// k-nomial-tree helpers (radix \p k >= 2) over `p` relative ranks rooted
/// at 0: a node's parent clears its lowest nonzero base-k digit; its
/// children add j*k^d (j in [1, k)) for every digit position d below that
/// digit. k = 2 degenerates to the binomial tree.
int knomial_parent(int vr, int k);
std::vector<int> knomial_children(int vr, int p, int k);

/// Radix of CollAlgorithm::kKnomialTree (shallower than binomial: depth
/// log_4 p, at most 3 sends per level per node).
inline constexpr int kKnomialRadix = 4;

/// Common machinery: stage-message sending with staged/ack bookkeeping, the
/// two completion points (local data / local operation), and finish
/// attribution captured at start time.
class CollImplBase : public rt::CollBase {
 public:
  CollImplBase(rt::CollKey key, CollDesc desc);

  void on_stage(rt::Image& image, rt::CollStageMsg&& msg) override;
  bool finished() const override { return erasable_; }

  /// Entered once, after construction (and before any buffered replay).
  void start(rt::Image& image, const net::FinishKey& finish,
             rt::ImplicitOpPtr op);

 protected:
  /// Kind-specific initiation.
  virtual void begin(rt::Image& image) = 0;
  /// Kind-specific stage-message handling.
  virtual void handle(rt::Image& image, rt::CollStageMsg&& msg) = 0;
  /// Kind-specific: algorithm role of this image is complete.
  virtual bool role_done() const = 0;

  void send_stage(rt::Image& image, int to_team_rank, int stage,
                  const void* data, std::size_t bytes);

  /// Local data completion (paper Fig. 4); with \p after_stages the mark is
  /// deferred until every outgoing stage has been injected.
  void mark_data_done(rt::Image& image, bool after_stages = false);

  void try_complete(rt::Image& image);

  const CollDesc& desc() const { return desc_; }
  int team_rank() const { return desc_.team.rank(); }
  int team_size() const { return desc_.team.size(); }

 private:
  rt::CollKey key_;
  CollDesc desc_;
  net::FinishKey finish_{};
  rt::ImplicitOpPtr op_;
  int pending_stage_ = 0;
  int pending_ack_ = 0;
  double begin_us_ = 0.0;  ///< start() time, for the obs collective span
  bool data_done_ = false;
  bool data_after_stages_ = false;
  bool op_done_ = false;
  bool erasable_ = false;
};

/// Factory for the distributed sample sort (implemented in sort.cpp).
std::unique_ptr<CollImplBase> make_sort_impl(rt::CollKey key, CollDesc desc);

/// Algorithm-family factories (one translation unit per family; each
/// switches on desc.kind for the kinds its schedule covers). desc.algorithm
/// is already resolved to the family's concrete value.
std::unique_ptr<CollImplBase> make_tree_barrier_impl(rt::CollKey key,
                                                     CollDesc desc);
std::unique_ptr<CollImplBase> make_knomial_impl(rt::CollKey key,
                                                CollDesc desc);
std::unique_ptr<CollImplBase> make_ring_impl(rt::CollKey key, CollDesc desc);
std::unique_ptr<CollImplBase> make_rd_impl(rt::CollKey key, CollDesc desc);
std::unique_ptr<CollImplBase> make_direct_impl(rt::CollKey key,
                                               CollDesc desc);

}  // namespace caf2::ops::detail
