#include "ops/reduction.hpp"

// Reducers are fully inline; this translation unit anchors the header in the
// ops library.
