#include <bit>
#include <cstring>
#include <memory>
#include <vector>

#include "ops/coll_detail.hpp"
#include "runtime/runtime.hpp"
#include "support/error.hpp"

/// \file coll_algo_rd.cpp
/// Recursive-doubling schedules (DESIGN.md §4.13): log2(p) pairwise
/// exchange rounds. The allreduce handles any team size with the classic
/// fold: with pow = bit_floor(p) and rem = p - pow, the first 2*rem ranks
/// pre-fold in pairs (odd -> even) so exactly pow ranks run the exchange
/// rounds, then the folded-out ranks receive the final result. The
/// allgather variant requires a power-of-two team (resolve_algorithm clamps
/// it to ring otherwise). Channels are non-FIFO, so incoming payloads are
/// buffered by stage and pumped in round order.

namespace caf2::ops::detail {

namespace {

using rt::CollStageMsg;
using rt::Image;

/// Recursive-doubling allreduce for arbitrary p.
/// Stages: 0 = pre-fold (odd -> even among ranks < 2*rem); 1+k = exchange
/// round k among the pow participants; 1+log2(pow) = result hand-back
/// (even -> odd). Assumes a commutative reduction (every RedOp is); the
/// per-rank association order differs from the tree schedules, so
/// floating-point sums may differ in rounding across algorithms.
class RdAllreduceImpl final : public CollImplBase {
 public:
  using CollImplBase::CollImplBase;

  static constexpr int kStageFold = 0;

 protected:
  void begin(Image& image) override {
    started_ = true;
    const int p = team_size();
    pow_ = static_cast<int>(std::bit_floor(static_cast<unsigned>(p)));
    rem_ = p - pow_;
    rounds_ = ceil_log2(pow_);
    acc_.resize(desc().bytes);
    std::memcpy(acc_.data(), desc().buf, desc().bytes);
    const int r = team_rank();
    if (r < 2 * rem_ && r % 2 == 1) {
      // Folded out: contribute to the even partner, await the result.
      send_stage(image, r - 1, kStageFold, acc_.data(), acc_.size());
      mark_data_done(image);  // input captured
      folded_out_ = true;
    }
    pump(image);
  }

  void handle(Image& image, CollStageMsg&& msg) override {
    got_.resize(std::max(got_.size(),
                         static_cast<std::size_t>(msg.stage) + 1));
    has_.resize(std::max(has_.size(),
                         static_cast<std::size_t>(msg.stage) + 1),
                false);
    got_[static_cast<std::size_t>(msg.stage)] = std::move(msg.data);
    has_[static_cast<std::size_t>(msg.stage)] = true;
    if (started_) {
      pump(image);
    }
  }

  bool role_done() const override { return started_ && done_; }

 private:
  int stage_result() const { return 1 + rounds_; }

  bool have(int stage) const {
    return static_cast<std::size_t>(stage) < has_.size() &&
           has_[static_cast<std::size_t>(stage)];
  }

  void fold_in(int stage) {
    auto& incoming = got_[static_cast<std::size_t>(stage)];
    CAF2_ASSERT(incoming.size() == desc().bytes,
                "recursive-doubling allreduce size mismatch");
    desc().reducer.combine(acc_.data(), incoming.data(),
                           incoming.size() / desc().reducer.elem_size);
    incoming.clear();
  }

  /// Participant index of this rank (0..pow), and back to a team rank.
  int participant() const {
    const int r = team_rank();
    return r < 2 * rem_ ? r / 2 : r - rem_;
  }
  int participant_rank(int q) const { return q < rem_ ? 2 * q : q + rem_; }

  void pump(Image& image) {
    if (done_) {
      return;
    }
    if (folded_out_) {
      if (!have(stage_result())) {
        return;
      }
      auto& incoming = got_[static_cast<std::size_t>(stage_result())];
      CAF2_ASSERT(incoming.size() == desc().bytes,
                  "recursive-doubling allreduce result size mismatch");
      std::memcpy(desc().buf, incoming.data(), incoming.size());
      done_ = true;
      return;
    }
    const int r = team_rank();
    if (r < 2 * rem_ && !fold_absorbed_) {
      if (!have(kStageFold)) {
        return;
      }
      fold_in(kStageFold);
      fold_absorbed_ = true;
    }
    const int q = participant();
    while (round_ < rounds_) {
      if (!sent_current_) {
        send_stage(image, participant_rank(q ^ (1 << round_)), 1 + round_,
                   acc_.data(), acc_.size());
        sent_current_ = true;
      }
      if (!have(1 + round_)) {
        return;
      }
      fold_in(1 + round_);
      ++round_;
      sent_current_ = false;
    }
    std::memcpy(desc().buf, acc_.data(), acc_.size());
    if (r < 2 * rem_) {
      send_stage(image, r + 1, stage_result(), acc_.data(), acc_.size());
    }
    done_ = true;
    mark_data_done(image);
  }

  bool started_ = false;
  bool folded_out_ = false;
  bool fold_absorbed_ = false;
  bool sent_current_ = false;
  bool done_ = false;
  int pow_ = 1;
  int rem_ = 0;
  int rounds_ = 0;
  int round_ = 0;
  std::vector<std::uint8_t> acc_;
  std::vector<std::vector<std::uint8_t>> got_;
  std::vector<bool> has_;
};

/// Recursive-doubling allgather (power-of-two p): round k exchanges the
/// currently-held 2^k-block region with partner r XOR 2^k, doubling the
/// region each round. log2(p) messages per rank instead of the ring's p-1,
/// at the cost of region-sized (growing) payloads.
class RdAllgatherImpl final : public CollImplBase {
 public:
  using CollImplBase::CollImplBase;

 protected:
  void begin(Image& image) override {
    started_ = true;
    const int p = team_size();
    CAF2_ASSERT(std::has_single_bit(static_cast<unsigned>(p)),
                "recursive-doubling allgather needs a power-of-two team");
    rounds_ = ceil_log2(p);
    std::memcpy(slot(team_rank()), desc().buf, desc().bytes);
    pump(image);
  }

  void handle(Image& image, CollStageMsg&& msg) override {
    got_.resize(std::max(got_.size(),
                         static_cast<std::size_t>(msg.stage) + 1));
    has_.resize(std::max(has_.size(),
                         static_cast<std::size_t>(msg.stage) + 1),
                false);
    got_[static_cast<std::size_t>(msg.stage)] = std::move(msg.data);
    has_[static_cast<std::size_t>(msg.stage)] = true;
    if (started_) {
      pump(image);
    }
  }

  bool role_done() const override { return started_ && round_ == rounds_; }

 private:
  std::uint8_t* slot(int rank) const {
    return static_cast<std::uint8_t*>(desc().buf2) +
           static_cast<std::size_t>(rank) * desc().bytes;
  }

  void pump(Image& image) {
    const int r = team_rank();
    while (round_ < rounds_) {
      const int width = 1 << round_;          // blocks currently held
      const int base = r & ~(width - 1);      // first held block
      if (!sent_current_) {
        send_stage(image, r ^ width, round_, slot(base),
                   static_cast<std::size_t>(width) * desc().bytes);
        sent_current_ = true;
      }
      if (static_cast<std::size_t>(round_) >= has_.size() ||
          !has_[static_cast<std::size_t>(round_)]) {
        return;
      }
      auto& incoming = got_[static_cast<std::size_t>(round_)];
      CAF2_ASSERT(incoming.size() ==
                      static_cast<std::size_t>(width) * desc().bytes,
                  "recursive-doubling allgather region size mismatch");
      std::memcpy(slot(base ^ width), incoming.data(), incoming.size());
      incoming.clear();
      ++round_;
      sent_current_ = false;
    }
    mark_data_done(image, /*after_stages=*/true);
  }

  bool started_ = false;
  bool sent_current_ = false;
  int rounds_ = 0;
  int round_ = 0;
  std::vector<std::vector<std::uint8_t>> got_;
  std::vector<bool> has_;
};

}  // namespace

std::unique_ptr<CollImplBase> make_rd_impl(rt::CollKey key, CollDesc desc) {
  switch (desc.kind) {
    case CollKind::kAllreduce:
      return std::make_unique<RdAllreduceImpl>(key, std::move(desc));
    case CollKind::kAllgather:
      return std::make_unique<RdAllgatherImpl>(key, std::move(desc));
    default:
      throw UsageError(
          "recursive-doubling schedule: unsupported collective kind");
  }
}

}  // namespace caf2::ops::detail
