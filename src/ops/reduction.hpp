#pragma once

/// \file reduction.hpp
/// Type-erased element-wise reduction operators for collective operations.
///
/// Collective payloads travel as raw bytes; a Reducer describes how to
/// combine two buffers element-wise. Built-in operators cover the usual
/// arithmetic/logical reductions over the common scalar types; custom
/// combine functions can be wrapped with make_reducer.

#include <cstddef>
#include <cstdint>

#include "support/error.hpp"

namespace caf2 {

enum class RedOp : std::uint8_t {
  kSum,
  kProd,
  kMin,
  kMax,
  kBand,  ///< bitwise and (integral types only)
  kBor,   ///< bitwise or (integral types only)
  kBxor,  ///< bitwise xor (integral types only)
};

namespace ops {

/// Combines `count` elements of `in` into `acc` element-wise.
using CombineFn = void (*)(void* acc, const void* in, std::size_t count);

struct Reducer {
  std::size_t elem_size = 0;
  CombineFn combine = nullptr;

  bool valid() const { return combine != nullptr && elem_size > 0; }
};

namespace detail {
template <typename T, RedOp Op>
void combine_impl(void* acc_raw, const void* in_raw, std::size_t count) {
  T* acc = static_cast<T*>(acc_raw);
  const T* in = static_cast<const T*>(in_raw);
  for (std::size_t i = 0; i < count; ++i) {
    if constexpr (Op == RedOp::kSum) {
      acc[i] = static_cast<T>(acc[i] + in[i]);
    } else if constexpr (Op == RedOp::kProd) {
      acc[i] = static_cast<T>(acc[i] * in[i]);
    } else if constexpr (Op == RedOp::kMin) {
      acc[i] = in[i] < acc[i] ? in[i] : acc[i];
    } else if constexpr (Op == RedOp::kMax) {
      acc[i] = acc[i] < in[i] ? in[i] : acc[i];
    } else if constexpr (Op == RedOp::kBand) {
      acc[i] = static_cast<T>(acc[i] & in[i]);
    } else if constexpr (Op == RedOp::kBor) {
      acc[i] = static_cast<T>(acc[i] | in[i]);
    } else {
      acc[i] = static_cast<T>(acc[i] ^ in[i]);
    }
  }
}
}  // namespace detail

/// Reducer for element type T and built-in operator \p op.
template <typename T>
Reducer make_reducer(RedOp op) {
  constexpr bool integral = std::is_integral_v<T>;
  Reducer reducer;
  reducer.elem_size = sizeof(T);
  switch (op) {
    case RedOp::kSum:
      reducer.combine = &detail::combine_impl<T, RedOp::kSum>;
      break;
    case RedOp::kProd:
      reducer.combine = &detail::combine_impl<T, RedOp::kProd>;
      break;
    case RedOp::kMin:
      reducer.combine = &detail::combine_impl<T, RedOp::kMin>;
      break;
    case RedOp::kMax:
      reducer.combine = &detail::combine_impl<T, RedOp::kMax>;
      break;
    case RedOp::kBand:
    case RedOp::kBor:
    case RedOp::kBxor:
      CAF2_REQUIRE(integral, "bitwise reductions require an integral type");
      if constexpr (integral) {
        if (op == RedOp::kBand) {
          reducer.combine = &detail::combine_impl<T, RedOp::kBand>;
        } else if (op == RedOp::kBor) {
          reducer.combine = &detail::combine_impl<T, RedOp::kBor>;
        } else {
          reducer.combine = &detail::combine_impl<T, RedOp::kBxor>;
        }
      }
      break;
  }
  CAF2_ASSERT(reducer.valid(), "unhandled reduction operator");
  return reducer;
}

namespace detail {
template <typename T, auto F>
void custom_combine(void* acc, const void* in, std::size_t count) {
  F(static_cast<T*>(acc), static_cast<const T*>(in), count);
}
}  // namespace detail

/// Reducer wrapping a custom combine function (a function pointer or
/// captureless lambda taking `(T* acc, const T* in, std::size_t count)`).
template <typename T, auto F>
Reducer make_custom_reducer() {
  Reducer reducer;
  reducer.elem_size = sizeof(T);
  reducer.combine = &detail::custom_combine<T, F>;
  return reducer;
}

}  // namespace ops
}  // namespace caf2
