#pragma once

/// \file spawn.hpp
/// Function shipping (paper §II-C2):
///
///     spawn(e) foo(A[p], B(i))[p]       (CAF 2.0)
///     caf2::spawn<foo>(e, p, A.ref(), B[i]);   (this library)
///
/// A shipped function executes on the target image's thread, inside the
/// dynamic extent of the finish scope that was active at the spawn site, so
/// transitively spawned work is tracked by the same finish. Scalar/array
/// arguments are marshalled by value; coarray sections travel by reference
/// (pass Coarray<T>::ref(), which resolves to the *target's* local block).
///
/// The optional completion event is notified when the shipped function
/// finishes executing on the target. Shipped functions may themselves spawn,
/// initiate asynchronous operations, and use cofence (which then only covers
/// operations the shipped function initiated — paper Fig. 10); they must not
/// enter finish blocks or collectives (those are SPMD constructs).
///
/// The marshalled argument payload must fit in a medium active message
/// (NetworkParams::max_medium_payload) — the same limit that caps steal
/// batches in the paper's UTS implementation.

#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

#include "runtime/event.hpp"
#include "runtime/image.hpp"
#include "support/serialize.hpp"

namespace caf2 {

namespace ops {

/// In-process stand-in for a registered remote-handler index.
using TrampolineFn = void (*)(ReadArchive&);

/// Ship `fn(args)` to \p target (world rank). \p done, if valid, is notified
/// when execution completes on the target.
void spawn_bytes(int target, TrampolineFn fn,
                 std::vector<std::uint8_t> args, RemoteEvent done);

void install_spawn_handlers(rt::Runtime& runtime);

namespace detail {
template <auto Fn, typename... Decayed>
void trampoline(ReadArchive& archive) {
  // Braced initialization guarantees left-to-right evaluation, matching the
  // write order on the initiator.
  std::tuple<Decayed...> args{archive.read<Decayed>()...};
  std::apply(Fn, std::move(args));
}

template <typename... Args>
std::vector<std::uint8_t> marshal(const Args&... args) {
  WriteArchive archive;
  (archive.write(args), ...);
  return archive.take();
}
}  // namespace detail

}  // namespace ops

/// Ship function \p Fn to \p target_image (world rank), fire-and-forget.
template <auto Fn, typename... Args>
void spawn(int target_image, Args&&... args) {
  ops::spawn_bytes(
      target_image,
      &ops::detail::trampoline<Fn, std::decay_t<Args>...>,
      ops::detail::marshal<std::decay_t<Args>...>(args...), RemoteEvent{});
}

/// Ship function \p Fn; \p done is notified when execution completes on the
/// target image.
template <auto Fn, typename... Args>
void spawn(const RemoteEvent& done, int target_image, Args&&... args) {
  ops::spawn_bytes(
      target_image,
      &ops::detail::trampoline<Fn, std::decay_t<Args>...>,
      ops::detail::marshal<std::decay_t<Args>...>(args...), done);
}

template <auto Fn, typename... Args>
void spawn(Event& done, int target_image, Args&&... args) {
  spawn<Fn>(done.handle(), target_image, std::forward<Args>(args)...);
}

}  // namespace caf2
