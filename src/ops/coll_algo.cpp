#include "ops/coll_algo.hpp"

#include <bit>
#include <cctype>
#include <fstream>
#include <mutex>
#include <sstream>

#include "obs/obs.hpp"
#include "support/error.hpp"

namespace caf2 {

const char* to_string(CollAlgorithm algorithm) {
  switch (algorithm) {
    case CollAlgorithm::kAuto:
      return "auto";
    case CollAlgorithm::kBinomialTree:
      return "binomial";
    case CollAlgorithm::kKnomialTree:
      return "knomial";
    case CollAlgorithm::kRing:
      return "ring";
    case CollAlgorithm::kRecursiveDoubling:
      return "recursive_doubling";
    case CollAlgorithm::kDissemination:
      return "dissemination";
    case CollAlgorithm::kDirect:
      return "direct";
  }
  return "?";
}

namespace ops {

const char* to_string(CollKind kind) {
  switch (kind) {
    case CollKind::kBarrier:
      return "barrier";
    case CollKind::kBroadcast:
      return "broadcast";
    case CollKind::kReduce:
      return "reduce";
    case CollKind::kAllreduce:
      return "allreduce";
    case CollKind::kGather:
      return "gather";
    case CollKind::kScatter:
      return "scatter";
    case CollKind::kAlltoall:
      return "alltoall";
    case CollKind::kScan:
      return "scan";
    case CollKind::kSort:
      return "sort";
    case CollKind::kAllgather:
      return "allgather";
    case CollKind::kReduceScatter:
      return "reduce_scatter";
    case CollKind::kGatherv:
      return "gatherv";
    case CollKind::kScatterv:
      return "scatterv";
    case CollKind::kAlltoallv:
      return "alltoallv";
  }
  return "?";
}

std::vector<CollAlgorithm> supported_algorithms(CollKind kind) {
  // Default (legacy) schedule first — default_algorithm() relies on it.
  switch (kind) {
    case CollKind::kBarrier:
      return {CollAlgorithm::kDissemination, CollAlgorithm::kBinomialTree};
    case CollKind::kBroadcast:
      return {CollAlgorithm::kBinomialTree, CollAlgorithm::kKnomialTree,
              CollAlgorithm::kRing};
    case CollKind::kReduce:
      return {CollAlgorithm::kBinomialTree, CollAlgorithm::kKnomialTree};
    case CollKind::kAllreduce:
      return {CollAlgorithm::kBinomialTree, CollAlgorithm::kRing,
              CollAlgorithm::kRecursiveDoubling};
    case CollKind::kGather:
      return {CollAlgorithm::kBinomialTree, CollAlgorithm::kDirect};
    case CollKind::kScatter:
      return {CollAlgorithm::kBinomialTree, CollAlgorithm::kDirect};
    case CollKind::kAlltoall:
      return {CollAlgorithm::kDirect};
    case CollKind::kScan:
      // Hillis-Steele is the recursive-doubling schedule.
      return {CollAlgorithm::kRecursiveDoubling};
    case CollKind::kSort:
      // Sample sort's splitter exchange is direct pairwise.
      return {CollAlgorithm::kDirect};
    case CollKind::kAllgather:
      return {CollAlgorithm::kRing, CollAlgorithm::kRecursiveDoubling,
              CollAlgorithm::kDirect};
    case CollKind::kReduceScatter:
      return {CollAlgorithm::kRing, CollAlgorithm::kDirect};
    case CollKind::kGatherv:
    case CollKind::kScatterv:
    case CollKind::kAlltoallv:
      return {CollAlgorithm::kDirect};
  }
  throw UsageError("unknown collective kind");
}

CollAlgorithm default_algorithm(CollKind kind) {
  return supported_algorithms(kind).front();
}

bool algorithm_supported(CollKind kind, CollAlgorithm algorithm) {
  for (const CollAlgorithm candidate : supported_algorithms(kind)) {
    if (candidate == algorithm) {
      return true;
    }
  }
  return false;
}

bool parse_algorithm(std::string_view name, CollAlgorithm& out) {
  for (const CollAlgorithm a :
       {CollAlgorithm::kAuto, CollAlgorithm::kBinomialTree,
        CollAlgorithm::kKnomialTree, CollAlgorithm::kRing,
        CollAlgorithm::kRecursiveDoubling, CollAlgorithm::kDissemination,
        CollAlgorithm::kDirect}) {
    if (name == to_string(a)) {
      out = a;
      return true;
    }
  }
  return false;
}

bool parse_coll_kind(std::string_view name, CollKind& out) {
  for (const CollKind k :
       {CollKind::kBarrier, CollKind::kBroadcast, CollKind::kReduce,
        CollKind::kAllreduce, CollKind::kGather, CollKind::kScatter,
        CollKind::kAlltoall, CollKind::kScan, CollKind::kSort,
        CollKind::kAllgather, CollKind::kReduceScatter, CollKind::kGatherv,
        CollKind::kScatterv, CollKind::kAlltoallv}) {
    if (name == to_string(k)) {
      out = k;
      return true;
    }
  }
  return false;
}

/// --- selection table ---------------------------------------------------------

int CollSelectionTable::log2_bucket(std::size_t value) {
  return value <= 1 ? 0 : std::bit_width(value) - 1;
}

void CollSelectionTable::set(CollKind kind, int images, std::size_t bytes,
                             CollAlgorithm algorithm) {
  CAF2_REQUIRE(algorithm != CollAlgorithm::kAuto,
               "selection table entries must name a concrete algorithm");
  CAF2_REQUIRE(algorithm_supported(kind, algorithm),
               std::string("selection table: ") + to_string(algorithm) +
                   " is not implemented for " + to_string(kind));
  entries_[{static_cast<int>(kind),
            log2_bucket(static_cast<std::size_t>(images < 1 ? 1 : images)),
            log2_bucket(bytes)}] = algorithm;
}

CollAlgorithm CollSelectionTable::lookup(CollKind kind, int images,
                                         std::size_t bytes) const {
  const int li =
      log2_bucket(static_cast<std::size_t>(images < 1 ? 1 : images));
  const int lb = log2_bucket(bytes);
  // Nearest recorded bucket for this kind: images distance dominates, then
  // payload distance; ties break toward the smaller bucket (map order).
  const auto* best = static_cast<const decltype(entries_)::value_type*>(nullptr);
  int best_di = 0;
  int best_db = 0;
  for (const auto& entry : entries_) {
    const auto& [ekind, eli, elb] = entry.first;
    if (ekind != static_cast<int>(kind)) {
      continue;
    }
    const int di = eli > li ? eli - li : li - eli;
    const int db = elb > lb ? elb - lb : lb - elb;
    if (best == nullptr || di < best_di ||
        (di == best_di && db < best_db)) {
      best = &entry;
      best_di = di;
      best_db = db;
    }
  }
  return best == nullptr ? CollAlgorithm::kAuto : best->second;
}

std::string CollSelectionTable::to_json() const {
  std::ostringstream out;
  out << "{\n";
  out << "  \"schema\": \"caf2.coll_selection\",\n";
  out << "  \"schema_version\": 1,\n";
  out << "  \"entries\": [";
  bool first = true;
  for (const auto& [key, algorithm] : entries_) {
    const auto& [kind, li, lb] = key;
    out << (first ? "\n" : ",\n");
    first = false;
    out << "    {\"collective\": \""
        << to_string(static_cast<CollKind>(kind)) << "\", \"log2_images\": "
        << li << ", \"log2_bytes\": " << lb << ", \"algorithm\": \""
        << to_string(algorithm) << "\"}";
  }
  out << (first ? "]\n" : "\n  ]\n");
  out << "}\n";
  return out.str();
}

namespace {

/// Minimal scanner for the to_json() document shape (objects of scalar
/// fields inside one "entries" array). Not a general JSON parser; rejects
/// anything it does not understand instead of guessing.
class TableScanner {
 public:
  explicit TableScanner(const std::string& text) : text_(text) {}

  void fail(const std::string& why) const {
    throw UsageError("coll selection table: " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool eat(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    if (!eat(c)) {
      fail(std::string("expected '") + c + "'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        fail("escape sequences are not supported");
      }
      out.push_back(text_[pos_++]);
    }
    expect('"');
    return out;
  }

  long parse_int() {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
    if (pos_ == start) {
      fail("expected an integer");
    }
    return std::stol(text_.substr(start, pos_ - start));
  }

  /// Either a string or a number, discarded (unknown fields are skipped).
  void skip_scalar() {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '"') {
      (void)parse_string();
    } else {
      (void)parse_int();
    }
  }

  bool at_end() {
    skip_ws();
    return pos_ >= text_.size();
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

CollSelectionTable CollSelectionTable::from_json(const std::string& text) {
  TableScanner in(text);
  CollSelectionTable table;
  in.expect('{');
  bool saw_entries = false;
  while (true) {
    const std::string field = in.parse_string();
    in.expect(':');
    if (field == "entries") {
      saw_entries = true;
      in.expect('[');
      if (!in.eat(']')) {
        do {
          in.expect('{');
          std::string kind_name;
          std::string algo_name;
          long li = -1;
          long lb = -1;
          do {
            const std::string key = in.parse_string();
            in.expect(':');
            if (key == "collective") {
              kind_name = in.parse_string();
            } else if (key == "algorithm") {
              algo_name = in.parse_string();
            } else if (key == "log2_images") {
              li = in.parse_int();
            } else if (key == "log2_bytes") {
              lb = in.parse_int();
            } else {
              in.skip_scalar();
            }
          } while (in.eat(','));
          in.expect('}');
          CollKind kind{};
          CollAlgorithm algorithm{};
          if (!parse_coll_kind(kind_name, kind)) {
            in.fail("unknown collective \"" + kind_name + "\"");
          }
          if (!parse_algorithm(algo_name, algorithm)) {
            in.fail("unknown algorithm \"" + algo_name + "\"");
          }
          if (li < 0 || lb < 0) {
            in.fail("entry is missing log2_images / log2_bytes");
          }
          table.set(kind, 1 << static_cast<int>(li),
                    std::size_t{1} << static_cast<int>(lb), algorithm);
        } while (in.eat(','));
        in.expect(']');
      }
    } else {
      in.skip_scalar();
    }
    if (!in.eat(',')) {
      break;
    }
  }
  in.expect('}');
  if (!in.at_end()) {
    in.fail("trailing content after the closing brace");
  }
  if (!saw_entries) {
    in.fail("document has no \"entries\" array");
  }
  return table;
}

/// --- process-global table ----------------------------------------------------

namespace {
std::mutex g_table_mutex;
CollSelectionTable g_table;
}  // namespace

void set_selection_table(CollSelectionTable table) {
  const std::lock_guard<std::mutex> lock(g_table_mutex);
  g_table = std::move(table);
}

void clear_selection_table() {
  const std::lock_guard<std::mutex> lock(g_table_mutex);
  g_table = CollSelectionTable{};
}

void load_selection_table_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  CAF2_REQUIRE(in.good(),
               "coll selection table: cannot read \"" + path + "\"");
  std::ostringstream text;
  text << in.rdbuf();
  set_selection_table(CollSelectionTable::from_json(text.str()));
}

CollSelectionTable selection_table() {
  const std::lock_guard<std::mutex> lock(g_table_mutex);
  return g_table;
}

CollAlgorithm resolve_algorithm(CollKind kind, CollAlgorithm requested,
                                int team_size, std::size_t bytes) {
  CollAlgorithm algorithm = requested;
  if (algorithm == CollAlgorithm::kAuto) {
    {
      const std::lock_guard<std::mutex> lock(g_table_mutex);
      algorithm = g_table.lookup(kind, team_size, bytes);
    }
    if (algorithm == CollAlgorithm::kAuto ||
        !algorithm_supported(kind, algorithm)) {
      algorithm = default_algorithm(kind);
    }
  } else {
    CAF2_REQUIRE(algorithm_supported(kind, algorithm),
                 std::string("collective algorithm \"") +
                     to_string(algorithm) + "\" is not implemented for " +
                     to_string(kind));
  }
  // Structural clamps: keep the choice runnable on this team.
  if (kind == CollKind::kAllgather &&
      algorithm == CollAlgorithm::kRecursiveDoubling &&
      !std::has_single_bit(static_cast<unsigned>(team_size))) {
    algorithm = CollAlgorithm::kRing;
  }
  return algorithm;
}

const char* coll_span_label(CollKind kind, CollAlgorithm algorithm) {
  return obs::intern_label(std::string(to_string(kind)) + "/" +
                           to_string(algorithm));
}

}  // namespace ops
}  // namespace caf2
