#include "core/caf2.hpp"

#include <cstdlib>

#include "core/detectors.hpp"
#include "ops/coll_algo.hpp"
#include "runtime/internal.hpp"
#include "runtime/runtime.hpp"
#include "support/sysinfo.hpp"

namespace caf2 {

void run(const RuntimeOptions& options, const std::function<void()>& body) {
  (void)run_stats(options, body);
}

RunStats run_stats(const RuntimeOptions& options,
                   const std::function<void()>& body) {
  // Collective selection table (DESIGN.md §4.13): the environment variable
  // overrides the option, matching the other CAF2_* knobs. Loading happens
  // before any image starts, so resolution inside the run sees one
  // immutable table.
  if (const char* env = std::getenv("CAF2_COLL_TABLE");
      env != nullptr && *env != '\0') {
    ops::load_selection_table_file(env);
  } else if (!options.coll_selection_table.empty()) {
    ops::load_selection_table_file(options.coll_selection_table);
  }
  rt::Runtime runtime(options);
  rt::install_event_handlers(runtime);
  ops::install_copy_handlers(runtime);
  ops::install_spawn_handlers(runtime);
  ops::install_collective_handlers(runtime);
  core::install_detector_handlers(runtime);
  runtime.run(body);
  RunStats stats;
  stats.events = runtime.engine().event_count();
  stats.virtual_us = runtime.engine().now();
  stats.context_switches = runtime.engine().context_switch_count();
  stats.fastpath = runtime.engine().fastpath_enabled();
  stats.backend = runtime.engine().backend();
  stats.peak_rss_bytes = peak_rss_bytes();
  stats.shards = runtime.engine().shard_count();
  stats.windows = runtime.engine().window_count();
  stats.window_stalls = runtime.engine().window_stall_count();
  stats.shard_events = runtime.engine().shard_event_counts();
  stats.lookahead_mode =
      !runtime.engine().sharded()
          ? "serial"
          : (runtime.engine().adaptive_lookahead() ? "adaptive" : "static");
  stats.faults = runtime.network().fault_stats();
  stats.shard_faults = runtime.network().shard_fault_stats();
  stats.obs = runtime.take_capture();
  return stats;
}

int this_image() { return rt::Image::current().rank(); }

int num_images() { return rt::Image::current().num_images(); }

double now_us() { return rt::Image::current().runtime().engine().now(); }

void compute(double us) {
  rt::Image::current().runtime().engine().advance(us);
}

Xoshiro256ss& image_rng() { return rt::Image::current().rng(); }

obs::Postmortem dump_postmortem() {
  return rt::Image::current().runtime().dump_postmortem();
}

}  // namespace caf2
