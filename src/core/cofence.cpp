#include "core/cofence.hpp"

#include "runtime/image.hpp"
#include "runtime/runtime.hpp"

namespace caf2 {

void cofence(Pass downward, Pass upward) {
  (void)upward;  // no statement reordering exists in a library runtime
  rt::Image& image = rt::Image::current();
  obs::Recorder* const rec = image.runtime().observer();
  const double obs_begin =
      rec != nullptr ? image.runtime().engine().now() : 0.0;
  auto& scope = image.cofence_tracker().current();
  {
    obs::BlameScope blame(rec, image.rank(), obs::Blame::kCofenceWait);
    image.wait_for(
        [&scope, downward] { return scope.data_complete_for(downward); },
        "cofence",
        obs::ResourceId{obs::ResourceKind::kOpCompletion, image.rank(), 0,
                        0});
  }
  if (rec != nullptr) {
    rec->op_span(image.rank(), obs::SpanKind::kCofence, obs_begin,
                 image.runtime().engine().now());
  }
}

std::size_t outstanding_implicit_ops() {
  return rt::Image::current().cofence_tracker().current().outstanding();
}

}  // namespace caf2
