#include "core/cofence.hpp"

#include "runtime/image.hpp"

namespace caf2 {

void cofence(Pass downward, Pass upward) {
  (void)upward;  // no statement reordering exists in a library runtime
  rt::Image& image = rt::Image::current();
  auto& scope = image.cofence_tracker().current();
  image.wait_for(
      [&scope, downward] { return scope.data_complete_for(downward); },
      "cofence");
}

std::size_t outstanding_implicit_ops() {
  return rt::Image::current().cofence_tracker().current().outstanding();
}

}  // namespace caf2
