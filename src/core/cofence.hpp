#pragma once

/// \file cofence.hpp
/// The cofence construct (paper §III-B).
///
/// cofence demands *local data completion* of the implicitly-synchronized
/// asynchronous operations in the current scope: after it returns, the
/// initiator-local inputs of those operations may be overwritten and their
/// initiator-local outputs may be read. It says nothing about remote
/// delivery — that is what events (local operation completion) and finish
/// (global completion) provide. Exploiting exactly this gap is what makes
/// the producer–consumer micro-benchmark's cofence variant the fastest
/// (paper Fig. 12).
///
/// The two optional arguments relax the fence for performance tuning,
/// modeled on the SPARC V9 MEMBAR's ordering masks:
///   cofence(DOWNWARD, UPWARD)
/// DOWNWARD names the class of prior operations (by whether they READ or
/// WRITE initiator-local data) that may defer completion past the fence;
/// UPWARD names the class of later operations that may begin before the
/// fence completes. In a library implementation statements execute in
/// program order, so UPWARD cannot change runtime behaviour; it is accepted,
/// validated, and documented as a compiler-facing constraint.

#include "runtime/cofence_tracker.hpp"

namespace caf2 {

/// Access classes that may pass a cofence (re-export of the runtime type).
using Pass = rt::PassClass;

/// Block until local data completion of the current scope's outstanding
/// implicit asynchronous operations, except those whose class \p downward
/// allows to complete later. \p upward is the symmetric compiler-facing
/// relaxation for operations after the fence.
void cofence(Pass downward = Pass::kNone, Pass upward = Pass::kNone);

/// Number of implicit operations still outstanding in the current scope
/// (diagnostic; used by tests).
std::size_t outstanding_implicit_ops();

}  // namespace caf2
