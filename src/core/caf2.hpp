#pragma once

/// \file caf2.hpp
/// Public umbrella header of the caf2 library — a C++20 reimplementation of
/// Coarray Fortran 2.0's asynchronous-operation runtime (Yang, Murthy,
/// Mellor-Crummey, IPDPS 2013) over a deterministic multi-image simulator.
///
/// Quick tour (see examples/quickstart.cpp for a runnable version):
///
///   caf2::RuntimeOptions opt;
///   opt.num_images = 8;
///   caf2::run(opt, [] {
///     caf2::Team world = caf2::team_world();
///     caf2::Coarray<double> data(world, 1024);
///     caf2::finish(world, [&] {
///       if (caf2::this_image() == 0) {
///         caf2::copy_async(data(1), std::span<const double>(...));
///       }
///     });  // global completion of everything initiated inside
///   });
///
/// Synchronization toolbox (paper Fig. 1):
///   caf2::cofence()      local data completion of implicit async ops
///   caf2::Event          local operation completion (explicit)
///   caf2::finish(...)    global completion across a team

#include <memory>
#include <string>
#include <vector>

#include "core/cofence.hpp"
#include "core/finish.hpp"
#include "ops/collectives.hpp"
#include "ops/copy.hpp"
#include "ops/spawn.hpp"
#include "runtime/coarray.hpp"
#include "runtime/event.hpp"
#include "runtime/team.hpp"
#include "support/config.hpp"

namespace caf2::obs {
struct Capture;
struct Postmortem;
}  // namespace caf2::obs

namespace caf2 {

/// Execute \p body SPMD on options.num_images simulated process images.
/// Installs all standard active-message handlers, runs the simulation to
/// completion, and rethrows the first image failure (if any).
void run(const RuntimeOptions& options, const std::function<void()>& body);

/// Simulator-side statistics of one completed run (real cost of the
/// simulation, as opposed to the virtual-time results the run computed).
///
/// events, virtual_us, context_switches, and faults are deterministic: for a
/// given options + body they are bit-identical across execution backends and
/// with the scheduler fast path on or off. backend and fastpath describe the
/// configuration that ran; peak_rss_bytes is a *measured* property of the
/// host process (monotone high-water mark, not deterministic) — determinism
/// comparisons must exclude those.
struct RunStats {
  std::uint64_t events = 0;  ///< engine events dispatched
  double virtual_us = 0.0;   ///< final virtual time
  std::uint64_t context_switches = 0;  ///< token handoffs between images
  bool fastpath = true;      ///< self-wake fast path was active
  ExecBackend backend = ExecBackend::kAuto;  ///< resolved backend that ran
  /// Process peak RSS after the run, summed over every worker thread (Linux:
  /// VmHWM of the whole process, not just the scheduler thread).
  std::uint64_t peak_rss_bytes = 0;
  /// --- sharded execution (DESIGN.md §4.11) ----------------------------------
  /// shards, windows, window_stalls, and shard_events are deterministic for a
  /// fixed shard count; shards=1 reports windows = window_stalls = 0 and a
  /// single shard_events entry equal to `events`, matching the legacy engine.
  int shards = 1;                     ///< engine shards the run executed on
  std::uint64_t windows = 0;          ///< conservative window advances
  std::uint64_t window_stalls = 0;    ///< per-shard window entries with no
                                      ///< dispatchable event (scaling-loss
                                      ///< diagnostic, summed over shards)
  std::vector<std::uint64_t> shard_events;  ///< events dispatched per shard
  /// Resolved conservative-window policy: "serial" (one shard), "static"
  /// (windows pinned to the global minimum plus the lookahead), or
  /// "adaptive" (per-shard windows from the other shards' next-event lower
  /// bounds; RuntimeOptions::adaptive_lookahead / CAF2_SIM_ADAPTIVE_LOOKAHEAD).
  std::string lookahead_mode = "serial";
  FaultStats faults{};       ///< injected-fault / retransmission counters
  /// Per-shard fault/protocol counters (one entry per shard; summed they
  /// equal `faults`). Deliveries dropped/duplicated/delayed, ack losses, and
  /// retransmits are charged to the flight's source shard,
  /// duplicates_suppressed to its destination shard.
  std::vector<FaultStats> shard_faults;
  /// Observability capture (spans + metrics); non-null only when
  /// RuntimeOptions::obs.enabled was set. Feed to obs::to_chrome_trace(),
  /// obs::to_text(), or obs::analyze_blame().
  std::shared_ptr<const obs::Capture> obs;
};

/// Like run(), but returns the simulator statistics of the finished run.
/// Benchmark drivers use this to report events/sec.
RunStats run_stats(const RuntimeOptions& options,
                   const std::function<void()>& body);

/// World rank of the calling image (0-based; the paper's image index).
int this_image();

/// Total number of process images.
int num_images();

/// Current virtual time in microseconds.
double now_us();

/// Model \p us microseconds of local computation (advances virtual time).
void compute(double us);

/// Per-image deterministic random generator (seeded from RuntimeOptions).
Xoshiro256ss& image_rng();

/// On-demand structured postmortem of the current runtime state (wait-for
/// graph, finish accounting, recent flight-recorder events, network state) —
/// no failure required. Must be called from an image context. Render with
/// obs::to_text(), obs::to_json(), or obs::wait_graph_to_dot().
obs::Postmortem dump_postmortem();

}  // namespace caf2
