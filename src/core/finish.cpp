#include "core/finish.hpp"

#include "core/detectors.hpp"
#include "runtime/image.hpp"
#include "runtime/runtime.hpp"

namespace caf2 {

namespace {

// Per-image, not thread_local: under the fiber execution backend every image
// of an engine runs on the same OS thread (Image::scratch).
constexpr char kReportTag = 0;

FinishReport& last_report(rt::Image& image) {
  std::shared_ptr<void>& slot = image.scratch(&kReportTag);
  if (!slot) {
    slot = std::make_shared<FinishReport>();
  }
  return *std::static_pointer_cast<FinishReport>(slot);
}

net::FinishKey begin_finish(rt::Image& image, const Team& team) {
  CAF2_REQUIRE(team.valid(), "finish over an invalid team");
  CAF2_REQUIRE(team.rank_of_world(image.rank()) == team.rank(),
               "finish caller is not a member of the team");
  CAF2_REQUIRE(image.cofence_tracker().depth() == 1,
               "finish may not be used inside a shipped function");
  const net::FinishKey key{team.id(), image.next_finish_seq(team.id())};
  image.finish_state(key).mark_entered();
  image.push_finish(key);
  return key;
}

void end_finish(rt::Image& image, const Team& team, const net::FinishKey& key,
                const FinishOptions& options) {
  image.pop_finish();

  obs::Recorder* const rec = image.runtime().observer();
  const double start_us = image.runtime().engine().now();
  int rounds = 0;
  {
    // Every wait inside the detector — allreduce event waits, quiescence
    // drains — is finish termination-detection time. The detector's actual
    // blocking happens in nested event/quiescence waits, so also keep the
    // finish scope itself on the wait stack for the whole detection: a
    // postmortem taken mid-detection names the scope, not just the innermost
    // event.
    rt::WaitFrameScope wait_frame(
        image,
        obs::ResourceId{obs::ResourceKind::kFinish, -1,
                        static_cast<std::uint64_t>(key.team), key.seq},
        "finish detection");
    obs::BlameScope blame(rec, image.rank(), obs::Blame::kFinishWait);
    switch (options.detector) {
      case DetectorKind::kEpoch:
        rounds =
            core::detect_epoch(image, team, key, /*wait_quiescence=*/true);
        break;
      case DetectorKind::kSpeculative:
        rounds =
            core::detect_epoch(image, team, key, /*wait_quiescence=*/false);
        break;
      case DetectorKind::kFourCounter:
        rounds = core::detect_four_counter(image, team, key);
        break;
      case DetectorKind::kCentralized:
        rounds = core::detect_centralized(image, team, key);
        break;
    }
  }
  if (rec != nullptr) {
    rec->op_span(image.rank(), obs::SpanKind::kFinishDetect, start_us,
                 image.runtime().engine().now(),
                 static_cast<std::uint64_t>(rounds), key.seq);
    rec->add(image.rank(), obs::Counter::kFinishScopes);
    rec->add(image.rank(), obs::Counter::kFinishRounds,
             static_cast<std::uint64_t>(rounds));
  }

  image.finish_state(key).mark_terminated();
  // Global termination proven: no tracked message for this scope is in
  // flight anywhere, so the accounting can be reclaimed.
  image.erase_finish_state(key);

  FinishReport& report = last_report(image);
  report.rounds = rounds;
  report.detect_us = image.runtime().engine().now() - start_us;
}

}  // namespace

void finish(const Team& team, const std::function<void()>& body,
            FinishOptions options) {
  rt::Image& image = rt::Image::current();
  obs::Recorder* const rec = image.runtime().observer();
  const double obs_begin =
      rec != nullptr ? image.runtime().engine().now() : 0.0;
  const net::FinishKey key = begin_finish(image, team);
  try {
    body();
  } catch (...) {
    image.pop_finish();
    throw;
  }
  if (rec != nullptr) {
    rec->op_span(image.rank(), obs::SpanKind::kFinishBody, obs_begin,
                 image.runtime().engine().now(), 0, key.seq);
  }
  end_finish(image, team, key, options);
}

FinishReport last_finish_report() {
  return last_report(rt::Image::current());
}

FinishScope::FinishScope(const Team& team, FinishOptions options)
    : team_(team), options_(options) {
  begin_finish(rt::Image::current(), team_);
}

void FinishScope::end() {
  if (ended_) {
    return;
  }
  ended_ = true;
  rt::Image& image = rt::Image::current();
  const net::FinishKey key = image.current_finish();
  CAF2_ASSERT(key.valid(), "FinishScope lost its scope");
  end_finish(image, team_, key, options_);
}

FinishScope::~FinishScope() { end(); }

}  // namespace caf2
