#pragma once

/// \file detectors.hpp
/// Baseline distributed termination detectors (paper §V, Fig. 18).
///
/// The paper compares its epoch-counting algorithm against:
///  - a speculative variant without the quiescence precondition, which
///    needs roughly twice the reduction waves (Fig. 18);
///  - Mattern's four-counter wave algorithm as used by AM++, which must
///    confirm with a second agreeing wave and therefore always pays one
///    extra reduction;
///  - X10's centralized vector-counting scheme, in which every quiescent
///    worker sends a place-indexed spawn vector to the finish owner — a
///    single place receives p vectors of size p, a scaling bottleneck.
///
/// All detectors plug into the same finish construct (core/finish.hpp);
/// they differ only in how end-finish proves global termination.

#include "core/finish.hpp"
#include "net/message.hpp"
#include "runtime/image.hpp"

namespace caf2::core {

/// Run the epoch allreduce loop of paper Fig. 7 on \p team for scope \p key.
/// \p wait_quiescence selects the paper's algorithm (true) or the
/// speculative "no upper bound" variant (false). Returns the number of
/// reduction waves used.
int detect_epoch(rt::Image& image, const Team& team, const net::FinishKey& key,
                 bool wait_quiescence);

/// Mattern four-counter wave detection: repeated allreduce of
/// (sent, completed) totals; terminates after two consecutive agreeing waves
/// with sent == completed. Returns the number of waves.
int detect_four_counter(rt::Image& image, const Team& team,
                        const net::FinishKey& key);

/// X10-style centralized vector counting: each quiescent member sends its
/// per-destination spawn vector to team rank 0, which declares termination
/// when, for every image j, the spawns targeted at j equal the completions
/// at j. Returns the number of collection rounds.
int detect_centralized(rt::Image& image, const Team& team,
                       const net::FinishKey& key);

/// Install the active-message handler used by detect_centralized.
void install_detector_handlers(rt::Runtime& runtime);

}  // namespace caf2::core
