#pragma once

/// \file finish.hpp
/// The finish construct (paper §III-A).
///
/// finish is a block-structured *collective* construct over a team: every
/// member executes a matching finish block, and no member leaves the block
/// until every asynchronous operation with implicit completion that any
/// member initiated inside it — including transitively shipped functions —
/// is globally complete. This differs from X10's finish (rooted at a single
/// place) because CAF 2.0 is SPMD: computation starts in multiple places.
///
/// Termination is detected with the paper's epoch-counting algorithm
/// (Fig. 7): each image waits until it is locally quiescent (every message
/// it sent was delivered, every message it received completed), then joins a
/// team allreduce of (sent − completed); a zero sum proves global
/// termination. The quiescence precondition bounds the number of reduction
/// waves by L+1, where L is the longest chain of transitively shipped
/// functions (paper Theorem 1).

#include <functional>

#include "runtime/team.hpp"

namespace caf2 {

/// Which termination-detection strategy an individual finish block uses.
/// kEpoch is the paper's algorithm; the others exist for the paper's
/// comparative evaluation (Fig. 18 and §V) — see core/detectors.hpp.
enum class DetectorKind {
  kEpoch,        ///< paper Fig. 7: quiescence wait + epoch allreduce
  kSpeculative,  ///< same allreduce loop without the quiescence wait
                 ///< (the "algorithm w/o upper bound" of paper Fig. 18)
  kFourCounter,  ///< Mattern's four-counter wave algorithm (AM++, §V)
  kCentralized,  ///< X10-style vector counting at a single owner (§V)
};

struct FinishOptions {
  DetectorKind detector = DetectorKind::kEpoch;
};

/// Statistics of the most recent finish block completed by this image.
struct FinishReport {
  int rounds = 0;          ///< detection reduction waves used
  double detect_us = 0.0;  ///< virtual time spent between end-finish entry
                           ///< and detected termination
};

/// Execute \p body inside a finish block over \p team. Collective: every
/// member of \p team must call finish at the same program point. Blocks may
/// nest; a nested block's team may differ from its parent's.
void finish(const Team& team, const std::function<void()>& body,
            FinishOptions options = {});

/// Report of the calling image's most recent completed finish block.
FinishReport last_finish_report();

/// RAII alternative to the functional form, for bodies that do not nest
/// cleanly into a lambda:
///
///     { FinishScope scope(team); ...; }   // detection runs in ~FinishScope
///
/// Prefer caf2::finish(); the destructor of FinishScope performs blocking
/// communication and will std::terminate if it throws during unwinding.
class FinishScope {
 public:
  explicit FinishScope(const Team& team, FinishOptions options = {});
  ~FinishScope();

  FinishScope(const FinishScope&) = delete;
  FinishScope& operator=(const FinishScope&) = delete;

  /// Run termination detection now (idempotent; also run by the destructor).
  void end();

 private:
  Team team_;
  FinishOptions options_;
  bool ended_ = false;
};

}  // namespace caf2
