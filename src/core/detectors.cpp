#include "core/detectors.hpp"

#include <array>
#include <unordered_map>

#include "ops/collectives.hpp"
#include "runtime/internal.hpp"
#include "support/serialize.hpp"

namespace caf2::core {

namespace {
using rt::Image;

/// Wait-for-graph identity of a finish scope's termination.
obs::ResourceId finish_resource(const net::FinishKey& key) {
  return obs::ResourceId{obs::ResourceKind::kFinish, -1,
                         static_cast<std::uint64_t>(key.team), key.seq};
}
}  // namespace

int detect_epoch(rt::Image& image, const Team& team,
                 const net::FinishKey& key, bool wait_quiescence) {
  rt::FinishState& state = image.finish_state(key);
  int rounds = 0;
  for (;;) {
    if (wait_quiescence) {
      // Paper Fig. 7 line 4: all messages this image sent have landed and
      // all messages it received have completed execution. This is the
      // precondition that bounds detection to L+1 waves (Theorem 1). The
      // wait spans both epochs: a message sent from the odd epoch has its
      // `sent` folded into the even counters at round end while its
      // acknowledgement still carries odd parity, so an even-only check
      // could block forever on a count the odd epoch will receive.
      image.wait_for([&state] { return state.quiesced_totals(); },
                     "finish quiescence", finish_resource(key));
    }
    state.enter_allreduce();  // proceed into the odd epoch
    const std::int64_t deficit = state.even_deficit();
    const std::int64_t total =
        allreduce<std::int64_t>(team, deficit, RedOp::kSum);
    state.exit_allreduce();  // fold odd into even; proceed into even epoch
    if (obs::FlightRecorder* fr = image.runtime().flight_recorder()) {
      fr->record(image.rank(), image.runtime().engine().now(),
                 obs::FrKind::kEpochFold, -1,
                 static_cast<std::uint64_t>(key.team), key.seq);
    }
    ++rounds;
    if (total == 0) {
      return rounds;
    }
  }
}

int detect_four_counter(rt::Image& image, const Team& team,
                        const net::FinishKey& key) {
  rt::FinishState& state = image.finish_state(key);
  std::int64_t prev_sent = -1;
  std::int64_t prev_completed = -1;
  int rounds = 0;
  for (;;) {
    // No quiescence precondition and no epochs: the wave snapshots raw
    // totals, so a single balanced wave can be a coincidence of an
    // inconsistent cut. Correctness comes from requiring two consecutive
    // agreeing waves — which is why this algorithm always pays at least one
    // reduction more than the epoch algorithm's base case.
    std::array<std::int64_t, 2> counters = {
        static_cast<std::int64_t>(state.sent_total()),
        static_cast<std::int64_t>(state.completed_total())};
    Event done;
    allreduce_async<std::int64_t>(team, counters, RedOp::kSum,
                                  {.src_done = done.handle()});
    done.wait();
    ++rounds;
    if (counters[0] == counters[1] && counters[0] == prev_sent &&
        counters[1] == prev_completed) {
      return rounds;
    }
    prev_sent = counters[0];
    prev_completed = counters[1];
    // Let in-flight work land before the next wave; otherwise waves can
    // spin without the cut changing.
    image.wait_for([&state] { return state.quiesced_totals(); },
                   "four-counter wave", finish_resource(key));
  }
}

/// --- centralized (X10-style) detector ---------------------------------------

namespace {

enum class DetectorMsg : std::uint8_t {
  kVector = 0,   ///< member -> owner: round, sent_to[p], completed_local
  kVerdict = 1,  ///< owner -> member: round, done flag
};

/// Owner-side per-round collection state and member-side verdict state,
/// keyed by finish scope. Handlers always execute on the destination image's
/// context, so this lives in per-image scratch storage (Image::scratch) —
/// NOT thread_local, which would be shared by every image under the fiber
/// execution backend.
struct CentralScope {
  // owner side
  std::unordered_map<std::int64_t, int> arrived;
  std::unordered_map<std::int64_t, std::vector<std::int64_t>> sent_sums;
  std::unordered_map<std::int64_t, std::vector<std::int64_t>> completed_by;
  // member side
  std::int64_t verdict_round = -1;
  bool verdict_done = false;
};

using CentralMap = std::unordered_map<net::FinishKey, CentralScope>;

constexpr char kCentralTag = 0;  // tag address for Image::scratch

CentralMap& central_map(Image& image) {
  std::shared_ptr<void>& slot = image.scratch(&kCentralTag);
  if (!slot) {
    slot = std::make_shared<CentralMap>();
  }
  return *std::static_pointer_cast<CentralMap>(slot);
}

void owner_absorb(Image& image, const Team& team, const net::FinishKey& key,
                  std::int64_t round, int from_team_rank,
                  const std::vector<std::int64_t>& sent_to,
                  std::int64_t completed_local);

void send_verdict(Image& image, const Team& team, const net::FinishKey& key,
                  std::int64_t round, bool done) {
  WriteArchive archive;
  archive.write(static_cast<std::uint8_t>(DetectorMsg::kVerdict));
  archive.write(key);
  archive.write(round);
  archive.write(static_cast<std::uint8_t>(done ? 1 : 0));
  for (int member = 1; member < team.size(); ++member) {
    net::Message message;
    message.header.source = image.rank();
    message.header.dest = team.world_rank(member);
    message.header.handler = rt::kHandlerDetector;
    message.payload = archive.bytes();
    image.runtime().network().send(std::move(message));
  }
  // Owner applies its own verdict directly.
  CentralScope& scope = central_map(image)[key];
  scope.verdict_round = round;
  scope.verdict_done = done;
}

void send_vector(Image& image, const Team& team, const net::FinishKey& key,
                 std::int64_t round) {
  rt::FinishState& state = image.finish_state(key);
  std::vector<std::int64_t> sent_to(
      static_cast<std::size_t>(image.num_images()), 0);
  const auto& raw = state.sent_to();
  std::copy(raw.begin(), raw.end(), sent_to.begin());
  const auto completed =
      static_cast<std::int64_t>(state.completed_total());

  if (team.rank() == 0) {
    owner_absorb(image, team, key, round, 0, sent_to, completed);
    return;
  }
  net::Message message;
  message.header.source = image.rank();
  message.header.dest = team.world_rank(0);
  message.header.handler = rt::kHandlerDetector;
  WriteArchive archive;
  archive.write(static_cast<std::uint8_t>(DetectorMsg::kVector));
  archive.write(key);
  archive.write(round);
  archive.write(static_cast<std::int32_t>(team.rank()));
  archive.write(completed);
  archive.write(sent_to);
  message.payload = archive.take();
  image.runtime().network().send(std::move(message));
}

void owner_absorb(Image& image, const Team& team, const net::FinishKey& key,
                  std::int64_t round, int from_team_rank,
                  const std::vector<std::int64_t>& sent_to,
                  std::int64_t completed_local) {
  CentralScope& scope = central_map(image)[key];
  auto& sums = scope.sent_sums[round];
  auto& completed = scope.completed_by[round];
  const auto images = static_cast<std::size_t>(image.num_images());
  if (sums.empty()) {
    sums.assign(images, 0);
    completed.assign(images, 0);
  }
  for (std::size_t j = 0; j < images && j < sent_to.size(); ++j) {
    sums[j] += sent_to[j];
  }
  completed[static_cast<std::size_t>(
      team.world_rank(from_team_rank))] += completed_local;
  scope.arrived[round] += 1;

  if (scope.arrived[round] == team.size()) {
    // A place terminated iff every message targeted at it has completed
    // there; global termination iff that holds for every place.
    bool done = true;
    for (std::size_t j = 0; j < images; ++j) {
      if (sums[j] != completed[j]) {
        done = false;
        break;
      }
    }
    scope.arrived.erase(round);
    scope.sent_sums.erase(round);
    scope.completed_by.erase(round);
    send_verdict(image, team, key, round, done);
  }
}

}  // namespace

int detect_centralized(rt::Image& image, const Team& team,
                       const net::FinishKey& key) {
  rt::FinishState& state = image.finish_state(key);
  int rounds = 0;
  for (std::int64_t round = 0;; ++round) {
    // A worker reports its vector once it has locally quiesced (X10 workers
    // report on local quiescence of their task pools).
    image.wait_for([&state] { return state.quiesced_totals(); },
                   "centralized quiescence", finish_resource(key));
    send_vector(image, team, key, round);
    ++rounds;
    // Re-resolve the scope each wave: handlers may rehash the map while we
    // are blocked, and the entry may not exist yet on the first pass.
    image.wait_for(
        [&image, key, round] {
          CentralScope& scope = central_map(image)[key];
          return scope.verdict_round >= round;
        },
        "centralized verdict", finish_resource(key));
    if (central_map(image)[key].verdict_done) {
      central_map(image).erase(key);
      return rounds;
    }
  }
}

void install_detector_handlers(rt::Runtime& runtime) {
  runtime.set_handler(
      rt::kHandlerDetector, [](Image& image, net::Message&& message) {
        ReadArchive archive(message.payload);
        const auto type = static_cast<DetectorMsg>(
            archive.read<std::uint8_t>());
        const auto key = archive.read<net::FinishKey>();
        const auto round = archive.read<std::int64_t>();
        if (type == DetectorMsg::kVector) {
          const auto from_team_rank = archive.read<std::int32_t>();
          const auto completed = archive.read<std::int64_t>();
          const auto sent_to = archive.read<std::vector<std::int64_t>>();
          const auto team_data = image.find_team(key.team);
          CAF2_ASSERT(team_data != nullptr,
                      "centralized detector: unknown team");
          owner_absorb(image, Team(team_data), key, round, from_team_rank,
                       sent_to, completed);
        } else {
          const auto done = archive.read<std::uint8_t>() != 0;
          CentralScope& scope = central_map(image)[key];
          scope.verdict_round = round;
          scope.verdict_done = done;
          image.runtime().engine().unblock(image.rank());
        }
      });
}

}  // namespace caf2::core
