#pragma once

/// \file inline_fn.hpp
/// Move-only callable with small-buffer storage, used for the engine's
/// pooled Call events.
///
/// The engine dispatches tens of millions of callbacks per benchmark run;
/// a fresh std::function per event heap-allocates as soon as the closure
/// outgrows ~16 bytes (every network delivery closure does: it carries a
/// Message). InlineFn stores closures up to kInlineBytes in place — sized so
/// a whole message "flight" (payload vector + completion callbacks + timing)
/// fits — and only falls back to the heap beyond that. Instances live in the
/// engine's slot pool and are relocated (move + destroy) when the pool's
/// backing vector grows or when a slot is handed to a dispatcher.

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace caf2::sim {

class InlineFn {
 public:
  /// Inline capacity. 200 bytes holds a staged network flight (Message with
  /// its payload vector, two std::function completion callbacks, timing and
  /// reserved sequence numbers) without touching the heap.
  static constexpr std::size_t kInlineBytes = 200;

  InlineFn() = default;

  template <class F,
            class = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, InlineFn> &&
                std::is_invocable_r_v<void, std::remove_cvref_t<F>&>>>
  InlineFn(F&& fn) {  // NOLINT(google-explicit-constructor)
    using Fn = std::remove_cvref_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
      invoke_ = [](void* self) { (*static_cast<Fn*>(self))(); };
      manage_ = [](Op op, void* self, void* dst) {
        Fn* fn = static_cast<Fn*>(self);
        if (op == Op::kRelocate) {
          ::new (dst) Fn(std::move(*fn));
        }
        fn->~Fn();
      };
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(fn)));
      invoke_ = [](void* self) { (**static_cast<Fn**>(self))(); };
      manage_ = [](Op op, void* self, void* dst) {
        Fn** slot = static_cast<Fn**>(self);
        if (op == Op::kRelocate) {
          ::new (dst) Fn*(*slot);
        } else {
          delete *slot;
        }
      };
    }
  }

  InlineFn(InlineFn&& other) noexcept { move_from(other); }

  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;

  ~InlineFn() { reset(); }

  void operator()() { invoke_(storage_); }

  explicit operator bool() const { return invoke_ != nullptr; }

  void reset() {
    if (invoke_ != nullptr) {
      manage_(Op::kDestroy, storage_, nullptr);
      invoke_ = nullptr;
      manage_ = nullptr;
    }
  }

 private:
  enum class Op { kRelocate, kDestroy };
  using InvokeFn = void (*)(void*);
  using ManageFn = void (*)(Op, void* self, void* dst);

  void move_from(InlineFn& other) noexcept {
    if (other.invoke_ != nullptr) {
      other.manage_(Op::kRelocate, other.storage_, storage_);
      invoke_ = other.invoke_;
      manage_ = other.manage_;
      other.invoke_ = nullptr;
      other.manage_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte storage_[kInlineBytes];
  InvokeFn invoke_ = nullptr;
  ManageFn manage_ = nullptr;
};

}  // namespace caf2::sim
