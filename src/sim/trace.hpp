#pragma once

/// \file trace.hpp
/// Optional event trace recorded by the simulation engine. Tests use traces
/// to prove determinism: two runs with the same configuration must produce
/// byte-identical traces.

#include <cstdint>
#include <string>
#include <vector>

namespace caf2::sim {

enum class TraceKind : std::uint8_t {
  kWake,      ///< a participant was handed the token
  kCall,      ///< an engine callback (e.g. network stage/delivery) ran
  kBlock,     ///< a participant blocked
  kAdvance,   ///< a participant advanced its clock (modeled compute)
  kFinish,    ///< a participant's body returned
};

/// One scheduler decision.
struct TraceEntry {
  std::uint64_t seq;   ///< global event sequence number
  double time;         ///< virtual time in microseconds
  TraceKind kind;
  int participant;     ///< subject participant, or -1 for engine calls

  bool operator==(const TraceEntry&) const = default;
};

/// Render a trace as one line per entry (stable format used in test
/// comparisons and failure diagnostics).
std::string render_trace(const std::vector<TraceEntry>& trace);

const char* to_string(TraceKind kind);

}  // namespace caf2::sim
