#pragma once

/// \file fiber.hpp
/// Stackful fibers for the simulation engine's fiber execution backend
/// (DESIGN.md §4.8).
///
/// A Fiber is a user-level execution context with its own stack, multiplexed
/// cooperatively on whichever OS thread resumes it. The engine gives every
/// simulated participant a fiber instead of an OS thread, so handing the
/// scheduler token from one participant to the next is a userspace register
/// swap (~tens of nanoseconds) rather than a mutex + condition-variable
/// round trip through the kernel (~microseconds) — the difference between
/// simulating 64 images and simulating the paper's 1024.
///
/// Mechanics:
///  - the context switch saves exactly the callee-saved register state the
///    SysV ABI requires (hand-rolled assembly on x86-64; ucontext elsewhere,
///    correct but slower since swapcontext makes a sigprocmask syscall);
///  - stacks are anonymous mmap regions with a PROT_NONE guard page at the
///    low end, so runaway recursion faults deterministically instead of
///    silently corrupting a neighbouring allocation, and they are recycled
///    through a process-wide pool because benchmark sweeps construct
///    thousands of engines back to back;
///  - AddressSanitizer is kept informed of every stack switch via the
///    __sanitizer_*_switch_fiber API, so ASan builds run fibers natively.
///    ThreadSanitizer is not: TSan models synchronization between OS
///    threads, and a single-threaded fiber scheduler would hide exactly the
///    races it exists to find — fibers_supported() is false under TSan and
///    the engine falls back to the thread backend (DESIGN.md §4.8).
///
/// Discipline: resume() may only be called from outside the fiber (the
/// scheduler), suspend() only from inside it, and both always on the same
/// OS thread for a given fiber. The entry function must not let exceptions
/// escape and must return normally; a fiber destroyed while suspended
/// mid-body releases its stack without running pending destructors (the
/// engine only does this after unwinding every participant).

#include <cstddef>
#include <functional>

namespace caf2::sim {

/// True when the stackful-fiber backend can be used in this build (false
/// under ThreadSanitizer).
bool fibers_supported();

class Fiber {
 public:
  /// Create a suspended fiber that will run \p entry when first resumed.
  /// \p stack_bytes is the usable stack size (rounded up to whole pages; a
  /// guard page is added on top of it).
  Fiber(std::size_t stack_bytes, std::function<void()> entry);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Switch from the caller onto the fiber's stack. Returns when the fiber
  /// suspends or its entry function returns. Must not be called on a
  /// finished fiber.
  void resume();

  /// Switch from the currently running fiber back to its resumer. Must be
  /// called from inside a fiber.
  static void suspend();

  /// The fiber currently executing on this thread (nullptr outside fibers).
  static Fiber* current();

  /// True once the fiber has been resumed at least once.
  bool started() const { return started_; }

  /// True once the entry function has returned; the fiber can no longer be
  /// resumed.
  bool finished() const { return finished_; }

  /// Trim the process-wide stack pool down to at most \p keep cached stacks
  /// (0 releases everything). Mainly for tests that measure memory.
  static void trim_stack_pool(std::size_t keep = 0);

  /// A pooled stack mapping (public only for the internal stack pool).
  struct Stack {
    void* base = nullptr;        ///< mmap base (guard page lives here)
    std::size_t total = 0;       ///< mapped bytes including the guard page
    std::size_t guard = 0;       ///< guard size at the low end
    void* limit() const;         ///< lowest usable address
    void* top() const;           ///< one past the highest usable address
    std::size_t usable() const { return total - guard; }
  };

 private:
  friend void fiber_entry_thunk(void* raw);

  // Never returns (the final context switch leaves this frame forever), but
  // deliberately NOT [[noreturn]]: ASan prefixes calls to noreturn functions
  // with __asan_handle_no_return, which would run on the fresh fiber stack
  // before __sanitizer_finish_switch_fiber and crash the sanitizer runtime.
  void run_entry();

  std::function<void()> entry_;
  Stack stack_{};
  void* fiber_sp_ = nullptr;  ///< suspended fiber's stack pointer
  void* resumer_sp_ = nullptr;  ///< resumer's stack pointer while fiber runs
  bool started_ = false;
  bool finished_ = false;

  // AddressSanitizer bookkeeping (unused members cost nothing elsewhere).
  void* asan_resumer_fake_stack_ = nullptr;
  void* asan_fiber_fake_stack_ = nullptr;
  const void* asan_resumer_stack_bottom_ = nullptr;
  std::size_t asan_resumer_stack_size_ = 0;
};

}  // namespace caf2::sim
