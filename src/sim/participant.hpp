#pragma once

/// \file participant.hpp
/// Convenience wrappers around the calling participant's engine context.
/// These are thin free functions so higher layers (runtime, kernels) don't
/// need to thread an Engine* everywhere.

#include "sim/engine.hpp"

namespace caf2::sim {

/// Engine of the calling participant thread; throws if called elsewhere.
Engine& this_engine();

/// Participant id of the calling thread; throws if called elsewhere.
int this_participant();

/// True when called on a simulated participant thread.
bool on_participant_thread();

/// Current virtual time (microseconds) of the calling participant's engine.
double virtual_now();

/// Model \p us microseconds of local computation.
void virtual_compute(double us);

}  // namespace caf2::sim
