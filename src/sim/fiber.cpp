#include "sim/fiber.hpp"

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <vector>

#include "support/error.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#include <unistd.h>
#define CAF2_FIBER_POSIX 1
#endif

// Sanitizer detection (GCC defines __SANITIZE_*, Clang has __has_feature).
#if defined(__SANITIZE_ADDRESS__)
#define CAF2_ASAN 1
#endif
#if defined(__SANITIZE_THREAD__)
#define CAF2_TSAN 1
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define CAF2_ASAN 1
#endif
#if __has_feature(thread_sanitizer)
#define CAF2_TSAN 1
#endif
#endif

#if defined(CAF2_ASAN)
#include <sanitizer/common_interface_defs.h>
#endif

/// The fast context switch is hand-rolled for x86-64 SysV; everything else
/// POSIX falls back to ucontext (correct, but swapcontext pays a sigprocmask
/// syscall per switch).
#if defined(__x86_64__) && defined(CAF2_FIBER_POSIX)
#define CAF2_FIBER_ASM_X86_64 1
#else
#include <ucontext.h>
#endif

namespace caf2::sim {
namespace {

thread_local Fiber* tl_current_fiber = nullptr;

std::size_t page_size() {
#if defined(CAF2_FIBER_POSIX)
  static const std::size_t size =
      static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  return size;
#else
  return 4096;
#endif
}

std::size_t round_up_pages(std::size_t bytes) {
  const std::size_t page = page_size();
  return ((bytes + page - 1) / page) * page;
}

}  // namespace

void* Fiber::Stack::limit() const {
  return static_cast<char*>(base) + guard;
}

void* Fiber::Stack::top() const { return static_cast<char*>(base) + total; }

namespace {

/// Process-wide recycler of guard-paged fiber stacks. Benchmark sweeps
/// construct thousands of engines back to back (possibly from several sweep
/// worker threads at once); reusing mappings turns per-fiber setup into a
/// freelist pop. Released stacks are MADV_DONTNEED'd so cached mappings do
/// not hold resident memory.
class StackPool {
 public:
  static StackPool& instance() {
    static StackPool pool;
    return pool;
  }

  Fiber::Stack acquire(std::size_t usable_bytes) {
    const std::size_t guard = page_size();
    const std::size_t total = round_up_pages(usable_bytes) + guard;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (std::size_t i = free_.size(); i-- > 0;) {
        if (free_[i].total == total) {
          Fiber::Stack stack = free_[i];
          free_[i] = free_.back();
          free_.pop_back();
          return stack;
        }
      }
    }
#if defined(CAF2_FIBER_POSIX)
    int flags = MAP_PRIVATE | MAP_ANONYMOUS;
#if defined(MAP_STACK)
    flags |= MAP_STACK;
#endif
#if defined(MAP_NORESERVE)
    flags |= MAP_NORESERVE;
#endif
    void* base =
        mmap(nullptr, total, PROT_READ | PROT_WRITE, flags, -1, 0);
    CAF2_ASSERT(base != MAP_FAILED, "fiber stack mmap failed");
    // Each PROT_NONE guard page splits a VMA, so paper-scale engines (tens
    // of thousands of live fibers) would exhaust vm.max_map_count (default
    // 65530) long before they exhaust memory — and once a process sits at
    // that ceiling, *unrelated* mmaps (malloc arenas) start failing too.
    // Cap the number of guard-paged mappings well below the default ceiling;
    // stacks beyond the cap go guardless, and adjacent anonymous mappings
    // with identical protections coalesce, so the map count stops growing.
    // Overflow detection is lost for those stacks; correctness is not.
    const bool want_guard =
        guards_enabled_.load(std::memory_order_relaxed) &&
        guarded_mapped_.load(std::memory_order_relaxed) < kMaxGuardedStacks;
    if (want_guard) {
      if (mprotect(base, guard, PROT_NONE) == 0) {
        guarded_mapped_.fetch_add(1, std::memory_order_relaxed);
        return Fiber::Stack{base, total, guard};
      }
      guards_enabled_.store(false, std::memory_order_relaxed);
      std::fprintf(stderr,
                   "caf2: fiber stack guard-page mprotect failed (%s); "
                   "continuing with guardless stacks — raise vm.max_map_count "
                   "to restore overflow detection\n",
                   std::strerror(errno));
    }
    return Fiber::Stack{base, total, 0};
#else
    void* base = std::malloc(total);
    CAF2_ASSERT(base != nullptr, "fiber stack allocation failed");
    return Fiber::Stack{base, total, 0};
#endif
  }

  void release(Fiber::Stack stack) {
#if defined(CAF2_FIBER_POSIX)
    // Drop the resident pages but keep the mapping cached.
    madvise(stack.limit(), stack.usable(), MADV_DONTNEED);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (free_.size() < kMaxCached) {
        free_.push_back(stack);
        return;
      }
    }
    unmap(stack);
#else
    std::free(stack.base);
#endif
  }

  void trim(std::size_t keep) {
    std::vector<Fiber::Stack> victims;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      while (free_.size() > keep) {
        victims.push_back(free_.back());
        free_.pop_back();
      }
    }
#if defined(CAF2_FIBER_POSIX)
    for (const Fiber::Stack& stack : victims) {
      unmap(stack);
    }
#else
    for (const Fiber::Stack& stack : victims) {
      std::free(stack.base);
    }
#endif
  }

 private:
#if defined(CAF2_FIBER_POSIX)
  void unmap(const Fiber::Stack& stack) {
    if (stack.guard > 0) {
      guarded_mapped_.fetch_sub(1, std::memory_order_relaxed);
    }
    munmap(stack.base, stack.total);
  }
#endif

  static constexpr std::size_t kMaxCached = 4096;
  /// Guard-paged mappings cost 2 VMAs each; cap them far enough below the
  /// Linux default vm.max_map_count (65530) that the rest of the process
  /// still has headroom.
  static constexpr std::size_t kMaxGuardedStacks = 8192;
  std::mutex mutex_;
  std::vector<Fiber::Stack> free_;
  /// Cleared the first time a guard-page mprotect fails (vm.max_map_count
  /// pressure); stacks allocated afterwards have no guard page.
  std::atomic<bool> guards_enabled_{true};
  /// Live guard-paged mappings (freelist included — cached stacks keep
  /// their VMAs).
  std::atomic<std::size_t> guarded_mapped_{0};
};

}  // namespace

bool fibers_supported() {
#if defined(CAF2_TSAN) || !defined(CAF2_FIBER_POSIX)
  return false;
#else
  return true;
#endif
}

void Fiber::trim_stack_pool(std::size_t keep) {
  StackPool::instance().trim(keep);
}

/// --- context switch ---------------------------------------------------------

void fiber_entry_thunk(void* raw);

#if defined(CAF2_FIBER_ASM_X86_64)

// caf2_ctx_swap(void** save_sp, void* load_sp, void* arg):
// save the SysV callee-saved state (rbp rbx r12-r15, x87 control word, mxcsr)
// on the current stack, store the resulting stack pointer through save_sp,
// switch to load_sp, restore, and return `arg` (also left in rax for the
// trampoline of a fresh fiber).
asm(R"(
        .text
        .align  16
        .globl  caf2_ctx_swap
        .hidden caf2_ctx_swap
        .type   caf2_ctx_swap, @function
caf2_ctx_swap:
        pushq   %rbp
        pushq   %rbx
        pushq   %r12
        pushq   %r13
        pushq   %r14
        pushq   %r15
        subq    $8, %rsp
        fnstcw  (%rsp)
        stmxcsr 4(%rsp)
        movq    %rsp, (%rdi)
        movq    %rsi, %rsp
        fldcw   (%rsp)
        ldmxcsr 4(%rsp)
        addq    $8, %rsp
        popq    %r15
        popq    %r14
        popq    %r13
        popq    %r12
        popq    %rbx
        popq    %rbp
        movq    %rdx, %rax
        retq
        .size   caf2_ctx_swap, .-caf2_ctx_swap

        .align  16
        .globl  caf2_fiber_tramp
        .hidden caf2_fiber_tramp
        .type   caf2_fiber_tramp, @function
caf2_fiber_tramp:
        movq    %rax, %rdi
        callq   caf2_fiber_entry_cshim@PLT
        ud2
        .size   caf2_fiber_tramp, .-caf2_fiber_tramp
)");

extern "C" void* caf2_ctx_swap(void** save_sp, void* load_sp, void* arg);
extern "C" void caf2_fiber_tramp();

extern "C" void caf2_fiber_entry_cshim(void* raw) {
  caf2::sim::fiber_entry_thunk(raw);
}

namespace {

/// Lay out a fresh stack so that caf2_ctx_swap's restore sequence "returns"
/// into the trampoline: from the saved stack pointer upward — x87 control
/// word + mxcsr (8 bytes), six callee-saved registers, return address. The
/// saved pointer sits 64 bytes below the 16-aligned top, giving the
/// trampoline a 16-aligned rsp as the SysV ABI requires before a call.
void* make_initial_frame(void* stack_top) {
  std::uintptr_t top = reinterpret_cast<std::uintptr_t>(stack_top);
  top &= ~static_cast<std::uintptr_t>(15);
  void** frame = reinterpret_cast<void**>(top - 64);
  std::memset(frame, 0, 64);
  std::uint16_t fcw = 0;
  std::uint32_t mxcsr = 0;
  asm volatile("fnstcw %0" : "=m"(fcw));
  asm volatile("stmxcsr %0" : "=m"(mxcsr));
  std::memcpy(reinterpret_cast<char*>(frame), &fcw, sizeof(fcw));
  std::memcpy(reinterpret_cast<char*>(frame) + 4, &mxcsr, sizeof(mxcsr));
  frame[7] = reinterpret_cast<void*>(&caf2_fiber_tramp);
  return frame;
}

}  // namespace

#else  // ucontext fallback

namespace {

struct UctxPair {
  ucontext_t fiber;
  ucontext_t resumer;
};

void ucontext_tramp(unsigned hi, unsigned lo) {
  const std::uintptr_t raw =
      (static_cast<std::uintptr_t>(hi) << 32) | static_cast<std::uintptr_t>(lo);
  caf2::sim::fiber_entry_thunk(reinterpret_cast<void*>(raw));
}

}  // namespace

#endif

/// --- ASan fiber annotations -------------------------------------------------

#if defined(CAF2_ASAN)
#define CAF2_ASAN_START_SWITCH(save, bottom, size) \
  __sanitizer_start_switch_fiber((save), (bottom), (size))
#define CAF2_ASAN_FINISH_SWITCH(fake, bottom, size) \
  __sanitizer_finish_switch_fiber((fake), (bottom), (size))
#else
#define CAF2_ASAN_START_SWITCH(save, bottom, size) ((void)0)
#define CAF2_ASAN_FINISH_SWITCH(fake, bottom, size) ((void)0)
#endif

/// --- Fiber ------------------------------------------------------------------

Fiber::Fiber(std::size_t stack_bytes, std::function<void()> entry)
    : entry_(std::move(entry)) {
  CAF2_REQUIRE(static_cast<bool>(entry_), "Fiber needs an entry function");
  stack_ = StackPool::instance().acquire(stack_bytes);
#if defined(CAF2_FIBER_ASM_X86_64)
  fiber_sp_ = make_initial_frame(stack_.top());
#else
  auto* pair = new UctxPair();
  CAF2_ASSERT(getcontext(&pair->fiber) == 0, "getcontext failed");
  pair->fiber.uc_stack.ss_sp = stack_.limit();
  pair->fiber.uc_stack.ss_size = stack_.usable();
  pair->fiber.uc_link = nullptr;
  const std::uintptr_t raw = reinterpret_cast<std::uintptr_t>(this);
  makecontext(&pair->fiber, reinterpret_cast<void (*)()>(ucontext_tramp), 2,
              static_cast<unsigned>(raw >> 32),
              static_cast<unsigned>(raw & 0xFFFFFFFFu));
  fiber_sp_ = pair;
#endif
}

Fiber::~Fiber() {
#if !defined(CAF2_FIBER_ASM_X86_64)
  delete static_cast<UctxPair*>(fiber_sp_);
#endif
  StackPool::instance().release(stack_);
}

Fiber* Fiber::current() { return tl_current_fiber; }

void Fiber::resume() {
  CAF2_ASSERT(!finished_, "resume() on a finished fiber");
  CAF2_ASSERT(tl_current_fiber != this, "resume() from inside the fiber");
  Fiber* previous = tl_current_fiber;
  tl_current_fiber = this;
  started_ = true;
  CAF2_ASAN_START_SWITCH(&asan_resumer_fake_stack_, stack_.limit(),
                         stack_.usable());
#if defined(CAF2_FIBER_ASM_X86_64)
  caf2_ctx_swap(&resumer_sp_, fiber_sp_, this);
#else
  auto* pair = static_cast<UctxPair*>(fiber_sp_);
  CAF2_ASSERT(swapcontext(&pair->resumer, &pair->fiber) == 0,
              "swapcontext into fiber failed");
#endif
  CAF2_ASAN_FINISH_SWITCH(asan_resumer_fake_stack_, nullptr, nullptr);
  tl_current_fiber = previous;
}

void Fiber::suspend() {
  Fiber* self = tl_current_fiber;
  CAF2_ASSERT(self != nullptr, "suspend() outside any fiber");
  CAF2_ASAN_START_SWITCH(&self->asan_fiber_fake_stack_,
                         self->asan_resumer_stack_bottom_,
                         self->asan_resumer_stack_size_);
#if defined(CAF2_FIBER_ASM_X86_64)
  caf2_ctx_swap(&self->fiber_sp_, self->resumer_sp_, nullptr);
#else
  auto* pair = static_cast<UctxPair*>(self->fiber_sp_);
  CAF2_ASSERT(swapcontext(&pair->fiber, &pair->resumer) == 0,
              "swapcontext out of fiber failed");
#endif
  // Back on the fiber after a later resume().
  CAF2_ASAN_FINISH_SWITCH(self->asan_fiber_fake_stack_,
                          &self->asan_resumer_stack_bottom_,
                          &self->asan_resumer_stack_size_);
}

namespace {

/// abort() via a volatile pointer so the compiler cannot prove any caller
/// noreturn. If run_entry() were provably noreturn, ASan would prefix the
/// call in fiber_entry_thunk with __asan_handle_no_return — which unpoisons
/// what it believes is the current stack; executed on a fresh fiber stack
/// before __sanitizer_finish_switch_fiber has run, that check-fails inside
/// the sanitizer runtime.
[[gnu::noinline]] void fiber_fatal_abort() {
  void (*volatile indirect_abort)() = std::abort;
  indirect_abort();
}

}  // namespace

void fiber_entry_thunk(void* raw) {
  static_cast<Fiber*>(raw)->run_entry();
}

void Fiber::run_entry() {
  // Complete the switch that carried us here (records the resumer's stack
  // so suspend() can announce switches back to it).
  CAF2_ASAN_FINISH_SWITCH(asan_fiber_fake_stack_, &asan_resumer_stack_bottom_,
                          &asan_resumer_stack_size_);
  try {
    entry_();
  } catch (...) {
    // The entry contract forbids escaping exceptions: there is no frame
    // below us to unwind into.
    std::fprintf(stderr, "caf2::sim::Fiber: exception escaped fiber entry\n");
    fiber_fatal_abort();
  }
  entry_ = nullptr;  // run capture destructors while still on this stack
  finished_ = true;
  CAF2_ASAN_START_SWITCH(nullptr, asan_resumer_stack_bottom_,
                         asan_resumer_stack_size_);
#if defined(CAF2_FIBER_ASM_X86_64)
  void* dummy = nullptr;
  caf2_ctx_swap(&dummy, resumer_sp_, nullptr);
#else
  auto* pair = static_cast<UctxPair*>(fiber_sp_);
  swapcontext(&pair->fiber, &pair->resumer);
#endif
  fiber_fatal_abort();  // a finished fiber must never be resumed
}

}  // namespace caf2::sim
