#pragma once

/// \file engine.hpp
/// Deterministic discrete-event simulation engine.
///
/// This is the substrate that substitutes for the paper's Cray XK6/XE6
/// testbeds (DESIGN.md §1, §4.1). Each CAF process image runs as its own
/// execution context, but the engine admits exactly **one runnable context
/// at a time**: a participant that blocks, advances its virtual clock, or
/// finishes hands the token to whichever pending event is earliest in
/// *virtual time* (ties broken by insertion sequence, so runs are fully
/// deterministic).
///
/// Two execution backends implement that contract (DESIGN.md §4.8):
///  - ExecBackend::kThreads — one OS thread per participant; the token
///    handoff is a mutex + per-participant condition variable. This is the
///    backend ThreadSanitizer can instrument.
///  - ExecBackend::kFibers — one stackful fiber per participant, all
///    multiplexed on the thread that called run(); the token handoff is a
///    userspace register swap and the engine runs lock-free. This is what
///    makes 1024-image (paper-scale) runs practical.
/// Both backends execute participants in exactly the same order, so traces,
/// event counts, and context-switch counts are bit-identical across them.
/// EngineOptions::backend picks one; CAF2_SIM_BACKEND={threads,fibers}
/// overrides it from the environment.
///
/// Three event kinds live in the heap:
///  - Wake(p, t): hand the token to participant p at time t (created by
///    advance(), yield(), and unblock());
///  - Call(f, t): run an engine callback at time t (network staging,
///    delivery, timers). Callbacks run on whichever thread is dispatching
///    and must not touch participant-local state or block;
///  - participants that block without a scheduled wake are resumed only by a
///    subsequent unblock() from a callback or another participant.
///
/// Two hot-path properties keep dispatch cheap (DESIGN.md §4.6):
///  - heap events are 24-byte PODs; a Call event's closure lives in a pooled
///    small-buffer slot (InlineFn), not in a freshly allocated std::function;
///  - when advance()/yield() can prove the caller's own wake would be the
///    very next event dispatched, it short-circuits the push/pop/handoff
///    entirely (the self-wake fast path). The fast path is trace-identical
///    to the slow path; set CAF2_SIM_NO_FASTPATH=1 (or
///    EngineOptions::enable_fastpath = false) to force the slow path.
///
/// If the heap drains while unfinished participants are blocked, the
/// simulated program has provably deadlocked; the engine collects a
/// structured obs::Postmortem (its own per-participant section plus whatever
/// the installed postmortem collector contributes — the runtime adds wait-for
/// graph edges, per-image finish counters, flight-recorder tails, and the
/// network's in-flight messages) and raises an obs::StallError carrying both
/// the postmortem and its deterministic text rendering in every participant.
/// A virtual-time quiet-period watchdog (EngineOptions::watchdog_quiet_us)
/// produces the same postmortem when every unfinished participant is blocked
/// and the next pending event is suspiciously far in the virtual future
/// (e.g. a runaway retransmission backoff chain).

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "sim/fiber.hpp"
#include "sim/inline_fn.hpp"
#include "sim/trace.hpp"
#include "support/config.hpp"
#include "support/error.hpp"

namespace caf2::obs {
class Recorder;
struct Postmortem;
enum class FailKind : std::uint8_t;
}

namespace caf2::sim {

class Engine;

/// The execution backend a given configuration actually runs: applies the
/// CAF2_SIM_BACKEND environment override, resolves kAuto, and falls back to
/// threads where fibers are unsupported (ThreadSanitizer builds). This is
/// exactly the resolution the Engine constructor performs; exposed so tools
/// (bench metadata stamps) can report the backend without building an engine.
ExecBackend resolve_backend(ExecBackend configured);

/// Everything that makes the calling context "participant N of engine E".
/// With the thread backend each participant thread simply owns one of these
/// in thread-local storage; with the fiber backend the scheduler swaps the
/// thread-local instance on every fiber switch, so code above the engine
/// (e.g. the runtime's current-image pointer, stored in a slot) never needs
/// to know which backend is running it.
struct ExecContext {
  Engine* engine = nullptr;
  int id = -1;
  /// Backend-agnostic replacement for participant-local `thread_local`
  /// variables in higher layers. Slot 0: rt::Image*, slot 1: rt::Runtime*.
  std::array<void*, 2> slots{};
};

/// Engine knobs (a subset of caf2::RuntimeOptions relevant to scheduling).
struct EngineOptions {
  bool record_trace = false;
  std::uint64_t max_events = 0;  ///< 0 = unlimited
  std::string label = "sim";

  /// Upper bound on recorded TraceEntry records (0 = unlimited). Entries past
  /// the cap are counted (Engine::trace_dropped()) and discarded, so
  /// record_trace on a long 1024-image run cannot grow without bound. The
  /// default bounds the trace at ~128 MiB.
  std::uint64_t max_trace_entries = std::uint64_t{1} << 22;

  /// Enable the self-wake fast path (see file comment). The environment
  /// variable CAF2_SIM_NO_FASTPATH=1 overrides this to false; results are
  /// bit-identical either way, so the switch exists only for regression
  /// testing and micro-benchmark comparisons.
  bool enable_fastpath = true;

  /// Quiet-period watchdog (virtual microseconds; 0 = disabled). When every
  /// unfinished participant is blocked and the earliest pending event lies
  /// more than this far beyond the current virtual time, the engine fails
  /// the run with a watchdog report instead of fast-forwarding the clock.
  /// Participants that are merely advancing their clocks (modeled compute)
  /// hold a scheduled wake and never trip the watchdog.
  double watchdog_quiet_us = 0.0;

  /// Execution backend (see the file comment). kAuto resolves to fibers
  /// wherever fibers_supported(), else threads; an explicit kFibers also
  /// falls back to threads when unsupported (ThreadSanitizer builds). The
  /// environment variable CAF2_SIM_BACKEND={threads,fibers} overrides this.
  ExecBackend backend = ExecBackend::kAuto;

  /// Usable stack bytes per participant fiber (rounded up to whole pages; a
  /// PROT_NONE guard page is added below). Virtual memory only — resident
  /// cost is the pages a participant actually touches.
  std::size_t fiber_stack_bytes = std::size_t{1} << 20;
};

class Engine {
 public:
  Engine(int participants, EngineOptions options = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Execute \p body SPMD on every participant. Blocks until every
  /// participant's body returned. Rethrows the first participant exception
  /// (after unwinding all other participants).
  void run(const std::function<void(int)>& body);

  /// Number of participants.
  int size() const { return static_cast<int>(participants_.size()); }

  /// --- calls valid only on a participant thread ---------------------------

  /// Engine owning the calling participant context (nullptr elsewhere).
  static Engine* current_engine();

  /// Participant id of the calling context (-1 elsewhere).
  static int current_id();

  /// Participant-local storage slot of the calling execution context (see
  /// ExecContext::slots). Higher layers use these instead of `thread_local`
  /// so their per-image state follows the participant across fiber switches.
  static void*& context_slot(int index);

  /// Current virtual time in microseconds.
  double now() const { return now_us_.load(std::memory_order_relaxed); }

  /// Model local computation: advance virtual time by \p dt microseconds and
  /// yield to any earlier event.
  void advance(double dt);

  /// Let all events scheduled at the current time run before continuing.
  void yield() { advance(0.0); }

  /// Park the calling participant until another participant or a callback
  /// calls unblock() on it. \p reason appears in deadlock diagnostics.
  void block(const char* reason = "blocked");

  /// --- calls valid on a participant thread or inside a Call callback ------

  /// Make a blocked participant runnable at the current virtual time.
  /// Harmless if the participant is already runnable or finished.
  void unblock(int participant);

  /// Schedule a callback at absolute virtual time \p at (>= now()).
  /// Accepts any move-constructible void() callable; closures up to
  /// InlineFn::kInlineBytes are stored without heap allocation.
  template <class F>
  void post(double at, F&& fn) {
    post_call(at, InlineFn(std::forward<F>(fn)));
  }

  /// Schedule a callback \p delay microseconds from now.
  template <class F>
  void post_in(double delay, F&& fn) {
    post_call(now() + delay, InlineFn(std::forward<F>(fn)));
  }

  /// Reserve the next event sequence number without scheduling anything.
  /// Chained event sources (the network's message flights) reserve their
  /// later phases' sequence numbers up front so that scheduling an event
  /// lazily — from inside an earlier phase's callback — still dispatches in
  /// exactly the order an eager schedule would have produced.
  std::uint64_t reserve_seq();

  /// Schedule a callback under a sequence number previously returned by
  /// reserve_seq(). \p at is clamped to now() like post().
  void post_reserved(double at, std::uint64_t seq, InlineFn fn);

  /// Abort the run with a diagnosable failure: a structured obs::Postmortem
  /// is collected and every blocked participant is woken with an
  /// obs::StallError carrying the postmortem's text rendering. Callable from
  /// a participant thread or an engine callback; the reliability layer uses
  /// the two-argument form when a message exhausts its retransmission
  /// budget. The one-argument form tags the postmortem
  /// obs::FailKind::kExplicitFail.
  void fail(const std::string& why);
  void fail(const std::string& why, obs::FailKind kind);

  /// Install a callback that fills the runtime-owned sections of a
  /// Postmortem (wait-for graph, per-image counters, network state, blame).
  /// Invoked with the engine lock held: it must not call back into the
  /// engine except now(), backend(), and event_count(), and must only *read*
  /// simulation state — safe, because a stalling engine has no other context
  /// running. Exceptions it throws are swallowed into
  /// Postmortem::collector_error (never allowed to deadlock a failing run).
  using PostmortemCollector = std::function<void(obs::Postmortem&)>;
  void set_postmortem_collector(PostmortemCollector fn);

  /// Install a callback that contributes extra free-form sections to
  /// postmortems (legacy hook; prefer set_postmortem_collector). Same
  /// lock-held contract; exceptions are likewise swallowed.
  void set_diagnostics(std::function<std::string()> fn);

  /// Collect a Postmortem of the current (healthy or stalled) state, tagged
  /// obs::FailKind::kOnDemand. Callable from a participant context or from
  /// outside the run.
  obs::Postmortem snapshot_postmortem(const std::string& headline);

  /// The postmortem collected by the first failure, or null if the run has
  /// not failed. Also carried by the obs::StallError run() throws.
  std::shared_ptr<const obs::Postmortem> last_postmortem() const {
    return last_postmortem_;
  }

  /// --- introspection -------------------------------------------------------

  /// Total events dispatched so far.
  std::uint64_t event_count() const {
    return dispatched_.load(std::memory_order_relaxed);
  }

  /// True when the self-wake fast path is active (options + environment).
  bool fastpath_enabled() const { return fastpath_; }

  /// The resolved execution backend (options + environment + build support);
  /// never kAuto.
  ExecBackend backend() const { return backend_; }

  /// Token handoffs between *different* participants dispatched so far. A
  /// pure function of the dispatch order, so bit-identical across backends
  /// and with the fast path on or off — the determinism suite compares it.
  std::uint64_t context_switch_count() const {
    return context_switches_.load(std::memory_order_relaxed);
  }

  /// Recorded trace (empty unless EngineOptions::record_trace).
  const std::vector<TraceEntry>& trace() const { return trace_; }

  /// Trace entries discarded by EngineOptions::max_trace_entries.
  std::uint64_t trace_dropped() const { return trace_dropped_; }

  /// Attach an observability recorder (nullptr detaches; see obs/obs.hpp).
  /// Hooks fire from advance() and block(); a null observer costs one branch.
  /// Recording never schedules events, so an observed run's event schedule,
  /// trace, and stats are bit-identical to an unobserved one.
  void set_observer(obs::Recorder* observer) { observer_ = observer; }

 private:
  enum class PState : std::uint8_t { kIdle, kRunnable, kWaiting, kFinished };

  struct Participant {
    int id = -1;
    PState state = PState::kIdle;
    bool active = false;  ///< holds (or is about to receive) the token
    std::string block_reason;
    // Thread backend only:
    std::condition_variable cv;
    std::thread thread;
    // Fiber backend only:
    std::unique_ptr<Fiber> fiber;
    ExecContext context;  ///< saved while the fiber is suspended
  };

  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  /// Heap entry: a POD. Wake events carry the participant id; Call events
  /// carry an index into call_pool_ where the closure lives.
  struct Event {
    double at = 0.0;
    std::uint64_t seq = 0;
    std::int32_t wake_participant = -1;  ///< >= 0 for Wake events
    std::uint32_t call_slot = kNoSlot;   ///< != kNoSlot for Call events
  };

  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) {
        return a.at > b.at;  // min-heap on time
      }
      return a.seq > b.seq;  // FIFO among equal times
    }
  };

  friend struct CurrentParticipantGuard;

  /// Acquire the engine lock — in thread mode. The fiber backend runs every
  /// participant, callback, and the scheduler on one OS thread, so it skips
  /// the mutex entirely: lock_gate() then returns an empty unique_lock (no
  /// associated mutex), and the lock/unlock sites test lock.mutex() first.
  std::unique_lock<std::mutex> lock_gate() {
    return backend_ == ExecBackend::kThreads
               ? std::unique_lock<std::mutex>(mutex_)
               : std::unique_lock<std::mutex>();
  }

  void run_threads(const std::function<void(int)>& body);
  void run_fibers(const std::function<void(int)>& body);

  void participant_main(int id, const std::function<void(int)>& body);

  /// Fiber-backend participant body (entry function of the fiber).
  void fiber_main(int id, const std::function<void(int)>& body);

  /// Switch onto a participant's fiber, installing its ExecContext for the
  /// duration and saving it back (with any slot changes) on return.
  void resume_fiber(Participant& target);

  /// After a failure in fiber mode: resume every live fiber once so its
  /// pending engine call observes failed_ and throws, unwinding the body.
  /// Runs in rank order (deterministic); never-started fibers are retired
  /// directly, matching the thread backend's early-exit path.
  void unwind_live_fibers();

  /// Relinquish the token. Must be called with the gate held by a
  /// participant that currently has it. Thread mode: dispatches events until
  /// another participant is activated (possibly the caller), then waits
  /// until re-activated. Fiber mode: suspends back to the scheduler loop,
  /// which dispatches. Throws FatalError if the run failed meanwhile.
  void switch_out(std::unique_lock<std::mutex>& lock, Participant& self);

  /// Pop and dispatch events until a participant is activated or the heap
  /// drains. Returns with the gate held; the activated participant (if any)
  /// is left in activated_. \p dispatcher is the participant running this
  /// chain (nullptr when dispatching from run() or a finishing participant);
  /// activating the dispatcher itself skips the condition-variable notify,
  /// since the dispatcher observes `active` directly. A callback that throws
  /// fails the run with a dispatcher-tagged error instead of propagating.
  void dispatch_chain(std::unique_lock<std::mutex>& lock,
                      Participant* dispatcher);

  void post_call(double at, InlineFn fn);

  std::uint32_t acquire_slot(InlineFn fn);

  void fail_locked(std::unique_lock<std::mutex>& lock, const std::string& why);

  /// Collect the structured postmortem: engine-owned fields (participant
  /// states, event counts) plus whatever the postmortem collector and the
  /// legacy diagnostics callback contribute. Exceptions from either callback
  /// are swallowed into Postmortem::collector_error — a report must never
  /// deadlock the failing run it is reporting on. Requires mutex_ held.
  std::shared_ptr<const obs::Postmortem> build_postmortem_locked(
      obs::FailKind kind, const std::string& headline);

  /// Fail the run with a freshly collected postmortem (no-op when already
  /// failed — the first postmortem wins). failure_reason_ becomes the
  /// postmortem's text rendering. Requires mutex_ held.
  void fail_report_locked(std::unique_lock<std::mutex>& lock,
                          obs::FailKind kind, const std::string& headline);

  /// Throw the failure as an obs::StallError carrying last_postmortem_.
  [[noreturn]] void throw_failure() const;

  /// True when at least one participant is blocked and every unfinished one
  /// is (i.e. only heap events can make progress). Requires mutex_ held.
  bool all_unfinished_blocked_locked() const;

  void record(TraceKind kind, int participant);

  mutable std::mutex mutex_;
  std::condition_variable done_cv_;
  std::priority_queue<Event, std::vector<Event>, EventOrder> heap_;
  std::vector<InlineFn> call_pool_;        ///< Call closures, slot-addressed
  std::vector<std::uint32_t> free_slots_;  ///< recycled call_pool_ indices
  std::vector<std::unique_ptr<Participant>> participants_;
  EngineOptions options_;
  bool fastpath_ = true;
  ExecBackend backend_ = ExecBackend::kThreads;  ///< resolved, never kAuto
  std::function<std::string()> diagnostics_;
  PostmortemCollector collector_;
  std::shared_ptr<const obs::Postmortem> last_postmortem_;

  // now_us_ and dispatched_ are atomics so now()/event_count() stay callable
  // without the engine lock; all *writes* happen on the single thread that
  // currently owns the scheduler (token holder or dispatcher), so relaxed
  // ordering suffices — cross-thread publication rides the mutex handoff.
  std::atomic<double> now_us_{0.0};
  std::atomic<std::uint64_t> dispatched_{0};
  std::atomic<std::uint64_t> context_switches_{0};
  std::uint64_t next_seq_ = 0;
  int token_owner_ = -1;  ///< participant last handed the token
  Participant* activated_ = nullptr;  ///< dispatch_chain -> fiber scheduler
  int finished_count_ = 0;
  bool failed_ = false;
  std::string failure_reason_;
  std::exception_ptr first_error_;
  bool running_ = false;

  std::vector<TraceEntry> trace_;
  // Written only by the context that owns the scheduler (token holder or
  // dispatcher), like trace_ itself.
  std::uint64_t trace_dropped_ = 0;
  obs::Recorder* observer_ = nullptr;
};

/// RAII helper used in tests to run a closure body on every participant of a
/// fresh engine with the given options.
void run_spmd(int participants, const std::function<void(int)>& body,
              EngineOptions options = {});

}  // namespace caf2::sim
