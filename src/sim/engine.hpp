#pragma once

/// \file engine.hpp
/// Deterministic discrete-event simulation engine.
///
/// This is the substrate that substitutes for the paper's Cray XK6/XE6
/// testbeds (DESIGN.md §1, §4.1). Each CAF process image runs as an OS
/// thread, but the engine admits exactly **one runnable thread at a time**:
/// a thread that blocks, advances its virtual clock, or finishes hands the
/// token to whichever pending event is earliest in *virtual time* (ties
/// broken by insertion sequence, so runs are fully deterministic).
///
/// Three event kinds live in the heap:
///  - Wake(p, t): hand the token to participant p at time t (created by
///    advance(), yield(), and unblock());
///  - Call(f, t): run an engine callback at time t (network staging,
///    delivery, timers). Callbacks run on whichever thread is dispatching
///    and must not touch participant-local state or block;
///  - participants that block without a scheduled wake are resumed only by a
///    subsequent unblock() from a callback or another participant.
///
/// If the heap drains while unfinished participants are blocked, the
/// simulated program has provably deadlocked; the engine raises a
/// caf2::FatalError in every participant with a diagnostic listing who was
/// blocked where.

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "sim/trace.hpp"
#include "support/error.hpp"

namespace caf2::sim {

/// Engine knobs (a subset of caf2::RuntimeOptions relevant to scheduling).
struct EngineOptions {
  bool record_trace = false;
  std::uint64_t max_events = 0;  ///< 0 = unlimited
  std::string label = "sim";
};

class Engine {
 public:
  Engine(int participants, EngineOptions options = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Execute \p body SPMD on every participant. Blocks until every
  /// participant's body returned. Rethrows the first participant exception
  /// (after unwinding all other participants).
  void run(const std::function<void(int)>& body);

  /// Number of participants.
  int size() const { return static_cast<int>(participants_.size()); }

  /// --- calls valid only on a participant thread ---------------------------

  /// Engine owning the calling participant thread (nullptr elsewhere).
  static Engine* current_engine();

  /// Participant id of the calling thread (-1 elsewhere).
  static int current_id();

  /// Current virtual time in microseconds.
  double now() const;

  /// Model local computation: advance virtual time by \p dt microseconds and
  /// yield to any earlier event.
  void advance(double dt);

  /// Let all events scheduled at the current time run before continuing.
  void yield() { advance(0.0); }

  /// Park the calling participant until another participant or a callback
  /// calls unblock() on it. \p reason appears in deadlock diagnostics.
  void block(const char* reason = "blocked");

  /// --- calls valid on a participant thread or inside a Call callback ------

  /// Make a blocked participant runnable at the current virtual time.
  /// Harmless if the participant is already runnable or finished.
  void unblock(int participant);

  /// Schedule a callback at absolute virtual time \p at (>= now()).
  void post(double at, std::function<void()> fn);

  /// Schedule a callback \p delay microseconds from now.
  void post_in(double delay, std::function<void()> fn) {
    post(now() + delay, std::move(fn));
  }

  /// --- introspection -------------------------------------------------------

  /// Total events dispatched so far.
  std::uint64_t event_count() const;

  /// Recorded trace (empty unless EngineOptions::record_trace).
  const std::vector<TraceEntry>& trace() const { return trace_; }

 private:
  enum class PState : std::uint8_t { kIdle, kRunnable, kWaiting, kFinished };

  struct Participant {
    int id = -1;
    PState state = PState::kIdle;
    bool active = false;  ///< holds (or is about to receive) the token
    std::condition_variable cv;
    std::thread thread;
    std::string block_reason;
  };

  struct Event {
    double at = 0.0;
    std::uint64_t seq = 0;
    int wake_participant = -1;              ///< >= 0 for Wake events
    std::function<void()> call;             ///< non-null for Call events
  };

  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) {
        return a.at > b.at;  // min-heap on time
      }
      return a.seq > b.seq;  // FIFO among equal times
    }
  };

  friend struct CurrentParticipantGuard;

  void participant_main(int id, const std::function<void(int)>& body);

  /// Relinquish the token. Must be called with mutex_ held by a participant
  /// that currently has it. Dispatches events until another participant is
  /// activated (possibly the caller), then waits until re-activated.
  void switch_out(std::unique_lock<std::mutex>& lock, Participant& self);

  /// Pop and dispatch events until a participant is activated or the heap
  /// drains. Returns with mutex_ held.
  void dispatch_chain(std::unique_lock<std::mutex>& lock);

  void fail_locked(std::unique_lock<std::mutex>& lock, const std::string& why);

  void record(TraceKind kind, int participant);

  mutable std::mutex mutex_;
  std::condition_variable done_cv_;
  std::priority_queue<Event, std::vector<Event>, EventOrder> heap_;
  std::vector<std::unique_ptr<Participant>> participants_;
  EngineOptions options_;

  double now_us_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dispatched_ = 0;
  int finished_count_ = 0;
  bool failed_ = false;
  std::string failure_reason_;
  std::exception_ptr first_error_;
  bool running_ = false;

  std::vector<TraceEntry> trace_;
};

/// RAII helper used in tests to run a closure body on every participant of a
/// fresh engine with the given options.
void run_spmd(int participants, const std::function<void(int)>& body,
              EngineOptions options = {});

}  // namespace caf2::sim
