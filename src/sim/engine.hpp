#pragma once

/// \file engine.hpp
/// Deterministic discrete-event simulation engine.
///
/// This is the substrate that substitutes for the paper's Cray XK6/XE6
/// testbeds (DESIGN.md §1, §4.1). Each CAF process image runs as its own
/// execution context, but the engine admits exactly **one runnable context
/// at a time per shard**: a participant that blocks, advances its virtual
/// clock, or finishes hands the token to whichever pending event is earliest
/// in *virtual time* (ties broken by insertion sequence, so runs are fully
/// deterministic).
///
/// Two execution backends implement that contract (DESIGN.md §4.8):
///  - ExecBackend::kThreads — one OS thread per participant; the token
///    handoff is a mutex + per-participant condition variable. This is the
///    backend ThreadSanitizer can instrument.
///  - ExecBackend::kFibers — one stackful fiber per participant, all
///    multiplexed on the thread that called run(); the token handoff is a
///    userspace register swap and the engine runs lock-free. This is what
///    makes 1024-image (paper-scale) runs practical.
/// Both backends execute participants in exactly the same order, so traces,
/// event counts, and context-switch counts are bit-identical across them.
/// EngineOptions::backend picks one; CAF2_SIM_BACKEND={threads,fibers}
/// overrides it from the environment.
///
/// Three event kinds live in the heap:
///  - Wake(p, t): hand the token to participant p at time t (created by
///    advance(), yield(), and unblock());
///  - Call(f, t): run an engine callback at time t (network staging,
///    delivery, timers). Callbacks run on whichever thread is dispatching
///    and must not touch participant-local state or block;
///  - participants that block without a scheduled wake are resumed only by a
///    subsequent unblock() from a callback or another participant.
///
/// Two hot-path properties keep dispatch cheap (DESIGN.md §4.6):
///  - heap events are 24-byte PODs; a Call event's closure lives in a pooled
///    small-buffer slot (InlineFn), not in a freshly allocated std::function;
///  - when advance()/yield() can prove the caller's own wake would be the
///    very next event dispatched, it short-circuits the push/pop/handoff
///    entirely (the self-wake fast path). The fast path is trace-identical
///    to the slow path; set CAF2_SIM_NO_FASTPATH=1 (or
///    EngineOptions::enable_fastpath = false) to force the slow path.
///
/// --- sharded parallel execution (DESIGN.md §4.11) ---------------------------
///
/// With EngineOptions::shards > 1 (or CAF2_SIM_SHARDS=N) the engine runs a
/// conservative parallel discrete-event simulation: participants are
/// partitioned into contiguous shards, each shard owns its own event heap,
/// call pool, sequence counter, clock, and lock, and one worker thread per
/// shard executes that shard's events. Virtual time advances in windows: a
/// shard may dispatch any event strictly below `window_end = global_min +
/// lookahead`, where `global_min` is the minimum pending event time across
/// shards and the lookahead is the network's minimum link latency
/// (EngineOptions::lookahead_us). Any event one shard creates on another
/// (a message delivery) carries a timestamp at least `lookahead` in the
/// future, so it can never land inside the window a destination shard is
/// already executing — cross-shard events are staged into the destination's
/// inbox and merged at the next window boundary in the deterministic order
/// `(time, source shard, per-source counter)`, then re-sequenced into the
/// destination heap. `shards=1` runs the exact single-shard code path and is
/// bit-identical to the pre-sharding engine; any fixed shard count is
/// deterministic across repeats and across backends. Sharding requires a
/// positive lookahead; configurations without one (zero-latency networks)
/// automatically fall back to one shard. The reliable-delivery protocol and
/// obs span capture both run sharded (DESIGN.md §4.12).
///
/// Window ends are per shard. With EngineOptions::adaptive_lookahead (the
/// default; CAF2_SIM_ADAPTIVE_LOOKAHEAD=0 forces it off) a shard's window
/// end has two components. At each barrier it is raised to the other shards'
/// earliest pending events: `W_i = max(W_i, min_{j != i}(top_j +
/// lookahead))`, where `top_j` is shard j's earliest pending event time
/// after the inbox merge (+inf for an empty heap) — sound for every reaction
/// chain rooted in an event some heap already holds, since such a chain
/// reaches shard i through at least one wire hop after its root dispatches.
/// Chains rooted in events shard i *itself* sends during the window are not
/// visible to any heap top, so cross-shard staging clamps the sender's own
/// window to the staged timestamp plus one lookahead (`W_i = min(W_i, at +
/// lookahead)`): the destination can dispatch the staged event no earlier
/// than `at`, and anything it sends back rides at least one more latency.
/// The clamp overwrites the stored end, so a later barrier max() restarts
/// from the fresh bound (which by then sees the chain's materialized
/// events), never from a retired stale value. Because every `top_j >=
/// global_min` and a sender's clock is at least its own top, the adaptive
/// end never drops below the static `global_min + lookahead` floor.
/// Sparse-communication phases therefore get long windows (fewer barriers,
/// fewer `window_stalls`). Adaptive and static windows admit different
/// cross-shard wake clamp points, so the two modes produce different (each
/// individually deterministic) virtual schedules.
///
/// If the heap drains while unfinished participants are blocked, the
/// simulated program has provably deadlocked; the engine collects a
/// structured obs::Postmortem (its own per-participant section plus whatever
/// the installed postmortem collector contributes — the runtime adds wait-for
/// graph edges, per-image finish counters, flight-recorder tails, and the
/// network's in-flight messages) and raises an obs::StallError carrying both
/// the postmortem and its deterministic text rendering in every participant.
/// A virtual-time quiet-period watchdog (EngineOptions::watchdog_quiet_us)
/// produces the same postmortem when every unfinished participant is blocked
/// and the next pending event is suspiciously far in the virtual future
/// (e.g. a runaway retransmission backoff chain). Sharded runs perform the
/// deadlock / budget / watchdog checks at window boundaries, where every
/// shard is quiesced and the global state is consistent.

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "sim/fiber.hpp"
#include "sim/inline_fn.hpp"
#include "sim/trace.hpp"
#include "support/config.hpp"
#include "support/error.hpp"

namespace caf2::obs {
class Recorder;
struct Postmortem;
enum class FailKind : std::uint8_t;
}

namespace caf2::sim {

class Engine;

/// The execution backend a given configuration actually runs: applies the
/// CAF2_SIM_BACKEND environment override, resolves kAuto, and falls back to
/// threads where fibers are unsupported (ThreadSanitizer builds). This is
/// exactly the resolution the Engine constructor performs; exposed so tools
/// (bench metadata stamps) can report the backend without building an engine.
ExecBackend resolve_backend(ExecBackend configured);

/// The shard count a given configuration requests before the Engine clamps
/// it against the participant count and the lookahead: an explicit
/// `configured >= 1` wins; `configured <= 0` reads CAF2_SIM_SHARDS and
/// defaults to 1. Exposed for bench metadata stamps.
int resolve_shards(int configured);

/// Whether a sharded engine uses adaptive lookahead windows: the environment
/// variable CAF2_SIM_ADAPTIVE_LOOKAHEAD ("0"/"off" forces static, "1"/"on"
/// forces adaptive) overrides \p configured. Exposed for bench metadata
/// stamps; meaningless for unsharded runs.
bool resolve_adaptive_lookahead(bool configured);

/// Everything that makes the calling context "participant N of engine E".
/// With the thread backend each participant thread simply owns one of these
/// in thread-local storage; with the fiber backend the scheduler swaps the
/// thread-local instance on every fiber switch, so code above the engine
/// (e.g. the runtime's current-image pointer, stored in a slot) never needs
/// to know which backend is running it.
struct ExecContext {
  Engine* engine = nullptr;
  int id = -1;
  /// Backend-agnostic replacement for participant-local `thread_local`
  /// variables in higher layers. Slot 0: rt::Image*, slot 1: rt::Runtime*.
  std::array<void*, 2> slots{};
};

/// Engine knobs (a subset of caf2::RuntimeOptions relevant to scheduling).
struct EngineOptions {
  bool record_trace = false;
  std::uint64_t max_events = 0;  ///< 0 = unlimited
  std::string label = "sim";

  /// Upper bound on recorded TraceEntry records per shard (0 = unlimited).
  /// Entries past the cap are counted (Engine::trace_dropped()) and
  /// discarded, so record_trace on a long 1024-image run cannot grow without
  /// bound. The default bounds the trace at ~128 MiB per shard.
  std::uint64_t max_trace_entries = std::uint64_t{1} << 22;

  /// Enable the self-wake fast path (see file comment). The environment
  /// variable CAF2_SIM_NO_FASTPATH=1 overrides this to false; results are
  /// bit-identical either way, so the switch exists only for regression
  /// testing and micro-benchmark comparisons.
  bool enable_fastpath = true;

  /// Quiet-period watchdog (virtual microseconds; 0 = disabled). When every
  /// unfinished participant is blocked and the earliest pending event lies
  /// more than this far beyond the current virtual time, the engine fails
  /// the run with a watchdog report instead of fast-forwarding the clock.
  /// Participants that are merely advancing their clocks (modeled compute)
  /// hold a scheduled wake and never trip the watchdog.
  double watchdog_quiet_us = 0.0;

  /// Execution backend (see the file comment). kAuto resolves to fibers
  /// wherever fibers_supported(), else threads; an explicit kFibers also
  /// falls back to threads when unsupported (ThreadSanitizer builds). The
  /// environment variable CAF2_SIM_BACKEND={threads,fibers} overrides this.
  ExecBackend backend = ExecBackend::kAuto;

  /// Usable stack bytes per participant fiber (rounded up to whole pages; a
  /// PROT_NONE guard page is added below). Virtual memory only — resident
  /// cost is the pages a participant actually touches.
  std::size_t fiber_stack_bytes = std::size_t{1} << 20;

  /// Number of engine shards (parallel worker threads). An explicit value
  /// >= 1 is used as-is; <= 0 means "from the environment": CAF2_SIM_SHARDS
  /// when set, else 1. The engine clamps the result to the participant count
  /// and falls back to 1 whenever lookahead_us <= 0 (no conservative window
  /// exists without a minimum cross-participant latency).
  int shards = 0;

  /// Conservative lookahead window (virtual microseconds) for sharded runs:
  /// the minimum virtual-time distance of any event one shard can create on
  /// another. The runtime derives it from the network's minimum link
  /// latency. <= 0 disables sharding (automatic fallback to shards = 1).
  double lookahead_us = 0.0;

  /// Derive each shard's window end from the other shards' earliest pending
  /// events at the barrier instead of the global static minimum (see the
  /// file comment). Static lookahead remains the floor; the environment
  /// variable CAF2_SIM_ADAPTIVE_LOOKAHEAD={0,off,1,on} overrides this.
  bool adaptive_lookahead = true;
};

class Engine {
 public:
  Engine(int participants, EngineOptions options = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Execute \p body SPMD on every participant. Blocks until every
  /// participant's body returned. Rethrows the first participant exception
  /// (after unwinding all other participants).
  void run(const std::function<void(int)>& body);

  /// Number of participants.
  int size() const { return static_cast<int>(participants_.size()); }

  /// --- calls valid only on a participant thread ---------------------------

  /// Engine owning the calling participant context (nullptr elsewhere).
  static Engine* current_engine();

  /// Participant id of the calling context (-1 elsewhere).
  static int current_id();

  /// Participant-local storage slot of the calling execution context (see
  /// ExecContext::slots). Higher layers use these instead of `thread_local`
  /// so their per-image state follows the participant across fiber switches.
  static void*& context_slot(int index);

  /// Current virtual time in microseconds. In a sharded run this is the
  /// calling context's shard clock; from outside any engine context it is
  /// the maximum over all shard clocks.
  double now() const;

  /// Model local computation: advance virtual time by \p dt microseconds and
  /// yield to any earlier event.
  void advance(double dt);

  /// Let all events scheduled at the current time run before continuing.
  void yield() { advance(0.0); }

  /// Park the calling participant until another participant or a callback
  /// calls unblock() on it. \p reason appears in deadlock diagnostics.
  void block(const char* reason = "blocked");

  /// --- calls valid on a participant thread or inside a Call callback ------

  /// Make a blocked participant runnable at the current virtual time.
  /// Harmless if the participant is already runnable or finished. When the
  /// target lives on another shard the wake is staged into that shard's
  /// inbox and merged at the next window boundary (wakes are hints — the
  /// woken participant re-evaluates its predicate — so the window-granular
  /// delay is semantically safe).
  void unblock(int participant);

  /// Schedule a callback at absolute virtual time \p at (>= now()).
  /// Accepts any move-constructible void() callable; closures up to
  /// InlineFn::kInlineBytes are stored without heap allocation. The callback
  /// runs on the calling context's shard.
  template <class F>
  void post(double at, F&& fn) {
    post_call(at, InlineFn(std::forward<F>(fn)));
  }

  /// Schedule a callback \p delay microseconds from now.
  template <class F>
  void post_in(double delay, F&& fn) {
    post_call(now() + delay, InlineFn(std::forward<F>(fn)));
  }

  /// Schedule a callback on the shard that owns \p participant. Same-shard
  /// (and unsharded) calls are exactly post(); cross-shard calls stage the
  /// event into the owning shard's inbox for the next window merge and
  /// require `at >= now() + lookahead_us` (the conservative-window
  /// contract; the network's wire latency provides it).
  template <class F>
  void post_for(int participant, double at, F&& fn) {
    post_for_call(participant, at, InlineFn(std::forward<F>(fn)));
  }

  /// Reserve the next event sequence number without scheduling anything.
  /// Chained event sources (the network's message flights) reserve their
  /// later phases' sequence numbers up front so that scheduling an event
  /// lazily — from inside an earlier phase's callback — still dispatches in
  /// exactly the order an eager schedule would have produced. Sequence
  /// numbers are per-shard; a reservation must be redeemed on the shard that
  /// made it (the network only reserves for same-shard flights).
  std::uint64_t reserve_seq();

  /// Schedule a callback under a sequence number previously returned by
  /// reserve_seq(). \p at is clamped to now() like post().
  void post_reserved(double at, std::uint64_t seq, InlineFn fn);

  /// Abort the run with a diagnosable failure: a structured obs::Postmortem
  /// is collected and every blocked participant is woken with an
  /// obs::StallError carrying the postmortem's text rendering. Callable from
  /// a participant thread or an engine callback; the reliability layer uses
  /// the two-argument form when a message exhausts its retransmission
  /// budget. The one-argument form tags the postmortem
  /// obs::FailKind::kExplicitFail. In a sharded run the failure is recorded
  /// immediately but the postmortem is collected at the next window
  /// boundary, where every shard is quiesced.
  void fail(const std::string& why);
  void fail(const std::string& why, obs::FailKind kind);

  /// Install a callback that fills the runtime-owned sections of a
  /// Postmortem (wait-for graph, per-image counters, network state, blame).
  /// Invoked with the engine lock held: it must not call back into the
  /// engine except now(), backend(), and event_count(), and must only *read*
  /// simulation state — safe, because a stalling engine has no other context
  /// running. Exceptions it throws are swallowed into
  /// Postmortem::collector_error (never allowed to deadlock a failing run).
  using PostmortemCollector = std::function<void(obs::Postmortem&)>;
  void set_postmortem_collector(PostmortemCollector fn);

  /// Install a callback that contributes extra free-form sections to
  /// postmortems (legacy hook; prefer set_postmortem_collector). Same
  /// lock-held contract; exceptions are likewise swallowed.
  void set_diagnostics(std::function<std::string()> fn);

  /// Collect a Postmortem of the current (healthy or stalled) state, tagged
  /// obs::FailKind::kOnDemand. Callable from a participant context or from
  /// outside the run. During a *sharded* run other shards execute
  /// concurrently, so the snapshot contains only the engine-level counters
  /// (no per-participant detail, no collector sections); a quiesced engine
  /// (shards=1, or between runs) produces the full report.
  obs::Postmortem snapshot_postmortem(const std::string& headline);

  /// The postmortem collected by the first failure, or null if the run has
  /// not failed. Also carried by the obs::StallError run() throws.
  std::shared_ptr<const obs::Postmortem> last_postmortem() const {
    return last_postmortem_;
  }

  /// --- introspection -------------------------------------------------------

  /// Total events dispatched so far (summed over shards).
  std::uint64_t event_count() const;

  /// True when the self-wake fast path is active (options + environment).
  bool fastpath_enabled() const { return fastpath_; }

  /// The resolved execution backend (options + environment + build support);
  /// never kAuto.
  ExecBackend backend() const { return backend_; }

  /// Token handoffs between *different* participants dispatched so far,
  /// summed over shards. Within a shard this is a pure function of the
  /// dispatch order, so bit-identical across backends and with the fast path
  /// on or off — the determinism suite compares it.
  std::uint64_t context_switch_count() const;

  /// Recorded trace (empty unless EngineOptions::record_trace). Populated
  /// when run() returns; in a sharded run it is the concatenation of the
  /// per-shard traces in shard order (deterministic for a fixed shard
  /// count).
  const std::vector<TraceEntry>& trace() const { return trace_; }

  /// Trace entries discarded by EngineOptions::max_trace_entries.
  std::uint64_t trace_dropped() const;

  /// --- sharding ------------------------------------------------------------

  /// Resolved number of shards (>= 1; clamped and fallback-applied).
  int shard_count() const { return static_cast<int>(shards_.size()); }

  /// True when this engine runs more than one shard.
  bool sharded() const { return shards_.size() > 1; }

  /// Shard owning \p participant.
  int shard_of(int participant) const {
    return shard_index_[static_cast<std::size_t>(participant)];
  }

  /// The calling context's shard, or -1 outside any engine context.
  int current_shard() const;

  /// Conservative lookahead window (0 when unsharded).
  double lookahead_us() const { return lookahead_; }

  /// True when this (sharded) engine derives window ends adaptively from
  /// per-shard lower bounds; false for static windows and unsharded runs.
  bool adaptive_lookahead() const { return adaptive_; }

  /// Window advances performed so far (1 for the initial window; always 0
  /// for an unsharded run, which has no windows).
  std::uint64_t window_count() const;

  /// Shard-windows in which a shard had no executable event (its next event
  /// lay at or beyond the window end). High stall counts explain a flat
  /// scaling curve: the partition is imbalanced or the lookahead too small.
  std::uint64_t window_stall_count() const;

  /// Events dispatched per shard (one entry per shard, index = shard id).
  std::vector<std::uint64_t> shard_event_counts() const;

  /// Attach an observability recorder (nullptr detaches; see obs/obs.hpp).
  /// Hooks fire from advance() and block(); a null observer costs one branch.
  /// Recording never schedules events, so an observed run's event schedule,
  /// trace, and stats are bit-identical to an unobserved one. Sharded
  /// engines are supported when the recorder was built with one net lane per
  /// shard (obs::Recorder's net_lanes constructor argument): the per-image
  /// hooks only ever fire on the image's home shard, and network spans go to
  /// the calling shard's lane (DESIGN.md §4.12).
  void set_observer(obs::Recorder* observer) { observer_ = observer; }

 private:
  enum class PState : std::uint8_t { kIdle, kRunnable, kWaiting, kFinished };

  struct Participant {
    int id = -1;
    PState state = PState::kIdle;
    bool active = false;  ///< holds (or is about to receive) the token
    std::string block_reason;
    // Thread backend only:
    std::condition_variable cv;
    std::thread thread;
    // Fiber backend only:
    std::unique_ptr<Fiber> fiber;
    ExecContext context;  ///< saved while the fiber is suspended
  };

  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  /// Heap entry: a POD. Wake events carry the participant id; Call events
  /// carry an index into the shard's call pool where the closure lives.
  struct Event {
    double at = 0.0;
    std::uint64_t seq = 0;
    std::int32_t wake_participant = -1;  ///< >= 0 for Wake events
    std::uint32_t call_slot = kNoSlot;   ///< != kNoSlot for Call events
  };

  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) {
        return a.at > b.at;  // min-heap on time
      }
      return a.seq > b.seq;  // FIFO among equal times
    }
  };

  /// An event staged by one shard for another, merged at the next window
  /// boundary. Sorted by (at, source_shard, order) — `order` is a per-source
  /// monotonic counter, so the merge is deterministic for a fixed shard
  /// count — then re-sequenced into the destination heap.
  struct CrossEvent {
    double at = 0.0;
    std::uint64_t order = 0;
    std::int32_t source_shard = 0;
    std::int32_t wake_participant = -1;  ///< >= 0: wake; else call
    InlineFn fn;
  };

  /// Per-shard scheduler state. With shards=1 the single instance holds
  /// exactly the fields the pre-sharding engine kept globally, and every
  /// code path touches them through shard 0 — which is what keeps the
  /// single-shard schedule bit-identical. The inbox is the only member other
  /// shards may touch, always under inbox_mutex.
  struct Shard {
    int index = 0;
    int first = 0;  ///< first participant id; shard spans [first, first+count)
    int count = 0;

    mutable std::mutex mutex;  ///< the shard's engine gate (thread backend)
    std::condition_variable idle_cv;  ///< coordinator waits for quiescence
    std::priority_queue<Event, std::vector<Event>, EventOrder> heap;
    std::vector<InlineFn> call_pool;         ///< Call closures, slot-addressed
    std::vector<std::uint32_t> free_slots;   ///< recycled call_pool indices

    // now_us and dispatched are atomics so now()/event_count() stay callable
    // without the shard lock; all *writes* happen on the single context that
    // currently owns the shard's scheduler, so relaxed ordering suffices —
    // cross-thread publication rides the mutex / window-barrier handoff.
    std::atomic<double> now_us{0.0};
    std::atomic<std::uint64_t> dispatched{0};
    std::atomic<std::uint64_t> context_switches{0};
    // This shard's conservative window end: events strictly below it may
    // dispatch this window. Written only at the window barrier (every shard
    // quiesced); read lock-free on the shard's own hot paths, so it is an
    // atomic with relaxed ordering (publication rides the barrier handoff).
    std::atomic<double> window_end{0.0};
    std::uint64_t next_seq = 0;
    int token_owner = -1;  ///< participant last handed the token
    Participant* activated = nullptr;  ///< dispatch_chain -> fiber scheduler
    int finished_count = 0;
    bool window_idle = false;  ///< no dispatchable event this window

    std::vector<TraceEntry> trace;
    std::uint64_t trace_dropped = 0;

    // Cross-shard staging (multi-shard runs only).
    std::mutex inbox_mutex;
    std::vector<CrossEvent> inbox;
    std::uint64_t cross_order = 0;  ///< next CrossEvent stamp (source side)
  };

  friend struct CurrentParticipantGuard;

  Shard& home_shard(int participant) {
    return *shards_[static_cast<std::size_t>(shard_of(participant))];
  }

  /// The shard of the calling context; shard 0 from outside any engine
  /// context (which only happens unsharded, or before the run starts).
  Shard& calling_shard();

  /// Acquire a shard's engine gate — in thread mode. The fiber backend runs
  /// every participant, callback, and the scheduler of a shard on one OS
  /// thread, so it skips the mutex entirely: lock_gate() then returns an
  /// empty unique_lock (no associated mutex), and the lock/unlock sites test
  /// lock.mutex() first.
  std::unique_lock<std::mutex> lock_gate(Shard& shard) {
    return backend_ == ExecBackend::kThreads
               ? std::unique_lock<std::mutex>(shard.mutex)
               : std::unique_lock<std::mutex>();
  }

  bool failed() const { return failed_.load(std::memory_order_acquire); }

  void run_threads(const std::function<void(int)>& body);
  void run_fibers(const std::function<void(int)>& body);

  /// Multi-shard run: one worker thread per shard plus the window-barrier
  /// protocol.
  void run_sharded(const std::function<void(int)>& body);
  void shard_worker_fibers(Shard& shard, const std::function<void(int)>& body);
  void shard_worker_threads(Shard& shard, const std::function<void(int)>& body);

  /// Arrive at the window barrier; the last arriver merges inboxes and opens
  /// the next window (or completes the run). Returns false when the run is
  /// over (all finished, or failed with the postmortem built).
  bool window_rendezvous();

  /// Last-arriver body: every shard is quiesced, the sync mutex serializes
  /// access. Returns false to end the run.
  bool advance_window_locked();

  /// Merge a shard's inbox into its heap (deterministic order, fresh local
  /// sequence numbers). Returns false — filling \p violation — when a call
  /// event arrived below the destination clock: a conservative-window
  /// violation the caller must turn into an engine failure, because the
  /// wake clamp would otherwise silently time-shift the delivery and
  /// corrupt every latency-derived metric downstream.
  bool drain_inbox_locked(Shard& shard, std::string& violation);

  /// Build the failure postmortem at the window barrier and release every
  /// participant to unwind (shutdown_ready_).
  void finish_failure_locked();

  /// Record a failure without collecting the postmortem (sharded mode: the
  /// collection happens at the window barrier where every shard is
  /// quiesced). First failure wins. Must not be called while holding a shard
  /// gate.
  void fail_pending(obs::FailKind kind, const std::string& headline,
                    std::exception_ptr participant_error, bool callback_error);

  void participant_main(int id, const std::function<void(int)>& body);

  /// Fiber-backend participant body (entry function of the fiber).
  void fiber_main(int id, const std::function<void(int)>& body);

  /// Switch onto a participant's fiber, installing its ExecContext for the
  /// duration and saving it back (with any slot changes) on return.
  void resume_fiber(Participant& target);

  /// After a failure in fiber mode: resume every live fiber of \p shard once
  /// so its pending engine call observes failed_ and throws, unwinding the
  /// body. Runs in rank order (deterministic); never-started fibers are
  /// retired directly, matching the thread backend's early-exit path.
  void unwind_live_fibers(Shard& shard);

  /// Relinquish the token. Must be called with the gate held by a
  /// participant that currently has it. Thread mode: dispatches events until
  /// another participant is activated (possibly the caller), then waits
  /// until re-activated. Fiber mode: suspends back to the scheduler loop,
  /// which dispatches. Throws FatalError if the run failed meanwhile.
  void switch_out(Shard& shard, std::unique_lock<std::mutex>& lock,
                  Participant& self);

  /// Pop and dispatch \p shard's events until a participant is activated,
  /// the shard drains, or (sharded) the window is exhausted. Returns with
  /// the gate held; the activated participant (if any) is left in
  /// shard.activated. \p dispatcher is the participant running this chain
  /// (nullptr when dispatching from run() or a finishing participant);
  /// activating the dispatcher itself skips the condition-variable notify,
  /// since the dispatcher observes `active` directly. A callback that throws
  /// fails the run with a dispatcher-tagged error instead of propagating.
  void dispatch_chain(Shard& shard, std::unique_lock<std::mutex>& lock,
                      Participant* dispatcher);

  /// Mark the shard quiescent for this window and wake its coordinator.
  /// Requires the shard gate (thread mode).
  void shard_idle_locked(Shard& shard);

  void post_call(double at, InlineFn fn);
  void post_for_call(int participant, double at, InlineFn fn);

  /// Stage an event into another shard's inbox. Must run on an engine
  /// context (the source shard identity stamps the merge order).
  void cross_post(int dest_shard, double at, std::int32_t wake_participant,
                  InlineFn fn);

  std::uint32_t acquire_slot(Shard& shard, InlineFn fn);

  std::uint64_t total_dispatched() const;

  /// Compose the failure text for a throwing engine callback (shared by the
  /// sharded and unsharded paths so the message stays identical).
  std::string describe_callback_error(Participant* dispatcher,
                                      const std::exception_ptr& error) const;

  void fail_locked(std::unique_lock<std::mutex>& lock, const std::string& why);

  /// Collect the structured postmortem: engine-owned fields (participant
  /// states, event counts) plus whatever the postmortem collector and the
  /// legacy diagnostics callback contribute. Exceptions from either callback
  /// are swallowed into Postmortem::collector_error — a report must never
  /// deadlock the failing run it is reporting on. Requires the engine to be
  /// quiesced (single-shard gate held, or every shard parked at the window
  /// barrier).
  std::shared_ptr<const obs::Postmortem> build_postmortem_locked(
      obs::FailKind kind, const std::string& headline);

  /// Fail the run with a freshly collected postmortem (no-op when already
  /// failed — the first postmortem wins). failure_reason_ becomes the
  /// postmortem's text rendering. Single-shard only; requires the gate held.
  void fail_report_locked(std::unique_lock<std::mutex>& lock,
                          obs::FailKind kind, const std::string& headline);

  /// Throw the failure as an obs::StallError carrying last_postmortem_.
  [[noreturn]] void throw_failure() const;

  /// True when at least one participant is blocked and every unfinished one
  /// is (i.e. only heap events can make progress). Requires a quiesced
  /// engine.
  bool all_unfinished_blocked_locked() const;

  void record(Shard& shard, TraceKind kind, int participant);

  std::condition_variable done_cv_;  ///< single-shard thread backend
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::int32_t> shard_index_;  ///< participant id -> shard
  std::vector<std::unique_ptr<Participant>> participants_;
  EngineOptions options_;
  bool fastpath_ = true;
  bool sharded_ = false;
  bool adaptive_ = false;  ///< resolved adaptive-lookahead mode (sharded only)
  double lookahead_ = 0.0;
  ExecBackend backend_ = ExecBackend::kThreads;  ///< resolved, never kAuto
  std::function<std::string()> diagnostics_;
  PostmortemCollector collector_;
  std::shared_ptr<const obs::Postmortem> last_postmortem_;

  std::atomic<bool> failed_{false};
  std::string failure_reason_;
  std::exception_ptr first_error_;
  bool running_ = false;
  std::atomic<bool> quiesced_{true};  ///< false while shard workers run

  // Window-barrier state (multi-shard runs only). sync_mutex_ orders every
  // barrier handoff, which is what lets the last arriver read and mutate
  // every shard's state race-free.
  std::mutex sync_mutex_;
  std::condition_variable sync_cv_;
  int sync_waiting_ = 0;
  std::uint64_t sync_generation_ = 0;
  bool sync_done_ = false;
  std::uint64_t windows_ = 0;
  std::uint64_t window_stalls_ = 0;

  // Failure staging for sharded runs: the postmortem is built later, at the
  // barrier, so the failing context only records what happened here.
  std::mutex fail_mutex_;
  obs::FailKind pending_fail_kind_{};
  std::string pending_fail_headline_;
  bool pending_fail_is_callback_ = false;
  std::atomic<bool> shutdown_ready_{false};

  std::vector<TraceEntry> trace_;  ///< merged after run()
  obs::Recorder* observer_ = nullptr;
};

/// RAII helper used in tests to run a closure body on every participant of a
/// fresh engine with the given options.
void run_spmd(int participants, const std::function<void(int)>& body,
              EngineOptions options = {});

}  // namespace caf2::sim
