#include "sim/participant.hpp"

namespace caf2::sim {

Engine& this_engine() {
  Engine* engine = Engine::current_engine();
  CAF2_REQUIRE(engine != nullptr,
               "this call is only valid on a simulated participant thread");
  return *engine;
}

int this_participant() {
  const int id = Engine::current_id();
  CAF2_REQUIRE(id >= 0,
               "this call is only valid on a simulated participant thread");
  return id;
}

bool on_participant_thread() { return Engine::current_engine() != nullptr; }

double virtual_now() { return this_engine().now(); }

void virtual_compute(double us) { this_engine().advance(us); }

void run_spmd(int participants, const std::function<void(int)>& body,
              EngineOptions options) {
  Engine engine(participants, std::move(options));
  engine.run(body);
}

}  // namespace caf2::sim
