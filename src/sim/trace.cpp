#include "sim/trace.hpp"

#include <sstream>

namespace caf2::sim {

const char* to_string(TraceKind kind) {
  switch (kind) {
    case TraceKind::kWake:
      return "wake";
    case TraceKind::kCall:
      return "call";
    case TraceKind::kBlock:
      return "block";
    case TraceKind::kAdvance:
      return "advance";
    case TraceKind::kFinish:
      return "finish";
  }
  return "?";
}

std::string render_trace(const std::vector<TraceEntry>& trace) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(6);
  for (const TraceEntry& entry : trace) {
    os << entry.seq << " t=" << entry.time << " " << to_string(entry.kind)
       << " p=" << entry.participant << "\n";
  }
  return os.str();
}

}  // namespace caf2::sim
