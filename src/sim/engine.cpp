#include "sim/engine.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <sstream>

#include "obs/obs.hpp"
#include "obs/postmortem.hpp"

namespace caf2::sim {

ExecBackend resolve_backend(ExecBackend configured) {
  ExecBackend backend = configured;
  if (const char* env = std::getenv("CAF2_SIM_BACKEND");
      env != nullptr && *env != '\0') {
    if (std::strcmp(env, "threads") == 0) {
      backend = ExecBackend::kThreads;
    } else if (std::strcmp(env, "fibers") == 0) {
      backend = ExecBackend::kFibers;
    }
    // Unknown values fall through to whatever was configured.
  }
  if (backend == ExecBackend::kAuto) {
    backend = fibers_supported() ? ExecBackend::kFibers : ExecBackend::kThreads;
  } else if (backend == ExecBackend::kFibers && !fibers_supported()) {
    backend = ExecBackend::kThreads;  // TSan builds: silent fallback
  }
  return backend;
}

int resolve_shards(int configured) {
  if (configured >= 1) {
    return configured;  // an explicit request always wins over the env
  }
  if (const char* env = std::getenv("CAF2_SIM_SHARDS");
      env != nullptr && *env != '\0') {
    const int parsed = std::atoi(env);
    if (parsed >= 1) {
      return parsed;
    }
  }
  return 1;
}

bool resolve_adaptive_lookahead(bool configured) {
  if (const char* env = std::getenv("CAF2_SIM_ADAPTIVE_LOOKAHEAD");
      env != nullptr && *env != '\0') {
    if (std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0) {
      return false;
    }
    if (std::strcmp(env, "1") == 0 || std::strcmp(env, "on") == 0) {
      return true;
    }
    // Unknown values fall through to whatever was configured.
  }
  return configured;
}

namespace {
/// The calling context's identity. Participant threads own theirs for the
/// whole run; the fiber scheduler swaps it on every fiber switch (the
/// suspended copy lives in Participant::context).
thread_local ExecContext tls_context;

/// The shard the calling OS thread works for (multi-shard runs only). Set by
/// shard workers for their whole tenure and by participant threads in the
/// thread backend; fiber switches never change the OS thread, so unlike
/// tls_context this needs no swapping.
struct ShardTls {
  Engine* engine = nullptr;
  int index = 0;
};
thread_local ShardTls tls_shard;
}  // namespace

Engine* Engine::current_engine() { return tls_context.engine; }
int Engine::current_id() { return tls_context.id; }

void*& Engine::context_slot(int index) {
  CAF2_ASSERT(index >= 0 &&
                  static_cast<std::size_t>(index) < tls_context.slots.size(),
              "context_slot index out of range");
  return tls_context.slots[static_cast<std::size_t>(index)];
}

Engine::Engine(int participants, EngineOptions options)
    : options_(std::move(options)) {
  CAF2_REQUIRE(participants > 0, "Engine needs at least one participant");
  fastpath_ = options_.enable_fastpath;
  if (const char* env = std::getenv("CAF2_SIM_NO_FASTPATH");
      env != nullptr && *env != '\0' && *env != '0') {
    fastpath_ = false;
  }
  backend_ = resolve_backend(options_.backend);

  int shard_count = resolve_shards(options_.shards);
  lookahead_ = options_.lookahead_us;
  if (lookahead_ <= 0.0) {
    shard_count = 1;  // no conservative window exists -> serial execution
  }
  shard_count = std::min(shard_count, participants);
  sharded_ = shard_count > 1;
  if (!sharded_) {
    lookahead_ = 0.0;
  }
  adaptive_ = sharded_ && resolve_adaptive_lookahead(options_.adaptive_lookahead);

  participants_.reserve(static_cast<std::size_t>(participants));
  for (int i = 0; i < participants; ++i) {
    auto participant = std::make_unique<Participant>();
    participant->id = i;
    participants_.push_back(std::move(participant));
  }

  // Contiguous partition; the first `participants % shard_count` shards take
  // one extra participant.
  shards_.reserve(static_cast<std::size_t>(shard_count));
  shard_index_.resize(static_cast<std::size_t>(participants));
  const int base = participants / shard_count;
  const int extra = participants % shard_count;
  int first = 0;
  for (int s = 0; s < shard_count; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->index = s;
    shard->first = first;
    shard->count = base + (s < extra ? 1 : 0);
    for (int p = first; p < first + shard->count; ++p) {
      shard_index_[static_cast<std::size_t>(p)] = s;
    }
    first += shard->count;
    shards_.push_back(std::move(shard));
  }
}

Engine::~Engine() {
  // run() joins all threads / finishes all fibers; nothing to do unless
  // run() was never called.
}

Engine::Shard& Engine::calling_shard() {
  if (sharded_ && tls_shard.engine == this) {
    return *shards_[static_cast<std::size_t>(tls_shard.index)];
  }
  return *shards_[0];
}

int Engine::current_shard() const {
  if (!sharded_) {
    return tls_context.engine == this ? 0 : -1;
  }
  return tls_shard.engine == this ? tls_shard.index : -1;
}

double Engine::now() const {
  if (!sharded_) {
    return shards_[0]->now_us.load(std::memory_order_relaxed);
  }
  if (tls_shard.engine == this) {
    return shards_[static_cast<std::size_t>(tls_shard.index)]->now_us.load(
        std::memory_order_relaxed);
  }
  double latest = 0.0;
  for (const auto& shard : shards_) {
    latest = std::max(latest, shard->now_us.load(std::memory_order_relaxed));
  }
  return latest;
}

std::uint64_t Engine::total_dispatched() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->dispatched.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t Engine::event_count() const { return total_dispatched(); }

std::uint64_t Engine::context_switch_count() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->context_switches.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t Engine::trace_dropped() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->trace_dropped;
  }
  return total;
}

std::uint64_t Engine::window_count() const { return windows_; }

std::uint64_t Engine::window_stall_count() const { return window_stalls_; }

std::vector<std::uint64_t> Engine::shard_event_counts() const {
  std::vector<std::uint64_t> counts;
  counts.reserve(shards_.size());
  for (const auto& shard : shards_) {
    counts.push_back(shard->dispatched.load(std::memory_order_relaxed));
  }
  return counts;
}

void Engine::record(Shard& shard, TraceKind kind, int participant) {
  if (!options_.record_trace) {
    return;
  }
  if (options_.max_trace_entries != 0 &&
      shard.trace.size() >= options_.max_trace_entries) {
    ++shard.trace_dropped;
    return;
  }
  shard.trace.push_back(TraceEntry{shard.trace.size(),
                                   shard.now_us.load(std::memory_order_relaxed),
                                   kind, participant});
}

void Engine::fail_locked(std::unique_lock<std::mutex>& lock,
                         const std::string& why) {
  (void)lock;
  if (failed()) {
    return;
  }
  failure_reason_ = options_.label + ": " + why;
  failed_.store(true, std::memory_order_release);
  if (backend_ == ExecBackend::kThreads) {
    for (auto& participant : participants_) {
      participant->cv.notify_all();
    }
    done_cv_.notify_all();
  }
}

std::shared_ptr<const obs::Postmortem> Engine::build_postmortem_locked(
    obs::FailKind kind, const std::string& headline) {
  auto pm = std::make_shared<obs::Postmortem>();
  pm->kind = kind;
  pm->headline = headline;
  pm->label = options_.label;
  double now = 0.0;
  std::uint64_t pending_calls = 0;
  for (const auto& shard : shards_) {
    now = std::max(now, shard->now_us.load(std::memory_order_relaxed));
    pending_calls += shard->call_pool.size() - shard->free_slots.size();
  }
  pm->now_us = now;
  pm->events = total_dispatched();
  pm->pending_calls = pending_calls;
  pm->images = size();
  pm->per_image.reserve(participants_.size());
  for (const auto& participant : participants_) {
    obs::PmImage img;
    img.rank = participant->id;
    switch (participant->state) {
      case PState::kFinished:
        img.state = "finished";
        break;
      case PState::kWaiting:
        img.state = "blocked";
        img.block_reason = participant->block_reason;
        break;
      case PState::kIdle:
        img.state = "not started";
        break;
      case PState::kRunnable:
        img.state = "runnable";
        break;
    }
    pm->per_image.push_back(std::move(img));
  }
  pm->classification = obs::classify(kind, false);
  // Both callbacks run with the engine lock held; an exception escaping here
  // would deadlock the very failure we are reporting (the thread backend's
  // wake-up notifications would never run), so tag and swallow instead.
  auto swallow = [&pm](const char* who, const auto& fn) {
    try {
      fn();
    } catch (const std::exception& e) {
      if (!pm->collector_error.empty()) {
        pm->collector_error += "; ";
      }
      pm->collector_error += who;
      pm->collector_error += ": ";
      pm->collector_error += e.what();
    } catch (...) {
      if (!pm->collector_error.empty()) {
        pm->collector_error += "; ";
      }
      pm->collector_error += who;
      pm->collector_error += ": non-standard exception";
    }
  };
  if (collector_) {
    swallow("postmortem collector", [&] { collector_(*pm); });
  }
  if (diagnostics_) {
    swallow("diagnostics callback", [&] { pm->extra = diagnostics_(); });
  }
  return pm;
}

void Engine::fail_report_locked(std::unique_lock<std::mutex>& lock,
                                obs::FailKind kind,
                                const std::string& headline) {
  if (failed()) {
    return;  // the first failure's postmortem wins
  }
  last_postmortem_ = build_postmortem_locked(kind, headline);
  fail_locked(lock, obs::to_text(*last_postmortem_));
}

void Engine::fail_pending(obs::FailKind kind, const std::string& headline,
                          std::exception_ptr participant_error,
                          bool callback_error) {
  std::lock_guard<std::mutex> guard(fail_mutex_);
  if (!failed()) {
    pending_fail_kind_ = kind;
    pending_fail_headline_ = headline;
    pending_fail_is_callback_ = callback_error;
    if (participant_error && !first_error_) {
      first_error_ = participant_error;
    }
    failed_.store(true, std::memory_order_release);
  } else if (participant_error && !first_error_) {
    first_error_ = participant_error;
  }
}

void Engine::finish_failure_locked() {
  if (!last_postmortem_) {
    last_postmortem_ =
        build_postmortem_locked(pending_fail_kind_, pending_fail_headline_);
    failure_reason_ = options_.label + ": " + obs::to_text(*last_postmortem_);
  }
  {
    std::lock_guard<std::mutex> guard(fail_mutex_);
    if (!first_error_) {
      // Synthesize the error every participant will surface so the exception
      // run() rethrows is deterministic (with live workers, "first
      // participant to unwind" would be a race). Callback failures mirror
      // the single-shard message (label + headline); everything else carries
      // the full postmortem rendering.
      const std::string what = pending_fail_is_callback_
                                   ? options_.label + ": " + pending_fail_headline_
                                   : failure_reason_;
      first_error_ =
          std::make_exception_ptr(obs::StallError(what, last_postmortem_));
    }
  }
  shutdown_ready_.store(true, std::memory_order_release);
}

void Engine::throw_failure() const {
  throw obs::StallError(failure_reason_, last_postmortem_);
}

bool Engine::all_unfinished_blocked_locked() const {
  bool any_waiting = false;
  for (const auto& participant : participants_) {
    switch (participant->state) {
      case PState::kFinished:
        break;
      case PState::kWaiting:
        any_waiting = true;
        break;
      case PState::kIdle:
      case PState::kRunnable:
        return false;
    }
  }
  return any_waiting;
}

void Engine::fail(const std::string& why) {
  fail(why, obs::FailKind::kExplicitFail);
}

void Engine::fail(const std::string& why, obs::FailKind kind) {
  if (sharded_ && !quiesced_.load(std::memory_order_acquire)) {
    // Other shards are executing: record the failure now, collect the
    // postmortem at the next window barrier where every shard is quiesced.
    fail_pending(kind, why, nullptr, false);
    return;
  }
  auto lock = lock_gate(*shards_[0]);
  fail_report_locked(lock, kind, why);
}

void Engine::set_diagnostics(std::function<std::string()> fn) {
  auto lock = lock_gate(*shards_[0]);
  diagnostics_ = std::move(fn);
}

void Engine::set_postmortem_collector(PostmortemCollector fn) {
  auto lock = lock_gate(*shards_[0]);
  collector_ = std::move(fn);
}

obs::Postmortem Engine::snapshot_postmortem(const std::string& headline) {
  if (!sharded_ || quiesced_.load(std::memory_order_acquire)) {
    auto lock = lock_gate(*shards_[0]);
    return *build_postmortem_locked(obs::FailKind::kOnDemand, headline);
  }
  // Mid-run snapshot of a sharded engine: other shards are executing, so
  // per-participant state and the collector's sections cannot be read
  // race-free. Report the engine-level counters only.
  obs::Postmortem pm;
  pm.kind = obs::FailKind::kOnDemand;
  pm.headline = headline;
  pm.label = options_.label;
  pm.now_us = now();
  pm.events = total_dispatched();
  pm.images = size();
  pm.classification = obs::classify(obs::FailKind::kOnDemand, false);
  pm.collector_error =
      "sharded run in progress: per-image state and collector sections "
      "unavailable";
  return pm;
}

std::uint32_t Engine::acquire_slot(Shard& shard, InlineFn fn) {
  if (!shard.free_slots.empty()) {
    const std::uint32_t slot = shard.free_slots.back();
    shard.free_slots.pop_back();
    shard.call_pool[slot] = std::move(fn);
    return slot;
  }
  const std::uint32_t slot = static_cast<std::uint32_t>(shard.call_pool.size());
  shard.call_pool.push_back(std::move(fn));
  return slot;
}

std::string Engine::describe_callback_error(
    Participant* dispatcher, const std::exception_ptr& error) const {
  const std::string who =
      dispatcher != nullptr ? "participant " + std::to_string(dispatcher->id)
                            : std::string("the scheduler");
  std::string what = "engine callback (dispatched from " + who + ")";
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    what += " raised: ";
    what += e.what();
  } catch (...) {
    what += " raised a non-standard exception";
  }
  return what;
}

void Engine::shard_idle_locked(Shard& shard) {
  shard.window_idle = true;
  if (backend_ == ExecBackend::kThreads) {
    shard.idle_cv.notify_one();
  }
}

void Engine::dispatch_chain(Shard& shard, std::unique_lock<std::mutex>& lock,
                            Participant* dispatcher) {
  for (;;) {
    if (failed()) {
      if (sharded_) {
        shard_idle_locked(shard);
      }
      return;
    }
    if (shard.finished_count == shard.count) {
      if (sharded_) {
        shard_idle_locked(shard);
      } else {
        done_cv_.notify_all();
      }
      return;
    }
    if (sharded_) {
      // An exhausted shard is not a deadlock: other shards may still feed
      // this one at the next window merge. The barrier performs the global
      // deadlock / budget / watchdog checks with every shard quiesced.
      if (shard.heap.empty() ||
          shard.heap.top().at >=
              shard.window_end.load(std::memory_order_relaxed)) {
        shard_idle_locked(shard);
        return;
      }
      if (options_.max_events != 0 &&
          total_dispatched() >= options_.max_events) {
        shard_idle_locked(shard);
        return;
      }
    } else {
      if (shard.heap.empty()) {
        fail_report_locked(lock, obs::FailKind::kDeadlock,
                           "deadlock: no pending events and every "
                           "unfinished participant is blocked");
        return;
      }
      if (options_.max_events != 0 &&
          shard.dispatched.load(std::memory_order_relaxed) >=
              options_.max_events) {
        fail_report_locked(lock, obs::FailKind::kEventBudget,
                           "simulation event budget exceeded");
        return;
      }
      if (options_.watchdog_quiet_us > 0.0 &&
          shard.heap.top().at >
              shard.now_us.load(std::memory_order_relaxed) +
                  options_.watchdog_quiet_us &&
          all_unfinished_blocked_locked()) {
        std::ostringstream os;
        os << "watchdog: every image is blocked and no event is due within "
           << options_.watchdog_quiet_us << " us (next event at t="
           << shard.heap.top().at << " us)";
        fail_report_locked(lock, obs::FailKind::kQuietWatchdog, os.str());
        return;
      }
    }

    const Event event = shard.heap.top();
    shard.heap.pop();
    shard.dispatched.fetch_add(1, std::memory_order_relaxed);
    shard.now_us.store(
        std::max(shard.now_us.load(std::memory_order_relaxed), event.at),
        std::memory_order_relaxed);

    if (event.call_slot != kNoSlot) {
      record(shard, TraceKind::kCall, -1);
      // Callbacks (network staging, deliveries, timers) run with the engine
      // lock released. No participant of this shard holds the token here, so
      // callbacks may freely mutate the shard's runtime state (mailboxes,
      // counters) without racing.
      InlineFn fn = std::move(shard.call_pool[event.call_slot]);
      shard.free_slots.push_back(event.call_slot);
      std::exception_ptr error;
      if (lock.mutex() != nullptr) {
        lock.unlock();
      }
      try {
        fn();
      } catch (...) {
        error = std::current_exception();
      }
      fn.reset();  // destroy the closure before retaking the lock
      if (error && sharded_) {
        // fail_pending must not run under a shard gate; we are unlocked here.
        fail_pending(obs::FailKind::kCallbackError,
                     describe_callback_error(dispatcher, error), nullptr,
                     /*callback_error=*/true);
      }
      if (lock.mutex() != nullptr) {
        lock.lock();
      }
      if (error) {
        if (sharded_) {
          shard_idle_locked(shard);
          return;
        }
        // A throwing callback must not propagate through whoever happens to
        // be dispatching (from run()'s chain it would escape with
        // participant threads still live). Convert it into an engine
        // failure, tagged with the dispatching context.
        if (!first_error_) {
          const std::string what = describe_callback_error(dispatcher, error);
          fail_report_locked(lock, obs::FailKind::kCallbackError, what);
          first_error_ = std::make_exception_ptr(obs::StallError(
              options_.label + ": " + what, last_postmortem_));
        } else {
          fail_report_locked(lock, obs::FailKind::kCallbackError,
                             "engine callback raised an exception");
        }
        return;
      }
      continue;
    }

    Participant& target = *participants_[event.wake_participant];
    if (target.state == PState::kFinished || target.active) {
      continue;  // stale wake
    }
    record(shard, TraceKind::kWake, target.id);
    target.active = true;
    target.state = PState::kRunnable;
    if (target.id != shard.token_owner) {
      // Counted only when the token moves between participants, so the
      // value is a pure function of the dispatch order: identical across
      // backends and with the fast path on or off (a fast-pathed self-wake
      // is exactly a dispatch that keeps the token in place).
      shard.token_owner = target.id;
      shard.context_switches.fetch_add(1, std::memory_order_relaxed);
    }
    shard.activated = &target;
    if (backend_ == ExecBackend::kThreads && &target != dispatcher) {
      target.cv.notify_one();
    }
    return;
  }
}

void Engine::switch_out(Shard& shard, std::unique_lock<std::mutex>& lock,
                        Participant& self) {
  self.active = false;
  if (backend_ == ExecBackend::kFibers) {
    // Hand control back to the shard's scheduler loop, which dispatches the
    // next event. If the run already failed *and* the failure postmortem is
    // ready, suspending would leave this fiber parked forever (the unwind
    // pass resumes each live fiber exactly once) — throw immediately
    // instead. A sharded run builds the postmortem at the window barrier, so
    // until shutdown_ready_ the fiber still parks normally and the unwind
    // pass (which runs only after the barrier completed the failure) picks
    // it up.
    if (!failed() || (sharded_ && !shutdown_ready_.load(
                                      std::memory_order_acquire))) {
      Fiber::suspend();
    }
    if (failed()) {
      throw_failure();
    }
    self.state = PState::kRunnable;
    self.block_reason.clear();
    return;
  }
  dispatch_chain(shard, lock, &self);
  if (!sharded_) {
    while (!self.active && !failed()) {
      self.cv.wait(lock);
    }
    if (failed()) {
      throw_failure();
    }
  } else {
    // Parked until re-activated by a dispatch, or until the shutdown
    // sequence (failure postmortem built at the barrier, coordinator
    // notifies every participant).
    while (!self.active) {
      if (failed() && shutdown_ready_.load(std::memory_order_acquire)) {
        throw_failure();
      }
      self.cv.wait(lock);
    }
  }
  self.state = PState::kRunnable;
  self.block_reason.clear();
}

void Engine::advance(double dt) {
  CAF2_REQUIRE(tls_context.engine == this && tls_context.id >= 0,
               "advance() must be called from a participant context");
  CAF2_REQUIRE(dt >= 0.0, "advance() needs a non-negative duration");
  Participant& self = *participants_[tls_context.id];
  CAF2_ASSERT(self.active, "advance() caller does not hold the token");
  Shard& shard = home_shard(self.id);

  // Self-wake fast path: the caller holds the token, so every shard field
  // below is owned by this context until the token is handed off through the
  // gate (which publishes these plain writes). If the wake we are about to
  // schedule — (target, next_seq) — would be the very next event dispatched,
  // and the event budget permits dispatching it, skip the heap round-trip
  // and the switch_out() handoff entirely. Ties at `target` go to the heap
  // (existing events hold smaller sequence numbers), so the strict `>`
  // comparison is exact, and the recorded trace (kAdvance then kWake) is
  // bit-identical to the slow path's. In a sharded run the jump must also
  // stay strictly inside the conservative window — the shard clock may never
  // reach window_end, or later cross-shard merges could land in its past.
  if (fastpath_ && !failed() &&
      (shard.heap.empty() ||
       shard.heap.top().at >
           shard.now_us.load(std::memory_order_relaxed) + dt) &&
      (!sharded_ ||
       shard.now_us.load(std::memory_order_relaxed) + dt <
           shard.window_end.load(std::memory_order_relaxed)) &&
      (options_.max_events == 0 ||
       total_dispatched() < options_.max_events)) {
    record(shard, TraceKind::kAdvance, self.id);
    const double target = shard.now_us.load(std::memory_order_relaxed) + dt;
    if (observer_ != nullptr && dt > 0.0) {
      observer_->on_compute(
          self.id, shard.now_us.load(std::memory_order_relaxed), target);
    }
    ++shard.next_seq;  // the number the slow path's wake would consume
    shard.dispatched.fetch_add(1, std::memory_order_relaxed);
    shard.now_us.store(target, std::memory_order_relaxed);
    record(shard, TraceKind::kWake, self.id);
    return;
  }

  auto lock = lock_gate(shard);
  record(shard, TraceKind::kAdvance, self.id);
  const double target = shard.now_us.load(std::memory_order_relaxed) + dt;
  if (observer_ != nullptr && dt > 0.0) {
    observer_->on_compute(self.id,
                          shard.now_us.load(std::memory_order_relaxed), target);
  }
  shard.heap.push(Event{target, shard.next_seq++, self.id, kNoSlot});
  // Stray wakes (e.g. an unblock() from a completion callback) can activate
  // this participant before its scheduled resume time; modeled computation
  // must not finish early, so re-relinquish until the clock reaches the
  // target (the scheduled wake is still in the heap).
  do {
    switch_out(shard, lock, self);
  } while (shard.now_us.load(std::memory_order_relaxed) < target);
}

void Engine::block(const char* reason) {
  CAF2_REQUIRE(tls_context.engine == this && tls_context.id >= 0,
               "block() must be called from a participant context");
  Participant& self = *participants_[tls_context.id];
  Shard& shard = home_shard(self.id);
  auto lock = lock_gate(shard);
  CAF2_ASSERT(self.active, "block() caller does not hold the token");
  record(shard, TraceKind::kBlock, self.id);
  if (observer_ != nullptr) {
    observer_->on_block_begin(
        self.id, shard.now_us.load(std::memory_order_relaxed), reason);
  }
  self.state = PState::kWaiting;
  self.block_reason = reason;
  switch_out(shard, lock, self);
  // switch_out throws on engine failure, harmlessly abandoning the pending
  // blocked span.
  if (observer_ != nullptr) {
    observer_->on_block_end(self.id,
                            shard.now_us.load(std::memory_order_relaxed));
  }
}

void Engine::unblock(int participant) {
  CAF2_REQUIRE(participant >= 0 && participant < size(),
               "unblock(): participant id out of range");
  if (sharded_) {
    const int dest = shard_of(participant);
    if (tls_shard.engine != this || tls_shard.index != dest) {
      CAF2_REQUIRE(tls_shard.engine == this,
                   "cross-shard unblock() outside an engine context");
      // Cross-shard wake: stage into the owner's inbox without peeking at
      // the target's state (that would race); stale wakes are filtered at
      // dispatch, exactly like same-shard ones. The timestamp is clamped to
      // the destination clock at merge time.
      Shard& src = *shards_[static_cast<std::size_t>(tls_shard.index)];
      cross_post(dest, src.now_us.load(std::memory_order_relaxed), participant,
                 InlineFn());
      return;
    }
  }
  Shard& shard = home_shard(participant);
  auto lock = lock_gate(shard);
  Participant& target = *participants_[participant];
  if (target.state == PState::kFinished || target.active) {
    return;
  }
  shard.heap.push(Event{shard.now_us.load(std::memory_order_relaxed),
                        shard.next_seq++, participant, kNoSlot});
}

std::uint64_t Engine::reserve_seq() {
  Shard& shard = calling_shard();
  auto lock = lock_gate(shard);
  return shard.next_seq++;
}

void Engine::post_reserved(double at, std::uint64_t seq, InlineFn fn) {
  CAF2_REQUIRE(static_cast<bool>(fn), "post_reserved() needs a callable");
  Shard& shard = calling_shard();
  auto lock = lock_gate(shard);
  const double when =
      std::max(at, shard.now_us.load(std::memory_order_relaxed));
  const std::uint32_t slot = acquire_slot(shard, std::move(fn));
  shard.heap.push(Event{when, seq, -1, slot});
}

void Engine::post_call(double at, InlineFn fn) {
  CAF2_REQUIRE(static_cast<bool>(fn), "post() needs a callable");
  Shard& shard = calling_shard();
  auto lock = lock_gate(shard);
  const double when =
      std::max(at, shard.now_us.load(std::memory_order_relaxed));
  const std::uint32_t slot = acquire_slot(shard, std::move(fn));
  shard.heap.push(Event{when, shard.next_seq++, -1, slot});
}

void Engine::post_for_call(int participant, double at, InlineFn fn) {
  CAF2_REQUIRE(static_cast<bool>(fn), "post_for() needs a callable");
  CAF2_REQUIRE(participant >= 0 && participant < size(),
               "post_for(): participant id out of range");
  if (sharded_) {
    const int dest = shard_of(participant);
    if (tls_shard.engine != this || tls_shard.index != dest) {
      CAF2_REQUIRE(tls_shard.engine == this,
                   "cross-shard post_for() outside an engine context");
      Shard& src = *shards_[static_cast<std::size_t>(tls_shard.index)];
      CAF2_ASSERT(
          at >= src.now_us.load(std::memory_order_relaxed) + lookahead_ - 1e-9,
          "cross-shard event violates the conservative lookahead window");
      cross_post(dest, at, -1, std::move(fn));
      return;
    }
  }
  post_call(at, std::move(fn));
}

void Engine::cross_post(int dest_shard, double at,
                        std::int32_t wake_participant, InlineFn fn) {
  Shard& src = *shards_[static_cast<std::size_t>(tls_shard.index)];
  Shard& dst = *shards_[static_cast<std::size_t>(dest_shard)];
  if (adaptive_) {
    // In-flight horizon clamp (DESIGN.md §4.12). The barrier bound only
    // covers reaction chains rooted in events already materialized in some
    // heap; the chain rooted at *this* staging is not, and its earliest
    // possible return is `at + lookahead` (the destination may dispatch the
    // event as early as `at`, and anything it creates for us rides at least
    // one wire latency). The sender therefore caps its own window here —
    // dispatches so far are at or below the current clock, which is below
    // the horizon, so the cap never retracts executed time. Same-context
    // writer as the dispatch loop reading it; the gate publishes the store.
    const double horizon = at + lookahead_;
    if (horizon < src.window_end.load(std::memory_order_relaxed)) {
      src.window_end.store(horizon, std::memory_order_relaxed);
    }
  }
  CrossEvent ev;
  ev.at = at;
  // Only the source shard's current token holder (or its dispatcher) stages
  // cross events, so the per-source counter needs no synchronization.
  ev.order = src.cross_order++;
  ev.source_shard = src.index;
  ev.wake_participant = wake_participant;
  ev.fn = std::move(fn);
  std::lock_guard<std::mutex> guard(dst.inbox_mutex);
  dst.inbox.push_back(std::move(ev));
}

bool Engine::drain_inbox_locked(Shard& shard, std::string& violation) {
  std::vector<CrossEvent> batch;
  {
    std::lock_guard<std::mutex> guard(shard.inbox_mutex);
    batch.swap(shard.inbox);
  }
  if (batch.empty()) {
    return true;
  }
  // (time, source shard, per-source counter) is a total order — the counter
  // is unique within a source — so the merged sequence is identical for any
  // arrival interleaving: multi-shard runs are deterministic for a fixed
  // shard count.
  std::sort(batch.begin(), batch.end(),
            [](const CrossEvent& a, const CrossEvent& b) {
              if (a.at != b.at) {
                return a.at < b.at;
              }
              if (a.source_shard != b.source_shard) {
                return a.source_shard < b.source_shard;
              }
              return a.order < b.order;
            });
  const double local_now = shard.now_us.load(std::memory_order_relaxed);
  bool ok = true;
  for (auto& ev : batch) {
    // Clamping wakes to the destination clock keeps every heap entry at or
    // above the clock, which is what makes the global minimum — and with it
    // the window end — monotone (DESIGN.md §4.11). Calls are provably
    // already in the destination's future — the barrier bound covers chains
    // rooted in other shards' heaps and the staging-time horizon clamp
    // covers chains this shard's own sends set off (§4.12) — so the clamp
    // is a no-op for them; verify that instead of silently time-shifting a
    // straggler, which would corrupt latency metrics undetectably.
    if (ev.wake_participant < 0 && ev.at < local_now - 1e-9 && ok) {
      std::ostringstream os;
      os << "conservative window violation: cross-shard call from shard "
         << ev.source_shard << " at t=" << ev.at << " us merged into shard "
         << shard.index << "'s past (clock " << local_now << " us)";
      violation = os.str();
      ok = false;
    }
    const double when = std::max(ev.at, local_now);
    if (ev.wake_participant >= 0) {
      shard.heap.push(
          Event{when, shard.next_seq++, ev.wake_participant, kNoSlot});
    } else {
      const std::uint32_t slot = acquire_slot(shard, std::move(ev.fn));
      shard.heap.push(Event{when, shard.next_seq++, -1, slot});
    }
  }
  return ok;
}

bool Engine::window_rendezvous() {
  std::unique_lock<std::mutex> lock(sync_mutex_);
  if (sync_done_) {
    return false;
  }
  if (++sync_waiting_ == static_cast<int>(shards_.size())) {
    sync_waiting_ = 0;
    const bool cont = advance_window_locked();
    if (!cont) {
      sync_done_ = true;
    }
    ++sync_generation_;
    sync_cv_.notify_all();
    return cont;
  }
  const std::uint64_t generation = sync_generation_;
  sync_cv_.wait(lock, [&] { return sync_generation_ != generation; });
  return !sync_done_;
}

bool Engine::advance_window_locked() {
  // Every shard worker is parked in this rendezvous and every participant is
  // parked in its shard (the coordinator only arrives once its shard is
  // quiescent), so all shard state is safe to read and mutate here; the
  // sync mutex hand-off publishes whatever this thread writes.
  if (failed()) {
    finish_failure_locked();
    return false;
  }
  int finished = 0;
  for (const auto& shard : shards_) {
    finished += shard->finished_count;
  }
  if (finished == size()) {
    return false;
  }

  std::string violation;
  for (auto& shard : shards_) {
    if (!drain_inbox_locked(*shard, violation)) {
      fail_pending(obs::FailKind::kExplicitFail, violation, nullptr, false);
      finish_failure_locked();
      return false;
    }
  }

  // Per-shard lower bounds: the earliest pending event of each shard after
  // the inbox merge (+inf for an empty heap). These are the window inputs
  // for both lookahead modes and the broadcast the adaptive mode derives
  // cross-shard windows from.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> tops(shards_.size(), kInf);
  double global_min = kInf;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (!shards_[s]->heap.empty()) {
      tops[s] = shards_[s]->heap.top().at;
      global_min = std::min(global_min, tops[s]);
    }
  }
  if (global_min == kInf) {
    fail_pending(obs::FailKind::kDeadlock,
                 "deadlock: no pending events and every "
                 "unfinished participant is blocked",
                 nullptr, false);
    finish_failure_locked();
    return false;
  }
  if (options_.max_events != 0 && total_dispatched() >= options_.max_events) {
    fail_pending(obs::FailKind::kEventBudget,
                 "simulation event budget exceeded", nullptr, false);
    finish_failure_locked();
    return false;
  }
  if (options_.watchdog_quiet_us > 0.0) {
    double latest = 0.0;
    for (const auto& shard : shards_) {
      latest = std::max(latest, shard->now_us.load(std::memory_order_relaxed));
    }
    if (global_min > latest + options_.watchdog_quiet_us &&
        all_unfinished_blocked_locked()) {
      std::ostringstream os;
      os << "watchdog: every image is blocked and no event is due within "
         << options_.watchdog_quiet_us << " us (next event at t=" << global_min
         << " us)";
      fail_pending(obs::FailKind::kQuietWatchdog, os.str(), nullptr, false);
      finish_failure_locked();
      return false;
    }
  }

  ++windows_;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = *shards_[i];
    double bound;
    if (!adaptive_) {
      // Static windows: every shard gets the same end. The merge clamp makes
      // global_min non-decreasing across windows, so the max() below is
      // provably a no-op — kept as a defensive invariant: a window end must
      // never move backwards once shard clocks have entered a window.
      bound = global_min + lookahead_;
    } else {
      // Adaptive windows: shard i is bounded by the earliest event any
      // *materialized* chain could deliver to it. A chain rooted in shard
      // j's heap reaches i no earlier than tops[j] + lookahead (>= 1 hop,
      // and j dispatches nothing before tops[j]); chains rooted in events
      // shard i itself sends *during* the window are invisible to this
      // bound — they are capped at staging time by cross_post's horizon
      // clamp (at + lookahead), which also knocks the stored window end
      // down so the max() below cannot resurrect a stale value the clamp
      // retired. All tops are >= global_min, hence the bound never drops
      // below the static floor; +inf (every other shard empty) lets shard
      // i drain its whole heap — empty peers root no chains, and any chain
      // i starts by messaging them re-enters through the clamp.
      bound = kInf;
      for (std::size_t j = 0; j < shards_.size(); ++j) {
        if (j != i && tops[j] + lookahead_ < bound) {
          bound = tops[j] + lookahead_;
        }
      }
    }
    const double new_end =
        std::max(shard.window_end.load(std::memory_order_relaxed), bound);
    shard.window_end.store(new_end, std::memory_order_relaxed);
    if (shard.heap.empty() || shard.heap.top().at >= new_end) {
      ++window_stalls_;
    }
  }
  return true;
}

void Engine::participant_main(int id, const std::function<void(int)>& body) {
  tls_context = ExecContext{this, id, {}};
  Participant& self = *participants_[id];
  Shard& shard = home_shard(id);
  if (sharded_) {
    tls_shard = ShardTls{this, shard.index};
  }

  {
    std::unique_lock<std::mutex> lock(shard.mutex);
    if (!sharded_) {
      while (!self.active && !failed()) {
        self.cv.wait(lock);
      }
      if (failed()) {
        self.state = PState::kFinished;
        ++shard.finished_count;
        done_cv_.notify_all();
        tls_context = {};
        return;
      }
    } else {
      while (!self.active) {
        if (failed() && shutdown_ready_.load(std::memory_order_acquire)) {
          // Never received the token; exit without running the body.
          self.state = PState::kFinished;
          ++shard.finished_count;
          tls_context = {};
          tls_shard = {};
          return;
        }
        self.cv.wait(lock);
      }
    }
    self.state = PState::kRunnable;
  }

  std::exception_ptr error;
  try {
    body(id);
  } catch (...) {
    error = std::current_exception();
  }

  if (error && sharded_) {
    // Must run before taking the shard gate (fail_pending's contract).
    fail_pending(obs::FailKind::kImageError,
                 "participant raised an exception", error, false);
  }
  std::unique_lock<std::mutex> lock(shard.mutex);
  self.state = PState::kFinished;
  self.active = false;
  ++shard.finished_count;
  record(shard, TraceKind::kFinish, id);
  if (error && !sharded_) {
    if (!first_error_) {
      first_error_ = error;
    }
    fail_report_locked(lock, obs::FailKind::kImageError,
                       "participant raised an exception");
  }
  if (!sharded_) {
    if (shard.finished_count == shard.count || failed()) {
      done_cv_.notify_all();
    } else {
      dispatch_chain(shard, lock, nullptr);
    }
  } else {
    if (shard.finished_count == shard.count || failed()) {
      shard_idle_locked(shard);
    } else {
      dispatch_chain(shard, lock, nullptr);
    }
  }
  tls_context = {};
  if (sharded_) {
    tls_shard = {};
  }
}

void Engine::fiber_main(int id, const std::function<void(int)>& body) {
  Participant& self = *participants_[id];
  self.state = PState::kRunnable;

  std::exception_ptr error;
  try {
    body(id);
  } catch (...) {
    error = std::current_exception();
  }

  // Mirrors participant_main's epilogue; the shard's scheduler loop takes
  // over dispatching as soon as this entry function returns.
  Shard& shard = home_shard(id);
  if (error && sharded_) {
    fail_pending(obs::FailKind::kImageError,
                 "participant raised an exception", error, false);
  }
  auto lock = lock_gate(shard);
  self.state = PState::kFinished;
  self.active = false;
  ++shard.finished_count;
  record(shard, TraceKind::kFinish, id);
  if (error && !sharded_) {
    if (!first_error_) {
      first_error_ = error;
    }
    fail_report_locked(lock, obs::FailKind::kImageError,
                       "participant raised an exception");
  }
}

void Engine::resume_fiber(Participant& target) {
  const ExecContext saved = tls_context;
  tls_context = target.context;
  target.fiber->resume();
  target.context = tls_context;  // capture slot updates made by the fiber
  tls_context = saved;
}

void Engine::unwind_live_fibers(Shard& shard) {
  for (int p = shard.first; p < shard.first + shard.count; ++p) {
    Participant& participant = *participants_[p];
    if (participant.state == PState::kFinished) {
      continue;
    }
    if (!participant.fiber->started()) {
      // Never received the token: the thread backend's participant_main
      // exits without running the body (and without a kFinish record).
      participant.state = PState::kFinished;
      participant.active = false;
      ++shard.finished_count;
      continue;
    }
    // The fiber is parked inside switch_out(); one resume lets it observe
    // failed_, throw, and unwind its body. switch_out() refuses to suspend
    // once the failure is ready, so this resume returns only when the fiber
    // has finished.
    resume_fiber(participant);
    CAF2_ASSERT(participant.fiber->finished(),
                "fiber survived failure unwinding");
  }
}

void Engine::run_fibers(const std::function<void(int)>& body) {
  Shard& shard = *shards_[0];
  for (auto& participant : participants_) {
    participant->context = ExecContext{this, participant->id, {}};
    participant->fiber = std::make_unique<Fiber>(
        options_.fiber_stack_bytes,
        [this, id = participant->id, &body] { fiber_main(id, body); });
  }

  // The scheduler loop: dispatch until a participant is activated, switch
  // onto its fiber, repeat when it suspends or finishes. Single-threaded by
  // construction, so `gate` is an empty lock (see lock_gate()).
  std::unique_lock<std::mutex> gate;
  while (shard.finished_count < size() && !failed()) {
    dispatch_chain(shard, gate, nullptr);
    Participant* target = shard.activated;
    shard.activated = nullptr;
    if (target == nullptr) {
      break;  // failed, or everyone finished during the chain
    }
    resume_fiber(*target);
  }
  if (failed()) {
    unwind_live_fibers(shard);
  }
  for (auto& participant : participants_) {
    participant->fiber.reset();
  }
}

void Engine::run_threads(const std::function<void(int)>& body) {
  Shard& shard = *shards_[0];
  for (auto& participant : participants_) {
    participant->thread =
        std::thread([this, id = participant->id, &body] {
          participant_main(id, body);
        });
  }

  {
    std::unique_lock<std::mutex> lock(shard.mutex);
    dispatch_chain(shard, lock, nullptr);  // hand the token to participant 0
    done_cv_.wait(lock, [this, &shard] {
      return shard.finished_count == size() || failed();
    });
    if (failed()) {
      // Every live participant will observe failed_ at its next engine call
      // (or is already being notified) and unwind.
      done_cv_.wait(lock,
                    [this, &shard] { return shard.finished_count == size(); });
    }
  }

  for (auto& participant : participants_) {
    if (participant->thread.joinable()) {
      participant->thread.join();
    }
  }
}

void Engine::shard_worker_fibers(Shard& shard,
                                 const std::function<void(int)>& body) {
  tls_shard = ShardTls{this, shard.index};
  for (int p = shard.first; p < shard.first + shard.count; ++p) {
    Participant& participant = *participants_[p];
    participant.context = ExecContext{this, p, {}};
    participant.fiber = std::make_unique<Fiber>(
        options_.fiber_stack_bytes, [this, p, &body] { fiber_main(p, body); });
  }

  // Per-window scheduler loop: dispatch this shard's events up to the window
  // end, then rendezvous with the other shards to open the next window.
  std::unique_lock<std::mutex> gate;
  for (;;) {
    while (shard.finished_count < shard.count && !failed()) {
      dispatch_chain(shard, gate, nullptr);
      Participant* target = shard.activated;
      shard.activated = nullptr;
      if (target == nullptr) {
        break;  // window exhausted, shard drained, or run failed
      }
      resume_fiber(*target);
    }
    if (!window_rendezvous()) {
      break;
    }
  }
  if (failed()) {
    unwind_live_fibers(shard);
  }
  for (int p = shard.first; p < shard.first + shard.count; ++p) {
    participants_[p]->fiber.reset();
  }
  tls_shard = {};
}

void Engine::shard_worker_threads(Shard& shard,
                                  const std::function<void(int)>& body) {
  tls_shard = ShardTls{this, shard.index};
  for (int p = shard.first; p < shard.first + shard.count; ++p) {
    participants_[p]->thread =
        std::thread([this, p, &body] { participant_main(p, body); });
  }

  std::unique_lock<std::mutex> lock(shard.mutex);
  for (;;) {
    shard.window_idle = false;
    dispatch_chain(shard, lock, nullptr);
    // The shard is quiescent exactly when window_idle is set (the last
    // token holder found nothing more to dispatch this window) or everyone
    // finished — only then is it safe to expose the shard's state to the
    // barrier completer.
    shard.idle_cv.wait(lock, [&shard] {
      return shard.window_idle || shard.finished_count == shard.count;
    });
    lock.unlock();
    const bool cont = window_rendezvous();
    lock.lock();
    if (!cont) {
      break;
    }
  }
  // Shutdown: release every parked participant (they observe the finished /
  // failed state and exit or unwind).
  for (int p = shard.first; p < shard.first + shard.count; ++p) {
    participants_[p]->cv.notify_all();
  }
  lock.unlock();

  for (int p = shard.first; p < shard.first + shard.count; ++p) {
    if (participants_[p]->thread.joinable()) {
      participants_[p]->thread.join();
    }
  }
  tls_shard = {};
}

void Engine::run_sharded(const std::function<void(int)>& body) {
  // The initial window is the static one in both lookahead modes: every
  // shard's heap holds its participants' t=0 wakes, so the adaptive
  // derivation would yield exactly `0 + lookahead` anyway.
  windows_ = 1;
  for (auto& shard : shards_) {
    shard->window_end.store(lookahead_, std::memory_order_relaxed);
    for (int p = shard->first; p < shard->first + shard->count; ++p) {
      shard->heap.push(Event{0.0, shard->next_seq++, p, kNoSlot});
    }
  }

  std::vector<std::thread> workers;
  workers.reserve(shards_.size());
  for (auto& shard : shards_) {
    Shard* raw = shard.get();
    workers.emplace_back([this, raw, &body] {
      if (backend_ == ExecBackend::kFibers) {
        shard_worker_fibers(*raw, body);
      } else {
        shard_worker_threads(*raw, body);
      }
    });
  }
  for (auto& worker : workers) {
    worker.join();
  }
}

void Engine::run(const std::function<void(int)>& body) {
  CAF2_REQUIRE(!running_, "Engine::run() may only be called once");
  running_ = true;

  if (sharded_) {
    quiesced_.store(false, std::memory_order_release);
    run_sharded(body);
    quiesced_.store(true, std::memory_order_release);
  } else {
    {
      auto lock = lock_gate(*shards_[0]);
      Shard& shard = *shards_[0];
      for (auto& participant : participants_) {
        shard.heap.push(Event{0.0, shard.next_seq++, participant->id, kNoSlot});
      }
    }
    if (backend_ == ExecBackend::kFibers) {
      run_fibers(body);
    } else {
      run_threads(body);
    }
  }

  if (options_.record_trace) {
    if (shards_.size() == 1) {
      trace_ = std::move(shards_[0]->trace);
      shards_[0]->trace.clear();
    } else {
      std::size_t total = 0;
      for (const auto& shard : shards_) {
        total += shard->trace.size();
      }
      trace_.reserve(total);
      for (auto& shard : shards_) {
        trace_.insert(trace_.end(), shard->trace.begin(), shard->trace.end());
        shard->trace.clear();
        shard->trace.shrink_to_fit();
      }
    }
  }

  if (first_error_) {
    std::rethrow_exception(first_error_);
  }
  if (failed()) {
    throw_failure();
  }
}

}  // namespace caf2::sim
