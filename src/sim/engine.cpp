#include "sim/engine.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "obs/obs.hpp"
#include "obs/postmortem.hpp"

namespace caf2::sim {

ExecBackend resolve_backend(ExecBackend configured) {
  ExecBackend backend = configured;
  if (const char* env = std::getenv("CAF2_SIM_BACKEND");
      env != nullptr && *env != '\0') {
    if (std::strcmp(env, "threads") == 0) {
      backend = ExecBackend::kThreads;
    } else if (std::strcmp(env, "fibers") == 0) {
      backend = ExecBackend::kFibers;
    }
    // Unknown values fall through to whatever was configured.
  }
  if (backend == ExecBackend::kAuto) {
    backend = fibers_supported() ? ExecBackend::kFibers : ExecBackend::kThreads;
  } else if (backend == ExecBackend::kFibers && !fibers_supported()) {
    backend = ExecBackend::kThreads;  // TSan builds: silent fallback
  }
  return backend;
}

namespace {
/// The calling context's identity. Participant threads own theirs for the
/// whole run; the fiber scheduler swaps it on every fiber switch (the
/// suspended copy lives in Participant::context).
thread_local ExecContext tls_context;
}  // namespace

Engine* Engine::current_engine() { return tls_context.engine; }
int Engine::current_id() { return tls_context.id; }

void*& Engine::context_slot(int index) {
  CAF2_ASSERT(index >= 0 &&
                  static_cast<std::size_t>(index) < tls_context.slots.size(),
              "context_slot index out of range");
  return tls_context.slots[static_cast<std::size_t>(index)];
}

Engine::Engine(int participants, EngineOptions options)
    : options_(std::move(options)) {
  CAF2_REQUIRE(participants > 0, "Engine needs at least one participant");
  fastpath_ = options_.enable_fastpath;
  if (const char* env = std::getenv("CAF2_SIM_NO_FASTPATH");
      env != nullptr && *env != '\0' && *env != '0') {
    fastpath_ = false;
  }
  backend_ = resolve_backend(options_.backend);
  participants_.reserve(static_cast<std::size_t>(participants));
  for (int i = 0; i < participants; ++i) {
    auto participant = std::make_unique<Participant>();
    participant->id = i;
    participants_.push_back(std::move(participant));
  }
}

Engine::~Engine() {
  // run() joins all threads / finishes all fibers; nothing to do unless
  // run() was never called.
}

void Engine::record(TraceKind kind, int participant) {
  if (!options_.record_trace) {
    return;
  }
  if (options_.max_trace_entries != 0 &&
      trace_.size() >= options_.max_trace_entries) {
    ++trace_dropped_;
    return;
  }
  trace_.push_back(TraceEntry{trace_.size(),
                              now_us_.load(std::memory_order_relaxed), kind,
                              participant});
}

void Engine::fail_locked(std::unique_lock<std::mutex>& lock,
                         const std::string& why) {
  (void)lock;
  if (failed_) {
    return;
  }
  failed_ = true;
  failure_reason_ = options_.label + ": " + why;
  if (backend_ == ExecBackend::kThreads) {
    for (auto& participant : participants_) {
      participant->cv.notify_all();
    }
    done_cv_.notify_all();
  }
}

std::shared_ptr<const obs::Postmortem> Engine::build_postmortem_locked(
    obs::FailKind kind, const std::string& headline) {
  auto pm = std::make_shared<obs::Postmortem>();
  pm->kind = kind;
  pm->headline = headline;
  pm->label = options_.label;
  pm->now_us = now_us_.load(std::memory_order_relaxed);
  pm->events = dispatched_.load(std::memory_order_relaxed);
  pm->pending_calls = call_pool_.size() - free_slots_.size();
  pm->images = size();
  pm->per_image.reserve(participants_.size());
  for (const auto& participant : participants_) {
    obs::PmImage img;
    img.rank = participant->id;
    switch (participant->state) {
      case PState::kFinished:
        img.state = "finished";
        break;
      case PState::kWaiting:
        img.state = "blocked";
        img.block_reason = participant->block_reason;
        break;
      case PState::kIdle:
        img.state = "not started";
        break;
      case PState::kRunnable:
        img.state = "runnable";
        break;
    }
    pm->per_image.push_back(std::move(img));
  }
  pm->classification = obs::classify(kind, false);
  // Both callbacks run with the engine lock held; an exception escaping here
  // would deadlock the very failure we are reporting (the thread backend's
  // wake-up notifications would never run), so tag and swallow instead.
  auto swallow = [&pm](const char* who, const auto& fn) {
    try {
      fn();
    } catch (const std::exception& e) {
      if (!pm->collector_error.empty()) {
        pm->collector_error += "; ";
      }
      pm->collector_error += who;
      pm->collector_error += ": ";
      pm->collector_error += e.what();
    } catch (...) {
      if (!pm->collector_error.empty()) {
        pm->collector_error += "; ";
      }
      pm->collector_error += who;
      pm->collector_error += ": non-standard exception";
    }
  };
  if (collector_) {
    swallow("postmortem collector", [&] { collector_(*pm); });
  }
  if (diagnostics_) {
    swallow("diagnostics callback", [&] { pm->extra = diagnostics_(); });
  }
  return pm;
}

void Engine::fail_report_locked(std::unique_lock<std::mutex>& lock,
                                obs::FailKind kind,
                                const std::string& headline) {
  if (failed_) {
    return;  // the first failure's postmortem wins
  }
  last_postmortem_ = build_postmortem_locked(kind, headline);
  fail_locked(lock, obs::to_text(*last_postmortem_));
}

void Engine::throw_failure() const {
  throw obs::StallError(failure_reason_, last_postmortem_);
}

bool Engine::all_unfinished_blocked_locked() const {
  bool any_waiting = false;
  for (const auto& participant : participants_) {
    switch (participant->state) {
      case PState::kFinished:
        break;
      case PState::kWaiting:
        any_waiting = true;
        break;
      case PState::kIdle:
      case PState::kRunnable:
        return false;
    }
  }
  return any_waiting;
}

void Engine::fail(const std::string& why) {
  fail(why, obs::FailKind::kExplicitFail);
}

void Engine::fail(const std::string& why, obs::FailKind kind) {
  auto lock = lock_gate();
  fail_report_locked(lock, kind, why);
}

void Engine::set_diagnostics(std::function<std::string()> fn) {
  auto lock = lock_gate();
  diagnostics_ = std::move(fn);
}

void Engine::set_postmortem_collector(PostmortemCollector fn) {
  auto lock = lock_gate();
  collector_ = std::move(fn);
}

obs::Postmortem Engine::snapshot_postmortem(const std::string& headline) {
  auto lock = lock_gate();
  return *build_postmortem_locked(obs::FailKind::kOnDemand, headline);
}

std::uint32_t Engine::acquire_slot(InlineFn fn) {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    call_pool_[slot] = std::move(fn);
    return slot;
  }
  const std::uint32_t slot = static_cast<std::uint32_t>(call_pool_.size());
  call_pool_.push_back(std::move(fn));
  return slot;
}

void Engine::dispatch_chain(std::unique_lock<std::mutex>& lock,
                            Participant* dispatcher) {
  for (;;) {
    if (failed_) {
      return;
    }
    if (finished_count_ == size()) {
      done_cv_.notify_all();
      return;
    }
    if (heap_.empty()) {
      fail_report_locked(lock, obs::FailKind::kDeadlock,
                         "deadlock: no pending events and every "
                         "unfinished participant is blocked");
      return;
    }
    if (options_.max_events != 0 &&
        dispatched_.load(std::memory_order_relaxed) >= options_.max_events) {
      fail_report_locked(lock, obs::FailKind::kEventBudget,
                         "simulation event budget exceeded");
      return;
    }
    if (options_.watchdog_quiet_us > 0.0 &&
        heap_.top().at > now_us_.load(std::memory_order_relaxed) +
                             options_.watchdog_quiet_us &&
        all_unfinished_blocked_locked()) {
      std::ostringstream os;
      os << "watchdog: every image is blocked and no event is due within "
         << options_.watchdog_quiet_us << " us (next event at t="
         << heap_.top().at << " us)";
      fail_report_locked(lock, obs::FailKind::kQuietWatchdog, os.str());
      return;
    }

    const Event event = heap_.top();
    heap_.pop();
    dispatched_.fetch_add(1, std::memory_order_relaxed);
    now_us_.store(std::max(now_us_.load(std::memory_order_relaxed), event.at),
                  std::memory_order_relaxed);

    if (event.call_slot != kNoSlot) {
      record(TraceKind::kCall, -1);
      // Callbacks (network staging, deliveries, timers) run with the engine
      // lock released. No participant holds the token here, so callbacks may
      // freely mutate cross-participant runtime state (mailboxes, counters)
      // without racing.
      InlineFn fn = std::move(call_pool_[event.call_slot]);
      free_slots_.push_back(event.call_slot);
      std::exception_ptr error;
      if (lock.mutex() != nullptr) {
        lock.unlock();
      }
      try {
        fn();
      } catch (...) {
        error = std::current_exception();
      }
      fn.reset();  // destroy the closure before retaking the lock
      if (lock.mutex() != nullptr) {
        lock.lock();
      }
      if (error) {
        // A throwing callback must not propagate through whoever happens to
        // be dispatching (from run()'s chain it would escape with
        // participant threads still live). Convert it into an engine
        // failure, tagged with the dispatching context.
        if (!first_error_) {
          const std::string who =
              dispatcher != nullptr
                  ? "participant " + std::to_string(dispatcher->id)
                  : std::string("the scheduler");
          std::string what = "engine callback (dispatched from " + who + ")";
          try {
            std::rethrow_exception(error);
          } catch (const std::exception& e) {
            what += " raised: ";
            what += e.what();
          } catch (...) {
            what += " raised a non-standard exception";
          }
          fail_report_locked(lock, obs::FailKind::kCallbackError, what);
          first_error_ = std::make_exception_ptr(obs::StallError(
              options_.label + ": " + what, last_postmortem_));
        } else {
          fail_report_locked(lock, obs::FailKind::kCallbackError,
                             "engine callback raised an exception");
        }
        return;
      }
      continue;
    }

    Participant& target = *participants_[event.wake_participant];
    if (target.state == PState::kFinished || target.active) {
      continue;  // stale wake
    }
    record(TraceKind::kWake, target.id);
    target.active = true;
    target.state = PState::kRunnable;
    if (target.id != token_owner_) {
      // Counted only when the token moves between participants, so the
      // value is a pure function of the dispatch order: identical across
      // backends and with the fast path on or off (a fast-pathed self-wake
      // is exactly a dispatch that keeps the token in place).
      token_owner_ = target.id;
      context_switches_.fetch_add(1, std::memory_order_relaxed);
    }
    activated_ = &target;
    if (backend_ == ExecBackend::kThreads && &target != dispatcher) {
      target.cv.notify_one();
    }
    return;
  }
}

void Engine::switch_out(std::unique_lock<std::mutex>& lock,
                        Participant& self) {
  self.active = false;
  if (backend_ == ExecBackend::kFibers) {
    // Hand control back to the scheduler loop in run_fibers(), which
    // dispatches the next event. If the run already failed, suspending would
    // leave this fiber parked forever (the unwind pass resumes each live
    // fiber exactly once) — throw immediately instead.
    if (!failed_) {
      Fiber::suspend();
    }
    if (failed_) {
      throw_failure();
    }
    self.state = PState::kRunnable;
    self.block_reason.clear();
    return;
  }
  dispatch_chain(lock, &self);
  while (!self.active && !failed_) {
    self.cv.wait(lock);
  }
  if (failed_) {
    throw_failure();
  }
  self.state = PState::kRunnable;
  self.block_reason.clear();
}

void Engine::advance(double dt) {
  CAF2_REQUIRE(tls_context.engine == this && tls_context.id >= 0,
               "advance() must be called from a participant context");
  CAF2_REQUIRE(dt >= 0.0, "advance() needs a non-negative duration");
  Participant& self = *participants_[tls_context.id];
  CAF2_ASSERT(self.active, "advance() caller does not hold the token");

  // Self-wake fast path: the caller holds the token, so every engine field
  // below is owned by this context until the token is handed off through the
  // gate (which publishes these plain writes). If the wake we are about to
  // schedule — (target, next_seq_) — would be the very next event dispatched,
  // and the event budget permits dispatching it, skip the heap round-trip
  // and the switch_out() handoff entirely. Ties at `target` go to the heap
  // (existing events hold smaller sequence numbers), so the strict `>`
  // comparison is exact, and the recorded trace (kAdvance then kWake) is
  // bit-identical to the slow path's.
  if (fastpath_ && !failed_ &&
      (heap_.empty() || heap_.top().at > now_us_.load(std::memory_order_relaxed) + dt) &&
      (options_.max_events == 0 ||
       dispatched_.load(std::memory_order_relaxed) < options_.max_events)) {
    record(TraceKind::kAdvance, self.id);
    const double target = now_us_.load(std::memory_order_relaxed) + dt;
    if (observer_ != nullptr && dt > 0.0) {
      observer_->on_compute(self.id,
                            now_us_.load(std::memory_order_relaxed), target);
    }
    ++next_seq_;  // the sequence number the slow path's wake would consume
    dispatched_.fetch_add(1, std::memory_order_relaxed);
    now_us_.store(target, std::memory_order_relaxed);
    record(TraceKind::kWake, self.id);
    return;
  }

  auto lock = lock_gate();
  record(TraceKind::kAdvance, self.id);
  const double target = now_us_.load(std::memory_order_relaxed) + dt;
  if (observer_ != nullptr && dt > 0.0) {
    observer_->on_compute(self.id, now_us_.load(std::memory_order_relaxed),
                          target);
  }
  heap_.push(Event{target, next_seq_++, self.id, kNoSlot});
  // Stray wakes (e.g. an unblock() from a completion callback) can activate
  // this participant before its scheduled resume time; modeled computation
  // must not finish early, so re-relinquish until the clock reaches the
  // target (the scheduled wake is still in the heap).
  do {
    switch_out(lock, self);
  } while (now_us_.load(std::memory_order_relaxed) < target);
}

void Engine::block(const char* reason) {
  CAF2_REQUIRE(tls_context.engine == this && tls_context.id >= 0,
               "block() must be called from a participant context");
  Participant& self = *participants_[tls_context.id];
  auto lock = lock_gate();
  CAF2_ASSERT(self.active, "block() caller does not hold the token");
  record(TraceKind::kBlock, self.id);
  if (observer_ != nullptr) {
    observer_->on_block_begin(self.id,
                              now_us_.load(std::memory_order_relaxed), reason);
  }
  self.state = PState::kWaiting;
  self.block_reason = reason;
  switch_out(lock, self);
  // switch_out throws on engine failure, harmlessly abandoning the pending
  // blocked span.
  if (observer_ != nullptr) {
    observer_->on_block_end(self.id, now_us_.load(std::memory_order_relaxed));
  }
}

void Engine::unblock(int participant) {
  CAF2_REQUIRE(participant >= 0 && participant < size(),
               "unblock(): participant id out of range");
  auto lock = lock_gate();
  Participant& target = *participants_[participant];
  if (target.state == PState::kFinished || target.active) {
    return;
  }
  heap_.push(Event{now_us_.load(std::memory_order_relaxed), next_seq_++,
                   participant, kNoSlot});
}

std::uint64_t Engine::reserve_seq() {
  auto lock = lock_gate();
  return next_seq_++;
}

void Engine::post_reserved(double at, std::uint64_t seq, InlineFn fn) {
  CAF2_REQUIRE(static_cast<bool>(fn), "post_reserved() needs a callable");
  auto lock = lock_gate();
  const double when =
      std::max(at, now_us_.load(std::memory_order_relaxed));
  const std::uint32_t slot = acquire_slot(std::move(fn));
  heap_.push(Event{when, seq, -1, slot});
}

void Engine::post_call(double at, InlineFn fn) {
  CAF2_REQUIRE(static_cast<bool>(fn), "post() needs a callable");
  auto lock = lock_gate();
  const double when =
      std::max(at, now_us_.load(std::memory_order_relaxed));
  const std::uint32_t slot = acquire_slot(std::move(fn));
  heap_.push(Event{when, next_seq_++, -1, slot});
}

void Engine::participant_main(int id, const std::function<void(int)>& body) {
  tls_context = ExecContext{this, id, {}};
  Participant& self = *participants_[id];

  {
    std::unique_lock<std::mutex> lock(mutex_);
    while (!self.active && !failed_) {
      self.cv.wait(lock);
    }
    if (failed_) {
      self.state = PState::kFinished;
      ++finished_count_;
      done_cv_.notify_all();
      tls_context = {};
      return;
    }
    self.state = PState::kRunnable;
  }

  std::exception_ptr error;
  try {
    body(id);
  } catch (...) {
    error = std::current_exception();
  }

  std::unique_lock<std::mutex> lock(mutex_);
  self.state = PState::kFinished;
  self.active = false;
  ++finished_count_;
  record(TraceKind::kFinish, id);
  if (error) {
    if (!first_error_) {
      first_error_ = error;
    }
    fail_report_locked(lock, obs::FailKind::kImageError,
                       "participant raised an exception");
  }
  if (finished_count_ == size() || failed_) {
    done_cv_.notify_all();
  } else {
    dispatch_chain(lock, nullptr);
  }
  tls_context = {};
}

void Engine::fiber_main(int id, const std::function<void(int)>& body) {
  Participant& self = *participants_[id];
  self.state = PState::kRunnable;

  std::exception_ptr error;
  try {
    body(id);
  } catch (...) {
    error = std::current_exception();
  }

  // Mirrors participant_main's epilogue; the scheduler loop in run_fibers()
  // takes over dispatching as soon as this entry function returns.
  auto lock = lock_gate();
  self.state = PState::kFinished;
  self.active = false;
  ++finished_count_;
  record(TraceKind::kFinish, id);
  if (error) {
    if (!first_error_) {
      first_error_ = error;
    }
    fail_report_locked(lock, obs::FailKind::kImageError,
                       "participant raised an exception");
  }
}

void Engine::resume_fiber(Participant& target) {
  const ExecContext saved = tls_context;
  tls_context = target.context;
  target.fiber->resume();
  target.context = tls_context;  // capture slot updates made by the fiber
  tls_context = saved;
}

void Engine::unwind_live_fibers() {
  for (auto& participant : participants_) {
    if (participant->state == PState::kFinished) {
      continue;
    }
    if (!participant->fiber->started()) {
      // Never received the token: the thread backend's participant_main
      // exits without running the body (and without a kFinish record).
      participant->state = PState::kFinished;
      participant->active = false;
      ++finished_count_;
      continue;
    }
    // The fiber is parked inside switch_out(); one resume lets it observe
    // failed_, throw, and unwind its body. switch_out() refuses to suspend
    // once failed_ is set, so this resume returns only when the fiber has
    // finished.
    resume_fiber(*participant);
    CAF2_ASSERT(participant->fiber->finished(),
                "fiber survived failure unwinding");
  }
}

void Engine::run_fibers(const std::function<void(int)>& body) {
  for (auto& participant : participants_) {
    participant->context = ExecContext{this, participant->id, {}};
    participant->fiber = std::make_unique<Fiber>(
        options_.fiber_stack_bytes,
        [this, id = participant->id, &body] { fiber_main(id, body); });
  }

  // The scheduler loop: dispatch until a participant is activated, switch
  // onto its fiber, repeat when it suspends or finishes. Single-threaded by
  // construction, so `gate` is an empty lock (see lock_gate()).
  std::unique_lock<std::mutex> gate;
  while (finished_count_ < size() && !failed_) {
    dispatch_chain(gate, nullptr);
    Participant* target = activated_;
    activated_ = nullptr;
    if (target == nullptr) {
      break;  // failed, or everyone finished during the chain
    }
    resume_fiber(*target);
  }
  if (failed_) {
    unwind_live_fibers();
  }
  for (auto& participant : participants_) {
    participant->fiber.reset();
  }
}

void Engine::run_threads(const std::function<void(int)>& body) {
  for (auto& participant : participants_) {
    participant->thread =
        std::thread([this, id = participant->id, &body] {
          participant_main(id, body);
        });
  }

  {
    std::unique_lock<std::mutex> lock(mutex_);
    dispatch_chain(lock, nullptr);  // hand the token to participant 0
    done_cv_.wait(lock, [this] {
      return finished_count_ == size() || failed_;
    });
    if (failed_) {
      // Every live participant will observe failed_ at its next engine call
      // (or is already being notified) and unwind.
      done_cv_.wait(lock, [this] { return finished_count_ == size(); });
    }
  }

  for (auto& participant : participants_) {
    if (participant->thread.joinable()) {
      participant->thread.join();
    }
  }
}

void Engine::run(const std::function<void(int)>& body) {
  CAF2_REQUIRE(!running_, "Engine::run() may only be called once");
  running_ = true;

  {
    auto lock = lock_gate();
    for (auto& participant : participants_) {
      heap_.push(Event{0.0, next_seq_++, participant->id, kNoSlot});
    }
  }
  if (backend_ == ExecBackend::kFibers) {
    run_fibers(body);
  } else {
    run_threads(body);
  }

  if (first_error_) {
    std::rethrow_exception(first_error_);
  }
  if (failed_) {
    throw_failure();
  }
}

}  // namespace caf2::sim
