#include "sim/engine.hpp"

#include <algorithm>
#include <sstream>

namespace caf2::sim {

namespace {
struct TlsContext {
  Engine* engine = nullptr;
  int id = -1;
};
thread_local TlsContext tls_context;
}  // namespace

Engine* Engine::current_engine() { return tls_context.engine; }
int Engine::current_id() { return tls_context.id; }

Engine::Engine(int participants, EngineOptions options)
    : options_(std::move(options)) {
  CAF2_REQUIRE(participants > 0, "Engine needs at least one participant");
  participants_.reserve(static_cast<std::size_t>(participants));
  for (int i = 0; i < participants; ++i) {
    auto participant = std::make_unique<Participant>();
    participant->id = i;
    participants_.push_back(std::move(participant));
  }
}

Engine::~Engine() {
  // run() joins all threads; nothing to do unless run() was never called.
}

double Engine::now() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return now_us_;
}

std::uint64_t Engine::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dispatched_;
}

void Engine::record(TraceKind kind, int participant) {
  if (!options_.record_trace) {
    return;
  }
  trace_.push_back(TraceEntry{trace_.size(), now_us_, kind, participant});
}

void Engine::fail_locked(std::unique_lock<std::mutex>& lock,
                         const std::string& why) {
  (void)lock;
  if (failed_) {
    return;
  }
  failed_ = true;
  failure_reason_ = options_.label + ": " + why;
  for (auto& participant : participants_) {
    participant->cv.notify_all();
  }
  done_cv_.notify_all();
}

void Engine::dispatch_chain(std::unique_lock<std::mutex>& lock) {
  for (;;) {
    if (failed_) {
      return;
    }
    if (finished_count_ == size()) {
      done_cv_.notify_all();
      return;
    }
    if (heap_.empty()) {
      std::ostringstream os;
      os << "deadlock: no pending events; blocked participants:";
      for (const auto& participant : participants_) {
        if (participant->state != PState::kFinished) {
          os << " p" << participant->id;
          if (!participant->block_reason.empty()) {
            os << "(" << participant->block_reason << ")";
          }
        }
      }
      fail_locked(lock, os.str());
      return;
    }
    if (options_.max_events != 0 && dispatched_ >= options_.max_events) {
      fail_locked(lock, "simulation event budget exceeded");
      return;
    }

    Event event = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    ++dispatched_;
    now_us_ = std::max(now_us_, event.at);

    if (event.call) {
      record(TraceKind::kCall, -1);
      // Callbacks (network staging, deliveries, timers) run with the engine
      // lock released. No participant holds the token here, so callbacks may
      // freely mutate cross-participant runtime state (mailboxes, counters)
      // without racing.
      auto fn = std::move(event.call);
      lock.unlock();
      fn();
      lock.lock();
      continue;
    }

    Participant& target = *participants_[event.wake_participant];
    if (target.state == PState::kFinished || target.active) {
      continue;  // stale wake
    }
    record(TraceKind::kWake, target.id);
    target.active = true;
    target.state = PState::kRunnable;
    target.cv.notify_one();
    return;
  }
}

void Engine::switch_out(std::unique_lock<std::mutex>& lock,
                        Participant& self) {
  self.active = false;
  dispatch_chain(lock);
  while (!self.active && !failed_) {
    self.cv.wait(lock);
  }
  if (failed_) {
    throw FatalError(failure_reason_);
  }
  self.state = PState::kRunnable;
  self.block_reason.clear();
}

void Engine::advance(double dt) {
  CAF2_REQUIRE(tls_context.engine == this && tls_context.id >= 0,
               "advance() must be called from a participant thread");
  CAF2_REQUIRE(dt >= 0.0, "advance() needs a non-negative duration");
  Participant& self = *participants_[tls_context.id];
  std::unique_lock<std::mutex> lock(mutex_);
  CAF2_ASSERT(self.active, "advance() caller does not hold the token");
  record(TraceKind::kAdvance, self.id);
  const double target = now_us_ + dt;
  heap_.push(Event{target, next_seq_++, self.id, nullptr});
  // Stray wakes (e.g. an unblock() from a completion callback) can activate
  // this participant before its scheduled resume time; modeled computation
  // must not finish early, so re-relinquish until the clock reaches the
  // target (the scheduled wake is still in the heap).
  do {
    switch_out(lock, self);
  } while (now_us_ < target);
}

void Engine::block(const char* reason) {
  CAF2_REQUIRE(tls_context.engine == this && tls_context.id >= 0,
               "block() must be called from a participant thread");
  Participant& self = *participants_[tls_context.id];
  std::unique_lock<std::mutex> lock(mutex_);
  CAF2_ASSERT(self.active, "block() caller does not hold the token");
  record(TraceKind::kBlock, self.id);
  self.state = PState::kWaiting;
  self.block_reason = reason;
  switch_out(lock, self);
}

void Engine::unblock(int participant) {
  CAF2_REQUIRE(participant >= 0 && participant < size(),
               "unblock(): participant id out of range");
  std::lock_guard<std::mutex> lock(mutex_);
  Participant& target = *participants_[participant];
  if (target.state == PState::kFinished || target.active) {
    return;
  }
  heap_.push(Event{now_us_, next_seq_++, participant, nullptr});
}

void Engine::post(double at, std::function<void()> fn) {
  CAF2_REQUIRE(fn != nullptr, "post() needs a callable");
  std::lock_guard<std::mutex> lock(mutex_);
  const double when = std::max(at, now_us_);
  Event event;
  event.at = when;
  event.seq = next_seq_++;
  event.wake_participant = -1;
  event.call = std::move(fn);
  heap_.push(std::move(event));
}

void Engine::participant_main(int id, const std::function<void(int)>& body) {
  tls_context.engine = this;
  tls_context.id = id;
  Participant& self = *participants_[id];

  {
    std::unique_lock<std::mutex> lock(mutex_);
    while (!self.active && !failed_) {
      self.cv.wait(lock);
    }
    if (failed_) {
      self.state = PState::kFinished;
      ++finished_count_;
      done_cv_.notify_all();
      tls_context = {};
      return;
    }
    self.state = PState::kRunnable;
  }

  std::exception_ptr error;
  try {
    body(id);
  } catch (...) {
    error = std::current_exception();
  }

  std::unique_lock<std::mutex> lock(mutex_);
  self.state = PState::kFinished;
  self.active = false;
  ++finished_count_;
  record(TraceKind::kFinish, id);
  if (error) {
    if (!first_error_) {
      first_error_ = error;
    }
    fail_locked(lock, "participant raised an exception");
  }
  if (finished_count_ == size() || failed_) {
    done_cv_.notify_all();
  } else {
    dispatch_chain(lock);
  }
  tls_context = {};
}

void Engine::run(const std::function<void(int)>& body) {
  CAF2_REQUIRE(!running_, "Engine::run() may only be called once");
  running_ = true;

  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& participant : participants_) {
      heap_.push(Event{0.0, next_seq_++, participant->id, nullptr});
    }
  }
  for (auto& participant : participants_) {
    participant->thread =
        std::thread([this, id = participant->id, &body] {
          participant_main(id, body);
        });
  }

  {
    std::unique_lock<std::mutex> lock(mutex_);
    dispatch_chain(lock);  // hand the token to participant 0
    done_cv_.wait(lock, [this] {
      return finished_count_ == size() || failed_;
    });
    if (failed_) {
      // Every live participant will observe failed_ at its next engine call
      // (or is already being notified) and unwind.
      done_cv_.wait(lock, [this] { return finished_count_ == size(); });
    }
  }

  for (auto& participant : participants_) {
    if (participant->thread.joinable()) {
      participant->thread.join();
    }
  }

  if (first_error_) {
    std::rethrow_exception(first_error_);
  }
  if (failed_) {
    throw FatalError(failure_reason_);
  }
}

}  // namespace caf2::sim
