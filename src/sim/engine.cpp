#include "sim/engine.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

namespace caf2::sim {

namespace {
struct TlsContext {
  Engine* engine = nullptr;
  int id = -1;
};
thread_local TlsContext tls_context;
}  // namespace

Engine* Engine::current_engine() { return tls_context.engine; }
int Engine::current_id() { return tls_context.id; }

Engine::Engine(int participants, EngineOptions options)
    : options_(std::move(options)) {
  CAF2_REQUIRE(participants > 0, "Engine needs at least one participant");
  fastpath_ = options_.enable_fastpath;
  if (const char* env = std::getenv("CAF2_SIM_NO_FASTPATH");
      env != nullptr && *env != '\0' && *env != '0') {
    fastpath_ = false;
  }
  participants_.reserve(static_cast<std::size_t>(participants));
  for (int i = 0; i < participants; ++i) {
    auto participant = std::make_unique<Participant>();
    participant->id = i;
    participants_.push_back(std::move(participant));
  }
}

Engine::~Engine() {
  // run() joins all threads; nothing to do unless run() was never called.
}

void Engine::record(TraceKind kind, int participant) {
  if (!options_.record_trace) {
    return;
  }
  trace_.push_back(TraceEntry{trace_.size(),
                              now_us_.load(std::memory_order_relaxed), kind,
                              participant});
}

void Engine::fail_locked(std::unique_lock<std::mutex>& lock,
                         const std::string& why) {
  (void)lock;
  if (failed_) {
    return;
  }
  failed_ = true;
  failure_reason_ = options_.label + ": " + why;
  for (auto& participant : participants_) {
    participant->cv.notify_all();
  }
  done_cv_.notify_all();
}

std::string Engine::stall_report_locked(const std::string& headline) const {
  std::ostringstream os;
  os << headline << " at t=" << now_us_.load(std::memory_order_relaxed)
     << " us after " << dispatched_.load(std::memory_order_relaxed)
     << " events\n";
  os << "participants:\n";
  for (const auto& participant : participants_) {
    os << "  p" << participant->id << ": ";
    switch (participant->state) {
      case PState::kFinished:
        os << "finished";
        break;
      case PState::kWaiting:
        os << "blocked";
        if (!participant->block_reason.empty()) {
          os << " (" << participant->block_reason << ")";
        }
        break;
      case PState::kIdle:
        os << "not started";
        break;
      case PState::kRunnable:
        os << "runnable";
        break;
    }
    os << "\n";
  }
  if (diagnostics_) {
    os << diagnostics_();
  }
  return os.str();
}

bool Engine::all_unfinished_blocked_locked() const {
  bool any_waiting = false;
  for (const auto& participant : participants_) {
    switch (participant->state) {
      case PState::kFinished:
        break;
      case PState::kWaiting:
        any_waiting = true;
        break;
      case PState::kIdle:
      case PState::kRunnable:
        return false;
    }
  }
  return any_waiting;
}

void Engine::fail(const std::string& why) {
  std::unique_lock<std::mutex> lock(mutex_);
  fail_locked(lock, stall_report_locked(why));
}

void Engine::set_diagnostics(std::function<std::string()> fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  diagnostics_ = std::move(fn);
}

std::uint32_t Engine::acquire_slot(InlineFn fn) {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    call_pool_[slot] = std::move(fn);
    return slot;
  }
  const std::uint32_t slot = static_cast<std::uint32_t>(call_pool_.size());
  call_pool_.push_back(std::move(fn));
  return slot;
}

void Engine::dispatch_chain(std::unique_lock<std::mutex>& lock,
                            Participant* dispatcher) {
  for (;;) {
    if (failed_) {
      return;
    }
    if (finished_count_ == size()) {
      done_cv_.notify_all();
      return;
    }
    if (heap_.empty()) {
      fail_locked(lock,
                  stall_report_locked("deadlock: no pending events and every "
                                      "unfinished participant is blocked"));
      return;
    }
    if (options_.max_events != 0 &&
        dispatched_.load(std::memory_order_relaxed) >= options_.max_events) {
      fail_locked(lock, "simulation event budget exceeded");
      return;
    }
    if (options_.watchdog_quiet_us > 0.0 &&
        heap_.top().at > now_us_.load(std::memory_order_relaxed) +
                             options_.watchdog_quiet_us &&
        all_unfinished_blocked_locked()) {
      std::ostringstream os;
      os << "watchdog: every image is blocked and no event is due within "
         << options_.watchdog_quiet_us << " us (next event at t="
         << heap_.top().at << " us)";
      fail_locked(lock, stall_report_locked(os.str()));
      return;
    }

    const Event event = heap_.top();
    heap_.pop();
    dispatched_.fetch_add(1, std::memory_order_relaxed);
    now_us_.store(std::max(now_us_.load(std::memory_order_relaxed), event.at),
                  std::memory_order_relaxed);

    if (event.call_slot != kNoSlot) {
      record(TraceKind::kCall, -1);
      // Callbacks (network staging, deliveries, timers) run with the engine
      // lock released. No participant holds the token here, so callbacks may
      // freely mutate cross-participant runtime state (mailboxes, counters)
      // without racing.
      InlineFn fn = std::move(call_pool_[event.call_slot]);
      free_slots_.push_back(event.call_slot);
      lock.unlock();
      fn();
      fn.reset();  // destroy the closure before retaking the lock
      lock.lock();
      continue;
    }

    Participant& target = *participants_[event.wake_participant];
    if (target.state == PState::kFinished || target.active) {
      continue;  // stale wake
    }
    record(TraceKind::kWake, target.id);
    target.active = true;
    target.state = PState::kRunnable;
    if (&target != dispatcher) {
      target.cv.notify_one();
    }
    return;
  }
}

void Engine::switch_out(std::unique_lock<std::mutex>& lock,
                        Participant& self) {
  self.active = false;
  dispatch_chain(lock, &self);
  while (!self.active && !failed_) {
    self.cv.wait(lock);
  }
  if (failed_) {
    throw FatalError(failure_reason_);
  }
  self.state = PState::kRunnable;
  self.block_reason.clear();
}

void Engine::advance(double dt) {
  CAF2_REQUIRE(tls_context.engine == this && tls_context.id >= 0,
               "advance() must be called from a participant thread");
  CAF2_REQUIRE(dt >= 0.0, "advance() needs a non-negative duration");
  Participant& self = *participants_[tls_context.id];
  CAF2_ASSERT(self.active, "advance() caller does not hold the token");

  // Self-wake fast path: the caller holds the token, so every engine field
  // below is owned by this thread until the token is handed off through the
  // mutex (which publishes these plain writes). If the wake we are about to
  // schedule — (target, next_seq_) — would be the very next event dispatched,
  // and the event budget permits dispatching it, skip the heap round-trip
  // and the switch_out() handoff entirely. Ties at `target` go to the heap
  // (existing events hold smaller sequence numbers), so the strict `>`
  // comparison is exact, and the recorded trace (kAdvance then kWake) is
  // bit-identical to the slow path's.
  if (fastpath_ && !failed_ &&
      (heap_.empty() || heap_.top().at > now_us_.load(std::memory_order_relaxed) + dt) &&
      (options_.max_events == 0 ||
       dispatched_.load(std::memory_order_relaxed) < options_.max_events)) {
    record(TraceKind::kAdvance, self.id);
    const double target = now_us_.load(std::memory_order_relaxed) + dt;
    ++next_seq_;  // the sequence number the slow path's wake would consume
    dispatched_.fetch_add(1, std::memory_order_relaxed);
    now_us_.store(target, std::memory_order_relaxed);
    record(TraceKind::kWake, self.id);
    return;
  }

  std::unique_lock<std::mutex> lock(mutex_);
  record(TraceKind::kAdvance, self.id);
  const double target = now_us_.load(std::memory_order_relaxed) + dt;
  heap_.push(Event{target, next_seq_++, self.id, kNoSlot});
  // Stray wakes (e.g. an unblock() from a completion callback) can activate
  // this participant before its scheduled resume time; modeled computation
  // must not finish early, so re-relinquish until the clock reaches the
  // target (the scheduled wake is still in the heap).
  do {
    switch_out(lock, self);
  } while (now_us_.load(std::memory_order_relaxed) < target);
}

void Engine::block(const char* reason) {
  CAF2_REQUIRE(tls_context.engine == this && tls_context.id >= 0,
               "block() must be called from a participant thread");
  Participant& self = *participants_[tls_context.id];
  std::unique_lock<std::mutex> lock(mutex_);
  CAF2_ASSERT(self.active, "block() caller does not hold the token");
  record(TraceKind::kBlock, self.id);
  self.state = PState::kWaiting;
  self.block_reason = reason;
  switch_out(lock, self);
}

void Engine::unblock(int participant) {
  CAF2_REQUIRE(participant >= 0 && participant < size(),
               "unblock(): participant id out of range");
  std::lock_guard<std::mutex> lock(mutex_);
  Participant& target = *participants_[participant];
  if (target.state == PState::kFinished || target.active) {
    return;
  }
  heap_.push(Event{now_us_.load(std::memory_order_relaxed), next_seq_++,
                   participant, kNoSlot});
}

std::uint64_t Engine::reserve_seq() {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_seq_++;
}

void Engine::post_reserved(double at, std::uint64_t seq, InlineFn fn) {
  CAF2_REQUIRE(static_cast<bool>(fn), "post_reserved() needs a callable");
  std::lock_guard<std::mutex> lock(mutex_);
  const double when =
      std::max(at, now_us_.load(std::memory_order_relaxed));
  const std::uint32_t slot = acquire_slot(std::move(fn));
  heap_.push(Event{when, seq, -1, slot});
}

void Engine::post_call(double at, InlineFn fn) {
  CAF2_REQUIRE(static_cast<bool>(fn), "post() needs a callable");
  std::lock_guard<std::mutex> lock(mutex_);
  const double when =
      std::max(at, now_us_.load(std::memory_order_relaxed));
  const std::uint32_t slot = acquire_slot(std::move(fn));
  heap_.push(Event{when, next_seq_++, -1, slot});
}

void Engine::participant_main(int id, const std::function<void(int)>& body) {
  tls_context.engine = this;
  tls_context.id = id;
  Participant& self = *participants_[id];

  {
    std::unique_lock<std::mutex> lock(mutex_);
    while (!self.active && !failed_) {
      self.cv.wait(lock);
    }
    if (failed_) {
      self.state = PState::kFinished;
      ++finished_count_;
      done_cv_.notify_all();
      tls_context = {};
      return;
    }
    self.state = PState::kRunnable;
  }

  std::exception_ptr error;
  try {
    body(id);
  } catch (...) {
    error = std::current_exception();
  }

  std::unique_lock<std::mutex> lock(mutex_);
  self.state = PState::kFinished;
  self.active = false;
  ++finished_count_;
  record(TraceKind::kFinish, id);
  if (error) {
    if (!first_error_) {
      first_error_ = error;
    }
    fail_locked(lock, "participant raised an exception");
  }
  if (finished_count_ == size() || failed_) {
    done_cv_.notify_all();
  } else {
    dispatch_chain(lock, nullptr);
  }
  tls_context = {};
}

void Engine::run(const std::function<void(int)>& body) {
  CAF2_REQUIRE(!running_, "Engine::run() may only be called once");
  running_ = true;

  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& participant : participants_) {
      heap_.push(Event{0.0, next_seq_++, participant->id, kNoSlot});
    }
  }
  for (auto& participant : participants_) {
    participant->thread =
        std::thread([this, id = participant->id, &body] {
          participant_main(id, body);
        });
  }

  {
    std::unique_lock<std::mutex> lock(mutex_);
    dispatch_chain(lock, nullptr);  // hand the token to participant 0
    done_cv_.wait(lock, [this] {
      return finished_count_ == size() || failed_;
    });
    if (failed_) {
      // Every live participant will observe failed_ at its next engine call
      // (or is already being notified) and unwind.
      done_cv_.wait(lock, [this] { return finished_count_ == size(); });
    }
  }

  for (auto& participant : participants_) {
    if (participant->thread.joinable()) {
      participant->thread.join();
    }
  }

  if (first_error_) {
    std::rethrow_exception(first_error_);
  }
  if (failed_) {
    throw FatalError(failure_reason_);
  }
}

}  // namespace caf2::sim
