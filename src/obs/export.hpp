#pragma once

/// \file export.hpp
/// Serializers for obs::Capture (DESIGN.md §4.9).
///
/// Two forms:
///  - Chrome trace-event JSON ("traceEvents" array of complete "X" spans),
///    which loads directly in Perfetto (https://ui.perfetto.dev) or
///    chrome://tracing — one track per image plus a network track;
///  - a compact deterministic text form used by tests to assert that two
///    runs (e.g. thread vs fiber backend) recorded byte-identical captures.
///    The text form deliberately excludes Capture::backend so the backends
///    can be compared with plain string equality.

#include <string>

#include "obs/obs.hpp"

namespace caf2::obs {

/// Render \p capture as a complete Chrome trace-event JSON document.
/// \p pid is the trace "process" id; Perfetto groups the image/network
/// tracks (threads) under it.
std::string to_chrome_trace(const Capture& capture, int pid = 0,
                            const std::string& process_name = "caf2");

/// Render only the trace-event array *elements* (no enclosing document) so
/// callers can merge several captures — e.g. bench variants — into one trace
/// as distinct pids. Returns "" for an empty capture; elements are
/// comma-separated with no trailing comma.
std::string chrome_trace_events(const Capture& capture, int pid,
                                const std::string& process_name);

/// Deterministic fixed-precision text dump of every track, metric, and drop
/// counter. Byte-identical across execution backends for the same run.
std::string to_text(const Capture& capture);

/// Write \p content to \p path; returns false (after printing to stderr) on
/// failure.
bool write_file(const std::string& path, const std::string& content);

}  // namespace caf2::obs
