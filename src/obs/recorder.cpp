#include "obs/obs.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <set>
#include <string>
#include <utility>

namespace caf2::obs {

const char* intern_label(const std::string& text) {
  // std::set is node-based, so element addresses are stable across later
  // insertions; the pool is process-global and intentionally never freed.
  static std::mutex mutex;
  static std::set<std::string>* pool = new std::set<std::string>();
  const std::lock_guard<std::mutex> lock(mutex);
  return pool->insert(text).first->c_str();
}

const char* to_string(SpanKind kind) {
  switch (kind) {
    case SpanKind::kCompute:
      return "compute";
    case SpanKind::kBlocked:
      return "blocked";
    case SpanKind::kHandler:
      return "handler";
    case SpanKind::kPut:
      return "put";
    case SpanKind::kGet:
      return "get";
    case SpanKind::kSpawn:
      return "spawn";
    case SpanKind::kEventWait:
      return "event_wait";
    case SpanKind::kEventNotify:
      return "event_notify";
    case SpanKind::kCofence:
      return "cofence";
    case SpanKind::kFinishBody:
      return "finish_body";
    case SpanKind::kFinishDetect:
      return "finish_detect";
    case SpanKind::kCollective:
      return "collective";
    case SpanKind::kStealIdle:
      return "steal_idle";
    case SpanKind::kFlight:
      return "flight";
    case SpanKind::kRetransmitDelay:
      return "retransmit_delay";
  }
  return "?";
}

const char* to_string(Blame blame) {
  switch (blame) {
    case Blame::kCompute:
      return "compute";
    case Blame::kNetwork:
      return "network";
    case Blame::kFinishWait:
      return "finish_wait";
    case Blame::kCofenceWait:
      return "cofence_wait";
    case Blame::kEventWait:
      return "event_wait";
    case Blame::kStealIdle:
      return "steal_idle";
    case Blame::kOther:
      return "other";
  }
  return "?";
}

const char* to_string(Counter counter) {
  switch (counter) {
    case Counter::kMessagesSent:
      return "messages_sent";
    case Counter::kMessagesDelivered:
      return "messages_delivered";
    case Counter::kMessagesRetransmitted:
      return "messages_retransmitted";
    case Counter::kHandlersRun:
      return "handlers_run";
    case Counter::kFinishScopes:
      return "finish_scopes";
    case Counter::kFinishRounds:
      return "finish_rounds";
    case Counter::kStealAttempts:
      return "steal_attempts";
    case Counter::kMailboxHighWater:
      return "mailbox_high_water";
    case Counter::kSpansDropped:
      return "spans_dropped";
    case Counter::kCount:
      break;
  }
  return "?";
}

const char* to_string(Hist hist) {
  switch (hist) {
    case Hist::kMessageLatency:
      return "message_latency_us";
    case Hist::kBlockedTime:
      return "blocked_time_us";
    case Hist::kHandlerTime:
      return "handler_time_us";
    case Hist::kCount:
      break;
  }
  return "?";
}

void Histogram::add(double us) {
  count += 1;
  sum_us += us;
  int bucket = 0;
  double edge = kBaseUs;
  while (bucket < kBuckets - 1 && us > edge) {
    edge *= 2.0;
    bucket += 1;
  }
  buckets[static_cast<std::size_t>(bucket)] += 1;
}

Recorder::Recorder(int images, ObsConfig config, int net_lanes)
    : config_(config),
      images_(static_cast<std::size_t>(images > 0 ? images : 0)),
      net_lanes_(static_cast<std::size_t>(net_lanes > 0 ? net_lanes : 0)) {
  CAF2_REQUIRE(images > 0, "obs::Recorder needs at least one image");
  CAF2_REQUIRE(net_lanes > 0, "obs::Recorder needs at least one net lane");
}

Recorder::PerImage& Recorder::at(int image) {
  CAF2_REQUIRE(image >= 0 && image < images(),
               "obs::Recorder: image rank out of range");
  return images_[static_cast<std::size_t>(image)];
}

const Recorder::PerImage& Recorder::at(int image) const {
  CAF2_REQUIRE(image >= 0 && image < images(),
               "obs::Recorder: image rank out of range");
  return images_[static_cast<std::size_t>(image)];
}

Recorder::NetLane& Recorder::lane_at(int lane) {
  CAF2_REQUIRE(lane >= 0 &&
                   static_cast<std::size_t>(lane) < net_lanes_.size(),
               "obs::Recorder: net lane out of range");
  return net_lanes_[static_cast<std::size_t>(lane)];
}

std::uint64_t Recorder::push_span(Track& track, std::uint64_t ordinal,
                                  std::uint64_t& next_local,
                                  std::size_t cap_bytes, Span span,
                                  Metrics* image_metrics) {
  span.id = compose_id(ordinal, next_local);
  if ((track.spans.size() + 1) * sizeof(Span) > cap_bytes) {
    track.dropped += 1;
    if (image_metrics != nullptr) {
      image_metrics->counters[static_cast<std::size_t>(
          Counter::kSpansDropped)] += 1;
    }
    return span.id;
  }
  track.spans.push_back(span);
  return span.id;
}

void Recorder::on_compute(int image, double begin, double end) {
  PerImage& state = at(image);
  Span span;
  span.begin = begin;
  span.end = end;
  span.image = image;
  span.kind = SpanKind::kCompute;
  span.blame = Blame::kCompute;
  push_span(state.track, static_cast<std::uint64_t>(image), state.next_local,
            config_.max_image_track_bytes, span, &state.metrics);
}

void Recorder::on_block_begin(int image, double at_us, const char* reason) {
  PerImage& state = at(image);
  state.blocked = true;
  state.block_begin = at_us;
  state.block_reason = reason;
  state.cause = 0;  // only deliveries *during* this block count as the cause
}

void Recorder::on_block_end(int image, double at_us) {
  PerImage& state = at(image);
  if (!state.blocked) {
    return;
  }
  state.blocked = false;
  Span span;
  span.begin = state.block_begin;
  span.end = at_us;
  span.parent = state.cause;
  span.image = image;
  span.kind = SpanKind::kBlocked;
  span.blame = state.blame_stack.empty() ? Blame::kOther
                                         : state.blame_stack.back();
  span.label = state.block_reason;
  state.cause = 0;
  push_span(state.track, static_cast<std::uint64_t>(image), state.next_local,
            config_.max_image_track_bytes, span, &state.metrics);
  state.metrics.hists[static_cast<std::size_t>(Hist::kBlockedTime)].add(
      at_us - span.begin);
}

void Recorder::push_blame(int image, Blame blame) {
  at(image).blame_stack.push_back(blame);
}

void Recorder::pop_blame(int image) {
  PerImage& state = at(image);
  CAF2_REQUIRE(!state.blame_stack.empty(),
               "obs::Recorder: unbalanced blame scope pop");
  state.blame_stack.pop_back();
}

bool Recorder::blame_empty(int image) const {
  return at(image).blame_stack.empty();
}

void Recorder::op_span(int image, SpanKind kind, double begin, double end,
                       std::uint64_t a, std::uint64_t b, int peer,
                       const char* label) {
  PerImage& state = at(image);
  Span span;
  span.begin = begin;
  span.end = end;
  span.a = a;
  span.b = b;
  span.image = image;
  span.peer = peer;
  span.kind = kind;
  span.blame = Blame::kCompute;
  span.label = label;
  push_span(state.track, static_cast<std::uint64_t>(image), state.next_local,
            config_.max_image_track_bytes, span, &state.metrics);
}

std::uint64_t Recorder::flight_span(int source, int dest, double begin,
                                    double end, std::uint64_t bytes,
                                    int lane) {
  NetLane& slot = lane_at(lane);
  Span span;
  span.begin = begin;
  span.end = end;
  span.a = bytes;
  span.image = source;
  span.peer = dest;
  span.kind = SpanKind::kFlight;
  span.blame = Blame::kNetwork;
  const std::uint64_t ordinal =
      static_cast<std::uint64_t>(images()) + static_cast<std::uint64_t>(lane);
  return push_span(slot.track, ordinal, slot.next_local,
                   config_.max_net_track_bytes, span, nullptr);
}

void Recorder::retransmit_span(int image, int peer, double begin, double end,
                               int lane) {
  NetLane& slot = lane_at(lane);
  Span span;
  span.begin = begin;
  span.end = end;
  span.image = image;
  span.peer = peer;
  span.kind = SpanKind::kRetransmitDelay;
  span.blame = Blame::kNetwork;
  const std::uint64_t ordinal =
      static_cast<std::uint64_t>(images()) + static_cast<std::uint64_t>(lane);
  push_span(slot.track, ordinal, slot.next_local, config_.max_net_track_bytes,
            span, nullptr);
}

void Recorder::note_cause(int image, std::uint64_t span_id) {
  PerImage& state = at(image);
  if (state.blocked) {
    state.cause = span_id;
  }
}

void Recorder::add(int image, Counter c, std::uint64_t v) {
  at(image).metrics.counters[static_cast<std::size_t>(c)] += v;
}

void Recorder::maxed(int image, Counter c, std::uint64_t v) {
  std::uint64_t& slot = at(image).metrics.counters[static_cast<std::size_t>(c)];
  slot = std::max(slot, v);
}

void Recorder::observe(int image, Hist h, double us) {
  at(image).metrics.hists[static_cast<std::size_t>(h)].add(us);
}

Track Recorder::merged_net_track() const {
  if (net_lanes_.size() == 1) {
    return net_lanes_[0].track;
  }
  Track merged;
  std::size_t total = 0;
  for (const NetLane& lane : net_lanes_) {
    total += lane.track.spans.size();
    merged.dropped += lane.track.dropped;
  }
  merged.spans.reserve(total);
  for (const NetLane& lane : net_lanes_) {
    merged.spans.insert(merged.spans.end(), lane.track.spans.begin(),
                        lane.track.spans.end());
  }
  // (begin, end, image, peer, id) is a total order — ids are unique across
  // lanes — so the merged track is identical for any lane fill order: the
  // capture stays deterministic for a fixed shard count and across backends.
  std::sort(merged.spans.begin(), merged.spans.end(),
            [](const Span& a, const Span& b) {
              if (a.begin != b.begin) {
                return a.begin < b.begin;
              }
              if (a.end != b.end) {
                return a.end < b.end;
              }
              if (a.image != b.image) {
                return a.image < b.image;
              }
              if (a.peer != b.peer) {
                return a.peer < b.peer;
              }
              return a.id < b.id;
            });
  return merged;
}

Capture Recorder::snapshot(double end_us, ExecBackend backend) const {
  Capture capture;
  capture.config = config_;
  capture.images = images();
  capture.end_us = end_us;
  capture.backend = backend;
  capture.tracks.reserve(images_.size() + 1);
  capture.metrics.reserve(images_.size());
  for (const PerImage& state : images_) {
    capture.tracks.push_back(state.track);
    capture.metrics.push_back(state.metrics);
  }
  capture.tracks.push_back(merged_net_track());
  return capture;
}

Capture Recorder::take(double end_us, ExecBackend backend) {
  Capture capture;
  capture.config = config_;
  capture.images = images();
  capture.end_us = end_us;
  capture.backend = backend;
  capture.tracks.reserve(images_.size() + 1);
  capture.metrics.reserve(images_.size());
  for (PerImage& state : images_) {
    capture.tracks.push_back(std::move(state.track));
    capture.metrics.push_back(state.metrics);
    state.track = Track{};
    state.metrics = Metrics{};
  }
  if (net_lanes_.size() == 1) {
    capture.tracks.push_back(std::move(net_lanes_[0].track));
  } else {
    capture.tracks.push_back(merged_net_track());
  }
  for (NetLane& lane : net_lanes_) {
    lane.track = Track{};
  }
  return capture;
}

}  // namespace caf2::obs
