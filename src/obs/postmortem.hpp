#pragma once

/// \file postmortem.hpp
/// Structured failure diagnosis (DESIGN.md §4.10).
///
/// Every Engine::fail path — deadlock, quiet-period watchdog, retry cap,
/// event budget, escaped exceptions — now produces an obs::Postmortem: a
/// typed snapshot of the stalled run (per-image wait stacks, last-N flight
/// recorder events, finish/retransmit counters, a wait-for graph with
/// SCC-based cycle detection, and a blame summary when the span recorder was
/// on). The same snapshot is available on demand via
/// rt::Runtime::dump_postmortem() / caf2::dump_postmortem().
///
/// Three renderers:
///   to_text()            deterministic fixed-precision text — byte-identical
///                        across thread/fiber backends and repeated runs
///   to_json()            machine-readable mirror of the struct
///   wait_graph_to_dot()  Graphviz digraph of the wait-for graph, cycle
///                        members highlighted
///
/// The text rendering is also the failure message: StallError::what()
/// carries it, so an uncaught hang still prints the full causal story.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/blame.hpp"
#include "obs/flight_recorder.hpp"
#include "support/config.hpp"
#include "support/error.hpp"

namespace caf2::obs {

/// Which Engine::fail path produced the postmortem.
enum class FailKind : std::uint8_t {
  kOnDemand,       ///< dump_postmortem() on a healthy run
  kDeadlock,       ///< empty event heap, every unfinished image blocked
  kQuietWatchdog,  ///< no event due within the configured quiet period
  kRetryCap,       ///< reliable delivery exhausted its retransmit attempts
  kEventBudget,    ///< EngineOptions::max_events exceeded
  kCallbackError,  ///< an engine callback (timer, handler) threw
  kImageError,     ///< an image body raised an exception
  kExplicitFail,   ///< Engine::fail() called without a more specific kind
};

const char* to_string(FailKind kind);

/// What the wait-for graph analysis concluded.
enum class StallClass : std::uint8_t {
  kNotStalled,         ///< on-demand snapshot / error unrelated to waiting
  kDeadlockCycle,      ///< a wait cycle exists: true deadlock
  kDeadlockNoCycle,    ///< heap empty + all blocked, but no cycle (e.g. a
                       ///< wait nothing will ever satisfy)
  kStallNoCycle,       ///< quiet period with traffic still possible — slow
                       ///< network or starvation, not deadlock
  kLivelockSuspected,  ///< progress machinery still firing (retries, budget
                       ///< burn) without the run completing
};

const char* to_string(StallClass c);

/// Classify from the failure path plus whether the graph found a cycle.
StallClass classify(FailKind kind, bool found_cycle);

/// What a blocked image is waiting *on*.
enum class ResourceKind : std::uint8_t {
  kNone,          ///< untyped wait (raw reason string only)
  kEvent,         ///< rt::Event count (a = event id, owner = home image)
  kOpCompletion,  ///< local data/op completion of outstanding async ops
  kFinish,        ///< finish-scope termination (a = team id, b = seq)
  kCollective,    ///< team collective completion (a = team id, b = seq)
  kSplit,         ///< team split computation (a = parent team id, b = seq)
  kExitGate,      ///< end-of-run exit rendezvous
  kSteal,         ///< work-steal reply from a victim (owner = victim)
};

const char* to_string(ResourceKind kind);

/// Identity of a waited-on resource. Two frames with equal ResourceIds wait
/// on the same thing (used to build wait-for graph nodes).
struct ResourceId {
  ResourceKind kind = ResourceKind::kNone;
  std::int32_t owner = -1;  ///< home image rank, -1 = not image-homed
  std::uint64_t a = 0;      ///< kind-specific (see ResourceKind)
  std::uint64_t b = 0;      ///< kind-specific (see ResourceKind)

  bool operator==(const ResourceId&) const = default;
};

std::string to_string(const ResourceId& id);

/// One level of an image's wait stack (waits nest: e.g. a finish detection
/// blocks inside an allreduce which blocks inside an event wait).
struct WaitFrame {
  ResourceId resource{};
  const char* reason = "";  ///< literal passed to Image::wait_for
  double since_us = 0.0;    ///< virtual time the frame was entered
};

/// Snapshot of one finish scope's state on one image.
struct PmFinishScope {
  int team = 0;
  std::uint32_t seq = 0;
  bool terminated = false;
  bool odd_epoch = false;  ///< present epoch parity (paper's epoch flip)
  int rounds = 0;          ///< detection allreduce waves so far
  std::uint64_t even_sent = 0, even_delivered = 0, even_received = 0,
                even_completed = 0;
  std::uint64_t odd_sent = 0, odd_delivered = 0, odd_received = 0,
                odd_completed = 0;
};

/// Snapshot of one image.
struct PmImage {
  int rank = -1;
  const char* state = "";      ///< "runnable" | "blocked" | "finished" | ...
  std::string block_reason;    ///< engine block reason when state=="blocked"
  std::vector<WaitFrame> waits;  ///< wait stack, outermost first
  std::uint64_t mailbox_pending = 0;
  std::uint64_t cofence_scopes = 0;
  std::uint64_t outstanding_ops = 0;
  std::vector<PmFinishScope> finish;  ///< sorted by (team, seq)
  std::vector<FrEvent> recent;        ///< flight recorder tail, oldest first
  std::uint64_t recorded_total = 0;   ///< events ever recorded for this image
};

/// Snapshot of one in-flight reliable message.
struct PmFlight {
  int source = -1;
  int dest = -1;
  std::uint64_t seq = 0;      ///< per-link sequence number
  std::uint64_t ordinal = 0;  ///< global send ordinal
  int attempts = 0;
  int max_attempts = 0;
  int handler = -1;
  std::uint64_t bytes = 0;
  double first_sent_us = 0.0;
  double rto_us = 0.0;
};

/// Snapshot of the network layer.
struct PmNetwork {
  bool present = false;  ///< false for raw-Engine postmortems (no runtime)
  bool reliable = false;
  std::size_t inflight_total = 0;
  std::vector<PmFlight> inflight;  ///< first kMaxListedFlights of them
  FaultStats faults{};
};

inline constexpr std::size_t kMaxListedFlights = 16;

/// Bipartite wait-for graph: image → resource edges from wait stacks,
/// resource → image edges from satisfier analysis (which images could still
/// make the resource come true).
struct WaitGraph {
  struct Edge {
    int waiter = -1;
    ResourceId resource{};
    const char* reason = "";
    double since_us = 0.0;
  };

  struct Satisfiers {
    ResourceId resource{};
    std::vector<int> images;  ///< sorted ranks that could satisfy it
    /// True when in-flight engine events (messages, timers) could satisfy
    /// the resource without any blocked image acting — such resources are
    /// excluded from cycle detection (a "cycle" through them is just a
    /// slow network, not deadlock).
    bool external = false;
  };

  struct Cycle {
    std::vector<int> images;           ///< sorted ranks in the SCC
    std::vector<ResourceId> resources;  ///< resources in the SCC
  };

  std::vector<Edge> edges;
  std::vector<Satisfiers> resources;
  std::vector<Cycle> cycles;  ///< filled by find_cycles()
};

/// Tarjan SCC over the bipartite graph; every SCC containing at least one
/// image and one resource becomes a Cycle. Deterministic: cycles and their
/// members come out sorted.
void find_cycles(WaitGraph& graph, int num_images);

/// The complete structured postmortem.
struct Postmortem {
  FailKind kind = FailKind::kOnDemand;
  StallClass classification = StallClass::kNotStalled;
  std::string headline;  ///< e.g. "deadlock: no pending events and ..."
  std::string label;     ///< EngineOptions::label
  double now_us = 0.0;
  std::uint64_t events = 0;         ///< engine events dispatched
  std::uint64_t pending_calls = 0;  ///< engine call events still in flight
  int images = 0;
  std::vector<PmImage> per_image;
  WaitGraph graph;
  PmNetwork net;
  /// Critical-path blame summary; non-null only when the span recorder
  /// (RuntimeOptions::obs.enabled) was on.
  std::shared_ptr<const BlameReport> blame;
  /// Non-empty when a postmortem/diagnostics callback itself threw while
  /// the engine lock was held; the exception is swallowed here instead of
  /// deadlocking the failing run.
  std::string collector_error;
  /// Legacy free-form diagnostics (Engine::set_diagnostics), if any.
  std::string extra;
};

/// Thrown out of Engine::run() on failure. Derives FatalError so existing
/// catch sites keep working; carries the structured postmortem.
class StallError : public FatalError {
 public:
  StallError(const std::string& what,
             std::shared_ptr<const Postmortem> postmortem)
      : FatalError(what), postmortem_(std::move(postmortem)) {}

  /// May be null when the failure predates postmortem collection.
  const std::shared_ptr<const Postmortem>& postmortem() const {
    return postmortem_;
  }

 private:
  std::shared_ptr<const Postmortem> postmortem_;
};

/// Deterministic text rendering (fixed-precision doubles, sorted sections).
std::string to_text(const Postmortem& pm);

/// The per-image runtime state + network sections of to_text() only —
/// the compat body of rt::Runtime::watchdog_report().
std::string runtime_sections_text(const Postmortem& pm);

/// The network section alone — the body of net::Network::describe_state().
std::string network_section_text(const PmNetwork& net);

/// Machine-readable mirror of the whole struct.
std::string to_json(const Postmortem& pm);

/// Graphviz digraph of the wait-for graph (images as boxes, resources as
/// ellipses, cycle members in red).
std::string wait_graph_to_dot(const Postmortem& pm);

}  // namespace caf2::obs
