#include "obs/postmortem.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <tuple>

#include "support/bench_io.hpp"

namespace caf2::obs {

namespace {

/// printf-append with a stack buffer; identical idiom to export.cpp so all
/// renderers produce the same fixed-precision (and thus byte-deterministic)
/// number formatting.
void appendf(std::string& out, const char* fmt, ...) {
  char stack[512];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(stack, sizeof stack, fmt, args);
  va_end(args);
  if (n < 0) {
    return;
  }
  if (static_cast<std::size_t>(n) < sizeof stack) {
    out.append(stack, static_cast<std::size_t>(n));
    return;
  }
  std::string big(static_cast<std::size_t>(n) + 1, '\0');
  va_start(args, fmt);
  std::vsnprintf(big.data(), big.size(), fmt, args);
  va_end(args);
  big.resize(static_cast<std::size_t>(n));
  out += big;
}

bool resource_less(const ResourceId& x, const ResourceId& y) {
  return std::tie(x.kind, x.owner, x.a, x.b) <
         std::tie(y.kind, y.owner, y.a, y.b);
}

std::string dot_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    out += c;
  }
  return out;
}

}  // namespace

const char* to_string(FailKind kind) {
  switch (kind) {
    case FailKind::kOnDemand:
      return "on-demand";
    case FailKind::kDeadlock:
      return "deadlock";
    case FailKind::kQuietWatchdog:
      return "quiet-watchdog";
    case FailKind::kRetryCap:
      return "retry-cap";
    case FailKind::kEventBudget:
      return "event-budget";
    case FailKind::kCallbackError:
      return "callback-error";
    case FailKind::kImageError:
      return "image-error";
    case FailKind::kExplicitFail:
      return "explicit-fail";
  }
  return "?";
}

const char* to_string(StallClass c) {
  switch (c) {
    case StallClass::kNotStalled:
      return "not-stalled";
    case StallClass::kDeadlockCycle:
      return "deadlock-cycle";
    case StallClass::kDeadlockNoCycle:
      return "deadlock-no-cycle";
    case StallClass::kStallNoCycle:
      return "stall-no-cycle";
    case StallClass::kLivelockSuspected:
      return "livelock-suspected";
  }
  return "?";
}

StallClass classify(FailKind kind, bool found_cycle) {
  if (found_cycle) {
    return StallClass::kDeadlockCycle;
  }
  switch (kind) {
    case FailKind::kDeadlock:
      return StallClass::kDeadlockNoCycle;
    case FailKind::kQuietWatchdog:
      return StallClass::kStallNoCycle;
    case FailKind::kRetryCap:
    case FailKind::kEventBudget:
      return StallClass::kLivelockSuspected;
    default:
      return StallClass::kNotStalled;
  }
}

const char* to_string(ResourceKind kind) {
  switch (kind) {
    case ResourceKind::kNone:
      return "untyped";
    case ResourceKind::kEvent:
      return "event";
    case ResourceKind::kOpCompletion:
      return "op-completion";
    case ResourceKind::kFinish:
      return "finish";
    case ResourceKind::kCollective:
      return "collective";
    case ResourceKind::kSplit:
      return "team-split";
    case ResourceKind::kExitGate:
      return "exit-gate";
    case ResourceKind::kSteal:
      return "steal";
  }
  return "?";
}

std::string to_string(const ResourceId& id) {
  std::string out;
  switch (id.kind) {
    case ResourceKind::kNone:
      return "untyped-wait";
    case ResourceKind::kEvent:
      appendf(out, "event#%" PRIu64 "@img%d", id.a, id.owner);
      return out;
    case ResourceKind::kOpCompletion:
      appendf(out, "op-completion@img%d", id.owner);
      return out;
    case ResourceKind::kFinish:
      appendf(out, "finish(team %" PRIu64 ", seq %" PRIu64 ")", id.a, id.b);
      return out;
    case ResourceKind::kCollective:
      appendf(out, "collective(team %" PRIu64 ", seq %" PRIu64 ")", id.a,
              id.b);
      return out;
    case ResourceKind::kSplit:
      appendf(out, "team-split(team %" PRIu64 ", seq %" PRIu64 ")", id.a,
              id.b);
      return out;
    case ResourceKind::kExitGate:
      return "exit-gate";
    case ResourceKind::kSteal:
      appendf(out, "steal@img%d", id.owner);
      return out;
  }
  return "?";
}

void find_cycles(WaitGraph& graph, int num_images) {
  graph.cycles.clear();
  const int num_resources = static_cast<int>(graph.resources.size());
  const int n = num_images + num_resources;
  if (n == 0) {
    return;
  }

  auto resource_index = [&](const ResourceId& id) -> int {
    for (int r = 0; r < num_resources; ++r) {
      if (graph.resources[static_cast<std::size_t>(r)].resource == id) {
        return r;
      }
    }
    return -1;
  };

  std::vector<std::vector<int>> adj(static_cast<std::size_t>(n));
  for (const WaitGraph::Edge& edge : graph.edges) {
    if (edge.resource.kind == ResourceKind::kNone) {
      continue;
    }
    if (edge.waiter < 0 || edge.waiter >= num_images) {
      continue;
    }
    const int r = resource_index(edge.resource);
    if (r < 0) {
      continue;
    }
    adj[static_cast<std::size_t>(edge.waiter)].push_back(num_images + r);
  }
  for (int r = 0; r < num_resources; ++r) {
    const WaitGraph::Satisfiers& sat =
        graph.resources[static_cast<std::size_t>(r)];
    if (sat.external) {
      continue;  // satisfiable without any blocked image acting
    }
    for (int image : sat.images) {
      if (image >= 0 && image < num_images) {
        adj[static_cast<std::size_t>(num_images + r)].push_back(image);
      }
    }
  }

  // Iterative Tarjan SCC.
  std::vector<int> index(static_cast<std::size_t>(n), -1);
  std::vector<int> low(static_cast<std::size_t>(n), 0);
  std::vector<char> on_stack(static_cast<std::size_t>(n), 0);
  std::vector<int> stack;
  struct Frame {
    int v;
    std::size_t edge;
  };
  std::vector<Frame> dfs;
  int counter = 0;

  for (int root = 0; root < n; ++root) {
    if (index[static_cast<std::size_t>(root)] != -1) {
      continue;
    }
    dfs.push_back({root, 0});
    while (!dfs.empty()) {
      const int v = dfs.back().v;
      if (dfs.back().edge == 0) {
        index[static_cast<std::size_t>(v)] = counter;
        low[static_cast<std::size_t>(v)] = counter;
        ++counter;
        stack.push_back(v);
        on_stack[static_cast<std::size_t>(v)] = 1;
      }
      bool descended = false;
      while (dfs.back().edge < adj[static_cast<std::size_t>(v)].size()) {
        const int w =
            adj[static_cast<std::size_t>(v)][dfs.back().edge];
        ++dfs.back().edge;
        if (index[static_cast<std::size_t>(w)] == -1) {
          dfs.push_back({w, 0});
          descended = true;
          break;
        }
        if (on_stack[static_cast<std::size_t>(w)]) {
          low[static_cast<std::size_t>(v)] =
              std::min(low[static_cast<std::size_t>(v)],
                       index[static_cast<std::size_t>(w)]);
        }
      }
      if (descended) {
        continue;
      }
      if (low[static_cast<std::size_t>(v)] ==
          index[static_cast<std::size_t>(v)]) {
        std::vector<int> scc;
        for (;;) {
          const int w = stack.back();
          stack.pop_back();
          on_stack[static_cast<std::size_t>(w)] = 0;
          scc.push_back(w);
          if (w == v) {
            break;
          }
        }
        if (scc.size() >= 2) {
          WaitGraph::Cycle cycle;
          for (int w : scc) {
            if (w < num_images) {
              cycle.images.push_back(w);
            } else {
              cycle.resources.push_back(
                  graph.resources[static_cast<std::size_t>(w - num_images)]
                      .resource);
            }
          }
          if (!cycle.images.empty() && !cycle.resources.empty()) {
            std::sort(cycle.images.begin(), cycle.images.end());
            std::sort(cycle.resources.begin(), cycle.resources.end(),
                      resource_less);
            graph.cycles.push_back(std::move(cycle));
          }
        }
      }
      dfs.pop_back();
      if (!dfs.empty()) {
        low[static_cast<std::size_t>(dfs.back().v)] =
            std::min(low[static_cast<std::size_t>(dfs.back().v)],
                     low[static_cast<std::size_t>(v)]);
      }
    }
  }
  std::sort(graph.cycles.begin(), graph.cycles.end(),
            [](const WaitGraph::Cycle& x, const WaitGraph::Cycle& y) {
              return x.images < y.images;
            });
}

std::string network_section_text(const PmNetwork& net) {
  std::string out = "network: reliable delivery ";
  out += net.reliable ? "on" : "off";
  if (!net.reliable) {
    out += "\n";
    return out;
  }
  appendf(out, ", %zu in-flight message%s\n", net.inflight_total,
          net.inflight_total == 1 ? "" : "s");
  for (const PmFlight& f : net.inflight) {
    appendf(out,
            "  flight %d->%d seq %" PRIu64 " attempt %d/%d handler %d %" PRIu64
            " B first-sent t=%.6f us rto %.6f us\n",
            f.source, f.dest, f.seq, f.attempts, f.max_attempts, f.handler,
            f.bytes, f.first_sent_us, f.rto_us);
  }
  if (net.inflight_total > net.inflight.size()) {
    appendf(out, "  ... %zu more\n", net.inflight_total - net.inflight.size());
  }
  appendf(out,
          "fault stats: drops=%" PRIu64 " dups=%" PRIu64 " delays=%" PRIu64
          " ack_drops=%" PRIu64 " retransmits=%" PRIu64
          " dups_suppressed=%" PRIu64 " scripted=%" PRIu64 "\n",
          net.faults.deliveries_dropped, net.faults.deliveries_duplicated,
          net.faults.deliveries_delayed, net.faults.acks_dropped,
          net.faults.retransmits, net.faults.duplicates_suppressed,
          net.faults.scripted_applied);
  return out;
}

std::string runtime_sections_text(const Postmortem& pm) {
  std::string out;
  for (const PmImage& img : pm.per_image) {
    appendf(out,
            "image %d: mailbox pending=%" PRIu64 " cofence scopes=%" PRIu64
            " outstanding implicit ops=%" PRIu64 "\n",
            img.rank, img.mailbox_pending, img.cofence_scopes,
            img.outstanding_ops);
    for (const PmFinishScope& f : img.finish) {
      appendf(out,
              "  finish (team %d, seq %u)%s%s rounds=%d even{sent=%" PRIu64
              ", delivered=%" PRIu64 ", received=%" PRIu64
              ", completed=%" PRIu64 "} odd{sent=%" PRIu64
              ", delivered=%" PRIu64 ", received=%" PRIu64
              ", completed=%" PRIu64 "}\n",
              f.team, f.seq, f.terminated ? " terminated" : "",
              f.odd_epoch ? " odd-epoch" : " even-epoch", f.rounds,
              f.even_sent, f.even_delivered, f.even_received,
              f.even_completed, f.odd_sent, f.odd_delivered, f.odd_received,
              f.odd_completed);
    }
    if (img.recorded_total > 0) {
      appendf(out,
              "  recent flight-recorder events (%zu of %" PRIu64
              " recorded):\n",
              img.recent.size(), img.recorded_total);
      for (const FrEvent& e : img.recent) {
        appendf(out, "    t=%.6f us %s", e.t, to_string(e.kind));
        if (e.peer >= 0) {
          appendf(out, " peer=%d", e.peer);
        }
        if (e.a != 0) {
          appendf(out, " a=%" PRIu64, e.a);
        }
        if (e.b != 0) {
          appendf(out, " b=%" PRIu64, e.b);
        }
        if (e.label != nullptr) {
          appendf(out, " [%s]", e.label);
        }
        out += "\n";
      }
    }
  }
  if (pm.net.present) {
    out += network_section_text(pm.net);
  }
  return out;
}

std::string to_text(const Postmortem& pm) {
  std::string out;
  appendf(out, "%s at t=%.6f us after %" PRIu64 " events\n",
          pm.headline.c_str(), pm.now_us, pm.events);
  appendf(out,
          "engine: label=%s images=%d pending-call-events=%" PRIu64 "\n",
          pm.label.c_str(), pm.images, pm.pending_calls);
  appendf(out, "classification: %s (fail path: %s)\n",
          to_string(pm.classification), to_string(pm.kind));
  out += "participants:\n";
  for (const PmImage& img : pm.per_image) {
    if (img.block_reason.empty()) {
      appendf(out, "  p%d: %s\n", img.rank, img.state);
    } else {
      appendf(out, "  p%d: %s (%s)\n", img.rank, img.state,
              img.block_reason.c_str());
    }
  }
  appendf(out, "wait-for graph: %zu edges, %zu resources\n",
          pm.graph.edges.size(), pm.graph.resources.size());
  for (const WaitGraph::Edge& e : pm.graph.edges) {
    appendf(out, "  image %d waits on %s [%s] since t=%.6f us\n", e.waiter,
            to_string(e.resource).c_str(), e.reason, e.since_us);
  }
  for (const WaitGraph::Satisfiers& s : pm.graph.resources) {
    if (s.external) {
      appendf(out, "  %s satisfiable externally (in-flight events)\n",
              to_string(s.resource).c_str());
    } else if (s.images.empty()) {
      appendf(out, "  %s satisfiable by no image\n",
              to_string(s.resource).c_str());
    } else {
      appendf(out, "  %s satisfiable by images {", to_string(s.resource).c_str());
      for (std::size_t i = 0; i < s.images.size(); ++i) {
        appendf(out, "%s%d", i == 0 ? "" : ", ", s.images[i]);
      }
      out += "}\n";
    }
  }
  appendf(out, "cycles detected: %zu\n", pm.graph.cycles.size());
  for (std::size_t c = 0; c < pm.graph.cycles.size(); ++c) {
    const WaitGraph::Cycle& cycle = pm.graph.cycles[c];
    appendf(out, "  cycle %zu: images {", c);
    for (std::size_t i = 0; i < cycle.images.size(); ++i) {
      appendf(out, "%s%d", i == 0 ? "" : ", ", cycle.images[i]);
    }
    out += "} resources {";
    for (std::size_t i = 0; i < cycle.resources.size(); ++i) {
      appendf(out, "%s%s", i == 0 ? "" : ", ",
              to_string(cycle.resources[i]).c_str());
    }
    out += "}\n";
  }
  out += runtime_sections_text(pm);
  if (!pm.collector_error.empty()) {
    appendf(out, "collector error (swallowed): %s\n",
            pm.collector_error.c_str());
  }
  if (!pm.extra.empty()) {
    out += pm.extra;
    if (out.back() != '\n') {
      out += '\n';
    }
  }
  if (pm.blame != nullptr) {
    out += "blame summary:\n";
    out += to_text(*pm.blame);
  }
  return out;
}

std::string to_json(const Postmortem& pm) {
  std::string out = "{";
  appendf(out, "\"kind\": \"%s\", ", to_string(pm.kind));
  appendf(out, "\"classification\": \"%s\", ",
          to_string(pm.classification));
  appendf(out, "\"headline\": \"%s\", ", json_escape(pm.headline).c_str());
  appendf(out, "\"label\": \"%s\", ", json_escape(pm.label).c_str());
  appendf(out, "\"now_us\": %.6f, ", pm.now_us);
  appendf(out, "\"events\": %" PRIu64 ", ", pm.events);
  appendf(out, "\"pending_calls\": %" PRIu64 ", ", pm.pending_calls);
  appendf(out, "\"images\": %d, ", pm.images);
  out += "\"per_image\": [";
  for (std::size_t i = 0; i < pm.per_image.size(); ++i) {
    const PmImage& img = pm.per_image[i];
    if (i != 0) {
      out += ", ";
    }
    out += "{";
    appendf(out, "\"rank\": %d, ", img.rank);
    appendf(out, "\"state\": \"%s\", ", img.state);
    appendf(out, "\"block_reason\": \"%s\", ",
            json_escape(img.block_reason).c_str());
    appendf(out, "\"mailbox_pending\": %" PRIu64 ", ", img.mailbox_pending);
    appendf(out, "\"cofence_scopes\": %" PRIu64 ", ", img.cofence_scopes);
    appendf(out, "\"outstanding_ops\": %" PRIu64 ", ", img.outstanding_ops);
    out += "\"waits\": [";
    for (std::size_t w = 0; w < img.waits.size(); ++w) {
      const WaitFrame& frame = img.waits[w];
      if (w != 0) {
        out += ", ";
      }
      appendf(out,
              "{\"resource\": \"%s\", \"reason\": \"%s\", "
              "\"since_us\": %.6f}",
              json_escape(to_string(frame.resource)).c_str(),
              json_escape(frame.reason).c_str(), frame.since_us);
    }
    out += "], \"finish\": [";
    for (std::size_t f = 0; f < img.finish.size(); ++f) {
      const PmFinishScope& fs = img.finish[f];
      if (f != 0) {
        out += ", ";
      }
      appendf(out,
              "{\"team\": %d, \"seq\": %u, \"terminated\": %s, "
              "\"odd_epoch\": %s, \"rounds\": %d, "
              "\"even\": {\"sent\": %" PRIu64 ", \"delivered\": %" PRIu64
              ", \"received\": %" PRIu64 ", \"completed\": %" PRIu64 "}, "
              "\"odd\": {\"sent\": %" PRIu64 ", \"delivered\": %" PRIu64
              ", \"received\": %" PRIu64 ", \"completed\": %" PRIu64 "}}",
              fs.team, fs.seq, fs.terminated ? "true" : "false",
              fs.odd_epoch ? "true" : "false", fs.rounds, fs.even_sent,
              fs.even_delivered, fs.even_received, fs.even_completed,
              fs.odd_sent, fs.odd_delivered, fs.odd_received,
              fs.odd_completed);
    }
    out += "], \"recent\": [";
    for (std::size_t e = 0; e < img.recent.size(); ++e) {
      const FrEvent& ev = img.recent[e];
      if (e != 0) {
        out += ", ";
      }
      appendf(out,
              "{\"t\": %.6f, \"kind\": \"%s\", \"peer\": %d, "
              "\"a\": %" PRIu64 ", \"b\": %" PRIu64,
              ev.t, to_string(ev.kind), ev.peer, ev.a, ev.b);
      if (ev.label != nullptr) {
        appendf(out, ", \"label\": \"%s\"", json_escape(ev.label).c_str());
      }
      out += "}";
    }
    appendf(out, "], \"recorded_total\": %" PRIu64 "}", img.recorded_total);
  }
  out += "], \"graph\": {\"edges\": [";
  for (std::size_t e = 0; e < pm.graph.edges.size(); ++e) {
    const WaitGraph::Edge& edge = pm.graph.edges[e];
    if (e != 0) {
      out += ", ";
    }
    appendf(out,
            "{\"waiter\": %d, \"resource\": \"%s\", \"reason\": \"%s\", "
            "\"since_us\": %.6f}",
            edge.waiter, json_escape(to_string(edge.resource)).c_str(),
            json_escape(edge.reason).c_str(), edge.since_us);
  }
  out += "], \"resources\": [";
  for (std::size_t r = 0; r < pm.graph.resources.size(); ++r) {
    const WaitGraph::Satisfiers& s = pm.graph.resources[r];
    if (r != 0) {
      out += ", ";
    }
    appendf(out, "{\"resource\": \"%s\", \"external\": %s, \"images\": [",
            json_escape(to_string(s.resource)).c_str(),
            s.external ? "true" : "false");
    for (std::size_t i = 0; i < s.images.size(); ++i) {
      appendf(out, "%s%d", i == 0 ? "" : ", ", s.images[i]);
    }
    out += "]}";
  }
  out += "], \"cycles\": [";
  for (std::size_t c = 0; c < pm.graph.cycles.size(); ++c) {
    const WaitGraph::Cycle& cycle = pm.graph.cycles[c];
    if (c != 0) {
      out += ", ";
    }
    out += "{\"images\": [";
    for (std::size_t i = 0; i < cycle.images.size(); ++i) {
      appendf(out, "%s%d", i == 0 ? "" : ", ", cycle.images[i]);
    }
    out += "], \"resources\": [";
    for (std::size_t i = 0; i < cycle.resources.size(); ++i) {
      appendf(out, "%s\"%s\"", i == 0 ? "" : ", ",
              json_escape(to_string(cycle.resources[i])).c_str());
    }
    out += "]}";
  }
  out += "]}, \"net\": {";
  appendf(out, "\"present\": %s, \"reliable\": %s, \"inflight_total\": %zu, ",
          pm.net.present ? "true" : "false",
          pm.net.reliable ? "true" : "false", pm.net.inflight_total);
  out += "\"inflight\": [";
  for (std::size_t f = 0; f < pm.net.inflight.size(); ++f) {
    const PmFlight& fl = pm.net.inflight[f];
    if (f != 0) {
      out += ", ";
    }
    appendf(out,
            "{\"source\": %d, \"dest\": %d, \"seq\": %" PRIu64
            ", \"ordinal\": %" PRIu64 ", \"attempts\": %d, "
            "\"max_attempts\": %d, \"handler\": %d, \"bytes\": %" PRIu64
            ", \"first_sent_us\": %.6f, \"rto_us\": %.6f}",
            fl.source, fl.dest, fl.seq, fl.ordinal, fl.attempts,
            fl.max_attempts, fl.handler, fl.bytes, fl.first_sent_us,
            fl.rto_us);
  }
  appendf(out,
          "], \"faults\": {\"drops\": %" PRIu64 ", \"dups\": %" PRIu64
          ", \"delays\": %" PRIu64 ", \"ack_drops\": %" PRIu64
          ", \"retransmits\": %" PRIu64 ", \"dups_suppressed\": %" PRIu64
          ", \"scripted\": %" PRIu64 "}}, ",
          pm.net.faults.deliveries_dropped,
          pm.net.faults.deliveries_duplicated,
          pm.net.faults.deliveries_delayed, pm.net.faults.acks_dropped,
          pm.net.faults.retransmits, pm.net.faults.duplicates_suppressed,
          pm.net.faults.scripted_applied);
  appendf(out, "\"collector_error\": \"%s\", ",
          json_escape(pm.collector_error).c_str());
  appendf(out, "\"extra\": \"%s\", ", json_escape(pm.extra).c_str());
  if (pm.blame != nullptr) {
    appendf(out,
            "\"blame\": {\"critical_path_us\": %.6f, "
            "\"critical_path_hops\": %" PRIu64
            ", \"critical_path_image\": %d, \"finish_rounds_max\": %" PRIu64
            ", \"retransmit_us\": %.6f}",
            pm.blame->critical_path_us, pm.blame->critical_path_hops,
            pm.blame->critical_path_image, pm.blame->finish_rounds_max,
            pm.blame->retransmit_us);
  } else {
    out += "\"blame\": null";
  }
  out += "}";
  return out;
}

std::string wait_graph_to_dot(const Postmortem& pm) {
  // Cycle membership, for highlighting.
  std::vector<char> image_in_cycle(
      static_cast<std::size_t>(pm.images < 0 ? 0 : pm.images), 0);
  auto resource_in_cycle = [&](const ResourceId& id) {
    for (const WaitGraph::Cycle& cycle : pm.graph.cycles) {
      for (const ResourceId& r : cycle.resources) {
        if (r == id) {
          return true;
        }
      }
    }
    return false;
  };
  for (const WaitGraph::Cycle& cycle : pm.graph.cycles) {
    for (int image : cycle.images) {
      if (image >= 0 &&
          static_cast<std::size_t>(image) < image_in_cycle.size()) {
        image_in_cycle[static_cast<std::size_t>(image)] = 1;
      }
    }
  }

  // Only images that participate in the graph get nodes.
  std::vector<int> images;
  for (const WaitGraph::Edge& e : pm.graph.edges) {
    images.push_back(e.waiter);
  }
  for (const WaitGraph::Satisfiers& s : pm.graph.resources) {
    images.insert(images.end(), s.images.begin(), s.images.end());
  }
  std::sort(images.begin(), images.end());
  images.erase(std::unique(images.begin(), images.end()), images.end());

  std::string out = "digraph waitfor {\n  rankdir=LR;\n";
  for (int image : images) {
    std::string label;
    appendf(label, "image %d", image);
    if (image >= 0 && static_cast<std::size_t>(image) < pm.per_image.size()) {
      const PmImage& img = pm.per_image[static_cast<std::size_t>(image)];
      if (!img.block_reason.empty()) {
        label += "\\n";
        label += dot_escape(img.block_reason);
      }
    }
    const bool hot = image >= 0 &&
                     static_cast<std::size_t>(image) < image_in_cycle.size() &&
                     image_in_cycle[static_cast<std::size_t>(image)] != 0;
    appendf(out, "  img%d [shape=box, label=\"%s\"%s];\n", image,
            label.c_str(), hot ? ", color=red, penwidth=2" : "");
  }
  for (std::size_t r = 0; r < pm.graph.resources.size(); ++r) {
    const WaitGraph::Satisfiers& s = pm.graph.resources[r];
    std::string label = dot_escape(to_string(s.resource));
    if (s.external) {
      label += "\\n(external)";
    }
    appendf(out, "  res%zu [shape=ellipse, label=\"%s\"%s];\n", r,
            label.c_str(),
            resource_in_cycle(s.resource) ? ", color=red, penwidth=2" : "");
  }
  auto resource_index = [&](const ResourceId& id) -> int {
    for (std::size_t r = 0; r < pm.graph.resources.size(); ++r) {
      if (pm.graph.resources[r].resource == id) {
        return static_cast<int>(r);
      }
    }
    return -1;
  };
  for (const WaitGraph::Edge& e : pm.graph.edges) {
    const int r = resource_index(e.resource);
    if (r < 0) {
      continue;
    }
    appendf(out, "  img%d -> res%d [label=\"%s\"];\n", e.waiter, r,
            dot_escape(e.reason).c_str());
  }
  for (std::size_t r = 0; r < pm.graph.resources.size(); ++r) {
    const WaitGraph::Satisfiers& s = pm.graph.resources[r];
    if (s.external) {
      continue;
    }
    for (int image : s.images) {
      appendf(out, "  res%zu -> img%d [style=dashed];\n", r, image);
    }
  }
  out += "}\n";
  return out;
}

}  // namespace caf2::obs
