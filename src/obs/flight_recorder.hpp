#pragma once

/// \file flight_recorder.hpp
/// Always-on structured flight recorder (DESIGN.md §4.10).
///
/// A FlightRecorder keeps one fixed-size ring of POD events per image. It is
/// the "black box" counterpart to the span Recorder (obs.hpp): where spans
/// are opt-in and sized for whole-run profiling, the flight recorder is on by
/// default and sized for the *last few moments before a failure* — exactly
/// what a postmortem needs.
///
/// Invariants the rest of the runtime relies on:
///   - record() never allocates: rings are sized once at construction and
///     overwrite oldest-first. Instrumented schedules stay bit-identical
///     because recording never touches the engine (no events scheduled, no
///     blocking, no RNG draws).
///   - No locking: exactly one simulated context runs at a time (the engine's
///     token discipline), and postmortem collection happens either under the
///     engine mutex (thread backend) or on the only running context (fiber
///     backend), so reads are ordered after all writes.
///   - `label` fields must point at string literals (or other storage that
///     outlives the recorder); the ring stores the pointer, not a copy.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace caf2::obs {

/// What happened. Meanings of the generic payload fields `a`/`b`/`peer`
/// depend on the kind:
///   kSend            peer=dest    a=bytes         b=handler id
///   kDeliver         peer=source  a=bytes         b=handler id
///   kAck             peer=dest    a=link seq      b=0
///   kRetransmit      peer=dest    a=link seq      b=attempt number
///   kFaultDrop/kFaultDuplicate/kFaultDelay/kFaultAckLoss
///                    peer=dest    a=link seq      b=0
///                    (kFaultAckLoss is stamped with the delivery time on
///                    every path; the cross-shard reliable path records it
///                    eagerly at send time — recording must not schedule
///                    events — so its ring insertion order can run locally
///                    ahead of the stamp)
///   kWaitBegin/kWaitEnd
///                    peer=resource owner          a,b=resource payload
///   kHandler         peer=source  a=handler id    b=0
///   kEpochOdd        peer=source  a=finish team   b=finish seq
///   kEpochFold       peer=-1      a=finish team   b=finish seq
enum class FrKind : std::uint8_t {
  kSend,
  kDeliver,
  kAck,
  kRetransmit,
  kFaultDrop,
  kFaultDuplicate,
  kFaultDelay,
  kFaultAckLoss,
  kWaitBegin,
  kWaitEnd,
  kHandler,
  kEpochOdd,
  kEpochFold,
};

const char* to_string(FrKind kind);

/// One recorded moment. POD; copied by value into postmortems.
struct FrEvent {
  double t = 0.0;             ///< virtual time (us)
  std::uint64_t a = 0;        ///< kind-specific payload (see FrKind)
  std::uint64_t b = 0;        ///< kind-specific payload (see FrKind)
  std::int32_t peer = -1;     ///< kind-specific image rank, -1 = none
  FrKind kind = FrKind::kSend;
  const char* label = nullptr;  ///< optional literal (e.g. wait reason)
};

/// Per-image fixed-capacity rings of FrEvents.
class FlightRecorder {
 public:
  /// \p entries_per_image is rounded up to a power of two (minimum 8) so the
  /// ring index is a mask, not a modulo.
  FlightRecorder(int num_images, std::size_t entries_per_image);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Append one event to \p image's ring, overwriting the oldest entry when
  /// full. Hot path: two stores and an increment.
  void record(int image, double t, FrKind kind, int peer = -1,
              std::uint64_t a = 0, std::uint64_t b = 0,
              const char* label = nullptr) {
    Ring& ring = rings_[static_cast<std::size_t>(image)];
    ring.events[ring.total & mask_] = FrEvent{t, a, b, peer, kind, label};
    ++ring.total;
  }

  /// The last min(max_n, recorded) events of \p image, oldest first.
  std::vector<FrEvent> recent(int image, std::size_t max_n) const;

  /// Total events ever recorded for \p image (>= what the ring retains).
  std::uint64_t total(int image) const {
    return rings_[static_cast<std::size_t>(image)].total;
  }

  std::size_t capacity() const { return mask_ + 1; }
  int num_images() const { return static_cast<int>(rings_.size()); }

 private:
  struct Ring {
    std::vector<FrEvent> events;  ///< sized to capacity() at construction
    std::uint64_t total = 0;      ///< monotone; ring holds the tail
  };

  std::vector<Ring> rings_;
  std::uint64_t mask_ = 0;
};

}  // namespace caf2::obs
