#include "obs/blame.hpp"

#include <algorithm>
#include <cstdio>
#include <unordered_map>

namespace caf2::obs {

double BlameBreakdown::total() const {
  double sum = 0.0;
  for (const double v : us) {
    sum += v;
  }
  return sum;
}

namespace {

/// Half-open interval of fault-induced extra delay on one image.
struct Interval {
  double begin = 0.0;
  double end = 0.0;
};

/// Merge overlapping/adjacent intervals in place; input need not be sorted.
void merge_intervals(std::vector<Interval>& intervals) {
  if (intervals.empty()) {
    return;
  }
  std::sort(intervals.begin(), intervals.end(),
            [](const Interval& a, const Interval& b) {
              return a.begin < b.begin;
            });
  std::size_t out = 0;
  for (std::size_t i = 1; i < intervals.size(); ++i) {
    if (intervals[i].begin <= intervals[out].end) {
      intervals[out].end = std::max(intervals[out].end, intervals[i].end);
    } else {
      out += 1;
      intervals[out] = intervals[i];
    }
  }
  intervals.resize(out + 1);
}

/// Total overlap of [begin, end) with the merged \p intervals.
double overlap_us(const std::vector<Interval>& intervals, double begin,
                  double end) {
  double sum = 0.0;
  for (const Interval& iv : intervals) {
    if (iv.begin >= end) {
      break;
    }
    sum += std::max(0.0, std::min(end, iv.end) - std::max(begin, iv.begin));
  }
  return sum;
}

/// One node of the critical-path DP: a timeline span (kCompute/kBlocked) or
/// a message flight, processed in global end-time order.
struct Node {
  double begin = 0.0;
  double end = 0.0;
  std::uint64_t parent = 0;  ///< flight span id (timeline spans only)
  std::uint64_t flight_id = 0;  ///< span id (flight nodes only)
  std::int32_t image = -1;      ///< owning image (flights: source image)
  bool is_flight = false;
};

/// Chain value reaching the end of a node.
struct Chain {
  double us = 0.0;
  std::uint64_t hops = 0;
};

}  // namespace

BlameReport analyze_blame(const Capture& capture) {
  BlameReport report;
  report.per_image.resize(static_cast<std::size_t>(capture.images));

  // Fault-induced delay intervals, keyed by the affected image.
  std::vector<std::vector<Interval>> delays(
      static_cast<std::size_t>(capture.images));
  for (const Span& span : capture.net_track().spans) {
    if (span.kind == SpanKind::kRetransmitDelay && span.image >= 0 &&
        span.image < capture.images && span.end > span.begin) {
      delays[static_cast<std::size_t>(span.image)].push_back(
          {span.begin, span.end});
    }
  }
  for (auto& intervals : delays) {
    merge_intervals(intervals);
  }

  // --- per-image attribution ------------------------------------------------
  for (int image = 0; image < capture.images; ++image) {
    BlameBreakdown& breakdown =
        report.per_image[static_cast<std::size_t>(image)];
    const auto& intervals = delays[static_cast<std::size_t>(image)];
    for (const Span& span : capture.image_track(image).spans) {
      const double dur = span.end - span.begin;
      switch (span.kind) {
        case SpanKind::kCompute:
          breakdown[Blame::kCompute] += dur;
          break;
        case SpanKind::kBlocked: {
          // Causes are only ever flight span ids, so an un-scoped wait that
          // a message delivery released was waiting on the wire.
          Blame bucket = span.blame;
          if (bucket == Blame::kOther && span.parent != 0) {
            bucket = Blame::kNetwork;
          }
          double charged = dur;
          if (!intervals.empty()) {
            const double delayed = overlap_us(intervals, span.begin, span.end);
            if (delayed > 0.0 && bucket != Blame::kNetwork) {
              breakdown[Blame::kNetwork] += delayed;
              report.retransmit_us += delayed;
              charged -= delayed;
            }
          }
          breakdown[bucket] += charged;
          break;
        }
        case SpanKind::kFinishDetect:
          report.finish_rounds_max =
              std::max(report.finish_rounds_max, span.a);
          break;
        default:
          break;  // op annotations overlay the timeline; don't double-count
      }
    }
  }
  for (const BlameBreakdown& breakdown : report.per_image) {
    for (std::size_t b = 0; b < kBlameBuckets; ++b) {
      report.total.us[b] += breakdown.us[b];
    }
  }

  // --- critical path --------------------------------------------------------
  // Nodes: every timeline span plus every flight, processed in end-time
  // order (flights first on ties: a delivery at t unblocks a wait ending at
  // the same t). Timeline spans chain from the previous span on their image
  // and from their parent flight; flights chain from the latest source-image
  // span ending at or before their initiation.
  std::vector<Node> nodes;
  for (int image = 0; image < capture.images; ++image) {
    for (const Span& span : capture.image_track(image).spans) {
      if (span.kind == SpanKind::kCompute || span.kind == SpanKind::kBlocked) {
        nodes.push_back({span.begin, span.end, span.parent, 0, image, false});
      }
    }
  }
  for (const Span& span : capture.net_track().spans) {
    if (span.kind == SpanKind::kFlight) {
      nodes.push_back({span.begin, span.end, 0, span.id, span.image, true});
    }
  }
  std::stable_sort(nodes.begin(), nodes.end(),
                   [](const Node& a, const Node& b) {
                     if (a.end != b.end) {
                       return a.end < b.end;
                     }
                     return a.is_flight && !b.is_flight;
                   });

  // Per-image prefix-max chains over processed timeline spans, for the
  // flight -> source-image link (binary search by end time).
  std::vector<std::vector<std::pair<double, Chain>>> prefix(
      static_cast<std::size_t>(capture.images));
  std::vector<Chain> last(static_cast<std::size_t>(capture.images));
  std::unordered_map<std::uint64_t, Chain> flight_chain;
  Chain best;
  int best_image = -1;

  for (const Node& node : nodes) {
    const double dur = node.end - node.begin;
    if (node.is_flight) {
      Chain chain{dur, 1};
      if (node.image >= 0 && node.image < capture.images) {
        const auto& pm = prefix[static_cast<std::size_t>(node.image)];
        // Latest source-image span ending at or before the initiation.
        auto it = std::upper_bound(
            pm.begin(), pm.end(), node.begin,
            [](double t, const auto& entry) { return t < entry.first; });
        if (it != pm.begin()) {
          const Chain& pred = std::prev(it)->second;
          chain.us += pred.us;
          chain.hops += pred.hops;
        }
      }
      flight_chain[node.flight_id] = chain;
      continue;
    }
    Chain pred = last[static_cast<std::size_t>(node.image)];
    if (node.parent != 0) {
      const auto it = flight_chain.find(node.parent);
      if (it != flight_chain.end() && it->second.us > pred.us) {
        pred = it->second;
      }
    }
    const Chain chain{pred.us + dur, pred.hops + 1};
    last[static_cast<std::size_t>(node.image)] = chain;
    auto& pm = prefix[static_cast<std::size_t>(node.image)];
    const Chain running =
        pm.empty() || chain.us > pm.back().second.us ? chain : pm.back().second;
    pm.emplace_back(node.end, running);
    if (chain.us > best.us) {
      best = chain;
      best_image = node.image;
    }
  }
  report.critical_path_us = best.us;
  report.critical_path_hops = best.hops;
  report.critical_path_image = best_image;
  return report;
}

std::string to_text(const BlameReport& report) {
  std::string out;
  char buf[256];
  const auto row = [&](const char* name, const BlameBreakdown& b) {
    std::snprintf(buf, sizeof buf,
                  "%-6s compute=%.3f network=%.3f finish=%.3f cofence=%.3f "
                  "event=%.3f steal=%.3f other=%.3f total=%.3f\n",
                  name, b[Blame::kCompute], b[Blame::kNetwork],
                  b[Blame::kFinishWait], b[Blame::kCofenceWait],
                  b[Blame::kEventWait], b[Blame::kStealIdle],
                  b[Blame::kOther], b.total());
    out += buf;
  };
  row("total", report.total);
  for (std::size_t i = 0; i < report.per_image.size(); ++i) {
    char name[32];
    std::snprintf(name, sizeof name, "img%zu", i);
    row(name, report.per_image[i]);
  }
  std::snprintf(buf, sizeof buf,
                "critical path %.3f us over %llu spans ending on image %d; "
                "finish rounds max %llu; retransmit reattributed %.3f us\n",
                report.critical_path_us,
                static_cast<unsigned long long>(report.critical_path_hops),
                report.critical_path_image,
                static_cast<unsigned long long>(report.finish_rounds_max),
                report.retransmit_us);
  out += buf;
  return out;
}

}  // namespace caf2::obs
