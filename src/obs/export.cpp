#include "obs/export.hpp"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "support/bench_io.hpp"

namespace caf2::obs {

namespace {

void appendf(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  if (n > 0) {
    out.append(buf, static_cast<std::size_t>(
                        n < static_cast<int>(sizeof buf)
                            ? n
                            : static_cast<int>(sizeof buf) - 1));
  }
}

/// Display name of one trace-event span.
std::string span_name(const Span& span) {
  std::string name = to_string(span.kind);
  if (span.label != nullptr) {
    name += ":";
    name += span.label;
  }
  return name;
}

void append_trace_span(std::string& out, const Span& span, int pid, int tid,
                       bool& first) {
  if (!first) {
    out += ",\n";
  }
  first = false;
  appendf(out, "{\"name\": \"%s\", \"ph\": \"X\", \"pid\": %d, \"tid\": %d, ",
          json_escape(span_name(span)).c_str(), pid, tid);
  appendf(out, "\"ts\": %.6f, \"dur\": %.6f, \"args\": {\"id\": %" PRIu64
               ", \"parent\": %" PRIu64,
          span.begin, span.end - span.begin, span.id, span.parent);
  if (span.kind == SpanKind::kBlocked) {
    appendf(out, ", \"blame\": \"%s\"", to_string(span.blame));
  }
  if (span.a != 0) {
    appendf(out, ", \"a\": %" PRIu64, span.a);
  }
  if (span.b != 0) {
    appendf(out, ", \"b\": %" PRIu64, span.b);
  }
  if (span.peer >= 0) {
    appendf(out, ", \"peer\": %d", span.peer);
  }
  out += "}}";
}

void append_metadata(std::string& out, int pid, int tid, const char* what,
                     const std::string& name, bool& first) {
  if (!first) {
    out += ",\n";
  }
  first = false;
  appendf(out, "{\"name\": \"%s\", \"ph\": \"M\", \"pid\": %d, ", what, pid);
  if (tid >= 0) {
    appendf(out, "\"tid\": %d, ", tid);
  }
  appendf(out, "\"args\": {\"name\": \"%s\"}}", json_escape(name).c_str());
}

}  // namespace

std::string chrome_trace_events(const Capture& capture, int pid,
                                const std::string& process_name) {
  std::string out;
  bool first = true;
  append_metadata(out, pid, -1, "process_name", process_name, first);
  for (int image = 0; image < capture.images; ++image) {
    char label[64];
    std::snprintf(label, sizeof label, "image %d", image);
    append_metadata(out, pid, image, "thread_name", label, first);
  }
  append_metadata(out, pid, capture.images, "thread_name", "network", first);
  for (int image = 0; image < capture.images; ++image) {
    for (const Span& span : capture.image_track(image).spans) {
      append_trace_span(out, span, pid, image, first);
    }
  }
  for (const Span& span : capture.net_track().spans) {
    append_trace_span(out, span, pid, capture.images, first);
  }
  return out;
}

std::string to_chrome_trace(const Capture& capture, int pid,
                            const std::string& process_name) {
  std::string out = "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [\n";
  out += chrome_trace_events(capture, pid, process_name);
  out += "\n]}\n";
  return out;
}

std::string to_text(const Capture& capture) {
  std::string out;
  appendf(out, "obs capture images=%d end=%.6f\n", capture.images,
          capture.end_us);
  for (std::size_t t = 0; t < capture.tracks.size(); ++t) {
    const Track& track = capture.tracks[t];
    if (t + 1 == capture.tracks.size()) {
      appendf(out, "track net spans=%zu dropped=%" PRIu64 "\n",
              track.spans.size(), track.dropped);
    } else {
      appendf(out, "track %zu spans=%zu dropped=%" PRIu64 "\n", t,
              track.spans.size(), track.dropped);
    }
    for (const Span& span : track.spans) {
      appendf(out, "  %" PRIu64 " %s [%.6f,%.6f)", span.id,
              to_string(span.kind), span.begin, span.end);
      if (span.kind == SpanKind::kBlocked) {
        appendf(out, " blame=%s", to_string(span.blame));
      }
      if (span.parent != 0) {
        appendf(out, " parent=%" PRIu64, span.parent);
      }
      if (span.a != 0) {
        appendf(out, " a=%" PRIu64, span.a);
      }
      if (span.b != 0) {
        appendf(out, " b=%" PRIu64, span.b);
      }
      if (span.peer >= 0) {
        appendf(out, " peer=%d", span.peer);
      }
      if (span.label != nullptr) {
        appendf(out, " label=%s", span.label);
      }
      out += "\n";
    }
  }
  for (int image = 0; image < capture.images; ++image) {
    const Metrics& m = capture.metrics[static_cast<std::size_t>(image)];
    appendf(out, "metrics %d", image);
    for (std::size_t c = 0; c < static_cast<std::size_t>(Counter::kCount);
         ++c) {
      if (m.counters[c] != 0) {
        appendf(out, " %s=%" PRIu64, to_string(static_cast<Counter>(c)),
                m.counters[c]);
      }
    }
    for (std::size_t h = 0; h < static_cast<std::size_t>(Hist::kCount); ++h) {
      const Histogram& hist = m.hists[h];
      if (hist.count != 0) {
        appendf(out, " %s{n=%" PRIu64 ",sum=%.6f}",
                to_string(static_cast<Hist>(h)), hist.count, hist.sum_us);
      }
    }
    out += "\n";
  }
  return out;
}

bool write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "obs: cannot write %s\n", path.c_str());
    return false;
  }
  const std::size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const bool ok = written == content.size() && std::fclose(f) == 0;
  if (!ok) {
    std::fprintf(stderr, "obs: error writing %s\n", path.c_str());
  }
  return ok;
}

}  // namespace caf2::obs
