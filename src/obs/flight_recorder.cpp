#include "obs/flight_recorder.hpp"

namespace caf2::obs {

const char* to_string(FrKind kind) {
  switch (kind) {
    case FrKind::kSend:
      return "send";
    case FrKind::kDeliver:
      return "deliver";
    case FrKind::kAck:
      return "ack";
    case FrKind::kRetransmit:
      return "retransmit";
    case FrKind::kFaultDrop:
      return "fault-drop";
    case FrKind::kFaultDuplicate:
      return "fault-duplicate";
    case FrKind::kFaultDelay:
      return "fault-delay";
    case FrKind::kFaultAckLoss:
      return "fault-ack-loss";
    case FrKind::kWaitBegin:
      return "wait-begin";
    case FrKind::kWaitEnd:
      return "wait-end";
    case FrKind::kHandler:
      return "handler";
    case FrKind::kEpochOdd:
      return "epoch-odd";
    case FrKind::kEpochFold:
      return "epoch-fold";
  }
  return "?";
}

FlightRecorder::FlightRecorder(int num_images,
                               std::size_t entries_per_image) {
  std::size_t capacity = 8;
  while (capacity < entries_per_image) {
    capacity <<= 1;
  }
  mask_ = capacity - 1;
  rings_.resize(static_cast<std::size_t>(num_images < 0 ? 0 : num_images));
  for (Ring& ring : rings_) {
    ring.events.resize(capacity);
  }
}

std::vector<FrEvent> FlightRecorder::recent(int image,
                                            std::size_t max_n) const {
  const Ring& ring = rings_[static_cast<std::size_t>(image)];
  const std::uint64_t capacity = mask_ + 1;
  std::uint64_t count = ring.total < capacity ? ring.total : capacity;
  if (count > max_n) {
    count = max_n;
  }
  std::vector<FrEvent> out;
  out.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = ring.total - count; i != ring.total; ++i) {
    out.push_back(ring.events[i & mask_]);
  }
  return out;
}

}  // namespace caf2::obs
