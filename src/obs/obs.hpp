#pragma once

/// \file obs.hpp
/// caf2::obs — op-level span recorder and metrics registry (DESIGN.md §4.9).
///
/// The paper's central claims are *attributional*: cofence costs less than
/// events costs less than finish (Fig. 12), and SPMD termination detection
/// converges in a bounded number of reduction waves (Fig. 18). End-to-end
/// virtual times cannot show where an image's time went; this subsystem can.
/// Every user-visible operation — put/get, event wait/notify, finish
/// enter/body/detect, cofence, collective phases, spawn, steal idling — opens
/// a span on the *virtual* clock, and every message delivery links the span
/// of the waiter it unblocked to the flight that woke it, so the span set
/// forms a happens-before DAG that the blame analyzer (obs/blame.hpp) can
/// replay after the run.
///
/// Layering: obs sits directly above caf2_support and below caf2_sim — the
/// engine, network, and runtime all hold a raw `Recorder*` (null when
/// ObsConfig::enabled is false). Recording discipline, which is what keeps
/// instrumented runs bit-identical to uninstrumented ones:
///  - a hook may only append to per-image buffers and bump counters;
///  - a hook never schedules events, blocks, allocates engine resources, or
///    reads engine-private state;
///  - the engine runs at most one context at a time *per shard* (participant
///    or engine callback), and every per-image hook fires on the image's
///    home shard, so per-image recorder state needs no locking — exactly the
///    argument that covers Image state (runtime/image.hpp).
///
/// Sharded runs (DESIGN.md §4.12): the single network track of the serial
/// recorder would be a cross-shard race, so the recorder keeps one network
/// *lane* per engine shard (the net_lanes constructor argument); the network
/// layer records each flight on the calling shard's lane. Span ids are
/// composite — (track ordinal, per-track counter) packed into 64 bits — so
/// id assignment is track-local and deterministic without any cross-shard
/// coordination. take()/snapshot() merge the lanes into the capture's single
/// network track by (begin, end, image, peer, id), a total order, so the
/// exported capture is deterministic for a fixed shard count and identical
/// across execution backends.

#include <array>
#include <cstdint>
#include <vector>

#include "support/config.hpp"
#include "support/error.hpp"

namespace caf2::obs {

/// What a span measures. kCompute/kBlocked tile each image's virtual
/// timeline (the engine emits them from advance()/block()); the remaining
/// kinds annotate operations on top and may nest or overlap freely.
enum class SpanKind : std::uint8_t {
  kCompute,          ///< modeled local computation (Engine::advance)
  kBlocked,          ///< parked in Engine::block (blame field says why)
  kHandler,          ///< active-message handler execution
  kPut,              ///< async copy, local source -> remote dest (init..ack)
  kGet,              ///< async copy, remote source -> local dest (init..data)
  kSpawn,            ///< function shipping (init..ack)
  kEventWait,        ///< Event::wait / wait_many
  kEventNotify,      ///< notify's release wait (op completion of the scope)
  kCofence,          ///< cofence() wait for local data completion
  kFinishBody,       ///< finish block: enter..body-returned
  kFinishDetect,     ///< finish block: detection (payload a = rounds)
  kCollective,       ///< blocking collective wrapper (team_barrier, ...)
  kStealIdle,        ///< work-stealing scheduler waiting on a steal response
  kFlight,           ///< network track: message initiation..delivery
  kRetransmitDelay,  ///< network track: fault-induced extra wait (image =
                     ///< the image whose completion the fault delayed)
};

const char* to_string(SpanKind kind);

/// Blame category of one blocked interval — the synchronization construct
/// (or resource) an image was waiting on. Assigned from a per-image *blame
/// context stack*: constructs push their category around their internal
/// waits, so e.g. the allreduce-internal event waits of finish's termination
/// detection are blamed on finish, not on events. Event::wait pushes
/// kEventWait only when the stack is empty for the same reason.
enum class Blame : std::uint8_t {
  kCompute,      ///< not blocked at all (used only by the analyzer)
  kNetwork,      ///< wire latency / retransmission (assigned by the analyzer)
  kFinishWait,   ///< finish termination detection
  kCofenceWait,  ///< cofence (local data completion)
  kEventWait,    ///< explicit Event wait (local operation completion)
  kStealIdle,    ///< work-stealing scheduler idling
  kOther,        ///< anything else (exit rendezvous, collective waits, ...)
};

const char* to_string(Blame blame);

/// One recorded span. POD, fixed-size; [begin, end) on the virtual clock.
struct Span {
  double begin = 0.0;
  double end = 0.0;
  std::uint64_t id = 0;      ///< recorder-global id (deterministic)
  std::uint64_t parent = 0;  ///< span that unblocked this one (0 = none)
  std::uint64_t a = 0;       ///< kind-specific payload (bytes, rounds, ...)
  std::uint64_t b = 0;       ///< second kind-specific payload
  std::int32_t image = -1;   ///< owning image (-1 = network track)
  std::int32_t peer = -1;    ///< other endpoint, where meaningful
  SpanKind kind = SpanKind::kCompute;
  Blame blame = Blame::kOther;       ///< meaningful for kBlocked
  const char* label = nullptr;       ///< static string (block reason, ...)
};

/// Typed per-image counters.
enum class Counter : std::uint8_t {
  kMessagesSent,           ///< messages injected by this image
  kMessagesDelivered,      ///< messages landed in this image's mailbox
  kMessagesRetransmitted,  ///< reliable-delivery resends from this image
  kHandlersRun,            ///< active-message handlers executed here
  kFinishScopes,           ///< finish blocks completed on this image
  kFinishRounds,           ///< total detection reduction waves
  kStealAttempts,          ///< work-stealing steal requests issued
  kMailboxHighWater,       ///< max mailbox depth observed (gauge)
  kSpansDropped,           ///< spans discarded by the memory cap
  kCount,
};

const char* to_string(Counter counter);

/// Virtual-time histogram: log2 buckets over microseconds. Bucket 0 holds
/// values <= kBaseUs; bucket i holds (kBaseUs * 2^(i-1), kBaseUs * 2^i].
struct Histogram {
  static constexpr int kBuckets = 32;
  static constexpr double kBaseUs = 0.001;  ///< one simulated nanosecond

  std::array<std::uint64_t, kBuckets> buckets{};
  std::uint64_t count = 0;
  double sum_us = 0.0;

  void add(double us);
};

/// Per-image histograms.
enum class Hist : std::uint8_t {
  kMessageLatency,  ///< initiation -> delivery, per destination image
  kBlockedTime,     ///< duration of each blocked interval
  kHandlerTime,     ///< duration of each handler execution
  kCount,
};

const char* to_string(Hist hist);

/// Intern \p text into a process-global pool and return a pointer with
/// static lifetime. Span::label is a raw `const char*` that must outlive
/// every capture; operations whose label is composed at runtime (e.g. a
/// collective's "kind/algorithm" identity) intern it once here. The pool is
/// never freed and insertion is mutex-guarded; repeated calls with equal
/// text return the same pointer.
const char* intern_label(const std::string& text);

/// Counters + histograms of one image.
struct Metrics {
  std::array<std::uint64_t, static_cast<std::size_t>(Counter::kCount)>
      counters{};
  std::array<Histogram, static_cast<std::size_t>(Hist::kCount)> hists{};

  std::uint64_t counter(Counter c) const {
    return counters[static_cast<std::size_t>(c)];
  }
  const Histogram& hist(Hist h) const {
    return hists[static_cast<std::size_t>(h)];
  }
};

/// One span buffer (an image's timeline, or the network's).
struct Track {
  std::vector<Span> spans;
  std::uint64_t dropped = 0;  ///< spans discarded by the memory cap
};

/// Immutable snapshot of everything recorded during one run. Deterministic:
/// for a given options + body it is bit-identical across execution backends
/// and with the scheduler fast path on or off (export::to_text serializes it
/// byte-stably for exactly that comparison).
struct Capture {
  ObsConfig config{};
  int images = 0;
  double end_us = 0.0;                       ///< final virtual time
  ExecBackend backend = ExecBackend::kAuto;  ///< resolved backend that ran
                                             ///< (excluded from to_text)
  std::vector<Track> tracks;   ///< size images + 1; tracks[images] = network
  std::vector<Metrics> metrics;  ///< size images

  const Track& image_track(int image) const {
    return tracks[static_cast<std::size_t>(image)];
  }
  const Track& net_track() const { return tracks.back(); }
};

/// The live recorder. One per Runtime; hooks in the engine, network, and
/// runtime layers call it through a raw pointer that is null when obs is
/// disabled (callers test the pointer, so a disabled run pays one branch).
class Recorder {
 public:
  /// \p net_lanes is the number of independent network-track lanes (one per
  /// engine shard; 1 for serial runs). Lanes are merged into the capture's
  /// single network track at take()/snapshot().
  Recorder(int images, ObsConfig config, int net_lanes = 1);

  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  int images() const { return static_cast<int>(images_.size()); }

  /// --- engine hooks --------------------------------------------------------

  /// Modeled computation [begin, end) on \p image (Engine::advance).
  void on_compute(int image, double begin, double end);

  /// \p image parked in Engine::block at \p at; \p reason is the static
  /// block-reason string.
  void on_block_begin(int image, double at, const char* reason);

  /// \p image resumed at \p at: closes the blocked span, classifies it from
  /// the blame-context stack, and consumes the pending unblock cause (if a
  /// delivery or ack noted one) as the span's parent link.
  void on_block_end(int image, double at);

  /// --- blame-context stack -------------------------------------------------

  void push_blame(int image, Blame blame);
  void pop_blame(int image);
  bool blame_empty(int image) const;

  /// --- op spans (runtime / ops / kernels layers) ---------------------------

  /// Record a finished operation span on \p image's track.
  void op_span(int image, SpanKind kind, double begin, double end,
               std::uint64_t a = 0, std::uint64_t b = 0, int peer = -1,
               const char* label = nullptr);

  /// --- network hooks -------------------------------------------------------

  /// Record a delivered message [initiation, delivery) on network lane
  /// \p lane (the calling engine shard; 0 for serial runs); returns the span
  /// id (stable even when the span itself was dropped).
  std::uint64_t flight_span(int source, int dest, double begin, double end,
                            std::uint64_t bytes, int lane = 0);

  /// Record fault-induced extra wait [expected, actual) charged to \p image
  /// (the endpoint whose completion the fault delayed) on network lane
  /// \p lane.
  void retransmit_span(int image, int peer, double begin, double end,
                       int lane = 0);

  /// Note that \p span_id is about to unblock \p image (delivery into its
  /// mailbox, or an ack completing its operation). The next blocked span
  /// closing on \p image takes it as parent.
  void note_cause(int image, std::uint64_t span_id);

  /// --- metrics -------------------------------------------------------------

  void add(int image, Counter c, std::uint64_t v = 1);
  void maxed(int image, Counter c, std::uint64_t v);  ///< gauge high-water
  void observe(int image, Hist h, double us);

  /// --- snapshot ------------------------------------------------------------

  /// Move everything recorded so far into an immutable Capture.
  Capture take(double end_us, ExecBackend backend);

  /// Copy everything recorded so far, leaving the recorder untouched. Used
  /// by the postmortem collector: a failing run's blame summary must not
  /// consume the capture a later take() would return.
  Capture snapshot(double end_us, ExecBackend backend) const;

 private:
  struct PerImage {
    Track track;
    Metrics metrics;
    std::vector<Blame> blame_stack;
    double block_begin = 0.0;
    const char* block_reason = nullptr;
    bool blocked = false;
    std::uint64_t cause = 0;  ///< pending parent for the next blocked span
    std::uint64_t next_local = 0;  ///< per-track span id counter
  };

  /// One shard's slice of the network track (serial runs have exactly one).
  struct NetLane {
    Track track;
    std::uint64_t next_local = 0;  ///< per-lane span id counter
  };

  PerImage& at(int image);
  const PerImage& at(int image) const;
  NetLane& lane_at(int lane);

  /// Composite span id of the next span on track \p ordinal (image rank for
  /// image tracks, images + lane for network lanes): nonzero, unique across
  /// tracks, and assigned without cross-shard coordination. Uniqueness is
  /// what the deterministic (begin, end, image, peer, id) lane merge and
  /// note_cause links rely on, so guard both packed fields: a local counter
  /// spilling past 2^40 (or a track ordinal past 2^24) would silently bleed
  /// into the neighboring bits.
  static std::uint64_t compose_id(std::uint64_t ordinal,
                                  std::uint64_t& next_local) {
    CAF2_ASSERT(ordinal + 1 < (std::uint64_t{1} << 24),
                "compose_id: track ordinal exceeds the 24-bit field");
    CAF2_ASSERT(next_local < (std::uint64_t{1} << 40) - 1,
                "compose_id: per-track span counter overflow");
    return ((ordinal + 1) << 40) | ++next_local;
  }

  /// Append \p span (assigning its id from \p ordinal / \p next_local) under
  /// \p cap_bytes; counts drops into the track and, when \p image_metrics is
  /// set, Counter::kSpansDropped.
  std::uint64_t push_span(Track& track, std::uint64_t ordinal,
                          std::uint64_t& next_local, std::size_t cap_bytes,
                          Span span, Metrics* image_metrics);

  /// The capture's single network track: lane 0 verbatim for serial runs,
  /// else the deterministic (begin, end, image, peer, id) merge.
  Track merged_net_track() const;

  ObsConfig config_;
  std::vector<PerImage> images_;
  std::vector<NetLane> net_lanes_;
};

/// RAII blame-context scope. Pass a null recorder to make it a no-op (the
/// idiom for conditional pushes, e.g. Event::wait's only-when-stack-empty
/// rule: `BlameScope scope(rec && rec->blame_empty(i) ? rec : nullptr, ...)`).
class BlameScope {
 public:
  BlameScope(Recorder* recorder, int image, Blame blame)
      : recorder_(recorder), image_(image) {
    if (recorder_ != nullptr) {
      recorder_->push_blame(image_, blame);
    }
  }
  ~BlameScope() {
    if (recorder_ != nullptr) {
      recorder_->pop_blame(image_);
    }
  }

  BlameScope(const BlameScope&) = delete;
  BlameScope& operator=(const BlameScope&) = delete;

 private:
  Recorder* recorder_;
  int image_;
};

}  // namespace caf2::obs
