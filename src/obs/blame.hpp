#pragma once

/// \file blame.hpp
/// Critical-path blame analyzer over a recorded obs::Capture
/// (DESIGN.md §4.9).
///
/// Replays the span DAG after the run and answers two questions the raw
/// span dump cannot:
///  - *where did each image's virtual time go?* — every image's timeline is
///    tiled by kCompute/kBlocked spans; blocked intervals are attributed to
///    the synchronization construct that parked the image (finish-wait,
///    cofence-wait, event-wait, steal-idle, ...), except that waits whose
///    unblocking cause was a message flight are charged to the *network*,
///    and time provably added by retransmissions is re-attributed to the
///    network no matter which construct was waiting (ISSUE satellite:
///    "retransmit spans attributed to network, not to finish-wait");
///  - *what bounded the run?* — the longest dependency chain through the
///    DAG (image timelines linked by message flights), i.e. the virtual
///    critical path.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/obs.hpp"

namespace caf2::obs {

constexpr std::size_t kBlameBuckets = 7;  ///< one per Blame enumerator

/// Virtual microseconds of one image (or the aggregate) split by blame.
struct BlameBreakdown {
  std::array<double, kBlameBuckets> us{};

  double& operator[](Blame b) { return us[static_cast<std::size_t>(b)]; }
  double operator[](Blame b) const { return us[static_cast<std::size_t>(b)]; }

  /// Sum over every bucket (≈ the image's span of virtual time).
  double total() const;
};

/// Result of analyze_blame().
struct BlameReport {
  std::vector<BlameBreakdown> per_image;
  BlameBreakdown total;  ///< element-wise sum over images

  /// Longest dependency chain through the span DAG: image timeline spans in
  /// sequence, crossing images via the message flight that unblocked a wait.
  double critical_path_us = 0.0;
  std::uint64_t critical_path_hops = 0;   ///< spans on the chain
  int critical_path_image = -1;           ///< image where the chain ends

  /// Max over every finish-detect span's round count (the paper's
  /// (L+1)-bounded allreduce waves, Fig. 18).
  std::uint64_t finish_rounds_max = 0;

  /// Virtual time re-attributed from construct buckets to the network
  /// because retransmission delays overlapped the wait.
  double retransmit_us = 0.0;
};

/// Walk \p capture's span DAG and attribute every image's virtual time.
BlameReport analyze_blame(const Capture& capture);

/// Human-readable fixed-precision rendering (aggregate + per-image rows).
std::string to_text(const BlameReport& report);

}  // namespace caf2::obs
