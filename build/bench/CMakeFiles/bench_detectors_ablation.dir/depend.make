# Empty dependencies file for bench_detectors_ablation.
# This may be replaced when dependencies are built.
