file(REMOVE_RECURSE
  "CMakeFiles/bench_detectors_ablation.dir/bench_detectors_ablation.cpp.o"
  "CMakeFiles/bench_detectors_ablation.dir/bench_detectors_ablation.cpp.o.d"
  "bench_detectors_ablation"
  "bench_detectors_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_detectors_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
