# Empty dependencies file for bench_fig18_detection_rounds.
# This may be replaced when dependencies are built.
