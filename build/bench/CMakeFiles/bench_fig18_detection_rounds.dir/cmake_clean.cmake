file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_detection_rounds.dir/bench_fig18_detection_rounds.cpp.o"
  "CMakeFiles/bench_fig18_detection_rounds.dir/bench_fig18_detection_rounds.cpp.o.d"
  "bench_fig18_detection_rounds"
  "bench_fig18_detection_rounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_detection_rounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
