# Empty dependencies file for bench_fig17_uts_efficiency.
# This may be replaced when dependencies are built.
