
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_substrate.cpp" "bench/CMakeFiles/bench_substrate.dir/bench_substrate.cpp.o" "gcc" "bench/CMakeFiles/bench_substrate.dir/bench_substrate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/caf2_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/caf2_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/caf2_ops.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/caf2_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/caf2_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/caf2_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/caf2_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
