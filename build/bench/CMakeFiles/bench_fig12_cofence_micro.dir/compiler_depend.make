# Empty compiler generated dependencies file for bench_fig12_cofence_micro.
# This may be replaced when dependencies are built.
