file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_uts_balance.dir/bench_fig16_uts_balance.cpp.o"
  "CMakeFiles/bench_fig16_uts_balance.dir/bench_fig16_uts_balance.cpp.o.d"
  "bench_fig16_uts_balance"
  "bench_fig16_uts_balance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_uts_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
