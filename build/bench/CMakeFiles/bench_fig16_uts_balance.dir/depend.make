# Empty dependencies file for bench_fig16_uts_balance.
# This may be replaced when dependencies are built.
