file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_randomaccess.dir/bench_fig13_randomaccess.cpp.o"
  "CMakeFiles/bench_fig13_randomaccess.dir/bench_fig13_randomaccess.cpp.o.d"
  "bench_fig13_randomaccess"
  "bench_fig13_randomaccess.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_randomaccess.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
