# Empty dependencies file for bench_fig13_randomaccess.
# This may be replaced when dependencies are built.
