# Empty compiler generated dependencies file for bench_uts_ablation.
# This may be replaced when dependencies are built.
