file(REMOVE_RECURSE
  "CMakeFiles/distributed_sort.dir/distributed_sort.cpp.o"
  "CMakeFiles/distributed_sort.dir/distributed_sort.cpp.o.d"
  "distributed_sort"
  "distributed_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
