# Empty dependencies file for distributed_sort.
# This may be replaced when dependencies are built.
