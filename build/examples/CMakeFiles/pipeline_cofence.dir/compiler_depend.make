# Empty compiler generated dependencies file for pipeline_cofence.
# This may be replaced when dependencies are built.
