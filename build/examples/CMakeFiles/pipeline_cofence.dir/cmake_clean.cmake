file(REMOVE_RECURSE
  "CMakeFiles/pipeline_cofence.dir/pipeline_cofence.cpp.o"
  "CMakeFiles/pipeline_cofence.dir/pipeline_cofence.cpp.o.d"
  "pipeline_cofence"
  "pipeline_cofence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_cofence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
