# Empty dependencies file for barrier_pitfall.
# This may be replaced when dependencies are built.
