file(REMOVE_RECURSE
  "CMakeFiles/barrier_pitfall.dir/barrier_pitfall.cpp.o"
  "CMakeFiles/barrier_pitfall.dir/barrier_pitfall.cpp.o.d"
  "barrier_pitfall"
  "barrier_pitfall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/barrier_pitfall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
