file(REMOVE_RECURSE
  "CMakeFiles/test_cofence.dir/test_cofence.cpp.o"
  "CMakeFiles/test_cofence.dir/test_cofence.cpp.o.d"
  "test_cofence"
  "test_cofence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cofence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
