# Empty compiler generated dependencies file for test_cofence.
# This may be replaced when dependencies are built.
