file(REMOVE_RECURSE
  "CMakeFiles/test_spawn.dir/test_spawn.cpp.o"
  "CMakeFiles/test_spawn.dir/test_spawn.cpp.o.d"
  "test_spawn"
  "test_spawn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spawn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
