# Empty dependencies file for test_finish.
# This may be replaced when dependencies are built.
