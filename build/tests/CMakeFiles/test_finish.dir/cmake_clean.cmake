file(REMOVE_RECURSE
  "CMakeFiles/test_finish.dir/test_finish.cpp.o"
  "CMakeFiles/test_finish.dir/test_finish.cpp.o.d"
  "test_finish"
  "test_finish.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_finish.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
