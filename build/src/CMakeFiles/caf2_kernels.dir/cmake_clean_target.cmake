file(REMOVE_RECURSE
  "libcaf2_kernels.a"
)
