# Empty compiler generated dependencies file for caf2_kernels.
# This may be replaced when dependencies are built.
