file(REMOVE_RECURSE
  "CMakeFiles/caf2_kernels.dir/kernels/randomaccess.cpp.o"
  "CMakeFiles/caf2_kernels.dir/kernels/randomaccess.cpp.o.d"
  "CMakeFiles/caf2_kernels.dir/kernels/uts.cpp.o"
  "CMakeFiles/caf2_kernels.dir/kernels/uts.cpp.o.d"
  "CMakeFiles/caf2_kernels.dir/kernels/uts_scheduler.cpp.o"
  "CMakeFiles/caf2_kernels.dir/kernels/uts_scheduler.cpp.o.d"
  "libcaf2_kernels.a"
  "libcaf2_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/caf2_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
