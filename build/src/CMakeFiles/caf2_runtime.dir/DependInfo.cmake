
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/coarray.cpp" "src/CMakeFiles/caf2_runtime.dir/runtime/coarray.cpp.o" "gcc" "src/CMakeFiles/caf2_runtime.dir/runtime/coarray.cpp.o.d"
  "/root/repo/src/runtime/cofence_tracker.cpp" "src/CMakeFiles/caf2_runtime.dir/runtime/cofence_tracker.cpp.o" "gcc" "src/CMakeFiles/caf2_runtime.dir/runtime/cofence_tracker.cpp.o.d"
  "/root/repo/src/runtime/event.cpp" "src/CMakeFiles/caf2_runtime.dir/runtime/event.cpp.o" "gcc" "src/CMakeFiles/caf2_runtime.dir/runtime/event.cpp.o.d"
  "/root/repo/src/runtime/finish_state.cpp" "src/CMakeFiles/caf2_runtime.dir/runtime/finish_state.cpp.o" "gcc" "src/CMakeFiles/caf2_runtime.dir/runtime/finish_state.cpp.o.d"
  "/root/repo/src/runtime/image.cpp" "src/CMakeFiles/caf2_runtime.dir/runtime/image.cpp.o" "gcc" "src/CMakeFiles/caf2_runtime.dir/runtime/image.cpp.o.d"
  "/root/repo/src/runtime/progress.cpp" "src/CMakeFiles/caf2_runtime.dir/runtime/progress.cpp.o" "gcc" "src/CMakeFiles/caf2_runtime.dir/runtime/progress.cpp.o.d"
  "/root/repo/src/runtime/runtime.cpp" "src/CMakeFiles/caf2_runtime.dir/runtime/runtime.cpp.o" "gcc" "src/CMakeFiles/caf2_runtime.dir/runtime/runtime.cpp.o.d"
  "/root/repo/src/runtime/team.cpp" "src/CMakeFiles/caf2_runtime.dir/runtime/team.cpp.o" "gcc" "src/CMakeFiles/caf2_runtime.dir/runtime/team.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/caf2_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/caf2_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/caf2_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
