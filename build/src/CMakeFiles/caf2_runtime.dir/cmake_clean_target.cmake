file(REMOVE_RECURSE
  "libcaf2_runtime.a"
)
