file(REMOVE_RECURSE
  "CMakeFiles/caf2_runtime.dir/runtime/coarray.cpp.o"
  "CMakeFiles/caf2_runtime.dir/runtime/coarray.cpp.o.d"
  "CMakeFiles/caf2_runtime.dir/runtime/cofence_tracker.cpp.o"
  "CMakeFiles/caf2_runtime.dir/runtime/cofence_tracker.cpp.o.d"
  "CMakeFiles/caf2_runtime.dir/runtime/event.cpp.o"
  "CMakeFiles/caf2_runtime.dir/runtime/event.cpp.o.d"
  "CMakeFiles/caf2_runtime.dir/runtime/finish_state.cpp.o"
  "CMakeFiles/caf2_runtime.dir/runtime/finish_state.cpp.o.d"
  "CMakeFiles/caf2_runtime.dir/runtime/image.cpp.o"
  "CMakeFiles/caf2_runtime.dir/runtime/image.cpp.o.d"
  "CMakeFiles/caf2_runtime.dir/runtime/progress.cpp.o"
  "CMakeFiles/caf2_runtime.dir/runtime/progress.cpp.o.d"
  "CMakeFiles/caf2_runtime.dir/runtime/runtime.cpp.o"
  "CMakeFiles/caf2_runtime.dir/runtime/runtime.cpp.o.d"
  "CMakeFiles/caf2_runtime.dir/runtime/team.cpp.o"
  "CMakeFiles/caf2_runtime.dir/runtime/team.cpp.o.d"
  "libcaf2_runtime.a"
  "libcaf2_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/caf2_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
