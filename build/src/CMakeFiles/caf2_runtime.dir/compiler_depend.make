# Empty compiler generated dependencies file for caf2_runtime.
# This may be replaced when dependencies are built.
