# Empty dependencies file for caf2_core.
# This may be replaced when dependencies are built.
