file(REMOVE_RECURSE
  "libcaf2_core.a"
)
