file(REMOVE_RECURSE
  "CMakeFiles/caf2_core.dir/core/caf2.cpp.o"
  "CMakeFiles/caf2_core.dir/core/caf2.cpp.o.d"
  "CMakeFiles/caf2_core.dir/core/cofence.cpp.o"
  "CMakeFiles/caf2_core.dir/core/cofence.cpp.o.d"
  "CMakeFiles/caf2_core.dir/core/detectors.cpp.o"
  "CMakeFiles/caf2_core.dir/core/detectors.cpp.o.d"
  "CMakeFiles/caf2_core.dir/core/finish.cpp.o"
  "CMakeFiles/caf2_core.dir/core/finish.cpp.o.d"
  "libcaf2_core.a"
  "libcaf2_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/caf2_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
