file(REMOVE_RECURSE
  "CMakeFiles/caf2_net.dir/net/mailbox.cpp.o"
  "CMakeFiles/caf2_net.dir/net/mailbox.cpp.o.d"
  "CMakeFiles/caf2_net.dir/net/message.cpp.o"
  "CMakeFiles/caf2_net.dir/net/message.cpp.o.d"
  "CMakeFiles/caf2_net.dir/net/network.cpp.o"
  "CMakeFiles/caf2_net.dir/net/network.cpp.o.d"
  "libcaf2_net.a"
  "libcaf2_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/caf2_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
