# Empty dependencies file for caf2_net.
# This may be replaced when dependencies are built.
