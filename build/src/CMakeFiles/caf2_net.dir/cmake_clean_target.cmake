file(REMOVE_RECURSE
  "libcaf2_net.a"
)
