file(REMOVE_RECURSE
  "libcaf2_sim.a"
)
