# Empty dependencies file for caf2_sim.
# This may be replaced when dependencies are built.
