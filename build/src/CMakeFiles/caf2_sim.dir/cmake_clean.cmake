file(REMOVE_RECURSE
  "CMakeFiles/caf2_sim.dir/sim/engine.cpp.o"
  "CMakeFiles/caf2_sim.dir/sim/engine.cpp.o.d"
  "CMakeFiles/caf2_sim.dir/sim/participant.cpp.o"
  "CMakeFiles/caf2_sim.dir/sim/participant.cpp.o.d"
  "CMakeFiles/caf2_sim.dir/sim/trace.cpp.o"
  "CMakeFiles/caf2_sim.dir/sim/trace.cpp.o.d"
  "libcaf2_sim.a"
  "libcaf2_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/caf2_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
