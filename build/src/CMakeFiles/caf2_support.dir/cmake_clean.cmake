file(REMOVE_RECURSE
  "CMakeFiles/caf2_support.dir/support/config.cpp.o"
  "CMakeFiles/caf2_support.dir/support/config.cpp.o.d"
  "CMakeFiles/caf2_support.dir/support/error.cpp.o"
  "CMakeFiles/caf2_support.dir/support/error.cpp.o.d"
  "CMakeFiles/caf2_support.dir/support/rng.cpp.o"
  "CMakeFiles/caf2_support.dir/support/rng.cpp.o.d"
  "CMakeFiles/caf2_support.dir/support/serialize.cpp.o"
  "CMakeFiles/caf2_support.dir/support/serialize.cpp.o.d"
  "CMakeFiles/caf2_support.dir/support/sha1.cpp.o"
  "CMakeFiles/caf2_support.dir/support/sha1.cpp.o.d"
  "CMakeFiles/caf2_support.dir/support/stats.cpp.o"
  "CMakeFiles/caf2_support.dir/support/stats.cpp.o.d"
  "CMakeFiles/caf2_support.dir/support/table.cpp.o"
  "CMakeFiles/caf2_support.dir/support/table.cpp.o.d"
  "libcaf2_support.a"
  "libcaf2_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/caf2_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
