file(REMOVE_RECURSE
  "libcaf2_support.a"
)
