# Empty compiler generated dependencies file for caf2_support.
# This may be replaced when dependencies are built.
