file(REMOVE_RECURSE
  "CMakeFiles/caf2_ops.dir/ops/collectives.cpp.o"
  "CMakeFiles/caf2_ops.dir/ops/collectives.cpp.o.d"
  "CMakeFiles/caf2_ops.dir/ops/copy.cpp.o"
  "CMakeFiles/caf2_ops.dir/ops/copy.cpp.o.d"
  "CMakeFiles/caf2_ops.dir/ops/reduction.cpp.o"
  "CMakeFiles/caf2_ops.dir/ops/reduction.cpp.o.d"
  "CMakeFiles/caf2_ops.dir/ops/sort.cpp.o"
  "CMakeFiles/caf2_ops.dir/ops/sort.cpp.o.d"
  "CMakeFiles/caf2_ops.dir/ops/spawn.cpp.o"
  "CMakeFiles/caf2_ops.dir/ops/spawn.cpp.o.d"
  "libcaf2_ops.a"
  "libcaf2_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/caf2_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
