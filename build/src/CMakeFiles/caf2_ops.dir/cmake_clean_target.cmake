file(REMOVE_RECURSE
  "libcaf2_ops.a"
)
