
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ops/collectives.cpp" "src/CMakeFiles/caf2_ops.dir/ops/collectives.cpp.o" "gcc" "src/CMakeFiles/caf2_ops.dir/ops/collectives.cpp.o.d"
  "/root/repo/src/ops/copy.cpp" "src/CMakeFiles/caf2_ops.dir/ops/copy.cpp.o" "gcc" "src/CMakeFiles/caf2_ops.dir/ops/copy.cpp.o.d"
  "/root/repo/src/ops/reduction.cpp" "src/CMakeFiles/caf2_ops.dir/ops/reduction.cpp.o" "gcc" "src/CMakeFiles/caf2_ops.dir/ops/reduction.cpp.o.d"
  "/root/repo/src/ops/sort.cpp" "src/CMakeFiles/caf2_ops.dir/ops/sort.cpp.o" "gcc" "src/CMakeFiles/caf2_ops.dir/ops/sort.cpp.o.d"
  "/root/repo/src/ops/spawn.cpp" "src/CMakeFiles/caf2_ops.dir/ops/spawn.cpp.o" "gcc" "src/CMakeFiles/caf2_ops.dir/ops/spawn.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/caf2_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/caf2_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/caf2_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/caf2_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
