# Empty dependencies file for caf2_ops.
# This may be replaced when dependencies are built.
