/// Memory-model invariants (paper §III): processor consistency of a single
/// image's writes, acquire/release discipline of events, the ordering
/// guarantees of each synchronization construct relative to the completion
/// spectrum, and end-to-end determinism of full runtime executions.

#include <gtest/gtest.h>

#include <vector>

#include "core/caf2.hpp"
#include "runtime/runtime.hpp"

namespace {

using namespace caf2;

RuntimeOptions mm_options(int images, std::uint64_t seed = 42) {
  RuntimeOptions options;
  options.num_images = images;
  options.net.latency_us = 4.0;
  options.net.bandwidth_bytes_per_us = 400.0;
  options.net.handler_cost_us = 0.1;
  options.net.jitter_us = 2.0;  // aggressively non-FIFO
  options.seed = seed;
  options.max_events = 10'000'000;
  return options;
}

TEST(MemoryModel, NotifyWaitPairOrdersDataAcrossImages) {
  // Release/acquire: everything image 0 completed before notify must be
  // visible to image 1 after the matching wait — under jittered, reordered
  // delivery, across many rounds.
  run(mm_options(2), [] {
    Team world = team_world();
    Coarray<int> data(world, 32);
    CoEvent ready(world);
    CoEvent consumed(world);
    team_barrier(world);
    for (int round = 0; round < 20; ++round) {
      if (world.rank() == 0) {
        std::vector<int> payload(32, round * 7);
        copy_async(data(1), std::span<const int>(payload));  // implicit
        notify_event(ready(1));  // release: copy delivered before this
        consumed.local().wait();
      } else {
        ready.local().wait();  // acquire
        for (int i = 0; i < 32; ++i) {
          ASSERT_EQ(data[static_cast<std::size_t>(i)], round * 7)
              << "round " << round << " slot " << i;
        }
        notify_event(consumed(0));
      }
    }
    team_barrier(world);
  });
}

TEST(MemoryModel, SingleSourceWritesSeenInOrder) {
  // Processor consistency: two sequenced implicit puts from the same image
  // to the same destination word, separated by a cofence on the first, must
  // land in program order — the second value wins.
  run(mm_options(2), [] {
    Team world = team_world();
    Coarray<int> box(world, 1);
    box[0] = 0;
    team_barrier(world);
    if (world.rank() == 0) {
      std::vector<int> first{1};
      std::vector<int> second{2};
      Event d1;
      Event d2;
      copy_async(box(1), std::span<const int>(first),
                 {.dst_done = d1.handle()});
      d1.wait();  // first delivered
      copy_async(box(1), std::span<const int>(second),
                 {.dst_done = d2.handle()});
      d2.wait();
    }
    team_barrier(world);
    if (world.rank() == 1) {
      EXPECT_EQ(box[0], 2);
    }
    team_barrier(world);
  });
}

TEST(MemoryModel, FinishIsAFullSynchronizationPoint) {
  // After end finish, every image observes every implicit write performed
  // by any image inside the block — even writes by third parties.
  run(mm_options(4), [] {
    Team world = team_world();
    Coarray<long> table(world, 4);
    for (std::size_t i = 0; i < 4; ++i) {
      table[i] = -1;
    }
    // Staging buffer declared outside the finish block so it outlives the
    // copies (finish guarantees global completion). Plain local, NOT
    // static/thread_local: images share one OS thread under the fiber
    // backend, so a shared buffer would be clobbered by other images.
    const std::vector<long> payload(1, world.rank() * 11L);
    team_barrier(world);
    finish(world, [&] {
      // Everyone writes slot `rank` of everyone else's block.
      for (int t = 0; t < world.size(); ++t) {
        copy_async(table.slice(t, static_cast<std::uint64_t>(world.rank()), 1),
                   std::span<const long>(payload));
      }
    });
    for (int r = 0; r < world.size(); ++r) {
      EXPECT_EQ(table[static_cast<std::size_t>(r)], r * 11);
    }
    team_barrier(world);
  });
}

TEST(MemoryModel, EventWaitDoesNotOrderPriorOps) {
  // event_wait has acquire semantics: operations before it are free to
  // complete after it. Concretely, a pending implicit put is still
  // outstanding when an unrelated wait is satisfied.
  run(mm_options(2), [] {
    Team world = team_world();
    Coarray<int> box(world, 400);
    CoEvent ping(world);
    team_barrier(world);
    if (world.rank() == 0) {
      std::vector<int> payload(400, 3);  // 1600 B: slow staging
      copy_async(box(1), std::span<const int>(payload));
      ping.local().wait();  // acquire: does not flush the copy
      EXPECT_EQ(outstanding_implicit_ops(), 1u);
      cofence();  // local data completion (keeps payload alive for staging)
      // Flush to local *operation* completion before the coarray dies:
      // notify's release semantics wait for the delivery acknowledgement.
      Event flush;
      flush.notify();
    } else {
      notify_event(ping(0));
    }
    team_barrier(world);
  });
}

TEST(Determinism, IdenticalSeedsGiveIdenticalExecutions) {
  // Full-runtime determinism: two complete executions with the same seed
  // produce identical virtual end times and identical event counts.
  auto one_run = [](std::uint64_t seed, double* end_time,
                    std::uint64_t* events) {
    RuntimeOptions options = mm_options(3, seed);
    options.record_trace = true;
    double t = 0;
    run(options, [&] {
      Team world = team_world();
      Coarray<long> counter(world, 1);
      counter[0] = 0;
      team_barrier(world);
      // Plain local (not thread_local): images share one OS thread under
      // the fiber backend; cofence() each round stages it before reuse.
      const std::vector<long> payload{1};
      finish(world, [&] {
        for (int round = 0; round < 5; ++round) {
          copy_async(counter((world.rank() + round) % world.size())
                         .subslice(0, 1),
                     std::span<const long>(payload));
          cofence();
        }
      });
      // Fingerprint a single image's clock: `t` is shared across images, so
      // an unguarded write would make the fingerprint "whichever image wrote
      // last" — real-time racy on a sharded engine.
      if (this_image() == 0) {
        t = now_us();
      }
      team_barrier(world);
    });
    *end_time = t;
    *events = 0;  // engine is gone; end time is the fingerprint
  };
  double t1 = 0;
  double t2 = 0;
  double t3 = 0;
  std::uint64_t e = 0;
  one_run(7, &t1, &e);
  one_run(7, &t2, &e);
  one_run(8, &t3, &e);
  EXPECT_EQ(t1, t2);
  // A different seed perturbs jitter draws; times should differ (not a hard
  // guarantee, but overwhelmingly likely with 2 us jitter).
  EXPECT_NE(t1, t3);
}

TEST(Determinism, UtsTotalsIndependentOfJitterSeed) {
  // Functional determinism under timing nondeterminism: the counted total
  // must not depend on message timing at all.
  std::uint64_t reference = 0;
  for (std::uint64_t seed : {11ULL, 22ULL, 33ULL}) {
    RuntimeOptions options = mm_options(4, seed);
    std::uint64_t total = 0;
    run(options, [&] {
      Team world = team_world();
      Coarray<long> counter(world, 1);
      counter[0] = 0;
      team_barrier(world);
      // Outlives the finish block, which guarantees global completion.
      const std::vector<long> one{1};
      finish(world, [&] {
        copy_async(counter((world.rank() + 1) % world.size()).subslice(0, 1),
                   std::span<const long>(one));
      });
      const long sum = allreduce<long>(world, counter[0], RedOp::kSum);
      // Every image computes the same sum, but `total` is shared: on a
      // sharded engine unguarded writes from every image are a data race.
      if (this_image() == 0) {
        total = static_cast<std::uint64_t>(sum);
      }
    });
    if (reference == 0) {
      reference = total;
    }
    EXPECT_EQ(total, reference) << "seed " << seed;
    EXPECT_EQ(total, 4u);
  }
}

}  // namespace
