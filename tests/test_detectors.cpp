/// Detector-specific properties (paper §V, Fig. 18): round counts, the
/// quiescence bound, the centralized owner hotspot, and robustness of all
/// detectors to non-FIFO delivery and heavy transitive spawning.

#include <gtest/gtest.h>

#include "core/caf2.hpp"
#include "runtime/runtime.hpp"

namespace {

using namespace caf2;

RuntimeOptions det_options(int images, double jitter = 1.0) {
  RuntimeOptions options;
  options.num_images = images;
  options.net.latency_us = 3.0;
  options.net.bandwidth_bytes_per_us = 500.0;
  options.net.handler_cost_us = 0.1;
  options.net.jitter_us = jitter;
  options.max_events = 20'000'000;
  return options;
}

void bump(Coref<long> counter) { counter.local()[0] += 1; }

void storm(std::int32_t depth, std::int32_t width, Coref<long> counter) {
  counter.local()[0] += 1;
  if (depth > 0) {
    auto& rng = rt::Image::current().rng();
    for (int w = 0; w < width; ++w) {
      const int target = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(num_images())));
      spawn<storm>(target, depth - 1, width, counter);
    }
  }
}

long expected_storm(int depth, int width, int initiators) {
  long per_root = 0;
  long level = 1;
  for (int d = 0; d <= depth; ++d) {
    per_root += level;
    level *= width;
  }
  return per_root * initiators;
}

class AllDetectors : public ::testing::TestWithParam<DetectorKind> {};

TEST_P(AllDetectors, SpawnStormFullyCounted) {
  const DetectorKind detector = GetParam();
  run(det_options(5), [detector] {
    Team world = team_world();
    Coarray<long> counter(world, 1);
    counter[0] = 0;
    team_barrier(world);
    finish(
        world,
        [&] {
          spawn<storm>((this_image() + 2) % world.size(), std::int32_t{3},
                       std::int32_t{2}, counter.ref());
        },
        FinishOptions{detector});
    const long total = allreduce<long>(world, counter[0], RedOp::kSum);
    EXPECT_EQ(total, expected_storm(3, 2, world.size()));
    team_barrier(world);
  });
}

TEST_P(AllDetectors, RobustToHeavyJitter) {
  const DetectorKind detector = GetParam();
  run(det_options(4, /*jitter=*/10.0), [detector] {
    Team world = team_world();
    Coarray<long> counter(world, 1);
    counter[0] = 0;
    team_barrier(world);
    finish(
        world,
        [&] {
          for (int t = 0; t < world.size(); ++t) {
            spawn<bump>(t, counter.ref());
          }
        },
        FinishOptions{detector});
    EXPECT_EQ(counter[0], world.size());
    team_barrier(world);
  });
}

TEST_P(AllDetectors, EmptyScopeTerminates) {
  const DetectorKind detector = GetParam();
  run(det_options(3), [detector] {
    finish(team_world(), [] {}, FinishOptions{detector});
    EXPECT_GE(last_finish_report().rounds, 1);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, AllDetectors,
    ::testing::Values(DetectorKind::kEpoch, DetectorKind::kSpeculative,
                      DetectorKind::kFourCounter,
                      DetectorKind::kCentralized));

TEST(Detectors, EpochNeverUsesMoreRoundsThanSpeculative) {
  // The quiescence precondition can only remove waves, never add them, for
  // the same workload and seed.
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    int rounds_epoch = 0;
    int rounds_spec = 0;
    for (bool speculative : {false, true}) {
      RuntimeOptions options = det_options(4);
      options.seed = seed;
      int* out = speculative ? &rounds_spec : &rounds_epoch;
      run(options, [speculative, out] {
        Team world = team_world();
        Coarray<long> counter(world, 1);
        counter[0] = 0;
        team_barrier(world);
        finish(
            world,
            [&] {
              spawn<storm>((this_image() + 1) % world.size(),
                           std::int32_t{2}, std::int32_t{2}, counter.ref());
            },
            FinishOptions{speculative ? DetectorKind::kSpeculative
                                      : DetectorKind::kEpoch});
        if (this_image() == 0) {
          *out = last_finish_report().rounds;
        }
        team_barrier(world);
      });
    }
    EXPECT_LE(rounds_epoch, rounds_spec) << "seed " << seed;
  }
}

TEST(Detectors, CentralizedConcentratesTrafficAtOwner) {
  std::uint64_t owner_msgs_epoch = 0;
  std::uint64_t owner_msgs_central = 0;
  for (bool central : {false, true}) {
    std::uint64_t* out = central ? &owner_msgs_central : &owner_msgs_epoch;
    run(det_options(8), [central, out] {
      Team world = team_world();
      Coarray<long> counter(world, 1);
      counter[0] = 0;
      team_barrier(world);
      finish(
          world,
          [&] {
            for (int t = 0; t < world.size(); ++t) {
              spawn<bump>(t, counter.ref());
            }
          },
          FinishOptions{central ? DetectorKind::kCentralized
                                : DetectorKind::kEpoch});
      if (this_image() == 0) {
        *out = rt::Runtime::current().network().traffic(0).messages_in;
      }
      team_barrier(world);
    });
  }
  // The centralized detector funnels a vector from every member into the
  // owner per round; the epoch detector's reductions spread over a tree.
  EXPECT_GT(owner_msgs_central, owner_msgs_epoch);
}

TEST(Detectors, RoundsReportedConsistentlyAcrossImages) {
  run(det_options(6), [] {
    Team world = team_world();
    Coarray<long> counter(world, 1);
    counter[0] = 0;
    team_barrier(world);
    finish(world, [&] {
      spawn<bump>((this_image() + 3) % world.size(), counter.ref());
    });
    const int mine = last_finish_report().rounds;
    const int min_rounds = static_cast<int>(
        allreduce<long>(world, mine, RedOp::kMin));
    const int max_rounds = static_cast<int>(
        allreduce<long>(world, mine, RedOp::kMax));
    EXPECT_EQ(min_rounds, max_rounds)
        << "detection waves are collective: every image counts the same";
    team_barrier(world);
  });
}

TEST(Detectors, DeterministicRoundsPerSeed) {
  for (int repeat = 0; repeat < 2; ++repeat) {
    static int first_rounds = -1;
    run(det_options(4), [] {
      Team world = team_world();
      Coarray<long> counter(world, 1);
      counter[0] = 0;
      team_barrier(world);
      finish(world, [&] {
        spawn<storm>((this_image() + 1) % world.size(), std::int32_t{2},
                     std::int32_t{2}, counter.ref());
      });
      if (this_image() == 0) {
        if (first_rounds < 0) {
          first_rounds = last_finish_report().rounds;
        } else {
          EXPECT_EQ(first_rounds, last_finish_report().rounds);
        }
      }
      team_barrier(world);
    });
  }
}

}  // namespace
