/// Unit tests for the discrete-event simulation engine: virtual-time
/// semantics, deterministic scheduling, deadlock detection, exception
/// propagation, and the regression for early wake-ups during advance().

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "sim/engine.hpp"
#include "sim/participant.hpp"

namespace {

using namespace caf2::sim;

TEST(Engine, AdvanceMovesVirtualTime) {
  Engine engine(1);
  double end_time = -1;
  engine.run([&](int) {
    Engine& e = this_engine();
    EXPECT_EQ(e.now(), 0.0);
    e.advance(2.5);
    EXPECT_EQ(e.now(), 2.5);
    e.advance(0.5);
    end_time = e.now();
  });
  EXPECT_EQ(end_time, 3.0);
}

TEST(Engine, EventsInterleaveByTime) {
  // Participant 0 advances in steps of 3, participant 1 in steps of 2; the
  // global order of resume times must be merged by virtual time.
  std::vector<std::pair<int, double>> resumes;
  Engine engine(2);
  engine.run([&](int id) {
    Engine& e = this_engine();
    for (int i = 0; i < 3; ++i) {
      e.advance(id == 0 ? 3.0 : 2.0);
      resumes.emplace_back(id, e.now());
    }
  });
  // The t=6 tie breaks by insertion order: p0 scheduled its wake at t=3,
  // before p1 scheduled its own at t=4.
  const std::vector<std::pair<int, double>> expect{
      {1, 2.0}, {0, 3.0}, {1, 4.0}, {0, 6.0}, {1, 6.0}, {0, 9.0}};
  EXPECT_EQ(resumes, expect);
}

TEST(Engine, EqualTimesDispatchFifo) {
  std::vector<int> order;
  Engine engine(3);
  engine.run([&](int id) {
    Engine& e = this_engine();
    e.advance(1.0);  // all three schedule wakes for t=1
    order.push_back(id);
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Engine, PostRunsCallbacksAtTheirTime) {
  std::vector<double> call_times;
  Engine engine(1);
  engine.run([&](int) {
    Engine& e = this_engine();
    e.post(5.0, [&] { call_times.push_back(e.now()); });
    e.post(2.0, [&] { call_times.push_back(e.now()); });
    e.advance(10.0);
  });
  EXPECT_EQ(call_times, (std::vector<double>{2.0, 5.0}));
}

TEST(Engine, PostInThePastClampsToNow) {
  Engine engine(1);
  double ran_at = -1;
  engine.run([&](int) {
    Engine& e = this_engine();
    e.advance(4.0);
    e.post(1.0, [&] { ran_at = e.now(); });  // "1.0" is in the past
    e.advance(1.0);
  });
  EXPECT_EQ(ran_at, 4.0);
}

TEST(Engine, BlockAndUnblockHandOff) {
  Engine engine(2);
  double woke_at = -1;
  engine.run([&](int id) {
    Engine& e = this_engine();
    if (id == 0) {
      e.block();
      woke_at = e.now();
    } else {
      e.advance(7.0);
      e.unblock(0);
    }
  });
  EXPECT_EQ(woke_at, 7.0);
}

TEST(Engine, AdvanceIgnoresStrayWakes) {
  // Regression: a spurious unblock must not end a modeled computation early.
  Engine engine(2);
  double resumed_at = -1;
  engine.run([&](int id) {
    Engine& e = this_engine();
    if (id == 0) {
      e.advance(0.5);  // let participant 1 set up
      e.advance(100.0);
      resumed_at = e.now();
    } else {
      for (int i = 0; i < 5; ++i) {
        e.advance(3.0);
        e.unblock(0);  // stray wakes aimed at the computing participant
      }
    }
  });
  EXPECT_EQ(resumed_at, 100.5);
}

TEST(Engine, DeterministicTraces) {
  auto body = [](int id) {
    Engine& e = this_engine();
    for (int i = 0; i < 20; ++i) {
      e.advance(0.1 * (id + 1));
      if (i % 3 == 0) {
        e.post_in(0.05, [] {});
      }
    }
  };
  EngineOptions options;
  options.record_trace = true;
  Engine a(4, options);
  Engine b(4, options);
  a.run(body);
  b.run(body);
  EXPECT_EQ(render_trace(a.trace()), render_trace(b.trace()));
  EXPECT_GT(a.trace().size(), 80u);
}

TEST(Engine, DeadlockDetectedWithDiagnostic) {
  Engine engine(3);
  try {
    engine.run([](int id) {
      if (id != 0) {
        this_engine().block();
      }
    });
    FAIL() << "expected FatalError";
  } catch (const caf2::FatalError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("deadlock"), std::string::npos);
    EXPECT_NE(what.find("p1"), std::string::npos);
    EXPECT_NE(what.find("p2"), std::string::npos);
  }
}

TEST(Engine, ParticipantExceptionPropagates) {
  Engine engine(3);
  EXPECT_THROW(engine.run([](int id) {
                 this_engine().advance(1.0);
                 if (id == 1) {
                   throw std::runtime_error("boom");
                 }
                 // The others park; the engine must unwind them.
                 this_engine().block();
               }),
               std::runtime_error);
}

TEST(Engine, EventBudgetGuardsRunaways) {
  EngineOptions options;
  options.max_events = 50;
  Engine engine(1, options);
  EXPECT_THROW(engine.run([](int) {
                 Engine& e = this_engine();
                 for (;;) {
                   e.advance(1.0);
                 }
               }),
               caf2::FatalError);
}

TEST(Engine, RunTwiceRejected) {
  Engine engine(1);
  engine.run([](int) {});
  EXPECT_THROW(engine.run([](int) {}), caf2::UsageError);
}

TEST(Engine, CallbacksMayScheduleMoreCallbacks) {
  Engine engine(1);
  int depth_reached = 0;
  engine.run([&](int) {
    Engine& e = this_engine();
    std::function<void(int)> chain = [&](int depth) {
      depth_reached = depth;
      if (depth < 10) {
        e.post_in(1.0, [&, depth] { chain(depth + 1); });
      }
    };
    e.post_in(1.0, [&] { chain(1); });
    e.advance(30.0);
  });
  EXPECT_EQ(depth_reached, 10);
}

TEST(Engine, BlockOutsideParticipantRejected) {
  Engine engine(1);
  EXPECT_THROW(engine.block(), caf2::UsageError);
  EXPECT_THROW(engine.advance(1.0), caf2::UsageError);
  engine.run([](int) {});
}

TEST(Engine, CurrentContextHelpers) {
  EXPECT_FALSE(on_participant_thread());
  Engine engine(2);
  engine.run([&](int id) {
    EXPECT_TRUE(on_participant_thread());
    EXPECT_EQ(this_participant(), id);
    EXPECT_EQ(&this_engine(), &engine);
  });
}

TEST(Engine, NegativeAdvanceRejected) {
  Engine engine(1);
  EXPECT_THROW(engine.run([](int) { this_engine().advance(-1.0); }),
               caf2::UsageError);
}

}  // namespace
