/// Cross-module integration scenarios: whole kernels on disjoint subteams
/// concurrently, nested finish around kernels, and a mixed workload using
/// every construct at once.

#include <gtest/gtest.h>

#include "kernels/randomaccess.hpp"
#include "kernels/uts_scheduler.hpp"

namespace {

using namespace caf2;

RuntimeOptions int_options(int images) {
  RuntimeOptions options;
  options.num_images = images;
  options.net.latency_us = 2.0;
  options.net.bandwidth_bytes_per_us = 1000.0;
  options.net.handler_cost_us = 0.1;
  options.net.jitter_us = 0.5;
  options.max_events = 30'000'000;
  return options;
}

TEST(Integration, UtsAndRandomAccessOnDisjointSubteams) {
  // Half the machine runs UTS while the other half runs RandomAccess;
  // teams isolate their communication, collectives, and finish scopes.
  kernels::UtsConfig uts_config;
  uts_config.tree.b0 = 3.0;
  uts_config.tree.max_depth = 6;
  const std::uint64_t expected_nodes = uts_config.tree.count_tree();

  kernels::RaConfig ra_config;
  ra_config.log2_local_table = 6;
  ra_config.updates_per_image = 128;
  ra_config.bunch = 32;

  run(int_options(8), [&] {
    Team world = team_world();
    const int color = world.rank() < 4 ? 0 : 1;
    Team half = world.split(color, world.rank());
    if (color == 0) {
      const auto stats = kernels::uts_run(half, uts_config);
      EXPECT_EQ(stats.total_nodes, expected_nodes);
    } else {
      const auto stats = kernels::ra_run_function_shipping(half, ra_config);
      const std::uint64_t expect = kernels::ra_expected_checksum(
          half.size(), half.rank(), ra_config);
      EXPECT_EQ(stats.checksum, expect);
    }
    team_barrier(world);
  });
}

TEST(Integration, BackToBackKernelsOnTheSameTeam) {
  kernels::UtsConfig uts_config;
  uts_config.tree.b0 = 3.0;
  uts_config.tree.max_depth = 5;
  const std::uint64_t expected_nodes = uts_config.tree.count_tree();

  kernels::RaConfig ra_config;
  ra_config.log2_local_table = 5;
  ra_config.updates_per_image = 64;
  ra_config.bunch = 16;

  run(int_options(4), [&] {
    Team world = team_world();
    for (int round = 0; round < 2; ++round) {
      const auto uts = kernels::uts_run(world, uts_config);
      EXPECT_EQ(uts.total_nodes, expected_nodes) << "round " << round;
      const auto ra = kernels::ra_run_function_shipping(world, ra_config);
      EXPECT_EQ(ra.checksum, kernels::ra_expected_checksum(
                                 world.size(), world.rank(), ra_config))
          << "round " << round;
    }
  });
}

void seed_cell(Coref<long> cells, std::int64_t value) {
  cells.local()[0] += value;
}

TEST(Integration, EveryConstructInOneScenario) {
  // spawn + copy_async + collectives + events + cofence + nested finish,
  // with verifiable final state.
  run(int_options(6), [] {
    Team world = team_world();
    Team pairs = world.split(world.rank() / 2, world.rank());
    Coarray<long> cells(world, 2);
    cells[0] = 0;
    cells[1] = -1;
    CoEvent ready(world);
    team_barrier(world);

    finish(world, [&] {
      // Function shipping into every image.
      for (int t = 0; t < world.size(); ++t) {
        spawn<seed_cell>(t, cells.ref(), std::int64_t{world.rank()});
      }
      // Nested finish over the pair: swap cell[1] with the partner.
      finish(pairs, [&] {
        // Local buffer per image (NOT static/thread_local: images share one
        // OS thread under the fiber backend); cofence() below makes it
        // reusable before scope exit.
        std::vector<long> mine;
        mine.assign(1, 100L + world.rank());
        copy_async(cells.slice(pairs.world_rank(1 - pairs.rank()), 1, 1),
                   std::span<const long>(mine));
        cofence();  // mine reusable (staged)
      });
      // After the nested block the partner's value must be present.
      const int partner = pairs.world_rank(1 - pairs.rank());
      EXPECT_EQ(cells[1], 100 + partner);
      notify_event(ready((world.rank() + 1) % world.size()));
      ready.local().wait();
    });

    // Every image received the sum of all ranks via spawns.
    long expect = 0;
    for (int r = 0; r < world.size(); ++r) {
      expect += r;
    }
    EXPECT_EQ(cells[0], expect);

    // Collective epilogue over a sorted reduction.
    std::vector<std::uint64_t> keys{
        static_cast<std::uint64_t>((world.rank() * 7919) % 101)};
    Event sorted;
    sort_async<std::uint64_t>(world, keys, {.src_done = sorted.handle()});
    sorted.wait();
    const auto total_keys = allreduce<long>(
        world, static_cast<long>(keys.size()), RedOp::kSum);
    EXPECT_EQ(total_keys, world.size());
    team_barrier(world);
  });
}

}  // namespace
