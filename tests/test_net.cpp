/// Unit tests for the network model: the four-point message lifecycle
/// (initiation / staging / delivery / ack), staged source reads, jitter
/// reordering (non-FIFO channels), and traffic accounting.

#include <gtest/gtest.h>

#include <vector>

#include "net/network.hpp"
#include "sim/participant.hpp"

namespace {

using namespace caf2;
using namespace caf2::net;

NetworkParams test_params() {
  NetworkParams params;
  params.latency_us = 10.0;
  params.bandwidth_bytes_per_us = 100.0;  // 1 us per 100 bytes
  params.handler_cost_us = 0.0;
  params.ack_latency_us = 10.0;
  params.jitter_us = 0.0;
  return params;
}

TEST(Network, LifecycleTiming) {
  sim::Engine engine(2);
  Network network(engine, test_params(), 1);
  double staged_at = -1;
  double acked_at = -1;
  double delivered_at = -1;

  engine.run([&](int id) {
    sim::Engine& e = sim::this_engine();
    if (id == 0) {
      Message message;
      message.header.source = 0;
      message.header.dest = 1;
      message.header.handler = 99;
      message.payload.assign(200, 7);  // 2 us injection
      SendCallbacks callbacks;
      callbacks.on_staged = [&] { staged_at = e.now(); };
      callbacks.on_acked = [&] { acked_at = e.now(); };
      network.send(std::move(message), std::move(callbacks));
      e.advance(100.0);
    } else {
      e.block();
      delivered_at = e.now();
      auto got = network.mailbox(1).try_pop();
      ASSERT_TRUE(got.has_value());
      EXPECT_EQ(got->header.handler, 99u);
      EXPECT_EQ(got->payload.size(), 200u);
    }
  });
  EXPECT_DOUBLE_EQ(staged_at, 2.0);        // bytes / bandwidth
  EXPECT_DOUBLE_EQ(delivered_at, 12.0);    // + latency
  EXPECT_DOUBLE_EQ(acked_at, 22.0);        // + ack latency
}

TEST(Network, StagedReadHappensAtStageTimeNotCallTime) {
  // The source buffer is read when the transfer is injected; mutating it
  // after initiation but before staging corrupts the payload — the hazard
  // cofence exists to prevent.
  sim::Engine engine(2);
  Network network(engine, test_params(), 1);
  std::vector<std::uint8_t> received;

  engine.run([&](int id) {
    sim::Engine& e = sim::this_engine();
    if (id == 0) {
      std::vector<std::uint8_t> buffer(100, 1);
      MessageHeader header;
      header.source = 0;
      header.dest = 1;
      network.send_staged(header, buffer.size(), [&buffer] {
        return buffer;  // read at staging time
      });
      buffer.assign(100, 2);  // overwrite *before* staging (0.5 us later)
      e.advance(50.0);
    } else {
      e.block();
      auto got = network.mailbox(1).try_pop();
      ASSERT_TRUE(got.has_value());
      received = got->payload;
    }
  });
  ASSERT_EQ(received.size(), 100u);
  EXPECT_EQ(received[0], 2) << "staged read must see the overwritten buffer";
}

TEST(Network, JitterCanReorderDeliveries) {
  // With jitter comparable to the inter-send gap, two messages to the same
  // destination can arrive out of order: channels are not FIFO.
  NetworkParams params = test_params();
  params.jitter_us = 30.0;
  bool reordered_with_some_seed = false;
  for (std::uint64_t seed = 1; seed <= 20 && !reordered_with_some_seed;
       ++seed) {
    sim::Engine engine(2);
    Network network(engine, params, seed);
    std::vector<int> arrival_order;
    engine.run([&](int id) {
      sim::Engine& e = sim::this_engine();
      if (id == 0) {
        for (int k = 0; k < 4; ++k) {
          Message message;
          message.header.source = 0;
          message.header.dest = 1;
          message.payload.assign(4, static_cast<std::uint8_t>(k));
          network.send(std::move(message));
        }
        e.advance(200.0);
      } else {
        while (arrival_order.size() < 4) {
          if (auto got = network.mailbox(1).try_pop()) {
            arrival_order.push_back(got->payload[0]);
          } else {
            e.block();
          }
        }
      }
    });
    if (arrival_order != std::vector<int>{0, 1, 2, 3}) {
      reordered_with_some_seed = true;
    }
  }
  EXPECT_TRUE(reordered_with_some_seed)
      << "jitter never produced a reordering across 20 seeds";
}

TEST(Network, TrafficCountersPerImage) {
  sim::Engine engine(3);
  Network network(engine, test_params(), 1);
  engine.run([&](int id) {
    sim::Engine& e = sim::this_engine();
    if (id == 0) {
      for (int dest : {1, 2, 2}) {
        Message message;
        message.header.source = 0;
        message.header.dest = dest;
        message.payload.assign(10, 0);
        network.send(std::move(message));
      }
    }
    e.advance(100.0);
  });
  EXPECT_EQ(network.messages_sent(), 3u);
  EXPECT_EQ(network.bytes_sent(), 30u);
  EXPECT_EQ(network.traffic(0).messages_out, 3u);
  EXPECT_EQ(network.traffic(1).messages_in, 1u);
  EXPECT_EQ(network.traffic(2).messages_in, 2u);
  EXPECT_EQ(network.traffic(2).bytes_in, 20u);
  network.reset_traffic();
  EXPECT_EQ(network.traffic(2).messages_in, 0u);
}

TEST(Network, InstantParamsDeliverAtOnce) {
  sim::Engine engine(2);
  Network network(engine, NetworkParams::instant(), 1);
  double delivered_at = -1;
  engine.run([&](int id) {
    sim::Engine& e = sim::this_engine();
    if (id == 0) {
      Message message;
      message.header.source = 0;
      message.header.dest = 1;
      message.payload.assign(1000, 0);
      network.send(std::move(message));
      e.advance(1.0);
    } else {
      e.block();
      delivered_at = e.now();
    }
  });
  EXPECT_DOUBLE_EQ(delivered_at, 0.0);
}

TEST(Mailbox, FifoAndCounters) {
  Mailbox mailbox;
  EXPECT_TRUE(mailbox.empty());
  EXPECT_FALSE(mailbox.try_pop().has_value());
  for (int i = 0; i < 3; ++i) {
    Message message;
    message.header.handler = static_cast<HandlerId>(i);
    mailbox.push(std::move(message));
  }
  EXPECT_EQ(mailbox.size(), 3u);
  EXPECT_EQ(mailbox.delivered_total(), 3u);
  EXPECT_EQ(mailbox.try_pop()->header.handler, 0u);
  EXPECT_EQ(mailbox.try_pop()->header.handler, 1u);
  EXPECT_EQ(mailbox.try_pop()->header.handler, 2u);
  EXPECT_TRUE(mailbox.empty());
  EXPECT_EQ(mailbox.delivered_total(), 3u);
}

TEST(Network, OutOfRangeDestinationRejected) {
  sim::Engine engine(2);
  Network network(engine, test_params(), 1);
  engine.run([&](int id) {
    if (id == 0) {
      Message message;
      message.header.source = 0;
      message.header.dest = 9;
      EXPECT_THROW(network.send(std::move(message)), UsageError);
    }
  });
}

}  // namespace
