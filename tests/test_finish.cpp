/// Tests for the finish construct: global completion of implicit operations
/// and transitive spawn chains, the L+1 round bound (paper Theorem 1),
/// nesting, subteam scopes, counting conservation, the Fig. 5
/// barrier-failure scenario, and equivalence of all four detectors.

#include <gtest/gtest.h>

#include <vector>

#include "core/caf2.hpp"

namespace {

using namespace caf2;

RuntimeOptions finish_options(int images, double latency = 3.0,
                              double jitter = 1.0) {
  RuntimeOptions options;
  options.num_images = images;
  options.net.latency_us = latency;
  options.net.bandwidth_bytes_per_us = 500.0;
  options.net.handler_cost_us = 0.1;
  options.net.jitter_us = jitter;  // non-FIFO channels
  options.max_events = 10'000'000;
  return options;
}


void bump(Coref<long> counter) { counter.local()[0] += 1; }

void chain(std::int32_t remaining, Coref<long> counter) {
  counter.local()[0] += 1;
  if (remaining > 0) {
    const int next = (this_image() + 1) % num_images();
    spawn<chain>(next, remaining - 1, counter);
  }
}

void fanout(std::int32_t depth, Coref<long> counter) {
  counter.local()[0] += 1;
  if (depth > 0) {
    for (int t = 0; t < num_images(); ++t) {
      if (t != this_image()) {
        spawn<fanout>(t, depth - 1, counter);
      }
    }
  }
}

TEST(Finish, EmptyFinishUsesOneRound) {
  // Paper Theorem 1 base case: L = 0 => one allreduce detects termination.
  run(finish_options(4), [] {
    finish(team_world(), [] {});
    EXPECT_EQ(last_finish_report().rounds, 1);
  });
}

TEST(Finish, GuaranteesGlobalCompletionOfSpawns) {
  run(finish_options(4), [] {
    Team world = team_world();
    Coarray<long> counter(world, 1);
    counter[0] = 0;
    team_barrier(world);
    finish(world, [&] {
      for (int t = 0; t < world.size(); ++t) {
        spawn<bump>(t, counter.ref());
      }
    });
    EXPECT_EQ(counter[0], world.size());
    team_barrier(world);
  });
}

class ChainDepths : public ::testing::TestWithParam<int> {};

TEST_P(ChainDepths, RoundsBoundedByChainLengthPlusOne) {
  // Property from paper Theorem 1: detection needs at most L+1 reduction
  // waves, where L is the longest transitive spawn chain.
  const int depth = GetParam();
  run(finish_options(4), [depth] {
    Team world = team_world();
    Coarray<long> counter(world, 1);
    counter[0] = 0;
    team_barrier(world);
    finish(world, [&] {
      if (world.rank() == 0) {
        spawn<chain>(1, static_cast<std::int32_t>(depth), counter.ref());
      }
    });
    const int rounds = last_finish_report().rounds;
    EXPECT_LE(rounds, depth + 2);  // chain length = depth + 1 spawns
    EXPECT_GE(rounds, 1);
    const long total = allreduce<long>(world, counter[0], RedOp::kSum);
    EXPECT_EQ(total, depth + 1);
    team_barrier(world);
  });
}

INSTANTIATE_TEST_SUITE_P(Depths, ChainDepths,
                         ::testing::Values(0, 1, 2, 4, 8));

TEST(Finish, TransitiveFanoutFullyCounted) {
  run(finish_options(3), [] {
    Team world = team_world();
    Coarray<long> counter(world, 1);
    counter[0] = 0;
    team_barrier(world);
    finish(world, [&] {
      if (world.rank() == 0) {
        spawn<fanout>(1, std::int32_t{2}, counter.ref());
      }
    });
    // Execution tree: 1 + 2 + 2*2 = 7 executions for depth 2 with p=3.
    const long total = allreduce<long>(world, counter[0], RedOp::kSum);
    EXPECT_EQ(total, 7);
    team_barrier(world);
  });
}

TEST(Finish, NestedBlocksWithDifferentTeams) {
  run(finish_options(6), [] {
    Team world = team_world();
    Team sub = world.split(world.rank() % 2, world.rank());
    Coarray<long> counter(world, 1);
    counter[0] = 0;
    team_barrier(world);
    finish(world, [&] {
      // Outer spawn before the nested block.
      spawn<bump>((this_image() + 1) % world.size(), counter.ref());
      // Nested finish over the parity subteam.
      finish(sub, [&] {
        spawn<bump>(sub.world_rank((sub.rank() + 1) % sub.size()),
                    counter.ref());
      });
      // The nested scope completed: both of this image's spawns will be
      // globally complete when the outer scope ends.
    });
    const long total = allreduce<long>(world, counter[0], RedOp::kSum);
    EXPECT_EQ(total, 2L * world.size());
    team_barrier(world);
  });
}

TEST(Finish, SequentialScopesAreIndependent) {
  run(finish_options(3), [] {
    Team world = team_world();
    Coarray<long> counter(world, 1);
    counter[0] = 0;
    team_barrier(world);
    for (int round = 0; round < 5; ++round) {
      finish(world, [&] {
        spawn<bump>((this_image() + 1) % world.size(), counter.ref());
      });
      EXPECT_EQ(counter[0], round + 1);  // each scope completed in turn
      // Keep fast images from starting the next round before the check.
      team_barrier(world);
    }
    team_barrier(world);
  });
}

TEST(Finish, SubteamFinishDoesNotInvolveOutsiders) {
  run(finish_options(5), [] {
    Team world = team_world();
    Team pair = world.split(world.rank() < 2 ? 0 : -1, world.rank());
    Coarray<long> counter(world, 1);
    counter[0] = 0;
    team_barrier(world);
    if (pair.valid()) {
      finish(pair, [&] {
        spawn<bump>(pair.world_rank(1 - pair.rank()), counter.ref());
      });
      EXPECT_EQ(counter[0], 1);
    }
    team_barrier(world);
  });
}

void fig5_f2(Coref<long> flag, std::vector<std::uint8_t> ballast) {
  (void)ballast;
  flag.local()[0] = 1;
}

void fig5_f1(std::int32_t r, Coref<long> flag) {
  // Large argument: slow injection widens the race window.
  spawn<fig5_f2>(r, flag, std::vector<std::uint8_t>(3000, 1));
}

TEST(Finish, BarrierIsNotEnough) {
  // Paper Fig. 5: p ships f1 to q, which ships f2 to r. A barrier entered
  // after f1's completion event can complete before f2 lands; finish cannot.
  RuntimeOptions options = finish_options(3, /*latency=*/2.0, /*jitter=*/0.0);
  options.net.bandwidth_bytes_per_us = 50.0;  // 3000 B => 60 us injection
  run(options, [] {
    Team world = team_world();
    Coarray<long> flag(world, 1);
    flag[0] = 0;
    team_barrier(world);

    // Barrier-based attempt.
    if (world.rank() == 0) {
      Event f1_done;
      spawn<fig5_f1>(f1_done, 1, std::int32_t{2}, flag.ref());
      f1_done.wait();
    }
    team_barrier(world);
    if (world.rank() == 2) {
      EXPECT_EQ(flag[0], 0) << "the barrier should have missed f2";
    }
    // Drain the stray f2 before the finish attempt.
    compute(300.0);
    team_barrier(world);
    flag[0] = 0;
    team_barrier(world);

    // finish-based attempt.
    finish(world, [&] {
      if (world.rank() == 0) {
        spawn<fig5_f1>(1, std::int32_t{2}, flag.ref());
      }
    });
    if (world.rank() == 2) {
      EXPECT_EQ(flag[0], 1) << "finish must wait for the transitive spawn";
    }
    team_barrier(world);
  });
}

TEST(Finish, AllDetectorsProduceGlobalCompletion) {
  for (auto detector :
       {DetectorKind::kEpoch, DetectorKind::kSpeculative,
        DetectorKind::kFourCounter, DetectorKind::kCentralized}) {
    run(finish_options(4), [detector] {
      Team world = team_world();
      Coarray<long> counter(world, 1);
      counter[0] = 0;
      team_barrier(world);
      finish(
          world,
          [&] {
            spawn<chain>((this_image() + 1) % world.size(), std::int32_t{3},
                         counter.ref());
          },
          FinishOptions{detector});
      const long total = allreduce<long>(world, counter[0], RedOp::kSum);
      EXPECT_EQ(total, 4L * world.size())
          << "detector " << static_cast<int>(detector);
      team_barrier(world);
    });
  }
}

TEST(Finish, FourCounterNeedsAtLeastTwoWaves) {
  run(finish_options(4), [] {
    finish(team_world(), [] {}, FinishOptions{DetectorKind::kFourCounter});
    EXPECT_GE(last_finish_report().rounds, 2)
        << "four-counter always pays a confirming wave";
  });
}

TEST(Finish, ImplicitCopiesGloballyCompleteAtEnd) {
  run(finish_options(4), [] {
    Team world = team_world();
    Coarray<int> ring(world, 16);
    for (std::size_t i = 0; i < 16; ++i) {
      ring[i] = -1;
    }
    team_barrier(world);
    std::vector<int> payload(16, world.rank());
    finish(world, [&] {
      copy_async(ring((world.rank() + 1) % world.size()),
                 std::span<const int>(payload));
    });
    const int prev = (world.rank() + world.size() - 1) % world.size();
    EXPECT_EQ(ring[0], prev);
    team_barrier(world);
  });
}

TEST(Finish, FinishScopeRaii) {
  run(finish_options(3), [] {
    Team world = team_world();
    Coarray<long> counter(world, 1);
    counter[0] = 0;
    team_barrier(world);
    {
      FinishScope scope(world);
      spawn<bump>((this_image() + 1) % world.size(), counter.ref());
      scope.end();
      EXPECT_EQ(counter[0], 1);
    }
    // end() is idempotent; the destructor must not run detection twice.
    team_barrier(world);
  });
}

TEST(Finish, ReportsDetectionTime) {
  run(finish_options(4, /*latency=*/10.0), [] {
    finish(team_world(), [] {});
    const FinishReport report = last_finish_report();
    EXPECT_GE(report.detect_us, 10.0);  // at least one allreduce of hops
    EXPECT_EQ(report.rounds, 1);
  });
}

TEST(Finish, NonMemberRejected) {
  run(finish_options(4), [] {
    Team world = team_world();
    Team evens = world.split(world.rank() % 2 == 0 ? 1 : -1, world.rank());
    if (!evens.valid()) {
      EXPECT_THROW(finish(Team{}, [] {}), UsageError);
    }
    team_barrier(world);
  });
}

}  // namespace
