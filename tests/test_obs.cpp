/// Tests for the caf2::obs subsystem (DESIGN.md §4.9): span recording,
/// metrics, exporters, and the critical-path blame analyzer.
///
/// The load-bearing properties:
///  - enabling obs does not perturb the run (same events, same virtual time,
///    same context switches — recording only appends to buffers);
///  - captures are deterministic: byte-identical text exports across the
///    thread and fiber execution backends, with and without injected faults;
///  - blame attribution matches the paper's cost model: cofence < events <
///    finish at the producer of the Fig. 12 micro-benchmark, and time added
///    by retransmissions lands in the network bucket, not finish-wait;
///  - memory caps (span tracks and the engine trace) drop instead of grow.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <span>
#include <string>
#include <vector>

#include "core/caf2.hpp"
#include "obs/blame.hpp"
#include "obs/export.hpp"
#include "sim/engine.hpp"
#include "sim/fiber.hpp"
#include "sim/participant.hpp"

namespace {

using namespace caf2;

RuntimeOptions obs_options(int images) {
  RuntimeOptions options;
  options.num_images = images;
  options.net = NetworkParams::gemini_like();
  options.obs.enabled = true;
  // Obs capture runs sharded too (tests/test_shards.cpp covers that); here we
  // pin shards=1 so the serial-trace expectations below stay stable even when
  // CAF2_SIM_SHARDS is set in the environment (explicit beats env).
  options.shards = 1;
  return options;
}

/// A workload touching every span source: barrier, finish, puts, cofence,
/// an explicit event, a spawn, and modeled compute.
void noop_fn() {}

void mixed_workload() {
  Team world = team_world();
  Coarray<double> data(world, 64);
  team_barrier(world);
  finish(world, [&] {
    if (world.rank() == 0) {
      std::vector<double> src(64, 1.5);
      for (int t = 1; t < world.size(); ++t) {
        copy_async(data(t), std::span<const double>(src));
      }
      cofence();
      Event delivered;
      copy_async(data(world.size() - 1), std::span<const double>(src),
                 {.dst_done = delivered.handle()});
      delivered.wait();
      spawn<noop_fn>(1 % world.size());
    }
  });
  compute(3.0);
  team_barrier(world);
}

/// --- non-perturbation --------------------------------------------------------

TEST(Obs, EnablingObsDoesNotPerturbTheRun) {
  RuntimeOptions off = obs_options(4);
  off.obs.enabled = false;
  const RunStats without = run_stats(off, mixed_workload);
  const RunStats with = run_stats(obs_options(4), mixed_workload);

  EXPECT_EQ(without.obs, nullptr);  // disabled = no capture, no recorder
  ASSERT_NE(with.obs, nullptr);

  // The deterministic RunStats fields must be bit-identical: recording
  // appends to buffers and never schedules events.
  EXPECT_EQ(without.events, with.events);
  EXPECT_EQ(without.virtual_us, with.virtual_us);
  EXPECT_EQ(without.context_switches, with.context_switches);
}

/// --- capture shape -----------------------------------------------------------

TEST(Obs, CaptureTilesTimelinesAndLinksFlights) {
  const RunStats stats = run_stats(obs_options(4), mixed_workload);
  ASSERT_NE(stats.obs, nullptr);
  const obs::Capture& capture = *stats.obs;

  ASSERT_EQ(capture.images, 4);
  ASSERT_EQ(capture.tracks.size(), 5u);  // 4 images + network
  EXPECT_EQ(capture.end_us, stats.virtual_us);

  // kCompute/kBlocked tile each image's timeline: in order, non-overlapping.
  for (int image = 0; image < capture.images; ++image) {
    double cursor = 0.0;
    bool saw_timeline_span = false;
    for (const obs::Span& span : capture.image_track(image).spans) {
      if (span.kind != obs::SpanKind::kCompute &&
          span.kind != obs::SpanKind::kBlocked) {
        continue;
      }
      saw_timeline_span = true;
      EXPECT_GE(span.begin, cursor - 1e-9);
      EXPECT_GE(span.end, span.begin);
      cursor = span.end;
    }
    EXPECT_TRUE(saw_timeline_span) << "image " << image;
  }

  // The network track carries the flights, and at least one blocked span is
  // parented to a flight (the wait it unblocked) — the DAG edge the blame
  // analyzer and critical path walk.
  ASSERT_FALSE(capture.net_track().spans.empty());
  std::vector<std::uint64_t> flight_ids;
  for (const obs::Span& span : capture.net_track().spans) {
    EXPECT_EQ(span.kind, obs::SpanKind::kFlight);
    flight_ids.push_back(span.id);
  }
  bool linked = false;
  for (int image = 0; image < capture.images && !linked; ++image) {
    for (const obs::Span& span : capture.image_track(image).spans) {
      if (span.kind == obs::SpanKind::kBlocked && span.parent != 0) {
        linked = std::find(flight_ids.begin(), flight_ids.end(),
                           span.parent) != flight_ids.end();
        if (linked) {
          break;
        }
      }
    }
  }
  EXPECT_TRUE(linked);

  // Metrics caught the traffic.
  std::uint64_t sent = 0;
  std::uint64_t handlers = 0;
  std::uint64_t finishes = 0;
  for (const obs::Metrics& m : capture.metrics) {
    sent += m.counter(obs::Counter::kMessagesSent);
    handlers += m.counter(obs::Counter::kHandlersRun);
    finishes += m.counter(obs::Counter::kFinishScopes);
    EXPECT_GT(m.hist(obs::Hist::kBlockedTime).count, 0u);
  }
  EXPECT_GT(sent, 0u);
  EXPECT_GT(handlers, 0u);
  EXPECT_EQ(finishes, 4u);  // one finish scope per image
}

/// --- cross-backend determinism ----------------------------------------------

TEST(Obs, ThreadsAndFibersRecordByteIdenticalCaptures) {
  if (!sim::fibers_supported()) {
    GTEST_SKIP() << "fiber backend unavailable in this build";
  }
  if (std::getenv("CAF2_SIM_BACKEND") != nullptr) {
    GTEST_SKIP() << "backend pinned by CAF2_SIM_BACKEND";
  }
  RuntimeOptions threads = obs_options(4);
  threads.sim_backend = ExecBackend::kThreads;
  RuntimeOptions fibers = obs_options(4);
  fibers.sim_backend = ExecBackend::kFibers;

  const RunStats a = run_stats(threads, mixed_workload);
  const RunStats b = run_stats(fibers, mixed_workload);
  ASSERT_NE(a.obs, nullptr);
  ASSERT_NE(b.obs, nullptr);
  ASSERT_NE(a.obs->backend, b.obs->backend);  // really compared two backends

  // to_text excludes the backend field precisely so this holds bytewise.
  EXPECT_EQ(obs::to_text(*a.obs), obs::to_text(*b.obs));

  const obs::BlameReport ra = obs::analyze_blame(*a.obs);
  const obs::BlameReport rb = obs::analyze_blame(*b.obs);
  EXPECT_EQ(obs::to_text(ra), obs::to_text(rb));
  EXPECT_EQ(ra.critical_path_us, rb.critical_path_us);
  EXPECT_EQ(ra.critical_path_hops, rb.critical_path_hops);
}

/// --- fault attribution -------------------------------------------------------

/// Wire parameters with a deterministic (jitter-free) reliable protocol.
NetworkParams reliable_wire() {
  NetworkParams params;
  params.latency_us = 10.0;
  params.bandwidth_bytes_per_us = 100.0;
  params.handler_cost_us = 0.0;
  params.ack_latency_us = 10.0;
  params.jitter_us = 0.0;
  params.reliability.mode = ReliabilityParams::Mode::kOn;
  return params;
}

/// Rank 0 spawns one tracked no-op to rank 1 inside a finish; both images
/// then sit in termination detection until it (and its ack) lands.
void spawn_in_finish() {
  Team world = team_world();
  finish(world, [&] {
    if (world.rank() == 0) {
      spawn<noop_fn>(1);
    }
  });
}

TEST(Obs, RetransmitDelayBlamedOnNetworkNotFinishWait) {
  // Two images: the dropped message delays exactly the two endpoints, and
  // both carry the retransmit interval that re-attribution subtracts. (With
  // more images, bystanders stall in detection waves transitively — time
  // that *is* finish-wait from their local point of view.)
  RuntimeOptions clean = obs_options(2);
  clean.net = reliable_wire();

  RuntimeOptions faulty = clean;
  // Drop the first delivery attempt of the first message on link 0 -> 1:
  // the spawn above. It is retransmitted one RTO (~2x round trip) later.
  faulty.net.faults.scripted.push_back(
      {.source = 0, .dest = 1, .nth = 1, .kind = FaultKind::kDrop});

  const RunStats clean_stats = run_stats(clean, spawn_in_finish);
  const RunStats faulty_stats = run_stats(faulty, spawn_in_finish);
  ASSERT_NE(clean_stats.obs, nullptr);
  ASSERT_NE(faulty_stats.obs, nullptr);
  ASSERT_EQ(faulty_stats.faults.deliveries_dropped, 1u);
  ASSERT_EQ(faulty_stats.faults.retransmits, 1u);

  const obs::BlameReport clean_report = obs::analyze_blame(*clean_stats.obs);
  const obs::BlameReport faulty_report =
      obs::analyze_blame(*faulty_stats.obs);

  // The images spent the retransmission delay parked inside finish's
  // detector, but that time is re-attributed to the network: the network
  // bucket absorbs (at least) the delay, and finish-wait stays put.
  EXPECT_GT(faulty_report.retransmit_us, 10.0);
  EXPECT_GT(faulty_report.total[obs::Blame::kNetwork],
            clean_report.total[obs::Blame::kNetwork] + 10.0);
  EXPECT_NEAR(faulty_report.total[obs::Blame::kFinishWait],
              clean_report.total[obs::Blame::kFinishWait], 5.0);

  // Retransmission counters made it into the metrics.
  std::uint64_t retransmits = 0;
  for (const obs::Metrics& m : faulty_stats.obs->metrics) {
    retransmits += m.counter(obs::Counter::kMessagesRetransmitted);
  }
  EXPECT_EQ(retransmits, 1u);
}

TEST(Obs, FaultyCapturesAreBackendIdenticalToo) {
  if (!sim::fibers_supported()) {
    GTEST_SKIP() << "fiber backend unavailable in this build";
  }
  if (std::getenv("CAF2_SIM_BACKEND") != nullptr) {
    GTEST_SKIP() << "backend pinned by CAF2_SIM_BACKEND";
  }
  RuntimeOptions base = obs_options(4);
  base.net = reliable_wire();
  base.net.faults.scripted.push_back(
      {.source = 0, .dest = 1, .nth = 1, .kind = FaultKind::kDrop});

  RuntimeOptions threads = base;
  threads.sim_backend = ExecBackend::kThreads;
  RuntimeOptions fibers = base;
  fibers.sim_backend = ExecBackend::kFibers;

  const RunStats a = run_stats(threads, spawn_in_finish);
  const RunStats b = run_stats(fibers, spawn_in_finish);
  ASSERT_NE(a.obs, nullptr);
  ASSERT_NE(b.obs, nullptr);
  EXPECT_EQ(obs::to_text(*a.obs), obs::to_text(*b.obs));
  EXPECT_EQ(obs::to_text(obs::analyze_blame(*a.obs)),
            obs::to_text(obs::analyze_blame(*b.obs)));
}

/// --- the paper's cost ordering (Fig. 12 in miniature) ------------------------

enum class Mechanism { kCofence, kEvents, kFinish };

/// One producer iteration of the Fig. 11 micro-benchmark under the given
/// completion mechanism; returns the producer's wait time in that
/// mechanism's blame bucket.
double producer_wait(Mechanism mechanism, int images) {
  const RunStats stats = run_stats(obs_options(images), [&] {
    Team world = team_world();
    Coarray<std::uint8_t> inbuf(world, 80);
    std::vector<std::uint8_t> src(80, 0xAB);
    team_barrier(world);
    finish(world, [&] {
      if (mechanism == Mechanism::kFinish) {
        // Global completion per iteration: a collective inner finish (the
        // producer's wait is the detector, blamed kFinishWait).
        for (int iter = 0; iter < 10; ++iter) {
          finish(world, [&] {
            if (world.rank() == 0) {
              for (int c = 0; c < 5; ++c) {
                copy_async(inbuf((iter + c) % world.size()),
                           std::span<const std::uint8_t>(src));
              }
            }
          });
          if (world.rank() == 0) {
            compute(2.0);
          }
        }
        return;
      }
      if (world.rank() != 0) {
        return;
      }
      for (int iter = 0; iter < 10; ++iter) {
        if (mechanism == Mechanism::kCofence) {
          for (int c = 0; c < 5; ++c) {
            copy_async(inbuf((iter + c) % world.size()),
                       std::span<const std::uint8_t>(src));
          }
          cofence();
        } else {
          Event delivered;
          for (int c = 0; c < 5; ++c) {
            copy_async(inbuf((iter + c) % world.size()),
                       std::span<const std::uint8_t>(src),
                       {.dst_done = delivered.handle()});
          }
          delivered.wait_many(5);
        }
        compute(2.0);
      }
    });
    team_barrier(world);
  });
  const obs::BlameReport report = obs::analyze_blame(*stats.obs);
  switch (mechanism) {
    case Mechanism::kCofence:
      return report.per_image[0][obs::Blame::kCofenceWait];
    case Mechanism::kEvents:
      return report.per_image[0][obs::Blame::kEventWait];
    case Mechanism::kFinish:
      return report.per_image[0][obs::Blame::kFinishWait];
  }
  return 0.0;
}

TEST(Obs, BlameReproducesTheSyncSpectrumOrdering) {
  const double cofence_wait = producer_wait(Mechanism::kCofence, 8);
  const double event_wait = producer_wait(Mechanism::kEvents, 8);
  const double finish_wait = producer_wait(Mechanism::kFinish, 8);
  EXPECT_GT(cofence_wait, 0.0);
  EXPECT_LT(cofence_wait, event_wait);
  EXPECT_LT(event_wait, finish_wait);
}

/// --- exporters ---------------------------------------------------------------

TEST(Obs, ChromeTraceAndTextExportsAreWellFormed) {
  const RunStats stats = run_stats(obs_options(4), mixed_workload);
  ASSERT_NE(stats.obs, nullptr);

  const std::string json = obs::to_chrome_trace(*stats.obs);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"network\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  const std::size_t last = json.find_last_not_of(" \n");
  ASSERT_NE(last, std::string::npos);
  EXPECT_EQ(json[last], '}');

  const std::string text = obs::to_text(*stats.obs);
  EXPECT_NE(text.find("obs capture images=4"), std::string::npos);
  EXPECT_NE(text.find("finish_detect"), std::string::npos);
  EXPECT_NE(text.find("messages_sent"), std::string::npos);

  // Two identical runs export identical bytes.
  const RunStats again = run_stats(obs_options(4), mixed_workload);
  EXPECT_EQ(text, obs::to_text(*again.obs));
  EXPECT_EQ(json, obs::to_chrome_trace(*again.obs));
}

/// --- memory caps -------------------------------------------------------------

TEST(Obs, SpanCapDropsAndCounts) {
  RuntimeOptions options = obs_options(4);
  options.obs.max_image_track_bytes = 4 * sizeof(obs::Span);
  const RunStats stats = run_stats(options, mixed_workload);
  ASSERT_NE(stats.obs, nullptr);

  std::uint64_t dropped_total = 0;
  for (int image = 0; image < stats.obs->images; ++image) {
    const obs::Track& track = stats.obs->image_track(image);
    EXPECT_LE(track.spans.size(), 4u);
    dropped_total += track.dropped;
    EXPECT_EQ(track.dropped, stats.obs->metrics[static_cast<std::size_t>(
                                 image)]
                                 .counter(obs::Counter::kSpansDropped));
  }
  EXPECT_GT(dropped_total, 0u);
  EXPECT_NE(obs::to_text(*stats.obs).find("dropped="), std::string::npos);
}

TEST(Obs, EngineTraceCapBoundsTheDeterminismTrace) {
  sim::EngineOptions options;
  options.record_trace = true;
  options.max_trace_entries = 10;
  sim::Engine engine(4, options);
  engine.run([](int id) {
    sim::Engine& e = sim::this_engine();
    for (int i = 0; i < 50; ++i) {
      e.advance(0.1 * (id + 1));
    }
  });
  EXPECT_LE(engine.trace().size(), 10u);
  EXPECT_GT(engine.trace_dropped(), 0u);
}

}  // namespace
