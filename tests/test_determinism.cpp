/// Determinism regression tests for the scheduler fast path (DESIGN.md §4.6)
/// and the execution backends (DESIGN.md §4.8).
///
/// The self-wake fast path, the pooled Call-event storage, and the fiber
/// execution backend are pure performance transformations: the engine must
/// produce *bit-identical* results with them enabled, disabled via
/// EngineOptions, or disabled via the CAF2_SIM_NO_FASTPATH /
/// CAF2_SIM_BACKEND environment variables. These tests pin that down at
/// both layers:
///  - engine level: recorded traces (every scheduler decision) and context
///    switch counts must match entry for entry between fast path on and
///    off, and between the thread and fiber backends;
///  - runtime level: a seeded RandomAccess workload over the jittered
///    Gemini-class network must dispatch the same number of events, end at
///    the same virtual time, and compute the same kernel timings on every
///    backend x fastpath combination — with and without injected faults.
///
/// Deterministic RunStats fields (events, virtual_us, context_switches,
/// faults) are compared bit-for-bit; backend/fastpath/peak_rss_bytes
/// describe the configuration or the host and are deliberately excluded.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/caf2.hpp"
#include "core/detectors.hpp"
#include "kernels/randomaccess.hpp"
#include "runtime/internal.hpp"
#include "runtime/runtime.hpp"
#include "sim/engine.hpp"
#include "sim/participant.hpp"

namespace {

using namespace caf2::sim;

/// A workload that exercises every fast-path decision point: self-wakes
/// (advance with an empty/later heap), contested wakes (equal-time events
/// from other participants), Call callbacks, blocking, and stray unblocks.
void mixed_body(int id) {
  Engine& e = this_engine();
  for (int i = 0; i < 25; ++i) {
    e.advance(0.1 * (id + 1));
    if (i % 3 == 0) {
      e.post_in(0.05, [] {});
    }
    if (i % 7 == 0) {
      e.unblock((id + 1) % e.size());
    }
    if (i % 5 == 0) {
      e.yield();
    }
  }
}

struct EngineResult {
  std::string trace;
  std::uint64_t context_switches = 0;
  std::uint64_t events = 0;
};

EngineResult traced_engine_run(bool enable_fastpath,
                               caf2::ExecBackend backend) {
  EngineOptions options;
  options.record_trace = true;
  options.enable_fastpath = enable_fastpath;
  options.backend = backend;
  Engine engine(4, options);
  engine.run(mixed_body);
  EXPECT_EQ(engine.fastpath_enabled(), enable_fastpath);
  EXPECT_GT(engine.trace().size(), 100u);
  return {render_trace(engine.trace()), engine.context_switch_count(),
          engine.event_count()};
}

std::string traced_run(bool enable_fastpath) {
  return traced_engine_run(enable_fastpath, caf2::ExecBackend::kAuto).trace;
}

TEST(Determinism, EngineTraceIdenticalAcrossRepeats) {
  EXPECT_EQ(traced_run(true), traced_run(true));
}

TEST(Determinism, EngineTraceIdenticalFastPathOnAndOff) {
  EXPECT_EQ(traced_run(true), traced_run(false));
}

TEST(Determinism, EnvVarForcesSlowPathWithIdenticalTrace) {
  const std::string baseline = traced_run(true);
  ASSERT_EQ(setenv("CAF2_SIM_NO_FASTPATH", "1", 1), 0);
  EngineOptions options;
  options.record_trace = true;
  options.enable_fastpath = true;  // env var must win
  Engine engine(4, options);
  engine.run(mixed_body);
  unsetenv("CAF2_SIM_NO_FASTPATH");
  EXPECT_FALSE(engine.fastpath_enabled());
  EXPECT_EQ(render_trace(engine.trace()), baseline);
}

/// --- thread backend vs fiber backend (DESIGN.md §4.8) -----------------------
///
/// The backends must make exactly the same scheduling decisions: recorded
/// traces, event counts, and context-switch counts are compared bit-for-bit
/// on every fastpath setting. Skipped where the fiber backend is unavailable
/// (e.g. under ThreadSanitizer, which cannot instrument fiber switches).

TEST(Determinism, EngineTraceIdenticalThreadsVsFibers) {
  if (!fibers_supported()) {
    GTEST_SKIP() << "fiber backend unavailable in this build";
  }
  for (const bool fastpath : {true, false}) {
    const EngineResult threads =
        traced_engine_run(fastpath, caf2::ExecBackend::kThreads);
    const EngineResult fibers =
        traced_engine_run(fastpath, caf2::ExecBackend::kFibers);
    EXPECT_EQ(threads.trace, fibers.trace) << "fastpath=" << fastpath;
    EXPECT_EQ(threads.events, fibers.events) << "fastpath=" << fastpath;
    EXPECT_EQ(threads.context_switches, fibers.context_switches)
        << "fastpath=" << fastpath;
  }
}

TEST(Determinism, ContextSwitchCountInvariantUnderFastPath) {
  // context_switches counts token handoffs (dispatches that move the token
  // to a different participant), which is a pure function of the dispatch
  // order — so it must not change when the fast path elides heap traffic.
  const EngineResult fast =
      traced_engine_run(true, caf2::ExecBackend::kAuto);
  const EngineResult slow =
      traced_engine_run(false, caf2::ExecBackend::kAuto);
  EXPECT_GT(fast.context_switches, 0u);
  EXPECT_EQ(fast.context_switches, slow.context_switches);
}

/// One full-stack seeded run: RandomAccess with function shipping on the
/// jittered Gemini-class interconnect, returning simulator statistics plus
/// the kernel's own virtual-time measurement.
struct StackResult {
  caf2::RunStats stats;
  double elapsed_us = 0.0;

  bool operator==(const StackResult& other) const {
    return stats.events == other.stats.events &&
           stats.virtual_us == other.stats.virtual_us &&
           elapsed_us == other.elapsed_us;
  }
};

StackResult stack_run(bool fastpath,
                      caf2::ExecBackend backend = caf2::ExecBackend::kAuto) {
  caf2::RuntimeOptions options;
  options.num_images = 4;
  options.net = caf2::NetworkParams::gemini_like();
  options.seed = 20130520;
  options.sim_fastpath = fastpath;
  options.sim_backend = backend;
  StackResult result;
  result.stats = caf2::run_stats(options, [&] {
    caf2::kernels::RaConfig config;
    config.log2_local_table = 10;
    config.updates_per_image = 256;
    config.bunch = 64;
    const auto stats =
        caf2::kernels::ra_run_function_shipping(caf2::team_world(), config);
    if (caf2::this_image() == 0) {
      result.elapsed_us = stats.elapsed_us;
    }
  });
  EXPECT_EQ(result.stats.fastpath, fastpath);
  EXPECT_GT(result.stats.events, 1000u);
  return result;
}

TEST(Determinism, RuntimeWorkloadIdenticalAcrossRepeats) {
  const StackResult first = stack_run(true);
  const StackResult second = stack_run(true);
  EXPECT_EQ(first.stats.events, second.stats.events);
  EXPECT_EQ(first.stats.virtual_us, second.stats.virtual_us);
  EXPECT_EQ(first.elapsed_us, second.elapsed_us);
}

TEST(Determinism, RuntimeWorkloadIdenticalFastPathOnAndOff) {
  const StackResult fast = stack_run(true);
  const StackResult slow = stack_run(false);
  EXPECT_EQ(fast.stats.events, slow.stats.events);
  EXPECT_EQ(fast.stats.virtual_us, slow.stats.virtual_us);
  EXPECT_EQ(fast.elapsed_us, slow.elapsed_us);
}

TEST(Determinism, RuntimeWorkloadIdenticalThreadsVsFibers) {
  if (!fibers_supported()) {
    GTEST_SKIP() << "fiber backend unavailable in this build";
  }
  for (const bool fastpath : {true, false}) {
    const StackResult threads =
        stack_run(fastpath, caf2::ExecBackend::kThreads);
    const StackResult fibers =
        stack_run(fastpath, caf2::ExecBackend::kFibers);
    EXPECT_EQ(threads.stats.backend, caf2::ExecBackend::kThreads);
    EXPECT_EQ(fibers.stats.backend, caf2::ExecBackend::kFibers);
    // Deterministic RunStats fields must be bit-identical across backends.
    EXPECT_EQ(threads.stats.events, fibers.stats.events)
        << "fastpath=" << fastpath;
    EXPECT_EQ(threads.stats.virtual_us, fibers.stats.virtual_us)
        << "fastpath=" << fastpath;
    EXPECT_EQ(threads.stats.context_switches, fibers.stats.context_switches)
        << "fastpath=" << fastpath;
    EXPECT_EQ(threads.elapsed_us, fibers.elapsed_us)
        << "fastpath=" << fastpath;
  }
}

/// --- determinism under injected faults (DESIGN.md §4.7) ---------------------
///
/// Fault decisions come from a dedicated RNG stream, so a seeded run with an
/// active FaultPlan must be bit-reproducible — including the full scheduler
/// trace with the fast path on vs off.

void fault_bump(caf2::Coref<long> counter) { counter.local()[0] += 1; }

struct FaultyResult {
  caf2::RunStats stats;
  std::string trace;
};

FaultyResult faulty_traced_run(
    bool fastpath, caf2::ExecBackend backend = caf2::ExecBackend::kAuto) {
  caf2::RuntimeOptions options;
  options.num_images = 4;
  options.net = caf2::NetworkParams::gemini_like();
  options.net.jitter_us = 0.5;
  options.net.faults.all.drop_probability = 0.10;
  options.net.faults.all.dup_probability = 0.05;
  options.net.faults.all.ack_drop_probability = 0.05;
  options.net.faults.all.delay_probability = 0.10;
  options.net.faults.all.delay_max_us = 5.0;
  options.seed = 424242;
  options.sim_fastpath = fastpath;
  options.sim_backend = backend;
  options.record_trace = true;

  caf2::rt::Runtime runtime(options);
  caf2::rt::install_event_handlers(runtime);
  caf2::ops::install_copy_handlers(runtime);
  caf2::ops::install_spawn_handlers(runtime);
  caf2::ops::install_collective_handlers(runtime);
  caf2::core::install_detector_handlers(runtime);
  runtime.run([] {
    caf2::Team world = caf2::team_world();
    caf2::Coarray<long> counter(world, 1);
    counter[0] = 0;
    caf2::team_barrier(world);
    caf2::finish(world, [&] {
      for (int target = 0; target < world.size(); ++target) {
        caf2::spawn<fault_bump>(target, counter.ref());
      }
    });
    EXPECT_EQ(counter[0], world.size());
    caf2::team_barrier(world);
  });

  FaultyResult result;
  result.stats.events = runtime.engine().event_count();
  result.stats.virtual_us = runtime.engine().now();
  result.stats.context_switches = runtime.engine().context_switch_count();
  result.stats.fastpath = runtime.engine().fastpath_enabled();
  result.stats.faults = runtime.network().fault_stats();
  result.trace = render_trace(runtime.engine().trace());
  EXPECT_GT(result.stats.faults.deliveries_dropped +
                result.stats.faults.deliveries_duplicated +
                result.stats.faults.acks_dropped,
            0u)
      << "the plan must actually inject faults for this test to mean much";
  return result;
}

TEST(Determinism, FaultyRunTraceIdenticalAcrossRepeats) {
  const FaultyResult first = faulty_traced_run(true);
  const FaultyResult second = faulty_traced_run(true);
  EXPECT_EQ(first.trace, second.trace);
  EXPECT_EQ(first.stats.events, second.stats.events);
}

TEST(Determinism, FaultyRunTraceIdenticalFastPathOnAndOff) {
  const FaultyResult fast = faulty_traced_run(true);
  const FaultyResult slow = faulty_traced_run(false);
  EXPECT_EQ(fast.stats.fastpath, true);
  EXPECT_EQ(slow.stats.fastpath, false);
  EXPECT_EQ(fast.trace, slow.trace);
  EXPECT_EQ(fast.stats.events, slow.stats.events);
  EXPECT_EQ(fast.stats.virtual_us, slow.stats.virtual_us);
  EXPECT_EQ(fast.stats.faults.deliveries_dropped,
            slow.stats.faults.deliveries_dropped);
  EXPECT_EQ(fast.stats.faults.retransmits, slow.stats.faults.retransmits);
  EXPECT_EQ(fast.stats.faults.duplicates_suppressed,
            slow.stats.faults.duplicates_suppressed);
}

TEST(Determinism, FaultyRunTraceIdenticalThreadsVsFibers) {
  if (!fibers_supported()) {
    GTEST_SKIP() << "fiber backend unavailable in this build";
  }
  for (const bool fastpath : {true, false}) {
    const FaultyResult threads =
        faulty_traced_run(fastpath, caf2::ExecBackend::kThreads);
    const FaultyResult fibers =
        faulty_traced_run(fastpath, caf2::ExecBackend::kFibers);
    EXPECT_EQ(threads.trace, fibers.trace) << "fastpath=" << fastpath;
    EXPECT_EQ(threads.stats.events, fibers.stats.events)
        << "fastpath=" << fastpath;
    EXPECT_EQ(threads.stats.virtual_us, fibers.stats.virtual_us)
        << "fastpath=" << fastpath;
    EXPECT_EQ(threads.stats.context_switches, fibers.stats.context_switches)
        << "fastpath=" << fastpath;
    EXPECT_EQ(threads.stats.faults.deliveries_dropped,
              fibers.stats.faults.deliveries_dropped)
        << "fastpath=" << fastpath;
    EXPECT_EQ(threads.stats.faults.deliveries_duplicated,
              fibers.stats.faults.deliveries_duplicated)
        << "fastpath=" << fastpath;
    EXPECT_EQ(threads.stats.faults.acks_dropped,
              fibers.stats.faults.acks_dropped)
        << "fastpath=" << fastpath;
    EXPECT_EQ(threads.stats.faults.retransmits,
              fibers.stats.faults.retransmits)
        << "fastpath=" << fastpath;
  }
}

}  // namespace
