/// Determinism regression tests for the scheduler fast path (DESIGN.md §4.6).
///
/// The self-wake fast path and the pooled Call-event storage are pure
/// performance transformations: the engine must produce *bit-identical*
/// results with them enabled, disabled via EngineOptions, or disabled via
/// the CAF2_SIM_NO_FASTPATH environment variable. These tests pin that down
/// at both layers:
///  - engine level: recorded traces (every scheduler decision) must match
///    entry for entry between fast path on and off;
///  - runtime level: a seeded RandomAccess workload over the jittered
///    Gemini-class network must dispatch the same number of events, end at
///    the same virtual time, and compute the same kernel timings.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/caf2.hpp"
#include "core/detectors.hpp"
#include "kernels/randomaccess.hpp"
#include "runtime/internal.hpp"
#include "runtime/runtime.hpp"
#include "sim/engine.hpp"
#include "sim/participant.hpp"

namespace {

using namespace caf2::sim;

/// A workload that exercises every fast-path decision point: self-wakes
/// (advance with an empty/later heap), contested wakes (equal-time events
/// from other participants), Call callbacks, blocking, and stray unblocks.
void mixed_body(int id) {
  Engine& e = this_engine();
  for (int i = 0; i < 25; ++i) {
    e.advance(0.1 * (id + 1));
    if (i % 3 == 0) {
      e.post_in(0.05, [] {});
    }
    if (i % 7 == 0) {
      e.unblock((id + 1) % e.size());
    }
    if (i % 5 == 0) {
      e.yield();
    }
  }
}

std::string traced_run(bool enable_fastpath) {
  EngineOptions options;
  options.record_trace = true;
  options.enable_fastpath = enable_fastpath;
  Engine engine(4, options);
  engine.run(mixed_body);
  EXPECT_EQ(engine.fastpath_enabled(), enable_fastpath);
  EXPECT_GT(engine.trace().size(), 100u);
  return render_trace(engine.trace());
}

TEST(Determinism, EngineTraceIdenticalAcrossRepeats) {
  EXPECT_EQ(traced_run(true), traced_run(true));
}

TEST(Determinism, EngineTraceIdenticalFastPathOnAndOff) {
  EXPECT_EQ(traced_run(true), traced_run(false));
}

TEST(Determinism, EnvVarForcesSlowPathWithIdenticalTrace) {
  const std::string baseline = traced_run(true);
  ASSERT_EQ(setenv("CAF2_SIM_NO_FASTPATH", "1", 1), 0);
  EngineOptions options;
  options.record_trace = true;
  options.enable_fastpath = true;  // env var must win
  Engine engine(4, options);
  engine.run(mixed_body);
  unsetenv("CAF2_SIM_NO_FASTPATH");
  EXPECT_FALSE(engine.fastpath_enabled());
  EXPECT_EQ(render_trace(engine.trace()), baseline);
}

/// One full-stack seeded run: RandomAccess with function shipping on the
/// jittered Gemini-class interconnect, returning simulator statistics plus
/// the kernel's own virtual-time measurement.
struct StackResult {
  caf2::RunStats stats;
  double elapsed_us = 0.0;

  bool operator==(const StackResult& other) const {
    return stats.events == other.stats.events &&
           stats.virtual_us == other.stats.virtual_us &&
           elapsed_us == other.elapsed_us;
  }
};

StackResult stack_run(bool fastpath) {
  caf2::RuntimeOptions options;
  options.num_images = 4;
  options.net = caf2::NetworkParams::gemini_like();
  options.seed = 20130520;
  options.sim_fastpath = fastpath;
  StackResult result;
  result.stats = caf2::run_stats(options, [&] {
    caf2::kernels::RaConfig config;
    config.log2_local_table = 10;
    config.updates_per_image = 256;
    config.bunch = 64;
    const auto stats =
        caf2::kernels::ra_run_function_shipping(caf2::team_world(), config);
    if (caf2::this_image() == 0) {
      result.elapsed_us = stats.elapsed_us;
    }
  });
  EXPECT_EQ(result.stats.fastpath, fastpath);
  EXPECT_GT(result.stats.events, 1000u);
  return result;
}

TEST(Determinism, RuntimeWorkloadIdenticalAcrossRepeats) {
  const StackResult first = stack_run(true);
  const StackResult second = stack_run(true);
  EXPECT_EQ(first.stats.events, second.stats.events);
  EXPECT_EQ(first.stats.virtual_us, second.stats.virtual_us);
  EXPECT_EQ(first.elapsed_us, second.elapsed_us);
}

TEST(Determinism, RuntimeWorkloadIdenticalFastPathOnAndOff) {
  const StackResult fast = stack_run(true);
  const StackResult slow = stack_run(false);
  EXPECT_EQ(fast.stats.events, slow.stats.events);
  EXPECT_EQ(fast.stats.virtual_us, slow.stats.virtual_us);
  EXPECT_EQ(fast.elapsed_us, slow.elapsed_us);
}

/// --- determinism under injected faults (DESIGN.md §4.7) ---------------------
///
/// Fault decisions come from a dedicated RNG stream, so a seeded run with an
/// active FaultPlan must be bit-reproducible — including the full scheduler
/// trace with the fast path on vs off.

void fault_bump(caf2::Coref<long> counter) { counter.local()[0] += 1; }

struct FaultyResult {
  caf2::RunStats stats;
  std::string trace;
};

FaultyResult faulty_traced_run(bool fastpath) {
  caf2::RuntimeOptions options;
  options.num_images = 4;
  options.net = caf2::NetworkParams::gemini_like();
  options.net.jitter_us = 0.5;
  options.net.faults.all.drop_probability = 0.10;
  options.net.faults.all.dup_probability = 0.05;
  options.net.faults.all.ack_drop_probability = 0.05;
  options.net.faults.all.delay_probability = 0.10;
  options.net.faults.all.delay_max_us = 5.0;
  options.seed = 424242;
  options.sim_fastpath = fastpath;
  options.record_trace = true;

  caf2::rt::Runtime runtime(options);
  caf2::rt::install_event_handlers(runtime);
  caf2::ops::install_copy_handlers(runtime);
  caf2::ops::install_spawn_handlers(runtime);
  caf2::ops::install_collective_handlers(runtime);
  caf2::core::install_detector_handlers(runtime);
  runtime.run([] {
    caf2::Team world = caf2::team_world();
    caf2::Coarray<long> counter(world, 1);
    counter[0] = 0;
    caf2::team_barrier(world);
    caf2::finish(world, [&] {
      for (int target = 0; target < world.size(); ++target) {
        caf2::spawn<fault_bump>(target, counter.ref());
      }
    });
    EXPECT_EQ(counter[0], world.size());
    caf2::team_barrier(world);
  });

  FaultyResult result;
  result.stats.events = runtime.engine().event_count();
  result.stats.virtual_us = runtime.engine().now();
  result.stats.fastpath = runtime.engine().fastpath_enabled();
  result.stats.faults = runtime.network().fault_stats();
  result.trace = render_trace(runtime.engine().trace());
  EXPECT_GT(result.stats.faults.deliveries_dropped +
                result.stats.faults.deliveries_duplicated +
                result.stats.faults.acks_dropped,
            0u)
      << "the plan must actually inject faults for this test to mean much";
  return result;
}

TEST(Determinism, FaultyRunTraceIdenticalAcrossRepeats) {
  const FaultyResult first = faulty_traced_run(true);
  const FaultyResult second = faulty_traced_run(true);
  EXPECT_EQ(first.trace, second.trace);
  EXPECT_EQ(first.stats.events, second.stats.events);
}

TEST(Determinism, FaultyRunTraceIdenticalFastPathOnAndOff) {
  const FaultyResult fast = faulty_traced_run(true);
  const FaultyResult slow = faulty_traced_run(false);
  EXPECT_EQ(fast.stats.fastpath, true);
  EXPECT_EQ(slow.stats.fastpath, false);
  EXPECT_EQ(fast.trace, slow.trace);
  EXPECT_EQ(fast.stats.events, slow.stats.events);
  EXPECT_EQ(fast.stats.virtual_us, slow.stats.virtual_us);
  EXPECT_EQ(fast.stats.faults.deliveries_dropped,
            slow.stats.faults.deliveries_dropped);
  EXPECT_EQ(fast.stats.faults.retransmits, slow.stats.faults.retransmits);
  EXPECT_EQ(fast.stats.faults.duplicates_suppressed,
            slow.stats.faults.duplicates_suppressed);
}

}  // namespace
