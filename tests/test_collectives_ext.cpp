/// Tests for the extended collectives of the paper's vision (§II-C3):
/// gather, scatter, alltoall, scan, and the distributed sample sort.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "core/caf2.hpp"

namespace {

using namespace caf2;

RuntimeOptions ext_options(int images) {
  RuntimeOptions options;
  options.num_images = images;
  options.net.latency_us = 2.0;
  options.net.bandwidth_bytes_per_us = 1000.0;
  options.net.handler_cost_us = 0.1;
  options.net.jitter_us = 0.4;
  options.max_events = 10'000'000;
  return options;
}

class ExtSizes : public ::testing::TestWithParam<int> {};

TEST_P(ExtSizes, GatherConcatenatesByRank) {
  const int images = GetParam();
  run(ext_options(images), [images] {
    Team world = team_world();
    const int root = images / 2;
    std::vector<long> send{world.rank() * 10L, world.rank() * 10L + 1};
    std::vector<long> recv(static_cast<std::size_t>(2 * images), -1);
    Event done;
    gather_async<long>(world, send, recv, root, {.src_done = done.handle()});
    done.wait();
    if (world.rank() == root) {
      for (int r = 0; r < images; ++r) {
        EXPECT_EQ(recv[static_cast<std::size_t>(2 * r)], r * 10);
        EXPECT_EQ(recv[static_cast<std::size_t>(2 * r + 1)], r * 10 + 1);
      }
    }
    team_barrier(world);
  });
}

TEST_P(ExtSizes, ScatterSplitsByRank) {
  const int images = GetParam();
  run(ext_options(images), [images] {
    Team world = team_world();
    const int root = 0;
    std::vector<long> send;
    if (world.rank() == root) {
      send.resize(static_cast<std::size_t>(3 * images));
      std::iota(send.begin(), send.end(), 1000);
    }
    std::vector<long> recv(3, -1);
    Event done;
    scatter_async<long>(world, send, recv, root, {.src_done = done.handle()});
    done.wait();
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(recv[static_cast<std::size_t>(i)],
                1000 + 3 * world.rank() + i);
    }
    team_barrier(world);
  });
}

TEST_P(ExtSizes, AlltoallExchangesChunks) {
  const int images = GetParam();
  run(ext_options(images), [images] {
    Team world = team_world();
    // Chunk j of my send buffer = my_rank * 100 + j.
    std::vector<int> send(static_cast<std::size_t>(images));
    for (int j = 0; j < images; ++j) {
      send[static_cast<std::size_t>(j)] = world.rank() * 100 + j;
    }
    std::vector<int> recv(static_cast<std::size_t>(images), -1);
    Event done;
    alltoall_async<int>(world, send, recv, {.src_done = done.handle()});
    done.wait();
    // Chunk i of my receive buffer came from rank i: i * 100 + my_rank.
    for (int i = 0; i < images; ++i) {
      EXPECT_EQ(recv[static_cast<std::size_t>(i)],
                i * 100 + world.rank());
    }
    team_barrier(world);
  });
}

TEST_P(ExtSizes, InclusiveScanMatchesPrefixSums) {
  const int images = GetParam();
  run(ext_options(images), [] {
    Team world = team_world();
    std::vector<long> value{world.rank() + 1L, 100L * (world.rank() + 1)};
    Event done;
    scan_async<long>(world, value, RedOp::kSum, /*exclusive=*/false,
                     {.src_done = done.handle()});
    done.wait();
    long expect = 0;
    for (int i = 0; i <= world.rank(); ++i) {
      expect += i + 1;
    }
    EXPECT_EQ(value[0], expect);
    EXPECT_EQ(value[1], 100 * expect);
    team_barrier(world);
  });
}

TEST_P(ExtSizes, ExclusiveScanShiftsByOneRank) {
  const int images = GetParam();
  run(ext_options(images), [] {
    Team world = team_world();
    std::vector<long> value{world.rank() + 1L};
    Event done;
    scan_async<long>(world, value, RedOp::kSum, /*exclusive=*/true,
                     {.src_done = done.handle()});
    done.wait();
    if (world.rank() > 0) {
      long expect = 0;
      for (int i = 0; i < world.rank(); ++i) {
        expect += i + 1;
      }
      EXPECT_EQ(value[0], expect);
    }
    team_barrier(world);
  });
}

TEST_P(ExtSizes, SampleSortProducesGlobalOrder) {
  const int images = GetParam();
  run(ext_options(images), [images] {
    Team world = team_world();
    // Deterministic pseudo-random keys, distinct per image.
    Xoshiro256ss rng(1234u + static_cast<unsigned>(world.rank()));
    std::vector<std::uint64_t> keys(64);
    for (auto& key : keys) {
      key = rng.next();
    }
    std::vector<std::uint64_t> everyone;  // serial oracle
    for (int img = 0; img < images; ++img) {
      Xoshiro256ss r(1234u + static_cast<unsigned>(img));
      for (int i = 0; i < 64; ++i) {
        everyone.push_back(r.next());
      }
    }
    std::sort(everyone.begin(), everyone.end());

    Event done;
    sort_async<std::uint64_t>(world, keys, {.src_done = done.handle()});
    done.wait();

    // Local block sorted.
    EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
    // Blocks are range-partitioned by rank and cover the whole input:
    // verify by gathering block sizes + boundaries through reductions.
    const auto count =
        allreduce<std::uint64_t>(world, keys.size(), RedOp::kSum);
    EXPECT_EQ(count, everyone.size());
    const std::uint64_t my_min = keys.empty() ? ~0ULL : keys.front();
    const std::uint64_t my_max = keys.empty() ? 0ULL : keys.back();
    // Exclusive scan of maxima: my predecessor blocks' largest key must not
    // exceed my smallest key.
    std::vector<std::uint64_t> carry{my_max};
    Event scanned;
    scan_async<std::uint64_t>(world, carry, RedOp::kMax, /*exclusive=*/true,
                              {.src_done = scanned.handle()});
    scanned.wait();
    if (world.rank() > 0 && !keys.empty()) {
      EXPECT_LE(carry[0], my_min);
    }
    // Global extremes match the oracle.
    EXPECT_EQ(allreduce<std::uint64_t>(world, my_min, RedOp::kMin),
              everyone.front());
    EXPECT_EQ(allreduce<std::uint64_t>(world, my_max, RedOp::kMax),
              everyone.back());
    team_barrier(world);
  });
}

INSTANTIATE_TEST_SUITE_P(Images, ExtSizes, ::testing::Values(1, 2, 3, 4, 8));

TEST(ExtCollectives, SortWithUnevenBlocks) {
  run(ext_options(4), [] {
    Team world = team_world();
    std::vector<int> keys(static_cast<std::size_t>(
        world.rank() * 17 + 1));  // 1, 18, 35, 52 keys
    for (std::size_t i = 0; i < keys.size(); ++i) {
      keys[i] = static_cast<int>((world.rank() * 131 + i * 37) % 211);
    }
    Event done;
    sort_async<int>(world, keys, {.src_done = done.handle()});
    done.wait();
    EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
    const auto total = allreduce<long>(
        world, static_cast<long>(keys.size()), RedOp::kSum);
    EXPECT_EQ(total, 1 + 18 + 35 + 52);
    team_barrier(world);
  });
}

TEST(ExtCollectives, SortEmptyInput) {
  run(ext_options(3), [] {
    Team world = team_world();
    std::vector<double> keys;  // nothing anywhere
    Event done;
    sort_async<double>(world, keys, {.src_done = done.handle()});
    done.wait();
    EXPECT_TRUE(keys.empty());
    team_barrier(world);
  });
}

TEST(ExtCollectives, GatherImplicitThroughFinish) {
  run(ext_options(4), [] {
    Team world = team_world();
    std::vector<int> send{world.rank()};
    std::vector<int> recv(4, -1);
    finish(world, [&] {
      gather_async<int>(world, send, recv, 0);
    });
    if (world.rank() == 0) {
      EXPECT_EQ(recv, (std::vector<int>{0, 1, 2, 3}));
    }
    team_barrier(world);
  });
}

TEST(ExtCollectives, AlltoallOnSubteam) {
  run(ext_options(6), [] {
    Team world = team_world();
    Team sub = world.split(world.rank() % 2, world.rank());
    std::vector<int> send(static_cast<std::size_t>(sub.size()));
    for (int j = 0; j < sub.size(); ++j) {
      send[static_cast<std::size_t>(j)] = sub.rank() * 10 + j;
    }
    std::vector<int> recv(static_cast<std::size_t>(sub.size()), -1);
    Event done;
    alltoall_async<int>(sub, send, recv, {.src_done = done.handle()});
    done.wait();
    for (int i = 0; i < sub.size(); ++i) {
      EXPECT_EQ(recv[static_cast<std::size_t>(i)], i * 10 + sub.rank());
    }
    team_barrier(world);
  });
}

}  // namespace
