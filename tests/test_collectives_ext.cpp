/// Tests for the extended collectives of the paper's vision (§II-C3):
/// gather, scatter, alltoall, scan, the distributed sample sort, and the
/// algorithm suite of DESIGN.md §4.13 — the new allgather / reduce-scatter
/// / v-collectives, per-algorithm correctness oracles, the selection table
/// (JSON round-trip, Auto resolution), rooted-entry validation, and the
/// algorithm × shards × backend determinism matrix.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <string>
#include <vector>

#include "core/caf2.hpp"
#include "core/detectors.hpp"
#include "ops/coll_algo.hpp"
#include "runtime/internal.hpp"
#include "runtime/runtime.hpp"
#include "sim/fiber.hpp"
#include "sim/trace.hpp"

namespace {

using namespace caf2;

RuntimeOptions ext_options(int images) {
  RuntimeOptions options;
  options.num_images = images;
  options.net.latency_us = 2.0;
  options.net.bandwidth_bytes_per_us = 1000.0;
  options.net.handler_cost_us = 0.1;
  options.net.jitter_us = 0.4;
  options.max_events = 10'000'000;
  return options;
}

class ExtSizes : public ::testing::TestWithParam<int> {};

TEST_P(ExtSizes, GatherConcatenatesByRank) {
  const int images = GetParam();
  run(ext_options(images), [images] {
    Team world = team_world();
    const int root = images / 2;
    std::vector<long> send{world.rank() * 10L, world.rank() * 10L + 1};
    std::vector<long> recv(static_cast<std::size_t>(2 * images), -1);
    Event done;
    gather_async<long>(world, send, recv, root, {.src_done = done.handle()});
    done.wait();
    if (world.rank() == root) {
      for (int r = 0; r < images; ++r) {
        EXPECT_EQ(recv[static_cast<std::size_t>(2 * r)], r * 10);
        EXPECT_EQ(recv[static_cast<std::size_t>(2 * r + 1)], r * 10 + 1);
      }
    }
    team_barrier(world);
  });
}

TEST_P(ExtSizes, ScatterSplitsByRank) {
  const int images = GetParam();
  run(ext_options(images), [images] {
    Team world = team_world();
    const int root = 0;
    std::vector<long> send;
    if (world.rank() == root) {
      send.resize(static_cast<std::size_t>(3 * images));
      std::iota(send.begin(), send.end(), 1000);
    }
    std::vector<long> recv(3, -1);
    Event done;
    scatter_async<long>(world, send, recv, root, {.src_done = done.handle()});
    done.wait();
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(recv[static_cast<std::size_t>(i)],
                1000 + 3 * world.rank() + i);
    }
    team_barrier(world);
  });
}

TEST_P(ExtSizes, AlltoallExchangesChunks) {
  const int images = GetParam();
  run(ext_options(images), [images] {
    Team world = team_world();
    // Chunk j of my send buffer = my_rank * 100 + j.
    std::vector<int> send(static_cast<std::size_t>(images));
    for (int j = 0; j < images; ++j) {
      send[static_cast<std::size_t>(j)] = world.rank() * 100 + j;
    }
    std::vector<int> recv(static_cast<std::size_t>(images), -1);
    Event done;
    alltoall_async<int>(world, send, recv, {.src_done = done.handle()});
    done.wait();
    // Chunk i of my receive buffer came from rank i: i * 100 + my_rank.
    for (int i = 0; i < images; ++i) {
      EXPECT_EQ(recv[static_cast<std::size_t>(i)],
                i * 100 + world.rank());
    }
    team_barrier(world);
  });
}

TEST_P(ExtSizes, InclusiveScanMatchesPrefixSums) {
  const int images = GetParam();
  run(ext_options(images), [] {
    Team world = team_world();
    std::vector<long> value{world.rank() + 1L, 100L * (world.rank() + 1)};
    Event done;
    scan_async<long>(world, value, RedOp::kSum, /*exclusive=*/false,
                     {.src_done = done.handle()});
    done.wait();
    long expect = 0;
    for (int i = 0; i <= world.rank(); ++i) {
      expect += i + 1;
    }
    EXPECT_EQ(value[0], expect);
    EXPECT_EQ(value[1], 100 * expect);
    team_barrier(world);
  });
}

TEST_P(ExtSizes, ExclusiveScanShiftsByOneRank) {
  const int images = GetParam();
  run(ext_options(images), [] {
    Team world = team_world();
    std::vector<long> value{world.rank() + 1L};
    Event done;
    scan_async<long>(world, value, RedOp::kSum, /*exclusive=*/true,
                     {.src_done = done.handle()});
    done.wait();
    if (world.rank() > 0) {
      long expect = 0;
      for (int i = 0; i < world.rank(); ++i) {
        expect += i + 1;
      }
      EXPECT_EQ(value[0], expect);
    }
    team_barrier(world);
  });
}

TEST_P(ExtSizes, SampleSortProducesGlobalOrder) {
  const int images = GetParam();
  run(ext_options(images), [images] {
    Team world = team_world();
    // Deterministic pseudo-random keys, distinct per image.
    Xoshiro256ss rng(1234u + static_cast<unsigned>(world.rank()));
    std::vector<std::uint64_t> keys(64);
    for (auto& key : keys) {
      key = rng.next();
    }
    std::vector<std::uint64_t> everyone;  // serial oracle
    for (int img = 0; img < images; ++img) {
      Xoshiro256ss r(1234u + static_cast<unsigned>(img));
      for (int i = 0; i < 64; ++i) {
        everyone.push_back(r.next());
      }
    }
    std::sort(everyone.begin(), everyone.end());

    Event done;
    sort_async<std::uint64_t>(world, keys, {.src_done = done.handle()});
    done.wait();

    // Local block sorted.
    EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
    // Blocks are range-partitioned by rank and cover the whole input:
    // verify by gathering block sizes + boundaries through reductions.
    const auto count =
        allreduce<std::uint64_t>(world, keys.size(), RedOp::kSum);
    EXPECT_EQ(count, everyone.size());
    const std::uint64_t my_min = keys.empty() ? ~0ULL : keys.front();
    const std::uint64_t my_max = keys.empty() ? 0ULL : keys.back();
    // Exclusive scan of maxima: my predecessor blocks' largest key must not
    // exceed my smallest key.
    std::vector<std::uint64_t> carry{my_max};
    Event scanned;
    scan_async<std::uint64_t>(world, carry, RedOp::kMax, /*exclusive=*/true,
                              {.src_done = scanned.handle()});
    scanned.wait();
    if (world.rank() > 0 && !keys.empty()) {
      EXPECT_LE(carry[0], my_min);
    }
    // Global extremes match the oracle.
    EXPECT_EQ(allreduce<std::uint64_t>(world, my_min, RedOp::kMin),
              everyone.front());
    EXPECT_EQ(allreduce<std::uint64_t>(world, my_max, RedOp::kMax),
              everyone.back());
    team_barrier(world);
  });
}

INSTANTIATE_TEST_SUITE_P(Images, ExtSizes, ::testing::Values(1, 2, 3, 4, 8));

TEST(ExtCollectives, SortWithUnevenBlocks) {
  run(ext_options(4), [] {
    Team world = team_world();
    std::vector<int> keys(static_cast<std::size_t>(
        world.rank() * 17 + 1));  // 1, 18, 35, 52 keys
    for (std::size_t i = 0; i < keys.size(); ++i) {
      keys[i] = static_cast<int>((world.rank() * 131 + i * 37) % 211);
    }
    Event done;
    sort_async<int>(world, keys, {.src_done = done.handle()});
    done.wait();
    EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
    const auto total = allreduce<long>(
        world, static_cast<long>(keys.size()), RedOp::kSum);
    EXPECT_EQ(total, 1 + 18 + 35 + 52);
    team_barrier(world);
  });
}

TEST(ExtCollectives, SortEmptyInput) {
  run(ext_options(3), [] {
    Team world = team_world();
    std::vector<double> keys;  // nothing anywhere
    Event done;
    sort_async<double>(world, keys, {.src_done = done.handle()});
    done.wait();
    EXPECT_TRUE(keys.empty());
    team_barrier(world);
  });
}

TEST(ExtCollectives, GatherImplicitThroughFinish) {
  run(ext_options(4), [] {
    Team world = team_world();
    std::vector<int> send{world.rank()};
    std::vector<int> recv(4, -1);
    finish(world, [&] {
      gather_async<int>(world, send, recv, 0);
    });
    if (world.rank() == 0) {
      EXPECT_EQ(recv, (std::vector<int>{0, 1, 2, 3}));
    }
    team_barrier(world);
  });
}

/// --- new collectives: allgather / reduce-scatter / v-variants --------------
/// Every supported schedule must produce the same buffers (the payloads are
/// integers, so even the reassociating schedules agree exactly).

TEST_P(ExtSizes, AllgatherEveryAlgorithmMatchesOracle) {
  const int images = GetParam();
  run(ext_options(images), [images] {
    Team world = team_world();
    for (const CollAlgorithm algo :
         ops::supported_algorithms(ops::CollKind::kAllgather)) {
      std::vector<long> send{world.rank() * 10L, world.rank() * 10L + 1};
      std::vector<long> recv(static_cast<std::size_t>(2 * images), -1);
      Event done;
      allgather_async<long>(world, send, recv,
                            {.local_done = done.handle(), .algorithm = algo});
      done.wait();
      for (int r = 0; r < images; ++r) {
        EXPECT_EQ(recv[static_cast<std::size_t>(2 * r)], r * 10)
            << "algorithm " << to_string(algo);
        EXPECT_EQ(recv[static_cast<std::size_t>(2 * r + 1)], r * 10 + 1)
            << "algorithm " << to_string(algo);
      }
      team_barrier(world);
    }
  });
}

TEST_P(ExtSizes, ReduceScatterEveryAlgorithmMatchesOracle) {
  const int images = GetParam();
  run(ext_options(images), [images] {
    Team world = team_world();
    for (const CollAlgorithm algo :
         ops::supported_algorithms(ops::CollKind::kReduceScatter)) {
      // Element e of my contribution = rank * 1000 + e; chunk r of the
      // result on rank r = sum over all ranks.
      std::vector<long> send(static_cast<std::size_t>(2 * images));
      for (std::size_t e = 0; e < send.size(); ++e) {
        send[e] = world.rank() * 1000L + static_cast<long>(e);
      }
      std::vector<long> recv(2, -1);
      Event done;
      reduce_scatter_async<long>(
          world, send, recv, RedOp::kSum,
          {.local_done = done.handle(), .algorithm = algo});
      done.wait();
      const long rank_sum = static_cast<long>(images) *
                            static_cast<long>(images - 1) / 2 * 1000L;
      for (int e = 0; e < 2; ++e) {
        EXPECT_EQ(recv[static_cast<std::size_t>(e)],
                  rank_sum + static_cast<long>(images) *
                                 (2L * world.rank() + e))
            << "algorithm " << to_string(algo);
      }
      team_barrier(world);
    }
  });
}

TEST_P(ExtSizes, AllreduceEveryAlgorithmMatchesOracle) {
  const int images = GetParam();
  run(ext_options(images), [images] {
    Team world = team_world();
    for (const CollAlgorithm algo :
         ops::supported_algorithms(ops::CollKind::kAllreduce)) {
      // 5 elements so the ring's element-boundary chunking goes uneven
      // (and empty at images = 8).
      std::vector<long> value(5);
      for (std::size_t e = 0; e < value.size(); ++e) {
        value[e] = world.rank() + static_cast<long>(e) * 100L;
      }
      Event done;
      allreduce_async<long>(world, value, RedOp::kSum,
                            {.local_done = done.handle(), .algorithm = algo});
      done.wait();
      const long rank_sum =
          static_cast<long>(images) * static_cast<long>(images - 1) / 2;
      for (std::size_t e = 0; e < value.size(); ++e) {
        EXPECT_EQ(value[e],
                  rank_sum + static_cast<long>(images) *
                                 static_cast<long>(e) * 100L)
            << "algorithm " << to_string(algo);
      }
      team_barrier(world);
    }
  });
}

TEST_P(ExtSizes, BroadcastReduceBarrierAlternativeSchedules) {
  const int images = GetParam();
  run(ext_options(images), [images] {
    Team world = team_world();
    const int root = images > 1 ? 1 : 0;
    for (const CollAlgorithm algo :
         ops::supported_algorithms(ops::CollKind::kBroadcast)) {
      std::vector<int> buf(3, world.rank() == root ? 42 : -1);
      Event done;
      broadcast_async<int>(world, buf, root,
                           {.local_done = done.handle(), .algorithm = algo});
      done.wait();
      EXPECT_EQ(buf, (std::vector<int>{42, 42, 42}))
          << "algorithm " << to_string(algo);
      team_barrier(world);
    }
    for (const CollAlgorithm algo :
         ops::supported_algorithms(ops::CollKind::kReduce)) {
      std::vector<long> buf{world.rank() + 1L};
      Event done;
      reduce_async<long>(world, buf, root, RedOp::kMax,
                         {.local_done = done.handle(), .algorithm = algo});
      done.wait();
      if (world.rank() == root) {
        EXPECT_EQ(buf[0], images) << "algorithm " << to_string(algo);
      }
      team_barrier(world);
    }
    for (const CollAlgorithm algo :
         ops::supported_algorithms(ops::CollKind::kBarrier)) {
      Event done;
      barrier_async(world, {.local_done = done.handle(), .algorithm = algo});
      done.wait();
    }
    for (const CollAlgorithm algo :
         ops::supported_algorithms(ops::CollKind::kGather)) {
      std::vector<int> send{world.rank()};
      std::vector<int> recv(static_cast<std::size_t>(images), -1);
      Event done;
      gather_async<int>(world, send, recv, root,
                        {.local_done = done.handle(), .algorithm = algo});
      done.wait();
      if (world.rank() == root) {
        for (int r = 0; r < images; ++r) {
          EXPECT_EQ(recv[static_cast<std::size_t>(r)], r)
              << "algorithm " << to_string(algo);
        }
      }
      team_barrier(world);
    }
    for (const CollAlgorithm algo :
         ops::supported_algorithms(ops::CollKind::kScatter)) {
      std::vector<int> send;
      if (world.rank() == root) {
        send.resize(static_cast<std::size_t>(images));
        std::iota(send.begin(), send.end(), 7);
      }
      std::vector<int> recv(1, -1);
      Event done;
      scatter_async<int>(world, send, recv, root,
                         {.local_done = done.handle(), .algorithm = algo});
      done.wait();
      EXPECT_EQ(recv[0], 7 + world.rank()) << "algorithm " << to_string(algo);
      team_barrier(world);
    }
  });
}

TEST_P(ExtSizes, GathervScattervAlltoallvVariableCounts) {
  const int images = GetParam();
  run(ext_options(images), [images] {
    Team world = team_world();
    const int root = images - 1;
    // Rank r contributes r elements (rank 0 contributes nothing).
    std::vector<std::size_t> counts(static_cast<std::size_t>(images));
    for (int r = 0; r < images; ++r) {
      counts[static_cast<std::size_t>(r)] = static_cast<std::size_t>(r);
    }
    const std::size_t total = std::accumulate(counts.begin(), counts.end(),
                                              std::size_t{0});
    {
      std::vector<long> send(static_cast<std::size_t>(world.rank()));
      for (std::size_t i = 0; i < send.size(); ++i) {
        send[i] = world.rank() * 100L + static_cast<long>(i);
      }
      std::vector<long> recv(world.rank() == root ? total : 0, -1);
      Event done;
      gatherv_async<long>(world, send, recv, counts, root,
                          {.local_done = done.handle()});
      done.wait();
      if (world.rank() == root) {
        std::size_t at = 0;
        for (int r = 0; r < images; ++r) {
          for (std::size_t i = 0; i < counts[static_cast<std::size_t>(r)];
               ++i) {
            EXPECT_EQ(recv[at++], r * 100L + static_cast<long>(i));
          }
        }
      }
      team_barrier(world);
    }
    {
      std::vector<long> send;
      if (world.rank() == root) {
        send.resize(total);
        std::size_t at = 0;
        for (int r = 0; r < images; ++r) {
          for (std::size_t i = 0; i < counts[static_cast<std::size_t>(r)];
               ++i) {
            send[at++] = r * 1000L + static_cast<long>(i);
          }
        }
      }
      std::vector<long> recv(static_cast<std::size_t>(world.rank()), -1);
      Event done;
      scatterv_async<long>(world, send, counts, recv, root,
                           {.local_done = done.handle()});
      done.wait();
      for (std::size_t i = 0; i < recv.size(); ++i) {
        EXPECT_EQ(recv[i], world.rank() * 1000L + static_cast<long>(i));
      }
      team_barrier(world);
    }
    {
      // Rank r sends j+1 elements to rank j (independent of r), so rank j
      // receives j+1 elements from everyone: counts differ per pair and
      // extents are not divisible by the team size.
      std::vector<std::size_t> send_counts(static_cast<std::size_t>(images));
      std::vector<std::size_t> recv_counts(
          static_cast<std::size_t>(images),
          static_cast<std::size_t>(world.rank() + 1));
      for (int j = 0; j < images; ++j) {
        send_counts[static_cast<std::size_t>(j)] =
            static_cast<std::size_t>(j + 1);
      }
      std::vector<long> send(std::accumulate(send_counts.begin(),
                                             send_counts.end(),
                                             std::size_t{0}));
      std::size_t at = 0;
      for (int j = 0; j < images; ++j) {
        for (std::size_t i = 0; i <= static_cast<std::size_t>(j); ++i) {
          send[at++] = world.rank() * 10000L + j * 100L +
                       static_cast<long>(i);
        }
      }
      std::vector<long> recv(
          static_cast<std::size_t>(images) *
              static_cast<std::size_t>(world.rank() + 1),
          -1);
      Event done;
      alltoallv_async<long>(world, send, send_counts, recv, recv_counts,
                            {.local_done = done.handle()});
      done.wait();
      at = 0;
      for (int from = 0; from < images; ++from) {
        for (std::size_t i = 0; i <= static_cast<std::size_t>(world.rank());
             ++i) {
          EXPECT_EQ(recv[at++], from * 10000L + world.rank() * 100L +
                                    static_cast<long>(i));
        }
      }
      team_barrier(world);
    }
  });
}

TEST(ExtCollectives, NewCollectivesComposeWithFinishAndCofence) {
  run(ext_options(4), [] {
    Team world = team_world();
    std::vector<int> send{world.rank()};
    std::vector<int> all(4, -1);
    finish(world, [&] {
      allgather_async<int>(world, send, all);
    });
    EXPECT_EQ(all, (std::vector<int>{0, 1, 2, 3}));

    std::vector<int> contrib{world.rank(), 10 + world.rank(), 20 + world.rank(),
                             30 + world.rank()};
    std::vector<int> mine(1, -1);
    // Element e of rank's contribution is 10*e + rank, so chunk r of the
    // result = sum over ranks of (10*r + rank) = 40*r + 6.
    finish(world, [&] {
      reduce_scatter_async<int>(world, contrib, mine, RedOp::kSum);
    });
    EXPECT_EQ(mine[0], 40 * world.rank() + 6);
    team_barrier(world);
  });
}

/// --- rooted-entry validation ------------------------------------------------

TEST(ExtCollectives, OutOfRangeRootIsAUsageErrorNamingTheCollective) {
  run(ext_options(3), [] {
    Team world = team_world();
    std::vector<int> buf(1);
    std::vector<std::size_t> counts(3, 1);
    const int past_end = world.size();  // first invalid rank (runtime value)
    const int negative = -world.size();
    const auto expect_named = [](const char* name, auto&& call) {
      try {
        call();
        FAIL() << name << ": out-of-range root was accepted";
      } catch (const UsageError& error) {
        EXPECT_NE(std::string(error.what()).find(name), std::string::npos)
            << "actual message: " << error.what();
      }
    };
    expect_named("broadcast_async", [&] {
      broadcast_async<int>(world, buf, past_end);
    });
    expect_named("reduce_async", [&] {
      reduce_async<int>(world, buf, negative, RedOp::kSum);
    });
    expect_named("gather_async", [&] {
      gather_async<int>(world, buf, buf, past_end + 2);
    });
    expect_named("scatter_async", [&] {
      scatter_async<int>(world, buf, buf, past_end);
    });
    expect_named("gatherv_async", [&] {
      gatherv_async<int>(world, buf, buf, counts, past_end);
    });
    expect_named("scatterv_async", [&] {
      scatterv_async<int>(world, buf, counts, buf, negative);
    });
    team_barrier(world);
  });
}

TEST(ExtCollectives, ExplicitlyUnsupportedAlgorithmIsAUsageError) {
  run(ext_options(2), [] {
    Team world = team_world();
    std::vector<int> buf(1);
    EXPECT_THROW(broadcast_async<int>(world, buf, 0,
                                      {.algorithm = CollAlgorithm::kDirect}),
                 UsageError);
    std::vector<int> pair_send(2);
    std::vector<int> pair_recv(2);
    EXPECT_THROW(
        alltoall_async<int>(world, pair_send, pair_recv,
                            {.algorithm = CollAlgorithm::kBinomialTree}),
        UsageError);
    team_barrier(world);
  });
}

/// --- selection table --------------------------------------------------------

TEST(CollSelection, JsonRoundTripAndNearestBucketLookup) {
  ops::CollSelectionTable table;
  table.set(ops::CollKind::kAllreduce, 16, 64, CollAlgorithm::kBinomialTree);
  table.set(ops::CollKind::kAllreduce, 16, 1 << 16, CollAlgorithm::kRing);
  table.set(ops::CollKind::kAllgather, 8, 4096, CollAlgorithm::kRing);
  const std::string json = table.to_json();
  const ops::CollSelectionTable parsed =
      ops::CollSelectionTable::from_json(json);
  EXPECT_EQ(parsed.size(), 3u);
  EXPECT_EQ(parsed.to_json(), json);  // byte-stable round trip
  // Exact buckets.
  EXPECT_EQ(parsed.lookup(ops::CollKind::kAllreduce, 16, 64),
            CollAlgorithm::kBinomialTree);
  EXPECT_EQ(parsed.lookup(ops::CollKind::kAllreduce, 16, 1 << 16),
            CollAlgorithm::kRing);
  // Nearest bucket: payload snaps to the closer measured class; unmeasured
  // team sizes snap to the nearest measured one.
  EXPECT_EQ(parsed.lookup(ops::CollKind::kAllreduce, 16, 128),
            CollAlgorithm::kBinomialTree);
  EXPECT_EQ(parsed.lookup(ops::CollKind::kAllreduce, 16, 1 << 20),
            CollAlgorithm::kRing);
  EXPECT_EQ(parsed.lookup(ops::CollKind::kAllreduce, 64, 1 << 16),
            CollAlgorithm::kRing);
  EXPECT_EQ(parsed.lookup(ops::CollKind::kAllgather, 5, 100),
            CollAlgorithm::kRing);
  // Unknown kind -> kAuto (caller falls back to the default).
  EXPECT_EQ(parsed.lookup(ops::CollKind::kBroadcast, 8, 64),
            CollAlgorithm::kAuto);
  EXPECT_THROW(ops::CollSelectionTable::from_json("{\"entries\": [{}]}"),
               UsageError);
  EXPECT_THROW(ops::CollSelectionTable::from_json("not json"), UsageError);
}

/// Auto demonstrably follows the loaded table: with a table mapping small
/// allreduces to the ring schedule, the recorded collective span is labeled
/// "allreduce/ring"; without a table it stays "allreduce/binomial".
TEST(CollSelection, AutoFollowsTheLoadedTable) {
  const auto span_labels = [](const RunStats& stats) {
    std::vector<std::string> labels;
    for (int image = 0; image < stats.obs->images; ++image) {
      for (const obs::Span& span : stats.obs->image_track(image).spans) {
        if (span.kind == obs::SpanKind::kCollective &&
            span.label != nullptr) {
          labels.emplace_back(span.label);
        }
      }
    }
    return labels;
  };
  // The trailing barrier keeps every image alive until the allreduce's op
  // completion (and with it the span) lands: spans are recorded at local op
  // completion, and events still in flight when the last image body returns
  // are dropped with the run.
  const auto workload = [] {
    Team world = team_world();
    long value = world.rank();
    (void)allreduce<long>(world, value, RedOp::kSum);
    team_barrier(world);
  };
  RuntimeOptions options = ext_options(4);
  options.obs.enabled = true;

  ops::clear_selection_table();
  const RunStats untuned = run_stats(options, workload);
  ASSERT_NE(untuned.obs, nullptr);
  const auto before = span_labels(untuned);
  EXPECT_NE(std::find(before.begin(), before.end(), "allreduce/binomial"),
            before.end());

  ops::CollSelectionTable table;
  table.set(ops::CollKind::kAllreduce, 4, sizeof(long), CollAlgorithm::kRing);
  ops::set_selection_table(table);
  const RunStats tuned = run_stats(options, workload);
  const auto after = span_labels(tuned);
  EXPECT_NE(std::find(after.begin(), after.end(), "allreduce/ring"),
            after.end());
  EXPECT_EQ(std::find(after.begin(), after.end(), "allreduce/binomial"),
            after.end());
  ops::clear_selection_table();
}

/// Recursive-doubling allgather needs a power-of-two team; on others the
/// resolver degrades it to ring (still correct, span says so).
TEST(CollSelection, RdAllgatherClampsToRingOnNonPow2Teams) {
  RuntimeOptions options = ext_options(3);
  options.obs.enabled = true;
  const RunStats stats = run_stats(options, [] {
    Team world = team_world();
    std::vector<int> send{world.rank()};
    std::vector<int> recv(3, -1);
    Event done;
    allgather_async<int>(
        world, send, recv,
        {.local_done = done.handle(),
         .algorithm = CollAlgorithm::kRecursiveDoubling});
    done.wait();
    EXPECT_EQ(recv, (std::vector<int>{0, 1, 2}));
    team_barrier(world);
  });
  ASSERT_NE(stats.obs, nullptr);
  bool saw_ring = false;
  for (const obs::Span& span : stats.obs->image_track(0).spans) {
    if (span.kind == obs::SpanKind::kCollective && span.label != nullptr &&
        std::string(span.label) == "allgather/ring") {
      saw_ring = true;
    }
  }
  EXPECT_TRUE(saw_ring);
}

/// --- determinism matrix: algorithm × {shards 1,4} × {threads,fibers} --------

struct CollFingerprint {
  std::string trace;
  std::uint64_t events = 0;
  double end_us = 0.0;
  std::vector<long> result;  // image 0's buffers after the workload
};

RuntimeOptions matrix_options(int shards, ExecBackend backend) {
  RuntimeOptions options;
  options.num_images = 8;
  options.shards = shards;
  options.sim_backend = backend;
  options.net.latency_us = 2.0;
  options.net.bandwidth_bytes_per_us = 500.0;
  options.net.handler_cost_us = 0.1;
  options.net.jitter_us = 0.9;  // non-FIFO deliveries
  options.max_events = 50'000'000;
  options.record_trace = true;
  return options;
}

/// One run of every multi-algorithm collective pinned to \p algo (skipping
/// kinds that don't support it), capturing the engine trace and image 0's
/// result data.
CollFingerprint coll_fingerprint(const RuntimeOptions& options,
                                 CollAlgorithm algo) {
  rt::Runtime runtime(options);
  rt::install_event_handlers(runtime);
  ops::install_copy_handlers(runtime);
  ops::install_spawn_handlers(runtime);
  ops::install_collective_handlers(runtime);
  core::install_detector_handlers(runtime);
  CollFingerprint fp;
  runtime.run([&] {
    Team world = team_world();
    const int p = world.size();
    std::vector<long> sink;
    const auto run_kind = [&](ops::CollKind kind, auto&& body) {
      if (ops::algorithm_supported(kind, algo)) {
        body();
      }
    };
    run_kind(ops::CollKind::kAllreduce, [&] {
      std::vector<long> value(6);
      for (std::size_t e = 0; e < value.size(); ++e) {
        value[e] = world.rank() * 3L + static_cast<long>(e);
      }
      Event done;
      allreduce_async<long>(world, value, RedOp::kSum,
                            {.local_done = done.handle(), .algorithm = algo});
      done.wait();
      sink.insert(sink.end(), value.begin(), value.end());
    });
    run_kind(ops::CollKind::kAllgather, [&] {
      std::vector<long> send{world.rank() * 7L};
      std::vector<long> recv(static_cast<std::size_t>(p), -1);
      Event done;
      allgather_async<long>(world, send, recv,
                            {.local_done = done.handle(), .algorithm = algo});
      done.wait();
      sink.insert(sink.end(), recv.begin(), recv.end());
    });
    run_kind(ops::CollKind::kReduceScatter, [&] {
      std::vector<long> send(static_cast<std::size_t>(p));
      for (int e = 0; e < p; ++e) {
        send[static_cast<std::size_t>(e)] = world.rank() + 10L * e;
      }
      std::vector<long> recv(1, -1);
      Event done;
      reduce_scatter_async<long>(
          world, send, recv, RedOp::kSum,
          {.local_done = done.handle(), .algorithm = algo});
      done.wait();
      sink.insert(sink.end(), recv.begin(), recv.end());
    });
    run_kind(ops::CollKind::kBroadcast, [&] {
      std::vector<long> buf(4, world.rank() == 2 ? 99L : -1L);
      Event done;
      broadcast_async<long>(world, buf, 2,
                            {.local_done = done.handle(), .algorithm = algo});
      done.wait();
      sink.insert(sink.end(), buf.begin(), buf.end());
    });
    team_barrier(world);
    if (world.rank() == 0) {
      fp.result = sink;
    }
  });
  fp.trace = sim::render_trace(runtime.engine().trace());
  fp.events = runtime.engine().event_count();
  fp.end_us = runtime.engine().now();
  return fp;
}

class CollMatrix : public ::testing::TestWithParam<CollAlgorithm> {};

TEST_P(CollMatrix, BitIdenticalTracesAndResultsAcrossShardsAndBackends) {
  const CollAlgorithm algo = GetParam();
  std::vector<CollFingerprint> fps;
  std::vector<long> expect_result;
  bool have_expect = false;
  for (const int shards : {1, 4}) {
    // Repeats at a fixed (shards, backend) must be bit-identical.
    const CollFingerprint a =
        coll_fingerprint(matrix_options(shards, ExecBackend::kThreads), algo);
    const CollFingerprint b =
        coll_fingerprint(matrix_options(shards, ExecBackend::kThreads), algo);
    EXPECT_EQ(a.trace, b.trace) << "shards " << shards;
    EXPECT_EQ(a.events, b.events) << "shards " << shards;
    EXPECT_EQ(a.end_us, b.end_us) << "shards " << shards;
    EXPECT_EQ(a.result, b.result) << "shards " << shards;
    // Threads vs fibers at the same shard count must be bit-identical.
    if (sim::fibers_supported()) {
      const CollFingerprint f = coll_fingerprint(
          matrix_options(shards, ExecBackend::kFibers), algo);
      EXPECT_EQ(a.trace, f.trace) << "shards " << shards << " (fibers)";
      EXPECT_EQ(a.result, f.result) << "shards " << shards << " (fibers)";
    }
    // Result buffers are schedule-independent and shard-count-independent.
    if (!have_expect) {
      expect_result = a.result;
      have_expect = true;
    } else {
      EXPECT_EQ(a.result, expect_result) << "shards " << shards;
    }
    fps.push_back(a);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Algorithms, CollMatrix,
    ::testing::Values(CollAlgorithm::kBinomialTree,
                      CollAlgorithm::kKnomialTree, CollAlgorithm::kRing,
                      CollAlgorithm::kRecursiveDoubling,
                      CollAlgorithm::kDirect),
    [](const ::testing::TestParamInfo<CollAlgorithm>& info) {
      std::string name = to_string(info.param);
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

/// The same collective run under different algorithms produces identical
/// buffers (integer payloads): cross-check ring vs binomial vs RD allreduce
/// explicitly at a non-power-of-two size.
TEST(CollMatrix, ResultBuffersIdenticalAcrossAlgorithmsAtNonPow2) {
  std::vector<std::vector<long>> results;
  for (const CollAlgorithm algo :
       ops::supported_algorithms(ops::CollKind::kAllreduce)) {
    RuntimeOptions options = ext_options(6);
    std::vector<long> out;
    run(options, [&out, algo] {
      Team world = team_world();
      std::vector<long> value{world.rank() + 1L, world.rank() * 11L};
      Event done;
      allreduce_async<long>(world, value, RedOp::kSum,
                            {.local_done = done.handle(), .algorithm = algo});
      done.wait();
      if (world.rank() == 0) {
        out = value;
      }
      team_barrier(world);
    });
    results.push_back(out);
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i], results[0]);
  }
}

TEST(ExtCollectives, AlltoallOnSubteam) {
  run(ext_options(6), [] {
    Team world = team_world();
    Team sub = world.split(world.rank() % 2, world.rank());
    std::vector<int> send(static_cast<std::size_t>(sub.size()));
    for (int j = 0; j < sub.size(); ++j) {
      send[static_cast<std::size_t>(j)] = sub.rank() * 10 + j;
    }
    std::vector<int> recv(static_cast<std::size_t>(sub.size()), -1);
    Event done;
    alltoall_async<int>(sub, send, recv, {.src_done = done.handle()});
    done.wait();
    for (int i = 0; i < sub.size(); ++i) {
      EXPECT_EQ(recv[static_cast<std::size_t>(i)], i * 10 + sub.rank());
    }
    team_barrier(world);
  });
}

}  // namespace
