/// End-to-end smoke tests: one scenario per major construct, exercising the
/// whole stack (engine -> network -> runtime -> ops -> core) together.
/// Detailed per-module behaviour lives in the dedicated test files.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "core/caf2.hpp"

namespace {

caf2::RuntimeOptions base_options(int images) {
  caf2::RuntimeOptions options;
  options.num_images = images;
  options.net.latency_us = 1.0;
  options.net.bandwidth_bytes_per_us = 1000.0;
  options.net.handler_cost_us = 0.1;
  options.max_events = 2'000'000;
  return options;
}

TEST(Smoke, RunsBodyOnEveryImage) {
  std::vector<int> seen(4, 0);
  caf2::run(base_options(4), [&] {
    seen[static_cast<std::size_t>(caf2::this_image())] += 1;
    EXPECT_EQ(caf2::num_images(), 4);
  });
  EXPECT_EQ(std::accumulate(seen.begin(), seen.end(), 0), 4);
}

TEST(Smoke, PutCopyWithFinish) {
  caf2::run(base_options(4), [] {
    caf2::Team world = caf2::team_world();
    caf2::Coarray<int> table(world, 8);
    for (int i = 0; i < 8; ++i) {
      table[static_cast<std::size_t>(i)] = -1;
    }
    team_barrier(world);

    caf2::finish(world, [&] {
      // Every image writes its rank into the next image's slot 0.
      const int next = (world.rank() + 1) % world.size();
      std::vector<int> payload(8, caf2::this_image());
      caf2::copy_async(table(next), std::span<const int>(payload));
      caf2::cofence();  // payload reusable here
    });
    // Global completion: the incoming value must be present.
    const int prev = (world.rank() + world.size() - 1) % world.size();
    EXPECT_EQ(table[0], prev);
    EXPECT_EQ(table[7], prev);
    team_barrier(world);
  });
}

void bump_remote(caf2::Coref<long> counters, long amount) {
  counters.local()[0] += amount;
}

TEST(Smoke, SpawnWithFinish) {
  caf2::run(base_options(5), [] {
    caf2::Team world = caf2::team_world();
    caf2::Coarray<long> counters(world, 1);
    counters[0] = 0;
    team_barrier(world);

    caf2::finish(world, [&] {
      // Every image ships an increment to every other image.
      for (int target = 0; target < world.size(); ++target) {
        caf2::spawn<bump_remote>(target, counters.ref(), long{1});
      }
    });
    EXPECT_EQ(counters[0], world.size());
    team_barrier(world);
  });
}

TEST(Smoke, AllreduceAgreesWithSerialSum) {
  for (int images : {1, 2, 3, 4, 7, 8}) {
    caf2::run(base_options(images), [images] {
      caf2::Team world = caf2::team_world();
      const long mine = (caf2::this_image() + 1) * 10;
      const long total = caf2::allreduce<long>(world, mine, caf2::RedOp::kSum);
      long expect = 0;
      for (int i = 0; i < images; ++i) {
        expect += (i + 1) * 10;
      }
      EXPECT_EQ(total, expect);
    });
  }
}

TEST(Smoke, EventsCoordinateProducerConsumer) {
  caf2::run(base_options(2), [] {
    caf2::Team world = caf2::team_world();
    caf2::Coarray<int> box(world, 1);
    caf2::CoEvent ready(world);
    box[0] = 0;
    team_barrier(world);

    if (world.rank() == 0) {
      std::vector<int> value{42};
      caf2::Event delivered;
      caf2::copy_async(box(1), std::span<const int>(value),
                       {.dst_done = delivered.handle()});
      delivered.wait();
      caf2::notify_event(ready(1));
    } else {
      ready.local().wait();
      EXPECT_EQ(box[0], 42);
    }
    team_barrier(world);
  });
}

TEST(Smoke, DeadlockIsDetected) {
  EXPECT_THROW(
      caf2::run(base_options(2),
                [] {
                  if (caf2::this_image() == 0) {
                    caf2::Event never;
                    never.wait();  // nobody will notify
                  }
                }),
      caf2::FatalError);
}

}  // namespace
