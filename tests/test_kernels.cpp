/// Kernel correctness: UTS node counts must match the sequential count for
/// every image count and detector; RandomAccess function shipping must
/// reproduce the race-free serial checksum exactly.

#include <gtest/gtest.h>

#include <set>

#include "kernels/randomaccess.hpp"
#include "kernels/uts_scheduler.hpp"
#include "support/rng.hpp"

namespace {

using caf2::kernels::RaConfig;
using caf2::kernels::UtsConfig;
using caf2::kernels::UtsTree;

caf2::RuntimeOptions sim_options(int images) {
  caf2::RuntimeOptions options;
  options.num_images = images;
  options.net.latency_us = 1.5;
  options.net.bandwidth_bytes_per_us = 2000.0;
  options.net.handler_cost_us = 0.1;
  options.net.jitter_us = 0.3;  // non-FIFO delivery
  options.max_events = 20'000'000;
  return options;
}

TEST(UtsTree, DeterministicAndNontrivial) {
  UtsTree tree;
  tree.b0 = 3.0;
  tree.max_depth = 6;
  const std::uint64_t count1 = tree.count_tree();
  const std::uint64_t count2 = tree.count_tree();
  EXPECT_EQ(count1, count2);
  EXPECT_GT(count1, 50u);  // unbalanced but not degenerate
}

TEST(UtsTree, DepthLimitMakesLeaves) {
  UtsTree tree;
  tree.max_depth = 0;
  EXPECT_EQ(tree.count_tree(), 1u);
}

class UtsRunTest : public ::testing::TestWithParam<int> {};

TEST_P(UtsRunTest, CountsMatchSequential) {
  const int images = GetParam();
  UtsConfig config;
  config.tree.b0 = 3.0;
  config.tree.max_depth = 6;
  config.node_cost_us = 0.2;
  const std::uint64_t expected = config.tree.count_tree();

  caf2::run(sim_options(images), [&] {
    const auto stats = caf2::kernels::uts_run(caf2::team_world(), config);
    EXPECT_EQ(stats.total_nodes, expected);
    EXPECT_GE(stats.finish_rounds, 1);
  });
}

INSTANTIATE_TEST_SUITE_P(Images, UtsRunTest,
                         ::testing::Values(1, 2, 3, 4, 8));

TEST(UtsRun, AllDetectorsAgreeOnCount) {
  UtsConfig config;
  config.tree.b0 = 3.0;
  config.tree.max_depth = 5;
  const std::uint64_t expected = config.tree.count_tree();
  for (auto detector :
       {caf2::DetectorKind::kEpoch, caf2::DetectorKind::kSpeculative,
        caf2::DetectorKind::kFourCounter, caf2::DetectorKind::kCentralized}) {
    config.detector = detector;
    caf2::run(sim_options(4), [&] {
      const auto stats = caf2::kernels::uts_run(caf2::team_world(), config);
      EXPECT_EQ(stats.total_nodes, expected)
          << "detector " << static_cast<int>(detector);
    });
  }
}

class RaTest : public ::testing::TestWithParam<int> {};

TEST_P(RaTest, FunctionShippingMatchesSerialChecksum) {
  const int images = GetParam();
  RaConfig config;
  config.log2_local_table = 6;
  config.updates_per_image = 200;
  config.bunch = 64;
  caf2::run(sim_options(images), [&] {
    const auto stats = caf2::kernels::ra_run_function_shipping(
        caf2::team_world(), config);
    const std::uint64_t expected = caf2::kernels::ra_expected_checksum(
        images, caf2::this_image(), config);
    EXPECT_EQ(stats.checksum, expected);
    EXPECT_EQ(stats.updates, config.updates_per_image);
  });
}

INSTANTIATE_TEST_SUITE_P(Images, RaTest, ::testing::Values(1, 2, 4, 8));

TEST(Ra, AppliedUpdatesSumToTotal) {
  RaConfig config;
  config.log2_local_table = 6;
  config.updates_per_image = 100;
  config.bunch = 32;
  caf2::run(sim_options(4), [&] {
    const auto stats = caf2::kernels::ra_run_function_shipping(
        caf2::team_world(), config);
    const auto applied_total = caf2::allreduce<std::uint64_t>(
        caf2::team_world(), stats.applied, caf2::RedOp::kSum);
    EXPECT_EQ(applied_total, 4 * config.updates_per_image);
  });
}

TEST(Ra, GetUpdatePutMatchesSerialChecksumWhenUpdatesDoNotCollide) {
  // The reference version has the data races the paper acknowledges: when
  // two images hit the same word concurrently, a get-get-put-put interleave
  // loses an update. When no global index is hit twice, no race is possible
  // and even the reference version must match the serial checksum. The
  // update streams are deterministic, so check which regime we are in.
  RaConfig config;
  config.log2_local_table = 14;
  config.updates_per_image = 40;
  const int images = 2;

  bool collision_free = true;
  {
    std::set<std::uint64_t> seen;
    const std::uint64_t total =
        (1ULL << config.log2_local_table) * static_cast<std::uint64_t>(images);
    for (int img = 0; img < images && collision_free; ++img) {
      caf2::HpccRandom stream(97'003'919 +
                              static_cast<std::int64_t>(
                                  img * config.updates_per_image));
      for (std::uint64_t k = 0; k < config.updates_per_image; ++k) {
        if (!seen.insert(stream.next() % total).second) {
          collision_free = false;
          break;
        }
      }
    }
  }
  ASSERT_TRUE(collision_free)
      << "pick parameters whose streams do not collide";

  caf2::run(sim_options(images), [&] {
    const auto stats = caf2::kernels::ra_run_get_update_put(
        caf2::team_world(), config);
    const std::uint64_t expected = caf2::kernels::ra_expected_checksum(
        images, caf2::this_image(), config);
    EXPECT_EQ(stats.checksum, expected);
  });
}

TEST(Ra, BunchSizeDoesNotChangeResult) {
  for (int bunch : {1, 16, 100}) {
    RaConfig config;
    config.log2_local_table = 5;
    config.updates_per_image = 100;
    config.bunch = bunch;
    caf2::run(sim_options(3), [&] {
      const auto stats = caf2::kernels::ra_run_function_shipping(
          caf2::team_world(), config);
      const std::uint64_t expected = caf2::kernels::ra_expected_checksum(
          3, caf2::this_image(), config);
      EXPECT_EQ(stats.checksum, expected) << "bunch " << bunch;
    });
  }
}

}  // namespace
