/// Tests for the failure-diagnosis subsystem (DESIGN.md §4.10): the flight
/// recorder, the wait-for graph with SCC cycle detection, StallClass
/// classification (true deadlock vs slow-network stall vs suspected
/// livelock), postmortem determinism across backends / repeats / fault
/// plans, schedule-neutrality of the always-on flight recorder, the
/// collector-exception fix, the watchdog_report() compat shim, and the
/// on-demand dump path.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/caf2.hpp"
#include "obs/postmortem.hpp"
#include "runtime/runtime.hpp"
#include "sim/participant.hpp"

namespace {

using namespace caf2;

void bump(Coref<long> counter) { counter.local()[0] += 1; }

RuntimeOptions base_options(int images) {
  RuntimeOptions options;
  options.num_images = images;
  options.net.latency_us = 5.0;
  options.net.bandwidth_bytes_per_us = 100.0;
  options.net.ack_latency_us = 5.0;
  options.net.jitter_us = 0.0;
  // These tests inspect full mid-run postmortems, which a sharded engine
  // reduces to engine-level counters (other shards keep running while the
  // snapshot is taken). Pin shards=1 so the suite is immune to a
  // CAF2_SIM_SHARDS override; cross-shard postmortems get their own
  // coverage in test_shards.cpp.
  options.shards = 1;
  return options;
}

/// Run \p body expecting a stall failure; return the caught StallError.
template <typename Body>
obs::StallError expect_stall(const RuntimeOptions& options, Body&& body) {
  try {
    run(options, body);
  } catch (const obs::StallError& error) {
    return error;
  } catch (const std::exception& error) {
    ADD_FAILURE() << "expected obs::StallError, got: " << error.what();
  }
  ADD_FAILURE() << "expected the run to stall";
  return obs::StallError("missing", nullptr);
}

/// --- flight recorder ---------------------------------------------------------

TEST(FlightRecorder, RingKeepsTheTail) {
  obs::FlightRecorder recorder(1, 8);
  EXPECT_EQ(recorder.capacity(), 8u);
  for (int i = 0; i < 20; ++i) {
    recorder.record(0, static_cast<double>(i), obs::FrKind::kSend, 1,
                    static_cast<std::uint64_t>(i), 0);
  }
  EXPECT_EQ(recorder.total(0), 20u);
  const std::vector<obs::FrEvent> tail = recorder.recent(0, 4);
  ASSERT_EQ(tail.size(), 4u);
  EXPECT_EQ(tail.front().a, 16u);  // oldest of the last 4
  EXPECT_EQ(tail.back().a, 19u);
  const std::vector<obs::FrEvent> all = recorder.recent(0, 100);
  EXPECT_EQ(all.size(), 8u) << "at most the ring capacity survives";
  EXPECT_EQ(all.front().a, 12u);
}

TEST(FlightRecorder, RecordsDeliveriesDuringARun) {
  RuntimeOptions options = base_options(2);
  obs::Postmortem pm;
  run(options, [&] {
    Team world = team_world();
    team_barrier(world);
    if (this_image() == 0) {
      pm = dump_postmortem();
    }
    team_barrier(world);
  });
  ASSERT_EQ(pm.per_image.size(), 2u);
  EXPECT_GT(pm.per_image[0].recorded_total, 0u)
      << "the barrier's messages must appear in the flight recorder";
  bool saw_network_event = false;
  for (const obs::FrEvent& event : pm.per_image[0].recent) {
    if (event.kind == obs::FrKind::kSend ||
        event.kind == obs::FrKind::kDeliver) {
      saw_network_event = true;
    }
  }
  EXPECT_TRUE(saw_network_event);
}

/// --- forced deadlocks: cycle detection ---------------------------------------

TEST(Postmortem, TwoImageEventCycleNamesImagesAndResources) {
  RuntimeOptions options = base_options(2);
  options.sim_backend = ExecBackend::kFibers;
  const obs::StallError error = expect_stall(options, [] {
    Team world = team_world();
    team_barrier(world);
    Event never;
    never.wait();  // 0 and 1 each wait on their own event; nobody notifies
  });
  ASSERT_NE(error.postmortem(), nullptr);
  const obs::Postmortem& pm = *error.postmortem();
  EXPECT_EQ(pm.kind, obs::FailKind::kDeadlock);
  EXPECT_EQ(pm.classification, obs::StallClass::kDeadlockCycle);
  ASSERT_EQ(pm.graph.cycles.size(), 1u);
  const obs::WaitGraph::Cycle& cycle = pm.graph.cycles[0];
  EXPECT_EQ(cycle.images, (std::vector<int>{0, 1}));
  ASSERT_EQ(cycle.resources.size(), 2u);
  for (const obs::ResourceId& resource : cycle.resources) {
    EXPECT_EQ(resource.kind, obs::ResourceKind::kEvent);
  }
  // The rendered text names the exact cycle.
  const std::string text = obs::to_text(pm);
  EXPECT_NE(text.find("classification: deadlock-cycle (fail path: deadlock)"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("cycle 0: images {0, 1}"), std::string::npos) << text;
  EXPECT_NE(text.find("event#"), std::string::npos) << text;
  EXPECT_EQ(std::string(error.what()).find("missing"), std::string::npos);
}

TEST(Postmortem, CrossFinishScopeCycleNamesTheFinishResource) {
  // Image 1 reaches finish termination detection and waits for image 0's
  // contribution; image 0 is stuck *inside* the finish body on an event
  // nobody will notify. The cycle runs through the finish resource.
  RuntimeOptions options = base_options(2);
  const obs::StallError error = expect_stall(options, [] {
    Team world = team_world();
    team_barrier(world);
    finish(world, [&] {
      if (this_image() == 0) {
        Event never;
        never.wait();
      }
    });
  });
  ASSERT_NE(error.postmortem(), nullptr);
  const obs::Postmortem& pm = *error.postmortem();
  EXPECT_EQ(pm.kind, obs::FailKind::kDeadlock);
  EXPECT_EQ(pm.classification, obs::StallClass::kDeadlockCycle);
  ASSERT_GE(pm.graph.cycles.size(), 1u);
  const obs::WaitGraph::Cycle& cycle = pm.graph.cycles[0];
  EXPECT_EQ(cycle.images, (std::vector<int>{0, 1}));
  bool has_finish = false;
  bool has_event = false;
  for (const obs::ResourceId& resource : cycle.resources) {
    has_finish |= resource.kind == obs::ResourceKind::kFinish;
    has_event |= resource.kind == obs::ResourceKind::kEvent;
  }
  EXPECT_TRUE(has_finish) << obs::to_text(pm);
  EXPECT_TRUE(has_event) << obs::to_text(pm);
  // Image 1's wait stack shows the finish-detection frame.
  bool image1_in_detection = false;
  for (const obs::WaitFrame& frame : pm.per_image[1].waits) {
    if (frame.resource.kind == obs::ResourceKind::kFinish) {
      image1_in_detection = true;
    }
  }
  EXPECT_TRUE(image1_in_detection) << obs::to_text(pm);
}

/// --- stalls that are NOT deadlocks -------------------------------------------

TEST(Postmortem, SlowNetworkQuietPeriodIsAStallNotACycle) {
  // Latency far beyond the watchdog quiet period: every image blocks inside
  // a barrier whose messages are still in flight. The watchdog fires, but
  // the pending deliveries make every resource externally satisfiable — no
  // cycle, classified as a stall.
  RuntimeOptions options = base_options(2);
  options.net.latency_us = 5'000'000.0;
  options.watchdog_quiet_us = 1'000.0;
  const obs::StallError error = expect_stall(options, [] {
    team_barrier(team_world());
  });
  ASSERT_NE(error.postmortem(), nullptr);
  const obs::Postmortem& pm = *error.postmortem();
  EXPECT_EQ(pm.kind, obs::FailKind::kQuietWatchdog);
  EXPECT_EQ(pm.classification, obs::StallClass::kStallNoCycle);
  EXPECT_TRUE(pm.graph.cycles.empty()) << obs::to_text(pm);
  EXPECT_GT(pm.pending_calls, 0u)
      << "the in-flight deliveries are what makes this a stall, not deadlock";
  const std::string text = obs::to_text(pm);
  EXPECT_NE(text.find("classification: stall-no-cycle"), std::string::npos)
      << text;
}

TEST(Postmortem, RetryCapClassifiedAsSuspectedLivelock) {
  RuntimeOptions options = base_options(2);
  options.net.faults.all.drop_probability = 1.0;  // black hole
  options.net.reliability.max_attempts = 3;
  options.net.reliability.rto_us = 100.0;
  const obs::StallError error = expect_stall(options, [] {
    Team world = team_world();
    Coarray<long> counter(world, 1);
    counter[0] = 0;
    finish(world, [&] {
      if (this_image() == 0) {
        spawn<bump>(1, counter.ref());
      }
    });
  });
  ASSERT_NE(error.postmortem(), nullptr);
  const obs::Postmortem& pm = *error.postmortem();
  EXPECT_EQ(pm.kind, obs::FailKind::kRetryCap);
  EXPECT_EQ(pm.classification, obs::StallClass::kLivelockSuspected);
  EXPECT_TRUE(pm.net.present);
  EXPECT_TRUE(pm.net.reliable);
  EXPECT_GE(pm.net.inflight_total, 1u);
  ASSERT_FALSE(pm.net.inflight.empty());
  EXPECT_EQ(pm.net.inflight[0].source, 0);
  EXPECT_EQ(pm.net.inflight[0].dest, 1);
}

/// --- determinism -------------------------------------------------------------

std::string deadlock_text(ExecBackend backend) {
  RuntimeOptions options = base_options(2);
  options.sim_backend = backend;
  const obs::StallError error = expect_stall(options, [] {
    Team world = team_world();
    team_barrier(world);
    Event never;
    never.wait();
  });
  return error.postmortem() != nullptr ? obs::to_text(*error.postmortem())
                                       : std::string();
}

TEST(PostmortemDeterminism, TextByteIdenticalAcrossBackendsAndRepeats) {
  const std::string fibers_once = deadlock_text(ExecBackend::kFibers);
  const std::string fibers_twice = deadlock_text(ExecBackend::kFibers);
  const std::string threads_once = deadlock_text(ExecBackend::kThreads);
  ASSERT_FALSE(fibers_once.empty());
  EXPECT_EQ(fibers_once, fibers_twice);
  EXPECT_EQ(fibers_once, threads_once);
}

std::string faulty_deadlock_text(ExecBackend backend) {
  RuntimeOptions options = base_options(3);
  options.sim_backend = backend;
  options.net.jitter_us = 1.0;
  options.net.faults.all.drop_probability = 0.3;
  options.net.faults.all.dup_probability = 0.2;
  options.net.faults.all.delay_probability = 0.3;
  options.net.faults.all.delay_max_us = 20.0;
  const obs::StallError error = expect_stall(options, [] {
    Team world = team_world();
    team_barrier(world);  // exercises the fault plan (drops + retransmits)
    Event never;
    never.wait();
  });
  return error.postmortem() != nullptr ? obs::to_text(*error.postmortem())
                                       : std::string();
}

TEST(PostmortemDeterminism, TextByteIdenticalUnderAFaultPlan) {
  const std::string fibers = faulty_deadlock_text(ExecBackend::kFibers);
  const std::string threads = faulty_deadlock_text(ExecBackend::kThreads);
  ASSERT_FALSE(fibers.empty());
  EXPECT_EQ(fibers, threads);
  EXPECT_NE(fibers.find("fault stats:"), std::string::npos) << fibers;
}

/// --- schedule neutrality of the flight recorder ------------------------------

TEST(FlightRecorder, OnOrOffLeavesTheScheduleBitIdentical) {
  auto body = [] {
    Team world = team_world();
    Coarray<long> data(world, 4);
    data[0] = this_image();
    team_barrier(world);
    finish(world, [&] {
      const int next = (this_image() + 1) % num_images();
      copy_async(data(next), data(this_image()));
    });
    team_barrier(world);
  };
  RuntimeOptions on = base_options(4);
  on.obs.flight_recorder = true;
  RuntimeOptions off = base_options(4);
  off.obs.flight_recorder = false;
  const RunStats with_fr = run_stats(on, body);
  const RunStats without_fr = run_stats(off, body);
  EXPECT_EQ(with_fr.events, without_fr.events);
  EXPECT_EQ(with_fr.virtual_us, without_fr.virtual_us);
  EXPECT_EQ(with_fr.context_switches, without_fr.context_switches);
}

/// --- collector exceptions must not deadlock the failing run ------------------

TEST(Postmortem, ThrowingDiagnosticsCallbackIsSwallowedIntoThePostmortem) {
  sim::Engine engine(2);
  engine.set_diagnostics(
      []() -> std::string { throw std::runtime_error("diag boom"); });
  try {
    engine.run([](int id) {
      if (id == 1) {
        sim::this_engine().block("never woken");
      }
    });
    FAIL() << "the deadlock must abort the run";
  } catch (const obs::StallError& error) {
    ASSERT_NE(error.postmortem(), nullptr);
    EXPECT_NE(error.postmortem()->collector_error.find("diag boom"),
              std::string::npos)
        << error.postmortem()->collector_error;
    EXPECT_EQ(error.postmortem()->kind, obs::FailKind::kDeadlock);
  }
}

TEST(Postmortem, ThrowingPostmortemCollectorIsSwallowedToo) {
  sim::Engine engine(2);
  engine.set_postmortem_collector(
      [](obs::Postmortem&) { throw std::runtime_error("collector boom"); });
  try {
    engine.run([](int id) {
      if (id == 1) {
        sim::this_engine().block("never woken");
      }
    });
    FAIL() << "the deadlock must abort the run";
  } catch (const obs::StallError& error) {
    ASSERT_NE(error.postmortem(), nullptr);
    EXPECT_NE(error.postmortem()->collector_error.find("collector boom"),
              std::string::npos);
  }
}

/// --- on-demand dump + renderers ----------------------------------------------

TEST(Postmortem, OnDemandDumpOfAHealthyRun) {
  RuntimeOptions options = base_options(2);
  obs::Postmortem pm;
  run(options, [&] {
    team_barrier(team_world());
    if (this_image() == 0) {
      pm = dump_postmortem();
    }
    team_barrier(team_world());
  });
  EXPECT_EQ(pm.kind, obs::FailKind::kOnDemand);
  EXPECT_EQ(pm.classification, obs::StallClass::kNotStalled);
  EXPECT_EQ(pm.images, 2);
  ASSERT_EQ(pm.per_image.size(), 2u);
  const std::string json = obs::to_json(pm);
  EXPECT_NE(json.find("\"kind\": \"on-demand\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"per_image\""), std::string::npos);
  const std::string dot = obs::wait_graph_to_dot(pm);
  EXPECT_EQ(dot.rfind("digraph", 0), 0u) << dot;
}

TEST(Postmortem, WatchdogReportShimKeepsTheLegacySections) {
  RuntimeOptions options = base_options(2);
  std::string report;
  run(options, [&] {
    team_barrier(team_world());
    if (this_image() == 0) {
      report = rt::Image::current().runtime().watchdog_report();
    }
    team_barrier(team_world());
  });
  EXPECT_NE(report.find("image 0: mailbox pending="), std::string::npos)
      << report;
  EXPECT_NE(report.find("network: reliable delivery off"), std::string::npos)
      << report;
}

TEST(Postmortem, BlameSummaryAttachedWhenSpanRecorderIsOn) {
  RuntimeOptions options = base_options(2);
  options.obs.enabled = true;
  const obs::StallError error = expect_stall(options, [] {
    Team world = team_world();
    team_barrier(world);
    Event never;
    never.wait();
  });
  ASSERT_NE(error.postmortem(), nullptr);
  EXPECT_NE(error.postmortem()->blame, nullptr);
  const std::string text = obs::to_text(*error.postmortem());
  EXPECT_NE(text.find("blame summary:"), std::string::npos) << text;
}

}  // namespace
