/// Unit tests for the support library: RNGs (including the HPCC stream and
/// its logarithmic jump), SHA-1 against FIPS 180-1 vectors, the
/// serialization archive, statistics, and the table printer.

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <string>

#include "support/config.hpp"
#include "support/rng.hpp"
#include "support/serialize.hpp"
#include "support/sha1.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace {

using namespace caf2;

/// --- SplitMix64 / xoshiro -----------------------------------------------

TEST(SplitMix64, KnownFirstOutputs) {
  // Reference sequence for seed 0 (Steele/Lea/Flood reference code).
  SplitMix64 rng(0);
  EXPECT_EQ(rng.next(), 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(rng.next(), 0x6E789E6AA1B965F4ULL);
  EXPECT_EQ(rng.next(), 0x06C45D188009454FULL);
}

TEST(SplitMix64, ChildrenAreIndependentOfCallOrder) {
  SplitMix64 parent(42);
  const std::uint64_t child3 = parent.child(3);
  const std::uint64_t child7 = parent.child(7);
  SplitMix64 parent2(42);
  EXPECT_EQ(parent2.child(7), child7);
  EXPECT_EQ(parent2.child(3), child3);
  EXPECT_NE(child3, child7);
}

TEST(Xoshiro, DeterministicPerSeed) {
  Xoshiro256ss a(123);
  Xoshiro256ss b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Xoshiro, NextBelowRespectsBound) {
  Xoshiro256ss rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Xoshiro, NextBelowCoversAllResidues) {
  Xoshiro256ss rng(9);
  std::map<std::uint64_t, int> histogram;
  for (int i = 0; i < 3000; ++i) {
    histogram[rng.next_below(7)] += 1;
  }
  EXPECT_EQ(histogram.size(), 7u);
  for (const auto& [value, count] : histogram) {
    EXPECT_GT(count, 200) << "residue " << value << " underrepresented";
  }
}

TEST(Xoshiro, DoubleInUnitInterval) {
  Xoshiro256ss rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double value = rng.next_double();
    EXPECT_GE(value, 0.0);
    EXPECT_LT(value, 1.0);
  }
}

/// --- HPCC random stream ----------------------------------------------------

TEST(HpccRandom, StartsMatchesIteration) {
  HpccRandom iterated(0);
  std::uint64_t x = iterated.peek();
  for (int n = 0; n <= 200; ++n) {
    EXPECT_EQ(HpccRandom::starts(n), x) << "position " << n;
    x = (x << 1) ^ ((static_cast<std::int64_t>(x) < 0) ? HpccRandom::kPoly : 0);
  }
}

TEST(HpccRandom, StartsAtZeroIsOne) {
  EXPECT_EQ(HpccRandom::starts(0), 1u);
}

TEST(HpccRandom, NegativePositionsWrapAroundPeriod) {
  EXPECT_EQ(HpccRandom::starts(-1),
            HpccRandom::starts(HpccRandom::kPeriod - 1));
}

TEST(HpccRandom, JumpThenIterateEqualsDirectJump) {
  HpccRandom stream(1000);
  for (int i = 0; i < 50; ++i) {
    stream.next();
  }
  EXPECT_EQ(stream.peek(), HpccRandom::starts(1050));
}

TEST(HpccRandom, NextReturnsCurrentThenAdvances) {
  HpccRandom stream(12345);
  const std::uint64_t first = stream.peek();
  EXPECT_EQ(stream.next(), first);
  EXPECT_NE(stream.peek(), first);
}

/// --- SHA-1 ------------------------------------------------------------------

std::span<const std::uint8_t> bytes_of(const char* text) {
  return {reinterpret_cast<const std::uint8_t*>(text), std::strlen(text)};
}

TEST(Sha1, Fips180Vectors) {
  EXPECT_EQ(Sha1::to_hex(Sha1::hash(bytes_of(""))),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709");
  EXPECT_EQ(Sha1::to_hex(Sha1::hash(bytes_of("abc"))),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
  EXPECT_EQ(Sha1::to_hex(Sha1::hash(bytes_of(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, MillionAs) {
  Sha1 hasher;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    hasher.update(bytes_of(chunk.c_str()));
  }
  EXPECT_EQ(Sha1::to_hex(hasher.digest()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, IncrementalEqualsOneShot) {
  const std::string text = "the quick brown fox jumps over the lazy dog!";
  for (std::size_t split = 0; split <= text.size(); ++split) {
    Sha1 hasher;
    hasher.update(bytes_of(text.substr(0, split).c_str()));
    hasher.update(bytes_of(text.substr(split).c_str()));
    EXPECT_EQ(hasher.digest(), Sha1::hash(bytes_of(text.c_str())))
        << "split at " << split;
  }
}

TEST(Sha1, ResetRestartsCleanly) {
  Sha1 hasher;
  hasher.update(bytes_of("garbage"));
  hasher.reset();
  hasher.update(bytes_of("abc"));
  EXPECT_EQ(Sha1::to_hex(hasher.digest()),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

/// --- serialization -----------------------------------------------------------

TEST(Serialize, ScalarRoundTrip) {
  WriteArchive out;
  out.write(std::int32_t{-7});
  out.write(std::uint64_t{1ULL << 60});
  out.write(3.5);
  out.write(true);

  ReadArchive in(out.bytes());
  EXPECT_EQ(in.read<std::int32_t>(), -7);
  EXPECT_EQ(in.read<std::uint64_t>(), 1ULL << 60);
  EXPECT_EQ(in.read<double>(), 3.5);
  EXPECT_EQ(in.read<bool>(), true);
  EXPECT_TRUE(in.exhausted());
}

TEST(Serialize, StringsAndVectors) {
  WriteArchive out;
  out.write(std::string("hello coarray"));
  out.write(std::vector<int>{1, 2, 3});
  out.write(std::vector<std::string>{"a", "", "ccc"});

  ReadArchive in(out.bytes());
  EXPECT_EQ(in.read<std::string>(), "hello coarray");
  EXPECT_EQ(in.read<std::vector<int>>(), (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(in.read<std::vector<std::string>>(),
            (std::vector<std::string>{"a", "", "ccc"}));
}

TEST(Serialize, TuplesAndPairs) {
  WriteArchive out;
  out.write(std::pair<int, double>{4, 0.5});
  out.write(std::tuple<int, std::string, char>{1, "x", 'z'});

  ReadArchive in(out.bytes());
  EXPECT_EQ((in.read<std::pair<int, double>>()),
            (std::pair<int, double>{4, 0.5}));
  EXPECT_EQ((in.read<std::tuple<int, std::string, char>>()),
            (std::tuple<int, std::string, char>{1, "x", 'z'}));
}

TEST(Serialize, PackUnpackPreservesOrder) {
  auto bytes = pack_values(std::int64_t{10}, std::string("mid"),
                           std::vector<double>{1.0, 2.0});
  auto [a, b, c] = unpack_values<std::int64_t, std::string,
                                 std::vector<double>>(bytes);
  EXPECT_EQ(a, 10);
  EXPECT_EQ(b, "mid");
  EXPECT_EQ(c, (std::vector<double>{1.0, 2.0}));
}

TEST(Serialize, ReadPastEndFails) {
  WriteArchive out;
  out.write(std::int32_t{1});
  ReadArchive in(out.bytes());
  (void)in.read<std::int32_t>();
  EXPECT_THROW((void)in.read<std::int32_t>(), FatalError);
}

TEST(Serialize, TrailingBytesDetectedByUnpack) {
  auto bytes = pack_values(std::int32_t{1}, std::int32_t{2});
  EXPECT_THROW((unpack_values<std::int32_t>(bytes)), FatalError);
}

/// --- statistics ----------------------------------------------------------------

TEST(Accumulator, BasicMoments) {
  Accumulator acc;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    acc.add(v);
  }
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);
}

TEST(Accumulator, MergeEqualsCombinedStream) {
  Accumulator left;
  Accumulator right;
  Accumulator whole;
  for (int i = 0; i < 50; ++i) {
    const double v = i * 0.37 - 3;
    (i % 2 == 0 ? left : right).add(v);
    whole.add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(Quantile, InterpolatesLinearly) {
  std::vector<double> samples{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(quantile(samples, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(samples, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(samples, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(samples, 0.25), 2.0);
}

TEST(Histogram, BucketsAndClamping) {
  Histogram histogram(0.0, 10.0, 5);
  histogram.add(-100.0);  // clamps into first bucket
  histogram.add(0.5);
  histogram.add(9.9);
  histogram.add(100.0);  // clamps into last bucket
  EXPECT_EQ(histogram.bucket(0), 2u);
  EXPECT_EQ(histogram.bucket(4), 2u);
  EXPECT_EQ(histogram.total(), 4u);
  EXPECT_FALSE(histogram.render().empty());
}

/// --- table ------------------------------------------------------------------------

TEST(Table, RendersAlignedRowsAndCsv) {
  Table table("demo");
  table.columns({"name", "count", "ratio"}).precision(2);
  table.add_row({std::string("alpha"), 7LL, 0.123});
  table.add_row({std::string("b"), 10000LL, 45.6});
  const std::string text = table.to_string();
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("0.12"), std::string::npos);
  const std::string csv = table.to_csv();
  EXPECT_NE(csv.find("name,count,ratio"), std::string::npos);
  EXPECT_NE(csv.find("alpha,7,0.12"), std::string::npos);
}

TEST(Table, RowWidthMismatchRejected) {
  Table table("demo");
  table.columns({"a", "b"});
  EXPECT_THROW(table.add_row({1LL}), UsageError);
}

/// --- config -------------------------------------------------------------------------

TEST(NetworkParams, InstantHasNoDelays) {
  const NetworkParams instant = NetworkParams::instant();
  EXPECT_EQ(instant.latency_us, 0.0);
  EXPECT_EQ(instant.effective_ack_latency_us(), 0.0);
}

TEST(NetworkParams, AckLatencyDefaultsToWireLatency) {
  NetworkParams params;
  params.latency_us = 3.0;
  params.ack_latency_us = -1.0;
  EXPECT_EQ(params.effective_ack_latency_us(), 3.0);
  params.ack_latency_us = 0.5;
  EXPECT_EQ(params.effective_ack_latency_us(), 0.5);
}

}  // namespace
