/// Tests for function shipping: argument marshalling across types, coarray
/// by-reference semantics, completion events, transitive spawn chains, the
/// medium-payload limit, and cofence scoping inside shipped functions
/// (paper Fig. 10).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/caf2.hpp"

namespace {

using namespace caf2;

RuntimeOptions spawn_options(int images) {
  RuntimeOptions options;
  options.num_images = images;
  options.net.latency_us = 2.0;
  options.net.bandwidth_bytes_per_us = 500.0;
  options.net.handler_cost_us = 0.1;
  options.max_events = 5'000'000;
  return options;
}

// Under the fiber backend these are shared by every image (one OS thread);
// that is fine here because each checkpoint has exactly one writing image,
// read on that same image.
thread_local long tls_sink = 0;
thread_local std::string tls_text;
thread_local std::vector<double> tls_vector;

void take_scalars(int a, long b, double c) {
  tls_sink = a + b + static_cast<long>(c);
}

void take_string_and_vector(std::string text, std::vector<double> values) {
  tls_text = std::move(text);
  tls_vector = std::move(values);
}

void add_into(Coref<long> counter, long amount) {
  counter.local()[0] += amount;
}

void chain_hop(std::int32_t remaining, std::int32_t home,
               Coref<long> counter) {
  if (remaining == 0) {
    counter.local()[0] += 1;
    return;
  }
  const int next = (this_image() + 1) % num_images();
  spawn<chain_hop>(next, remaining - 1, home, counter);
}

TEST(Spawn, MarshalsScalars) {
  run(spawn_options(2), [] {
    Team world = team_world();
    tls_sink = 0;
    team_barrier(world);
    finish(world, [&] {
      if (world.rank() == 0) {
        spawn<take_scalars>(1, 5, 70L, 600.0);
      }
    });
    if (world.rank() == 1) {
      EXPECT_EQ(tls_sink, 675);
    }
    team_barrier(world);
  });
}

TEST(Spawn, MarshalsStringsAndVectors) {
  run(spawn_options(2), [] {
    Team world = team_world();
    tls_text.clear();
    tls_vector.clear();
    team_barrier(world);
    finish(world, [&] {
      if (world.rank() == 0) {
        spawn<take_string_and_vector>(1, std::string("payload"),
                                      std::vector<double>{1.5, 2.5});
      }
    });
    if (world.rank() == 1) {
      EXPECT_EQ(tls_text, "payload");
      EXPECT_EQ(tls_vector, (std::vector<double>{1.5, 2.5}));
    }
    team_barrier(world);
  });
}

TEST(Spawn, CoarraysTravelByReference) {
  // The Coref resolves to the *executing* image's block (paper §II-C2).
  run(spawn_options(3), [] {
    Team world = team_world();
    Coarray<long> counter(world, 1);
    counter[0] = 0;
    team_barrier(world);
    finish(world, [&] {
      for (int target = 0; target < world.size(); ++target) {
        spawn<add_into>(target, counter.ref(), long{10});
      }
    });
    EXPECT_EQ(counter[0], 10L * world.size());
    team_barrier(world);
  });
}

TEST(Spawn, SpawnToSelfWorks) {
  run(spawn_options(2), [] {
    Team world = team_world();
    Coarray<long> counter(world, 1);
    counter[0] = 0;
    team_barrier(world);
    finish(world, [&] {
      spawn<add_into>(this_image(), counter.ref(), long{3});
    });
    EXPECT_EQ(counter[0], 3);
    team_barrier(world);
  });
}

TEST(Spawn, CompletionEventFiresAfterExecutionOnTarget) {
  run(spawn_options(2), [] {
    Team world = team_world();
    Coarray<long> counter(world, 1);
    counter[0] = 0;
    team_barrier(world);
    if (world.rank() == 0) {
      Event done;
      spawn<add_into>(done, 1, counter.ref(), long{4});
      done.wait();  // notification sent after execution completed on image 1
    }
    team_barrier(world);
    if (world.rank() == 1) {
      EXPECT_EQ(counter[0], 4);
    }
    team_barrier(world);
  });
}

TEST(Spawn, TransitiveChainsTrackedByFinish) {
  for (int hops : {1, 3, 7}) {
    run(spawn_options(4), [hops] {
      Team world = team_world();
      Coarray<long> counter(world, 1);
      counter[0] = 0;
      team_barrier(world);
      finish(world, [&] {
        if (world.rank() == 0) {
          spawn<chain_hop>(1, static_cast<std::int32_t>(hops),
                           std::int32_t{0}, counter.ref());
        }
      });
      // Whoever ended the chain incremented exactly once; sum across team.
      const long total =
          allreduce<long>(world, counter[0], RedOp::kSum);
      EXPECT_EQ(total, 1) << "hops " << hops;
      team_barrier(world);
    });
  }
}

TEST(Spawn, PayloadLimitEnforced) {
  run(spawn_options(2), [] {
    Team world = team_world();
    if (world.rank() == 0) {
      // Default medium payload is 4096 bytes; this exceeds it.
      std::vector<double> huge(1024, 1.0);
      EXPECT_THROW(
          (spawn<take_string_and_vector>(1, std::string("x"), huge)),
          UsageError);
    }
    team_barrier(world);
  });
}

/// Shipped function that uses cofence: only *its own* implicit operations
/// are fenced, not the spawning image's (paper Fig. 10 dynamic scoping).
thread_local bool tls_inner_cofence_ok = false;

void ship_with_cofence(Coref<int> scratch) {
  // Inside the shipped function the scope is fresh: nothing outstanding.
  EXPECT_EQ(outstanding_implicit_ops(), 0u);
  // Initiate an implicit copy from within the shipped function, then fence.
  // Plain local (not static/thread_local: images share one OS thread under
  // the fiber backend); the cofence below stages it before scope exit.
  std::vector<int> payload(64, 5);
  const int next = (this_image() + 1) % num_images();
  copy_async(RemoteSlice<int>{scratch.coarray_id, next, 0, 64},
             std::span<const int>(payload));
  EXPECT_EQ(outstanding_implicit_ops(), 1u);
  cofence();
  tls_inner_cofence_ok = true;
}

TEST(Spawn, CofenceInsideShippedFunctionIsDynamicallyScoped) {
  run(spawn_options(3), [] {
    Team world = team_world();
    Coarray<int> scratch(world, 64);
    tls_inner_cofence_ok = false;
    team_barrier(world);
    // Rank 0's staging buffer; outside the finish block so it outlives the
    // copy (finish guarantees completion). Not static/thread_local: images
    // share one OS thread under the fiber backend.
    const std::vector<int> big(64, 1);
    finish(world, [&] {
      if (world.rank() == 0) {
        // The spawner has its own outstanding implicit op; the cofence
        // inside the shipped function must not wait for it.
        copy_async(scratch(2), std::span<const int>(big));
        spawn<ship_with_cofence>(1, scratch.ref());
      }
    });
    if (world.rank() == 1) {
      EXPECT_TRUE(tls_inner_cofence_ok);
    }
    team_barrier(world);
  });
}

void open_finish_in_shipped_function() {
  finish(team_world(), [] {});  // SPMD construct inside a shipped function
}

TEST(Spawn, FinishInsideShippedFunctionRejected) {
  // finish is an SPMD collective; a shipped function may not open one. The
  // UsageError raised on the executing image fails the whole run.
  EXPECT_THROW(
      run(spawn_options(2),
          [] {
            Team world = team_world();
            finish(world, [&] {
              if (world.rank() == 0) {
                spawn<open_finish_in_shipped_function>(1);
              }
            });
          }),
      UsageError);
}

}  // namespace
