/// Sharded parallel-DES engine (DESIGN.md §4.11, §4.12) through the full
/// runtime: shards=1 bit-identity with the serial engine, fixed-shard-count
/// determinism across repeats and backends, cross-shard asynchronous
/// constructs at paper scale, cross-shard deadlock postmortems, fault plans
/// and obs span capture under sharding, adaptive lookahead windows, and the
/// remaining zero-lookahead fallback to the serial engine.

#include <gtest/gtest.h>

#include <cstdlib>
#include <span>
#include <string>
#include <vector>

#include "core/caf2.hpp"
#include "core/detectors.hpp"
#include "obs/export.hpp"
#include "obs/postmortem.hpp"
#include "runtime/internal.hpp"
#include "runtime/runtime.hpp"
#include "sim/engine.hpp"
#include "sim/fiber.hpp"
#include "sim/trace.hpp"

namespace {

using namespace caf2;

RuntimeOptions shard_options(int images, int shards, std::uint64_t seed) {
  RuntimeOptions options;
  options.num_images = images;
  options.shards = shards;
  options.net.latency_us = 4.0;
  options.net.bandwidth_bytes_per_us = 400.0;
  options.net.handler_cost_us = 0.1;
  options.net.jitter_us = 2.0;
  options.seed = seed;
  options.max_events = 50'000'000;
  options.record_trace = true;
  return options;
}

/// Mixed workload with plenty of cross-image (and, when sharded,
/// cross-shard) traffic: asynchronous copies under a finish, a cofence per
/// round, an allreduce, and barriers.
void mixed_workload() {
  Team world = team_world();
  Coarray<long> counter(world, 1);
  counter[0] = 0;
  team_barrier(world);
  const std::vector<long> payload{1};
  finish(world, [&] {
    for (int round = 0; round < 5; ++round) {
      copy_async(counter((world.rank() + round) % world.size()).subslice(0, 1),
                 std::span<const long>(payload));
      cofence();
    }
  });
  team_barrier(world);
}

struct Fingerprint {
  std::string trace;
  std::uint64_t events = 0;
  double end_us = 0.0;
  double image0_us = 0.0;
  int shards = 0;
  std::uint64_t windows = 0;
  std::vector<std::uint64_t> shard_events;
};

/// Run \p workload on a full runtime and capture the engine trace plus the
/// stats the determinism assertions compare.
Fingerprint fingerprint_run(const RuntimeOptions& options,
                            const std::function<void()>& workload) {
  rt::Runtime runtime(options);
  rt::install_event_handlers(runtime);
  ops::install_copy_handlers(runtime);
  ops::install_spawn_handlers(runtime);
  ops::install_collective_handlers(runtime);
  core::install_detector_handlers(runtime);
  Fingerprint fp;
  runtime.run([&] {
    workload();
    if (this_image() == 0) {
      fp.image0_us = now_us();
    }
  });
  fp.trace = sim::render_trace(runtime.engine().trace());
  fp.events = runtime.engine().event_count();
  fp.end_us = runtime.engine().now();
  fp.shards = runtime.engine().shard_count();
  fp.windows = runtime.engine().window_count();
  fp.shard_events = runtime.engine().shard_event_counts();
  return fp;
}

/// --- shards=1: the serial engine, bit for bit -------------------------------

TEST(Shards, SerialEngineIsBitIdenticalAcrossRepeats) {
  const Fingerprint a = fingerprint_run(shard_options(3, 1, 7), mixed_workload);
  const Fingerprint b = fingerprint_run(shard_options(3, 1, 7), mixed_workload);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.end_us, b.end_us);
  EXPECT_EQ(a.image0_us, b.image0_us);
  // shards=1 reports the serial engine's stats shape: no windows, one
  // per-shard bucket holding every event.
  EXPECT_EQ(a.shards, 1);
  EXPECT_EQ(a.windows, 0u);
  ASSERT_EQ(a.shard_events.size(), 1u);
  EXPECT_EQ(a.shard_events[0], a.events);
}

TEST(Shards, ExplicitRequestBeatsEnvironment) {
  char* prior = std::getenv("CAF2_SIM_SHARDS");
  const std::string saved = prior != nullptr ? prior : "";
  ::setenv("CAF2_SIM_SHARDS", "3", 1);
  const RunStats pinned = run_stats(shard_options(4, 1, 11), mixed_workload);
  EXPECT_EQ(pinned.shards, 1);
  const RunStats from_env = run_stats(shard_options(4, 0, 11), mixed_workload);
  EXPECT_EQ(from_env.shards, 3);
  if (prior != nullptr) {
    ::setenv("CAF2_SIM_SHARDS", saved.c_str(), 1);
  } else {
    ::unsetenv("CAF2_SIM_SHARDS");
  }
}

/// --- fixed shard count: deterministic across repeats and backends -----------

TEST(Shards, FixedCountIsDeterministicAcrossRepeats) {
  for (const int shards : {2, 4}) {
    const Fingerprint a =
        fingerprint_run(shard_options(8, shards, 21), mixed_workload);
    const Fingerprint b =
        fingerprint_run(shard_options(8, shards, 21), mixed_workload);
    EXPECT_EQ(a.trace, b.trace) << "shards=" << shards;
    EXPECT_EQ(a.events, b.events) << "shards=" << shards;
    EXPECT_EQ(a.end_us, b.end_us) << "shards=" << shards;
    EXPECT_EQ(a.image0_us, b.image0_us) << "shards=" << shards;
    EXPECT_EQ(a.shards, shards);
    ASSERT_EQ(a.shard_events.size(), static_cast<std::size_t>(shards));
    EXPECT_EQ(a.shard_events, b.shard_events) << "shards=" << shards;
    EXPECT_GT(a.windows, 0u) << "shards=" << shards;
  }
}

TEST(Shards, ThreadsAndFibersAgreeWhenSharded) {
  if (!sim::fibers_supported()) {
    GTEST_SKIP() << "fiber backend unavailable in this build";
  }
  RuntimeOptions threads = shard_options(8, 4, 33);
  threads.sim_backend = ExecBackend::kThreads;
  RuntimeOptions fibers = shard_options(8, 4, 33);
  fibers.sim_backend = ExecBackend::kFibers;
  const Fingerprint a = fingerprint_run(threads, mixed_workload);
  const Fingerprint b = fingerprint_run(fibers, mixed_workload);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.end_us, b.end_us);
  EXPECT_EQ(a.image0_us, b.image0_us);
  EXPECT_EQ(a.shard_events, b.shard_events);
}

/// --- cross-shard constructs at paper scale ----------------------------------

TEST(Shards, CrossShardConstructsAtPaperScale) {
  // Without fibers (TSan builds) every image is an OS thread — keep the
  // thread count civilised there, paper-scale otherwise.
  const int kImages = sim::fibers_supported() ? 4096 : 512;
  RuntimeOptions options = shard_options(kImages, 4, 5);
  options.record_trace = false;  // 4K images: keep memory flat
  const RunStats stats = run_stats(options, [] {
    Team world = team_world();
    Coarray<long> ring(world, 4);
    for (int i = 0; i < 4; ++i) {
      ring[i] = 0;
    }
    team_barrier(world);
    // Every image writes its rank to its ring successor; the edges that
    // straddle shard boundaries exercise staged cross-shard delivery.
    const std::vector<long> payload(4, world.rank());
    finish(world, [&] {
      copy_async(ring((world.rank() + 1) % world.size()),
                 std::span<const long>(payload));
      cofence();
    });
    const int prev = (world.rank() + world.size() - 1) % world.size();
    EXPECT_EQ(ring[0], prev);
    // A collective whose contributions cross every shard boundary.
    const long total = allreduce<long>(world, 1, RedOp::kSum);
    EXPECT_EQ(total, static_cast<long>(world.size()));
    team_barrier(world);
  });
  EXPECT_EQ(stats.shards, 4);
  ASSERT_EQ(stats.shard_events.size(), 4u);
  for (const std::uint64_t per_shard : stats.shard_events) {
    EXPECT_GT(per_shard, 0u);
  }
  EXPECT_GT(stats.windows, 0u);
}

void count_chain(std::int32_t remaining, Coref<long> counter) {
  counter.local()[0] += 1;
  if (remaining > 0) {
    const int next = (this_image() + 1) % num_images();
    spawn<count_chain>(next, remaining - 1, counter);
  }
}

TEST(Shards, FinishDetectionBoundHoldsAtPaperScaleSharded) {
  // Paper Theorem 1 (at most L+1 reduction waves) at 4K images on four
  // shards: the termination detector must stay within the bound when its
  // reduction waves cross shard boundaries, not merely terminate.
  if (!sim::fibers_supported()) {
    GTEST_SKIP() << "4096 OS threads is too heavy without the fiber backend";
  }
  const int depth = 6;
  RuntimeOptions options = shard_options(4096, 4, 53);
  options.record_trace = false;  // 4K images: keep memory flat
  const RunStats stats = run_stats(options, [depth] {
    Team world = team_world();
    Coarray<long> counter(world, 1);
    counter[0] = 0;
    team_barrier(world);
    finish(world, [&] {
      if (this_image() == 0) {
        spawn<count_chain>(1, depth, counter.ref());
      }
    });
    const long total = allreduce<long>(world, counter[0], RedOp::kSum);
    EXPECT_EQ(total, depth + 1);
    EXPECT_LE(last_finish_report().rounds, depth + 2);
    team_barrier(world);
  });
  EXPECT_EQ(stats.shards, 4);
}

/// --- cross-shard failure handling -------------------------------------------

std::string stalled_postmortem_text(const RuntimeOptions& options) {
  try {
    run(options, [] {
      // Every image waits on its own event; nobody notifies. The stall spans
      // shard boundaries, so detection requires the inter-shard quiescence
      // protocol, not just one shard running dry.
      CoEvent never(team_world());
      never.local().wait();
    });
  } catch (const obs::StallError& error) {
    if (error.postmortem() == nullptr) {
      ADD_FAILURE() << "stall error carried no postmortem";
      return {};
    }
    return obs::to_text(*error.postmortem());
  }
  ADD_FAILURE() << "expected obs::StallError";
  return {};
}

TEST(Shards, CrossShardDeadlockProducesDeterministicPostmortem) {
  RuntimeOptions options = shard_options(4, 2, 17);
  const std::string a = stalled_postmortem_text(options);
  const std::string b = stalled_postmortem_text(options);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  // The postmortem names every blocked image.
  for (int rank = 0; rank < 4; ++rank) {
    EXPECT_NE(a.find("image " + std::to_string(rank)), std::string::npos)
        << a;
  }
}

/// --- fault plans under sharding (DESIGN.md §4.12) ---------------------------

RuntimeOptions faulty_shard_options(int images, int shards,
                                    std::uint64_t seed) {
  RuntimeOptions options = shard_options(images, shards, seed);
  options.net.faults.all.drop_probability = 0.1;
  options.net.faults.all.dup_probability = 0.1;
  options.net.faults.all.ack_drop_probability = 0.1;
  options.net.faults.all.delay_probability = 0.1;
  options.net.faults.all.delay_max_us = 10.0;
  return options;
}

TEST(Shards, FaultPlansRunShardedAndDeterministically) {
  // Reliable delivery (retransmission, dedup, ack loss) runs under the
  // sharded engine with per-shard protocol cells: the run must keep
  // RunStats.shards > 1 and stay bit-identical across repeats.
  const RuntimeOptions options = faulty_shard_options(8, 4, 29);
  const Fingerprint a = fingerprint_run(options, mixed_workload);
  const Fingerprint b = fingerprint_run(options, mixed_workload);
  EXPECT_EQ(a.shards, 4);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.end_us, b.end_us);
  EXPECT_EQ(a.shard_events, b.shard_events);

  const RunStats stats = run_stats(options, mixed_workload);
  EXPECT_EQ(stats.shards, 4);
  // The plan fired across the whole fault surface.
  EXPECT_GT(stats.faults.deliveries_dropped, 0u);
  EXPECT_GT(stats.faults.retransmits, 0u);
  // Per-shard counters partition the totals.
  ASSERT_EQ(stats.shard_faults.size(), 4u);
  FaultStats summed;
  for (const FaultStats& cell : stats.shard_faults) {
    summed.deliveries_dropped += cell.deliveries_dropped;
    summed.deliveries_duplicated += cell.deliveries_duplicated;
    summed.deliveries_delayed += cell.deliveries_delayed;
    summed.acks_dropped += cell.acks_dropped;
    summed.retransmits += cell.retransmits;
    summed.duplicates_suppressed += cell.duplicates_suppressed;
    summed.scripted_applied += cell.scripted_applied;
  }
  EXPECT_EQ(summed.deliveries_dropped, stats.faults.deliveries_dropped);
  EXPECT_EQ(summed.retransmits, stats.faults.retransmits);
  EXPECT_EQ(summed.duplicates_suppressed, stats.faults.duplicates_suppressed);
  EXPECT_EQ(summed.acks_dropped, stats.faults.acks_dropped);
}

TEST(Shards, FaultyShardedRunsAgreeAcrossBackends) {
  if (!sim::fibers_supported()) {
    GTEST_SKIP() << "fiber backend unavailable in this build";
  }
  RuntimeOptions threads = faulty_shard_options(8, 4, 31);
  threads.sim_backend = ExecBackend::kThreads;
  RuntimeOptions fibers = faulty_shard_options(8, 4, 31);
  fibers.sim_backend = ExecBackend::kFibers;
  const Fingerprint a = fingerprint_run(threads, mixed_workload);
  const Fingerprint b = fingerprint_run(fibers, mixed_workload);
  EXPECT_EQ(a.shards, 4);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.end_us, b.end_us);
  EXPECT_EQ(a.shard_events, b.shard_events);
}

/// --- obs span capture under sharding (DESIGN.md §4.12) ----------------------

RuntimeOptions obs_shard_options(int images, int shards, std::uint64_t seed) {
  RuntimeOptions options = shard_options(images, shards, seed);
  options.record_trace = false;  // the capture text is the fingerprint here
  options.obs.enabled = true;
  return options;
}

TEST(Shards, ObsCaptureRunsShardedAndIsByteIdentical) {
  // Span capture no longer forces the engine serial: each shard records into
  // its own recorder lane and the merged capture must be byte-identical
  // across repeats (composite span ids + the deterministic merge order).
  const RuntimeOptions options = obs_shard_options(8, 4, 37);
  const RunStats a = run_stats(options, mixed_workload);
  const RunStats b = run_stats(options, mixed_workload);
  EXPECT_EQ(a.shards, 4);
  ASSERT_NE(a.obs, nullptr);
  ASSERT_NE(b.obs, nullptr);
  EXPECT_EQ(obs::to_text(*a.obs), obs::to_text(*b.obs));
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.virtual_us, b.virtual_us);
}

TEST(Shards, ObsCaptureDoesNotPerturbShardedSchedules) {
  // The obs-on/obs-off schedule-identity guarantee must survive sharding:
  // recording only ever appends to per-shard buffers.
  RuntimeOptions off = shard_options(8, 4, 39);
  RuntimeOptions on = shard_options(8, 4, 39);
  on.obs.enabled = true;
  const Fingerprint a = fingerprint_run(off, mixed_workload);
  const Fingerprint b = fingerprint_run(on, mixed_workload);
  EXPECT_EQ(a.shards, 4);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.end_us, b.end_us);
}

TEST(Shards, ShardedObsCapturesAgreeAcrossBackends) {
  if (!sim::fibers_supported()) {
    GTEST_SKIP() << "fiber backend unavailable in this build";
  }
  if (std::getenv("CAF2_SIM_BACKEND") != nullptr) {
    GTEST_SKIP() << "CAF2_SIM_BACKEND pins the backend for this run";
  }
  RuntimeOptions threads = obs_shard_options(8, 4, 41);
  threads.sim_backend = ExecBackend::kThreads;
  RuntimeOptions fibers = obs_shard_options(8, 4, 41);
  fibers.sim_backend = ExecBackend::kFibers;
  const RunStats a = run_stats(threads, mixed_workload);
  const RunStats b = run_stats(fibers, mixed_workload);
  ASSERT_NE(a.obs, nullptr);
  ASSERT_NE(b.obs, nullptr);
  // to_text prints the backend line from the capture itself; compare the
  // tracks through the blame analyzer (backend-independent) and the span
  // payloads via chrome-trace export.
  EXPECT_EQ(obs::to_chrome_trace(*a.obs), obs::to_chrome_trace(*b.obs));
}

/// --- adaptive lookahead windows (DESIGN.md §4.12) ---------------------------

TEST(Shards, AdaptiveLookaheadIsDefaultDeterministicAndReported) {
  const RuntimeOptions options = shard_options(8, 4, 43);
  const Fingerprint a = fingerprint_run(options, mixed_workload);
  const Fingerprint b = fingerprint_run(options, mixed_workload);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.end_us, b.end_us);
  const RunStats stats = run_stats(options, mixed_workload);
  EXPECT_EQ(stats.lookahead_mode, "adaptive");
  const RunStats serial = run_stats(shard_options(8, 1, 43), mixed_workload);
  EXPECT_EQ(serial.lookahead_mode, "serial");
}

TEST(Shards, StaticLookaheadStillAvailableAndDeterministic) {
  RuntimeOptions options = shard_options(8, 4, 47);
  options.adaptive_lookahead = false;
  const Fingerprint a = fingerprint_run(options, mixed_workload);
  const Fingerprint b = fingerprint_run(options, mixed_workload);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.end_us, b.end_us);
  const RunStats stats = run_stats(options, mixed_workload);
  EXPECT_EQ(stats.shards, 4);
  EXPECT_EQ(stats.lookahead_mode, "static");
}

/// Ping-pong reaction chain rooted in a window-interior send. Images 0,1
/// land on shard 0 and images 2,3 on shard 1 (contiguous partition). Image
/// 3's long compute parks shard 1's earliest materialized event at t=2000,
/// so the barrier bound alone would grant shard 0 a window ending near
/// 2004 — far past the ~20 us round trip of the ping image 0 launches at
/// t=10. Without the staging-time horizon clamp, shard 0 burns through its
/// 1000 unit computes inside that stale window and the pong merges into its
/// past (now a detected conservative-window violation); with the clamp,
/// shard 0 stops at ping + lookahead and the pong lands in its future.
void reaction_chain_workload() {
  Team world = team_world();
  CoEvent ev(world);
  switch (world.rank()) {
    case 0:
      compute(10.0);
      notify_event(ev(2));
      for (int i = 0; i < 1000; ++i) {
        compute(1.0);
      }
      ev.local().wait();
      break;
    case 2:
      ev.local().wait();
      notify_event(ev(0));
      break;
    case 3:
      compute(2000.0);
      break;
    default:
      break;
  }
}

TEST(Shards, AdaptiveWindowsStayConservativeForReactionChains) {
  const RuntimeOptions options = shard_options(4, 2, 61);
  const Fingerprint a = fingerprint_run(options, reaction_chain_workload);
  const Fingerprint b = fingerprint_run(options, reaction_chain_workload);
  EXPECT_EQ(a.shards, 2);
  EXPECT_GT(a.windows, 0u);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.end_us, b.end_us);
  const RunStats stats = run_stats(options, reaction_chain_workload);
  EXPECT_EQ(stats.lookahead_mode, "adaptive");

  // The pong is the only message delivered to image 0; its recorded latency
  // proves the delivery was not time-shifted to image 0's t=1010 wait (the
  // stale-window symptom was a ~990 us "latency" on a ~6 us wire hop).
  const RunStats observed =
      run_stats(obs_shard_options(4, 2, 61), reaction_chain_workload);
  ASSERT_NE(observed.obs, nullptr);
  const obs::Histogram& latency =
      observed.obs->metrics[0].hist(obs::Hist::kMessageLatency);
  ASSERT_GT(latency.count, 0u);
  EXPECT_LT(latency.sum_us / static_cast<double>(latency.count), 50.0);
}

TEST(Shards, AdaptiveLookaheadEnvOverrideWins) {
  char* prior = std::getenv("CAF2_SIM_ADAPTIVE_LOOKAHEAD");
  const std::string saved = prior != nullptr ? prior : "";
  ::setenv("CAF2_SIM_ADAPTIVE_LOOKAHEAD", "0", 1);
  const RunStats stats = run_stats(shard_options(8, 4, 49), mixed_workload);
  EXPECT_EQ(stats.lookahead_mode, "static");
  if (prior != nullptr) {
    ::setenv("CAF2_SIM_ADAPTIVE_LOOKAHEAD", saved.c_str(), 1);
  } else {
    ::unsetenv("CAF2_SIM_ADAPTIVE_LOOKAHEAD");
  }
}

/// --- the remaining fallback to the serial engine ----------------------------

TEST(Shards, InstantNetworkFallsBackToSerial) {
  // Zero wire latency gives the conservative engine no lookahead window to
  // run ahead in; the runtime falls back to one shard.
  RuntimeOptions options = shard_options(4, 4, 3);
  options.net.latency_us = 0.0;
  options.net.jitter_us = 0.0;
  const RunStats stats = run_stats(options, mixed_workload);
  EXPECT_EQ(stats.shards, 1);
}

TEST(Shards, ShardCountClampsToImages) {
  const RunStats stats = run_stats(shard_options(2, 16, 13), mixed_workload);
  EXPECT_EQ(stats.shards, 2);
}

}  // namespace
