/// Tests for the fault-injection + reliable-delivery layer (DESIGN.md §4.7,
/// §4.12): NetworkParams validation, scripted faults, dedup of duplicated
/// deliveries, retransmission after loss (including across shard
/// boundaries), the retry-cap FatalError with its watchdog report, the
/// quiet-period watchdog, structured deadlock reports, image-rank tagging of
/// escaped exceptions, and the L+1 detection bound under loss.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "core/caf2.hpp"
#include "kernels/uts_scheduler.hpp"
#include "net/network.hpp"
#include "sim/participant.hpp"

namespace {

using namespace caf2;
using namespace caf2::net;

NetworkParams wire_params() {
  NetworkParams params;
  params.latency_us = 10.0;
  params.bandwidth_bytes_per_us = 100.0;
  params.handler_cost_us = 0.0;
  params.ack_latency_us = 10.0;
  params.jitter_us = 0.0;
  return params;
}

/// --- NetworkParams validation ------------------------------------------------

TEST(FaultConfig, InvalidParamsRejectedAtConstruction) {
  sim::Engine engine(2);
  {
    NetworkParams p = wire_params();
    p.bandwidth_bytes_per_us = 0.0;
    EXPECT_THROW(Network(engine, p, 1), UsageError);
  }
  {
    NetworkParams p = wire_params();
    p.bandwidth_bytes_per_us = -3.0;
    EXPECT_THROW(Network(engine, p, 1), UsageError);
  }
  {
    NetworkParams p = wire_params();
    p.latency_us = -1.0;
    EXPECT_THROW(Network(engine, p, 1), UsageError);
  }
  {
    NetworkParams p = wire_params();
    p.jitter_us = -0.5;
    EXPECT_THROW(Network(engine, p, 1), UsageError);
  }
  {
    NetworkParams p = wire_params();
    p.faults.all.drop_probability = 1.5;
    EXPECT_THROW(Network(engine, p, 1), UsageError);
  }
  {
    NetworkParams p = wire_params();
    p.faults.all.dup_probability = -0.1;
    EXPECT_THROW(Network(engine, p, 1), UsageError);
  }
  {
    // An active fault plan without the reliable protocol would simply lose
    // messages: rejected.
    NetworkParams p = wire_params();
    p.faults.all.drop_probability = 0.1;
    p.reliability.mode = ReliabilityParams::Mode::kOff;
    EXPECT_THROW(Network(engine, p, 1), UsageError);
  }
  {
    NetworkParams p = wire_params();
    p.reliability.mode = ReliabilityParams::Mode::kOn;
    p.reliability.max_attempts = 0;
    EXPECT_THROW(Network(engine, p, 1), UsageError);
  }
  {
    NetworkParams p = wire_params();
    p.reliability.backoff = 0.5;
    EXPECT_THROW(Network(engine, p, 1), UsageError);
  }
  {
    NetworkParams p = wire_params();
    p.faults.scripted.push_back({.source = 0, .dest = 1, .nth = 0});
    EXPECT_THROW(Network(engine, p, 1), UsageError);
  }
}

TEST(FaultConfig, ReliabilityModeResolution) {
  NetworkParams p = wire_params();
  EXPECT_FALSE(p.reliable_delivery());  // kAuto + inactive plan
  p.reliability.mode = ReliabilityParams::Mode::kOn;
  EXPECT_TRUE(p.reliable_delivery());
  p.reliability.mode = ReliabilityParams::Mode::kAuto;
  p.faults.all.drop_probability = 0.05;
  EXPECT_TRUE(p.reliable_delivery());
}

/// --- network-level protocol behaviour ---------------------------------------

/// Two-image harness: image 0 sends \p count 4-byte messages to image 1,
/// which pops until it has seen \p expect_delivered of them.
struct WireResult {
  int delivered = 0;
  int staged = 0;
  int acked = 0;
  double last_delivery_us = 0.0;
  FaultStats stats;
};

WireResult wire_run(NetworkParams params, int count, int expect_delivered,
                    std::uint64_t seed = 1) {
  sim::Engine engine(2);
  Network network(engine, params, seed);
  WireResult result;
  engine.run([&](int id) {
    sim::Engine& e = sim::this_engine();
    if (id == 0) {
      for (int k = 0; k < count; ++k) {
        Message message;
        message.header.source = 0;
        message.header.dest = 1;
        message.header.handler = 7;
        message.payload.assign(4, static_cast<std::uint8_t>(k));
        SendCallbacks callbacks;
        callbacks.on_staged = [&] { result.staged += 1; };
        callbacks.on_acked = [&] { result.acked += 1; };
        network.send(std::move(message), std::move(callbacks));
      }
      // Stay alive well past any retransmission/backoff chain so every ack
      // event gets dispatched before the run ends.
      e.advance(1'000'000.0);
    } else {
      while (result.delivered < expect_delivered) {
        if (network.mailbox(1).try_pop()) {
          result.delivered += 1;
          result.last_delivery_us = e.now();
        } else {
          e.block("waiting for deliveries");
        }
      }
    }
  });
  result.stats = network.fault_stats();
  EXPECT_EQ(network.inflight_reliable(), 0u)
      << "every flight must be acknowledged by the end of the run";
  return result;
}

TEST(ReliableDelivery, ScriptedDropIsRetransmittedExactlyOnce) {
  NetworkParams params = wire_params();
  params.faults.scripted.push_back(
      {.source = 0, .dest = 1, .nth = 1, .kind = FaultKind::kDrop});
  const WireResult r = wire_run(params, 1, 1);
  EXPECT_EQ(r.delivered, 1);
  EXPECT_EQ(r.staged, 1);
  EXPECT_EQ(r.acked, 1);
  EXPECT_EQ(r.stats.deliveries_dropped, 1u);
  EXPECT_EQ(r.stats.retransmits, 1u);
  EXPECT_EQ(r.stats.scripted_applied, 1u);
  // The retransmitted copy arrives one retransmit timeout later than the
  // bare wire would have delivered it.
  EXPECT_GT(r.last_delivery_us, 10.0);
}

TEST(ReliableDelivery, ScriptedDuplicateIsSuppressedAtReceiver) {
  NetworkParams params = wire_params();
  params.faults.scripted.push_back(
      {.source = 0, .dest = 1, .nth = 1, .kind = FaultKind::kDuplicate});
  const WireResult r = wire_run(params, 1, 1);
  EXPECT_EQ(r.delivered, 1);
  EXPECT_EQ(r.acked, 1) << "on_acked must fire exactly once";
  EXPECT_EQ(r.stats.deliveries_duplicated, 1u);
  EXPECT_EQ(r.stats.duplicates_suppressed, 1u);
}

TEST(ReliableDelivery, ScriptedDelayHoldsTheMessageBack) {
  NetworkParams params = wire_params();
  params.faults.scripted.push_back({.source = 0,
                                    .dest = 1,
                                    .nth = 1,
                                    .kind = FaultKind::kDelay,
                                    .delay_us = 500.0});
  const WireResult r = wire_run(params, 1, 1);
  EXPECT_EQ(r.delivered, 1);
  EXPECT_EQ(r.stats.deliveries_delayed, 1u);
  // injection (4 B / 100 B/us) + latency + scripted delay
  EXPECT_DOUBLE_EQ(r.last_delivery_us, 0.04 + 10.0 + 500.0);
}

TEST(ReliableDelivery, RandomLossStormDeliversEverythingExactlyOnce) {
  NetworkParams params = wire_params();
  params.faults.all.drop_probability = 0.15;
  params.faults.all.dup_probability = 0.15;
  params.faults.all.ack_drop_probability = 0.15;
  params.faults.all.delay_probability = 0.2;
  params.faults.all.delay_max_us = 40.0;
  const int count = 60;
  const WireResult r = wire_run(params, count, count, /*seed=*/42);
  EXPECT_EQ(r.delivered, count);
  EXPECT_EQ(r.staged, count) << "on_staged fires once per message";
  EXPECT_EQ(r.acked, count) << "on_acked fires once per message";
  EXPECT_GT(r.stats.deliveries_dropped + r.stats.acks_dropped, 0u);
  EXPECT_GT(r.stats.retransmits, 0u);
  EXPECT_GT(r.stats.duplicates_suppressed, 0u);
}

TEST(ReliableDelivery, LostAckRecoveredByReack) {
  // Drop only acks: the message lands, its ack is lost, the retransmitted
  // copy is suppressed by dedup but re-acknowledged. Use a scripted-free
  // plan where only the first ack can be lost (probability draws are
  // deterministic for a fixed seed, so we assert on the counters instead of
  // a specific trajectory).
  NetworkParams params = wire_params();
  params.faults.all.ack_drop_probability = 0.4;
  const int count = 40;
  const WireResult r = wire_run(params, count, count, /*seed=*/7);
  EXPECT_EQ(r.delivered, count);
  EXPECT_EQ(r.acked, count);
  EXPECT_GT(r.stats.acks_dropped, 0u);
  EXPECT_GT(r.stats.duplicates_suppressed, 0u)
      << "recovering a lost ack requires a deduped redelivery";
}

TEST(ReliableDelivery, RetryCapRaisesDiagnosableError) {
  NetworkParams params = wire_params();
  // A black hole: every attempt of the first message is dropped.
  params.faults.scripted.push_back({.source = 0,
                                    .dest = 1,
                                    .nth = 1,
                                    .kind = FaultKind::kDrop,
                                    .attempt = 0});
  params.reliability.max_attempts = 3;
  params.reliability.rto_us = 50.0;
  sim::Engine engine(2);
  Network network(engine, params, 1);
  try {
    engine.run([&](int id) {
      sim::Engine& e = sim::this_engine();
      if (id == 0) {
        Message message;
        message.header.source = 0;
        message.header.dest = 1;
        message.header.handler = 9;
        message.payload.assign(4, 0);
        network.send(std::move(message));
      }
      e.block("waiting forever");
    });
    FAIL() << "retry-cap exhaustion must abort the run";
  } catch (const FatalError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("reliable delivery failed"), std::string::npos) << what;
    EXPECT_NE(what.find("0->1"), std::string::npos)
        << "report must name the undeliverable message: " << what;
    EXPECT_NE(what.find("3 attempts"), std::string::npos) << what;
    EXPECT_NE(what.find("participants:"), std::string::npos)
        << "report must include the per-participant section: " << what;
  }
  EXPECT_EQ(network.fault_stats().deliveries_dropped, 3u);
}

TEST(ReliableDelivery, StagedSendsSurviveLossToo) {
  NetworkParams params = wire_params();
  params.faults.scripted.push_back(
      {.source = 0, .dest = 1, .nth = 1, .kind = FaultKind::kDrop});
  sim::Engine engine(2);
  Network network(engine, params, 1);
  std::vector<std::uint8_t> received;
  int acked = 0;
  engine.run([&](int id) {
    sim::Engine& e = sim::this_engine();
    if (id == 0) {
      std::vector<std::uint8_t> buffer(100, 1);
      MessageHeader header;
      header.source = 0;
      header.dest = 1;
      SendCallbacks callbacks;
      callbacks.on_acked = [&] { acked += 1; };
      network.send_staged(
          header, buffer.size(), [&buffer] { return buffer; },
          std::move(callbacks));
      buffer.assign(100, 2);  // overwritten before staging (1 us later)
      e.advance(500.0);
    } else {
      e.block("waiting for delivery");
      auto got = network.mailbox(1).try_pop();
      ASSERT_TRUE(got.has_value());
      received = got->payload;
    }
  });
  ASSERT_EQ(received.size(), 100u);
  // The retransmitted copy must carry the payload read at the *original*
  // staging point, not a re-read of the (overwritten) source buffer.
  EXPECT_EQ(received[0], 2);
  EXPECT_EQ(acked, 1);
  EXPECT_EQ(network.fault_stats().retransmits, 1u);
}

/// --- watchdog ----------------------------------------------------------------

TEST(Watchdog, QuietPeriodTripsWithStructuredReport) {
  sim::EngineOptions options;
  options.watchdog_quiet_us = 1000.0;
  sim::Engine engine(2, options);
  try {
    engine.run([&](int id) {
      sim::Engine& e = sim::this_engine();
      if (id == 0) {
        // The only pending event is five virtual seconds away.
        e.post(5'000'000.0, [&e] { e.unblock(1); });
      } else {
        e.block("waiting for a far-future event");
      }
    });
    FAIL() << "quiet-period watchdog must abort the run";
  } catch (const FatalError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("watchdog"), std::string::npos) << what;
    EXPECT_NE(what.find("participants:"), std::string::npos) << what;
    EXPECT_NE(what.find("waiting for a far-future event"), std::string::npos)
        << what;
  }
}

TEST(Watchdog, DeadlockReportListsImageStateAndNetwork) {
  RuntimeOptions options;
  options.num_images = 2;
  options.net.latency_us = 1.0;
  try {
    run(options, [] {
      if (this_image() == 0) {
        Event never;
        never.wait();  // nobody will notify
      }
    });
    FAIL() << "deadlock must abort the run";
  } catch (const FatalError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("deadlock"), std::string::npos) << what;
    EXPECT_NE(what.find("image "), std::string::npos) << what;
    EXPECT_NE(what.find("mailbox pending"), std::string::npos)
        << "runtime diagnostics section missing: " << what;
    EXPECT_NE(what.find("network: reliable delivery off"), std::string::npos)
        << "network diagnostics section missing: " << what;
  }
}

/// --- exception tagging -------------------------------------------------------

TEST(ExceptionPropagation, ImageExceptionTaggedWithRank) {
  RuntimeOptions options;
  options.num_images = 4;
  try {
    run(options, [] {
      if (this_image() == 2) {
        throw std::runtime_error("boom in user code");
      }
    });
    FAIL() << "the image exception must propagate out of run()";
  } catch (const FatalError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("image 2"), std::string::npos) << what;
    EXPECT_NE(what.find("boom in user code"), std::string::npos) << what;
  }
}

TEST(ExceptionPropagation, UsageErrorKeepsItsTypeAndGainsRank) {
  RuntimeOptions options;
  options.num_images = 2;
  try {
    run(options, [] {
      if (this_image() == 1) {
        throw UsageError("bad call");
      }
    });
    FAIL() << "the usage error must propagate out of run()";
  } catch (const UsageError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("image 1"), std::string::npos) << what;
    EXPECT_NE(what.find("bad call"), std::string::npos) << what;
  } catch (const FatalError&) {
    FAIL() << "UsageError must not be re-classified as FatalError";
  }
}

/// --- full-stack behaviour under loss -----------------------------------------

RuntimeOptions faulty_options(int images, double drop) {
  RuntimeOptions options;
  options.num_images = images;
  options.net.latency_us = 3.0;
  options.net.bandwidth_bytes_per_us = 500.0;
  options.net.handler_cost_us = 0.1;
  options.net.jitter_us = 1.0;  // non-FIFO channels
  options.net.faults.all.drop_probability = drop;
  options.net.faults.all.dup_probability = drop / 2;
  options.net.faults.all.ack_drop_probability = drop / 2;
  options.net.faults.all.delay_probability = drop;
  options.net.faults.all.delay_max_us = 10.0;
  options.max_events = 20'000'000;
  return options;
}

void bump(Coref<long> counter) { counter.local()[0] += 1; }

void chain(std::int32_t remaining, Coref<long> counter) {
  counter.local()[0] += 1;
  if (remaining > 0) {
    const int next = (this_image() + 1) % num_images();
    spawn<chain>(next, remaining - 1, counter);
  }
}

TEST(FaultyRun, FinishRoundsStayWithinTheoremBoundUnderTenPercentDrop) {
  // Paper Theorem 1: detection needs at most L+1 reduction waves. Loss and
  // retransmission delay deliveries but must not inflate the bound, because
  // each image still waits for local quiescence before contributing.
  const int depth = 6;
  run(faulty_options(4, 0.10), [depth] {
    Team world = team_world();
    Coarray<long> counter(world, 1);
    counter[0] = 0;
    team_barrier(world);
    finish(world, [&] {
      if (this_image() == 0) {
        spawn<chain>(1, depth, counter.ref());
      }
    });
    const long total = allreduce<long>(world, counter[0], RedOp::kSum);
    EXPECT_EQ(total, depth + 1);
    EXPECT_LE(last_finish_report().rounds, depth + 2);
    team_barrier(world);
  });
}

TEST(FaultyRun, SpawnFanoutCountsEachHandlerExactlyOnce) {
  // Duplicate deliveries must not double-run AM handlers or double-count the
  // finish epoch counters; drop + retransmit must count the spawn exactly
  // once. With dup probability 1.0 every single delivery is duplicated.
  RuntimeOptions options = faulty_options(4, 0.0);
  options.net.faults.all.dup_probability = 1.0;
  const RunStats stats = run_stats(options, [] {
    Team world = team_world();
    Coarray<long> counter(world, 1);
    counter[0] = 0;
    team_barrier(world);
    finish(world, [&] {
      for (int target = 0; target < world.size(); ++target) {
        spawn<bump>(target, counter.ref());
      }
    });
    EXPECT_EQ(counter[0], world.size());
    team_barrier(world);
  });
  EXPECT_GT(stats.faults.deliveries_duplicated, 0u);
  EXPECT_EQ(stats.faults.duplicates_suppressed,
            stats.faults.deliveries_duplicated);
}

TEST(FaultyRun, CollectivesSurviveDrop) {
  for (int images : {2, 4, 7}) {
    run(faulty_options(images, 0.10), [images] {
      Team world = team_world();
      const long mine = (this_image() + 1) * 10;
      const long total = allreduce<long>(world, mine, RedOp::kSum);
      long expect = 0;
      for (int i = 0; i < images; ++i) {
        expect += (i + 1) * 10;
      }
      EXPECT_EQ(total, expect);
      team_barrier(world);
    });
  }
}

TEST(FaultyRun, UtsCountsTheSameTreeUnderDrop) {
  kernels::UtsTree tree;
  tree.b0 = 3.0;
  tree.max_depth = 6;
  const std::uint64_t expected = tree.count_subtree(tree.root());
  run(faulty_options(4, 0.10), [&] {
    kernels::UtsConfig config;
    config.tree = tree;
    config.node_cost_us = 0.05;
    const kernels::UtsStats stats = kernels::uts_run(team_world(), config);
    EXPECT_EQ(stats.total_nodes, expected);
  });
}

TEST(FaultyRun, BlackHoleLinkProducesWatchdogReportThroughRuntime) {
  RuntimeOptions options = faulty_options(2, 0.0);
  options.net.faults.all.drop_probability = 1.0;  // every delivery lost
  options.net.reliability.max_attempts = 3;
  options.net.reliability.rto_us = 100.0;
  try {
    run(options, [] {
      Team world = team_world();
      Coarray<long> counter(world, 1);
      counter[0] = 0;
      finish(world, [&] {
        if (this_image() == 0) {
          spawn<bump>(1, counter.ref());
        }
      });
    });
    FAIL() << "an unreachable destination must abort the run";
  } catch (const FatalError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("reliable delivery failed"), std::string::npos)
        << what;
    EXPECT_NE(what.find("attempts"), std::string::npos) << what;
  }
}

TEST(FaultyRun, CrossShardScriptedDropRetransmitsAndCancelsTimer) {
  // Two images on two shards: the dropped cross-shard delivery is
  // retransmitted from its source shard, the (sender-simulated) ack of the
  // retransmitted copy erases the flight, and the rearmed retransmit timer
  // must then find it gone — exactly one retransmit, no retry-cap error,
  // nothing left in flight.
  RuntimeOptions options = faulty_options(2, 0.0);
  options.shards = 2;
  options.net.jitter_us = 0.0;
  options.net.faults.scripted.push_back(
      {.source = 0, .dest = 1, .nth = 1, .kind = FaultKind::kDrop});
  const RunStats stats = run_stats(options, [] {
    Team world = team_world();
    Coarray<long> counter(world, 1);
    counter[0] = 0;
    team_barrier(world);
    finish(world, [&] {
      if (this_image() == 0) {
        spawn<bump>(1, counter.ref());
      }
    });
    const long total = allreduce<long>(world, counter[0], RedOp::kSum);
    EXPECT_EQ(total, 1);
    team_barrier(world);
  });
  EXPECT_EQ(stats.shards, 2);
  EXPECT_EQ(stats.faults.deliveries_dropped, 1u);
  EXPECT_EQ(stats.faults.retransmits, 1u);
  EXPECT_EQ(stats.faults.scripted_applied, 1u);
  EXPECT_EQ(stats.faults.duplicates_suppressed, 0u);
}

TEST(FaultyRun, ShardedLossyRunsAreDeterministicAcrossRepeats) {
  // The full fault surface (drop, dup, ack loss, delay) under four shards:
  // identical stats — including the per-shard fault cells — on every repeat.
  RuntimeOptions options = faulty_options(8, 0.10);
  options.shards = 4;
  auto body = [] {
    Team world = team_world();
    Coarray<long> counter(world, 1);
    counter[0] = 0;
    team_barrier(world);
    finish(world, [&] {
      for (int target = 0; target < world.size(); ++target) {
        spawn<bump>(target, counter.ref());
      }
    });
    EXPECT_EQ(counter[0], world.size());
    team_barrier(world);
  };
  const RunStats a = run_stats(options, body);
  const RunStats b = run_stats(options, body);
  EXPECT_EQ(a.shards, 4);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.virtual_us, b.virtual_us);
  EXPECT_EQ(a.context_switches, b.context_switches);
  ASSERT_EQ(a.shard_faults.size(), b.shard_faults.size());
  for (std::size_t s = 0; s < a.shard_faults.size(); ++s) {
    EXPECT_EQ(a.shard_faults[s].deliveries_dropped,
              b.shard_faults[s].deliveries_dropped)
        << "shard " << s;
    EXPECT_EQ(a.shard_faults[s].retransmits, b.shard_faults[s].retransmits)
        << "shard " << s;
    EXPECT_EQ(a.shard_faults[s].duplicates_suppressed,
              b.shard_faults[s].duplicates_suppressed)
        << "shard " << s;
    EXPECT_EQ(a.shard_faults[s].acks_dropped, b.shard_faults[s].acks_dropped)
        << "shard " << s;
  }
}

TEST(FaultyRun, FaultFreeReliableRunMatchesResultsOfBareNetwork) {
  // Mode::kOn without faults must still compute identical virtual-time
  // results (the protocol adds events but not semantics).
  auto body = [] {
    Team world = team_world();
    Coarray<long> counter(world, 1);
    counter[0] = 0;
    team_barrier(world);
    finish(world, [&] {
      for (int target = 0; target < world.size(); ++target) {
        spawn<bump>(target, counter.ref());
      }
    });
    EXPECT_EQ(counter[0], world.size());
    team_barrier(world);
  };
  RuntimeOptions bare = faulty_options(4, 0.0);
  RuntimeOptions reliable = faulty_options(4, 0.0);
  reliable.net.reliability.mode = ReliabilityParams::Mode::kOn;
  const RunStats bare_stats = run_stats(bare, body);
  const RunStats reliable_stats = run_stats(reliable, body);
  EXPECT_EQ(bare_stats.faults.retransmits, 0u);
  EXPECT_EQ(reliable_stats.faults.retransmits, 0u);
  EXPECT_GT(reliable_stats.events, bare_stats.events)
      << "the protocol's ack events should be visible in the event count";
}

}  // namespace
