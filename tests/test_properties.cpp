/// System-level property tests: conservation laws of the message
/// accounting, virtual-clock monotonicity, full-runtime trace determinism,
/// and invariants that must hold for any seed / image count / jitter.

#include <gtest/gtest.h>

#include <vector>

#include "core/caf2.hpp"
#include "runtime/runtime.hpp"
#include "sim/engine.hpp"

namespace {

using namespace caf2;

struct PropertyCase {
  int images;
  double jitter;
  std::uint64_t seed;
};

class PropertySweep : public ::testing::TestWithParam<PropertyCase> {};

RuntimeOptions options_for(const PropertyCase& param) {
  RuntimeOptions options;
  options.num_images = param.images;
  options.net.latency_us = 2.5;
  options.net.bandwidth_bytes_per_us = 600.0;
  options.net.handler_cost_us = 0.1;
  options.net.jitter_us = param.jitter;
  options.seed = param.seed;
  options.record_trace = true;
  options.max_events = 10'000'000;
  return options;
}

void relay(std::int32_t hops, Coref<long> counter) {
  counter.local()[0] += 1;
  if (hops > 0) {
    const int next = (this_image() + 1) % num_images();
    spawn<relay>(next, hops - 1, counter);
  }
}

/// Mixed workload exercised under every parameter combination.
void workload() {
  Team world = team_world();
  Coarray<long> counter(world, 1);
  Coarray<int> ring(world, 8);
  counter[0] = 0;
  team_barrier(world);

  finish(world, [&] {
    spawn<relay>((this_image() + 1) % world.size(), std::int32_t{2},
                 counter.ref());
    // Plain local (NOT static/thread_local: images share one OS thread under
    // the fiber backend); cofence() below stages it before scope exit.
    std::vector<int> payload;
    payload.assign(8, this_image());
    copy_async(ring((world.rank() + 1) % world.size()),
               std::span<const int>(payload));
    cofence();
  });

  const long total = allreduce<long>(world, counter[0], RedOp::kSum);
  EXPECT_EQ(total, 3L * world.size());
  const int prev = (world.rank() + world.size() - 1) % world.size();
  EXPECT_EQ(ring[0], prev);
  team_barrier(world);
}

TEST_P(PropertySweep, WorkloadInvariantsHold) {
  run(options_for(GetParam()), workload);
}

TEST_P(PropertySweep, EveryMessageSentIsDelivered) {
  // Conservation: after a clean shutdown, the network-wide totals balance —
  // every sent message was delivered to some mailbox, and every image's
  // mailbox was fully drained.
  const PropertyCase param = GetParam();
  run(options_for(param), [] {
    workload();
    rt::Runtime& runtime = rt::Runtime::current();
    team_barrier(team_world());
    CoEvent checked(team_world());
    if (this_image() == 0) {
      auto totals = [&runtime] {
        std::uint64_t delivered = 0;
        std::uint64_t out_total = 0;
        std::uint64_t in_total = 0;
        for (int r = 0; r < runtime.num_images(); ++r) {
          delivered += runtime.network().mailbox(r).delivered_total();
          out_total += runtime.network().traffic(r).messages_out;
          in_total += runtime.network().traffic(r).messages_in;
        }
        return std::tuple{delivered, out_total, in_total};
      };
      // The barrier's own final tokens may still be in flight; delivery
      // counters update at delivery time, so advancing virtual time past
      // every possible flight time settles them deterministically.
      compute(1000.0);
      const auto [delivered, out_total, in_total] = totals();
      EXPECT_EQ(out_total, in_total);
      EXPECT_EQ(delivered, runtime.network().messages_sent());
      // Release the others only after the counters were inspected; any
      // message they send would perturb the snapshot.
      for (int r = 1; r < num_images(); ++r) {
        notify_event(checked(r));
      }
    } else {
      checked.local().wait();
    }
    team_barrier(team_world());
  });
}

TEST_P(PropertySweep, VirtualClockIsMonotonic) {
  run(options_for(GetParam()), [] {
    double last = now_us();
    Team world = team_world();
    for (int i = 0; i < 10; ++i) {
      compute(0.5);
      EXPECT_GE(now_us(), last);
      last = now_us();
      team_barrier(world);
      EXPECT_GE(now_us(), last);
      last = now_us();
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PropertySweep,
    ::testing::Values(PropertyCase{1, 0.0, 1}, PropertyCase{2, 0.0, 2},
                      PropertyCase{3, 1.0, 3}, PropertyCase{4, 0.0, 4},
                      PropertyCase{4, 3.0, 5}, PropertyCase{7, 1.5, 6},
                      PropertyCase{8, 0.5, 7}));

TEST(Properties, WholeRuntimeExecutionIsDeterministic) {
  // Two complete runtime executions of the mixed workload with the same
  // seed produce identical virtual end times and message totals.
  auto fingerprint = [](std::uint64_t seed) {
    RuntimeOptions options;
    options.num_images = 4;
    options.net.latency_us = 2.0;
    options.net.bandwidth_bytes_per_us = 500.0;
    options.net.handler_cost_us = 0.1;
    options.net.jitter_us = 1.0;
    options.seed = seed;
    options.max_events = 10'000'000;
    std::pair<double, std::uint64_t> print{0.0, 0};
    run(options, [&] {
      workload();
      if (this_image() == 0) {
        print.first = now_us();
        // On a sharded engine the global send counter is updated by other
        // shards in real time; advancing virtual time past every possible
        // flight settles it deterministically (same pattern as
        // EveryMessageSentIsDelivered above).
        compute(1000.0);
        print.second = rt::Runtime::current().network().messages_sent();
      }
      team_barrier(team_world());
    });
    return print;
  };
  const auto a = fingerprint(99);
  const auto b = fingerprint(99);
  const auto c = fingerprint(100);
  EXPECT_EQ(a, b);
  EXPECT_TRUE(a != c || true);  // different seed may legally coincide
}

}  // namespace
