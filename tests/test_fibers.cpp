/// Tests for the stackful-fiber primitive and the engine's fiber execution
/// backend (DESIGN.md §4.8): backend resolution (options + environment),
/// per-participant context slots across fiber switches, paper-scale
/// participant counts, guard-page protection against stack overflow, and
/// the failure path for exceptions thrown by engine callbacks.

#include <gtest/gtest.h>

#include <alloca.h>

#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/caf2.hpp"
#include "sim/engine.hpp"
#include "sim/fiber.hpp"
#include "sim/participant.hpp"
#include "support/error.hpp"

namespace {

using namespace caf2::sim;

/// --- the fiber primitive ----------------------------------------------------

TEST(Fiber, PingPongTransfersControl) {
  if (!fibers_supported()) {
    GTEST_SKIP() << "fiber backend unavailable in this build";
  }
  std::vector<int> order;
  Fiber fiber(64 * 1024, [&] {
    order.push_back(1);
    Fiber::suspend();
    order.push_back(3);
    Fiber::suspend();
    order.push_back(5);
  });
  EXPECT_FALSE(fiber.started());
  EXPECT_EQ(Fiber::current(), nullptr);
  fiber.resume();
  order.push_back(2);
  fiber.resume();
  order.push_back(4);
  EXPECT_FALSE(fiber.finished());
  fiber.resume();
  EXPECT_TRUE(fiber.finished());
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
  EXPECT_EQ(Fiber::current(), nullptr);
}

TEST(Fiber, CurrentIsSetInsideTheFiber) {
  if (!fibers_supported()) {
    GTEST_SKIP() << "fiber backend unavailable in this build";
  }
  Fiber* seen = nullptr;
  Fiber fiber(64 * 1024, [&] { seen = Fiber::current(); });
  fiber.resume();
  EXPECT_EQ(seen, &fiber);
  EXPECT_TRUE(fiber.finished());
}

TEST(Fiber, ManySequentialFibersRecycleStacks) {
  if (!fibers_supported()) {
    GTEST_SKIP() << "fiber backend unavailable in this build";
  }
  // Hundreds of short-lived fibers must be cheap: the pool recycles the
  // mapping instead of hitting mmap/munmap each time.
  long total = 0;
  for (int i = 0; i < 256; ++i) {
    Fiber fiber(64 * 1024, [&total, i] { total += i; });
    fiber.resume();
    ASSERT_TRUE(fiber.finished());
  }
  EXPECT_EQ(total, 255L * 256L / 2L);
  Fiber::trim_stack_pool();
}

TEST(Fiber, DeepStacksSurviveWithinTheLimit) {
  if (!fibers_supported()) {
    GTEST_SKIP() << "fiber backend unavailable in this build";
  }
  // Recursion that stays inside the requested stack size must work; the
  // guard page only trips past the end.
  struct Recur {
    static int down(int n) {
      volatile char pad[512];
      pad[0] = static_cast<char>(n);
      if (n == 0) {
        return static_cast<int>(pad[0]);
      }
      return down(n - 1);
    }
  };
  int result = -1;
  Fiber fiber(512 * 1024, [&] { result = Recur::down(200); });
  fiber.resume();
  EXPECT_TRUE(fiber.finished());
  EXPECT_EQ(result, 0);
}

/// --- backend resolution -----------------------------------------------------

TEST(FiberBackend, AutoResolvesToFibersWhereSupported) {
  Engine engine(2, {});
  const caf2::ExecBackend expect = fibers_supported()
                                       ? caf2::ExecBackend::kFibers
                                       : caf2::ExecBackend::kThreads;
  EXPECT_EQ(engine.backend(), expect);
}

TEST(FiberBackend, ExplicitThreadsIsHonoured) {
  EngineOptions options;
  options.backend = caf2::ExecBackend::kThreads;
  Engine engine(2, options);
  EXPECT_EQ(engine.backend(), caf2::ExecBackend::kThreads);
}

TEST(FiberBackend, EnvVarOverridesOptions) {
  ASSERT_EQ(setenv("CAF2_SIM_BACKEND", "threads", 1), 0);
  {
    EngineOptions options;
    options.backend = caf2::ExecBackend::kFibers;
    Engine engine(2, options);
    EXPECT_EQ(engine.backend(), caf2::ExecBackend::kThreads);
  }
  if (fibers_supported()) {
    ASSERT_EQ(setenv("CAF2_SIM_BACKEND", "fibers", 1), 0);
    EngineOptions options;
    options.backend = caf2::ExecBackend::kThreads;
    Engine engine(2, options);
    EXPECT_EQ(engine.backend(), caf2::ExecBackend::kFibers);
  }
  // Unknown values are ignored, not fatal.
  ASSERT_EQ(setenv("CAF2_SIM_BACKEND", "hamsters", 1), 0);
  {
    EngineOptions options;
    options.backend = caf2::ExecBackend::kThreads;
    Engine engine(2, options);
    EXPECT_EQ(engine.backend(), caf2::ExecBackend::kThreads);
  }
  unsetenv("CAF2_SIM_BACKEND");
}

/// --- engine behaviour on the fiber backend ----------------------------------

/// Each participant stores a distinctive pointer in its context slot, yields
/// repeatedly, and checks the slot still holds its own value: the engine
/// must swap the whole ExecContext on every fiber switch.
TEST(FiberBackend, ContextSlotsAreIsolatedPerParticipant) {
  for (const caf2::ExecBackend backend :
       {caf2::ExecBackend::kThreads, caf2::ExecBackend::kFibers}) {
    EngineOptions options;
    options.backend = backend;
    Engine engine(8, options);
    engine.run([](int id) {
      Engine& e = this_engine();
      Engine::context_slot(0) =
          reinterpret_cast<void*>(static_cast<std::uintptr_t>(id + 1));
      for (int i = 0; i < 20; ++i) {
        e.advance(0.5 * (id + 1));
        ASSERT_EQ(Engine::context_slot(0),
                  reinterpret_cast<void*>(static_cast<std::uintptr_t>(id + 1)))
            << "slot leaked across participants, id=" << id;
        if (i % 4 == 0) {
          e.unblock((id + 3) % e.size());
        }
      }
    });
  }
}

TEST(FiberBackend, RunsAThousandParticipants) {
  if (!fibers_supported()) {
    GTEST_SKIP() << "fiber backend unavailable in this build";
  }
  // Paper scale: 1024 participants in one engine. Each participant advances
  // a few times and pokes a neighbour; the run must terminate and count
  // real context switches.
  EngineOptions options;
  options.backend = caf2::ExecBackend::kFibers;
  options.fiber_stack_bytes = 128 * 1024;
  Engine engine(1024, options);
  engine.run([](int id) {
    Engine& e = this_engine();
    for (int i = 0; i < 4; ++i) {
      e.advance(0.1 * ((id % 7) + 1));
      e.unblock((id + 1) % e.size());
    }
  });
  EXPECT_EQ(engine.backend(), caf2::ExecBackend::kFibers);
  EXPECT_GT(engine.context_switch_count(), 1024u);
  Fiber::trim_stack_pool();
}

/// --- failure paths ----------------------------------------------------------

/// A participant body that throws must fail the whole run with a
/// rank-tagged error on both backends (regression for the fiber unwind
/// path, which resumes live fibers so their destructors run).
TEST(FiberBackend, BodyExceptionFailsTheRunOnBothBackends) {
  for (const caf2::ExecBackend backend :
       {caf2::ExecBackend::kThreads, caf2::ExecBackend::kFibers}) {
    EngineOptions options;
    options.backend = backend;
    options.label = "boom-test";
    Engine engine(4, options);
    bool cleaned[4] = {false, false, false, false};
    try {
      engine.run([&](int id) {
        struct Cleanup {
          bool* flag;
          ~Cleanup() { *flag = true; }
        } cleanup{&cleaned[id]};
        Engine& e = this_engine();
        e.advance(1.0 + id);
        if (id == 2) {
          throw std::runtime_error("participant exploded");
        }
        e.advance(100.0);
      });
      FAIL() << "run() must rethrow the body's failure";
    } catch (const std::exception& e) {
      EXPECT_NE(std::string(e.what()).find("participant exploded"),
                std::string::npos)
          << e.what();
    }
    // Every participant that started must have been unwound: stack objects
    // destroyed even though the run failed.
    for (int id = 0; id < 4; ++id) {
      EXPECT_TRUE(cleaned[id]) << "participant " << id << " never unwound";
    }
  }
}

/// Satellite regression: a *callback* (Call event) that throws during
/// dispatch must surface as a context-tagged FatalError instead of
/// terminating the process — including when the dispatching context is the
/// scheduler itself (fiber backend) rather than a participant thread.
TEST(FiberBackend, CallbackExceptionIsTaggedWithDispatchContext) {
  for (const caf2::ExecBackend backend :
       {caf2::ExecBackend::kThreads, caf2::ExecBackend::kFibers}) {
    EngineOptions options;
    options.backend = backend;
    options.label = "cbfail";
    Engine engine(3, options);
    try {
      engine.run([](int id) {
        Engine& e = this_engine();
        if (id == 0) {
          e.post_in(5.0, [] { throw std::runtime_error("callback boom"); });
        }
        e.advance(50.0);
      });
      FAIL() << "run() must rethrow the callback's failure";
    } catch (const caf2::FatalError& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("cbfail"), std::string::npos) << what;
      EXPECT_NE(what.find("engine callback"), std::string::npos) << what;
      EXPECT_NE(what.find("callback boom"), std::string::npos) << what;
      EXPECT_NE(what.find("dispatched from"), std::string::npos) << what;
    }
  }
}

/// --- full-stack sanity -------------------------------------------------------

void bump(caf2::Coref<long> counter) { counter.local()[0] += 1; }

TEST(FiberBackend, RunStatsReportBackendAndSwitches) {
  caf2::RuntimeOptions options;
  options.num_images = 8;
  options.net = caf2::NetworkParams::gemini_like();
  options.seed = 7;
  const caf2::RunStats stats = caf2::run_stats(options, [] {
    caf2::Team world = caf2::team_world();
    caf2::Coarray<long> counter(world, 1);
    counter[0] = 0;
    caf2::team_barrier(world);
    caf2::finish(world, [&] {
      for (int t = 0; t < world.size(); ++t) {
        caf2::spawn<bump>(t, counter.ref());
      }
    });
    EXPECT_EQ(counter[0], world.size());
    caf2::team_barrier(world);
  });
  const caf2::ExecBackend expect = fibers_supported()
                                       ? caf2::ExecBackend::kFibers
                                       : caf2::ExecBackend::kThreads;
  EXPECT_EQ(stats.backend, expect);
  EXPECT_GT(stats.context_switches, 0u);
  EXPECT_GT(stats.events, 0u);
#if defined(__linux__)
  EXPECT_GT(stats.peak_rss_bytes, 0u);
#endif
}

/// --- guard page (death test) ------------------------------------------------

/// Runaway recursion on a fiber stack must hit the PROT_NONE guard page and
/// die deterministically instead of corrupting adjacent memory. Death tests
/// fork; keep this last so the parent's engine state stays simple.
#if defined(__SANITIZE_ADDRESS__)
#define CAF2_TEST_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define CAF2_TEST_ASAN 1
#endif
#endif

TEST(FiberBackendDeathTest, StackOverflowHitsTheGuardPage) {
#if defined(CAF2_TEST_ASAN)
  GTEST_SKIP() << "ASan reports the poisoned guard page differently";
#else
  if (!fibers_supported()) {
    GTEST_SKIP() << "fiber backend unavailable in this build";
  }
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Fiber fiber(64 * 1024, [] {
          // alloca in a loop grows the stack unconditionally (plain
          // recursion risks being turned into a loop by the optimizer).
          for (;;) {
            volatile char* frame = static_cast<char*>(alloca(4096));
            frame[0] = 1;
          }
        });
        fiber.resume();
      },
      ".*");
#endif
}

}  // namespace
