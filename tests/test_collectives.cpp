/// Tests for asynchronous collectives: correctness of barrier, broadcast,
/// reduce, and allreduce against serial specifications, over world and
/// subteams, for every image count, with both completion events, implicit
/// completion through cofence/finish, and early-arrival buffering under
/// jitter.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "core/caf2.hpp"

namespace {

using namespace caf2;

RuntimeOptions coll_options(int images, double jitter = 0.5) {
  RuntimeOptions options;
  options.num_images = images;
  options.net.latency_us = 2.0;
  options.net.bandwidth_bytes_per_us = 1000.0;
  options.net.handler_cost_us = 0.1;
  options.net.jitter_us = jitter;  // exercise early-arrival buffering
  options.max_events = 10'000'000;
  return options;
}

double bench_min(const Team& team, double value) {
  Event done;
  allreduce_async<double>(team, std::span<double>(&value, 1), RedOp::kMin,
                          {.src_done = done.handle()});
  done.wait();
  return value;
}

class CollectiveSizes : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveSizes, BarrierSeparatesPhases) {
  run(coll_options(GetParam()), [] {
    Team world = team_world();
    // Phase stamp: everyone records pre-barrier time, then post-barrier
    // time; the barrier orders max(pre) <= min(post).
    compute(world.rank() * 3.0);  // skewed arrivals
    const double pre = now_us();
    team_barrier(world);
    const double post = now_us();
    const double max_pre = -bench_min(world, -pre);
    const double min_post = bench_min(world, post);
    EXPECT_LE(max_pre, min_post + 1e-9);
  });
}

TEST_P(CollectiveSizes, BroadcastDeliversRootData) {
  const int images = GetParam();
  for (int root = 0; root < std::min(images, 3); ++root) {
    run(coll_options(images), [root] {
      Team world = team_world();
      std::vector<long> buffer(16, world.rank() == root ? 0 : -1);
      if (world.rank() == root) {
        std::iota(buffer.begin(), buffer.end(), 100);
      }
      Event done;
      broadcast_async<long>(world, buffer, root, {.src_done = done.handle()});
      done.wait();
      for (int i = 0; i < 16; ++i) {
        EXPECT_EQ(buffer[static_cast<std::size_t>(i)], 100 + i);
      }
      team_barrier(world);
    });
  }
}

TEST_P(CollectiveSizes, ReduceSumsAtRoot) {
  const int images = GetParam();
  run(coll_options(images), [images] {
    Team world = team_world();
    const int root = images - 1;
    std::vector<long> buffer{world.rank() + 1L, 10L * (world.rank() + 1)};
    Event done;
    reduce_async<long>(world, buffer, root, RedOp::kSum,
                       {.local_done = done.handle()});
    done.wait();
    if (world.rank() == root) {
      long expect0 = 0;
      for (int i = 0; i < images; ++i) {
        expect0 += i + 1;
      }
      EXPECT_EQ(buffer[0], expect0);
      EXPECT_EQ(buffer[1], 10 * expect0);
    }
    team_barrier(world);
  });
}

TEST_P(CollectiveSizes, AllreduceAllOps) {
  const int images = GetParam();
  run(coll_options(images), [images] {
    Team world = team_world();
    const long mine = world.rank() + 1;
    EXPECT_EQ(allreduce<long>(world, mine, RedOp::kSum),
              images * (images + 1L) / 2);
    EXPECT_EQ(allreduce<long>(world, mine, RedOp::kMin), 1);
    EXPECT_EQ(allreduce<long>(world, mine, RedOp::kMax), images);
    EXPECT_EQ(allreduce<long>(world, 1L << world.rank(), RedOp::kBor),
              (1L << images) - 1);
    EXPECT_EQ(allreduce<long>(world, 1L << world.rank(), RedOp::kBxor),
              (1L << images) - 1);
    EXPECT_EQ(allreduce<long>(world, ~0L, RedOp::kBand), ~0L);
  });
}

INSTANTIATE_TEST_SUITE_P(Images, CollectiveSizes,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 13));

TEST(Collectives, AllreduceDoubleProduct) {
  run(coll_options(4), [] {
    Team world = team_world();
    const double mine = 1.0 + world.rank();
    EXPECT_DOUBLE_EQ(allreduce<double>(world, mine, RedOp::kProd), 24.0);
  });
}

TEST(Collectives, SubteamIsolation) {
  // Concurrent collectives on disjoint subteams must not interfere.
  run(coll_options(6), [] {
    Team world = team_world();
    Team sub = world.split(world.rank() % 2, world.rank());
    const long sum = allreduce<long>(sub, world.rank(), RedOp::kSum);
    long expect = 0;
    for (int i = world.rank() % 2; i < 6; i += 2) {
      expect += i;
    }
    EXPECT_EQ(sum, expect);
    team_barrier(world);
  });
}

TEST(Collectives, BackToBackCollectivesKeepOrder) {
  run(coll_options(5), [] {
    Team world = team_world();
    for (int round = 0; round < 10; ++round) {
      const long sum =
          allreduce<long>(world, round * 100L + world.rank(), RedOp::kSum);
      long expect = 0;
      for (int i = 0; i < 5; ++i) {
        expect += round * 100 + i;
      }
      EXPECT_EQ(sum, expect) << "round " << round;
    }
  });
}

TEST(Collectives, BroadcastImplicitCompletionViaFinish) {
  run(coll_options(4), [] {
    Team world = team_world();
    std::vector<int> buffer(8, world.rank() == 0 ? 42 : 0);
    finish(world, [&] {
      broadcast_async<int>(world, buffer, 0);  // implicit completion
    });
    EXPECT_EQ(buffer[0], 42);  // global completion at end finish
    team_barrier(world);
  });
}

TEST(Collectives, BroadcastImplicitLocalDataViaCofence) {
  run(coll_options(4), [] {
    Team world = team_world();
    std::vector<int> buffer(8, world.rank() == 0 ? 7 : 0);
    broadcast_async<int>(world, buffer, 0);
    // cofence = local data completion: the root may reuse its buffer; a
    // participant's buffer holds the payload (paper Fig. 9).
    cofence();
    EXPECT_EQ(buffer[0], 7);
    team_barrier(world);
  });
}

TEST(Collectives, RootSrcEventMeansBufferReusable) {
  run(coll_options(4), [] {
    Team world = team_world();
    std::vector<int> buffer(512, world.rank() == 0 ? 9 : 0);
    Coarray<int> sink(world, 512);
    if (world.rank() == 0) {
      Event reusable;
      broadcast_async<int>(world, buffer, 0, {.src_done = reusable.handle()});
      reusable.wait();
      buffer.assign(512, -1);  // must not corrupt the broadcast
    } else {
      Event got;
      broadcast_async<int>(world, buffer, 0, {.src_done = got.handle()});
      got.wait();
      EXPECT_EQ(buffer[0], 9);
      EXPECT_EQ(buffer[511], 9);
    }
    team_barrier(world);
  });
}

TEST(Collectives, NonMemberCallerRejected) {
  run(coll_options(4), [] {
    Team world = team_world();
    Team evens = world.split(world.rank() % 2 == 0 ? 1 : -1, world.rank());
    if (!evens.valid()) {
      // Odd images are not members; calling a collective on the team they
      // opted out of must fail. They do not have the team handle at all, so
      // construct the error through an invalid team.
      EXPECT_THROW(team_barrier(Team{}), UsageError);
    } else {
      team_barrier(evens);
    }
    team_barrier(world);
  });
}

TEST(Collectives, FinishTeamMustContainCollectiveTeam) {
  run(coll_options(4), [] {
    Team world = team_world();
    Team evens = world.split(world.rank() % 2 == 0 ? 1 : -1, world.rank());
    // finish over a *subteam* while the collective spans the world:
    // the collective team is not a subset of the finish team -> error.
    if (evens.valid()) {
      bool threw = false;
      try {
        finish(evens, [&] {
          std::vector<int> buffer(4, 0);
          broadcast_async<int>(world, buffer, 0);  // implicit, inside finish
        });
      } catch (const UsageError&) {
        threw = true;
      }
      EXPECT_TRUE(threw);
    }
  });
}

}  // namespace
