/// Unit tests for the runtime core: teams (split semantics), events
/// (counting, acquire/release, remote notification, triggers), coarrays
/// (allocation, slicing, by-reference handles).

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "core/caf2.hpp"

namespace {

using namespace caf2;

RuntimeOptions options_with(int images, double latency = 1.0) {
  RuntimeOptions options;
  options.num_images = images;
  options.net.latency_us = latency;
  options.net.bandwidth_bytes_per_us = 1000.0;
  options.net.handler_cost_us = 0.05;
  options.max_events = 5'000'000;
  return options;
}

/// --- teams -------------------------------------------------------------------

TEST(Team, WorldHasAllImagesInRankOrder) {
  run(options_with(5), [] {
    Team world = team_world();
    EXPECT_EQ(world.id(), 0);
    EXPECT_EQ(world.size(), 5);
    EXPECT_EQ(world.rank(), this_image());
    for (int r = 0; r < 5; ++r) {
      EXPECT_EQ(world.world_rank(r), r);
      EXPECT_EQ(world.rank_of_world(r), r);
    }
  });
}

TEST(Team, SplitByParity) {
  run(options_with(6), [] {
    Team world = team_world();
    const int color = world.rank() % 2;
    Team sub = world.split(color, world.rank());
    ASSERT_TRUE(sub.valid());
    EXPECT_EQ(sub.size(), 3);
    EXPECT_EQ(sub.world_rank(sub.rank()), this_image());
    // Even images got one team id, odd another, consistently.
    for (int r = 0; r < sub.size(); ++r) {
      EXPECT_EQ(sub.world_rank(r) % 2, color);
    }
    team_barrier(sub);  // the new team communicates in isolation
  });
}

TEST(Team, SplitKeyOrdersRanks) {
  run(options_with(4), [] {
    Team world = team_world();
    // Reverse the ranks via descending keys.
    Team reversed = world.split(0, world.size() - world.rank());
    EXPECT_EQ(reversed.rank(), world.size() - 1 - world.rank());
  });
}

TEST(Team, NegativeColorOptsOut) {
  run(options_with(4), [] {
    Team world = team_world();
    const bool in = world.rank() < 2;
    Team sub = world.split(in ? 7 : -1, world.rank());
    if (in) {
      ASSERT_TRUE(sub.valid());
      EXPECT_EQ(sub.size(), 2);
    } else {
      EXPECT_FALSE(sub.valid());
    }
  });
}

TEST(Team, NestedSplits) {
  run(options_with(8), [] {
    Team world = team_world();
    Team half = world.split(world.rank() / 4, world.rank());
    Team quarter = half.split(half.rank() / 2, half.rank());
    EXPECT_EQ(half.size(), 4);
    EXPECT_EQ(quarter.size(), 2);
    EXPECT_TRUE(world.contains_team(half));
    EXPECT_TRUE(half.contains_team(quarter));
    EXPECT_FALSE(quarter.contains_team(half));
    team_barrier(quarter);
    team_barrier(half);
  });
}

TEST(Team, SplitsAreCollectiveButIndependentAcrossTeams) {
  run(options_with(4), [] {
    Team world = team_world();
    Team sub = world.split(world.rank() % 2, 0);
    // Each subteam splits again independently; ids must not collide.
    Team subsub = sub.split(0, sub.rank());
    EXPECT_EQ(subsub.size(), sub.size());
    EXPECT_NE(subsub.id(), sub.id());
    EXPECT_NE(subsub.id(), world.id());
  });
}

TEST(Team, InvalidTeamOperationsRejected) {
  Team invalid;
  EXPECT_FALSE(invalid.valid());
  EXPECT_THROW(invalid.size(), UsageError);
  EXPECT_THROW(invalid.rank(), UsageError);
}

/// --- events -------------------------------------------------------------------

TEST(Events, CountingSemantics) {
  run(options_with(1), [] {
    Event event;
    EXPECT_FALSE(event.test());
    event.notify();
    event.notify();
    EXPECT_EQ(event.pending(), 2u);
    EXPECT_TRUE(event.test());
    event.wait();  // consumes the second
    EXPECT_EQ(event.pending(), 0u);
  });
}

TEST(Events, WaitManyConsumesExactly) {
  run(options_with(1), [] {
    Event event;
    for (int i = 0; i < 5; ++i) {
      event.notify();
    }
    event.wait_many(3);
    EXPECT_EQ(event.pending(), 2u);
  });
}

TEST(Events, RemoteNotifyThroughCoEvent) {
  run(options_with(3), [] {
    Team world = team_world();
    CoEvent flag(world);
    team_barrier(world);
    if (world.rank() == 0) {
      notify_event(flag(1));
      notify_event(flag(2));
    }
    if (world.rank() != 0) {
      flag.local().wait();  // blocks until image 0's notification arrives
    }
    team_barrier(world);
  });
}

TEST(Events, RemoteNotifyCostsLatency) {
  run(options_with(2, /*latency=*/10.0), [] {
    Team world = team_world();
    CoEvent flag(world);
    team_barrier(world);
    const double t0 = now_us();
    if (world.rank() == 0) {
      notify_event(flag(1));
    } else {
      flag.local().wait();
      EXPECT_GE(now_us() - t0, 10.0);
    }
    team_barrier(world);
  });
}

TEST(Events, NotifyHasReleaseSemanticsOverImplicitOps) {
  // An event_notify must wait for local *operation* completion of prior
  // implicit asynchronous operations (paper §III-B4a): after notify returns,
  // the prior copy has been delivered.
  run(options_with(2, /*latency=*/20.0), [] {
    Team world = team_world();
    Coarray<int> box(world, 1);
    CoEvent flag(world);
    box[0] = 0;
    team_barrier(world);
    if (world.rank() == 0) {
      std::vector<int> value{33};
      copy_async(box(1), std::span<const int>(value));  // implicit
      notify_event(flag(1));  // release: must not overtake the copy
    } else {
      flag.local().wait();
      EXPECT_EQ(box[0], 33);
    }
    team_barrier(world);
  });
}

TEST(Events, WhenPostedTriggerConsumesNotification) {
  run(options_with(1), [] {
    Event event;
    int fired = 0;
    event.when_posted([&] { ++fired; });
    EXPECT_EQ(fired, 0);
    event.notify();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(event.pending(), 0u);  // consumed by the trigger
    event.notify();
    EXPECT_EQ(event.pending(), 1u);  // no trigger armed now
  });
}

TEST(Events, WhenPostedFiresImmediatelyIfPending) {
  run(options_with(1), [] {
    Event event;
    event.notify();
    int fired = 0;
    event.when_posted([&] { ++fired; });
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(event.pending(), 0u);
  });
}

/// --- coarrays -------------------------------------------------------------------

TEST(Coarray, LocalBlockIsPrivateAndSized) {
  run(options_with(3), [] {
    Team world = team_world();
    Coarray<double> data(world, 10);
    EXPECT_EQ(data.count(), 10u);
    for (std::size_t i = 0; i < 10; ++i) {
      data[i] = world.rank() * 100.0 + static_cast<double>(i);
    }
    EXPECT_EQ(data.local()[9], world.rank() * 100.0 + 9);
    team_barrier(world);
  });
}

TEST(Coarray, SlicesAddressRemoteBlocks) {
  run(options_with(4), [] {
    Team world = team_world();
    Coarray<int> data(world, 8);
    RemoteSlice<int> whole = data(2);
    EXPECT_EQ(whole.image, 2);
    EXPECT_EQ(whole.count, 8u);
    RemoteSlice<int> sub = whole.subslice(3, 2);
    EXPECT_EQ(sub.offset, 3u);
    EXPECT_EQ(sub.count, 2u);
    EXPECT_EQ(sub.element(1).offset, 4u);
    EXPECT_THROW(whole.subslice(7, 5), UsageError);
    EXPECT_THROW(data.slice(1, 6, 4), UsageError);
    team_barrier(world);
  });
}

TEST(Coarray, IdsAgreeAcrossImagesUnderSpmdAllocation) {
  run(options_with(3), [] {
    Team world = team_world();
    Coarray<int> first(world, 4);
    Coarray<int> second(world, 4);
    // Cross-image agreement: write through the id-based slice of `second`
    // and observe it locally.
    std::vector<int> payload{1, 2, 3, 4};
    finish(world, [&] {
      copy_async(second((world.rank() + 1) % world.size()),
                 std::span<const int>(payload));
    });
    EXPECT_EQ(second[0], 1);
    EXPECT_EQ(first[0], first[0]);  // untouched block stays valid
    team_barrier(world);
  });
}

TEST(Coarray, SubteamAllocation) {
  run(options_with(4), [] {
    Team world = team_world();
    Team pair = world.split(world.rank() / 2, world.rank());
    Coarray<long> data(pair, 2);
    data[0] = this_image();
    data[1] = -1;
    team_barrier(pair);
    // Exchange within the pair.
    std::vector<long> mine{static_cast<long>(this_image()) * 10};
    finish(pair, [&] {
      copy_async(data.slice(1 - pair.rank(), 1, 1),
                 std::span<const long>(mine));
    });
    const int partner = pair.world_rank(1 - pair.rank());
    EXPECT_EQ(data[1], partner * 10);
    team_barrier(world);
  });
}

TEST(Coarray, TriviallyCopyableStructsSupported) {
  struct Particle {
    double x, y;
    int id;
  };
  run(options_with(2), [] {
    Team world = team_world();
    Coarray<Particle> swarm(world, 3);
    swarm[0] = {1.0, 2.0, this_image()};
    team_barrier(world);
    std::vector<Particle> out{{9.0, 8.0, 42}};
    finish(world, [&] {
      copy_async(swarm.slice((world.rank() + 1) % world.size(), 1, 1),
                 std::span<const Particle>(out));
    });
    EXPECT_EQ(swarm[1].id, 42);
    EXPECT_EQ(swarm[1].x, 9.0);
    team_barrier(world);
  });
}

}  // namespace
