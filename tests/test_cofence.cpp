/// Tests for cofence semantics: local data completion, the directional
/// DOWNWARD pass classes (READ / WRITE / ANY), operations that both read
/// and write, dynamic scoping, and the interaction with events' release
/// semantics (paper §III-B).

#include <gtest/gtest.h>

#include <vector>

#include "core/caf2.hpp"

namespace {

using namespace caf2;

RuntimeOptions cofence_options(int images) {
  RuntimeOptions options;
  options.num_images = images;
  options.net.latency_us = 20.0;  // long flight: staging << delivery
  options.net.bandwidth_bytes_per_us = 100.0;
  options.net.handler_cost_us = 0.1;
  options.max_events = 5'000'000;
  return options;
}

TEST(Cofence, WaitsForSourceStagingNotDelivery) {
  run(cofence_options(2), [] {
    Team world = team_world();
    Coarray<int> box(world, 250);
    team_barrier(world);
    if (world.rank() == 0) {
      std::vector<int> payload(250, 4);  // 1000 bytes -> 10 us staging
      const double t0 = now_us();
      copy_async(box(1), std::span<const int>(payload));
      cofence();
      const double waited = now_us() - t0;
      EXPECT_GE(waited, 10.0);  // staged
      EXPECT_LT(waited, 25.0);  // but did not wait the 20 us flight
    }
    team_barrier(world);
  });
}

TEST(Cofence, NoOutstandingOpsReturnsImmediately) {
  run(cofence_options(1), [] {
    const double t0 = now_us();
    cofence();
    cofence(Pass::kAny, Pass::kAny);
    EXPECT_EQ(now_us(), t0);
  });
}

TEST(Cofence, DownwardReadLetsPutsPass) {
  // A put reads local data; cofence(DOWNWARD=READ) lets it complete later,
  // so the fence does not wait for its staging.
  run(cofence_options(2), [] {
    Team world = team_world();
    Coarray<int> box(world, 250);
    team_barrier(world);
    if (world.rank() == 0) {
      std::vector<int> payload(250, 4);
      const double t0 = now_us();
      copy_async(box(1), std::span<const int>(payload));
      cofence(Pass::kRead, Pass::kNone);  // puts may pass downward
      EXPECT_EQ(now_us(), t0);
      cofence();  // strict fence still waits
      EXPECT_GE(now_us() - t0, 10.0);
    }
    team_barrier(world);
  });
}

TEST(Cofence, DownwardWriteLetsGetsPass) {
  // A get writes local data; cofence(DOWNWARD=WRITE) lets it pass, while a
  // strict cofence waits for the full round trip (data must be readable).
  run(cofence_options(2), [] {
    Team world = team_world();
    Coarray<int> box(world, 250);
    for (std::size_t i = 0; i < 250; ++i) {
      box[i] = world.rank() * 1000 + static_cast<int>(i);
    }
    team_barrier(world);
    if (world.rank() == 0) {
      std::vector<int> into(250, 0);
      const double t0 = now_us();
      copy_async(std::span<int>(into), box(1));
      cofence(Pass::kWrite, Pass::kNone);  // the get may pass downward
      EXPECT_EQ(now_us(), t0);
      cofence();  // strict: data is now readable
      EXPECT_GE(now_us() - t0, 20.0);
      EXPECT_EQ(into[0], 1000);
    }
    team_barrier(world);
  });
}

TEST(Cofence, DownwardAnyPassesEverything) {
  run(cofence_options(2), [] {
    Team world = team_world();
    Coarray<int> box(world, 250);
    team_barrier(world);
    if (world.rank() == 0) {
      std::vector<int> out(250, 1);
      std::vector<int> in(250, 0);
      const double t0 = now_us();
      copy_async(box(1), std::span<const int>(out));
      copy_async(std::span<int>(in), box(1));
      cofence(Pass::kAny, Pass::kNone);
      EXPECT_EQ(now_us(), t0);  // nothing fenced
      cofence();  // strict: stage both ops before out/in leave scope
    }
    team_barrier(world);
  });
}

TEST(Cofence, MixedReadWriteOpHeldUnlessBothClassesPass) {
  // An allreduce both reads and writes its local buffer: letting only reads
  // (or only writes) pass has no practical effect (paper §III-B).
  run(cofence_options(4), [] {
    Team world = team_world();
    std::vector<long> value{world.rank() + 1L};
    allreduce_async<long>(world, std::span<long>(value), RedOp::kSum);
    cofence(Pass::kRead, Pass::kNone);  // op also writes -> still fenced
    EXPECT_EQ(value[0], 10);            // 1+2+3+4
    team_barrier(world);
  });
}

TEST(Cofence, SequentialFencesDrainProgressively) {
  run(cofence_options(2), [] {
    Team world = team_world();
    Coarray<int> box(world, 250);
    team_barrier(world);
    if (world.rank() == 0) {
      for (int round = 0; round < 5; ++round) {
        std::vector<int> payload(250, round);
        copy_async(box(1), std::span<const int>(payload));
        cofence();
        // payload destroyed here; safe because staging completed.
      }
      // Data-complete records stay tracked until their acks return.
      EXPECT_LE(outstanding_implicit_ops(), 5u);
      EXPECT_GE(outstanding_implicit_ops(), 1u);
    }
    team_barrier(world);
    compute(200.0);  // all acks land
    team_barrier(world);
    if (world.rank() == 0) {
      cofence();  // prunes fully-complete records
      EXPECT_EQ(outstanding_implicit_ops(), 0u);
    }
    if (world.rank() == 1) {
      EXPECT_EQ(box[0], 4);
    }
    team_barrier(world);
  });
}

TEST(Cofence, UpwardArgumentAcceptedAndInert) {
  // UPWARD constrains compiler reordering in the Fortran setting; a library
  // executes statements in order, so it must be accepted and change nothing.
  run(cofence_options(1), [] {
    cofence(Pass::kNone, Pass::kRead);
    cofence(Pass::kNone, Pass::kWrite);
    cofence(Pass::kNone, Pass::kAny);
  });
}

void sink_fn(std::vector<int> data) { (void)data; }

TEST(Cofence, SpawnArgumentsFencedLikeReads) {
  // Paper Fig. 4 spawn row: local data completion = arguments evaluated and
  // shipped; a cofence after a spawn waits for the argument injection only.
  run(cofence_options(2), [] {
    Team world = team_world();
    team_barrier(world);
    if (world.rank() == 0) {
      const double t0 = now_us();
      spawn<sink_fn>(1, std::vector<int>(800, 7));  // 3200 B -> 32 us
      cofence();
      const double waited = now_us() - t0;
      EXPECT_GE(waited, 30.0);
      EXPECT_LT(waited, 50.0);  // did not wait for delivery + execution
    }
    team_barrier(world);
  });
}

TEST(Cofence, EventNotifyWaitsForOperationCompletion) {
  // Release semantics are *stronger* than cofence: notify waits for local
  // operation completion (delivery acks), not just staging.
  run(cofence_options(2), [] {
    Team world = team_world();
    Coarray<int> box(world, 250);
    CoEvent flag(world);
    team_barrier(world);
    if (world.rank() == 0) {
      std::vector<int> payload(250, 6);
      const double t0 = now_us();
      copy_async(box(1), std::span<const int>(payload));
      notify_event(flag(1));
      // staging (10) + flight (20) + ack (20) before the notify leaves.
      EXPECT_GE(now_us() - t0, 50.0);
    } else {
      flag.local().wait();
      EXPECT_EQ(box[0], 6);
    }
    team_barrier(world);
  });
}

}  // namespace
