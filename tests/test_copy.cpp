/// Tests for copy_async: all four transfer shapes (put, get, third-party,
/// local), the three optional events (preE / srcE / destE), implicit vs
/// explicit completion, and the staged-read hazard that cofence guards.

#include <gtest/gtest.h>

#include <vector>

#include "core/caf2.hpp"

namespace {

using namespace caf2;

RuntimeOptions copy_options(int images, double latency = 5.0) {
  RuntimeOptions options;
  options.num_images = images;
  options.net.latency_us = latency;
  options.net.bandwidth_bytes_per_us = 100.0;
  options.net.handler_cost_us = 0.1;
  options.max_events = 5'000'000;
  return options;
}

TEST(Copy, PutFromLocalBuffer) {
  run(copy_options(2), [] {
    Team world = team_world();
    Coarray<int> box(world, 4);
    box.local()[0] = -1;
    team_barrier(world);
    if (world.rank() == 0) {
      std::vector<int> payload{10, 11, 12, 13};
      Event done;
      copy_async(box(1), std::span<const int>(payload),
                 {.dst_done = done.handle()});
      done.wait();
    }
    team_barrier(world);
    if (world.rank() == 1) {
      EXPECT_EQ(box[0], 10);
      EXPECT_EQ(box[3], 13);
    }
    team_barrier(world);
  });
}

TEST(Copy, GetIntoLocalBuffer) {
  run(copy_options(2), [] {
    Team world = team_world();
    Coarray<long> box(world, 4);
    for (std::size_t i = 0; i < 4; ++i) {
      box[i] = world.rank() * 100 + static_cast<long>(i);
    }
    team_barrier(world);
    if (world.rank() == 0) {
      std::vector<long> into(4, 0);
      Event done;
      copy_async(std::span<long>(into), box(1), {.dst_done = done.handle()});
      done.wait();
      EXPECT_EQ(into[0], 100);
      EXPECT_EQ(into[3], 103);
    }
    team_barrier(world);
  });
}

TEST(Copy, ThirdPartyTransfer) {
  // Image 0 initiates a copy from image 1's block to image 2's block.
  run(copy_options(3), [] {
    Team world = team_world();
    Coarray<int> box(world, 2);
    box[0] = world.rank() * 7;
    box[1] = world.rank() * 7 + 1;
    team_barrier(world);
    finish(world, [&] {
      if (world.rank() == 0) {
        copy_async(box(2), box(1));
      }
    });
    if (world.rank() == 2) {
      EXPECT_EQ(box[0], 7);
      EXPECT_EQ(box[1], 8);
    }
    team_barrier(world);
  });
}

TEST(Copy, ThirdPartySameImageEndpoints) {
  // Initiator 0, source and destination both on image 1 (remote local copy).
  run(copy_options(2), [] {
    Team world = team_world();
    Coarray<int> a(world, 2);
    Coarray<int> b(world, 2);
    a[0] = 55;
    a[1] = 56;
    b[0] = b[1] = 0;
    team_barrier(world);
    finish(world, [&] {
      if (world.rank() == 0) {
        copy_async(b(1), a(1));
      }
    });
    if (world.rank() == 1) {
      EXPECT_EQ(b[0], 55);
      EXPECT_EQ(b[1], 56);
    }
    team_barrier(world);
  });
}

TEST(Copy, LocalToLocalCopy) {
  run(copy_options(1), [] {
    Team world = team_world();
    Coarray<int> a(world, 3);
    Coarray<int> c(world, 3);
    a[0] = 1;
    a[1] = 2;
    a[2] = 3;
    finish(world, [&] { copy_async(c(0), a(0)); });
    EXPECT_EQ(c[0], 1);
    EXPECT_EQ(c[2], 3);
  });
}

TEST(Copy, SrcEventFiresBeforeDstEvent) {
  // srcE = source read complete (staging); destE = delivered. Staging
  // precedes delivery by the wire latency.
  run(copy_options(2, /*latency=*/50.0), [] {
    Team world = team_world();
    Coarray<int> box(world, 1);
    team_barrier(world);
    if (world.rank() == 0) {
      std::vector<int> payload{1};
      Event staged;
      Event delivered;
      copy_async(box(1), std::span<const int>(payload),
                 {.src_done = staged.handle(),
                  .dst_done = delivered.handle()});
      staged.wait();
      const double staged_at = now_us();
      delivered.wait();
      const double delivered_at = now_us();
      EXPECT_GE(delivered_at - staged_at, 50.0);
    }
    team_barrier(world);
  });
}

TEST(Copy, DstEventMayLiveOnAnyImage) {
  // destE owned by the destination image: it learns of the arrival without
  // any initiator involvement.
  run(copy_options(2), [] {
    Team world = team_world();
    Coarray<int> box(world, 1);
    CoEvent arrived(world);
    team_barrier(world);
    if (world.rank() == 0) {
      std::vector<int> payload{5};
      Event staged;
      copy_async(box(1), std::span<const int>(payload),
                 {.src_done = staged.handle(), .dst_done = arrived(1)});
      staged.wait();  // keep payload alive until the network read it
    } else {
      arrived.local().wait();
      EXPECT_EQ(box[0], 5);
    }
    team_barrier(world);
  });
}

TEST(Copy, PredicatedOnLocalEvent) {
  run(copy_options(2), [] {
    Team world = team_world();
    Coarray<int> box(world, 1);
    box[0] = 0;
    team_barrier(world);
    if (world.rank() == 0) {
      std::vector<int> payload{77};
      Event pre;
      Event delivered;
      copy_async(box(1), std::span<const int>(payload),
                 {.pre = pre.handle(), .dst_done = delivered.handle()});
      compute(20.0);  // the copy must not have started yet
      EXPECT_FALSE(delivered.test());
      pre.notify();  // fire the predicate
      delivered.wait();
    }
    team_barrier(world);
    if (world.rank() == 1) {
      EXPECT_EQ(box[0], 77);
    }
    team_barrier(world);
  });
}

TEST(Copy, PredicatedOnRemoteEvent) {
  // The predicate event lives on image 1; image 0's copy is armed remotely
  // and fires when image 1 posts it.
  run(copy_options(3), [] {
    Team world = team_world();
    Coarray<int> box(world, 1);
    CoEvent gate(world);
    box[0] = 0;
    team_barrier(world);
    if (world.rank() == 0) {
      std::vector<int> payload{88};
      Event delivered;
      copy_async(box(2), std::span<const int>(payload),
                 {.pre = gate(1), .dst_done = delivered.handle()});
      delivered.wait();
    } else if (world.rank() == 1) {
      compute(30.0);
      gate.local().notify();
    }
    team_barrier(world);
    if (world.rank() == 2) {
      EXPECT_EQ(box[0], 88);
    }
    team_barrier(world);
  });
}

TEST(Copy, PredicatedImplicitCopyHoldsFinishOpen) {
  // A predicated implicit copy initiated inside a finish must keep the
  // finish open until the predicate fires and the copy completes globally.
  run(copy_options(2), [] {
    Team world = team_world();
    Coarray<int> box(world, 1);
    CoEvent gate(world);
    box[0] = 0;
    team_barrier(world);
    // Declared outside the finish block so the gated copy's source outlives
    // the lambda frame; finish guarantees global completion before it dies.
    // Plain local, not thread_local: images share one OS thread under the
    // fiber backend.
    const std::vector<int> payload{99};
    finish(world, [&] {
      if (world.rank() == 0) {
        copy_async(box(1), std::span<const int>(payload),
                   {.pre = gate(0)});
      }
      if (world.rank() == 1) {
        compute(40.0);
        notify_event(gate(0));  // unleash image 0's copy from image 1
      }
    });
    // finish passed => the copy is globally complete.
    if (world.rank() == 1) {
      EXPECT_EQ(box[0], 99);
    }
    team_barrier(world);
  });
}

TEST(Copy, OverwriteBeforeCofenceCorruptsOverwriteAfterDoesNot) {
  // The staged-read hazard: the network reads the source at injection time.
  run(copy_options(2), [] {
    Team world = team_world();
    Coarray<int> box(world, 1);
    team_barrier(world);

    // Case 1: overwrite after cofence -> the destination sees the original.
    if (world.rank() == 0) {
      std::vector<int> payload{1};
      copy_async(box(1), std::span<const int>(payload));
      cofence();
      payload[0] = 2;  // safe: local data completion reached
    }
    team_barrier(world);
    compute(200.0);  // let delivery settle
    team_barrier(world);
    if (world.rank() == 1) {
      EXPECT_EQ(box[0], 1);
    }
    team_barrier(world);

    team_barrier(world);
  });
}

TEST(Copy, OverwriteBeforeStagingIsObservedAtDestination) {
  // Case 2 of the hazard: a 1600-byte payload takes 16 us to inject; the
  // producer overwrites it immediately (no cofence), so the staged read —
  // and therefore the destination — sees the *overwritten* values, exactly
  // like RDMA hardware reading a reused buffer.
  run(copy_options(2), [] {
    Team world = team_world();
    Coarray<int> box(world, 400);
    std::vector<int> payload(400, 10);  // outlives the whole experiment
    team_barrier(world);
    if (world.rank() == 0) {
      copy_async(box(1), std::span<const int>(payload));
      payload.assign(400, 20);  // user error: no cofence first
    }
    team_barrier(world);
    compute(500.0);
    team_barrier(world);
    if (world.rank() == 1) {
      EXPECT_EQ(box[0], 20) << "staged read must observe the overwrite";
    }
    team_barrier(world);
  });
}

TEST(Copy, MismatchedExtentsRejected) {
  run(copy_options(2), [] {
    Team world = team_world();
    Coarray<int> box(world, 4);
    std::vector<int> three(3);
    EXPECT_THROW(copy_async(box(1), std::span<const int>(three)), UsageError);
    team_barrier(world);
  });
}

TEST(Copy, ImplicitCopiesTrackedByCofence) {
  run(copy_options(2), [] {
    Team world = team_world();
    Coarray<int> box(world, 64);
    team_barrier(world);
    if (world.rank() == 0) {
      std::vector<int> payload(64, 3);
      EXPECT_EQ(outstanding_implicit_ops(), 0u);
      copy_async(box(1), std::span<const int>(payload));
      EXPECT_EQ(outstanding_implicit_ops(), 1u);
      cofence();
      // After local data completion + pruning of fully-complete records the
      // count eventually returns to zero (ack may still be in flight).
      Event done;
      copy_async(box(1), std::span<const int>(payload),
                 {.dst_done = done.handle()});
      EXPECT_EQ(outstanding_implicit_ops(), 1u);  // explicit not tracked
      done.wait();
    }
    team_barrier(world);
  });
}

}  // namespace
