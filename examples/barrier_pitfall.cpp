/// The paper's Fig. 5: why a barrier cannot detect termination of
/// transitively shipped functions — and why finish can.
///
/// Image p ships f1 to q; f1 ships f2 to r. p waits for f1's completion
/// event and then joins a barrier. Because f2 may land on r *after* r has
/// exited the barrier, the barrier "detects" termination while f2 is still
/// in flight. The finish construct counts the transitive spawn and stays
/// open until f2 really completed.

#include <cstdio>

#include "core/caf2.hpp"
#include "runtime/image.hpp"

namespace {

using namespace caf2;

// Per-image "f2 ran here" flag (Image::scratch, not thread_local: under the
// fiber execution backend every image shares one OS thread).
constexpr char kF2FlagTag = 0;

bool& f2_executed() {
  std::shared_ptr<void>& slot = rt::Image::current().scratch(&kF2FlagTag);
  if (!slot) {
    slot = std::make_shared<bool>(false);
  }
  return *std::static_pointer_cast<bool>(slot);
}

void f2(std::vector<std::uint8_t> payload) {
  f2_executed() = true;
  std::printf("  f2 executed on image %d at t=%.2f us (payload %zu B)\n",
              this_image(), now_us(), payload.size());
}

void f1(std::int32_t r) {
  // The transitive spawn carries a large argument: its injection outlasts
  // the barrier, so f2 is still in flight when the barrier completes. The
  // barrier never learns about this message.
  spawn<f2>(r, std::vector<std::uint8_t>(3500, 0x5A));
}

void spmd_main() {
  Team world = team_world();
  const int p = 0;
  const int q = 1;
  const int r = 2;

  // --- Attempt 1: barrier-based "termination detection" (incorrect) -------
  if (world.rank() == p) {
    Event f1_done;
    spawn<f1>(f1_done, q, static_cast<std::int32_t>(r));
    f1_done.wait();  // f1 completed on q... but f2 is still in flight to r
  }
  team_barrier(world);
  const bool f2_seen_at_barrier = f2_executed();
  if (world.rank() == r) {
    std::printf("image r after barrier:  f2 executed? %s   <- the barrier "
                "missed the transitive spawn (paper Fig. 5)\n",
                f2_seen_at_barrier ? "yes" : "NO");
  }

  // Drain the stray f2 so the second experiment starts clean.
  team_barrier(world);
  compute(50.0);
  team_barrier(world);
  f2_executed() = false;

  // --- Attempt 2: finish (correct) ----------------------------------------
  finish(world, [&] {
    if (world.rank() == p) {
      spawn<f1>(q, static_cast<std::int32_t>(r));
    }
  });
  if (world.rank() == r) {
    std::printf("image r after finish:   f2 executed? %s   <- finish counts "
                "transitive spawns and waited for f2\n",
                f2_executed() ? "yes" : "NO");
  }
  team_barrier(world);
}

}  // namespace

int main() {
  caf2::RuntimeOptions options;
  options.num_images = 3;
  options.net = caf2::NetworkParams::gemini_like();
  // Make the window obvious: f2's large payload injects slowly relative to
  // the barrier's empty tokens.
  options.net.latency_us = 2.0;
  options.net.bandwidth_bytes_per_us = 100.0;
  caf2::run(options, spmd_main);
  return 0;
}
