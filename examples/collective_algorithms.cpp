/// Collective schedules and the autotuned selection table (DESIGN.md §4.13).
///
/// Eight images run the same allreduce under every selectable schedule —
/// binomial tree, ring (reduce-scatter + allgather), recursive doubling —
/// and under an allgather's ring/direct choices, verifying every schedule
/// produces identical integer results. Then a small selection table is
/// installed (the same caf2.coll_selection JSON shape that
/// `bench_collectives --tune` measures and CAF2_COLL_TABLE loads) and an
/// observed run proves CollAlgorithm::kAuto follows it: the recorded
/// collective span is labeled with the table's winner, not the built-in
/// default.
///
/// Exits 0 only when all schedules agree and Auto demonstrably follows the
/// table.
///
/// Build & run:   ./build/examples/collective_algorithms

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/caf2.hpp"
#include "ops/coll_algo.hpp"

namespace {

using namespace caf2;

constexpr int kImages = 8;

bool run_schedules() {
  bool ok = true;
  RuntimeOptions options;
  options.num_images = kImages;
  run(options, [&ok] {
    Team world = team_world();
    const int p = world.size();

    // The same allreduce under every schedule; integer payloads make even
    // the reassociating ring/recursive-doubling schedules bit-identical.
    for (const CollAlgorithm algo :
         ops::supported_algorithms(ops::CollKind::kAllreduce)) {
      std::vector<long> value{world.rank() + 1L, 10L * world.rank()};
      Event done;
      allreduce_async<long>(world, value, RedOp::kSum,
                            {.local_done = done.handle(), .algorithm = algo});
      done.wait();
      const long expect0 = static_cast<long>(p) * (p + 1) / 2;
      const long expect1 = 10L * p * (p - 1) / 2;
      if (value[0] != expect0 || value[1] != expect1) {
        std::fprintf(stderr, "allreduce/%s: wrong result on rank %d\n",
                     to_string(algo), world.rank());
        ok = false;
      }
      if (world.rank() == 0) {
        std::printf("allreduce/%-18s -> {%ld, %ld}\n", to_string(algo),
                    value[0], value[1]);
      }
      team_barrier(world);
    }

    for (const CollAlgorithm algo :
         ops::supported_algorithms(ops::CollKind::kAllgather)) {
      std::vector<long> send{7L * world.rank()};
      std::vector<long> recv(static_cast<std::size_t>(p), -1);
      Event done;
      allgather_async<long>(world, send, recv,
                            {.local_done = done.handle(), .algorithm = algo});
      done.wait();
      for (int r = 0; r < p; ++r) {
        if (recv[static_cast<std::size_t>(r)] != 7L * r) {
          std::fprintf(stderr, "allgather/%s: wrong result on rank %d\n",
                       to_string(algo), world.rank());
          ok = false;
        }
      }
      team_barrier(world);
    }
  });
  return ok;
}

/// Install a measured-winner table mapping 8-image scalar allreduces to the
/// ring schedule, run with CollAlgorithm::kAuto under the span recorder, and
/// check the collective span is labeled "allreduce/ring".
bool run_auto_follows_table() {
  ops::CollSelectionTable table;
  table.set(ops::CollKind::kAllreduce, kImages, sizeof(long),
            CollAlgorithm::kRing);
  ops::set_selection_table(table);

  RuntimeOptions options;
  options.num_images = kImages;
  options.obs.enabled = true;
  const RunStats stats = run_stats(options, [] {
    Team world = team_world();
    long value = world.rank();
    (void)allreduce<long>(world, value, RedOp::kSum);
    team_barrier(world);  // keep images alive until op completions land
  });
  ops::clear_selection_table();

  bool saw_ring = false;
  for (int image = 0; image < stats.obs->images; ++image) {
    for (const obs::Span& span : stats.obs->image_track(image).spans) {
      if (span.kind == obs::SpanKind::kCollective && span.label != nullptr &&
          std::strcmp(span.label, "allreduce/ring") == 0) {
        saw_ring = true;
      }
    }
  }
  std::printf("auto-follows-table: collective span labeled allreduce/ring: "
              "%s\n",
              saw_ring ? "yes" : "NO");
  return saw_ring;
}

}  // namespace

int main() {
  const bool schedules_ok = run_schedules();
  const bool auto_ok = run_auto_follows_table();
  if (!schedules_ok || !auto_ok) {
    std::fprintf(stderr, "FAIL\n");
    return 1;
  }
  std::printf("all schedules agree; kAuto follows the loaded table\n");
  return 0;
}
